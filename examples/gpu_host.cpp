// GPU host example: reproduces the Figure-1 semantics — a project's
// resource share applies to the host's *combined* processing resources —
// first analytically with the ideal share-split solver, then dynamically by
// emulating scenario 2 under global accounting.

#include <iostream>

#include "core/bce.hpp"

int main() {
  using namespace bce;

  // --- Figure 1: the paper's worked example -----------------------------
  // 10 GFLOPS CPU + 20 GFLOPS GPU; A can use both, B only the GPU; equal
  // shares. Expected: A = B = 15 GFLOPS, with A on 100% of the CPU and 25%
  // of the GPU, B on 75% of the GPU.
  ShareSplitInput in;
  in.capacity[ProcType::kCpu] = 10e9;
  in.capacity[ProcType::kNvidia] = 20e9;
  ShareSplitInput::Project a;
  a.share = 1.0;
  a.can_use[ProcType::kCpu] = true;
  a.can_use[ProcType::kNvidia] = true;
  ShareSplitInput::Project b;
  b.share = 1.0;
  b.can_use[ProcType::kNvidia] = true;
  in.projects = {a, b};

  const ShareSplitResult split = ideal_share_split(in);
  std::cout << "=== Figure 1: ideal share split ===\n";
  const char* names[] = {"A (CPU+GPU)", "B (GPU only)"};
  for (std::size_t p = 0; p < split.total.size(); ++p) {
    std::cout << "  project " << names[p] << ": total "
              << fmt(split.total[p] / 1e9, 1) << " GFLOPS  (CPU "
              << fmt(split.alloc[p][ProcType::kCpu] / 1e9, 1) << ", GPU "
              << fmt(split.alloc[p][ProcType::kNvidia] / 1e9, 1) << ")\n";
  }

  // --- Scenario 2 emulation ---------------------------------------------
  Scenario sc = paper_scenario2();
  EmulationOptions opt;
  opt.policy.sched = JobSchedPolicy::kGlobal;
  opt.record_timeline = true;

  const EmulationResult res = emulate(sc, opt);
  std::cout << "\n=== Scenario 2 under " << opt.policy.sched_name()
            << " ===\n"
            << res.metrics.summary() << "\n";
  for (std::size_t p = 0; p < sc.projects.size(); ++p) {
    std::cout << "  " << sc.projects[p].name << ": share "
              << fmt(sc.share_fraction(p), 3) << ", got "
              << fmt(res.metrics.usage_fraction[p], 3) << "\n";
  }
  std::cout << "\nFirst day of the timeline:\n"
            << res.timeline.to_ascii(sc.duration, 96);
  return 0;
}
