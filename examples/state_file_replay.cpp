// State-file replay: the workflow §4.3 describes for alpha testers — take a
// scenario description captured from a real machine, reproduce the client's
// behavior under the emulator, and inspect the message log and timeline.
//
// Usage: state_file_replay <scenario-file> [--policy wrr|local|global]
//                          [--fetch orig|hyst] [--log] [--csv <path>]
//
// With no file argument, a built-in demo scenario is written to
// ./demo_scenario.txt and replayed, so the example is runnable standalone.

#include <cstring>
#include <fstream>
#include <iostream>

#include "core/bce.hpp"

namespace {

void write_demo(const std::string& path) {
  const bce::Scenario demo = bce::paper_scenario2();
  std::ofstream f(path);
  f << bce::serialize_scenario(demo);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bce;

  std::string path;
  EmulationOptions opt;
  bool show_log = false;
  std::string csv_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--policy" && i + 1 < argc) {
      const std::string v = argv[++i];
      opt.policy.sched = v == "wrr"     ? JobSchedPolicy::kWrr
                         : v == "local" ? JobSchedPolicy::kLocal
                                        : JobSchedPolicy::kGlobal;
    } else if (arg == "--fetch" && i + 1 < argc) {
      opt.policy.fetch = std::string(argv[++i]) == "orig"
                             ? FetchPolicy::kOrig
                             : FetchPolicy::kHysteresis;
    } else if (arg == "--log") {
      show_log = true;
    } else if (arg == "--csv" && i + 1 < argc) {
      csv_path = argv[++i];
    } else {
      path = arg;
    }
  }

  if (path.empty()) {
    path = "demo_scenario.txt";
    write_demo(path);
    std::cout << "(no scenario file given; wrote and replaying " << path
              << ")\n\n";
  }

  Scenario sc;
  try {
    sc = load_scenario_file(path);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }

  Logger log;
  if (show_log) {
    log.enable_all();
    log.set_stream(&std::cout);
  }
  opt.logger = &log;
  opt.record_timeline = true;

  const EmulationResult res = emulate(sc, opt);

  std::cout << "=== replay of '" << sc.name << "' ("
            << opt.policy.sched_name() << " + " << opt.policy.fetch_name()
            << ") ===\n"
            << res.metrics.summary() << "\n\n"
            << res.timeline.to_ascii(sc.duration, 96);

  if (!csv_path.empty()) {
    std::ofstream csv(csv_path);
    res.timeline.write_csv(csv);
    std::cout << "\ntimeline CSV written to " << csv_path << "\n";
  }
  return 0;
}
