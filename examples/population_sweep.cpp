// Population sweep: Monte-Carlo sampling over the scenario population
// (paper §6.2 future work) — draw N random scenarios, emulate each under
// two policy pairs in parallel, and summarize which policy wins how often.
//
// Usage: population_sweep [n_scenarios]

#include <cstdlib>
#include <iostream>

#include "core/bce.hpp"

int main(int argc, char** argv) {
  using namespace bce;

  const int n = argc > 1 ? std::atoi(argv[1]) : 20;
  Xoshiro256 rng(20110516);  // IPDPS 2011 workshop date as the root seed

  PopulationParams pp;
  pp.duration = 3.0 * kSecondsPerDay;  // keep the sweep quick

  std::vector<RunSpec> specs;
  for (int i = 0; i < n; ++i) {
    const Scenario sc = sample_scenario(rng, pp);
    for (const bool modern : {false, true}) {
      RunSpec spec;
      spec.scenario = sc;
      spec.options.policy.sched =
          modern ? JobSchedPolicy::kGlobal : JobSchedPolicy::kWrr;
      spec.options.policy.fetch =
          modern ? FetchPolicy::kHysteresis : FetchPolicy::kOrig;
      spec.label = (modern ? "modern/" : "baseline/") + std::to_string(i);
      specs.push_back(std::move(spec));
    }
  }

  std::cout << "Emulating " << n << " sampled scenarios x 2 policy pairs...\n";
  const auto results = run_batch(specs);

  RunningStats base_score;
  RunningStats modern_score;
  int modern_wins = 0;
  for (int i = 0; i < n; ++i) {
    const auto& b = results[static_cast<std::size_t>(2 * i)].result.metrics;
    const auto& m = results[static_cast<std::size_t>(2 * i + 1)].result.metrics;
    base_score.add(b.weighted_score());
    modern_score.add(m.weighted_score());
    if (m.weighted_score() < b.weighted_score()) ++modern_wins;
  }

  std::cout << "\nweighted score (0 = good):\n"
            << "  JS_WRR    + JF_ORIG        mean " << fmt(base_score.mean())
            << " (min " << fmt(base_score.min()) << ", max "
            << fmt(base_score.max()) << ")\n"
            << "  JS_GLOBAL + JF_HYSTERESIS  mean " << fmt(modern_score.mean())
            << " (min " << fmt(modern_score.min()) << ", max "
            << fmt(modern_score.max()) << ")\n"
            << "modern policies win on " << modern_wins << "/" << n
            << " scenarios\n";
  return 0;
}
