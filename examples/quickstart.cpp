// Quickstart: build a scenario programmatically, emulate 10 days of client
// behavior, and print the figures of merit plus a processor-usage timeline.
//
// Usage: quickstart [seed]

#include <cstdlib>
#include <iostream>

#include "core/bce.hpp"

int main(int argc, char** argv) {
  using namespace bce;

  // A 2-CPU host attached to two projects with a 2:1 resource share.
  Scenario sc;
  sc.name = "quickstart";
  sc.host = HostInfo::cpu_only(2, 1e9);
  sc.duration = 2.0 * kSecondsPerDay;
  sc.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;

  ProjectConfig einstein;
  einstein.name = "einstein";
  einstein.resource_share = 200.0;
  JobClass ej;
  ej.name = "fgrp";
  ej.flops_est = 3600.0 * 1e9;  // one hour per job
  ej.flops_cv = 0.1;            // actual runtimes normally distributed
  ej.latency_bound = 2.0 * kSecondsPerDay;
  ej.usage = ResourceUsage::cpu(1.0);
  einstein.job_classes.push_back(ej);

  ProjectConfig rosetta;
  rosetta.name = "rosetta";
  rosetta.resource_share = 100.0;
  JobClass rj = ej;
  rj.name = "rosetta_job";
  rj.flops_est = 2.0 * 3600.0 * 1e9;  // two hours per job
  rosetta.job_classes.push_back(rj);

  sc.projects = {einstein, rosetta};

  EmulationOptions opt;
  opt.policy.sched = JobSchedPolicy::kGlobal;
  opt.policy.fetch = FetchPolicy::kHysteresis;
  opt.record_timeline = true;

  const EmulationResult res = emulate(sc, opt);

  std::cout << "=== " << sc.name << " (" << opt.policy.sched_name() << " + "
            << opt.policy.fetch_name() << ", "
            << sc.duration / kSecondsPerDay << " days) ===\n";
  std::cout << res.metrics.summary() << "\n\n";

  std::cout << "Per-project usage vs share:\n";
  for (std::size_t p = 0; p < sc.projects.size(); ++p) {
    std::cout << "  " << sc.projects[p].name << ": share "
              << fmt(sc.share_fraction(p), 3) << ", got "
              << fmt(res.metrics.usage_fraction[p], 3) << "\n";
  }

  std::cout << "\nProcessor timeline (letter = project, '.' = idle):\n"
            << res.timeline.to_ascii(sc.duration, 96);
  return 0;
}
