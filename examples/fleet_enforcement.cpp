// Fleet enforcement example: a volunteer with three machines attached to
// two projects wants the 2:1 resource share honored across the *fleet*,
// not per machine (paper §6.2). The cross-host allocator parks the GPU
// project on the GPU box and makes up the difference on the CPU boxes.

#include <iostream>

#include "core/bce.hpp"
#include "fleet/fleet.hpp"

int main() {
  using namespace bce;

  FleetConfig fc;
  fc.duration = 3.0 * kSecondsPerDay;

  FleetHostSpec laptop;
  laptop.name = "laptop";
  laptop.host = HostInfo::cpu_only(4, 1.5e9);
  laptop.availability.host_on = OnOffSpec::daily_window(
      8.0 * kSecondsPerHour, 22.0 * kSecondsPerHour);  // on during the day
  laptop.seed = 1;

  FleetHostSpec desktop;
  desktop.name = "desktop";
  desktop.host = HostInfo::cpu_gpu(8, 2e9, 1, 30e9);
  desktop.seed = 2;

  FleetHostSpec server;
  server.name = "old_server";
  server.host = HostInfo::cpu_only(16, 1e9);
  server.seed = 3;

  fc.hosts = {laptop, desktop, server};

  ProjectConfig climate;
  climate.name = "climate";
  climate.resource_share = 200.0;  // volunteer wants 2/3 of the fleet
  JobClass cj;
  cj.name = "model";
  cj.flops_est = 3600.0 * 1.5e9;
  cj.flops_cv = 0.1;
  cj.latency_bound = 5.0 * kSecondsPerDay;
  cj.usage = ResourceUsage::cpu(1.0);
  climate.job_classes.push_back(cj);

  ProjectConfig folding;
  folding.name = "folding";
  folding.resource_share = 100.0;
  JobClass fg;
  fg.name = "gpu_fold";
  fg.flops_est = 1800.0 * 30e9;
  fg.flops_cv = 0.1;
  fg.latency_bound = 1.0 * kSecondsPerDay;
  fg.usage = ResourceUsage::gpu(ProcType::kNvidia, 1.0, 0.05);
  folding.job_classes.push_back(fg);
  JobClass fcpu = cj;
  fcpu.name = "cpu_fold";
  folding.job_classes.push_back(fcpu);

  fc.projects = {climate, folding};

  PolicyConfig pol;
  pol.sched = JobSchedPolicy::kGlobal;

  std::cout << "Fleet: laptop (day-time only) + GPU desktop + old server,\n"
            << "projects climate (share 200) and folding (share 100)\n\n";

  for (const auto mode :
       {FleetEnforcement::kPerHost, FleetEnforcement::kCrossHost}) {
    const FleetResult r = run_fleet(fc, pol, mode);
    std::cout << (mode == FleetEnforcement::kPerHost ? "per-host"
                                                     : "cross-host")
              << " enforcement: share_violation=" << fmt(r.share_violation)
              << " idle=" << fmt(r.idle_fraction()) << "\n";
    for (std::size_t p = 0; p < fc.projects.size(); ++p) {
      std::cout << "  " << fc.projects[p].name << ": wanted "
                << fmt(fc.projects[p].resource_share / 300.0) << ", got "
                << fmt(r.usage_fraction[p]) << "\n";
    }
    if (mode == FleetEnforcement::kCrossHost) {
      std::cout << "  per-host shares assigned by the allocator:\n";
      for (std::size_t h = 0; h < fc.hosts.size(); ++h) {
        std::cout << "    " << fc.hosts[h].name << ": ";
        for (std::size_t p = 0; p < fc.projects.size(); ++p) {
          std::cout << fc.projects[p].name << "="
                    << fmt(r.assigned_shares[h][p], 1) << " ";
        }
        std::cout << "\n";
      }
    }
    std::cout << "\n";
  }
  return 0;
}
