// Availability patterns example: the same host and projects under the
// library's availability presets (§4.1: "hosts have widely differing
// availability patterns: some are available all the time, others are
// available periodically or randomly"). Shows how availability interacts
// with deadlines — an evening-only PC can finish fewer tight-deadline jobs
// per available hour than a dedicated machine.

#include <iostream>

#include "core/bce.hpp"
#include "host/availability_presets.hpp"

int main() {
  using namespace bce;

  Scenario base;
  base.name = "availability_demo";
  base.host = HostInfo::cpu_gpu(4, 1e9, 1, 10e9);
  base.duration = 7.0 * kSecondsPerDay;
  base.prefs.min_queue = 2.0 * kSecondsPerHour;
  base.prefs.max_queue = 8.0 * kSecondsPerHour;

  ProjectConfig tight;
  tight.name = "tight";
  tight.resource_share = 100.0;
  JobClass tj;
  tj.name = "cpu";
  tj.flops_est = 3600e9;
  tj.flops_cv = 0.1;
  tj.latency_bound = 0.5 * kSecondsPerDay;  // tight: 12 h
  tj.usage = ResourceUsage::cpu(1.0);
  tight.job_classes.push_back(tj);

  ProjectConfig relaxed;
  relaxed.name = "relaxed";
  relaxed.resource_share = 100.0;
  JobClass rj = tj;
  rj.latency_bound = 7.0 * kSecondsPerDay;
  relaxed.job_classes.push_back(rj);
  JobClass rg;
  rg.name = "gpu";
  rg.flops_est = 36000e9;
  rg.flops_cv = 0.1;
  rg.latency_bound = 7.0 * kSecondsPerDay;
  rg.usage = ResourceUsage::gpu(ProcType::kNvidia, 1.0, 0.05);
  relaxed.job_classes.push_back(rg);

  base.projects = {tight, relaxed};

  struct Preset {
    const char* name;
    HostAvailabilitySpec avail;
  };
  const std::vector<Preset> presets = {
      {"dedicated", avail_dedicated()},
      {"office workstation", avail_office_workstation()},
      {"evening PC", avail_evening_pc()},
      {"laptop", avail_laptop()},
      {"gamer rig", avail_gamer_rig()},
  };

  std::cout << "One week, same host and projects, different availability "
               "patterns:\n\n";
  Table t({"pattern", "avail capacity", "idle", "wasted", "jobs done",
           "jobs missed"});
  for (const auto& p : presets) {
    Scenario sc = base;
    sc.availability = p.avail;
    const EmulationResult res = emulate(sc);
    const Metrics& m = res.metrics;
    t.add_row({p.name,
               fmt(m.available_flops /
                       (base.host.total_peak_flops() * base.duration),
                   2),
               fmt(m.idle_fraction()), fmt(m.wasted_fraction()),
               std::to_string(m.n_jobs_completed),
               std::to_string(m.n_jobs_missed)});
  }
  t.print(std::cout);
  std::cout << "\n('avail capacity' = fraction of the week the hardware was "
               "allowed to compute, peak-FLOPS weighted)\n";
  return 0;
}
