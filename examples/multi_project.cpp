// Multi-project example: the paper's scenario 4 (twenty projects, CPU+GPU
// host), comparing all combinations of job-scheduling and job-fetch
// policies side by side — the kind of policy study §5 performs.

#include <iostream>

#include "core/bce.hpp"

int main() {
  using namespace bce;

  const Scenario sc = paper_scenario4();

  std::vector<RunSpec> specs;
  for (const auto sched :
       {JobSchedPolicy::kWrr, JobSchedPolicy::kLocal, JobSchedPolicy::kGlobal}) {
    for (const auto fetch : {FetchPolicy::kOrig, FetchPolicy::kHysteresis}) {
      RunSpec spec;
      spec.scenario = sc;
      spec.options.policy.sched = sched;
      spec.options.policy.fetch = fetch;
      spec.label = std::string(spec.options.policy.sched_name()) + "+" +
                   spec.options.policy.fetch_name();
      specs.push_back(std::move(spec));
    }
  }

  std::cout << "Emulating scenario 4 (" << sc.projects.size()
            << " projects, 10 days) under " << specs.size()
            << " policy combinations...\n\n";
  const auto results = run_batch(specs);

  Table table({"policy", "idle", "wasted", "share_viol", "monotony",
               "rpcs/job", "score"});
  for (const auto& r : results) {
    const Metrics& m = r.result.metrics;
    table.add_row({r.label, fmt(m.idle_fraction()), fmt(m.wasted_fraction()),
                   fmt(m.share_violation()), fmt(m.monotony),
                   fmt(m.rpcs_per_job(), 2), fmt(m.weighted_score())});
  }
  table.print(std::cout);
  std::cout << "\n(all metrics: 0 = good, 1 = bad; score = equal-weight "
               "combination)\n";
  return 0;
}
