#include "sim/trace.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ostream>

#include "sim/proc_type.hpp"
#include "sim/state_io.hpp"

namespace bce {

namespace {

/// printf into a std::string, growing past the stack buffer when needed.
__attribute__((format(printf, 1, 2)))
std::string format_string(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  char buf[256];
  const int n = std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  std::string out;
  if (n >= 0) {
    if (static_cast<std::size_t>(n) < sizeof buf) {
      out.assign(buf, static_cast<std::size_t>(n));
    } else {
      out.resize(static_cast<std::size_t>(n));
      std::vsnprintf(out.data(), static_cast<std::size_t>(n) + 1, fmt, ap2);
    }
  }
  va_end(ap2);
  return out;
}

const char* event_proc_name(std::int32_t ptype) {
  if (ptype < 0 || ptype >= static_cast<std::int32_t>(kNumProcTypes)) {
    return "?";
  }
  return proc_name(static_cast<ProcType>(ptype));
}

}  // namespace

const char* trace_kind_name(TraceKind k) {
  switch (k) {
    case TraceKind::kJobStarted: return "job_started";
    case TraceKind::kJobPreempted: return "job_preempted";
    case TraceKind::kJobCompleted: return "job_completed";
    case TraceKind::kJobUploaded: return "job_uploaded";
    case TraceKind::kJobDownloaded: return "job_downloaded";
    case TraceKind::kJobSkippedRam: return "job_skipped_ram";
    case TraceKind::kJobSkippedCoproc: return "job_skipped_coproc";
    case TraceKind::kSchedulePass: return "schedule_pass";
    case TraceKind::kRrSimType: return "rr_sim_type";
    case TraceKind::kRrSimEndangered: return "rr_sim_endangered";
    case TraceKind::kFetchRequest: return "fetch_request";
    case TraceKind::kFetchReplyLost: return "fetch_reply_lost";
    case TraceKind::kFetchProjectDown: return "fetch_project_down";
    case TraceKind::kFetchBackoff: return "fetch_backoff";
    case TraceKind::kRpcRoundTrip: return "rpc_round_trip";
    case TraceKind::kAvailability: return "availability";
    case TraceKind::kServerDown: return "server_down";
    case TraceKind::kServerSent: return "server_sent";
    case TraceKind::kServerRefused: return "server_refused";
    case TraceKind::kJobFaulted: return "job_faulted";
    case TraceKind::kHostCrash: return "host_crash";
    case TraceKind::kHostReboot: return "host_reboot";
    case TraceKind::kRpcReplyLost: return "rpc_reply_lost";
    case TraceKind::kCount_: break;
  }
  return "?";
}

bool trace_kind_from_name(const std::string& name, TraceKind* out) {
  for (std::size_t i = 0; i < kNumTraceKinds; ++i) {
    const auto k = static_cast<TraceKind>(i);
    if (name == trace_kind_name(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

LogCategory trace_kind_category(TraceKind k) {
  switch (k) {
    case TraceKind::kJobStarted:
    case TraceKind::kJobPreempted:
    case TraceKind::kJobCompleted:
    case TraceKind::kJobUploaded:
    case TraceKind::kJobDownloaded:
      return LogCategory::kTask;
    case TraceKind::kJobSkippedRam:
    case TraceKind::kJobSkippedCoproc:
    case TraceKind::kSchedulePass:
      return LogCategory::kCpuSched;
    case TraceKind::kRrSimType:
    case TraceKind::kRrSimEndangered:
      return LogCategory::kRrSim;
    case TraceKind::kFetchRequest:
    case TraceKind::kFetchReplyLost:
    case TraceKind::kFetchProjectDown:
    case TraceKind::kFetchBackoff:
      return LogCategory::kWorkFetch;
    case TraceKind::kRpcRoundTrip:
      return LogCategory::kRpc;
    case TraceKind::kAvailability:
      return LogCategory::kAvail;
    case TraceKind::kServerDown:
    case TraceKind::kServerSent:
    case TraceKind::kServerRefused:
      return LogCategory::kServer;
    case TraceKind::kJobFaulted:
    case TraceKind::kHostCrash:
    case TraceKind::kHostReboot:
    case TraceKind::kRpcReplyLost:
      return LogCategory::kFault;
    case TraceKind::kCount_:
      break;
  }
  return LogCategory::kTask;
}

std::string render_text(const TraceEvent& ev) {
  switch (ev.kind) {
    case TraceKind::kJobStarted:
      return format_string("job %d started (project %d)", ev.job, ev.project);
    case TraceKind::kJobPreempted:
      return format_string("job %d preempted (project %d)", ev.job,
                           ev.project);
    case TraceKind::kJobCompleted:
      return format_string("job %d completed (project %d)%s", ev.job,
                           ev.project, ev.flag ? " MISSED DEADLINE" : "");
    case TraceKind::kJobUploaded:
      return format_string("job %d output files uploaded", ev.job);
    case TraceKind::kJobDownloaded:
      return format_string("job %d input files downloaded", ev.job);
    case TraceKind::kJobSkippedRam:
      return format_string("job %d skipped: RAM limit", ev.job);
    case TraceKind::kJobSkippedCoproc:
      return format_string("job %d skipped: no free %s", ev.job,
                           event_proc_name(ev.ptype));
    case TraceKind::kSchedulePass:
      return format_string("schedule: %zu candidates, %zu chosen (cpu left %.2f)",
                           static_cast<std::size_t>(ev.n),
                           static_cast<std::size_t>(ev.m), ev.v0);
    case TraceKind::kRrSimType:
      return format_string("%s: SAT=%.0fs SHORTFALL=%.0f inst-sec idle_now=%.1f",
                           event_proc_name(ev.ptype), ev.v0, ev.v1, ev.v2);
    case TraceKind::kRrSimEndangered:
      return format_string("%d job(s) deadline-endangered",
                           static_cast<int>(ev.n));
    case TraceKind::kFetchRequest:
      return format_string(
          "fetch from project %d (%s): trigger %s, %.0f cpu-sec, "
          "%.0f nvidia-sec, %.0f ati-sec",
          ev.project, ev.str != nullptr ? ev.str : "?",
          event_proc_name(ev.ptype), ev.v0, ev.v1, ev.v2);
    case TraceKind::kFetchReplyLost:
      return format_string("reply lost; retrying in %.0fs", ev.v0);
    case TraceKind::kFetchProjectDown:
      return format_string("project down; backing off %.0fs", ev.v0);
    case TraceKind::kFetchBackoff:
      return format_string("no %s jobs; backing off %.0fs",
                           event_proc_name(ev.ptype), ev.v0);
    case TraceKind::kRpcRoundTrip:
      return format_string("RPC to project %d: reported %d, received %zu job(s)%s",
                           ev.project, static_cast<int>(ev.n),
                           static_cast<std::size_t>(ev.m),
                           ev.flag ? " (server down)" : "");
    case TraceKind::kAvailability:
      return format_string("availability: cpu=%d gpu=%d net=%d",
                           static_cast<int>(ev.n), static_cast<int>(ev.m),
                           ev.flag ? 1 : 0);
    case TraceKind::kServerDown:
      return format_string("%s: server down, RPC rejected",
                           ev.str != nullptr ? ev.str : "?");
    case TraceKind::kServerSent:
      return format_string("%s: sent %.0f %s jobs (%.0f inst-sec requested, %.0f sent)",
                           ev.str != nullptr ? ev.str : "?", ev.v0,
                           event_proc_name(ev.ptype), ev.v1, ev.v2);
    case TraceKind::kServerRefused:
      return format_string(
          "%s: refused work (on_ac=%d on_wifi=%d battery=%.0f%%)",
          ev.str != nullptr ? ev.str : "?", ev.flag ? 1 : 0,
          static_cast<int>(ev.n), ev.v0 * 100.0);
    case TraceKind::kJobFaulted:
      return format_string("job %d %s (project %d, %.0f%%)", ev.job,
                           ev.flag ? "aborted" : "compute error", ev.project,
                           ev.v0);
    case TraceKind::kHostCrash:
      return format_string(
          "host crash: all running tasks roll back to last checkpoint, "
          "rebooting for %.0fs",
          ev.v0);
    case TraceKind::kHostReboot:
      return "host rebooted, client restarting";
    case TraceKind::kRpcReplyLost:
      return format_string(
          "RPC reply from project %d lost in flight (%d job(s) orphaned)",
          ev.project, static_cast<int>(ev.n));
    case TraceKind::kCount_:
      break;
  }
  return "?";
}

namespace {

void append_json_escaped(std::string* out, const char* s) {
  for (const char* p = s; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof esc, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += esc;
        } else {
          *out += c;
        }
    }
  }
}

bool parse_json_unescaped(const std::string& line, std::size_t* pos,
                          std::string* out) {
  // *pos is at the opening quote.
  if (*pos >= line.size() || line[*pos] != '"') return false;
  ++*pos;
  out->clear();
  while (*pos < line.size()) {
    const char c = line[*pos];
    if (c == '"') {
      ++*pos;
      return true;
    }
    if (c == '\\') {
      if (*pos + 1 >= line.size()) return false;
      const char e = line[*pos + 1];
      switch (e) {
        case '"': *out += '"'; *pos += 2; break;
        case '\\': *out += '\\'; *pos += 2; break;
        case 'n': *out += '\n'; *pos += 2; break;
        case 't': *out += '\t'; *pos += 2; break;
        case 'r': *out += '\r'; *pos += 2; break;
        case 'u': {
          if (*pos + 6 > line.size()) return false;
          const std::string hex = line.substr(*pos + 2, 4);
          char* end = nullptr;
          const long v = std::strtol(hex.c_str(), &end, 16);
          if (end == nullptr || *end != '\0' || v < 0 || v > 0xff) {
            return false;
          }
          *out += static_cast<char>(v);
          *pos += 6;
          break;
        }
        default: return false;
      }
    } else {
      *out += c;
      ++*pos;
    }
  }
  return false;
}

/// Find `"key":` and return the index just past the colon.
bool find_key(const std::string& line, const char* key, std::size_t* val_pos) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  *val_pos = at + needle.size();
  return true;
}

bool parse_double_field(const std::string& line, const char* key,
                        double* out) {
  std::size_t pos = 0;
  if (!find_key(line, key, &pos)) return false;
  char* end = nullptr;
  *out = std::strtod(line.c_str() + pos, &end);
  return end != line.c_str() + pos;
}

bool parse_int_field(const std::string& line, const char* key,
                     std::int64_t* out) {
  std::size_t pos = 0;
  if (!find_key(line, key, &pos)) return false;
  char* end = nullptr;
  *out = std::strtoll(line.c_str() + pos, &end, 10);
  return end != line.c_str() + pos;
}

bool parse_bool_field(const std::string& line, const char* key, bool* out) {
  std::size_t pos = 0;
  if (!find_key(line, key, &pos)) return false;
  if (line.compare(pos, 4, "true") == 0) {
    *out = true;
    return true;
  }
  if (line.compare(pos, 5, "false") == 0) {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

std::string trace_event_to_json(const TraceEvent& ev) {
  std::string out;
  out.reserve(192);
  char num[40];
  const auto add_double = [&](const char* key, double v) {
    std::snprintf(num, sizeof num, "%.17g", v);
    out += ",\"";
    out += key;
    out += "\":";
    out += num;
  };
  std::snprintf(num, sizeof num, "%.17g", ev.at);
  out += "{\"at\":";
  out += num;
  out += ",\"kind\":\"";
  out += trace_kind_name(ev.kind);
  out += "\",\"cat\":\"";
  out += log_category_name(trace_kind_category(ev.kind));
  out += "\"";
  std::snprintf(num, sizeof num, ",\"project\":%d,\"job\":%d,\"ptype\":%d",
                ev.project, ev.job, ev.ptype);
  out += num;
  out += ev.flag ? ",\"flag\":true" : ",\"flag\":false";
  std::snprintf(num, sizeof num, ",\"n\":%" PRId64 ",\"m\":%" PRId64, ev.n,
                ev.m);
  out += num;
  add_double("v0", ev.v0);
  add_double("v1", ev.v1);
  add_double("v2", ev.v2);
  out += ",\"str\":";
  if (ev.str != nullptr) {
    out += '"';
    append_json_escaped(&out, ev.str);
    out += '"';
  } else {
    out += "null";
  }
  out += '}';
  return out;
}

bool trace_event_from_json(const std::string& line, ParsedTraceEvent* out) {
  *out = ParsedTraceEvent{};
  TraceEvent& ev = out->ev;

  std::size_t pos = 0;
  if (!find_key(line, "kind", &pos)) return false;
  std::string kind_name;
  if (!parse_json_unescaped(line, &pos, &kind_name)) return false;
  if (!trace_kind_from_name(kind_name, &ev.kind)) return false;

  if (!parse_double_field(line, "at", &ev.at)) return false;
  std::int64_t i = 0;
  if (!parse_int_field(line, "project", &i)) return false;
  ev.project = static_cast<std::int32_t>(i);
  if (!parse_int_field(line, "job", &i)) return false;
  ev.job = static_cast<std::int32_t>(i);
  if (!parse_int_field(line, "ptype", &i)) return false;
  ev.ptype = static_cast<std::int32_t>(i);
  if (!parse_bool_field(line, "flag", &ev.flag)) return false;
  if (!parse_int_field(line, "n", &ev.n)) return false;
  if (!parse_int_field(line, "m", &ev.m)) return false;
  if (!parse_double_field(line, "v0", &ev.v0)) return false;
  if (!parse_double_field(line, "v1", &ev.v1)) return false;
  if (!parse_double_field(line, "v2", &ev.v2)) return false;

  if (!find_key(line, "str", &pos)) return false;
  if (line.compare(pos, 4, "null") == 0) {
    out->has_str = false;
    ev.str = nullptr;
  } else {
    if (!parse_json_unescaped(line, &pos, &out->str)) return false;
    out->has_str = true;
    ev.str = out->str.c_str();
  }
  return true;
}

void TextSink::on_event(const TraceEvent& ev) {
  char head[64];
  std::snprintf(head, sizeof head, "[%10.1f] [%s] ", ev.at,
                log_category_name(trace_kind_category(ev.kind)));
  (*os_) << head << render_text(ev) << '\n';
}

void LoggerSink::on_event(const TraceEvent& ev) {
  const LogCategory c = trace_kind_category(ev.kind);
  if (!log_->enabled(c)) return;  // skip the render when the Logger drops it
  log_->logf(ev.at, c, "%s", render_text(ev).c_str());
}

void JsonlSink::on_event(const TraceEvent& ev) {
  (*os_) << trace_event_to_json(ev) << '\n';
}

void CounterSink::on_event(const TraceEvent& ev) {
  ++counts_[static_cast<std::size_t>(trace_kind_category(ev.kind))];
}

void CounterSink::save_state(StateWriter& w) const {
  w.put_count("trace.counters", counts_.size());
  for (const std::int64_t c : counts_) w.put_i64("trace.counter", c);
}

void CounterSink::restore_state(StateReader& r) {
  const std::uint64_t n = r.get_count("trace.counters");
  counts_.fill(0);
  for (std::uint64_t i = 0; i < n && i < counts_.size(); ++i) {
    counts_[i] = r.get_i64("trace.counter");
  }
}

void TraceForwarder::on_event(const TraceEvent& ev) { target_->emit(ev); }

}  // namespace bce
