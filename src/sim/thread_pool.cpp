#include "sim/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace bce {

namespace {

/// Set inside worker_loop: a pool helper that re-enters parallel_for (an
/// item spawning nested batches) must not wait on the pool it is part of.
thread_local bool tl_pool_worker = false;

}  // namespace

unsigned resolve_thread_count(unsigned requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("BCE_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0 && v < 1024) {
      return static_cast<unsigned>(v);
    }
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (auto& th : helpers_) th.join();
}

std::size_t ThreadPool::helper_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return helpers_.size();
}

void ThreadPool::run_items() {
  // body_/n_items_ are written under mu_ before this thread is released
  // into the batch, and cleared only after every participant drained, so
  // lock-free reads here are safe.
  const auto& body = *body_;
  for (;;) {
    const std::size_t i = next_.fetch_add(1);
    if (i >= n_items_ || failed_.load()) break;
    try {
      body(i);
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(error_mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      failed_.store(true);
      break;
    }
  }
}

void ThreadPool::worker_loop() {
  tl_pool_worker = true;
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_work_.wait(lock, [&] {
      return shutdown_ || (batch_seq_ != seen && helpers_wanted_ > 0);
    });
    if (shutdown_) return;
    seen = batch_seq_;
    --helpers_wanted_;
    ++helpers_active_;
    lock.unlock();
    run_items();
    lock.lock();
    if (--helpers_active_ == 0) cv_done_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n_items, unsigned n_threads,
                              const std::function<void(std::size_t)>& body) {
  if (n_items == 0) return;

  std::unique_lock<std::mutex> batch(batch_mu_, std::try_to_lock);
  const bool inline_only =
      n_threads <= 1 || n_items == 1 || tl_pool_worker || !batch.owns_lock();
  if (inline_only) {
    // The old single-thread path: run in order; the first exception
    // propagates immediately and later items never start.
    for (std::size_t i = 0; i < n_items; ++i) body(i);
    return;
  }

  const unsigned participants = static_cast<unsigned>(
      std::min<std::size_t>(n_threads, n_items));
  const unsigned want = participants - 1;  // the caller is a participant
  {
    const std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    n_items_ = n_items;
    next_.store(0);
    failed_.store(false);
    first_error_ = nullptr;
    ++batch_seq_;
    helpers_wanted_ = want;
    while (helpers_.size() < want) {
      helpers_.emplace_back([this] { worker_loop(); });
    }
  }
  cv_work_.notify_all();

  run_items();

  {
    std::unique_lock<std::mutex> lock(mu_);
    helpers_wanted_ = 0;  // slots never claimed stand down for this batch
    cv_done_.wait(lock, [&] { return helpers_active_ == 0; });
    body_ = nullptr;
  }
  if (first_error_) std::rethrow_exception(first_error_);
}

}  // namespace bce
