#include "sim/rng.hpp"

namespace bce {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t hash_label(std::string_view label) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : label) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  // SplitMix64 expansion; guarantees a non-zero state.
  for (auto& word : s_) word = splitmix64(seed);
}

Xoshiro256::result_type Xoshiro256::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::uniform01() {
  // Top 53 bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Xoshiro256::below(std::uint64_t n) {
  if (n == 0) return 0;
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

Xoshiro256 Xoshiro256::fork(std::string_view label) {
  std::uint64_t mix = (*this)() ^ hash_label(label);
  return Xoshiro256(splitmix64(mix));
}

}  // namespace bce
