#include "sim/rng.hpp"

#include <string>

#include "sim/state_io.hpp"

namespace bce {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t hash_label(std::string_view label) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : label) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  // SplitMix64 expansion; guarantees a non-zero state.
  for (auto& word : s_) word = splitmix64(seed);
}

Xoshiro256::result_type Xoshiro256::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::uniform01() {
  // Top 53 bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Xoshiro256::below(std::uint64_t n) {
  if (n == 0) return 0;
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

Xoshiro256 Xoshiro256::fork(std::string_view label) {
  std::uint64_t mix = (*this)() ^ hash_label(label);
  return Xoshiro256(splitmix64(mix));
}

void Xoshiro256::save_state(StateWriter& w, const char* name) const {
  // One field per state word: "<name>.s0" .. "<name>.s3". The composed
  // name is hashed for the wire tag, so sibling streams cannot be swapped
  // undetected on restore.
  std::string field(name);
  field += ".s0";
  const std::size_t digit = field.size() - 1;
  for (int i = 0; i < 4; ++i) {
    field[digit] = static_cast<char>('0' + i);
    w.put_u64(field.c_str(), s_[i]);
  }
}

void Xoshiro256::restore_state(StateReader& r, const char* name) {
  std::string field(name);
  field += ".s0";
  const std::size_t digit = field.size() - 1;
  for (int i = 0; i < 4; ++i) {
    field[digit] = static_cast<char>('0' + i);
    s_[i] = r.get_u64(field.c_str());
  }
}

}  // namespace bce
