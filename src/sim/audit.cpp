#include "sim/audit.hpp"

#include <cstdarg>
#include <cstdio>

namespace bce {

namespace detail {

std::string audit_format(const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  return buf;
}

}  // namespace detail

void InvariantAuditor::fail(const std::string& msg) { throw AuditFailure(msg); }

void InvariantAuditor::check_event_monotonic(SimTime at) {
  if (at + kFpEpsilon < last_event_at_) {
    fail(detail::audit_format(
        "event queue popped t=%.6f after t=%.6f; event "
        "timestamps must be monotonic",
        at, last_event_at_));
  }
  if (at > last_event_at_) last_event_at_ = at;
  ++checks_run_;
}

void InvariantAuditor::check_state_version(std::uint64_t version) {
  if (has_version_ && version < last_state_version_) {
    fail(detail::audit_format(
        "RR-sim state_version regressed: %llu after %llu; a "
        "stale simulation could satisfy a newer state",
        static_cast<unsigned long long>(version),
        static_cast<unsigned long long>(last_state_version_)));
  }
  last_state_version_ = version;
  has_version_ = true;
  ++checks_run_;
}

void InvariantAuditor::check_cache_not_stale(std::uint64_t cached_version,
                                             std::uint64_t state_version) {
  if (cached_version > state_version) {
    fail(detail::audit_format(
        "RR-sim memo is from a newer state than the caller: "
        "cached version %llu > state_version %llu; a savestate "
        "restore rewound the version without invalidating the "
        "memo",
        static_cast<unsigned long long>(cached_version),
        static_cast<unsigned long long>(state_version)));
  }
  ++checks_run_;
}

}  // namespace bce
