#include "sim/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace bce {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(frac * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::string Histogram::to_ascii(std::size_t width) const {
  std::size_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[128];
  const double bin_w = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double b_lo = lo_ + bin_w * static_cast<double>(i);
    std::snprintf(line, sizeof line, "[%8.3g,%8.3g) %6zu ", b_lo, b_lo + bin_w,
                  counts_[i]);
    out += line;
    const auto bar =
        (counts_[i] * width + peak - 1) / peak;  // ceil, so nonzero shows
    out.append(counts_[i] ? bar : 0, '#');
    out += '\n';
  }
  return out;
}

}  // namespace bce
