#include "sim/distribution.hpp"

#include <cassert>
#include <cmath>

namespace bce {

double sample_exponential(Xoshiro256& rng, double mean) {
  assert(mean > 0.0);
  // 1 - u in (0, 1] avoids log(0).
  return -mean * std::log(1.0 - rng.uniform01());
}

double sample_standard_normal(Xoshiro256& rng) {
  // Marsaglia polar method; uses a fixed number of stream draws per
  // accepted pair, discarding the second variate for simplicity (the
  // determinism contract matters more than a factor of two here).
  for (;;) {
    const double u = rng.uniform(-1.0, 1.0);
    const double v = rng.uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double sample_normal(Xoshiro256& rng, double mean, double sd) {
  return mean + sd * sample_standard_normal(rng);
}

double sample_truncated_normal(Xoshiro256& rng, double mean, double cv,
                               double floor) {
  if (cv <= 0.0) return mean > floor ? mean : floor;
  const double sd = cv * mean;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double x = sample_normal(rng, mean, sd);
    if (x > floor) return x;
  }
  return floor;
}

double sample_log_uniform(Xoshiro256& rng, double lo, double hi) {
  assert(lo > 0.0 && hi >= lo);
  return lo * std::exp(rng.uniform01() * std::log(hi / lo));
}

double sample_weibull(Xoshiro256& rng, double mean, double shape) {
  assert(mean > 0.0 && shape > 0.0);
  // E[X] = scale * Gamma(1 + 1/k)  =>  scale = mean / Gamma(1 + 1/k).
  const double scale = mean / std::tgamma(1.0 + 1.0 / shape);
  const double u = 1.0 - rng.uniform01();  // (0, 1]
  return scale * std::pow(-std::log(u), 1.0 / shape);
}

double sample_lognormal(Xoshiro256& rng, double mean, double sigma) {
  assert(mean > 0.0 && sigma >= 0.0);
  // E[X] = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2.
  const double mu = std::log(mean) - 0.5 * sigma * sigma;
  return std::exp(mu + sigma * sample_standard_normal(rng));
}

bool sample_bernoulli(Xoshiro256& rng, double p) {
  return rng.uniform01() < p;
}

}  // namespace bce
