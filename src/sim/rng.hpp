#pragma once

/// \file rng.hpp
/// Deterministic random-number generation for the emulator.
///
/// Every emulation run is reproducible given (scenario, policy, seed).
/// All randomness flows from a single 64-bit root seed. Independent
/// subsystems (availability processes, job-size draws per project, estimate
/// error, ...) each derive their own stream so that adding a consumer in one
/// subsystem never perturbs the draws seen by another.

#include <cstdint>
#include <string_view>

namespace bce {

class StateReader;
class StateWriter;

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation re-expressed in C++). Fast, 256-bit state, passes BigCrush.
/// Satisfies the C++ UniformRandomBitGenerator concept so it can drive
/// <random> distributions where convenient, though we provide our own
/// distribution code for cross-platform determinism.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from \p seed via SplitMix64, per the
  /// authors' recommendation (avoids all-zero and low-entropy states).
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()();

  /// Uniform double in [0, 1) with 53 bits of mantissa entropy.
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Unbiased (rejection sampling).
  std::uint64_t below(std::uint64_t n);

  /// Derive an independent child generator. The label participates in the
  /// derivation so distinct subsystems get distinct streams even when forked
  /// in different orders.
  Xoshiro256 fork(std::string_view label);

  /// Serialize / restore the four state words (savestate support,
  /// docs/savestate.md). \p name prefixes the field names so sibling
  /// streams stay distinguishable in the field inventory.
  void save_state(StateWriter& w, const char* name) const;
  void restore_state(StateReader& r, const char* name);

 private:
  std::uint64_t s_[4];
};

/// SplitMix64 step: used for seeding and stream derivation.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stable 64-bit FNV-1a hash of a label, used to salt forked streams.
std::uint64_t hash_label(std::string_view label);

}  // namespace bce
