#pragma once

/// \file decaying_average.hpp
/// Exponentially-decaying accumulator with a configurable half-life.
/// This is the primitive behind BOINC's REC ("recent estimated credit"):
/// work is added as it happens and the total decays with half-life A, so the
/// value approximates "recent average usage" with memory ~A seconds
/// (paper §3.1 "global accounting" and §5.4 / Figure 6).

#include <cmath>

#include "sim/types.hpp"

namespace bce {

class DecayingAverage {
 public:
  /// \p half_life seconds; +inf means "never decays" (a plain running sum).
  explicit DecayingAverage(double half_life = kSecondsPerDay * 10.0)
      : half_life_(half_life) {}

  /// Decay the accumulator from its last-update time to \p now, then add
  /// \p amount (e.g. FLOPs performed during the elapsed interval).
  /// Calls must have non-decreasing \p now.
  void add(SimTime now, double amount) {
    decay_to(now);
    value_ += amount;
  }

  /// Decay to \p now without adding anything.
  void decay_to(SimTime now) {
    if (now <= last_update_) {
      // Allow equal timestamps (multiple updates at one instant).
      last_update_ = last_update_ > now ? last_update_ : now;
      return;
    }
    if (std::isfinite(half_life_) && half_life_ > 0.0) {
      const double dt = now - last_update_;
      value_ *= std::exp2(-dt / half_life_);
    }
    last_update_ = now;
  }

  /// Current (decayed) value as of the last update.
  [[nodiscard]] double value() const { return value_; }

  /// Value decayed to \p now, without mutating state.
  [[nodiscard]] double value_at(SimTime now) const {
    if (now <= last_update_ || !std::isfinite(half_life_) || half_life_ <= 0.0)
      return value_;
    return value_ * std::exp2(-(now - last_update_) / half_life_);
  }

  [[nodiscard]] double half_life() const { return half_life_; }
  void set_half_life(double hl) { half_life_ = hl; }

  void reset(SimTime now = 0.0) {
    value_ = 0.0;
    last_update_ = now;
  }

  /// Savestate support (docs/savestate.md): owners serialize the raw
  /// accumulator pair; the half-life is reconstructed from configuration.
  [[nodiscard]] SimTime last_update() const { return last_update_; }
  void restore(double value, SimTime last_update) {
    value_ = value;
    last_update_ = last_update;
  }

 private:
  double half_life_;
  double value_ = 0.0;
  SimTime last_update_ = 0.0;
};

}  // namespace bce
