#pragma once

/// \file event_queue.hpp
/// A small discrete-event-simulation kernel: a time-ordered queue of
/// cancellable events. The emulator's main loop (core/emulator.cpp) pulls
/// the next event, advances the clock, and dispatches.
///
/// Design notes:
///  * Events are identified by a monotonically increasing handle; cancelling
///    marks a tombstone which is skipped on pop (lazy deletion keeps the
///    queue a plain binary heap — O(log n) schedule/pop, O(1) cancel).
///  * Ties in time break by schedule order, which makes runs deterministic.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/audit.hpp"
#include "sim/types.hpp"

namespace bce {

/// Opaque handle to a scheduled event; used to cancel it.
using EventHandle = std::uint64_t;

inline constexpr EventHandle kNoEvent = 0;

/// Categories let the dispatcher switch without RTTI and make logs readable.
enum class EventKind : std::uint8_t {
  kPoll,              ///< periodic client poll (scheduling + work fetch)
  kTaskCompletion,    ///< a running task is predicted to finish
  kTaskCheckpoint,    ///< a running task writes a checkpoint
  kHostTransition,    ///< host power / GPU-allowed / network availability flips
  kProjectTransition, ///< a project's server goes up or down
  kRpcDeferral,       ///< a deferred scheduler RPC becomes allowed
  kTransfer,          ///< an input-file download finishes (or errors/retries)
  kHostCrash,         ///< injected host crash: tasks roll back to checkpoint
  kHostRecover,       ///< client restarts after a crash reboot delay
  kUser,              ///< free-form event for tests and extensions
};

/// A pending event. `payload` meaning depends on `kind` (e.g. job id,
/// project id, availability channel index).
struct Event {
  SimTime at = 0.0;
  EventKind kind = EventKind::kUser;
  std::int64_t payload = 0;
  EventHandle handle = kNoEvent;
};

/// Time-ordered event queue with cancellation.
class EventQueue {
 public:
  /// Schedule \p kind at absolute time \p at. Returns a handle usable with
  /// cancel(). Scheduling in the past is clamped to the current front; the
  /// caller is expected to schedule at >= now.
  EventHandle schedule(SimTime at, EventKind kind, std::int64_t payload = 0);

  /// Cancel a previously scheduled event. Idempotent; cancelling an already
  /// fired or unknown handle is a no-op. Returns true if the event was live.
  bool cancel(EventHandle h);

  /// True if no live events remain.
  [[nodiscard]] bool empty() const;

  /// Time of the next live event, or kNever when empty.
  [[nodiscard]] SimTime next_time() const;

  /// Pop the next live event. Precondition: !empty().
  Event pop();

  /// Number of live (non-cancelled) events.
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Total events ever scheduled (for stats/benchmarks).
  [[nodiscard]] std::uint64_t scheduled_count() const { return next_handle_ - 1; }

  /// Install a debug auditor (non-owning, may be nullptr): every pop()
  /// then re-checks that event timestamps leave the queue monotonically.
  void set_auditor(InvariantAuditor* auditor) { auditor_ = auditor; }

 private:
  struct Entry {
    Event ev;
    std::uint64_t seq;  // tie-break: FIFO among equal times
    bool operator>(const Entry& other) const {
      if (ev.at != other.ev.at) return ev.at > other.ev.at;
      return seq > other.seq;
    }
  };

  void drop_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  mutable std::unordered_set<EventHandle> cancelled_;
  std::size_t live_ = 0;
  EventHandle next_handle_ = 1;
  std::uint64_t next_seq_ = 0;
  InvariantAuditor* auditor_ = nullptr;
};

}  // namespace bce
