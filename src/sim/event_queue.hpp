#pragma once

/// \file event_queue.hpp
/// A small discrete-event-simulation kernel: a time-ordered queue of
/// cancellable events. The emulator's main loop (core/emulator.cpp) pulls
/// the next event, advances the clock, and dispatches.
///
/// Design notes:
///  * The queue is an explicit binary-heap vector ordered by (time, handle);
///    handles are issued monotonically, so the handle doubles as the FIFO
///    tie-break among equal times, which makes runs deterministic.
///  * Liveness is a flat bitmap indexed by handle: cancel() clears one bit —
///    O(1), no hashing, no allocation — and dead entries are skipped lazily
///    when they reach the heap top (schedule/pop stay O(log n)).
///  * reserve() pre-sizes both the heap and the bitmap so steady-state
///    operation performs no allocations at all.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/audit.hpp"
#include "sim/types.hpp"

namespace bce {

class StateReader;
class StateWriter;

/// Opaque handle to a scheduled event; used to cancel it.
using EventHandle = std::uint64_t;

inline constexpr EventHandle kNoEvent = 0;

/// Categories let the dispatcher switch without RTTI and make logs readable.
enum class EventKind : std::uint8_t {
  kPoll,              ///< periodic client poll (scheduling + work fetch)
  kTaskCompletion,    ///< a running task is predicted to finish
  kTaskCheckpoint,    ///< a running task writes a checkpoint
  kHostTransition,    ///< host power / GPU-allowed / network availability flips
  kProjectTransition, ///< a project's server goes up or down
  kRpcDeferral,       ///< a deferred scheduler RPC becomes allowed
  kTransfer,          ///< an input-file download finishes (or errors/retries)
  kHostCrash,         ///< injected host crash: tasks roll back to checkpoint
  kHostRecover,       ///< client restarts after a crash reboot delay
  kUser,              ///< free-form event for tests and extensions
};

/// A pending event. `payload` meaning depends on `kind` (e.g. job id,
/// project id, availability channel index).
struct Event {
  SimTime at = 0.0;
  EventKind kind = EventKind::kUser;
  std::int64_t payload = 0;
  EventHandle handle = kNoEvent;
};

/// Time-ordered event queue with cancellation.
class EventQueue {
 public:
  /// Schedule \p kind at absolute time \p at. Returns a handle usable with
  /// cancel(). Scheduling in the past is clamped to the current front; the
  /// caller is expected to schedule at >= now.
  EventHandle schedule(SimTime at, EventKind kind, std::int64_t payload = 0);

  /// Cancel a previously scheduled event. Idempotent; cancelling an already
  /// fired or unknown handle is a no-op. Returns true if the event was live.
  bool cancel(EventHandle h);

  /// True if no live events remain.
  [[nodiscard]] bool empty() const;

  /// Time of the next live event, or kNever when empty.
  [[nodiscard]] SimTime next_time() const;

  /// Pop the next live event. Precondition: !empty().
  Event pop();

  /// Pre-size the heap and liveness bitmap for \p n scheduled events, so
  /// steady-state schedule/cancel/pop perform no allocations.
  void reserve(std::size_t n);

  /// Number of live (non-cancelled) events.
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Total events ever scheduled (for stats/benchmarks).
  [[nodiscard]] std::uint64_t scheduled_count() const { return next_handle_ - 1; }

  /// Install a debug auditor (non-owning, may be nullptr): every pop()
  /// then re-checks that event timestamps leave the queue monotonically.
  void set_auditor(InvariantAuditor* auditor) { auditor_ = auditor; }

  /// Savestate support (docs/savestate.md): live events are written
  /// compacted — tombstones dropped, (time, handle)-sorted — plus the
  /// handle allocator, so a restored queue reproduces pop order and future
  /// handle numbering exactly. Handles of already-dead events stay dead.
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  /// Heap order: earliest time first; ties break FIFO by handle (handles
  /// are issued monotonically, so handle order is schedule order).
  static bool before(const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.handle < b.handle;
  }

  [[nodiscard]] bool is_live(EventHandle h) const {
    const std::uint64_t idx = h - 1;
    return (live_bits_[idx >> 6] >> (idx & 63)) & 1u;
  }
  void clear_live(EventHandle h) {
    const std::uint64_t idx = h - 1;
    live_bits_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
  }

  /// std::push_heap/pop_heap comparator: a max-heap of "later first" is a
  /// min-heap on before().
  static bool heap_cmp(const Event& a, const Event& b) { return before(b, a); }

  /// Remove heap_[0] (restores the heap property; no liveness change).
  void remove_top() const;
  /// Drop cancelled entries off the heap top so heap_[0] is live.
  void prune_dead() const;

  // prune_dead/remove_top are const so the read-only queries (empty,
  // next_time) can tidy lazily-deleted entries; they never change the set
  // of live events, only drop tombstones.
  mutable std::vector<Event> heap_;

  /// One bit per handle ever issued (index handle-1), set while the event
  /// is live; cancel() and pop() clear it. Grows by one word per 64
  /// scheduled events.
  std::vector<std::uint64_t> live_bits_;

  std::size_t live_ = 0;
  EventHandle next_handle_ = 1;
  InvariantAuditor* auditor_ = nullptr;
};

}  // namespace bce
