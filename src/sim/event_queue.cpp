#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

#include "sim/state_io.hpp"

namespace bce {

EventHandle EventQueue::schedule(SimTime at, EventKind kind,
                                 std::int64_t payload) {
  Event ev;
  ev.at = at;
  ev.kind = kind;
  ev.payload = payload;
  ev.handle = next_handle_++;

  const std::uint64_t idx = ev.handle - 1;
  if ((idx >> 6) >= live_bits_.size()) live_bits_.push_back(0);
  live_bits_[idx >> 6] |= std::uint64_t{1} << (idx & 63);

  heap_.push_back(ev);
  std::push_heap(heap_.begin(), heap_.end(), heap_cmp);
  ++live_;
  return ev.handle;
}

bool EventQueue::cancel(EventHandle h) {
  if (h == kNoEvent || h >= next_handle_) return false;
  if (!is_live(h)) return false;
  clear_live(h);
  --live_;
  // The heap entry stays behind as a tombstone; prune_dead() drops it once
  // it surfaces. This keeps cancel O(1) with no allocation.
  return true;
}

void EventQueue::remove_top() const {
  std::pop_heap(heap_.begin(), heap_.end(), heap_cmp);
  heap_.pop_back();
}

void EventQueue::prune_dead() const {
  while (!heap_.empty() && !is_live(heap_.front().handle)) remove_top();
}

void EventQueue::reserve(std::size_t n) {
  heap_.reserve(n);
  live_bits_.reserve((n + 63) / 64);
}

bool EventQueue::empty() const {
  prune_dead();
  return heap_.empty();
}

SimTime EventQueue::next_time() const {
  prune_dead();
  return heap_.empty() ? kNever : heap_.front().at;
}

Event EventQueue::pop() {
  prune_dead();
  assert(!heap_.empty());
  const Event ev = heap_.front();
  clear_live(ev.handle);
  remove_top();
  --live_;
  if (auditor_ != nullptr) auditor_->check_event_monotonic(ev.at);
  return ev;
}

void EventQueue::save_state(StateWriter& w) const {
  // Compact on save: drop tombstones and write the live set in the total
  // (time, handle) order. The on-disk form is canonical — two queues with
  // the same live set serialize identically regardless of heap layout or
  // cancellation history.
  std::vector<Event> live_events;
  live_events.reserve(live_);
  for (const Event& ev : heap_) {
    if (is_live(ev.handle)) live_events.push_back(ev);
  }
  std::sort(live_events.begin(), live_events.end(), before);
  w.put_u64("queue.next_handle", next_handle_);
  w.put_count("queue.events", live_events.size());
  for (const Event& ev : live_events) {
    w.put_f64("queue.event.at", ev.at);
    w.put_u32("queue.event.kind", static_cast<std::uint32_t>(ev.kind));
    w.put_i64("queue.event.payload", ev.payload);
    w.put_u64("queue.event.handle", ev.handle);
  }
}

void EventQueue::restore_state(StateReader& r) {
  next_handle_ = r.get_u64("queue.next_handle");
  const std::uint64_t n = r.get_count("queue.events");
  heap_.clear();
  heap_.reserve(n);
  live_bits_.assign((next_handle_ + 62) / 64, 0);
  for (std::uint64_t i = 0; i < n; ++i) {
    Event ev;
    ev.at = r.get_f64("queue.event.at");
    ev.kind = static_cast<EventKind>(r.get_u32("queue.event.kind"));
    ev.payload = r.get_i64("queue.event.payload");
    ev.handle = r.get_u64("queue.event.handle");
    heap_.push_back(ev);
    const std::uint64_t idx = ev.handle - 1;
    live_bits_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
  }
  std::make_heap(heap_.begin(), heap_.end(), heap_cmp);
  live_ = heap_.size();
}

}  // namespace bce
