#include "sim/event_queue.hpp"

#include <cassert>

namespace bce {

EventHandle EventQueue::schedule(SimTime at, EventKind kind,
                                 std::int64_t payload) {
  Event ev;
  ev.at = at;
  ev.kind = kind;
  ev.payload = payload;
  ev.handle = next_handle_++;
  heap_.push(Entry{ev, next_seq_++});
  ++live_;
  return ev.handle;
}

bool EventQueue::cancel(EventHandle h) {
  if (h == kNoEvent || h >= next_handle_) return false;
  const bool inserted = cancelled_.insert(h).second;
  if (inserted && live_ > 0) {
    --live_;
    return true;
  }
  return false;
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.top().ev.handle);
    if (it == cancelled_.end()) break;
    cancelled_.erase(it);
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  drop_cancelled();
  return heap_.empty();
}

SimTime EventQueue::next_time() const {
  drop_cancelled();
  return heap_.empty() ? kNever : heap_.top().ev.at;
}

Event EventQueue::pop() {
  drop_cancelled();
  assert(!heap_.empty());
  Event ev = heap_.top().ev;
  heap_.pop();
  --live_;
  if (auditor_ != nullptr) auditor_->check_event_monotonic(ev.at);
  return ev;
}

}  // namespace bce
