#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace bce {

EventHandle EventQueue::schedule(SimTime at, EventKind kind,
                                 std::int64_t payload) {
  Event ev;
  ev.at = at;
  ev.kind = kind;
  ev.payload = payload;
  ev.handle = next_handle_++;

  const std::uint64_t idx = ev.handle - 1;
  if ((idx >> 6) >= live_bits_.size()) live_bits_.push_back(0);
  live_bits_[idx >> 6] |= std::uint64_t{1} << (idx & 63);

  heap_.push_back(ev);
  std::push_heap(heap_.begin(), heap_.end(), heap_cmp);
  ++live_;
  return ev.handle;
}

bool EventQueue::cancel(EventHandle h) {
  if (h == kNoEvent || h >= next_handle_) return false;
  if (!is_live(h)) return false;
  clear_live(h);
  --live_;
  // The heap entry stays behind as a tombstone; prune_dead() drops it once
  // it surfaces. This keeps cancel O(1) with no allocation.
  return true;
}

void EventQueue::remove_top() const {
  std::pop_heap(heap_.begin(), heap_.end(), heap_cmp);
  heap_.pop_back();
}

void EventQueue::prune_dead() const {
  while (!heap_.empty() && !is_live(heap_.front().handle)) remove_top();
}

void EventQueue::reserve(std::size_t n) {
  heap_.reserve(n);
  live_bits_.reserve((n + 63) / 64);
}

bool EventQueue::empty() const {
  prune_dead();
  return heap_.empty();
}

SimTime EventQueue::next_time() const {
  prune_dead();
  return heap_.empty() ? kNever : heap_.front().at;
}

Event EventQueue::pop() {
  prune_dead();
  assert(!heap_.empty());
  const Event ev = heap_.front();
  clear_live(ev.handle);
  remove_top();
  --live_;
  if (auditor_ != nullptr) auditor_->check_event_monotonic(ev.at);
  return ev;
}

}  // namespace bce
