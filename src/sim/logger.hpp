#pragma once

/// \file logger.hpp
/// Categorized message log, mirroring the BOINC client's log_flags: the
/// paper stresses that BCE "generates ... a message log detailing the
/// scheduling decisions" (§4.3). Categories can be toggled individually;
/// messages are timestamped with simulated time and either streamed to an
/// ostream, retained in memory (for tests), or both.

#include <array>
#include <cstdarg>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace bce {

enum class LogCategory : std::uint8_t {
  kTask,      ///< task start/suspend/resume/complete/checkpoint
  kCpuSched,  ///< job-scheduler decisions (ordered list, preemptions)
  kRrSim,     ///< round-robin simulation outputs
  kWorkFetch, ///< work-fetch decisions and request sizes
  kRpc,       ///< scheduler RPCs and replies
  kAvail,     ///< availability transitions
  kServer,    ///< simulated server decisions
  kFault,     ///< injected faults (job failures, crashes, lost RPCs)
  kCount_,
};

inline constexpr std::size_t kNumLogCategories =
    static_cast<std::size_t>(LogCategory::kCount_);

/// Human-readable tag for a category ("task", "cpu_sched", ...).
const char* log_category_name(LogCategory c);

/// Inverse of log_category_name; returns false if \p name is unknown.
bool log_category_from_name(const std::string& name, LogCategory* out);

class Logger {
 public:
  Logger() { enabled_.fill(false); }

  /// Enable/disable a category. All categories start disabled, so an
  /// un-configured logger is free.
  void enable(LogCategory c, bool on = true) {
    enabled_[static_cast<std::size_t>(c)] = on;
  }
  void enable_all(bool on = true) { enabled_.fill(on); }
  [[nodiscard]] bool enabled(LogCategory c) const {
    return enabled_[static_cast<std::size_t>(c)];
  }

  /// Stream target (may be nullptr to only retain). Not owned.
  void set_stream(std::ostream* os) { stream_ = os; }

  /// Retain messages in memory (tests assert on them).
  void set_retain(bool retain) { retain_ = retain; }

  /// printf-style log line at simulated time \p now.
  void logf(SimTime now, LogCategory c, const char* fmt, ...)
      __attribute__((format(printf, 4, 5)));

  struct Entry {
    SimTime at;
    LogCategory category;
    std::string text;
  };
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
  void clear() { entries_.clear(); }

 private:
  std::array<bool, kNumLogCategories> enabled_{};
  std::ostream* stream_ = nullptr;
  bool retain_ = false;
  std::vector<Entry> entries_;
};

}  // namespace bce
