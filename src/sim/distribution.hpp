#pragma once

/// \file distribution.hpp
/// Hand-rolled sampling routines so that every platform/stdlib produces
/// bit-identical streams (std::normal_distribution et al. are
/// implementation-defined). These are the distributions the paper's
/// simulation layer uses: exponential on/off period lengths (§4.3 b),
/// normally distributed job run times (§4.3 a), plus helpers used by the
/// Monte-Carlo scenario sampler.

#include "sim/rng.hpp"

namespace bce {

/// Exponential with mean \p mean (> 0). Inverse-CDF sampling.
double sample_exponential(Xoshiro256& rng, double mean);

/// Standard normal via Marsaglia polar method (deterministic given stream).
double sample_standard_normal(Xoshiro256& rng);

/// Normal(mean, sd).
double sample_normal(Xoshiro256& rng, double mean, double sd);

/// Normal(mean, cv*mean) truncated below at \p floor (resampled, with a
/// hard fallback to the floor after 64 rejections so pathological
/// parameters cannot hang the simulation). Used for actual job FLOPs:
/// "run times are normally distributed" but must remain positive.
double sample_truncated_normal(Xoshiro256& rng, double mean, double cv,
                               double floor);

/// Log-uniform over [lo, hi], 0 < lo <= hi. Used by the population sampler
/// for quantities spanning orders of magnitude (job sizes, host speeds).
double sample_log_uniform(Xoshiro256& rng, double lo, double hi);

/// Weibull with the given MEAN and shape k (> 0). Javadi et al. [5] found
/// host availability periods are often better fit by Weibull than by the
/// exponential (k = 1 recovers the exponential).
double sample_weibull(Xoshiro256& rng, double mean, double shape);

/// Lognormal with the given MEAN and log-space sigma (>= 0).
double sample_lognormal(Xoshiro256& rng, double mean, double sigma);

/// Bernoulli(p).
bool sample_bernoulli(Xoshiro256& rng, double p);

}  // namespace bce
