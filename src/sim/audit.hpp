#pragma once

/// \file audit.hpp
/// Debug-mode simulation auditor. The golden/determinism tests catch
/// divergence after the fact; the auditor catches broken scheduling
/// invariants at the decision point that violated them, the way BOINC's
/// own client guards its debt/REC accounting with runtime sanity checks.
///
/// An InvariantAuditor is threaded through the scheduling stack
/// (ClientRuntime, RrSim, WorkFetch) and the event kernel (EventQueue):
/// each subsystem holds a non-owning pointer and, when one is installed,
/// re-checks its invariants after every decision point:
///
///  * local (short- and long-term) debts sum to ~0 across eligible
///    projects, per processor type (Accounting centers them on zero);
///  * REC(P) >= 0 for every project;
///  * event timestamps popped from the EventQueue are monotonic;
///  * the RR-sim cache's state_version never regresses;
///  * SHORTFALL(T) >= 0, SAT(T) <= simulated span, and busy + idle
///    instance-seconds conserve against total capacity over the
///    max_queue window;
///  * work requests never ask for negative amounts or for processor
///    types the host does not have;
///  * final metrics conserve: used <= available, wasted <= used.
///
/// A violation throws AuditFailure (the state is corrupt; continuing
/// would launder the corruption into results). Hooks are plain null
/// checks, so an un-audited run pays one predictable branch per decision
/// point. The BCE_AUDIT CMake option (the `audit` preset) installs an
/// auditor into every Emulator; tests and tools can also install one
/// explicitly via EmulationOptions::auditor in any build.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/proc_type.hpp"
#include "sim/types.hpp"

namespace bce {

// The auditor's interface lives at the bottom of the layer DAG so the
// event kernel (sim/event_queue.hpp) can hold a pointer to it; only
// forward declarations of the audited types appear here. Each check's
// definition lives beside the types it inspects — the primitive checks
// in sim/audit.cpp, the client-layer ones in client/audit_checks.cpp,
// the Metrics one in core/audit_checks.cpp — so the include graph points
// strictly downwards (`bce_lint --check layering`).
class Accounting;
struct HostInfo;
struct Metrics;
struct Preferences;
struct RrSimOutput;
struct WorkRequest;

namespace detail {
/// printf-style formatter for audit diagnostics (defined in sim/audit.cpp,
/// shared by the per-layer check definitions).
__attribute__((format(printf, 1, 2))) std::string audit_format(const char* fmt,
                                                               ...);
}  // namespace detail

/// Thrown when a simulation invariant check fails. Carries a one-line
/// description of the violated invariant and the offending values.
class AuditFailure : public std::logic_error {
 public:
  explicit AuditFailure(const std::string& what)
      : std::logic_error("audit: " + what) {}
};

/// Stateful invariant checker. Each check_* throws AuditFailure on
/// violation and otherwise increments checks_run(). The monotonicity
/// checks (event time, state version) keep the last observed value, so
/// one auditor instance must not be shared across concurrent emulations
/// (the fleet layer gives each run its own).
class InvariantAuditor {
 public:
  /// Debts must sum to ~0 per processor type across the projects eligible
  /// for that debt flavour: \p runnable[p][t] gates short-term debt, the
  /// accounting's own capability matrix gates long-term debt. Projects
  /// pinned at the debt cap are excluded (clamping trades exactness for
  /// boundedness, as in BOINC).
  void check_debt_sums(const Accounting& acct,
                       const std::vector<PerProc<bool>>& runnable);

  /// REC is an exponentially-decaying average of non-negative FLOPS; it
  /// can never go negative.
  void check_rec_nonneg(const Accounting& acct);

  /// Event timestamps must leave the queue in non-decreasing order.
  void check_event_monotonic(SimTime at);

  /// The RR-sim cache key must never move backwards; a regressing version
  /// would let a stale simulation satisfy a newer state.
  void check_state_version(std::uint64_t version);

  /// A memoized RR-sim result must never come from a *newer* state than
  /// the one asking for it. This can only happen when a savestate restore
  /// rewinds state_version but fails to invalidate the memo
  /// (docs/savestate.md); RrSim::run_cached calls this before serving a
  /// hit so the stale-cache bug faults at the decision point.
  void check_cache_not_stale(std::uint64_t cached_version,
                             std::uint64_t state_version);

  /// Post-conditions of one RR-sim run at \p now: SHORTFALL(T) >= 0,
  /// 0 <= SAT(T) <= span, idle_instances_now within [0, count], and
  /// busy + shortfall instance-seconds == count * max_queue (capacity
  /// conservation over the work-buffer window).
  void check_rr_output(const RrSimOutput& rr, const HostInfo& host,
                       const Preferences& prefs, SimTime now);

  /// A work request must be non-negative everywhere and empty for
  /// processor types the host lacks.
  void check_fetch_decision(const WorkRequest& req, const HostInfo& host);

  /// Final conservation: 0 <= used <= available capacity, wasted <= used,
  /// failure waste <= wasted (all in FLOPs).
  void check_metrics(const Metrics& m);

  [[nodiscard]] std::uint64_t checks_run() const { return checks_run_; }

  /// Forget monotonicity history (for reuse across independent runs).
  void reset() {
    last_event_at_ = -kNever;
    last_state_version_ = 0;
    has_version_ = false;
  }

  /// Rebase monotonicity history after a savestate restore: the restored
  /// run legitimately resumes at (\p now, \p state_version), which must
  /// not be flagged as a regression against whatever this auditor saw
  /// before the restore.
  void on_state_restored(SimTime now, std::uint64_t state_version) {
    last_event_at_ = now;
    last_state_version_ = state_version;
    has_version_ = true;
  }

 private:
  [[noreturn]] static void fail(const std::string& msg);

  std::uint64_t checks_run_ = 0;
  SimTime last_event_at_ = -kNever;
  std::uint64_t last_state_version_ = 0;
  bool has_version_ = false;
};

}  // namespace bce
