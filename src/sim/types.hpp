#pragma once

/// \file types.hpp
/// Fundamental simulation-wide type aliases and constants.

#include <cstdint>
#include <limits>

namespace bce {

/// Simulated time, in seconds since the start of the emulation.
/// BOINC itself represents time as double-precision seconds; we follow suit.
using SimTime = double;

/// Simulated duration, in seconds.
using Duration = double;

inline constexpr SimTime kSecondsPerMinute = 60.0;
inline constexpr SimTime kSecondsPerHour = 3600.0;
inline constexpr SimTime kSecondsPerDay = 86400.0;

/// A time far beyond any emulation horizon; used as "never".
inline constexpr SimTime kNever = std::numeric_limits<SimTime>::infinity();

/// Identifier types. Plain integers with distinct aliases for readability;
/// -1 means "none".
using ProjectId = int;
using JobId = int;

inline constexpr ProjectId kNoProject = -1;
inline constexpr JobId kNoJob = -1;

/// Floating-point comparison slop used throughout the emulator when
/// comparing accumulated times/FLOPs.
inline constexpr double kFpEpsilon = 1e-9;

/// Clamp \p x into [lo, hi].
constexpr double clamp(double x, double lo, double hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

}  // namespace bce
