#pragma once

/// \file state_io.hpp
/// Versioned, self-checking serialization primitives for emulator
/// savestates (docs/savestate.md). Every stateful layer implements
/// `save_state(StateWriter&)` / `restore_state(StateReader&)` in terms of
/// the typed field accessors below.
///
/// Design:
///  * Each field is written as a 32-bit FNV-1a hash of its name, a one-byte
///    type code, and a fixed-width little-endian value (doubles as raw
///    IEEE-754 bits, so a save/restore round trip is bitwise lossless).
///    Readers verify name and type of every field in order, so a writer and
///    a reader that disagree about the field sequence fail loudly at the
///    first mismatched field (SavestateErrc::kFieldMismatch) instead of
///    silently mis-assigning bytes.
///  * Variable-length data (vectors) is written as a `count` field followed
///    by the element fields; element field names repeat, which keeps the
///    format streamable and the documented field inventory finite.
///  * Only the *payload* lives here. Framing — magic, format version,
///    scenario fingerprint, payload checksum — is the file layer's job
///    (core/savestate.hpp), so unit layers can round-trip through a bare
///    writer/reader pair.
///  * A StateWriter can record a (name, printable value) entry per field.
///    `bce determinism --bisect` uses the recording to dump two divergent
///    states as diffable JSONL, and the `savestate-docs` lint check uses it
///    to require every serialized field name to appear in docs/savestate.md.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bce {

/// Distinct savestate failure classes. The CLI maps these to distinct exit
/// codes (`bce run --load-state`, docs/savestate.md).
enum class SavestateErrc : std::uint8_t {
  kIo = 1,            ///< file unreadable/unwritable
  kBadMagic,          ///< not a savestate file
  kBadVersion,        ///< produced by an incompatible format version
  kTruncated,         ///< shorter than its header claims
  kCorrupt,           ///< payload checksum mismatch
  kFieldMismatch,     ///< field name/type sequence disagrees with the reader
  kScenarioMismatch,  ///< saved under a different scenario/policy
};

/// Stable machine-readable tag ("io", "bad_magic", ...).
const char* savestate_errc_name(SavestateErrc c);

/// Thrown by every savestate read/write failure path. Carries the failure
/// class so callers (the CLI, tests) can branch without string matching.
class SavestateError : public std::runtime_error {
 public:
  SavestateError(SavestateErrc code, const std::string& what)
      : std::runtime_error("savestate: " + what), code_(code) {}
  [[nodiscard]] SavestateErrc code() const { return code_; }

 private:
  SavestateErrc code_;
};

/// Bump whenever the serialized field sequence changes. There is no
/// migration machinery: a savestate is a within-version artifact (warm
/// sweeps, bisection, crash-resume between runs of the same build), so an
/// older-version file is rejected with kBadVersion rather than re-read
/// (forward-compat policy in docs/savestate.md).
inline constexpr std::uint32_t kSavestateVersion = 2;  // v2: device model,
                                                       // workunit/replica
                                                       // fields, server
                                                       // report tallies

/// Stable 32-bit FNV-1a of a field name (the wire tag).
std::uint32_t fnv1a32(std::string_view s);

/// Stable 64-bit FNV-1a over raw bytes (the payload checksum).
std::uint64_t fnv1a64_bytes(const std::uint8_t* data, std::size_t n,
                            std::uint64_t seed = 0xcbf29ce484222325ull);

/// Sequential typed field writer. Append-only; the byte buffer is the
/// savestate payload.
class StateWriter {
 public:
  void put_bool(const char* name, bool v);
  void put_u32(const char* name, std::uint32_t v);
  void put_u64(const char* name, std::uint64_t v);
  void put_i64(const char* name, std::int64_t v);
  void put_f64(const char* name, double v);
  /// Element count preceding a repeated group of fields.
  void put_count(const char* name, std::uint64_t n);
  /// Length-prefixed opaque bytes / UTF-8 text. Used by the fleet shard
  /// protocol (fleet/shard.hpp) to carry serialized scenarios and nested
  /// payloads; emulator savestates stick to the fixed-width types above.
  void put_bytes(const char* name, const std::vector<std::uint8_t>& v);
  void put_str(const char* name, const std::string& v);

  [[nodiscard]] const std::vector<std::uint8_t>& payload() const {
    return buf_;
  }

  /// One recorded field, in write order, when recording is on.
  struct Entry {
    std::string name;
    std::string value;  ///< printable; f64 rendered with 17 digits
  };
  /// Enable per-field (name, value) recording (off by default: the hot
  /// save path pays nothing for the dump/lint facility).
  void record_entries(bool on) { record_ = on; }
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

 private:
  void tag(const char* name, std::uint8_t type);
  void raw32(std::uint32_t v);
  void raw64(std::uint64_t v);
  void note(const char* name, std::string value);

  std::vector<std::uint8_t> buf_;
  bool record_ = false;
  std::vector<Entry> entries_;
};

/// Sequential typed field reader over a payload produced by StateWriter.
/// Every accessor verifies the field's name tag and type code and throws
/// SavestateError(kFieldMismatch) on disagreement, or kTruncated when the
/// payload ends mid-field.
class StateReader {
 public:
  explicit StateReader(std::vector<std::uint8_t> payload)
      : buf_(std::move(payload)) {}

  bool get_bool(const char* name);
  std::uint32_t get_u32(const char* name);
  std::uint64_t get_u64(const char* name);
  std::int64_t get_i64(const char* name);
  double get_f64(const char* name);
  std::uint64_t get_count(const char* name);
  std::vector<std::uint8_t> get_bytes(const char* name);
  std::string get_str(const char* name);

  /// True when every payload byte has been consumed (restore completeness
  /// check: leftover bytes mean writer and reader disagree).
  [[nodiscard]] bool at_end() const { return pos_ == buf_.size(); }

 private:
  void expect(const char* name, std::uint8_t type);
  std::uint32_t raw32();
  std::uint64_t raw64();

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

}  // namespace bce
