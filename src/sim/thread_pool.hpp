#pragma once

/// \file thread_pool.hpp
/// A persistent work-crew thread pool for independent-item fan-out
/// (run_batch and friends). The old controller spawned and joined fresh
/// std::threads per batch; drivers that emulate many small batches paid
/// thread create/join churn per batch. ThreadPool parks its helper
/// threads on a condition variable between batches, so steady-state
/// batches cost two notify/wait handshakes instead of N thread spawns.
///
/// Semantics (mirroring the old per-batch workers exactly):
///  * Items are claimed by atomic index, ascending; an item is either run
///    to completion or never started.
///  * Fail fast: after any item throws, no *new* items are claimed;
///    in-flight items finish. The *first* exception (by store order) is
///    rethrown to the caller after all participants drain.
///  * parallel_for(n_items, 1, ...) runs inline on the caller thread, in
///    order, and propagates the first exception immediately — byte-for-byte
///    the old n_threads<=1 path.
///  * Re-entrant calls (an item that itself calls parallel_for) and
///    concurrent callers degrade to the inline path rather than deadlock.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bce {

/// Effective worker count: \p requested if nonzero, else the BCE_THREADS
/// environment variable (when set to a positive integer), else
/// std::thread::hardware_concurrency() (at least 1).
unsigned resolve_thread_count(unsigned requested);

class ThreadPool {
 public:
  ThreadPool() = default;
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide pool shared by run_batch/run_sweep/run_replicates and
  /// the fleet driver. Helpers are spawned lazily on first parallel use
  /// and parked between batches.
  static ThreadPool& shared();

  /// Run body(0..n_items-1), fanning out over up to \p n_threads threads
  /// (the calling thread participates; helpers are spawned lazily and kept
  /// for later batches). Blocks until every claimed item finished, then
  /// rethrows the first exception if any item threw. See the file comment
  /// for the exact claiming/fail-fast semantics.
  void parallel_for(std::size_t n_items, unsigned n_threads,
                    const std::function<void(std::size_t)>& body);

  /// Helper threads currently alive (high-water mark; for tests/stats).
  [[nodiscard]] std::size_t helper_count() const;

 private:
  void worker_loop();
  /// The claim loop run by the caller and every participating helper.
  void run_items();

  /// Serializes batches: one parallel_for drives the pool at a time;
  /// concurrent callers fall back to inline execution.
  std::mutex batch_mu_;

  mutable std::mutex mu_;  ///< guards batch state + helpers_ below
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<std::thread> helpers_;
  bool shutdown_ = false;

  // State of the in-flight batch (stable while helpers run).
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t n_items_ = 0;
  std::atomic<std::size_t> next_{0};
  std::atomic<bool> failed_{false};
  std::exception_ptr first_error_;
  std::mutex error_mu_;
  std::uint64_t batch_seq_ = 0;    ///< bumped per batch, wakes parked helpers
  unsigned helpers_wanted_ = 0;    ///< unclaimed helper slots this batch
  unsigned helpers_active_ = 0;    ///< helpers currently inside run_items
};

}  // namespace bce
