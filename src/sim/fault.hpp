#pragma once

/// \file fault.hpp
/// Deterministic fault injection. Real volunteer hosts crash, error out
/// jobs, and drop connections (Anderson 2019 reports couple-percent error
/// and timeout rates in production BOINC projects); the scheduling policies
/// under study exist largely to cope with that. A FaultPlan describes fault
/// rates for four independent channels; a FaultInjector turns the plan into
/// concrete, reproducible decisions.
///
/// Determinism contract:
///  * Each fault channel draws from its own RNG stream, forked from the
///    emulation root with a fixed label ("fault.job", "fault.crash",
///    "fault.rpc"; transfer faults draw from "fault.transfer", owned by
///    TransferManager). Adding a consumer to one channel never perturbs
///    another.
///  * A channel whose rate is zero consumes NO draws and schedules NO
///    events, so an all-zero FaultPlan is byte-identical to a build without
///    fault injection — the golden figures of merit do not move.

#include <string>

#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace bce {

/// Scenario-level fault description. All channels default to off.
struct FaultPlan {
  // --- Channel 1: job runtime failures -------------------------------
  /// Probability that a dispatched job hits a compute error partway
  /// through execution (FLOPs spent so far are wasted; the server's
  /// in-progress slot is freed when the failure is reported).
  double job_error_rate = 0.0;
  /// Probability that a dispatched job is aborted mid-run (user or
  /// server abort; accounted separately from compute errors).
  double job_abort_rate = 0.0;

  // --- Channel 2: host crashes ---------------------------------------
  /// Mean time between host crashes (seconds) of a Poisson crash
  /// process, distinct from the availability on/off channel. A crash
  /// rolls every running task back to its last checkpoint and restarts
  /// the client after crash_reboot_delay. 0 disables crashes.
  double crash_mtbf = 0.0;
  /// Downtime after each crash before the client restarts (seconds).
  double crash_reboot_delay = 120.0;

  // --- Channel 3: lost scheduler RPCs --------------------------------
  /// Probability that a scheduler reply is dropped in flight. The server
  /// has already assigned the jobs, which sit orphaned in its in-progress
  /// count until rpc_timeout reclaims them; the client retries under an
  /// exponential backoff separate from the "project down" backoff.
  double rpc_loss_rate = 0.0;
  /// Seconds after which the server reclaims in-progress slots assigned
  /// by a reply the client never received.
  double rpc_timeout = 3600.0;

  // --- Channel 4: transfer failures ----------------------------------
  /// Probability that a download attempt errors mid-flight. The failure
  /// point is uniform in the file's remaining bytes; the transfer retries
  /// after an exponential backoff, resuming or restarting from zero
  /// depending on ProjectConfig::transfers_resumable.
  double transfer_error_rate = 0.0;
  /// Transfer retry backoff bounds (seconds): first retry after
  /// transfer_retry_min, doubling up to transfer_retry_max.
  double transfer_retry_min = 60.0;
  double transfer_retry_max = 3600.0;

  /// True if any fault channel is active.
  [[nodiscard]] bool any() const;

  /// Empty string when the plan is well-formed; otherwise a one-line
  /// description of the first problem (rates outside [0,1], negative
  /// times, NaN/Inf anywhere, retry_min > retry_max, ...).
  [[nodiscard]] std::string validate() const;

  /// Mild fault load (~2% job errors, weekly crashes, 2% RPC loss,
  /// 5% transfer errors) — roughly production-BOINC conditions.
  static FaultPlan light();
  /// Hostile conditions (10% errors, daily crashes, 20% RPC loss,
  /// 25% transfer errors) for stress and degradation studies.
  static FaultPlan heavy();
};

/// Per-run fault decision source. Default-constructed injectors are inert
/// (all channels off, no RNG state); the emulator constructs a live one
/// from the scenario's FaultPlan and the root RNG.
class FaultInjector {
 public:
  FaultInjector() = default;

  /// Forks the per-channel streams "fault.job", "fault.crash" and
  /// "fault.rpc" off \p parent (mutating it, like every fork). Call this
  /// after all pre-existing forks so established streams keep their
  /// derivation order.
  FaultInjector(const FaultPlan& plan, Xoshiro256& parent);

  /// Outcome decided for a job at dispatch time.
  struct JobFate {
    bool fails = false;        ///< job terminates abnormally
    bool abort = false;        ///< abort (vs compute error) when fails
    double fail_fraction = 1.0;///< fraction of total FLOPs at which it dies
  };

  /// Decide the fate of one dispatched job. \p error_rate / \p abort_rate
  /// are the effective per-class rates (class override or plan default).
  /// Consumes no draws when both rates are zero.
  JobFate job_fate(double error_rate, double abort_rate);

  /// Next host crash strictly after \p from (exponential inter-arrival
  /// with mean crash_mtbf), or kNever when crashes are disabled.
  SimTime next_crash(SimTime from);

  /// Decide whether one scheduler reply is lost in flight. Consumes no
  /// draw when rpc_loss_rate is zero.
  bool rpc_reply_lost();

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// Savestate support (docs/savestate.md): the plan is reconstructed from
  /// the scenario; only the three channel stream positions are serialized.
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  FaultPlan plan_;
  Xoshiro256 job_rng_{0};
  Xoshiro256 crash_rng_{0};
  Xoshiro256 rpc_rng_{0};
};

}  // namespace bce
