#include "sim/logger.hpp"

#include <cstdio>
#include <ostream>

namespace bce {

const char* log_category_name(LogCategory c) {
  switch (c) {
    case LogCategory::kTask: return "task";
    case LogCategory::kCpuSched: return "cpu_sched";
    case LogCategory::kRrSim: return "rr_sim";
    case LogCategory::kWorkFetch: return "work_fetch";
    case LogCategory::kRpc: return "rpc";
    case LogCategory::kAvail: return "avail";
    case LogCategory::kServer: return "server";
    case LogCategory::kFault: return "fault";
    case LogCategory::kCount_: break;
  }
  return "?";
}

void Logger::logf(SimTime now, LogCategory c, const char* fmt, ...) {
  if (!enabled(c)) return;
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  if (stream_ != nullptr) {
    char head[64];
    std::snprintf(head, sizeof head, "[%10.1f] [%s] ", now,
                  log_category_name(c));
    (*stream_) << head << buf << '\n';
  }
  if (retain_) {
    entries_.push_back(Entry{now, c, std::string(buf)});
  }
}

}  // namespace bce
