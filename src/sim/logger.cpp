#include "sim/logger.hpp"

#include <cstdio>
#include <ostream>

namespace bce {

const char* log_category_name(LogCategory c) {
  switch (c) {
    case LogCategory::kTask: return "task";
    case LogCategory::kCpuSched: return "cpu_sched";
    case LogCategory::kRrSim: return "rr_sim";
    case LogCategory::kWorkFetch: return "work_fetch";
    case LogCategory::kRpc: return "rpc";
    case LogCategory::kAvail: return "avail";
    case LogCategory::kServer: return "server";
    case LogCategory::kFault: return "fault";
    case LogCategory::kCount_: break;
  }
  return "?";
}

bool log_category_from_name(const std::string& name, LogCategory* out) {
  for (std::size_t i = 0; i < kNumLogCategories; ++i) {
    const auto c = static_cast<LogCategory>(i);
    if (name == log_category_name(c)) {
      *out = c;
      return true;
    }
  }
  return false;
}

void Logger::logf(SimTime now, LogCategory c, const char* fmt, ...) {
  if (!enabled(c)) return;
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  // vsnprintf reports the length the full message would have had; when it
  // exceeds the stack buffer, retry into a heap buffer sized from it so
  // long lines are never silently truncated.
  std::string grown;
  const char* text = buf;
  if (n >= 0 && static_cast<std::size_t>(n) >= sizeof buf) {
    grown.resize(static_cast<std::size_t>(n));
    std::vsnprintf(grown.data(), static_cast<std::size_t>(n) + 1, fmt, ap2);
    text = grown.c_str();
  }
  va_end(ap2);
  if (stream_ != nullptr) {
    char head[64];
    std::snprintf(head, sizeof head, "[%10.1f] [%s] ", now,
                  log_category_name(c));
    (*stream_) << head << text << '\n';
  }
  if (retain_) {
    entries_.push_back(Entry{now, c, std::string(text)});
  }
}

}  // namespace bce
