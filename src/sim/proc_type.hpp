#pragma once

/// \file proc_type.hpp
/// Processor types. BOINC (2011-era, as in the paper) distinguishes CPU,
/// NVIDIA GPU, and ATI GPU; a host may have multiple instances of each and
/// both GPU vendors at once (§2.1).

#include <array>
#include <cstddef>
#include <cstdint>

namespace bce {

enum class ProcType : std::uint8_t { kCpu = 0, kNvidia = 1, kAti = 2 };

inline constexpr std::size_t kNumProcTypes = 3;

inline constexpr std::array<ProcType, kNumProcTypes> kAllProcTypes = {
    ProcType::kCpu, ProcType::kNvidia, ProcType::kAti};

constexpr std::size_t proc_index(ProcType t) {
  return static_cast<std::size_t>(t);
}

constexpr bool is_gpu(ProcType t) { return t != ProcType::kCpu; }

constexpr const char* proc_name(ProcType t) {
  switch (t) {
    case ProcType::kCpu: return "cpu";
    case ProcType::kNvidia: return "nvidia";
    case ProcType::kAti: return "ati";
  }
  return "?";
}

/// Fixed-size map keyed by processor type; used for per-type counters,
/// debts, shortfalls, etc. Zero-initialized.
template <typename T>
struct PerProc {
  std::array<T, kNumProcTypes> v{};

  constexpr T& operator[](ProcType t) { return v[proc_index(t)]; }
  constexpr const T& operator[](ProcType t) const { return v[proc_index(t)]; }

  constexpr T& at(std::size_t i) { return v[i]; }
  constexpr const T& at(std::size_t i) const { return v[i]; }

  void fill(const T& x) { v.fill(x); }
};

}  // namespace bce
