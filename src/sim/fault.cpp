#include "sim/fault.hpp"

#include <cmath>

#include "sim/state_io.hpp"

namespace bce {
namespace {

bool is_rate(double x) { return std::isfinite(x) && x >= 0.0 && x <= 1.0; }
bool is_nonneg(double x) { return std::isfinite(x) && x >= 0.0; }
bool is_pos(double x) { return std::isfinite(x) && x > 0.0; }

}  // namespace

bool FaultPlan::any() const {
  return job_error_rate > 0.0 || job_abort_rate > 0.0 || crash_mtbf > 0.0 ||
         rpc_loss_rate > 0.0 || transfer_error_rate > 0.0;
}

std::string FaultPlan::validate() const {
  if (!is_rate(job_error_rate)) return "fault_job_error must be in [0,1]";
  if (!is_rate(job_abort_rate)) return "fault_job_abort must be in [0,1]";
  if (!is_rate(job_error_rate + job_abort_rate))
    return "fault_job_error + fault_job_abort must not exceed 1";
  if (!is_nonneg(crash_mtbf)) return "fault_crash_mtbf must be >= 0";
  if (!is_nonneg(crash_reboot_delay))
    return "fault_crash_reboot must be >= 0";
  if (!is_rate(rpc_loss_rate)) return "fault_rpc_loss must be in [0,1]";
  if (!is_pos(rpc_timeout)) return "fault_rpc_timeout must be > 0";
  if (!is_rate(transfer_error_rate))
    return "fault_transfer_error must be in [0,1]";
  if (!is_pos(transfer_retry_min))
    return "fault_transfer_retry_min must be > 0";
  if (!is_pos(transfer_retry_max) || transfer_retry_max < transfer_retry_min)
    return "fault_transfer_retry_max must be >= fault_transfer_retry_min";
  return {};
}

FaultPlan FaultPlan::light() {
  FaultPlan p;
  p.job_error_rate = 0.02;
  p.job_abort_rate = 0.005;
  p.crash_mtbf = 7 * kSecondsPerDay;
  p.rpc_loss_rate = 0.02;
  p.transfer_error_rate = 0.05;
  return p;
}

FaultPlan FaultPlan::heavy() {
  FaultPlan p;
  p.job_error_rate = 0.10;
  p.job_abort_rate = 0.02;
  p.crash_mtbf = kSecondsPerDay;
  p.rpc_loss_rate = 0.20;
  p.rpc_timeout = 1800.0;
  p.transfer_error_rate = 0.25;
  return p;
}

FaultInjector::FaultInjector(const FaultPlan& plan, Xoshiro256& parent)
    : plan_(plan),
      job_rng_(parent.fork("fault.job")),
      crash_rng_(parent.fork("fault.crash")),
      rpc_rng_(parent.fork("fault.rpc")) {}

FaultInjector::JobFate FaultInjector::job_fate(double error_rate,
                                               double abort_rate) {
  JobFate fate;
  if (error_rate <= 0.0 && abort_rate <= 0.0) return fate;
  const double u = job_rng_.uniform01();
  if (u < error_rate) {
    fate.fails = true;
  } else if (u < error_rate + abort_rate) {
    fate.fails = true;
    fate.abort = true;
  }
  if (fate.fails) {
    // Failure point uniform over the job's FLOPs; keep it strictly inside
    // (0,1) so a doomed job always runs a little and never "fails" exactly
    // at its natural completion.
    fate.fail_fraction = clamp(job_rng_.uniform01(), 1e-6, 1.0 - 1e-6);
  }
  return fate;
}

SimTime FaultInjector::next_crash(SimTime from) {
  if (plan_.crash_mtbf <= 0.0) return kNever;
  const double u = crash_rng_.uniform01();
  return from - plan_.crash_mtbf * std::log1p(-u);
}

bool FaultInjector::rpc_reply_lost() {
  if (plan_.rpc_loss_rate <= 0.0) return false;
  return rpc_rng_.uniform01() < plan_.rpc_loss_rate;
}

void FaultInjector::save_state(StateWriter& w) const {
  job_rng_.save_state(w, "fault.job_rng");
  crash_rng_.save_state(w, "fault.crash_rng");
  rpc_rng_.save_state(w, "fault.rpc_rng");
}

void FaultInjector::restore_state(StateReader& r) {
  job_rng_.restore_state(r, "fault.job_rng");
  crash_rng_.restore_state(r, "fault.crash_rng");
  rpc_rng_.restore_state(r, "fault.rpc_rng");
}

}  // namespace bce
