#pragma once

/// \file trace.hpp
/// Typed decision tracing. The paper's BCE "generates ... a message log
/// detailing the scheduling decisions" (§4.3); the seed implemented that as
/// printf-formatted text through Logger. This refactor keeps the text output
/// byte-identical but makes the *event* the primary artifact: every decision
/// point emits a TraceEvent (a flat POD: sim time, kind, ids, numeric
/// payload), and pluggable TraceSinks render it — as the classic log line,
/// as JSONL for offline analysis, or as per-category counters for Metrics.
///
/// Fast-path contract: when a category is disabled (or no sink is attached)
/// `Trace::emit` returns after two branches, and building a TraceEvent is a
/// stack aggregate initialization — no allocation anywhere on the disabled
/// path. bench/micro_kernels pins this (BM_TraceEmitDisabled and the
/// emulate-one-day comparison).
///
/// Lifetime note: `TraceEvent::str` is a non-owned pointer (project name,
/// policy name) valid only for the duration of the emit call. Sinks must
/// render synchronously and never stash the pointer.

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/logger.hpp"
#include "sim/types.hpp"

namespace bce {

class StateReader;
class StateWriter;

/// One kind per decision line the emulator can log. The vocabulary is
/// exactly the seed Logger's line formats — render_text() reproduces each
/// byte-for-byte (tests/test_trace_golden.cpp pins this against hashes of
/// pre-refactor output).
enum class TraceKind : std::uint8_t {
  // task
  kJobStarted,      ///< job started (job, project)
  kJobPreempted,    ///< job preempted (job, project)
  kJobCompleted,    ///< job completed (job, project, flag=missed deadline)
  kJobUploaded,     ///< output files uploaded (job)
  kJobDownloaded,   ///< input files downloaded (job)
  // cpu_sched
  kJobSkippedRam,     ///< candidate skipped: RAM limit (job)
  kJobSkippedCoproc,  ///< candidate skipped: no free coproc (job, ptype)
  kSchedulePass,      ///< schedule pass summary (n=cands, m=chosen, v0=cpu)
  // rr_sim
  kRrSimType,        ///< per-type outputs (ptype, v0=SAT, v1=shortfall,
                     ///< v2=idle instances now)
  kRrSimEndangered,  ///< n jobs deadline-endangered (n)
  // work_fetch
  kFetchRequest,      ///< fetch decision (project, str=policy, ptype=trigger,
                      ///< v0/v1/v2=req cpu/nvidia/ati seconds)
  kFetchReplyLost,    ///< reply lost; retry backoff armed (v0=backoff)
  kFetchProjectDown,  ///< project down; backoff armed (v0=backoff)
  kFetchBackoff,      ///< no jobs of type; backoff armed (ptype, v0=backoff)
  // rpc
  kRpcRoundTrip,  ///< RPC completed (project, n=reported, m=received,
                  ///< flag=server down)
  // avail
  kAvailability,  ///< availability transition (n=cpu, m=gpu, flag=net)
  // server
  kServerDown,  ///< RPC rejected, server down (str=project name)
  kServerSent,  ///< jobs sent (str=project name, v0=jobs, ptype,
                ///< v1=req inst-sec, v2=sent inst-sec)
  // fault
  kJobFaulted,   ///< job aborted / compute error (job, project,
                 ///< flag=aborted, v0=percent done)
  kHostCrash,    ///< host crash, rollback to checkpoints (v0=reboot delay)
  kHostReboot,   ///< host rebooted, client restarting
  kRpcReplyLost, ///< scheduler reply lost in flight (project, n=orphaned)
  // server (appended late so earlier kinds keep their wire values)
  kServerRefused,  ///< dispatch policy refused the host (str=project name,
                   ///< flag=on_ac, n=on_wifi, v0=battery charge)
  kCount_,
};

inline constexpr std::size_t kNumTraceKinds =
    static_cast<std::size_t>(TraceKind::kCount_);

/// Stable machine-readable tag ("job_started", ...). Used as the JSONL
/// "kind" field.
const char* trace_kind_name(TraceKind k);

/// Inverse of trace_kind_name; returns false if \p name is unknown.
bool trace_kind_from_name(const std::string& name, TraceKind* out);

/// The log category a kind belongs to (drives filtering and the [tag] in
/// text output).
LogCategory trace_kind_category(TraceKind k);

/// Flat event record. Unused fields keep their defaults; which fields a
/// kind uses is documented on the TraceKind enumerators.
struct TraceEvent {
  SimTime at = 0.0;
  TraceKind kind = TraceKind::kCount_;
  std::int32_t project = -1;   ///< project id, -1 = none
  std::int32_t job = -1;       ///< job id, -1 = none
  std::int32_t ptype = -1;     ///< proc_index(ProcType), -1 = none
  bool flag = false;           ///< kind-specific boolean
  std::int64_t n = 0;          ///< kind-specific count
  std::int64_t m = 0;          ///< kind-specific count
  double v0 = 0.0;             ///< kind-specific value
  double v1 = 0.0;             ///< kind-specific value
  double v2 = 0.0;             ///< kind-specific value
  const char* str = nullptr;   ///< non-owned; valid during emit only
};

/// Render the message body exactly as the seed Logger call site formatted
/// it (no "[time] [category]" prefix — that is the text sink's job).
std::string render_text(const TraceEvent& ev);

/// Serialize to one JSON object (no trailing newline). Key order and float
/// formatting are deterministic, so two traces of identical runs compare
/// byte-equal (`bce determinism`).
std::string trace_event_to_json(const TraceEvent& ev);

/// A parsed event plus owned backing storage for its string payload.
struct ParsedTraceEvent {
  TraceEvent ev;
  std::string str;  ///< ev.str points here when non-null
  bool has_str = false;
};

/// Parse a line produced by trace_event_to_json. Returns false on any
/// malformed input.
bool trace_event_from_json(const std::string& line, ParsedTraceEvent* out);

class Trace;

/// Sink interface: receives every event that passes the Trace's category
/// filter. Implementations must not retain `ev.str` beyond the call.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceEvent& ev) = 0;
};

/// Renders the classic log line: "[%10.1f] [%s] <body>\n".
class TextSink final : public TraceSink {
 public:
  explicit TextSink(std::ostream& os) : os_(&os) {}
  void on_event(const TraceEvent& ev) override;

 private:
  std::ostream* os_;
};

/// Back-compat bridge: forwards each event into a Logger (which applies its
/// own category filter, stream prefix, and retain mode). Byte-identical to
/// the pre-refactor call sites by construction: the body it forwards is
/// render_text(), the same printf output the call sites used to produce.
class LoggerSink final : public TraceSink {
 public:
  explicit LoggerSink(Logger& log) : log_(&log) {}
  void on_event(const TraceEvent& ev) override;

 private:
  Logger* log_;
};

/// One JSON object per line (`bce run --trace FILE`).
class JsonlSink final : public TraceSink {
 public:
  explicit JsonlSink(std::ostream& os) : os_(&os) {}
  void on_event(const TraceEvent& ev) override;

 private:
  std::ostream* os_;
};

/// Per-category event counts; the emulator folds these into
/// Metrics::trace_events. Counts only events that pass the category filter
/// (a fully disabled trace stays free — and reports zeros).
class CounterSink final : public TraceSink {
 public:
  void on_event(const TraceEvent& ev) override;
  [[nodiscard]] const std::array<std::int64_t, kNumLogCategories>& counts()
      const {
    return counts_;
  }
  void reset() { counts_.fill(0); }

  /// Savestate support (docs/savestate.md): the per-category counts feed
  /// Metrics::trace_events, so a restored run must continue them rather
  /// than recount from zero.
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  std::array<std::int64_t, kNumLogCategories> counts_{};
};

/// Forwards into another Trace (which applies its own filter/sinks). Lets
/// the emulator's internal dispatcher feed EmulationOptions::trace.
class TraceForwarder final : public TraceSink {
 public:
  explicit TraceForwarder(Trace& target) : target_(&target) {}
  void on_event(const TraceEvent& ev) override;

 private:
  Trace* target_;
};

/// Dispatcher: a category-enable mask plus a list of non-owned sinks.
/// All categories start disabled, so an un-configured Trace is free.
class Trace {
 public:
  void enable(LogCategory c, bool on = true) {
    enabled_[static_cast<std::size_t>(c)] = on;
  }
  void enable_all(bool on = true) { enabled_.fill(on); }
  [[nodiscard]] bool enabled(LogCategory c) const {
    return enabled_[static_cast<std::size_t>(c)];
  }

  /// \p sink is not owned and must outlive the Trace's use.
  void add_sink(TraceSink* sink) { sinks_.push_back(sink); }

  /// True when an emit for category \p c would reach at least one sink.
  /// Call sites use this to skip loops that exist only to build events.
  [[nodiscard]] bool wants(LogCategory c) const {
    return !sinks_.empty() && enabled(c);
  }

  void emit(const TraceEvent& ev) {
    if (sinks_.empty() || !enabled(trace_kind_category(ev.kind))) return;
    for (TraceSink* s : sinks_) s->on_event(ev);
  }

 private:
  std::array<bool, kNumLogCategories> enabled_{};
  std::vector<TraceSink*> sinks_;
};

}  // namespace bce
