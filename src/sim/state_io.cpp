#include "sim/state_io.hpp"

#include <cstdio>
#include <cstring>

namespace bce {

namespace {

// Type codes on the wire. Never reorder — bump kSavestateVersion instead.
constexpr std::uint8_t kTyBool = 1;
constexpr std::uint8_t kTyU32 = 2;
constexpr std::uint8_t kTyU64 = 3;
constexpr std::uint8_t kTyI64 = 4;
constexpr std::uint8_t kTyF64 = 5;
constexpr std::uint8_t kTyCount = 6;
constexpr std::uint8_t kTyBytes = 7;
constexpr std::uint8_t kTyStr = 8;

const char* type_name(std::uint8_t t) {
  switch (t) {
    case kTyBool: return "bool";
    case kTyU32: return "u32";
    case kTyU64: return "u64";
    case kTyI64: return "i64";
    case kTyF64: return "f64";
    case kTyCount: return "count";
    case kTyBytes: return "bytes";
    case kTyStr: return "str";
    default: return "?";
  }
}

std::string f64_repr(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

const char* savestate_errc_name(SavestateErrc c) {
  switch (c) {
    case SavestateErrc::kIo: return "io";
    case SavestateErrc::kBadMagic: return "bad_magic";
    case SavestateErrc::kBadVersion: return "bad_version";
    case SavestateErrc::kTruncated: return "truncated";
    case SavestateErrc::kCorrupt: return "corrupt";
    case SavestateErrc::kFieldMismatch: return "field_mismatch";
    case SavestateErrc::kScenarioMismatch: return "scenario_mismatch";
  }
  return "?";
}

std::uint32_t fnv1a32(std::string_view s) {
  std::uint32_t h = 0x811c9dc5u;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x01000193u;
  }
  return h;
}

std::uint64_t fnv1a64_bytes(const std::uint8_t* data, std::size_t n,
                            std::uint64_t seed) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

// ---- StateWriter ----------------------------------------------------------

void StateWriter::raw32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void StateWriter::raw64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void StateWriter::tag(const char* name, std::uint8_t type) {
  raw32(fnv1a32(name));
  buf_.push_back(type);
}

void StateWriter::note(const char* name, std::string value) {
  if (record_) entries_.push_back({name, std::move(value)});
}

void StateWriter::put_bool(const char* name, bool v) {
  tag(name, kTyBool);
  buf_.push_back(v ? 1 : 0);
  note(name, v ? "true" : "false");
}

void StateWriter::put_u32(const char* name, std::uint32_t v) {
  tag(name, kTyU32);
  raw32(v);
  note(name, std::to_string(v));
}

void StateWriter::put_u64(const char* name, std::uint64_t v) {
  tag(name, kTyU64);
  raw64(v);
  note(name, std::to_string(v));
}

void StateWriter::put_i64(const char* name, std::int64_t v) {
  tag(name, kTyI64);
  raw64(static_cast<std::uint64_t>(v));
  note(name, std::to_string(v));
}

void StateWriter::put_f64(const char* name, double v) {
  tag(name, kTyF64);
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  raw64(bits);
  note(name, f64_repr(v));
}

void StateWriter::put_count(const char* name, std::uint64_t n) {
  tag(name, kTyCount);
  raw64(n);
  note(name, std::to_string(n));
}

void StateWriter::put_bytes(const char* name,
                            const std::vector<std::uint8_t>& v) {
  tag(name, kTyBytes);
  raw64(v.size());
  buf_.insert(buf_.end(), v.begin(), v.end());
  note(name, "<" + std::to_string(v.size()) + " bytes>");
}

void StateWriter::put_str(const char* name, const std::string& v) {
  tag(name, kTyStr);
  raw64(v.size());
  buf_.insert(buf_.end(), v.begin(), v.end());
  note(name, v);
}

// ---- StateReader ----------------------------------------------------------

std::uint32_t StateReader::raw32() {
  if (pos_ + 4 > buf_.size()) {
    throw SavestateError(SavestateErrc::kTruncated,
                         "payload ends mid-field");
  }
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(buf_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t StateReader::raw64() {
  if (pos_ + 8 > buf_.size()) {
    throw SavestateError(SavestateErrc::kTruncated,
                         "payload ends mid-field");
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(buf_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

void StateReader::expect(const char* name, std::uint8_t type) {
  const std::uint32_t want_tag = fnv1a32(name);
  const std::uint32_t got_tag = raw32();
  if (pos_ >= buf_.size()) {
    throw SavestateError(SavestateErrc::kTruncated,
                         "payload ends mid-field");
  }
  const std::uint8_t got_type = buf_[pos_++];
  if (got_tag != want_tag || got_type != type) {
    throw SavestateError(
        SavestateErrc::kFieldMismatch,
        std::string("expected field \"") + name + "\" (" + type_name(type) +
            "), found tag 0x" + std::to_string(got_tag) + " (" +
            type_name(got_type) + ")");
  }
}

bool StateReader::get_bool(const char* name) {
  expect(name, kTyBool);
  if (pos_ >= buf_.size()) {
    throw SavestateError(SavestateErrc::kTruncated,
                         "payload ends mid-field");
  }
  return buf_[pos_++] != 0;
}

std::uint32_t StateReader::get_u32(const char* name) {
  expect(name, kTyU32);
  return raw32();
}

std::uint64_t StateReader::get_u64(const char* name) {
  expect(name, kTyU64);
  return raw64();
}

std::int64_t StateReader::get_i64(const char* name) {
  expect(name, kTyI64);
  return static_cast<std::int64_t>(raw64());
}

double StateReader::get_f64(const char* name) {
  expect(name, kTyF64);
  const std::uint64_t bits = raw64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::uint64_t StateReader::get_count(const char* name) {
  expect(name, kTyCount);
  return raw64();
}

std::vector<std::uint8_t> StateReader::get_bytes(const char* name) {
  expect(name, kTyBytes);
  const std::uint64_t n = raw64();
  if (pos_ + n > buf_.size()) {
    throw SavestateError(SavestateErrc::kTruncated,
                         "payload ends mid-field");
  }
  std::vector<std::uint8_t> out(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                buf_.begin() +
                                    static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::string StateReader::get_str(const char* name) {
  expect(name, kTyStr);
  const std::uint64_t n = raw64();
  if (pos_ + n > buf_.size()) {
    throw SavestateError(SavestateErrc::kTruncated,
                         "payload ends mid-field");
  }
  std::string out(reinterpret_cast<const char*>(buf_.data()) + pos_, n);
  pos_ += n;
  return out;
}

}  // namespace bce
