#pragma once

/// \file stats.hpp
/// Small online-statistics helpers used by the metrics layer and the
/// population study: Welford mean/variance, min/max, and a fixed-bin
/// histogram for report output.

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

namespace bce {

/// Numerically stable online mean/variance (Welford).
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-range histogram with uniform bins; out-of-range samples clamp to
/// the end bins. Used for population-study result summaries.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }

  /// Render as a compact ASCII bar chart, one line per bin.
  [[nodiscard]] std::string to_ascii(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace bce
