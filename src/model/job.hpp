#pragma once

/// \file job.hpp
/// Job templates (JobClass — what a project's server hands out) and job
/// instances (Result — what the client queues and runs). Terminology
/// follows BOINC: a "result" is one instance of a workunit dispatched to a
/// host.

#include <limits>
#include <string>

#include "host/availability.hpp"
#include "host/host_info.hpp"
#include "model/resource_usage.hpp"
#include "sim/types.hpp"

namespace bce {

/// A class of jobs a project can supply (§2.3). Actual job sizes are drawn
/// per-instance; the estimate the server/client work with can be biased to
/// model inaccurate a-priori runtime estimates (§4.1, §6.2).
struct JobClass {
  std::string name = "job";

  /// Server's a-priori estimate of the FLOPs in one job.
  double flops_est = 1e12;

  /// Actual FLOPs ~ TruncNormal(mean = flops_est * est_error, cv).
  /// cv = 0 makes jobs deterministic ("run times are normally
  /// distributed", §4.3a).
  double flops_cv = 0.0;

  /// Systematic estimate error: 1.0 = estimates are unbiased;
  /// 2.0 = jobs actually take twice the estimate, etc.
  double est_error = 1.0;

  /// Latency bound: deadline = dispatch time + latency_bound (§2.3).
  Duration latency_bound = 10.0 * kSecondsPerDay;

  ResourceUsage usage;

  /// Seconds of run time between checkpoints; kNever = the app never
  /// checkpoints (extension, §6.2). Preempting an app loses progress since
  /// its last checkpoint.
  Duration checkpoint_period = 300.0;

  /// Working-set size while running.
  double ram_bytes = 1e8;

  /// Input-file download time before the job becomes runnable
  /// (file-transfer extension, §6.2; 0 = runnable on arrival, the paper's
  /// base assumption). Applied as a fixed latency per job.
  Duration transfer_delay = 0.0;

  /// Input-file size, bytes. Only meaningful when the host models its
  /// download link (HostInfo::download_bandwidth_bps > 0): the job then
  /// becomes runnable when the TransferManager finishes its download.
  double input_bytes = 0.0;

  /// Output-file size, bytes. With a modeled link, a completed job can
  /// only be reported once its results finish uploading (uploads share the
  /// same link as downloads in this model).
  double output_bytes = 0.0;

  /// Sporadic availability of this job class at the server (§6.2 "sporadic
  /// availability of particular types of jobs").
  OnOffSpec avail = OnOffSpec::always_on();

  /// Per-class fault-rate overrides: probability that a job of this class
  /// errors out / is aborted mid-run. A negative value (the default)
  /// inherits the scenario FaultPlan's job_error_rate / job_abort_rate.
  double error_rate = -1.0;
  double abort_rate = -1.0;

  /// Estimated runtime of one job of this class on \p host, if it ran
  /// alone at full speed.
  [[nodiscard]] Duration est_runtime(const HostInfo& host) const {
    return flops_est / usage.flops_rate(host);
  }

  /// Slack time: latency bound minus full-speed runtime. Negative slack
  /// means the job can never meet its deadline on this host.
  [[nodiscard]] Duration slack(const HostInfo& host) const {
    return latency_bound - est_runtime(host);
  }
};

/// A job instance held by the client. Progress is measured in FLOPs done;
/// preemption rolls progress back to the last checkpoint.
struct Result {
  JobId id = kNoJob;
  ProjectId project = kNoProject;
  int job_class = 0;  ///< index into the project's job_classes

  /// Replication (docs/policies.md, server dispatch): the workunit this
  /// result is an instance of — the id of its first replica, = `id` for
  /// unreplicated jobs — and this result's replica index within it.
  /// Replicas of one workunit share flops_total (same computation) but
  /// draw independent fault fates. kNoJob when the result was not made by
  /// a ProjectServer (test fixtures).
  JobId workunit = kNoJob;
  int replica = 0;

  double flops_total = 0.0;  ///< actual FLOPs (drawn at dispatch)
  double flops_est = 0.0;    ///< estimate known to client & server

  SimTime received = 0.0;       ///< dispatch time
  SimTime runnable_at = 0.0;    ///< received + transfer_delay
  SimTime deadline = 0.0;       ///< received + latency bound

  ResourceUsage usage;
  double ram_bytes = 0.0;
  Duration checkpoint_period = 300.0;
  double input_bytes = 0.0;
  double output_bytes = 0.0;

  /// True once output files are uploaded (always true when the link is not
  /// modeled or the job has no output); reporting requires it.
  bool uploaded = false;

  // --- execution state -----------------------------------------------
  double flops_done = 0.0;
  double checkpointed_flops = 0.0;
  SimTime completed_at = kNever;
  bool reported = false;
  bool running = false;
  /// Run time accumulated since the last checkpoint.
  Duration run_since_checkpoint = 0.0;
  /// False while a running task has not yet reached a checkpoint since it
  /// last (re)started; such tasks get top scheduling precedence ("running
  /// jobs that have not checkpointed yet", §3.3) because preempting them
  /// loses all progress of the episode.
  bool episode_checkpointed = true;
  /// Visualization slot (instance index of the primary processor type)
  /// assigned while running; -1 when not running.
  int slot = -1;
  /// Total FLOPs ever spent on this job including progress later lost to
  /// preemption; feeds the wasted-fraction metric.
  double flops_spent = 0.0;

  /// First time the job ever ran (kNever if it never started); queue-wait
  /// statistics derive from this.
  SimTime first_started = kNever;

  // --- fault state (sim/fault.hpp) -------------------------------------
  /// FLOPs-done mark at which the job dies (decided at dispatch by the
  /// fault injector); kNever-like infinity when the job is healthy.
  double fail_at_flops = std::numeric_limits<double>::infinity();
  bool will_abort = false;  ///< failure mode: abort (vs compute error)
  bool failed = false;      ///< job terminated abnormally
  bool aborted = false;     ///< failure was an abort
  SimTime failed_at = kNever;

  // --- round-robin-simulation scratch (§3.2) --------------------------
  bool deadline_endangered = false;
  SimTime rr_projected_finish = kNever;
  /// RR-sim's *first* completion projection after the job arrived; kept
  /// for prediction-accuracy studies (bench/rrsim_accuracy).
  SimTime first_projected_finish = kNever;

  [[nodiscard]] bool is_complete() const {
    return !failed && flops_done >= flops_total - kFpEpsilon;
  }
  [[nodiscard]] bool missed_deadline() const {
    return completed_at > deadline;
  }
  /// Finished one way or the other: completed successfully or failed.
  [[nodiscard]] bool terminal() const { return failed || is_complete(); }
  /// When it finished (completion or failure); kNever while in flight.
  [[nodiscard]] SimTime terminal_at() const {
    return failed ? failed_at : completed_at;
  }
  [[nodiscard]] bool runnable(SimTime now) const {
    return !terminal() && now + kFpEpsilon >= runnable_at;
  }

  /// Client-side duration-correction factor in force when the job was
  /// dispatched: the running average of (actual / estimated) size the
  /// client maintains per project (BOINC's DCF). Scales the a-priori
  /// estimate below.
  double est_correction = 1.0;

  /// FLOPs still to do, as the *client* estimates them: before any progress
  /// the client only has the (possibly wrong) server estimate, corrected by
  /// the project's DCF; once the job reports fraction-done the estimate
  /// becomes accurate, mirroring how BOINC refines runtime estimates from
  /// the running app.
  [[nodiscard]] double est_flops_remaining() const {
    if (flops_done <= 0.0) return flops_est * est_correction;
    return flops_total - flops_done;
  }

  /// True FLOPs remaining (simulation-side knowledge).
  [[nodiscard]] double flops_remaining() const {
    const double rem = flops_total - flops_done;
    return rem > 0.0 ? rem : 0.0;
  }
};

}  // namespace bce
