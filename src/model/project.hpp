#pragma once

/// \file project.hpp
/// Static description of an attached project (§2.1): resource share, the
/// job classes its server supplies, and its availability process (projects
/// are "sporadically down for maintenance, or have no jobs", §4.1).

#include <string>
#include <vector>

#include "host/availability.hpp"
#include "sim/proc_type.hpp"
#include "model/job.hpp"

namespace bce {

struct ProjectConfig {
  std::string name = "project";

  /// Volunteer-specified resource share (arbitrary positive units; only
  /// ratios matter, §2.1).
  double resource_share = 100.0;

  /// Job classes the server can dispatch. A project with both CPU and GPU
  /// classes supplies whichever the client requests.
  std::vector<JobClass> job_classes;

  /// Server up/down process (always on by default).
  OnOffSpec up = OnOffSpec::always_on();

  /// Server-side cap on jobs dispatched but not yet reported back by this
  /// host (BOINC's max_wus_in_progress; low-latency projects set this to
  /// 1-2). 0 = unlimited.
  int max_jobs_in_progress = 0;

  /// Replication: instances dispatched per workunit (BOINC's
  /// target_nresults) and how many successful instances count as
  /// validation (min_quorum). Quorum-met workunits grant credit once;
  /// the extra replicas' FLOPs are accounted as replication waste
  /// (Metrics::replica_wasted_flops). The adaptive-replication dispatch
  /// policy treats target_replicas as a ceiling and quorum as the floor.
  int target_replicas = 1;
  int quorum = 1;

  /// Volunteer-set per-project controls (§2.2 preferences): don't give
  /// this project the GPU / don't run it at all. A suspended project is
  /// never fetched from and accrues no debt.
  bool no_gpu = false;
  bool suspended = false;

  /// Whether an errored download resumes from the bytes already fetched
  /// (BOINC's default; servers supporting HTTP range requests) or restarts
  /// from zero. Only matters under FaultPlan::transfer_error_rate.
  bool transfers_resumable = true;

  /// True if some job class can use processor type \p t (ignoring sporadic
  /// class availability — this is the static capability the client learns
  /// from the project description).
  [[nodiscard]] bool has_jobs_for(ProcType t) const {
    for (const auto& jc : job_classes) {
      if (jc.usage.primary_type() == t) return true;
    }
    return false;
  }

  [[nodiscard]] bool valid() const {
    return resource_share > 0.0 && !job_classes.empty();
  }
};

}  // namespace bce
