#pragma once

/// \file resource_usage.hpp
/// Per-job resource usage (§2.3): a job uses a (possibly fractional) number
/// of CPUs, and optionally a fractional number of instances of one GPU
/// type. BOINC app versions use at most one coprocessor type; we keep that
/// restriction.

#include "host/host_info.hpp"
#include "sim/proc_type.hpp"

namespace bce {

struct ResourceUsage {
  /// CPUs used (number of CPU-intensive threads; may be fractional, e.g.
  /// the polling thread of a GPU app).
  double avg_ncpus = 1.0;

  /// Coprocessor type; kCpu means "no coprocessor" (a pure CPU job).
  ProcType coproc = ProcType::kCpu;

  /// Instances of `coproc` used. Fractional means the job occupies at most
  /// that fraction of one GPU's cores/memory (§2.3).
  double coproc_usage = 0.0;

  [[nodiscard]] bool uses_gpu() const {
    return is_gpu(coproc) && coproc_usage > 0.0;
  }

  /// The processor type used for priority classification: a GPU job ranks
  /// by its GPU type, a CPU job by CPU (§3.3 "GPU jobs have precedence").
  [[nodiscard]] ProcType primary_type() const {
    return uses_gpu() ? coproc : ProcType::kCpu;
  }

  /// Instance-units of type \p t this job occupies while running.
  [[nodiscard]] double usage_of(ProcType t) const {
    if (t == ProcType::kCpu) return avg_ncpus;
    if (uses_gpu() && t == coproc) return coproc_usage;
    return 0.0;
  }

  /// Peak FLOPS this job consumes while running on \p host — the rate at
  /// which it burns through its FLOPs total, and the rate it is charged at
  /// for resource-share accounting ("peak FLOPS" accounting, §3.1).
  [[nodiscard]] double flops_rate(const HostInfo& host) const {
    double rate = avg_ncpus * host.flops_per_instance[ProcType::kCpu];
    if (uses_gpu()) rate += coproc_usage * host.flops_per_instance[coproc];
    return rate;
  }

  static ResourceUsage cpu(double ncpus = 1.0) {
    ResourceUsage u;
    u.avg_ncpus = ncpus;
    return u;
  }

  static ResourceUsage gpu(ProcType type, double gpu_instances = 1.0,
                           double cpu_fraction = 0.05) {
    ResourceUsage u;
    u.avg_ncpus = cpu_fraction;
    u.coproc = type;
    u.coproc_usage = gpu_instances;
    return u;
  }
};

}  // namespace bce
