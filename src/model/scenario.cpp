#include "model/scenario.hpp"

#include <cmath>
#include <sstream>

namespace bce {

namespace {
bool fail(std::string* err, const std::string& msg) {
  if (err != nullptr) *err = msg;
  return false;
}
}  // namespace

bool Scenario::validate(std::string* err) const {
  if (host.count[ProcType::kCpu] < 1) {
    return fail(err, "host must have at least one CPU");
  }
  for (const auto t : kAllProcTypes) {
    if (host.count[t] < 0) return fail(err, "negative processor count");
    if (host.count[t] > 0 && host.flops_per_instance[t] <= 0.0) {
      return fail(err, std::string("processor type ") + proc_name(t) +
                           " present but has non-positive FLOPS");
    }
  }
  if (host.ram_bytes <= 0.0) return fail(err, "host RAM must be positive");
  if (host.download_bandwidth_bps < 0.0) {
    return fail(err, "download bandwidth must be non-negative");
  }
  if (!prefs.valid()) return fail(err, "invalid preferences");
  if (duration <= 0.0 || !std::isfinite(duration)) {
    return fail(err, "duration must be positive and finite");
  }
  if (projects.empty()) return fail(err, "scenario has no projects");

  for (std::size_t i = 0; i < projects.size(); ++i) {
    const auto& p = projects[i];
    std::ostringstream tag;
    tag << "project " << i << " (" << p.name << "): ";
    if (p.resource_share <= 0.0) {
      return fail(err, tag.str() + "resource share must be positive");
    }
    if (p.job_classes.empty()) {
      return fail(err, tag.str() + "no job classes");
    }
    for (const auto& jc : p.job_classes) {
      if (jc.flops_est <= 0.0) {
        return fail(err, tag.str() + "job class with non-positive FLOPs");
      }
      if (jc.latency_bound <= 0.0) {
        return fail(err, tag.str() + "job class with non-positive latency bound");
      }
      if (jc.est_error <= 0.0) {
        return fail(err, tag.str() + "job class with non-positive est_error");
      }
      if (jc.flops_cv < 0.0) {
        return fail(err, tag.str() + "job class with negative flops_cv");
      }
      const auto& u = jc.usage;
      if (u.avg_ncpus < 0.0 || u.coproc_usage < 0.0) {
        return fail(err, tag.str() + "negative resource usage");
      }
      if (u.avg_ncpus == 0.0 && !u.uses_gpu()) {
        return fail(err, tag.str() + "job class uses no processors");
      }
      if (u.uses_gpu() && host.count[u.coproc] == 0) {
        return fail(err, tag.str() + std::string("job class needs ") +
                             proc_name(u.coproc) +
                             " but the host has none");
      }
      if (u.avg_ncpus > host.count[ProcType::kCpu]) {
        return fail(err, tag.str() + "job class needs more CPUs than the host has");
      }
      if (u.uses_gpu() && u.coproc_usage > host.count[u.coproc]) {
        return fail(err, tag.str() + "job class needs more GPU instances than the host has");
      }
      if (jc.ram_bytes < 0.0 || jc.ram_bytes > host.ram_bytes) {
        return fail(err, tag.str() + "job class RAM out of range");
      }
      if (jc.checkpoint_period <= 0.0) {
        return fail(err, tag.str() + "checkpoint period must be positive (use +inf for 'never')");
      }
      if (jc.transfer_delay < 0.0) {
        return fail(err, tag.str() + "negative transfer delay");
      }
      if (jc.input_bytes < 0.0) {
        return fail(err, tag.str() + "negative input size");
      }
      if (jc.output_bytes < 0.0) {
        return fail(err, tag.str() + "negative output size");
      }
    }
    if (p.max_jobs_in_progress < 0) {
      return fail(err, tag.str() + "negative max_jobs_in_progress");
    }
  }
  return true;
}

}  // namespace bce
