#include "model/scenario.hpp"

#include <cmath>
#include <sstream>

namespace bce {

namespace {
bool fail(std::string* err, const std::string& msg) {
  if (err != nullptr) *err = msg;
  return false;
}

bool finite(double x) { return std::isfinite(x); }

/// NaN/Inf screen for an on/off process spec. Means and windows must be
/// finite; a non-finite period length would wedge the event queue.
const char* spec_problem(const OnOffSpec& s) {
  if (!finite(s.mean_on) || s.mean_on < 0.0) return "mean_on";
  if (!finite(s.mean_off) || s.mean_off < 0.0) return "mean_off";
  if (!finite(s.shape) || s.shape <= 0.0) return "shape";
  if (!finite(s.window_start) || !finite(s.window_end)) return "window";
  for (const auto& seg : s.trace) {
    if (!finite(seg.duration) || seg.duration < 0.0) return "trace segment";
  }
  return nullptr;
}
}  // namespace

bool Scenario::validate(std::string* err) const {
  if (host.count[ProcType::kCpu] < 1) {
    return fail(err, "host must have at least one CPU");
  }
  for (const auto t : kAllProcTypes) {
    if (host.count[t] < 0) return fail(err, "negative processor count");
    if (host.count[t] > 0 && !(finite(host.flops_per_instance[t]) &&
                               host.flops_per_instance[t] > 0.0)) {
      return fail(err, std::string("processor type ") + proc_name(t) +
                           " present but has non-positive or non-finite FLOPS");
    }
  }
  if (!(finite(host.ram_bytes) && host.ram_bytes > 0.0)) {
    return fail(err, "host RAM must be positive and finite");
  }
  if (!(finite(host.download_bandwidth_bps) &&
        host.download_bandwidth_bps >= 0.0)) {
    return fail(err, "download bandwidth must be non-negative and finite");
  }
  // Preferences: valid() screens sign/order constraints but NaN slips
  // through comparisons and max_report_delay is unchecked — screen every
  // field for finiteness explicitly.
  if (!prefs.valid() || !finite(prefs.min_queue) || !finite(prefs.max_queue) ||
      !finite(prefs.ram_limit_fraction) || !finite(prefs.min_rpc_interval) ||
      !finite(prefs.poll_period) || !finite(prefs.max_report_delay) ||
      prefs.max_report_delay < 0.0) {
    return fail(err, "invalid preferences");
  }
  if (duration <= 0.0 || !finite(duration)) {
    return fail(err, "duration must be positive and finite");
  }
  {
    const char* ch = nullptr;
    const char* which = nullptr;
    if ((which = spec_problem(availability.host_on)) != nullptr) ch = "host_on";
    else if ((which = spec_problem(availability.gpu_allowed)) != nullptr) ch = "gpu_allowed";
    else if ((which = spec_problem(availability.network)) != nullptr) ch = "network";
    if (ch != nullptr) {
      return fail(err, std::string("availability channel ") + ch +
                           ": non-finite or negative " + which);
    }
  }
  {
    const char* ch = nullptr;
    const char* which = nullptr;
    if ((which = spec_problem(host.device.on_ac)) != nullptr) ch = "device_ac";
    else if ((which = spec_problem(host.device.on_wifi)) != nullptr) ch = "device_wifi";
    if (ch != nullptr) {
      return fail(err, std::string("device channel ") + ch +
                           ": non-finite or negative " + which);
    }
    if (!finite(host.device.battery_charge) ||
        host.device.battery_charge < 0.0 || host.device.battery_charge > 1.0) {
      return fail(err, "battery_charge must be in [0,1] and finite");
    }
    if (!finite(host.device.battery_discharge) ||
        host.device.battery_discharge < 0.0) {
      return fail(err, "battery_discharge must be non-negative and finite");
    }
    if (!finite(host.device.battery_recharge) ||
        host.device.battery_recharge < 0.0) {
      return fail(err, "battery_recharge must be non-negative and finite");
    }
  }
  {
    const std::string problem = faults.validate();
    if (!problem.empty()) return fail(err, "fault plan: " + problem);
  }
  if (projects.empty()) return fail(err, "scenario has no projects");

  for (std::size_t i = 0; i < projects.size(); ++i) {
    const auto& p = projects[i];
    std::ostringstream tag;
    tag << "project " << i << " (" << p.name << "): ";
    if (!(finite(p.resource_share) && p.resource_share > 0.0)) {
      return fail(err, tag.str() + "resource share must be positive and finite");
    }
    if (spec_problem(p.up) != nullptr) {
      return fail(err, tag.str() + "non-finite server up/down process");
    }
    if (p.job_classes.empty()) {
      return fail(err, tag.str() + "no job classes");
    }
    for (const auto& jc : p.job_classes) {
      if (!(finite(jc.flops_est) && jc.flops_est > 0.0)) {
        return fail(err, tag.str() + "job class with non-positive or non-finite FLOPs");
      }
      if (!(finite(jc.latency_bound) && jc.latency_bound > 0.0)) {
        return fail(err, tag.str() + "job class with non-positive or non-finite latency bound");
      }
      if (!(finite(jc.est_error) && jc.est_error > 0.0)) {
        return fail(err, tag.str() + "job class with non-positive or non-finite est_error");
      }
      if (!(finite(jc.flops_cv) && jc.flops_cv >= 0.0)) {
        return fail(err, tag.str() + "job class with negative or non-finite flops_cv");
      }
      const auto& u = jc.usage;
      if (!finite(u.avg_ncpus) || !finite(u.coproc_usage) ||
          u.avg_ncpus < 0.0 || u.coproc_usage < 0.0) {
        return fail(err, tag.str() + "negative or non-finite resource usage");
      }
      if (u.avg_ncpus == 0.0 && !u.uses_gpu()) {
        return fail(err, tag.str() + "job class uses no processors");
      }
      if (u.uses_gpu() && host.count[u.coproc] == 0) {
        return fail(err, tag.str() + std::string("job class needs ") +
                             proc_name(u.coproc) +
                             " but the host has none");
      }
      if (u.avg_ncpus > host.count[ProcType::kCpu]) {
        return fail(err, tag.str() + "job class needs more CPUs than the host has");
      }
      if (u.uses_gpu() && u.coproc_usage > host.count[u.coproc]) {
        return fail(err, tag.str() + "job class needs more GPU instances than the host has");
      }
      if (!finite(jc.ram_bytes) || jc.ram_bytes < 0.0 ||
          jc.ram_bytes > host.ram_bytes) {
        return fail(err, tag.str() + "job class RAM out of range");
      }
      // checkpoint_period = +inf means "never checkpoints" and is legal;
      // NaN is not (it would defeat both the <= 0 check and arithmetic).
      if (std::isnan(jc.checkpoint_period) || jc.checkpoint_period <= 0.0) {
        return fail(err, tag.str() + "checkpoint period must be positive (use +inf for 'never')");
      }
      if (!finite(jc.transfer_delay) || jc.transfer_delay < 0.0) {
        return fail(err, tag.str() + "negative or non-finite transfer delay");
      }
      if (!finite(jc.input_bytes) || jc.input_bytes < 0.0) {
        return fail(err, tag.str() + "negative or non-finite input size");
      }
      if (!finite(jc.output_bytes) || jc.output_bytes < 0.0) {
        return fail(err, tag.str() + "negative or non-finite output size");
      }
      if (spec_problem(jc.avail) != nullptr) {
        return fail(err, tag.str() + "non-finite job-class availability process");
      }
      // Fault-rate overrides: negative = inherit the FaultPlan default;
      // otherwise a probability.
      const bool err_ok = jc.error_rate < 0.0 ||
                          (finite(jc.error_rate) && jc.error_rate <= 1.0);
      const bool abort_ok = jc.abort_rate < 0.0 ||
                            (finite(jc.abort_rate) && jc.abort_rate <= 1.0);
      if (!err_ok || std::isnan(jc.error_rate)) {
        return fail(err, tag.str() + "job class error_rate must be in [0,1] (or negative to inherit)");
      }
      if (!abort_ok || std::isnan(jc.abort_rate)) {
        return fail(err, tag.str() + "job class abort_rate must be in [0,1] (or negative to inherit)");
      }
    }
    if (p.max_jobs_in_progress < 0) {
      return fail(err, tag.str() + "negative max_jobs_in_progress");
    }
    if (p.target_replicas < 1) {
      return fail(err, tag.str() + "replicas must be at least 1");
    }
    if (p.quorum < 1) {
      return fail(err, tag.str() + "quorum must be at least 1");
    }
    if (p.quorum > p.target_replicas) {
      return fail(err, tag.str() + "quorum exceeds replicas (unreachable)");
    }
  }
  return true;
}

}  // namespace bce
