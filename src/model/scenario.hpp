#pragma once

/// \file scenario.hpp
/// A *scenario* is the unit of input to the emulator (§4.1): one volunteer
/// host — hardware, preferences, availability — plus its attached projects,
/// an emulation horizon, and a root seed. The paper's four evaluation
/// scenarios (§5) are provided as factories in core/paper_scenarios.hpp.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "host/availability.hpp"
#include "host/host_info.hpp"
#include "host/preferences.hpp"
#include "model/project.hpp"
#include "sim/fault.hpp"
#include "sim/types.hpp"

namespace bce {

struct Scenario {
  std::string name = "scenario";

  HostInfo host;
  Preferences prefs;
  HostAvailabilitySpec availability;
  std::vector<ProjectConfig> projects;

  /// Fault injection (all channels off by default — the paper's benign
  /// world). See docs/faults.md.
  FaultPlan faults;

  /// Emulation horizon; the paper uses 10 days unless stated otherwise.
  Duration duration = 10.0 * kSecondsPerDay;

  /// Root seed; every run is deterministic given (scenario, policy, seed).
  std::uint64_t seed = 1;

  [[nodiscard]] double total_share() const {
    double s = 0.0;
    for (const auto& p : projects) s += p.resource_share;
    return s;
  }

  /// Project p's fractional resource share among all attached projects.
  [[nodiscard]] double share_fraction(std::size_t p) const {
    const double total = total_share();
    return total > 0.0 ? projects[p].resource_share / total : 0.0;
  }

  /// Validate invariants; on failure returns false and, if \p err is
  /// non-null, stores a description.
  bool validate(std::string* err = nullptr) const;
};

}  // namespace bce
