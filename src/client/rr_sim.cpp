#include "client/rr_sim.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "sim/state_io.hpp"

namespace bce {

RrSim::RrSim(const HostInfo& host, const Preferences& prefs,
             PerProc<double> avail_frac)
    : host_(host), prefs_(prefs), avail_frac_(avail_frac) {}

RrSimOutput RrSim::run(SimTime now, const std::vector<Result*>& jobs,
                       const std::vector<double>& share_frac,
                       Trace* trace) const {
  RrSimOutput out;
  run_into(out, now, jobs, share_frac, trace);
  return out;
}

void RrSim::run_into(RrSimOutput& out, SimTime now,
                     const std::vector<Result*>& jobs,
                     const std::vector<double>& share_frac,
                     Trace* trace) const {
  // Reset the output while keeping the profile vector's capacity (the
  // cached path hands us the same RrSimOutput every simulation).
  {
    auto profile = std::move(out.profile);
    profile.clear();
    out = RrSimOutput{};
    out.profile = std::move(profile);
  }

  // Pending jobs per (project, type), FIFO by arrival.
  const std::size_t n_proj = share_frac.size();
  auto& sj = sim_jobs_;
  sj.clear();
  if (sj.capacity() < jobs.size()) sj.reserve(jobs.size());
  // Simulated jobs are compacted out of sj as they complete, so the
  // deadline-attribution pass at the end works off this full snapshot.
  auto& all_jobs = attribution_jobs_;
  all_jobs.clear();
  for (Result* r : jobs) {
    if (r->is_complete()) continue;
    SimJob s;
    s.job = r;
    s.remaining = std::max(r->est_flops_remaining(), 1.0);
    s.needed = std::max(r->usage.usage_of(r->usage.primary_type()), 1e-6);
    sj.push_back(s);
    all_jobs.push_back(r);
    r->deadline_endangered = false;
    r->rr_projected_finish = kNever;
  }
  // FIFO order within project: stable sort by arrival time. The emulator
  // appends jobs as they arrive and erases in place, so the list is almost
  // always already arrival-sorted — detect that in O(n) and skip the sort
  // (a stable sort of an already-sorted range is the identity, so the
  // result is bit-identical either way).
  const auto by_arrival = [](const SimJob& a, const SimJob& b) {
    return a.job->received < b.job->received;
  };
  if (!std::is_sorted(sj.begin(), sj.end(), by_arrival)) {
    std::stable_sort(sj.begin(), sj.end(), by_arrival);
  }

  // Saturation bookkeeping.
  PerProc<bool> sat_open{};  // still saturated so far?
  for (const auto t : kAllProcTypes) {
    sat_open[t] = host_.count[t] > 0;
    out.saturated[t] = 0.0;
  }

  SimTime t_cur = now;
  const SimTime t_window_end = now + prefs_.max_queue;
  const SimTime t_min_window_end = now + prefs_.min_queue;

  // Scratch buffers reused across iterations (and across runs).
  auto& quota = quota_;
  quota.assign(n_proj, 0.0);

  int iter_guard = 0;
  constexpr int kMaxIter = 200000;

  for (;;) {
    if (++iter_guard > kMaxIter) break;  // pathological scenario guard

    // ---- allocation pass (water-filling per type) ----------------------
    PerProc<double> busy{};
    bool any_active = false;
    for (auto& s : sj) {
      s.granted = 0.0;
      s.rate = 0.0;
    }
    for (const auto t : kAllProcTypes) {
      const double cap = host_.count[t];
      if (cap <= 0.0) continue;

      // Eligible projects and their total share.
      double eligible_share = 0.0;
      std::fill(quota.begin(), quota.end(), -1.0);
      for (const auto& s : sj) {
        if (s.remaining <= 0.0) continue;
        if (s.job->usage.primary_type() != t) continue;
        const auto p = static_cast<std::size_t>(s.job->project);
        if (quota[p] < 0.0) {
          quota[p] = 0.0;
          eligible_share += share_frac[p];
        }
      }
      if (eligible_share <= 0.0) continue;
      for (std::size_t p = 0; p < n_proj; ++p) {
        if (quota[p] >= 0.0) quota[p] = share_frac[p] / eligible_share * cap;
      }

      // First pass: fill each project's jobs FIFO up to its quota.
      double used = 0.0;
      for (auto& s : sj) {
        if (s.remaining <= 0.0 || s.job->usage.primary_type() != t) continue;
        const auto p = static_cast<std::size_t>(s.job->project);
        const double g = std::min(s.needed, quota[p]);
        s.granted = g;
        quota[p] -= g;
        used += g;
      }

      // Redistribution passes: hand leftover capacity to projects whose
      // jobs are still under-granted, proportionally to share.
      for (int round = 0; round < 8; ++round) {
        double leftover = cap - used;
        if (leftover <= 1e-9) break;
        double unmet_share = 0.0;
        std::fill(quota.begin(), quota.end(), -1.0);
        for (const auto& s : sj) {
          if (s.remaining <= 0.0 || s.job->usage.primary_type() != t) continue;
          if (s.granted + 1e-12 >= s.needed) continue;
          const auto p = static_cast<std::size_t>(s.job->project);
          if (quota[p] < 0.0) {
            quota[p] = 0.0;
            unmet_share += share_frac[p];
          }
        }
        if (unmet_share <= 0.0) break;
        for (std::size_t p = 0; p < n_proj; ++p) {
          if (quota[p] >= 0.0) {
            quota[p] = share_frac[p] / unmet_share * leftover;
          }
        }
        bool progressed = false;
        for (auto& s : sj) {
          if (s.remaining <= 0.0 || s.job->usage.primary_type() != t) continue;
          const auto p = static_cast<std::size_t>(s.job->project);
          if (quota[p] <= 0.0) continue;
          const double g = std::min(s.needed - s.granted, quota[p]);
          if (g > 1e-12) {
            s.granted += g;
            quota[p] -= g;
            used += g;
            progressed = true;
          }
        }
        if (!progressed) break;
      }
      busy[t] = used;
    }

    // Rates and next completion.
    double dt_next = std::numeric_limits<double>::infinity();
    for (auto& s : sj) {
      if (s.remaining <= 0.0 || s.granted <= 0.0) continue;
      const ProcType t = s.job->usage.primary_type();
      s.rate = s.job->usage.flops_rate(host_) * (s.granted / s.needed) *
               clamp(avail_frac_[t], 0.0, 1.0);
      if (s.rate > 0.0) {
        any_active = true;
        dt_next = std::min(dt_next, s.remaining / s.rate);
      }
    }

    // ---- bookkeeping: saturation & idle shortfall -----------------------
    {
      RrSimOutput::ProfilePoint pp;
      pp.t = t_cur;
      pp.busy = busy;
      if (!out.profile.empty() && out.profile.back().t >= t_cur) {
        out.profile.back() = pp;  // coalesce same-instant allocations
      } else if (out.profile.size() < 4096) {
        out.profile.push_back(pp);
      }
    }
    for (const auto t : kAllProcTypes) {
      const double cap = host_.count[t];
      if (cap <= 0.0) continue;
      const bool saturated_now = busy[t] + 1e-9 >= cap;
      if (t_cur == now) {
        out.idle_instances_now[t] = std::max(0.0, cap - busy[t]);
      }
      if (sat_open[t] && !saturated_now) {
        out.saturated[t] = t_cur - now;
        sat_open[t] = false;
      }
    }

    if (!any_active) {
      // Queue drained: the rest of the window is fully idle.
      for (const auto t : kAllProcTypes) {
        const double cap = host_.count[t];
        if (cap <= 0.0) continue;
        if (sat_open[t]) {
          out.saturated[t] = t_cur - now;
          sat_open[t] = false;
        }
        if (t_cur < t_window_end) {
          out.shortfall[t] += (t_window_end - t_cur) * cap;
        }
        if (t_cur < t_min_window_end) {
          out.shortfall_min[t] += (t_min_window_end - t_cur) * cap;
        }
      }
      break;
    }

    const SimTime t_next = t_cur + dt_next;

    // Idle/busy integration over [t_cur, t_next] ∩ buffer windows.
    const double overlap = std::max(0.0, std::min(t_next, t_window_end) - t_cur);
    const double overlap_min =
        std::max(0.0, std::min(t_next, t_min_window_end) - t_cur);
    if (overlap > 0.0) {
      for (const auto t : kAllProcTypes) {
        const double cap = host_.count[t];
        if (cap <= 0.0) continue;
        const double idle = std::max(0.0, cap - busy[t]);
        out.shortfall[t] += idle * overlap;
        out.shortfall_min[t] += idle * overlap_min;
        out.busy_inst_seconds[t] += busy[t] * overlap;
      }
    }

    // Advance all active jobs; complete those that hit zero.
    bool any_completed = false;
    for (auto& s : sj) {
      if (s.rate <= 0.0 || s.remaining <= 0.0) continue;
      s.remaining -= s.rate * dt_next;
      if (s.remaining <= 1e-6) {
        s.remaining = 0.0;
        s.job->rr_projected_finish = t_next;
        any_completed = true;
        if (t_next > s.job->deadline) {
          s.job->deadline_endangered = true;
          ++out.n_endangered;
        }
      }
    }
    if (any_completed) {
      // Drop completed jobs so later iterations scan only live ones (they
      // contribute nothing to allocation or rates). std::remove_if is
      // stable, so FIFO order among survivors is preserved — the
      // allocations, and therefore every output, are unchanged.
      sj.erase(std::remove_if(sj.begin(), sj.end(),
                              [](const SimJob& s) { return s.remaining <= 0.0; }),
               sj.end());
    }
    t_cur = t_next;
  }

  // Deadline-miss attribution: if k jobs of a (project, type) are projected
  // to miss, promote that project's k *earliest-deadline* jobs instead of
  // the specific ones flagged. The WRR simulation runs a project's jobs
  // FIFO, so the flags land on later-queued jobs even when rescuing the
  // earlier-deadline ones is what actually helps — this mirrors BOINC's
  // scheduler, which promotes a project's earliest-deadline results when
  // rr_sim reports deadline misses for it.
  {
    struct Key {
      ProjectId p;
      ProcType t;
      bool operator==(const Key&) const = default;
    };
    // Walk the entry-time snapshot (sj has dropped completed jobs). The
    // flags this pass writes depend only on each group's membership — the
    // sort key below is a total order (ids are unique) and the flagged
    // count is a set count — so iterating the snapshot instead of sj is
    // output-identical.
    for (std::size_t i0 = 0; i0 < all_jobs.size(); ++i0) {
      const Key key{all_jobs[i0]->project, all_jobs[i0]->usage.primary_type()};
      // Process each (project, type) group once: skip if an earlier element
      // has the same key.
      bool first = true;
      for (std::size_t i1 = 0; i1 < i0; ++i1) {
        if (Key{all_jobs[i1]->project, all_jobs[i1]->usage.primary_type()} ==
            key) {
          first = false;
          break;
        }
      }
      if (!first) continue;

      auto& group = attribution_group_;
      group.clear();
      int flagged = 0;
      for (Result* r : all_jobs) {
        if (Key{r->project, r->usage.primary_type()} == key) {
          group.push_back(r);
          if (r->deadline_endangered) ++flagged;
        }
      }
      if (flagged == 0) continue;
      std::stable_sort(group.begin(), group.end(),
                       [](const Result* a, const Result* b) {
                         if (a->deadline != b->deadline)
                           return a->deadline < b->deadline;
                         if (a->received != b->received)
                           return a->received < b->received;
                         return a->id < b->id;
                       });
      for (std::size_t i = 0; i < group.size(); ++i) {
        group[i]->deadline_endangered = static_cast<int>(i) < flagged;
      }
    }
  }

  // Types that stayed saturated through queue drain: SAT already closed in
  // the drain branch; anything still open means permanently saturated.
  for (const auto t : kAllProcTypes) {
    if (host_.count[t] > 0 && sat_open[t]) {
      out.saturated[t] = t_cur - now;
    }
  }
  out.span = t_cur - now;

  if (trace != nullptr && trace->wants(LogCategory::kRrSim)) {
    for (const auto t : kAllProcTypes) {
      if (host_.count[t] == 0) continue;
      trace->emit({.at = now,
                   .kind = TraceKind::kRrSimType,
                   .ptype = static_cast<std::int32_t>(proc_index(t)),
                   .v0 = out.saturated[t],
                   .v1 = out.shortfall[t],
                   .v2 = out.idle_instances_now[t]});
    }
    if (out.n_endangered > 0) {
      trace->emit({.at = now,
                   .kind = TraceKind::kRrSimEndangered,
                   .n = out.n_endangered});
    }
  }
}

const RrSimOutput& RrSim::run_cached(std::uint64_t state_version, SimTime now,
                                     const std::vector<Result*>& jobs,
                                     const std::vector<double>& share_frac,
                                     Trace* trace) {
  if (auditor_ != nullptr) auditor_->check_state_version(state_version);
  if (cache_valid_ && cached_version_ > state_version) {
    // A memo from a newer state than the caller can only mean a savestate
    // restore rewound state_version without invalidating the cache. Audit
    // builds fault at this decision point; all builds force a miss so the
    // stale simulation is never served (tests/test_savestate.cpp pins both
    // behaviours).
    if (auditor_ != nullptr) {
      auditor_->check_cache_not_stale(cached_version_, state_version);
    }
    cache_valid_ = false;
  }
  if (cache_valid_ && cached_version_ == state_version && cached_now_ == now) {
    ++stats_.hits;
    return cached_out_;
  }
  ++stats_.misses;
  run_into(cached_out_, now, jobs, share_frac, trace);
  cached_version_ = state_version;
  cached_now_ = now;
  cache_valid_ = true;
  if (auditor_ != nullptr) {
    auditor_->check_rr_output(cached_out_, host_, prefs_, now);
  }
  return cached_out_;
}

void RrSim::save_state(StateWriter& w) const {
  w.put_u64("rrsim.cache_hits", stats_.hits);
  w.put_u64("rrsim.cache_misses", stats_.misses);
}

void RrSim::restore_state(StateReader& r) {
  stats_.hits = r.get_u64("rrsim.cache_hits");
  stats_.misses = r.get_u64("rrsim.cache_misses");
  // Never carry the memo across a restore: the cached output references
  // pre-restore job state, and the restored state_version is unrelated to
  // the memo key. The first run_cached after a restore re-primes it.
  cache_valid_ = false;
}

}  // namespace bce
