#pragma once

/// \file policy_registry.hpp
/// Named registry of scheduling-policy strategies. New policies register by
/// name and become selectable end-to-end (CLI --sched/--fetch, bench
/// drivers, PolicyConfig::sched_by_name) without touching the emulation
/// engine. The built-in paper policies (JS_WRR, JS_LOCAL, JS_GLOBAL,
/// JS_EDF; JF_ORIG, JF_HYSTERESIS, JF_RR) are pre-registered, each with a
/// short lowercase alias (wrr, local, global, edf; orig, hyst, rr).
///
/// Example — adding a policy without engine edits:
/// \code
///   class JsFifo : public bce::JobOrderPolicy { ... };
///   bce::policy_registry().register_job_order(
///       "JS_FIFO", "first-come first-served, shares ignored",
///       [](const bce::PolicyConfig&) { return std::make_shared<JsFifo>(); },
///       {"fifo"});
///   bce::PolicyConfig pc;
///   pc.sched_by_name = "fifo";           // resolved at emulate() time
///   bce::emulate(scenario, {.policy = pc});
/// \endcode

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "client/scheduling_policy.hpp"

namespace bce {

/// One registered policy, as reported by --list-policies.
struct PolicyRegistryEntry {
  std::string name;                  ///< canonical name, e.g. "JS_GLOBAL"
  std::string description;           ///< one-line summary
  std::vector<std::string> aliases;  ///< alternate lookup names
};

/// Thread-safe name -> factory map for both strategy kinds. Lookup is
/// case-sensitive on canonical names and aliases.
class PolicyRegistry {
 public:
  using JobOrderFactory =
      std::function<std::shared_ptr<const JobOrderPolicy>(const PolicyConfig&)>;
  using FetchFactory =
      std::function<std::shared_ptr<const WorkFetchPolicy>(const PolicyConfig&)>;

  /// Register a job-order (scheduling) policy. Re-registering an existing
  /// name replaces it (latest wins), so tests can shadow built-ins.
  void register_job_order(std::string name, std::string description,
                          JobOrderFactory factory,
                          std::vector<std::string> aliases = {});

  /// Register a work-fetch policy.
  void register_fetch(std::string name, std::string description,
                      FetchFactory factory,
                      std::vector<std::string> aliases = {});

  /// Construct a policy by canonical name or alias. Throws
  /// std::invalid_argument listing the known names when \p name is unknown.
  [[nodiscard]] std::shared_ptr<const JobOrderPolicy> make_job_order(
      const std::string& name, const PolicyConfig& cfg) const;
  [[nodiscard]] std::shared_ptr<const WorkFetchPolicy> make_fetch(
      const std::string& name, const PolicyConfig& cfg) const;

  [[nodiscard]] bool has_job_order(const std::string& name) const;
  [[nodiscard]] bool has_fetch(const std::string& name) const;

  /// Registered entries in registration order (stable listing for CLI
  /// output and registry-driven sweeps).
  [[nodiscard]] std::vector<PolicyRegistryEntry> job_order_entries() const;
  [[nodiscard]] std::vector<PolicyRegistryEntry> fetch_entries() const;

 private:
  struct JobOrderRecord {
    PolicyRegistryEntry info;
    JobOrderFactory factory;
  };
  struct FetchRecord {
    PolicyRegistryEntry info;
    FetchFactory factory;
  };

  [[nodiscard]] const JobOrderRecord* find_job_order(
      const std::string& name) const;
  [[nodiscard]] const FetchRecord* find_fetch(const std::string& name) const;

  mutable std::mutex mu_;
  std::vector<JobOrderRecord> job_orders_;
  std::vector<FetchRecord> fetches_;
};

/// The process-wide registry, pre-loaded with the built-in paper policies.
PolicyRegistry& policy_registry();

/// Canonical registry names for the enum values (the paper's names).
const char* job_sched_policy_name(JobSchedPolicy p);
const char* fetch_policy_name(FetchPolicy p);

/// Resolve \p cfg's scheduling-policy selection to a strategy object:
/// PolicyConfig::sched_by_name when set, the JobSchedPolicy enum otherwise.
std::shared_ptr<const JobOrderPolicy> make_job_order_policy(
    const PolicyConfig& cfg);

/// Same for the fetch selection (fetch_by_name / FetchPolicy).
std::shared_ptr<const WorkFetchPolicy> make_fetch_policy(
    const PolicyConfig& cfg);

}  // namespace bce
