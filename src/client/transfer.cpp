#include "client/transfer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "sim/state_io.hpp"

namespace bce {

bool TransferManager::add(JobId id, double bytes, SimTime deadline, SimTime now,
                          bool resumable) {
  // The caller must have advanced the manager to `now` already (the
  // emulator advances all state before dispatching events), otherwise the
  // new transfer would retroactively absorb bandwidth.
  assert(now + 1e-6 >= last_update_);
  last_update_ = std::max(last_update_, now);
  if (!modeled() || bytes <= 0.0) {
    return true;
  }
  Xfer x;
  x.id = id;
  x.bytes_left = bytes;
  x.bytes_total = bytes;
  x.deadline = deadline;
  x.seq = next_seq_++;
  x.resumable = resumable;
  arm(x);
  xfers_.push_back(x);
  return false;
}

void TransferManager::arm(Xfer& x) {
  x.fail_after_bytes = std::numeric_limits<double>::infinity();
  if (error_rate_ <= 0.0) return;
  if (rng_.uniform01() < error_rate_) {
    // The attempt errors partway through the bytes it was going to move;
    // clamp strictly inside (0,1) so it neither fails instantly nor
    // coincides with its own completion.
    x.fail_after_bytes =
        clamp(rng_.uniform01(), 1e-6, 1.0 - 1e-6) * x.bytes_left;
  }
}

std::size_t TransferManager::active_index(SimTime t) const {
  std::size_t best = xfers_.size();
  for (std::size_t i = 0; i < xfers_.size(); ++i) {
    if (!active(xfers_[i], t)) continue;
    if (best == xfers_.size()) {
      best = i;
      continue;
    }
    const bool earlier =
        order_ == TransferOrder::kEdf
            ? (xfers_[i].deadline < xfers_[best].deadline ||
               (xfers_[i].deadline == xfers_[best].deadline &&
                xfers_[i].seq < xfers_[best].seq))
            : xfers_[i].seq < xfers_[best].seq;
    if (earlier) best = i;
  }
  return best;
}

void TransferManager::advance_to(SimTime now, bool network_on) {
  double dt = now - last_update_;
  last_update_ = std::max(last_update_, now);
  if (dt <= 0.0 || xfers_.empty() || !network_on || !modeled()) return;

  // Within [last_update, now] the active set changes only at completions,
  // failures and retry expiries; iterate segment by segment.
  while (dt > 0.0 && !xfers_.empty()) {
    const SimTime t = now - dt;

    // Time until the next waiting transfer re-activates (its backoff
    // expiry changes the bandwidth sharing mid-interval).
    double dt_activate = std::numeric_limits<double>::infinity();
    std::size_t n_active = 0;
    for (const auto& x : xfers_) {
      if (active(x, t)) {
        ++n_active;
      } else {
        dt_activate = std::min(dt_activate, x.retry_at - t);
      }
    }
    if (n_active == 0) {
      // Everyone is backing off; jump to the first retry (or to now).
      if (dt_activate >= dt) return;
      dt -= dt_activate;
      continue;
    }

    if (order_ == TransferOrder::kFairShare) {
      const double rate = bandwidth_ / static_cast<double>(n_active);
      // Time until the first of the current set completes or errors.
      double dt_first = std::numeric_limits<double>::infinity();
      for (const auto& x : xfers_) {
        if (!active(x, t)) continue;
        dt_first =
            std::min(dt_first, std::min(x.bytes_left, x.fail_after_bytes) / rate);
      }
      const double step = std::min(dt, std::min(dt_first, dt_activate));
      for (auto& x : xfers_) {
        if (!active(x, t)) continue;
        x.bytes_left -= rate * step;
        x.fail_after_bytes -= rate * step;
      }
      dt -= step;
    } else {
      auto& x = xfers_[active_index(t)];
      const double dt_x = std::min(x.bytes_left, x.fail_after_bytes) / bandwidth_;
      const double step = std::min(dt, std::min(dt_x, dt_activate));
      x.bytes_left -= bandwidth_ * step;
      x.fail_after_bytes -= bandwidth_ * step;
      dt -= step;
    }
    const SimTime boundary = now - dt;

    // Collect completions (bytes exhausted within tolerance). A transfer
    // whose failure point coincides with its completion completes: the
    // last byte arrived.
    bool removed = true;
    while (removed) {
      removed = false;
      // Deterministic completion order: by seq among the finished.
      std::size_t done = xfers_.size();
      for (std::size_t i = 0; i < xfers_.size(); ++i) {
        if (xfers_[i].bytes_left <= 1e-6 &&
            (done == xfers_.size() || xfers_[i].seq < xfers_[done].seq)) {
          done = i;
        }
      }
      if (done < xfers_.size()) {
        completed_.push_back(xfers_[done].id);
        xfers_.erase(xfers_.begin() + static_cast<std::ptrdiff_t>(done));
        removed = true;
      }
    }

    // Process mid-flight failures, in seq order (deterministic RNG use).
    bool failed = true;
    while (failed) {
      failed = false;
      std::size_t worst = xfers_.size();
      for (std::size_t i = 0; i < xfers_.size(); ++i) {
        if (xfers_[i].fail_after_bytes <= 1e-6 && xfers_[i].bytes_left > 1e-6 &&
            (worst == xfers_.size() || xfers_[i].seq < xfers_[worst].seq)) {
          worst = i;
        }
      }
      if (worst < xfers_.size()) {
        Xfer& x = xfers_[worst];
        ++retries_;
        x.backoff_len = x.backoff_len <= 0.0
                            ? retry_min_
                            : std::min(retry_max_, x.backoff_len * 2.0);
        x.retry_at = boundary + x.backoff_len;
        if (!x.resumable) x.bytes_left = x.bytes_total;
        arm(x);
        failed = true;
      }
    }
  }
}

SimTime TransferManager::next_completion(bool network_on) const {
  if (xfers_.empty() || !network_on || !modeled()) return kNever;
  SimTime best = kNever;
  std::size_t n_active = 0;
  for (const auto& x : xfers_) {
    if (active(x, last_update_)) {
      ++n_active;
    } else {
      best = std::min(best, x.retry_at);  // wake to restart the attempt
    }
  }
  if (n_active == 0) return best;
  double dt = std::numeric_limits<double>::infinity();
  if (order_ == TransferOrder::kFairShare) {
    // All active transfers share the link; the smallest remaining one
    // finishes (or errors) first, but the set may change before then —
    // conservatively report the time assuming the current sharing
    // persists (the emulator re-queries after every event, so this
    // self-corrects).
    const double rate = bandwidth_ / static_cast<double>(n_active);
    for (const auto& x : xfers_) {
      if (!active(x, last_update_)) continue;
      dt = std::min(dt, std::min(x.bytes_left, x.fail_after_bytes) / rate);
    }
  } else {
    const auto& x = xfers_[active_index(last_update_)];
    dt = std::min(x.bytes_left, x.fail_after_bytes) / bandwidth_;
  }
  // After many failed resumable attempts the next fail point can be so
  // close that last_update_ + dt rounds back to last_update_; returning a
  // non-advancing time would spin the emulator's event loop forever at
  // the same timestamp. Bump to the next representable instant so the
  // event fires with dt > 0 and the failure actually gets processed.
  SimTime when = last_update_ + dt;
  if (std::isfinite(when) && when <= last_update_) {
    when = std::nextafter(last_update_, std::numeric_limits<double>::infinity());
  }
  return std::min(best, when);
}

std::vector<JobId> TransferManager::take_completed() {
  std::vector<JobId> out;
  out.swap(completed_);
  return out;
}

void TransferManager::save_state(StateWriter& w) const {
  rng_.save_state(w, "xfer.rng");
  w.put_f64("xfer.last_update", last_update_);
  w.put_u64("xfer.next_seq", next_seq_);
  w.put_i64("xfer.retries", retries_);
  w.put_count("xfer.pending", xfers_.size());
  for (const Xfer& x : xfers_) {
    w.put_i64("xfer.job", x.id);
    w.put_f64("xfer.bytes_left", x.bytes_left);
    w.put_f64("xfer.bytes_total", x.bytes_total);
    w.put_f64("xfer.deadline", x.deadline);
    w.put_u64("xfer.seq", x.seq);
    w.put_f64("xfer.fail_after_bytes", x.fail_after_bytes);
    w.put_f64("xfer.retry_at", x.retry_at);
    w.put_f64("xfer.backoff_len", x.backoff_len);
    w.put_bool("xfer.resumable", x.resumable);
  }
  w.put_count("xfer.completed", completed_.size());
  for (const JobId id : completed_) w.put_i64("xfer.completed_job", id);
}

void TransferManager::restore_state(StateReader& r) {
  rng_.restore_state(r, "xfer.rng");
  last_update_ = r.get_f64("xfer.last_update");
  next_seq_ = r.get_u64("xfer.next_seq");
  retries_ = r.get_i64("xfer.retries");
  const std::uint64_t n = r.get_count("xfer.pending");
  xfers_.clear();
  xfers_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Xfer x;
    x.id = static_cast<JobId>(r.get_i64("xfer.job"));
    x.bytes_left = r.get_f64("xfer.bytes_left");
    x.bytes_total = r.get_f64("xfer.bytes_total");
    x.deadline = r.get_f64("xfer.deadline");
    x.seq = r.get_u64("xfer.seq");
    x.fail_after_bytes = r.get_f64("xfer.fail_after_bytes");
    x.retry_at = r.get_f64("xfer.retry_at");
    x.backoff_len = r.get_f64("xfer.backoff_len");
    x.resumable = r.get_bool("xfer.resumable");
    xfers_.push_back(x);
  }
  const std::uint64_t nc = r.get_count("xfer.completed");
  completed_.clear();
  completed_.reserve(nc);
  for (std::uint64_t i = 0; i < nc; ++i) {
    completed_.push_back(static_cast<JobId>(r.get_i64("xfer.completed_job")));
  }
}

}  // namespace bce
