#include "client/transfer.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace bce {

bool TransferManager::add(JobId id, double bytes, SimTime deadline,
                          SimTime now) {
  // The caller must have advanced the manager to `now` already (the
  // emulator advances all state before dispatching events), otherwise the
  // new transfer would retroactively absorb bandwidth.
  assert(now + 1e-6 >= last_update_);
  last_update_ = std::max(last_update_, now);
  if (!modeled() || bytes <= 0.0) {
    return true;
  }
  Xfer x;
  x.id = id;
  x.bytes_left = bytes;
  x.deadline = deadline;
  x.seq = next_seq_++;
  xfers_.push_back(x);
  return false;
}

std::size_t TransferManager::active_index() const {
  if (xfers_.empty()) return xfers_.size();
  std::size_t best = 0;
  for (std::size_t i = 1; i < xfers_.size(); ++i) {
    const bool earlier =
        order_ == TransferOrder::kEdf
            ? (xfers_[i].deadline < xfers_[best].deadline ||
               (xfers_[i].deadline == xfers_[best].deadline &&
                xfers_[i].seq < xfers_[best].seq))
            : xfers_[i].seq < xfers_[best].seq;
    if (earlier) best = i;
  }
  return best;
}

void TransferManager::advance_to(SimTime now, bool network_on) {
  double dt = now - last_update_;
  last_update_ = std::max(last_update_, now);
  if (dt <= 0.0 || xfers_.empty() || !network_on || !modeled()) return;

  // Within [last_update, now] the active set only shrinks (completions);
  // iterate segment by segment.
  while (dt > 0.0 && !xfers_.empty()) {
    if (order_ == TransferOrder::kFairShare) {
      const double rate = bandwidth_ / static_cast<double>(xfers_.size());
      // Time until the first of the current set completes.
      double dt_first = std::numeric_limits<double>::infinity();
      for (const auto& x : xfers_) {
        dt_first = std::min(dt_first, x.bytes_left / rate);
      }
      const double step = std::min(dt, dt_first);
      for (auto& x : xfers_) x.bytes_left -= rate * step;
      dt -= step;
    } else {
      auto& x = xfers_[active_index()];
      const double step = std::min(dt, x.bytes_left / bandwidth_);
      x.bytes_left -= bandwidth_ * step;
      dt -= step;
    }
    // Collect completions (bytes exhausted within tolerance).
    bool removed = true;
    while (removed) {
      removed = false;
      // Deterministic completion order: by seq among the finished.
      std::size_t done = xfers_.size();
      for (std::size_t i = 0; i < xfers_.size(); ++i) {
        if (xfers_[i].bytes_left <= 1e-6 &&
            (done == xfers_.size() || xfers_[i].seq < xfers_[done].seq)) {
          done = i;
        }
      }
      if (done < xfers_.size()) {
        completed_.push_back(xfers_[done].id);
        xfers_.erase(xfers_.begin() + static_cast<std::ptrdiff_t>(done));
        removed = true;
      }
    }
  }
}

SimTime TransferManager::next_completion(bool network_on) const {
  if (xfers_.empty() || !network_on || !modeled()) return kNever;
  if (order_ == TransferOrder::kFairShare) {
    // All share the link; the smallest remaining transfer finishes first,
    // but the set may shrink before then — conservatively report the time
    // assuming the current sharing persists (the emulator re-queries after
    // every event, so this self-corrects).
    const double rate = bandwidth_ / static_cast<double>(xfers_.size());
    double dt = std::numeric_limits<double>::infinity();
    for (const auto& x : xfers_) dt = std::min(dt, x.bytes_left / rate);
    return last_update_ + dt;
  }
  const auto& x = xfers_[active_index()];
  return last_update_ + x.bytes_left / bandwidth_;
}

std::vector<JobId> TransferManager::take_completed() {
  std::vector<JobId> out;
  out.swap(completed_);
  return out;
}

}  // namespace bce
