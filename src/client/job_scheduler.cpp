#include "client/job_scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "client/policy_registry.hpp"

namespace bce {

namespace {

/// Laxity: time to deadline minus estimated remaining full-speed runtime.
double laxity(SimTime now, const Result& r, const HostInfo& host) {
  const double rate = r.usage.flops_rate(host);
  const double rem = rate > 0.0 ? r.est_flops_remaining() / rate : 0.0;
  return (r.deadline - now) - rem;
}

}  // namespace

JobScheduler::JobScheduler(const HostInfo& host, const Preferences& prefs,
                           const PolicyConfig& policy)
    : host_(host),
      prefs_(prefs),
      policy_(policy),
      order_(make_job_order_policy(policy)) {}

ScheduleOutcome JobScheduler::schedule(SimTime now,
                                       const std::vector<Result*>& jobs,
                                       const Accounting& acct,
                                       bool cpu_allowed, bool gpu_allowed,
                                       Trace& trace) const {
  ScheduleOutcome out;
  schedule(now, jobs, acct, cpu_allowed, gpu_allowed, trace, out);
  return out;
}

void JobScheduler::schedule(SimTime now, const std::vector<Result*>& jobs,
                            const Accounting& acct, bool cpu_allowed,
                            bool gpu_allowed, Trace& trace,
                            ScheduleOutcome& out) const {
  out.to_run.clear();
  out.ordered.clear();

  // Tier assignment. Lower tier = earlier in list.
  //   0: running & uncheckpointed this episode (would lose work)
  //   1: endangered GPU   2: other GPU   3: endangered CPU   4: other CPU
  auto tier_of = [&](const Result& r) -> int {
    // With apps left in memory, preemption loses nothing, so uncheckpointed
    // running jobs need no protection.
    if (!prefs_.leave_apps_in_memory && r.running && !r.episode_checkpointed &&
        r.flops_done > r.checkpointed_flops + kFpEpsilon) {
      return 0;
    }
    const bool gpu = r.usage.uses_gpu();
    const bool dl = order_->deadline_order_for_all() ||
                    (order_->deadline_aware() && r.deadline_endangered);
    if (gpu) return dl ? 1 : 2;
    return dl ? 3 : 4;
  };

  // Candidate set: incomplete, input files present, processor kind allowed.
  // Bucketed by tier directly (no intermediate candidate vector); bucket
  // order matches the jobs-list scan order, as before.
  auto& buckets = buckets_;
  for (auto& b : buckets) b.clear();
  std::size_t n_cand = 0;
  for (Result* r : jobs) {
    if (!r->runnable(now)) continue;
    const bool gpu_job = r->usage.uses_gpu();
    if (gpu_job && !gpu_allowed) continue;
    if (!cpu_allowed) continue;  // no computing at all while host is off
    buckets[static_cast<std::size_t>(tier_of(*r))].push_back(r);
    ++n_cand;
  }
  if (n_cand == 0) return;

  // Pass-local priority adjustments accumulated while building the list
  // (BOINC's "anticipated debt"): charging a project for each job selected
  // makes a single pass interleave projects.
  auto& ctx = ctx_;
  ctx.host = &host_;
  ctx.acct = &acct;
  ctx.global_adj.assign(acct.num_projects(), 0.0);
  ctx.local_adj.assign(acct.num_projects(), {});

  // Deadline-order key for endangered tiers.
  auto deadline_key = [&](const Result& r) {
    return policy_.endangered_order == EndangeredOrder::kLeastLaxity
               ? laxity(now, r, host_)
               : r.deadline;
  };

  // Tiers 0/1/3: deadline order. Tiers 2/4: repeated best-priority pick with
  // priority charging.
  for (int ti = 0; ti < 5; ++ti) {
    auto& b = buckets[static_cast<std::size_t>(ti)];
    if (b.empty()) continue;
    if (ti == 0 || ti == 1 || ti == 3) {
      // Deadline order; among equal deadlines prefer the job already
      // running (switching between equal-deadline jobs only burns
      // checkpoint rollbacks), then FIFO.
      std::stable_sort(b.begin(), b.end(), [&](Result* a, Result* c) {
        const double ka = deadline_key(*a);
        const double kc = deadline_key(*c);
        if (ka != kc) return ka < kc;
        if (a->running != c->running) return a->running;
        if (a->received != c->received) return a->received < c->received;
        return a->id < c->id;
      });
      for (Result* r : b) {
        out.ordered.push_back(r);
        order_->charge(ctx, *r);
      }
    } else {
      auto& pool = pick_pool_;
      pool = b;
      while (!pool.empty()) {
        std::size_t best = 0;
        double best_prio = -1e300;
        for (std::size_t i = 0; i < pool.size(); ++i) {
          const Result& r = *pool[i];
          const double pr = order_->priority(ctx, r);
          // Tie-break: FIFO by arrival, then id, for determinism.
          if (pr > best_prio + 1e-12 ||
              (std::abs(pr - best_prio) <= 1e-12 &&
               (pool[i]->received < pool[best]->received ||
                (pool[i]->received == pool[best]->received &&
                 pool[i]->id < pool[best]->id)))) {
            best_prio = pr;
            best = i;
          }
        }
        Result* r = pool[best];
        pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(best));
        out.ordered.push_back(r);
        order_->charge(ctx, *r);
      }
    }
  }

  // ---- allocation scan ---------------------------------------------------
  double cpu_pool = host_.count[ProcType::kCpu];
  double ram_pool = host_.ram_bytes * prefs_.ram_limit_fraction;
  auto& gpu_free = gpu_free_;
  for (const auto t : kAllProcTypes) {
    if (is_gpu(t)) {
      gpu_free[t].assign(static_cast<std::size_t>(host_.count[t]), 1.0);
    }
  }

  auto alloc_gpu = [&](ProcType t, double need) -> bool {
    auto& free = gpu_free[t];
    // Whole instances first, then the fractional remainder first-fit.
    double whole = std::floor(need + 1e-9);
    double frac = need - whole;
    if (frac < 1e-9) frac = 0.0;
    auto& taken = gpu_taken_;
    taken.clear();
    for (std::size_t i = 0; i < free.size() && whole > 0.5; ++i) {
      if (free[i] >= 1.0 - 1e-9) {
        taken.push_back(i);
        whole -= 1.0;
      }
    }
    if (whole > 0.5) return false;
    std::size_t frac_slot = free.size();
    if (frac > 0.0) {
      for (std::size_t i = 0; i < free.size(); ++i) {
        const bool used_whole =
            std::find(taken.begin(), taken.end(), i) != taken.end();
        if (!used_whole && free[i] + 1e-9 >= frac) {
          frac_slot = i;
          break;
        }
      }
      if (frac_slot == free.size()) return false;
    }
    for (const auto i : taken) free[i] = 0.0;
    if (frac > 0.0) free[frac_slot] -= frac;
    return true;
  };

  for (Result* r : out.ordered) {
    const bool gpu_job = r->usage.uses_gpu();
    // CPU admission mirrors BOINC's enforce_run_list: a job may start as
    // long as committed CPUs are strictly below the count (so a GPU job's
    // 0.05-CPU sliver can't strand a whole core), bounded to at most one
    // CPU of overcommitment; GPU jobs always get their CPU sliver.
    if (gpu_job) {
      if (r->usage.avg_ncpus > cpu_pool + 1.0 + 1e-9) continue;
    } else {
      if (cpu_pool <= 1e-9) continue;
      if (r->usage.avg_ncpus > cpu_pool + 1.0 + 1e-9) continue;
    }
    if (r->ram_bytes > ram_pool + 1e-9) {
      trace.emit({.at = now, .kind = TraceKind::kJobSkippedRam, .job = r->id});
      continue;
    }
    if (gpu_job && !alloc_gpu(r->usage.coproc, r->usage.coproc_usage)) {
      trace.emit({.at = now,
                  .kind = TraceKind::kJobSkippedCoproc,
                  .job = r->id,
                  .ptype = static_cast<std::int32_t>(proc_index(r->usage.coproc))});
      continue;
    }
    cpu_pool -= r->usage.avg_ncpus;
    ram_pool -= r->ram_bytes;
    out.to_run.push_back(r);
  }

  trace.emit({.at = now,
              .kind = TraceKind::kSchedulePass,
              .n = static_cast<std::int64_t>(n_cand),
              .m = static_cast<std::int64_t>(out.to_run.size()),
              .v0 = cpu_pool});
}

}  // namespace bce
