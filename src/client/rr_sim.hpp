#pragma once

/// \file rr_sim.hpp
/// Round-robin simulation (§3.2): a continuous approximation of weighted
/// round robin over the client's current job queue. "Instead of modeling
/// individual timeslices, it uses a continuous approximation."
///
/// Outputs (Figure 2):
///  * per-job deadline predictions — jobs whose projected completion is
///    after their deadline are flagged *deadline-endangered*;
///  * SAT(T): how long each processor type stays saturated (all instances
///    busy) from now;
///  * SHORTFALL(T): idle instance-seconds of each type within the maximum
///    queue interval [now, now + max_queue] (§3.4).
///
/// Model notes:
///  * Each processor type's instances form a fluid capacity pool of
///    `count[T]` instance-units. Eligible projects (those with unfinished
///    jobs of the type) receive quota proportional to resource share;
///    quotas fill each project's jobs FIFO; leftover capacity is
///    redistributed to projects with unmet demand (water-filling).
///  * A job progresses at `flops_rate * granted/needed`, de-rated by the
///    expected availability of its processor type — matching how the real
///    client folds its measured "on fraction" into the simulation.
///  * GPU jobs are allocated on their GPU type only; the small CPU sliver
///    of a GPU app is ignored inside RR-sim (as in BOINC's rr_sim).

#include <cstdint>
#include <vector>

#include "host/host_info.hpp"
#include "host/preferences.hpp"
#include "model/job.hpp"
#include "sim/audit.hpp"
#include "sim/trace.hpp"

namespace bce {

struct RrSimOutput {
  /// Idle instance-seconds within [now, now + max_queue], per type — the
  /// amount JF_HYSTERESIS requests when it fetches (fill to the top).
  PerProc<double> shortfall{};

  /// Idle instance-seconds within [now, now + min_queue], per type — the
  /// deficit JF_ORIG tops up continuously (the original BOINC fetch
  /// computed its shortfall over the min work buffer).
  PerProc<double> shortfall_min{};

  /// SAT(T): duration from `now` during which all instances of T are busy.
  PerProc<Duration> saturated{};

  /// Instances of each type idle at the start of the simulation (feeds the
  /// `req_instances` field of work requests).
  PerProc<double> idle_instances_now{};

  /// Busy instance-seconds within the window (diagnostics).
  PerProc<double> busy_inst_seconds{};

  /// Number of jobs flagged deadline-endangered.
  int n_endangered = 0;

  /// Simulated time span until the queue drained (diagnostics).
  Duration span = 0.0;

  /// Piecewise-constant busy-instance profile: busy units per type on
  /// [profile[i].t, profile[i+1].t) (last segment extends to `span`).
  /// This is the prediction Figure 2 visualizes: "how long each processor
  /// instance will be busy given the current workload".
  struct ProfilePoint {
    SimTime t = 0.0;
    PerProc<double> busy{};
  };
  std::vector<ProfilePoint> profile;
};

class RrSim {
 public:
  /// \p avail_frac: expected availability of each processor type (long-run
  /// on-fraction); rates inside the simulation are multiplied by it.
  RrSim(const HostInfo& host, const Preferences& prefs,
        PerProc<double> avail_frac);

  /// Run the simulation over \p jobs (incomplete jobs, queued or running).
  /// Writes `deadline_endangered` and `rr_projected_finish` into each job.
  /// \p share_frac: per-project fractional resource shares.
  RrSimOutput run(SimTime now, const std::vector<Result*>& jobs,
                  const std::vector<double>& share_frac,
                  Trace* trace = nullptr) const;

  /// Cache hit/miss counters for run_cached (observability: the emulator's
  /// per-step "avoided recompute" count is hits).
  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  /// Memoizing variant: if \p state_version and \p now match the previous
  /// run_cached call, return the cached output (and skip re-simulating —
  /// including the per-job flag writes, which by construction would be
  /// byte-identical). \p state_version must change whenever anything RR-sim
  /// reads changes: the job set, job progress, deadlines, shares, or
  /// availability. Callers bump it via ClientRuntime::bump_state_version().
  const RrSimOutput& run_cached(std::uint64_t state_version, SimTime now,
                                const std::vector<Result*>& jobs,
                                const std::vector<double>& share_frac,
                                Trace* trace = nullptr);

  [[nodiscard]] const CacheStats& cache_stats() const { return stats_; }

  /// Install a debug auditor (non-owning, may be nullptr): run_cached then
  /// checks that \p state_version never regresses and that every fresh
  /// simulation's outputs satisfy the RR-sim post-conditions (shortfalls
  /// non-negative, SAT within span, capacity conservation).
  void set_auditor(InvariantAuditor* auditor) { auditor_ = auditor; }

  /// Savestate support (docs/savestate.md): the memo is deliberately NOT
  /// serialized — restore invalidates it, so the first run_cached after a
  /// restore re-primes from restored job state rather than serving a
  /// snapshot of pre-save scratch. Only the hit/miss counters carry over.
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  /// Per-job simulation state (scratch; see sim_jobs_).
  struct SimJob {
    Result* job = nullptr;
    double remaining = 0.0;  ///< estimated FLOPs remaining
    double granted = 0.0;    ///< instance-units of the primary type granted
    double needed = 0.0;     ///< instance-units of the primary type needed
    double rate = 0.0;       ///< FLOPs/sec at current grant
  };

  /// The simulation proper: clears \p out (keeping vector capacity) and
  /// fills it. run() and run_cached() are thin wrappers, so the cached
  /// path reuses the memo entry's profile storage run over run.
  void run_into(RrSimOutput& out, SimTime now,
                const std::vector<Result*>& jobs,
                const std::vector<double>& share_frac, Trace* trace) const;

  HostInfo host_;
  Preferences prefs_;
  PerProc<double> avail_frac_;

  // Reusable scratch, hoisted out of run_into so steady-state simulations
  // allocate nothing. Mutable because run() is logically const; an RrSim
  // instance must not be shared across threads anyway (the memo cache
  // already makes it stateful).
  mutable std::vector<SimJob> sim_jobs_;
  mutable std::vector<double> quota_;
  mutable std::vector<Result*> attribution_jobs_;
  mutable std::vector<Result*> attribution_group_;

  // run_cached memo: one entry, keyed on (state_version, now). One entry
  // suffices because the client alternates reschedule/fetch passes over the
  // same instant; a deeper cache would never hit.
  bool cache_valid_ = false;
  std::uint64_t cached_version_ = 0;
  SimTime cached_now_ = 0.0;
  RrSimOutput cached_out_;
  CacheStats stats_;
  InvariantAuditor* auditor_ = nullptr;
};

}  // namespace bce
