#include "client/client_runtime.hpp"

#include <cmath>

#include "sim/state_io.hpp"

namespace bce {

namespace {

/// Long-run expected availability per processor type (the client's
/// measured "on fraction", folded into RR-sim rates).
PerProc<double> expected_avail(const Scenario& sc) {
  PerProc<double> a;
  const double host_on = sc.availability.host_on.expected_on_fraction();
  const double gpu_ok =
      host_on * sc.availability.gpu_allowed.expected_on_fraction();
  a[ProcType::kCpu] = host_on;
  a[ProcType::kNvidia] = gpu_ok;
  a[ProcType::kAti] = gpu_ok;
  return a;
}

}  // namespace

ClientRuntime::ClientRuntime(const Scenario& scenario,
                             const PolicyConfig& policy, Trace* trace)
    : sc_(&scenario),
      policy_(policy),
      trace_(trace != nullptr ? trace : &null_trace_),
      acct_(scenario.host, {}, policy.rec_half_life),
      rrsim_(scenario.host, scenario.prefs, {}),
      sched_(scenario.host, scenario.prefs, policy),
      fetch_(scenario.host, scenario.prefs, policy),
      transfers_(scenario.host.download_bandwidth_bps, policy.transfer_order,
                 scenario.faults.transfer_error_rate,
                 scenario.faults.transfer_retry_min,
                 scenario.faults.transfer_retry_max,
                 // Independent stream: labels are unique program-wide, so a
                 // fresh root seeded like the emulator's yields a stream no
                 // other consumer shares (and zero draws at rate 0).
                 Xoshiro256(scenario.seed).fork("fault.transfer")) {
  const std::size_t n = scenario.projects.size();
  share_frac_.resize(n);
  dcf_.assign(n, 1.0);
  project_cfgs_.reserve(n);
  std::vector<PerProc<bool>> capability(n);
  for (std::size_t p = 0; p < n; ++p) {
    share_frac_[p] = scenario.share_fraction(p);
    const auto& pc = scenario.projects[p];
    project_cfgs_.push_back(&pc);
    for (const auto t : kAllProcTypes) {
      capability[p][t] = scenario.host.count[t] > 0 && pc.has_jobs_for(t) &&
                         !pc.suspended && !(pc.no_gpu && is_gpu(t));
    }
  }
  acct_ = Accounting(scenario.host, share_frac_, policy.rec_half_life,
                     std::move(capability));
  rrsim_ = RrSim(scenario.host, scenario.prefs, expected_avail(scenario));
  fetch_states_.resize(n);
  endangered_.resize(n);
}

const RrSimOutput& ClientRuntime::rr_pass(SimTime now,
                                          const std::vector<Result*>& active) {
  const RrSimOutput& rr =
      rrsim_.run_cached(state_version_, now, active, share_frac_, trace_);
  last_rr_ = &rr;
  for (Result* r : active) {
    if (r->first_projected_finish == kNever &&
        r->rr_projected_finish < kNever) {
      r->first_projected_finish = r->rr_projected_finish;
    }
  }
  return rr;
}

const ScheduleOutcome& ClientRuntime::schedule_jobs(
    SimTime now, const std::vector<Result*>& active, bool cpu_allowed,
    bool gpu_allowed) {
  rr_pass(now, active);
  sched_.schedule(now, active, acct_, cpu_allowed, gpu_allowed, *trace_,
                  sched_out_);
  return sched_out_;
}

WorkFetch::Decision ClientRuntime::choose_fetch(
    SimTime now, const std::vector<Result*>& active) {
  const RrSimOutput& rr = rr_pass(now, active);

  for (auto& e : endangered_) e = PerProc<bool>{};
  for (const Result* r : active) {
    if (r->deadline_endangered) {
      endangered_[static_cast<std::size_t>(r->project)]
                 [r->usage.primary_type()] = true;
    }
  }

  WorkFetch::Decision d = fetch_.choose(now, rr, acct_, project_cfgs_,
                                        fetch_states_, endangered_, *trace_);
  if (d.fetch() && policy_.use_duration_correction) {
    d.request.duration_correction = dcf_[static_cast<std::size_t>(d.project)];
  }
  return d;
}

void ClientRuntime::on_job_arrival(Result& r) {
  if (policy_.use_duration_correction) {
    r.est_correction = dcf_[static_cast<std::size_t>(r.project)];
  }
  bump();
}

void ClientRuntime::on_job_completed(const Result& r) {
  // Learn the project's systematic estimate error (DCF): jump up
  // immediately on underestimates, decay down slowly, as in BOINC.
  if (policy_.use_duration_correction && r.flops_est > 0.0) {
    auto& dcf = dcf_[static_cast<std::size_t>(r.project)];
    const double ratio = r.flops_total / r.flops_est;
    dcf = ratio > dcf ? ratio : 0.9 * dcf + 0.1 * ratio;
    dcf = clamp(dcf, 0.01, 100.0);
  }
  bump();
}

void ClientRuntime::on_job_failed(const Result& r) {
  (void)r;
  bump();
}

void ClientRuntime::on_progress() { bump(); }

void ClientRuntime::on_jobs_runnable() { bump(); }

void ClientRuntime::on_availability_change() { bump(); }

void ClientRuntime::on_rpc_sent(SimTime now, ProjectId p, bool work_request) {
  fetch_.on_rpc_sent(now, fetch_states_[static_cast<std::size_t>(p)],
                     work_request);
}

void ClientRuntime::on_rpc_reply(SimTime now, const WorkRequest& req,
                                 const RpcReply& reply, ProjectId p) {
  fetch_.on_reply(now, req, reply, fetch_states_[static_cast<std::size_t>(p)],
                  *trace_);
}

SimTime ClientRuntime::on_rpc_lost(SimTime now, ProjectId p) {
  return fetch_.on_reply_lost(now, fetch_states_[static_cast<std::size_t>(p)],
                              *trace_);
}

SimTime ClientRuntime::next_allowed_rpc(ProjectId p) const {
  return fetch_states_[static_cast<std::size_t>(p)].next_allowed_rpc;
}

void ClientRuntime::charge(SimTime t, Duration dt,
                           const std::vector<PerProc<double>>& used_inst_secs,
                           const std::vector<PerProc<bool>>& runnable) {
  acct_.charge(t, dt, used_inst_secs, runnable);
  if (auditor_ != nullptr) {
    auditor_->check_debt_sums(acct_, runnable);
    auditor_->check_rec_nonneg(acct_);
  }
}

void ClientRuntime::save_state(StateWriter& w) const {
  w.put_u64("client.state_version", state_version_);
  w.put_count("client.projects", dcf_.size());
  for (const double d : dcf_) w.put_f64("client.dcf", d);
  acct_.save_state(w);
  rrsim_.save_state(w);
  for (const ProjectFetchState& fs : fetch_states_) {
    w.put_f64("fetch.next_allowed_rpc", fs.next_allowed_rpc);
    w.put_f64("fetch.project_backoff_len", fs.project_backoff_len);
    w.put_f64("fetch.last_work_rpc", fs.last_work_rpc);
    for (const auto t : kAllProcTypes) {
      w.put_f64("fetch.type_backoff_until", fs.type_backoff_until[t]);
      w.put_f64("fetch.type_backoff_len", fs.type_backoff_len[t]);
    }
    w.put_f64("fetch.rpc_retry_backoff_len", fs.rpc_retry_backoff_len);
  }
  transfers_.save_state(w);
}

void ClientRuntime::restore_state(StateReader& r) {
  state_version_ = r.get_u64("client.state_version");
  const std::uint64_t n = r.get_count("client.projects");
  (void)n;
  for (double& d : dcf_) d = r.get_f64("client.dcf");
  acct_.restore_state(r);
  rrsim_.restore_state(r);
  for (ProjectFetchState& fs : fetch_states_) {
    fs.next_allowed_rpc = r.get_f64("fetch.next_allowed_rpc");
    fs.project_backoff_len = r.get_f64("fetch.project_backoff_len");
    fs.last_work_rpc = r.get_f64("fetch.last_work_rpc");
    for (const auto t : kAllProcTypes) {
      fs.type_backoff_until[t] = r.get_f64("fetch.type_backoff_until");
      fs.type_backoff_len[t] = r.get_f64("fetch.type_backoff_len");
    }
    fs.rpc_retry_backoff_len = r.get_f64("fetch.rpc_retry_backoff_len");
  }
  transfers_.restore_state(r);
  // The cached pointer references the pre-restore memo; the next rr_pass
  // re-primes both (RrSim::restore_state dropped the memo too).
  last_rr_ = nullptr;
}

}  // namespace bce
