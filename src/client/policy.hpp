#pragma once

/// \file policy.hpp
/// Policy selections (§3, §4.3: "a set of flags selecting the job
/// scheduling, job fetch, and server deadline-check policies").

#include <string>

#include "sim/types.hpp"

namespace bce {

/// Client job-scheduling policy variants (§3.3, plus one §6.2 "other
/// policy alternatives" entry).
enum class JobSchedPolicy {
  kWrr,      ///< JS-WRR: weighted round robin only; deadlines ignored
  kLocal,    ///< JS-LOCAL: deadline-aware, local per-(project,type) debt
  kGlobal,   ///< JS-GLOBAL (a.k.a. JS-REC): deadline-aware, global REC
  kEdfOnly,  ///< JS-EDF: pure earliest-deadline-first; shares ignored
};

/// Client job-fetch policy variants (§3.4, plus a §6.2 alternative).
enum class FetchPolicy {
  kOrig,        ///< JF_ORIG: fetch whenever SHORTFALL(T) > 0, share-scaled
  kHysteresis,  ///< JF_HYSTERESIS: fetch when SAT(T) < min_queue, full shortfall
  kRoundRobin,  ///< JF_RR: hysteresis trigger, least-recently-asked project
};

/// Ordering among deadline-endangered jobs. EDF is the paper's default;
/// least-laxity-first is the §6.2 "heuristics that perform better than EDF
/// on multiprocessors" extension.
enum class EndangeredOrder {
  kEdf,          ///< earliest deadline first
  kLeastLaxity,  ///< smallest (deadline - now - est remaining runtime) first
};

/// Ordering of input-file downloads when the host's bandwidth is modeled
/// (the "additional scheduling policy: the order in which files are
/// uploaded and downloaded" of §6.2).
enum class TransferOrder {
  kFairShare,  ///< all pending downloads share the link equally
  kFifo,       ///< one at a time, in arrival order
  kEdf,        ///< one at a time, earliest job deadline first
};

struct PolicyConfig {
  JobSchedPolicy sched = JobSchedPolicy::kGlobal;
  FetchPolicy fetch = FetchPolicy::kHysteresis;

  /// Registry-based selection: when non-empty, these name
  /// bce::policy_registry() entries (canonical name or alias) and override
  /// the enums above, letting policies registered outside this library be
  /// selected without engine changes.
  std::string sched_by_name;
  std::string fetch_by_name;

  /// Server-side dispatch policy by name (bce::server_policy_registry()
  /// canonical name or alias). Empty selects SD_PAPER, the paper's
  /// behavior; CLI --dispatch sets it.
  std::string dispatch_by_name;
  EndangeredOrder endangered_order = EndangeredOrder::kEdf;
  TransferOrder transfer_order = TransferOrder::kFairShare;

  /// Half-life A of the REC decaying average (§3.1, Figure 6).
  double rec_half_life = 10.0 * kSecondsPerDay;

  /// Server-side deadline check (§4.3).
  bool server_deadline_check = false;

  /// Client-side fetch suppression: don't request more work of a type from
  /// a project that currently has deadline-endangered jobs of that type
  /// (a later-BOINC refinement; off by default to match the paper's runs,
  /// ablated in bench/ablations).
  bool fetch_deadline_suppression = false;

  /// Duration-correction factor: the client learns each project's
  /// systematic estimate error from completed jobs and scales a-priori
  /// estimates accordingly (BOINC's DCF; "model inaccurate job runtime
  /// estimates", §6.2). On by default as in BOINC; ablated in
  /// bench/ablations.
  bool use_duration_correction = true;

  [[nodiscard]] const char* sched_name() const {
    switch (sched) {
      case JobSchedPolicy::kWrr: return "JS_WRR";
      case JobSchedPolicy::kLocal: return "JS_LOCAL";
      case JobSchedPolicy::kGlobal: return "JS_GLOBAL";
      case JobSchedPolicy::kEdfOnly: return "JS_EDF";
    }
    return "?";
  }
  [[nodiscard]] const char* fetch_name() const {
    switch (fetch) {
      case FetchPolicy::kOrig: return "JF_ORIG";
      case FetchPolicy::kHysteresis: return "JF_HYSTERESIS";
      case FetchPolicy::kRoundRobin: return "JF_RR";
    }
    return "?";
  }

  /// Names honouring the by-name overrides (what will actually run).
  [[nodiscard]] std::string selected_sched_name() const {
    return sched_by_name.empty() ? sched_name() : sched_by_name;
  }
  [[nodiscard]] std::string selected_fetch_name() const {
    return fetch_by_name.empty() ? fetch_name() : fetch_by_name;
  }
  [[nodiscard]] std::string selected_dispatch_name() const {
    return dispatch_by_name.empty() ? "SD_PAPER" : dispatch_by_name;
  }
};

}  // namespace bce
