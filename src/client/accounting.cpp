#include "client/accounting.hpp"

#include <cassert>
#include <cmath>

#include "sim/state_io.hpp"

namespace bce {

Accounting::Accounting(const HostInfo& host, std::vector<double> share_fractions,
                       double rec_half_life,
                       std::vector<PerProc<bool>> capability)
    : host_(host),
      shares_(std::move(share_fractions)),
      capability_(std::move(capability)) {
  if (capability_.size() != shares_.size()) {
    capability_.assign(shares_.size(), PerProc<bool>{});
    for (auto& c : capability_) {
      for (const auto t : kAllProcTypes) c[t] = host_.count[t] > 0;
    }
  }
  st_debts_.resize(shares_.size());
  lt_debts_.resize(shares_.size());
  recs_.resize(shares_.size(), DecayingAverage(rec_half_life));
  for (const auto t : kAllProcTypes) {
    debt_cap_[t] = kSecondsPerDay * host_.count[t];
  }
}

void Accounting::charge(SimTime now, Duration dt,
                        const std::vector<PerProc<double>>& inst_seconds_used,
                        const std::vector<PerProc<bool>>& runnable) {
  assert(inst_seconds_used.size() == shares_.size());
  assert(runnable.size() == shares_.size());
  const std::size_t n = shares_.size();

  // One debt family, two eligibility rules: short-term uses "has runnable
  // jobs of this type now", long-term uses "capable of this type".
  auto update_debts = [&](std::vector<PerProc<double>>& debts,
                          auto&& eligible) {
    for (const auto t : kAllProcTypes) {
      if (host_.count[t] == 0) continue;

      double eligible_share = 0.0;
      for (std::size_t p = 0; p < n; ++p) {
        if (eligible(p, t)) eligible_share += shares_[p];
      }

      double mean = 0.0;
      std::size_t n_eligible = 0;
      for (std::size_t p = 0; p < n; ++p) {
        double delta = -inst_seconds_used[p][t];
        if (eligible(p, t) && eligible_share > 0.0) {
          delta += dt * (shares_[p] / eligible_share) * host_.count[t];
          ++n_eligible;
        }
        debts[p][t] += delta;
        if (eligible(p, t)) mean += debts[p][t];
      }

      // Keep eligible projects' debts centered on zero (as BOINC does) and
      // cap magnitudes so a project that structurally cannot consume its
      // share doesn't bank unbounded credit.
      if (n_eligible > 0) {
        mean /= static_cast<double>(n_eligible);
        for (std::size_t p = 0; p < n; ++p) {
          if (eligible(p, t)) debts[p][t] -= mean;
          debts[p][t] = clamp(debts[p][t], -debt_cap_[t], debt_cap_[t]);
        }
      }
    }
  };

  update_debts(st_debts_,
               [&](std::size_t p, ProcType t) { return runnable[p][t]; });
  update_debts(lt_debts_,
               [&](std::size_t p, ProcType t) { return capability_[p][t]; });

  // ---- global REC -------------------------------------------------------
  for (std::size_t p = 0; p < n; ++p) {
    double flops = 0.0;
    for (const auto t : kAllProcTypes) {
      flops += inst_seconds_used[p][t] * host_.flops_per_instance[t];
    }
    recs_[p].add(now, flops);
  }
}

double Accounting::prio_fetch_local(ProjectId p) const {
  const double total = host_.total_peak_flops();
  if (total <= 0.0) return 0.0;
  double sum = 0.0;
  for (const auto t : kAllProcTypes) {
    sum += long_term_debt(p, t) * host_.flops_per_instance[t];
  }
  return sum / total;
}

void Accounting::save_state(StateWriter& w) const {
  w.put_count("acct.projects", shares_.size());
  for (std::size_t p = 0; p < shares_.size(); ++p) {
    for (const auto t : kAllProcTypes) {
      w.put_f64("acct.st_debt", st_debts_[p][t]);
      w.put_f64("acct.lt_debt", lt_debts_[p][t]);
    }
    w.put_f64("acct.rec.value", recs_[p].value());
    w.put_f64("acct.rec.last_update", recs_[p].last_update());
  }
}

void Accounting::restore_state(StateReader& r) {
  const std::uint64_t n = r.get_count("acct.projects");
  assert(n == shares_.size());
  (void)n;
  for (std::size_t p = 0; p < shares_.size(); ++p) {
    for (const auto t : kAllProcTypes) {
      st_debts_[p][t] = r.get_f64("acct.st_debt");
      lt_debts_[p][t] = r.get_f64("acct.lt_debt");
    }
    const double value = r.get_f64("acct.rec.value");
    const double last_update = r.get_f64("acct.rec.last_update");
    recs_[p].restore(value, last_update);
  }
}

double Accounting::prio_global(ProjectId p) const {
  double total_rec = 0.0;
  for (const auto& r : recs_) total_rec += r.value();
  const double rec_frac =
      total_rec > 0.0 ? recs_[static_cast<std::size_t>(p)].value() / total_rec
                      : 0.0;
  return share_fraction(p) - rec_frac;
}

}  // namespace bce
