#pragma once

/// \file accounting.hpp
/// Resource-share accounting (§3.1). Two mechanisms, both maintained so any
/// scheduling/fetch policy can be paired with either:
///
///  * **Local accounting** — per (project, processor type) debts, in two
///    flavours as in the 2011 BOINC client:
///      - *short-term* debt: accrues only to projects that currently have
///        runnable jobs of the type; drives `PRIO_sched(P,T)`. A project
///        with nothing to run neither banks nor owes scheduling priority.
///      - *long-term* debt: accrues to every project *capable* of the type
///        (it has job classes of that type), whether or not work is queued
///        — an underserved project must eventually win the next fetch.
///        `PRIO_fetch(P)` is the peak-FLOPS-weighted sum of long-term debts.
///
///  * **Global accounting** — `REC(P)`: exponentially-decaying average of
///    the peak FLOPS used by P across *all* processor types, with half-life
///    A. Priority is how far P's recent usage falls short of its share:
///    `PRIO(P) = share_frac(P) − REC(P)/ΣREC` (see DESIGN.md §2 for why
///    this stands in for the paper's garbled formula).

#include <cstddef>
#include <vector>

#include "host/host_info.hpp"
#include "sim/proc_type.hpp"
#include "sim/decaying_average.hpp"
#include "sim/types.hpp"

namespace bce {

class StateReader;
class StateWriter;

class Accounting {
 public:
  /// \p capability[p][t]: whether project p has job classes of type t
  /// (long-term debt accrues by capability). If empty, every project is
  /// assumed capable of every type the host has.
  Accounting(const HostInfo& host, std::vector<double> share_fractions,
             double rec_half_life,
             std::vector<PerProc<bool>> capability = {});

  /// Charge resource usage for the elapsed interval ending at \p now.
  /// \p inst_seconds_used[p][t]: instance-seconds of type t project p's
  /// jobs consumed during the interval. \p runnable[p][t]: whether project
  /// p had runnable jobs of type t during the interval (short-term debt
  /// accrues only to such projects).
  void charge(SimTime now, Duration dt,
              const std::vector<PerProc<double>>& inst_seconds_used,
              const std::vector<PerProc<bool>>& runnable);

  // --- local accounting ------------------------------------------------
  [[nodiscard]] double debt(ProjectId p, ProcType t) const {
    return st_debts_[static_cast<std::size_t>(p)][t];
  }
  [[nodiscard]] double long_term_debt(ProjectId p, ProcType t) const {
    return lt_debts_[static_cast<std::size_t>(p)][t];
  }
  [[nodiscard]] double prio_sched_local(ProjectId p, ProcType t) const {
    return debt(p, t);
  }
  [[nodiscard]] double prio_fetch_local(ProjectId p) const;

  // --- global accounting -----------------------------------------------
  [[nodiscard]] double rec(ProjectId p) const {
    return recs_[static_cast<std::size_t>(p)].value();
  }
  /// share_frac(P) − rec_frac(P); positive = project is owed resources.
  [[nodiscard]] double prio_global(ProjectId p) const;

  [[nodiscard]] std::size_t num_projects() const { return shares_.size(); }
  [[nodiscard]] double share_fraction(ProjectId p) const {
    return shares_[static_cast<std::size_t>(p)];
  }

  /// Whether project \p p has job classes of type \p t (the eligibility
  /// rule for long-term debt; the invariant auditor re-derives debt sums
  /// from it).
  [[nodiscard]] bool capable(ProjectId p, ProcType t) const {
    return capability_[static_cast<std::size_t>(p)][t];
  }

  /// Debt magnitude cap for type \p t (zero when the host has no
  /// instances of it).
  [[nodiscard]] double debt_cap(ProcType t) const { return debt_cap_[t]; }

  /// Savestate support (docs/savestate.md): host, shares, capability and
  /// debt caps are reconstructed from the scenario; only the accrued
  /// debts and REC accumulators are serialized.
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  HostInfo host_;
  std::vector<double> shares_;  ///< fractional shares, sum to 1
  std::vector<PerProc<bool>> capability_;
  std::vector<PerProc<double>> st_debts_;  ///< short-term (scheduling)
  std::vector<PerProc<double>> lt_debts_;  ///< long-term (fetch)
  std::vector<DecayingAverage> recs_;
  /// Debt magnitude cap, per type: one day of that type's full capacity.
  /// Prevents unbounded growth when a project structurally cannot use its
  /// share (e.g. CPU-only project on a mostly-GPU host).
  PerProc<double> debt_cap_;
};

}  // namespace bce
