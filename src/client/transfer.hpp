#pragma once

/// \file transfer.hpp
/// Input-file transfer modelling (§6.2: "Jobs are assumed to be runnable
/// immediately after dispatch. For data-intensive applications ... this is
/// not a realistic assumption. It would be important to model an
/// additional scheduling policy: the order in which files are uploaded and
/// downloaded.")
///
/// The TransferManager simulates a host download link of fixed bandwidth.
/// Each arriving job with a non-zero input size enqueues a download; the
/// job becomes runnable when its download completes. Three ordering
/// policies (TransferOrder): fair-share (processor sharing of the link),
/// FIFO, and EDF by job deadline. Transfers pause while the network is
/// unavailable. Result uploads are assumed negligible, as in BOINC's
/// common case of small output files.
///
/// Fault injection (FaultPlan::transfer_error_rate): each download
/// *attempt* may error mid-flight at a uniformly random point in the bytes
/// it would have moved. A failed attempt backs off exponentially
/// (retry_min doubling up to retry_max) and then retries, resuming from
/// the bytes already fetched or restarting from zero depending on the
/// project (ProjectConfig::transfers_resumable). A transfer waiting out
/// its backoff consumes no link bandwidth. Failure points draw from the
/// manager's own RNG stream ("fault.transfer"); a zero error rate draws
/// nothing, preserving fault-free runs bit-for-bit.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "client/policy.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace bce {

class TransferManager {
 public:
  /// \p bandwidth_bps: download bandwidth in bytes/second; <= 0 means the
  /// link is not modeled and every add() completes instantly. The fault
  /// parameters default to "no faults"; \p rng is the "fault.transfer"
  /// stream and is only drawn from when \p error_rate > 0.
  TransferManager(double bandwidth_bps, TransferOrder order,
                  double error_rate = 0.0, double retry_min = 60.0,
                  double retry_max = 3600.0, Xoshiro256 rng = Xoshiro256(0))
      : bandwidth_(bandwidth_bps),
        order_(order),
        error_rate_(error_rate),
        retry_min_(retry_min),
        retry_max_(retry_max),
        rng_(rng) {}

  /// Enqueue a download of \p bytes for job \p id at time \p now.
  /// Returns true if the transfer completed immediately (no link model or
  /// zero bytes). \p resumable: whether an errored attempt keeps the bytes
  /// already fetched.
  bool add(JobId id, double bytes, SimTime deadline, SimTime now,
           bool resumable = true);

  /// Progress active transfers through [last update, now]. \p network_on
  /// must reflect the network state over that whole interval (the emulator
  /// guarantees availability is constant between events). Completed jobs
  /// are moved to the completed list; errored attempts are re-armed behind
  /// their retry backoff.
  void advance_to(SimTime now, bool network_on);

  /// Absolute time of the next transfer *event* if the network stays up:
  /// a completion, a mid-flight failure, or a retry-backoff expiry.
  /// kNever when nothing is pending or the network is down. May be
  /// conservative (early); the emulator re-queries after every event.
  [[nodiscard]] SimTime next_completion(bool network_on) const;

  /// Jobs whose downloads finished since the last call (in completion
  /// order). Clears the internal list.
  std::vector<JobId> take_completed();

  [[nodiscard]] std::size_t pending() const { return xfers_.size(); }
  [[nodiscard]] bool modeled() const { return bandwidth_ > 0.0; }
  [[nodiscard]] double bandwidth() const { return bandwidth_; }

  /// Total errored download attempts so far (feeds retries-per-job).
  [[nodiscard]] std::int64_t retries() const { return retries_; }

  /// Savestate support (docs/savestate.md): link parameters are
  /// reconstructed from the scenario; serialized state is the in-flight
  /// transfer set (including per-attempt fail points and retry backoffs),
  /// the undrained completion list, the RNG stream, and the counters.
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  struct Xfer {
    JobId id = kNoJob;
    double bytes_left = 0.0;
    double bytes_total = 0.0;
    SimTime deadline = 0.0;
    std::uint64_t seq = 0;  // arrival order
    /// Bytes this attempt moves before erroring; +inf = healthy attempt.
    double fail_after_bytes = 0.0;
    /// Absolute time the next attempt may start; 0 while active.
    SimTime retry_at = 0.0;
    Duration backoff_len = 0.0;
    bool resumable = true;
  };

  /// Draw the fail point for the upcoming attempt of \p x. No draw when
  /// the error rate is zero.
  void arm(Xfer& x);

  [[nodiscard]] bool active(const Xfer& x, SimTime t) const {
    return x.retry_at <= t + kFpEpsilon;
  }

  /// Index of the single transfer served under FIFO/EDF among those active
  /// at time \p t; xfers_.size() when none.
  [[nodiscard]] std::size_t active_index(SimTime t) const;

  double bandwidth_;
  TransferOrder order_;
  double error_rate_;
  Duration retry_min_;
  Duration retry_max_;
  Xoshiro256 rng_;
  std::vector<Xfer> xfers_;
  std::vector<JobId> completed_;
  SimTime last_update_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::int64_t retries_ = 0;
};

}  // namespace bce
