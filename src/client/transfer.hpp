#pragma once

/// \file transfer.hpp
/// Input-file transfer modelling (§6.2: "Jobs are assumed to be runnable
/// immediately after dispatch. For data-intensive applications ... this is
/// not a realistic assumption. It would be important to model an
/// additional scheduling policy: the order in which files are uploaded and
/// downloaded.")
///
/// The TransferManager simulates a host download link of fixed bandwidth.
/// Each arriving job with a non-zero input size enqueues a download; the
/// job becomes runnable when its download completes. Three ordering
/// policies (TransferOrder): fair-share (processor sharing of the link),
/// FIFO, and EDF by job deadline. Transfers pause while the network is
/// unavailable. Result uploads are assumed negligible, as in BOINC's
/// common case of small output files.

#include <vector>

#include "client/policy.hpp"
#include "sim/types.hpp"

namespace bce {

class TransferManager {
 public:
  /// \p bandwidth_bps: download bandwidth in bytes/second; <= 0 means the
  /// link is not modeled and every add() completes instantly.
  TransferManager(double bandwidth_bps, TransferOrder order)
      : bandwidth_(bandwidth_bps), order_(order) {}

  /// Enqueue a download of \p bytes for job \p id at time \p now.
  /// Returns true if the transfer completed immediately (no link model or
  /// zero bytes).
  bool add(JobId id, double bytes, SimTime deadline, SimTime now);

  /// Progress active transfers through [last update, now]. \p network_on
  /// must reflect the network state over that whole interval (the emulator
  /// guarantees availability is constant between events). Completed jobs
  /// are moved to the completed list.
  void advance_to(SimTime now, bool network_on);

  /// Absolute time the next transfer finishes if the network stays up;
  /// kNever when nothing is pending or the network is down.
  [[nodiscard]] SimTime next_completion(bool network_on) const;

  /// Jobs whose downloads finished since the last call (in completion
  /// order). Clears the internal list.
  std::vector<JobId> take_completed();

  [[nodiscard]] std::size_t pending() const { return xfers_.size(); }
  [[nodiscard]] bool modeled() const { return bandwidth_ > 0.0; }
  [[nodiscard]] double bandwidth() const { return bandwidth_; }

 private:
  struct Xfer {
    JobId id = kNoJob;
    double bytes_left = 0.0;
    SimTime deadline = 0.0;
    std::uint64_t seq = 0;  // arrival order
  };

  /// Index of the single active transfer under FIFO/EDF; npos-like value
  /// when none.
  [[nodiscard]] std::size_t active_index() const;

  double bandwidth_;
  TransferOrder order_;
  std::vector<Xfer> xfers_;
  std::vector<JobId> completed_;
  SimTime last_update_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace bce
