#include "client/policy_registry.hpp"

#include <stdexcept>
#include <utility>

namespace bce {

namespace {

/// Priority-charge quantum for local (debt) accounting, seconds. One
/// scheduling period's worth of anticipated debt per selected job.
constexpr double kDebtQuantum = 3600.0;

// ---- built-in job-order policies (§3.3, §6.2) ---------------------------

/// Shared base for the local-accounting family: per-(project,type) debt
/// supplies both scheduling and fetch priorities.
class LocalDebtOrder : public JobOrderPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "JS_LOCAL"; }

  [[nodiscard]] double priority(const JobOrderContext& ctx,
                                const Result& r) const override {
    const auto p = static_cast<std::size_t>(r.project);
    const ProcType t = r.usage.primary_type();
    return ctx.acct->prio_sched_local(r.project, t) + ctx.local_adj[p][t];
  }

  void charge(JobOrderContext& ctx, const Result& r) const override {
    const auto p = static_cast<std::size_t>(r.project);
    for (const auto t : kAllProcTypes) {
      const double u = r.usage.usage_of(t);
      if (u > 0.0) ctx.local_adj[p][t] -= u * kDebtQuantum;
    }
  }

  [[nodiscard]] double fetch_priority(const Accounting& acct,
                                      ProjectId p) const override {
    return acct.prio_fetch_local(p);
  }
};

/// JS_WRR: weighted round robin only; deadline flags are ignored.
class WrrOrder final : public LocalDebtOrder {
 public:
  [[nodiscard]] const char* name() const override { return "JS_WRR"; }
  [[nodiscard]] bool deadline_aware() const override { return false; }
};

/// JS_EDF (§6.2): every job sorts by deadline; shares play no role.
class EdfOnlyOrder final : public LocalDebtOrder {
 public:
  [[nodiscard]] const char* name() const override { return "JS_EDF"; }
  [[nodiscard]] bool deadline_order_for_all() const override { return true; }
};

/// JS_GLOBAL (a.k.a. JS-REC): deadline-aware, global REC accounting.
class GlobalRecOrder final : public JobOrderPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "JS_GLOBAL"; }

  [[nodiscard]] double priority(const JobOrderContext& ctx,
                                const Result& r) const override {
    const auto p = static_cast<std::size_t>(r.project);
    return ctx.acct->prio_global(r.project) + ctx.global_adj[p];
  }

  void charge(JobOrderContext& ctx, const Result& r) const override {
    const double total_flops = ctx.host->total_peak_flops();
    if (total_flops > 0.0) {
      ctx.global_adj[static_cast<std::size_t>(r.project)] -=
          r.usage.flops_rate(*ctx.host) / total_flops;
    }
  }

  [[nodiscard]] double fetch_priority(const Accounting& acct,
                                      ProjectId p) const override {
    return acct.prio_global(p);
  }
};

// ---- built-in work-fetch policies (§3.4, §6.2) --------------------------

/// JF_ORIG: fetch whenever SHORTFALL_min(T) > 0, share-scaled top-ups from
/// the highest-PRIO_fetch project.
class OrigFetch final : public WorkFetchPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "JF_ORIG"; }

  [[nodiscard]] bool triggered(const FetchContext& ctx,
                               ProcType t) const override {
    return ctx.rr->shortfall_min[t] > 1.0;
  }

  [[nodiscard]] double project_score(
      const FetchContext& ctx, ProjectId p,
      const ProjectFetchState& /*st*/) const override {
    return ctx.order->fetch_priority(*ctx.acct, p);
  }

  [[nodiscard]] double request_seconds(const FetchContext& ctx, ProcType t,
                                       double share_x) const override {
    return share_x * ctx.rr->shortfall_min[t];
  }
};

/// JF_HYSTERESIS: fetch when SAT(T) < min_queue; ask the single best
/// project for the entire fill-to-max shortfall.
class HysteresisFetch : public WorkFetchPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "JF_HYSTERESIS"; }

  [[nodiscard]] bool triggered(const FetchContext& ctx,
                               ProcType t) const override {
    return ctx.rr->saturated[t] < ctx.prefs->min_queue;
  }

  [[nodiscard]] double project_score(
      const FetchContext& ctx, ProjectId p,
      const ProjectFetchState& /*st*/) const override {
    return ctx.order->fetch_priority(*ctx.acct, p);
  }

  [[nodiscard]] double request_seconds(const FetchContext& ctx, ProcType t,
                                       double /*share_x*/) const override {
    return ctx.rr->shortfall[t];
  }
};

/// JF_RR (§6.2): hysteresis trigger, least-recently-asked project.
class RoundRobinFetch final : public HysteresisFetch {
 public:
  [[nodiscard]] const char* name() const override { return "JF_RR"; }

  [[nodiscard]] double project_score(
      const FetchContext& /*ctx*/, ProjectId /*p*/,
      const ProjectFetchState& st) const override {
    return -st.last_work_rpc;
  }
};

}  // namespace

void PolicyRegistry::register_job_order(std::string name,
                                        std::string description,
                                        JobOrderFactory factory,
                                        std::vector<std::string> aliases) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& rec : job_orders_) {
    if (rec.info.name == name) {
      rec.info.description = std::move(description);
      rec.info.aliases = std::move(aliases);
      rec.factory = std::move(factory);
      return;
    }
  }
  job_orders_.push_back({{std::move(name), std::move(description),
                          std::move(aliases)},
                         std::move(factory)});
}

void PolicyRegistry::register_fetch(std::string name, std::string description,
                                    FetchFactory factory,
                                    std::vector<std::string> aliases) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& rec : fetches_) {
    if (rec.info.name == name) {
      rec.info.description = std::move(description);
      rec.info.aliases = std::move(aliases);
      rec.factory = std::move(factory);
      return;
    }
  }
  fetches_.push_back({{std::move(name), std::move(description),
                       std::move(aliases)},
                      std::move(factory)});
}

const PolicyRegistry::JobOrderRecord* PolicyRegistry::find_job_order(
    const std::string& name) const {
  for (const auto& rec : job_orders_) {
    if (rec.info.name == name) return &rec;
    for (const auto& a : rec.info.aliases) {
      if (a == name) return &rec;
    }
  }
  return nullptr;
}

const PolicyRegistry::FetchRecord* PolicyRegistry::find_fetch(
    const std::string& name) const {
  for (const auto& rec : fetches_) {
    if (rec.info.name == name) return &rec;
    for (const auto& a : rec.info.aliases) {
      if (a == name) return &rec;
    }
  }
  return nullptr;
}

namespace {
[[noreturn]] void throw_unknown(const char* kind, const std::string& name,
                                const std::vector<std::string>& known) {
  std::string msg = std::string("unknown ") + kind + " policy '" + name +
                    "'; known policies:";
  for (const auto& k : known) msg += " " + k;
  throw std::invalid_argument(msg);
}
}  // namespace

std::shared_ptr<const JobOrderPolicy> PolicyRegistry::make_job_order(
    const std::string& name, const PolicyConfig& cfg) const {
  const std::lock_guard<std::mutex> lock(mu_);
  if (const auto* rec = find_job_order(name)) return rec->factory(cfg);
  std::vector<std::string> known;
  for (const auto& rec : job_orders_) known.push_back(rec.info.name);
  throw_unknown("job-order", name, known);
}

std::shared_ptr<const WorkFetchPolicy> PolicyRegistry::make_fetch(
    const std::string& name, const PolicyConfig& cfg) const {
  const std::lock_guard<std::mutex> lock(mu_);
  if (const auto* rec = find_fetch(name)) return rec->factory(cfg);
  std::vector<std::string> known;
  for (const auto& rec : fetches_) known.push_back(rec.info.name);
  throw_unknown("work-fetch", name, known);
}

bool PolicyRegistry::has_job_order(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return find_job_order(name) != nullptr;
}

bool PolicyRegistry::has_fetch(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return find_fetch(name) != nullptr;
}

std::vector<PolicyRegistryEntry> PolicyRegistry::job_order_entries() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<PolicyRegistryEntry> out;
  out.reserve(job_orders_.size());
  for (const auto& rec : job_orders_) out.push_back(rec.info);
  return out;
}

std::vector<PolicyRegistryEntry> PolicyRegistry::fetch_entries() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<PolicyRegistryEntry> out;
  out.reserve(fetches_.size());
  for (const auto& rec : fetches_) out.push_back(rec.info);
  return out;
}

PolicyRegistry& policy_registry() {
  static PolicyRegistry* reg = [] {
    auto* r = new PolicyRegistry;
    // Strategies are stateless: construct each once and share.
    r->register_job_order(
        "JS_WRR", "weighted round robin only; deadlines ignored",
        [p = std::make_shared<const WrrOrder>()](const PolicyConfig&) {
          return p;
        },
        {"wrr"});
    r->register_job_order(
        "JS_LOCAL", "deadline-aware, local per-(project,type) debt",
        [p = std::make_shared<const LocalDebtOrder>()](const PolicyConfig&) {
          return p;
        },
        {"local"});
    r->register_job_order(
        "JS_GLOBAL", "deadline-aware, global REC accounting",
        [p = std::make_shared<const GlobalRecOrder>()](const PolicyConfig&) {
          return p;
        },
        {"global", "JS_REC"});
    r->register_job_order(
        "JS_EDF", "pure earliest-deadline-first; shares ignored",
        [p = std::make_shared<const EdfOnlyOrder>()](const PolicyConfig&) {
          return p;
        },
        {"edf"});
    r->register_fetch(
        "JF_ORIG", "fetch whenever SHORTFALL(T) > 0, share-scaled",
        [p = std::make_shared<const OrigFetch>()](const PolicyConfig&) {
          return p;
        },
        {"orig"});
    r->register_fetch(
        "JF_HYSTERESIS", "fetch when SAT(T) < min_queue, full shortfall",
        [p = std::make_shared<const HysteresisFetch>()](const PolicyConfig&) {
          return p;
        },
        {"hyst"});
    r->register_fetch(
        "JF_RR", "hysteresis trigger, least-recently-asked project",
        [p = std::make_shared<const RoundRobinFetch>()](const PolicyConfig&) {
          return p;
        },
        {"rr"});
    return r;
  }();
  return *reg;
}

const char* job_sched_policy_name(JobSchedPolicy p) {
  switch (p) {
    case JobSchedPolicy::kWrr: return "JS_WRR";
    case JobSchedPolicy::kLocal: return "JS_LOCAL";
    case JobSchedPolicy::kGlobal: return "JS_GLOBAL";
    case JobSchedPolicy::kEdfOnly: return "JS_EDF";
  }
  return "?";
}

const char* fetch_policy_name(FetchPolicy p) {
  switch (p) {
    case FetchPolicy::kOrig: return "JF_ORIG";
    case FetchPolicy::kHysteresis: return "JF_HYSTERESIS";
    case FetchPolicy::kRoundRobin: return "JF_RR";
  }
  return "?";
}

std::shared_ptr<const JobOrderPolicy> make_job_order_policy(
    const PolicyConfig& cfg) {
  const std::string name = cfg.sched_by_name.empty()
                               ? job_sched_policy_name(cfg.sched)
                               : cfg.sched_by_name;
  return policy_registry().make_job_order(name, cfg);
}

std::shared_ptr<const WorkFetchPolicy> make_fetch_policy(
    const PolicyConfig& cfg) {
  const std::string name = cfg.fetch_by_name.empty()
                               ? fetch_policy_name(cfg.fetch)
                               : cfg.fetch_by_name;
  return policy_registry().make_fetch(name, cfg);
}

}  // namespace bce
