#pragma once

/// \file client_runtime.hpp
/// The client scheduling stack, bundled: accounting, RR-sim, the job
/// scheduler, work fetch, transfers, and the duration-correction factors.
/// This is the part of the emulator that "runs exactly as the client would
/// run it" (§4.3); the Emulator that owns a ClientRuntime is reduced to a
/// pure event engine (clock, event queue, availability, project servers,
/// metrics) that notifies the runtime of state changes and applies its
/// decisions.
///
/// ## State versioning and RR-sim caching
///
/// The runtime keeps a monotonic `state_version()` counter and bumps it
/// whenever an input of RR-sim changes: a job arrives, completes, or makes
/// progress; a download finishes (runnable_at changes); availability
/// transitions. RrSim::run_cached is keyed on (state_version, now), so the
/// work-fetch pass that immediately follows a reschedule at the same
/// instant reuses the reschedule's RR-sim output instead of re-simulating.
///
/// Deliberately *not* bumped: preemptions and starts applied while acting
/// on a scheduling decision (including checkpoint rollbacks, which do
/// change flops_done). The fetch pass must see the queue exactly as the
/// reschedule's RR-sim saw it — the real client reuses the reschedule's
/// simulation results for work fetch — so mutations made *by* the
/// scheduling pass must not invalidate the cache mid-step. Bumping there
/// would make fetch re-simulate against rolled-back progress and change
/// fetch decisions (see docs/policies.md).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "client/accounting.hpp"
#include "client/job_scheduler.hpp"
#include "client/policy.hpp"
#include "client/rr_sim.hpp"
#include "client/scheduling_policy.hpp"
#include "client/transfer.hpp"
#include "client/work_fetch.hpp"
#include "model/scenario.hpp"
#include "server/request.hpp"
#include "sim/audit.hpp"
#include "sim/trace.hpp"

namespace bce {

class ClientRuntime {
 public:
  /// \p trace may be nullptr (silent). \p scenario must outlive the
  /// runtime and already be validated.
  ClientRuntime(const Scenario& scenario, const PolicyConfig& policy,
                Trace* trace);

  // ---- scheduling passes ----------------------------------------------

  /// Run (or reuse) RR-sim over \p active at \p now; records each job's
  /// first projected finish. The returned reference is valid until the
  /// next rr_pass with a different (state_version, now).
  const RrSimOutput& rr_pass(SimTime now, const std::vector<Result*>& active);

  /// Full scheduling pass: RR-sim (cached) then the job-scheduler run
  /// list. The caller applies the outcome (preempt/start) and must NOT
  /// bump the state version while doing so. The returned reference points
  /// at a reusable member (no per-pass allocation in steady state) and is
  /// valid until the next schedule_jobs call.
  const ScheduleOutcome& schedule_jobs(SimTime now,
                                       const std::vector<Result*>& active,
                                       bool cpu_allowed, bool gpu_allowed);

  /// Work-fetch decision: reuses the latest RR-sim output (a cache hit
  /// when nothing changed since the reschedule at the same instant),
  /// derives the per-(project,type) endangered matrix from \p active, and
  /// stamps the learned duration correction onto the request.
  WorkFetch::Decision choose_fetch(SimTime now,
                                   const std::vector<Result*>& active);

  // ---- state-change notifications (each bumps state_version) ----------

  /// A job just arrived from a scheduler RPC: stamp its estimate
  /// correction with the project's learned DCF.
  void on_job_arrival(Result& r);

  /// A running job just completed: fold its actual/estimated runtime ratio
  /// into the project's DCF (jump up on underestimates, decay down, as in
  /// BOINC).
  void on_job_completed(const Result& r);

  /// A job terminated abnormally (compute error or abort, FaultPlan
  /// channel 1): it leaves the queue, so RR-sim inputs changed. The DCF
  /// learns nothing from a failed job (its runtime is censored).
  void on_job_failed(const Result& r);

  /// Running jobs progressed (flops_done advanced) over an interval.
  void on_progress();

  /// A job's runnable_at changed (input files finished downloading).
  void on_jobs_runnable();

  /// Host/GPU/network availability transitioned.
  void on_availability_change();

  // ---- RPC bookkeeping -------------------------------------------------

  void on_rpc_sent(SimTime now, ProjectId p, bool work_request);
  void on_rpc_reply(SimTime now, const WorkRequest& req,
                    const RpcReply& reply, ProjectId p);
  /// The reply to an RPC was lost in flight (FaultPlan channel 3): grow
  /// the retry backoff and return the earliest retry time so the emulator
  /// can schedule a deferral event.
  SimTime on_rpc_lost(SimTime now, ProjectId p);
  [[nodiscard]] SimTime next_allowed_rpc(ProjectId p) const;

  // ---- accounting ------------------------------------------------------

  /// Charge usage over an interval (Accounting::charge pass-through).
  void charge(SimTime t, Duration dt,
              const std::vector<PerProc<double>>& used_inst_secs,
              const std::vector<PerProc<bool>>& runnable);

  // ---- accessors -------------------------------------------------------

  [[nodiscard]] const Accounting& accounting() const { return acct_; }
  [[nodiscard]] TransferManager& transfers() { return transfers_; }
  [[nodiscard]] const TransferManager& transfers() const { return transfers_; }
  [[nodiscard]] double dcf(ProjectId p) const {
    return dcf_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] const std::vector<double>& share_fractions() const {
    return share_frac_;
  }
  [[nodiscard]] std::uint64_t state_version() const { return state_version_; }
  [[nodiscard]] const RrSim::CacheStats& rr_cache_stats() const {
    return rrsim_.cache_stats();
  }
  [[nodiscard]] const RrSimOutput& last_rr() const { return *last_rr_; }
  [[nodiscard]] const JobOrderPolicy& job_order_policy() const {
    return sched_.order_policy();
  }
  [[nodiscard]] const WorkFetchPolicy& fetch_policy() const {
    return fetch_.fetch_policy();
  }
  [[nodiscard]] const ProjectFetchState& fetch_state(ProjectId p) const {
    return fetch_states_[static_cast<std::size_t>(p)];
  }

  /// Install a debug auditor (non-owning, may be nullptr) and thread it
  /// through the scheduling stack: RR-sim (state-version monotonicity and
  /// output post-conditions), work fetch (request sanity), and accounting
  /// (debt sums center on zero, REC >= 0 — checked after every charge).
  void set_auditor(InvariantAuditor* auditor) {
    auditor_ = auditor;
    rrsim_.set_auditor(auditor);
    fetch_.set_auditor(auditor);
  }

  /// Savestate support (docs/savestate.md). Serialized: the learned DCFs,
  /// accounting accumulators, RR-sim counters, per-project fetch states,
  /// in-flight transfers, and state_version. Policy objects and scratch
  /// are reconstructed; restore also drops last_rr() and the RR-sim memo,
  /// so the first pass after a restore re-simulates from restored state.
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  void bump() { ++state_version_; }

  const Scenario* sc_;
  PolicyConfig policy_;
  Trace null_trace_;
  Trace* trace_;

  std::vector<double> share_frac_;
  std::vector<double> dcf_;
  std::vector<const ProjectConfig*> project_cfgs_;
  Accounting acct_;
  RrSim rrsim_;
  JobScheduler sched_;
  WorkFetch fetch_;
  std::vector<ProjectFetchState> fetch_states_;
  TransferManager transfers_;

  std::uint64_t state_version_ = 0;
  const RrSimOutput* last_rr_ = nullptr;
  InvariantAuditor* auditor_ = nullptr;

  // Scratch for choose_fetch (avoids per-pass allocation).
  std::vector<PerProc<bool>> endangered_;

  // Reusable outcome for schedule_jobs (avoids per-pass allocation).
  ScheduleOutcome sched_out_;
};

}  // namespace bce
