#pragma once

/// \file job_scheduler.hpp
/// Client job scheduling (§3.3). Given the runnable jobs (with
/// deadline-endangered flags freshly computed by RR-sim), decide which to
/// run:
///
///  1. Build an ordered job list. Precedence tiers:
///       (0) running jobs that have not checkpointed since they started
///           (preempting them loses the episode's work),
///       (1) deadline-endangered GPU jobs (EDF or least-laxity order),
///       (2) other GPU jobs, by PRIO_sched,
///       (3) deadline-endangered CPU jobs,
///       (4) other CPU jobs, by PRIO_sched.
///     Under JS-WRR the endangered tiers collapse into the PRIO tiers
///     (deadlines are not used).
///  2. Within PRIO tiers, jobs are picked one at a time and the picking
///     project's priority is charged for the expected usage, so one pass
///     interleaves projects rather than emitting all of the top project's
///     jobs first (this is BOINC's "anticipated debt" / project-priority
///     adjustment).
///  3. Scan the list, allocating CPUs (fluid pool), GPU instances
///     (per-instance first-fit for fractional usage), and RAM; skip jobs
///     that don't fit ("jobs are skipped if total memory usage would exceed
///     the limit, or if GPUs cannot be allocated").
///
/// GPU jobs may overcommit the CPU pool by up to one CPU, mirroring the
/// BOINC client: a GPU must never sit idle because its feeder thread can't
/// get a CPU sliver.

#include <array>
#include <cstddef>
#include <memory>
#include <vector>

#include "client/accounting.hpp"
#include "client/policy.hpp"
#include "client/scheduling_policy.hpp"
#include "host/host_info.hpp"
#include "host/preferences.hpp"
#include "model/job.hpp"
#include "sim/trace.hpp"

namespace bce {

struct ScheduleOutcome {
  /// Jobs to run, in list order. Everything else should be preempted.
  std::vector<Result*> to_run;

  /// Ordered job list before the allocation scan (diagnostics/tests).
  std::vector<Result*> ordered;
};

/// The scheduling *mechanism*: tier construction, priority-charged picking,
/// and the allocation scan. The policy-variant behavior (deadline
/// awareness, priority source, anticipated-debt charging) lives in the
/// JobOrderPolicy strategy, resolved from \p policy through
/// bce::policy_registry().
class JobScheduler {
 public:
  JobScheduler(const HostInfo& host, const Preferences& prefs,
               const PolicyConfig& policy);

  /// \p jobs: all incomplete jobs. \p cpu_allowed / \p gpu_allowed reflect
  /// host availability; when false, jobs of that kind are not scheduled.
  ScheduleOutcome schedule(SimTime now, const std::vector<Result*>& jobs,
                           const Accounting& acct, bool cpu_allowed,
                           bool gpu_allowed, Trace& trace) const;

  /// Allocation-free variant: clears \p out (keeping its vectors' capacity)
  /// and fills it. The by-value overload is a thin wrapper. Callers on the
  /// hot path (ClientRuntime) reuse one ScheduleOutcome across passes.
  void schedule(SimTime now, const std::vector<Result*>& jobs,
                const Accounting& acct, bool cpu_allowed, bool gpu_allowed,
                Trace& trace, ScheduleOutcome& out) const;

  /// The active job-order strategy (shared with WorkFetch's selection).
  [[nodiscard]] const JobOrderPolicy& order_policy() const { return *order_; }

 private:
  HostInfo host_;
  Preferences prefs_;
  PolicyConfig policy_;
  std::shared_ptr<const JobOrderPolicy> order_;

  // Reusable scratch, hoisted out of schedule() so steady-state passes
  // allocate nothing. Mutable because schedule() is logically const; a
  // JobScheduler must not be shared across threads (each ClientRuntime
  // owns its own).
  mutable JobOrderContext ctx_;
  mutable std::array<std::vector<Result*>, 5> buckets_;
  mutable std::vector<Result*> pick_pool_;
  mutable PerProc<std::vector<double>> gpu_free_;
  mutable std::vector<std::size_t> gpu_taken_;
};

}  // namespace bce
