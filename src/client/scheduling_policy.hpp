#pragma once

/// \file scheduling_policy.hpp
/// Strategy interfaces for the client's pluggable scheduling policies.
///
/// The paper compares policy *variants* (JS_WRR / JS_LOCAL / JS_GLOBAL,
/// JF_ORIG / JF_HYSTERESIS, plus the §6.2 alternatives) inside one faithful
/// client; its §6.2 explicitly calls for studying new ones. To keep the
/// engine closed to modification but open to new policies, each variant is
/// an object implementing one of the two interfaces below, constructed by
/// name through bce::policy_registry():
///
///  * JobOrderPolicy — how the job scheduler ranks runnable jobs: whether
///    deadline-endangered jobs are promoted, which accounting flavour
///    (local debt vs global REC) supplies project priorities, and how a
///    pass charges "anticipated debt" as it picks jobs. Also supplies the
///    project priority work fetch uses when it selects by priority.
///
///  * WorkFetchPolicy — when a processor type triggers a work fetch, how
///    the project to ask is scored, and how many instance-seconds are
///    requested.
///
/// The mechanism (tier construction, the allocation scan, RPC bookkeeping,
/// backoff) stays in JobScheduler / WorkFetch; strategies are stateless and
/// shared, so they must be thread-compatible (const methods only).

#include "client/accounting.hpp"
#include "client/policy.hpp"
#include "client/rr_sim.hpp"
#include "host/host_info.hpp"
#include "host/preferences.hpp"
#include "model/job.hpp"

#include <vector>

namespace bce {

/// Scratch for one job-ordering pass: the "anticipated debt" adjustments
/// accumulated as jobs are picked, so a single pass interleaves projects
/// instead of emitting all of the top project's jobs first.
struct JobOrderContext {
  const HostInfo* host = nullptr;
  const Accounting* acct = nullptr;
  std::vector<double> global_adj;          ///< per project (REC flavour)
  std::vector<PerProc<double>> local_adj;  ///< per project/type (debt flavour)
};

class JobOrderPolicy {
 public:
  virtual ~JobOrderPolicy() = default;

  /// Canonical registry name, e.g. "JS_GLOBAL".
  [[nodiscard]] virtual const char* name() const = 0;

  /// Are deadline-endangered jobs promoted into the EDF-ordered tiers?
  /// (JS_WRR returns false: deadlines are ignored entirely.)
  [[nodiscard]] virtual bool deadline_aware() const { return true; }

  /// Does *every* job sort by deadline (pure EDF), with share priorities
  /// playing no role in the ordering?
  [[nodiscard]] virtual bool deadline_order_for_all() const { return false; }

  /// Priority of picking job \p r next (higher = earlier in the run list),
  /// with the pass's anticipated-debt adjustments applied.
  [[nodiscard]] virtual double priority(const JobOrderContext& ctx,
                                        const Result& r) const = 0;

  /// Charge \p r's project for being picked (anticipated debt), mutating
  /// the pass-local adjustments in \p ctx.
  virtual void charge(JobOrderContext& ctx, const Result& r) const = 0;

  /// Project priority used by work fetch when paired with a
  /// priority-selecting WorkFetchPolicy (PRIO_fetch in the paper).
  [[nodiscard]] virtual double fetch_priority(const Accounting& acct,
                                              ProjectId p) const = 0;
};

/// Client-side fetch bookkeeping for one attached project.
struct ProjectFetchState {
  /// Earliest time another scheduler RPC to this project is allowed
  /// (min_rpc_interval spacing + project-level backoff after "down").
  SimTime next_allowed_rpc = 0.0;
  Duration project_backoff_len = 0.0;

  /// Last time a *work-request* RPC went to this project; drives the
  /// JF_RR (least-recently-asked) selection. Negative = never.
  SimTime last_work_rpc = -1.0;

  /// Per-type backoff after "no jobs of this type" replies.
  PerProc<SimTime> type_backoff_until{};
  PerProc<Duration> type_backoff_len{};

  /// Retry backoff after a scheduler reply was lost in flight
  /// (FaultPlan::rpc_loss). Distinct from project_backoff_len: a lost
  /// reply signals a flaky network, not a down server, so it starts
  /// shorter (WorkFetch::kRetryBackoffMin) and resets on any reply that
  /// does arrive.
  Duration rpc_retry_backoff_len = 0.0;
};

/// Immutable per-decision inputs handed to WorkFetchPolicy hooks.
struct FetchContext {
  SimTime now = 0.0;
  const RrSimOutput* rr = nullptr;
  const Preferences* prefs = nullptr;
  const Accounting* acct = nullptr;
  /// The active job-order policy; supplies share-accounting priorities for
  /// fetch policies that select by PRIO_fetch.
  const JobOrderPolicy* order = nullptr;
};

class WorkFetchPolicy {
 public:
  virtual ~WorkFetchPolicy() = default;

  /// Canonical registry name, e.g. "JF_HYSTERESIS".
  [[nodiscard]] virtual const char* name() const = 0;

  /// Should processor type \p t trigger a work fetch at all?
  [[nodiscard]] virtual bool triggered(const FetchContext& ctx,
                                       ProcType t) const = 0;

  /// Score for selecting among candidate projects (higher wins; the
  /// earliest-indexed project wins exact ties, as the mechanism scans in
  /// project-id order with a strict comparison).
  [[nodiscard]] virtual double project_score(
      const FetchContext& ctx, ProjectId p,
      const ProjectFetchState& st) const = 0;

  /// Instance-seconds of type \p t to request from the chosen project.
  /// \p share_x is the chosen project's fractional share among projects
  /// capable of \p t (JF_ORIG scales its request by it).
  [[nodiscard]] virtual double request_seconds(const FetchContext& ctx,
                                               ProcType t,
                                               double share_x) const = 0;
};

}  // namespace bce
