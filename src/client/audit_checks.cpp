// InvariantAuditor checks whose subjects live in the client layer
// (Accounting debts/REC, RR-sim outputs, work-fetch requests). The
// auditor's interface sits at the bottom of the layer DAG (sim/audit.hpp,
// forward declarations only) so the event kernel can hold a pointer to
// it; each check's definition lives beside the types it inspects, which
// keeps the include graph pointing strictly downwards.

#include <cmath>

#include "client/accounting.hpp"
#include "client/rr_sim.hpp"
#include "host/host_info.hpp"
#include "host/preferences.hpp"
#include "server/request.hpp"
#include "sim/audit.hpp"

namespace bce {

using detail::audit_format;

void InvariantAuditor::check_debt_sums(
    const Accounting& acct, const std::vector<PerProc<bool>>& runnable) {
  const std::size_t n = acct.num_projects();

  // One flavour at a time: short-term gated by "runnable now", long-term
  // by capability. Immediately after Accounting::charge each flavour's
  // debts are mean-centered over its eligible set, so the eligible sum is
  // zero up to FP noise — unless a debt sits at the cap, where clamping
  // deliberately breaks exactness (skip the type then, as BOINC accepts).
  const auto check_flavour = [&](const char* label, auto&& debt_of,
                                 auto&& eligible) {
    for (const auto t : kAllProcTypes) {
      const double cap = acct.debt_cap(t);
      if (cap <= 0.0) continue;  // host has no instances of this type
      double sum = 0.0;
      std::size_t n_eligible = 0;
      bool clamped = false;
      for (std::size_t p = 0; p < n; ++p) {
        const auto pid = static_cast<ProjectId>(p);
        if (!eligible(p, t)) continue;
        const double d = debt_of(pid, t);
        if (std::fabs(d) >= cap * (1.0 - 1e-9)) clamped = true;
        sum += d;
        ++n_eligible;
      }
      if (n_eligible == 0 || clamped) continue;
      const double tol = 1e-6 * cap + 1e-9;
      if (std::fabs(sum) > tol) {
        fail(audit_format("%s debts for %s sum to %g across %zu eligible "
                          "projects (|sum| > %g; debts must center on zero)",
                          label, proc_name(t), sum, n_eligible, tol));
      }
    }
  };

  check_flavour(
      "short-term",
      [&](ProjectId p, ProcType t) { return acct.debt(p, t); },
      [&](std::size_t p, ProcType t) { return runnable[p][t]; });
  check_flavour(
      "long-term",
      [&](ProjectId p, ProcType t) { return acct.long_term_debt(p, t); },
      [&](std::size_t p, ProcType t) {
        return acct.capable(static_cast<ProjectId>(p), t);
      });
  ++checks_run_;
}

void InvariantAuditor::check_rec_nonneg(const Accounting& acct) {
  for (std::size_t p = 0; p < acct.num_projects(); ++p) {
    const double rec = acct.rec(static_cast<ProjectId>(p));
    if (!(rec >= 0.0)) {  // also catches NaN
      fail(audit_format("REC(%zu) = %g; recent-estimated-credit is a decaying "
                        "average of non-negative FLOPs and cannot go negative",
                        p, rec));
    }
  }
  ++checks_run_;
}

void InvariantAuditor::check_rr_output(const RrSimOutput& rr,
                                       const HostInfo& host,
                                       const Preferences& prefs, SimTime now) {
  if (rr.span < 0.0) fail(audit_format("RR-sim span = %g < 0", rr.span));
  for (const auto t : kAllProcTypes) {
    const double cap = host.count[t];
    if (cap <= 0.0) continue;
    const char* tn = proc_name(t);
    if (rr.shortfall[t] < -kFpEpsilon) {
      fail(audit_format("SHORTFALL(%s) = %g < 0", tn, rr.shortfall[t]));
    }
    if (rr.shortfall_min[t] < -kFpEpsilon) {
      fail(audit_format("SHORTFALL_min(%s) = %g < 0", tn, rr.shortfall_min[t]));
    }
    if (rr.saturated[t] < -kFpEpsilon ||
        rr.saturated[t] > rr.span + kFpEpsilon) {
      fail(audit_format("SAT(%s) = %g outside [0, span=%g]", tn,
                        rr.saturated[t], rr.span));
    }
    if (rr.idle_instances_now[t] < -kFpEpsilon ||
        rr.idle_instances_now[t] > cap + kFpEpsilon) {
      fail(audit_format("idle instances now (%s) = %g outside [0, %g]", tn,
                        rr.idle_instances_now[t], cap));
    }
    // Capacity conservation over the work-buffer window [now, now +
    // max_queue]: every instance-second is either busy or counted in the
    // shortfall, so the two integrals sum to the window's capacity.
    const double window_cap = cap * prefs.max_queue;
    const double got = rr.busy_inst_seconds[t] + rr.shortfall[t];
    const double tol = 1e-6 * window_cap + 1e-6;
    if (std::fabs(got - window_cap) > tol) {
      fail(audit_format("busy+idle of %s = %g over [%g, %g+max_queue] but "
                        "window capacity is %g; instance-seconds must conserve",
                        tn, got, now, now, window_cap));
    }
  }
  ++checks_run_;
}

void InvariantAuditor::check_fetch_decision(const WorkRequest& req,
                                            const HostInfo& host) {
  for (const auto t : kAllProcTypes) {
    const char* tn = proc_name(t);
    if (req.req_seconds[t] < 0.0 || req.req_instances[t] < 0.0 ||
        req.est_delay[t] < 0.0) {
      fail(audit_format("work request for %s is negative (seconds=%g, "
                        "instances=%g, est_delay=%g)",
                        tn, req.req_seconds[t], req.req_instances[t],
                        req.est_delay[t]));
    }
    if (host.count[t] == 0 &&
        (req.req_seconds[t] > 0.0 || req.req_instances[t] > 0.0)) {
      fail(audit_format("work request asks for %s but the host has no %s "
                        "instances",
                        tn, tn));
    }
  }
  if (!(req.duration_correction > 0.0)) {  // also catches NaN
    fail(audit_format("duration correction factor = %g; must be positive",
                      req.duration_correction));
  }
  ++checks_run_;
}

}  // namespace bce
