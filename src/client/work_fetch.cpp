#include "client/work_fetch.hpp"

#include <algorithm>
#include <cmath>

#include "client/policy_registry.hpp"

namespace bce {

WorkFetch::WorkFetch(const HostInfo& host, const Preferences& prefs,
                     const PolicyConfig& policy)
    : host_(host),
      prefs_(prefs),
      policy_(policy),
      order_(make_job_order_policy(policy)),
      fetch_(make_fetch_policy(policy)) {}

WorkFetch::Decision WorkFetch::choose(
    SimTime now, const RrSimOutput& rr, const Accounting& acct,
    const std::vector<const ProjectConfig*>& projects,
    const std::vector<ProjectFetchState>& states,
    const std::vector<PerProc<bool>>& endangered, Trace& trace) const {
  Decision d;

  FetchContext ctx;
  ctx.now = now;
  ctx.rr = &rr;
  ctx.prefs = &prefs_;
  ctx.acct = &acct;
  ctx.order = order_.get();

  // GPU types first: an idle GPU wastes far more capacity than an idle CPU.
  constexpr std::array<ProcType, kNumProcTypes> order = {
      ProcType::kNvidia, ProcType::kAti, ProcType::kCpu};

  for (const auto t : order) {
    if (host_.count[t] == 0) continue;
    if (!fetch_->triggered(ctx, t)) continue;

    // Candidate projects: capable of type t, not backed off, RPC spacing
    // ok. Selection: highest policy score (PRIO_fetch for the priority-
    // selecting policies, least-recently-asked for JF_RR).
    ProjectId best = kNoProject;
    double best_prio = -1e300;
    for (std::size_t p = 0; p < projects.size(); ++p) {
      if (!projects[p]->has_jobs_for(t)) continue;
      if (projects[p]->suspended) continue;
      if (projects[p]->no_gpu && is_gpu(t)) continue;
      const auto& st = states[p];
      if (now < st.next_allowed_rpc) continue;
      if (now < st.type_backoff_until[t]) continue;
      if (policy_.fetch_deadline_suppression && endangered[p][t]) {
        continue;  // already overcommitted on this type
      }
      const double prio =
          fetch_->project_score(ctx, static_cast<ProjectId>(p), st);
      if (best == kNoProject || prio > best_prio) {
        best = static_cast<ProjectId>(p);
        best_prio = prio;
      }
    }
    if (best == kNoProject) continue;

    // Share of the chosen project among projects *capable* of type t
    // (static capability, as in the paper's description of JF_ORIG).
    double cap_share = 0.0;
    for (std::size_t p = 0; p < projects.size(); ++p) {
      if (projects[p]->has_jobs_for(t)) {
        cap_share += acct.share_fraction(static_cast<ProjectId>(p));
      }
    }
    const double x =
        cap_share > 0.0 ? acct.share_fraction(best) / cap_share : 1.0;

    d.project = best;
    // Fill the request for every type this project can serve whose own
    // trigger condition holds (one RPC can request several types).
    for (const auto u : order) {
      if (host_.count[u] == 0) continue;
      if (!projects[static_cast<std::size_t>(best)]->has_jobs_for(u)) continue;
      if (projects[static_cast<std::size_t>(best)]->no_gpu && is_gpu(u)) {
        continue;
      }
      if (now < states[static_cast<std::size_t>(best)].type_backoff_until[u])
        continue;
      if (policy_.fetch_deadline_suppression &&
          endangered[static_cast<std::size_t>(best)][u]) {
        continue;
      }
      if (!fetch_->triggered(ctx, u)) continue;
      // The policy sizes the request: JF_ORIG tops up its share of the
      // min-buffer deficit; JF_HYSTERESIS asks the single chosen project
      // for the entire fill-to-max amount.
      d.request.req_seconds[u] = fetch_->request_seconds(ctx, u, x);
      d.request.req_instances[u] = rr.idle_instances_now[u];
      d.request.est_delay[u] = rr.saturated[u];
    }
    if (d.request.wants_work()) {
      trace.emit({.at = now,
                  .kind = TraceKind::kFetchRequest,
                  .project = best,
                  .ptype = static_cast<std::int32_t>(proc_index(t)),
                  .v0 = d.request.req_seconds[ProcType::kCpu],
                  .v1 = d.request.req_seconds[ProcType::kNvidia],
                  .v2 = d.request.req_seconds[ProcType::kAti],
                  .str = fetch_->name()});
      if (auditor_ != nullptr) auditor_->check_fetch_decision(d.request, host_);
      return d;
    }
    d.project = kNoProject;
  }
  return d;
}

void WorkFetch::on_rpc_sent(SimTime now, ProjectFetchState& state,
                            bool work_request) const {
  state.next_allowed_rpc =
      std::max(state.next_allowed_rpc, now + prefs_.min_rpc_interval);
  if (work_request) state.last_work_rpc = now;
}

SimTime WorkFetch::on_reply_lost(SimTime now, ProjectFetchState& state,
                                 Trace& trace) const {
  state.rpc_retry_backoff_len =
      state.rpc_retry_backoff_len <= 0.0
          ? kRetryBackoffMin
          : std::min(kBackoffMax, state.rpc_retry_backoff_len * 2.0);
  state.next_allowed_rpc =
      std::max(state.next_allowed_rpc, now + state.rpc_retry_backoff_len);
  trace.emit({.at = now,
              .kind = TraceKind::kFetchReplyLost,
              .v0 = state.rpc_retry_backoff_len});
  return state.next_allowed_rpc;
}

void WorkFetch::on_reply(SimTime now, const WorkRequest& req,
                         const RpcReply& reply, ProjectFetchState& state,
                         Trace& trace) const {
  // Any reply that arrives at all proves the network path works again.
  state.rpc_retry_backoff_len = 0.0;
  if (reply.project_down) {
    state.project_backoff_len =
        state.project_backoff_len <= 0.0
            ? kBackoffMin
            : std::min(kBackoffMax, state.project_backoff_len * 2.0);
    state.next_allowed_rpc =
        std::max(state.next_allowed_rpc, now + state.project_backoff_len);
    trace.emit({.at = now,
                .kind = TraceKind::kFetchProjectDown,
                .v0 = state.project_backoff_len});
    return;
  }
  state.project_backoff_len = 0.0;

  PerProc<bool> got{};
  for (const auto& job : reply.jobs) got[job.usage.primary_type()] = true;

  for (const auto t : kAllProcTypes) {
    if (got[t]) {
      state.type_backoff_len[t] = 0.0;
      state.type_backoff_until[t] = 0.0;
    } else if (req.wants_type(t) && reply.no_jobs_for[t]) {
      state.type_backoff_len[t] =
          state.type_backoff_len[t] <= 0.0
              ? kBackoffMin
              : std::min(kBackoffMax, state.type_backoff_len[t] * 2.0);
      state.type_backoff_until[t] = now + state.type_backoff_len[t];
      trace.emit({.at = now,
                  .kind = TraceKind::kFetchBackoff,
                  .ptype = static_cast<std::int32_t>(proc_index(t)),
                  .v0 = state.type_backoff_len[t]});
    }
  }
}

}  // namespace bce
