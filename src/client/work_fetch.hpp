#pragma once

/// \file work_fetch.hpp
/// Client job-fetch policy (§3.4): decides when to issue a scheduler RPC
/// requesting jobs, which project to contact, and how much to ask for.
///
///  * **JF_ORIG**: for a processor type T with SHORTFALL(T) > 0, pick the
///    project P with jobs of type T maximizing PRIO_fetch(P) and request
///    X·SHORTFALL(T) instance-seconds, X = P's fractional share among
///    projects with jobs of type T. No hysteresis: the client tops the
///    queue back up toward max_queue every time it dips below.
///
///  * **JF_HYSTERESIS**: only when SAT(T) < min_queue, pick the top-
///    priority project and ask it for the *entire* SHORTFALL(T). The queue
///    therefore oscillates between min_queue and max_queue, batching many
///    jobs per RPC.
///
/// Per-(project,type) exponential backoff is applied when a project replies
/// with no jobs of a type; a project-level backoff when its server is down.
/// A project that currently has deadline-endangered jobs of a type is not
/// asked for more work of that type (BOINC's "deadline miss pending" fetch
/// suppression): piling more work onto an overcommitted project only
/// manufactures waste.

#include <memory>
#include <vector>

#include "client/accounting.hpp"
#include "client/policy.hpp"
#include "client/rr_sim.hpp"
#include "client/scheduling_policy.hpp"
#include "host/preferences.hpp"
#include "model/project.hpp"
#include "server/request.hpp"
#include "sim/audit.hpp"
#include "sim/trace.hpp"

namespace bce {

/// The fetch *mechanism*: candidate filtering (availability, RPC spacing,
/// backoffs), share computation, request assembly, and backoff bookkeeping.
/// The policy-variant behavior (trigger condition, project selection,
/// request sizing) lives in the WorkFetchPolicy strategy, resolved from
/// \p policy through bce::policy_registry(). ProjectFetchState lives in
/// scheduling_policy.hpp so custom policies can score on it.
class WorkFetch {
 public:
  static constexpr Duration kBackoffMin = 600.0;            // 10 min
  static constexpr Duration kBackoffMax = 4.0 * 3600.0;     // 4 h
  /// First retry delay after a scheduler reply is lost in flight; doubles
  /// per consecutive loss up to kBackoffMax.
  static constexpr Duration kRetryBackoffMin = 60.0;        // 1 min

  WorkFetch(const HostInfo& host, const Preferences& prefs,
            const PolicyConfig& policy);

  struct Decision {
    ProjectId project = kNoProject;
    WorkRequest request;
    [[nodiscard]] bool fetch() const { return project != kNoProject; }
  };

  /// Decide whether to fetch, from whom, and how much. \p projects is
  /// indexed by project id; \p states likewise. \p endangered[p][t]: project
  /// p currently has deadline-endangered jobs of type t (from RR-sim).
  Decision choose(SimTime now, const RrSimOutput& rr, const Accounting& acct,
                  const std::vector<const ProjectConfig*>& projects,
                  const std::vector<ProjectFetchState>& states,
                  const std::vector<PerProc<bool>>& endangered,
                  Trace& trace) const;

  /// Update backoff state from an RPC reply. \p req is the request the
  /// reply answers.
  void on_reply(SimTime now, const WorkRequest& req, const RpcReply& reply,
                ProjectFetchState& state, Trace& trace) const;

  /// Record that an RPC was sent, enforcing min spacing; work requests
  /// additionally stamp last_work_rpc (for JF_RR selection).
  void on_rpc_sent(SimTime now, ProjectFetchState& state,
                   bool work_request = false) const;

  /// The reply to an RPC was lost in flight (FaultPlan::rpc_loss): grow
  /// the retry backoff (doubling from kRetryBackoffMin, capped at
  /// kBackoffMax) and defer the next RPC accordingly. Returns the earliest
  /// retry time so the caller can schedule a deferral event.
  SimTime on_reply_lost(SimTime now, ProjectFetchState& state,
                        Trace& trace) const;

  /// The active fetch strategy (name() feeds logs and CLI output).
  [[nodiscard]] const WorkFetchPolicy& fetch_policy() const { return *fetch_; }

  /// Install a debug auditor (non-owning, may be nullptr): choose() then
  /// re-checks every positive decision's request (non-negative amounts,
  /// no requests for processor types the host lacks).
  void set_auditor(InvariantAuditor* auditor) { auditor_ = auditor; }

 private:
  HostInfo host_;
  Preferences prefs_;
  PolicyConfig policy_;
  std::shared_ptr<const JobOrderPolicy> order_;
  std::shared_ptr<const WorkFetchPolicy> fetch_;
  InvariantAuditor* auditor_ = nullptr;
};

}  // namespace bce
