#pragma once

/// \file project_server.hpp
/// Simplified per-project scheduler simulation (§4.3c: "BOINC schedulers
/// are simulated with a simplified model"), split into a substrate and a
/// strategy. The substrate (this class):
///  * may be down (Markov up/down process, §4.1);
///  * may sporadically lack jobs of particular classes (§6.2 extension);
///  * tracks in-progress slots, orphaned replies, and this host's report
///    history (jobs_ok / jobs_failed);
///  * draws actual job sizes from a truncated normal around the (possibly
///    biased) estimate (make_job);
///  * optionally offers a deadline check: don't send a job whose
///    full-speed runtime, de-rated by the host's expected availability,
///    exceeds its latency bound (the "server deadline-check policies"
///    knob of §4.3).
/// *Which* jobs fill an RPC is delegated to a DispatchPolicy
/// (server/dispatch_policy.hpp), selected by name from
/// server_policy_registry(); the default SD_PAPER reproduces the paper's
/// fill loop byte-identically.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "host/host_info.hpp"
#include "model/project.hpp"
#include "server/request.hpp"
#include "sim/trace.hpp"
#include "sim/rng.hpp"

namespace bce {

class DispatchPolicy;

struct ServerPolicy {
  /// Refuse jobs that cannot meet their deadline on this host even at full
  /// speed times the host's expected availability.
  bool deadline_check = false;

  /// Hard cap on jobs per RPC (guards against degenerate scenarios with
  /// second-long jobs and day-long buffers).
  int max_jobs_per_rpc = 500;

  /// Dispatch strategy filling each RPC. Null selects the registered
  /// default (SD_PAPER), which reproduces the paper's behavior.
  std::shared_ptr<const DispatchPolicy> dispatch;
};

class ProjectServer {
 public:
  /// \p rng is an independent stream for this server's job-size draws and
  /// availability processes. \p host_avail_fraction is the client-reported
  /// expected availability used by the deadline check.
  ProjectServer(ProjectId id, const ProjectConfig& cfg, const HostInfo& host,
                const ServerPolicy& policy, double host_avail_fraction,
                Xoshiro256 rng, SimTime now);

  /// Advance up/down and per-class availability processes to \p now.
  void advance_to(SimTime now);

  /// Earliest next availability transition (for event scheduling).
  [[nodiscard]] SimTime next_transition() const;

  [[nodiscard]] bool up() const { return up_.on(); }

  /// Handle one scheduler RPC at time \p now. \p n_reported is the number
  /// of completed jobs the client reports in this RPC (frees in-progress
  /// slots when the project caps them); \p n_failed of those failed or
  /// were aborted (feeds the host reliability estimate adaptive
  /// replication uses). \p next_job_id is a shared allocator so job ids
  /// are unique across projects.
  RpcReply handle_rpc(SimTime now, const WorkRequest& req, int n_reported,
                      JobId& next_job_id, Trace& trace, int n_failed = 0);

  /// Jobs dispatched to this host and not yet reported back.
  [[nodiscard]] int jobs_in_progress() const { return in_progress_; }

  /// A reply carrying \p n_jobs was lost in flight (FaultPlan::rpc_loss).
  /// The host never saw the jobs, but the server already counted them
  /// in-progress; the slots stay occupied until \p timeout elapses, then
  /// advance_to() reclaims them (BOINC's result-timeout / transitioner).
  void on_reply_lost(SimTime now, int n_jobs, Duration timeout);

  /// Orphaned in-progress slots reclaimed so far (stats/tests).
  [[nodiscard]] std::int64_t jobs_reclaimed() const { return jobs_reclaimed_; }

  [[nodiscard]] ProjectId id() const { return id_; }
  [[nodiscard]] const ProjectConfig& config() const { return cfg_; }

  /// Total jobs ever dispatched (stats).
  [[nodiscard]] std::int64_t jobs_dispatched() const { return jobs_dispatched_; }

  // --- substrate view for DispatchPolicy implementations ----------------

  [[nodiscard]] const HostInfo& host() const { return host_; }
  [[nodiscard]] const ServerPolicy& policy() const { return policy_; }
  [[nodiscard]] double host_avail_fraction() const {
    return host_avail_fraction_;
  }

  /// Whether job class \p i is currently available (sporadic class
  /// availability, §6.2).
  [[nodiscard]] bool class_on(std::size_t i) const {
    return class_avail_[i].on();
  }

  /// Rotation cursor among same-type classes; persists across RPCs so a
  /// project with several classes interleaves them. Policies read it at
  /// the start of a fill and write the advanced cursor back.
  [[nodiscard]] std::size_t class_rotor() const { return next_class_hint_; }
  void set_class_rotor(std::size_t rotor) { next_class_hint_ = rotor; }

  /// This host's report history as seen by this server: successful and
  /// failed/aborted results reported so far.
  [[nodiscard]] std::int64_t jobs_ok() const { return jobs_ok_; }
  [[nodiscard]] std::int64_t jobs_failed() const { return jobs_failed_; }

  /// Make one job instance from class \p class_idx at time \p now (draws
  /// the actual size from the server's RNG stream).
  Result make_job(SimTime now, int class_idx, JobId id);

  /// Deadline-check feasibility of a job with DCF-corrected \p runtime and
  /// \p latency bound, given the client's current queue delay for its
  /// processor type plus the delay added by jobs already placed in this
  /// reply. Always true unless ServerPolicy::deadline_check.
  [[nodiscard]] bool deadline_feasible(double runtime, double latency,
                                       double effective_delay) const;

  /// Savestate support (docs/savestate.md): config and policy are
  /// reconstructed from the scenario; serialized state is the RNG stream,
  /// the up/down and per-class availability realizations, the in-progress
  /// and orphaned-slot bookkeeping, the dispatch counters, and the report
  /// history.
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  ProjectId id_;
  ProjectConfig cfg_;
  const HostInfo host_;
  ServerPolicy policy_;
  double host_avail_fraction_;
  Xoshiro256 rng_;
  OnOffProcess up_;
  std::vector<OnOffProcess> class_avail_;
  /// Resolved dispatch strategy (policy_.dispatch or the SD_PAPER default).
  std::shared_ptr<const DispatchPolicy> dispatch_;
  std::int64_t jobs_dispatched_ = 0;
  int in_progress_ = 0;
  /// Slots held by replies the client never received, with the time the
  /// server will give up on them. Sorted by insertion = by reclaim time
  /// (timeout is constant per run).
  struct Orphan {
    SimTime reclaim_at;
    int n;
  };
  std::vector<Orphan> orphans_;
  std::int64_t jobs_reclaimed_ = 0;
  /// Rotates among matching classes so a project with several classes of
  /// the same type interleaves them.
  std::size_t next_class_hint_ = 0;
  /// Report history (successes / failures) for this host.
  std::int64_t jobs_ok_ = 0;
  std::int64_t jobs_failed_ = 0;
};

}  // namespace bce
