#pragma once

/// \file dispatch_policy.hpp
/// Strategy seam for server-side job dispatch, mirroring the client's
/// policy_registry. ProjectServer owns the availability/queue substrate
/// (up/down and per-class processes, in-progress and orphan bookkeeping,
/// the job-size RNG); a DispatchPolicy decides which jobs fill one RPC.
/// Policies register by name in server_policy_registry() and become
/// selectable end-to-end (CLI --dispatch, bench drivers,
/// PolicyConfig::dispatch_by_name) without engine edits.
///
/// Built-ins (docs/policies.md has the authoring guide):
///  * SD_PAPER ("paper") — the paper's §4.3c fill loop, the default;
///    byte-identical to the pre-registry server.
///  * SD_MOBILE ("mobile") — refuses work to off-wifi or low-battery
///    off-AC hosts and only sends jobs the battery can finish (after
///    BOINC's device_status handling).
///  * SD_ADAPT_REPL ("repl") — scales each workunit's replica count with
///    the host's observed failure rate, between the project's quorum and
///    target_replicas.
///  * SD_DEADLINE_BUDGET ("budget") — Buyya-style deadline-and-budget
///    constrained dispatch: strict deadline check plus a hard cap at the
///    requested seconds, preferring classes that fit the remaining budget.
///
/// Example — adding a policy without engine edits:
/// \code
///   class SdGreedy : public bce::PaperDispatch {
///     const char* name() const override { return "SD_GREEDY"; }
///     int replicas_for(const bce::DispatchContext&,
///                      const bce::WorkRequest&) const override { return 2; }
///   };
///   bce::server_policy_registry().register_dispatch(
///       "SD_GREEDY", "always send two replicas",
///       [p = std::make_shared<const SdGreedy>()](const bce::PolicyConfig&) {
///         return p;
///       },
///       {"greedy"});
///   bce::PolicyConfig pc;
///   pc.dispatch_by_name = "greedy";      // resolved at emulate() time
/// \endcode

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "client/policy.hpp"
#include "client/policy_registry.hpp"
#include "sim/proc_type.hpp"
#include "model/job.hpp"
#include "server/request.hpp"
#include "sim/types.hpp"

namespace bce {

class ProjectServer;
class Trace;

/// Everything a dispatch policy may touch while filling one RPC. The
/// server reference is the queue/availability view (class_on, rotor,
/// in-progress counts, report history) plus the host view (host(),
/// host_avail_fraction()) and the job factory (make_job draws the job
/// size from the server's RNG stream).
struct DispatchContext {
  SimTime now;
  ProjectServer& server;
  JobId& next_job_id;
  Trace& trace;
};

/// One server-side dispatch strategy. Stateless and shared across servers
/// and runs; all per-host state lives in the ProjectServer substrate.
class DispatchPolicy {
 public:
  virtual ~DispatchPolicy() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Fill \p reply with jobs for \p req. The server has already advanced
  /// its availability processes, reclaimed reported/orphaned slots, and
  /// handled the down case; the policy only selects jobs. It must respect
  /// ServerPolicy::max_jobs_per_rpc and the project's in-progress cap, and
  /// set reply.no_jobs_for[t] for requested types it sends nothing of
  /// (the client's backoff signal).
  virtual void select_jobs(DispatchContext& ctx, const WorkRequest& req,
                           RpcReply& reply) const = 0;
};

/// SD_PAPER: the paper's fill loop (§4.3c) — for each requested type,
/// rotate among available classes, size batches by the DCF-corrected
/// estimate, optionally apply the server deadline check. The protected
/// hooks are the authoring surface: subclasses add host-level gates,
/// per-job feasibility rules, or replication without re-implementing the
/// loop (and inherit its cap handling and trace events).
class PaperDispatch : public DispatchPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "SD_PAPER"; }

  void select_jobs(DispatchContext& ctx, const WorkRequest& req,
                   RpcReply& reply) const override;

 protected:
  /// Host-level admission gate, checked once per RPC before any filling.
  /// Returning false refuses all work: every requested type the project
  /// could supply gets a no_jobs_for backoff. Implementations should emit
  /// a kServerRefused trace event explaining why.
  [[nodiscard]] virtual bool admit_host(const DispatchContext& ctx,
                                        const WorkRequest& req) const;

  /// Per-candidate feasibility gate. The default is the substrate's
  /// deadline check (a no-op unless ServerPolicy::deadline_check).
  /// \p corrected_runtime is the DCF-corrected full-speed runtime,
  /// \p effective_delay the client's queue delay plus the delay added by
  /// jobs already placed in this reply, \p sent_seconds the
  /// instance-seconds of type \p t already placed.
  [[nodiscard]] virtual bool job_feasible(const DispatchContext& ctx,
                                          const WorkRequest& req, ProcType t,
                                          const JobClass& jc,
                                          double corrected_runtime,
                                          double effective_delay,
                                          double sent_seconds) const;

  /// Replicas to dispatch per workunit (>= 1). The default is the
  /// project's target_replicas (1 unless the scenario says otherwise).
  [[nodiscard]] virtual int replicas_for(const DispatchContext& ctx,
                                         const WorkRequest& req) const;
};

/// Thread-safe name -> factory registry for dispatch policies, the server
/// counterpart of PolicyRegistry. Lookup is case-sensitive on canonical
/// names and aliases; re-registering a name replaces it (latest wins).
class ServerPolicyRegistry {
 public:
  using DispatchFactory =
      std::function<std::shared_ptr<const DispatchPolicy>(const PolicyConfig&)>;

  void register_dispatch(std::string name, std::string description,
                         DispatchFactory factory,
                         std::vector<std::string> aliases = {});

  /// Construct a policy by canonical name or alias. Throws
  /// std::invalid_argument listing the known names when \p name is unknown.
  [[nodiscard]] std::shared_ptr<const DispatchPolicy> make_dispatch(
      const std::string& name, const PolicyConfig& cfg) const;

  [[nodiscard]] bool has_dispatch(const std::string& name) const;

  /// Registered entries in registration order (stable listing for CLI
  /// output and registry-driven sweeps).
  [[nodiscard]] std::vector<PolicyRegistryEntry> dispatch_entries() const;

 private:
  struct DispatchRecord {
    PolicyRegistryEntry info;
    DispatchFactory factory;
  };

  [[nodiscard]] const DispatchRecord* find_dispatch(
      const std::string& name) const;

  mutable std::mutex mu_;
  std::vector<DispatchRecord> dispatches_;
};

/// The process-wide registry, pre-loaded with the built-in policies.
ServerPolicyRegistry& server_policy_registry();

/// Canonical name of the default dispatch policy.
inline constexpr const char* kDefaultDispatchName = "SD_PAPER";

/// Resolve \p cfg's dispatch selection to a strategy object:
/// PolicyConfig::dispatch_by_name when set, SD_PAPER otherwise.
std::shared_ptr<const DispatchPolicy> make_dispatch_policy(
    const PolicyConfig& cfg);

}  // namespace bce
