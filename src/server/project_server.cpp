#include "server/project_server.hpp"

#include <algorithm>
#include <cmath>

#include "sim/distribution.hpp"
#include "sim/state_io.hpp"

namespace bce {

ProjectServer::ProjectServer(ProjectId id, const ProjectConfig& cfg,
                             const HostInfo& host, const ServerPolicy& policy,
                             double host_avail_fraction, Xoshiro256 rng,
                             SimTime now)
    : id_(id),
      cfg_(cfg),
      host_(host),
      policy_(policy),
      host_avail_fraction_(clamp(host_avail_fraction, 0.01, 1.0)),
      rng_(rng.fork("server.jobs")),
      up_(cfg.up, rng.fork("server.up"), now) {
  class_avail_.reserve(cfg_.job_classes.size());
  for (std::size_t i = 0; i < cfg_.job_classes.size(); ++i) {
    class_avail_.emplace_back(cfg_.job_classes[i].avail,
                              rng.fork("server.class" + std::to_string(i)),
                              now);
  }
}

void ProjectServer::advance_to(SimTime now) {
  up_.advance_to(now);
  for (auto& ca : class_avail_) ca.advance_to(now);
  while (!orphans_.empty() && orphans_.front().reclaim_at <= now + kFpEpsilon) {
    const int n = orphans_.front().n;
    in_progress_ = std::max(0, in_progress_ - n);
    jobs_reclaimed_ += n;
    orphans_.erase(orphans_.begin());
  }
}

SimTime ProjectServer::next_transition() const {
  SimTime t = up_.next_transition();
  for (const auto& ca : class_avail_) t = std::min(t, ca.next_transition());
  if (!orphans_.empty()) t = std::min(t, orphans_.front().reclaim_at);
  return t;
}

void ProjectServer::on_reply_lost(SimTime now, int n_jobs, Duration timeout) {
  if (n_jobs <= 0) return;
  orphans_.push_back(Orphan{now + timeout, n_jobs});
}

bool ProjectServer::deadline_feasible(double runtime, double latency,
                                      double effective_delay) const {
  if (!policy_.deadline_check) return true;
  // The job must fit within its latency bound when run at full speed,
  // de-rated by the host's long-run availability, after waiting out the
  // client's current queue plus the jobs already placed in this reply.
  // This is the simplified form of BOINC's server-side deadline check
  // (the scheduler's `estimated_delay` + runtime test).
  return effective_delay + runtime / host_avail_fraction_ <= latency;
}

Result ProjectServer::make_job(SimTime now, int class_idx, JobId id) {
  const JobClass& jc = cfg_.job_classes[static_cast<std::size_t>(class_idx)];
  Result r;
  r.id = id;
  r.project = id_;
  r.job_class = class_idx;
  r.flops_est = jc.flops_est;
  r.flops_total =
      sample_truncated_normal(rng_, jc.flops_est * jc.est_error, jc.flops_cv,
                              jc.flops_est * jc.est_error * 0.01);
  r.received = now;
  r.runnable_at = now + jc.transfer_delay;
  r.deadline = now + jc.latency_bound;
  r.usage = jc.usage;
  r.ram_bytes = jc.ram_bytes;
  r.checkpoint_period = jc.checkpoint_period;
  r.input_bytes = jc.input_bytes;
  r.output_bytes = jc.output_bytes;
  return r;
}

RpcReply ProjectServer::handle_rpc(SimTime now, const WorkRequest& req,
                                   int n_reported, JobId& next_job_id,
                                   Trace& trace) {
  advance_to(now);
  in_progress_ = std::max(0, in_progress_ - n_reported);
  RpcReply reply;
  if (!up_.on()) {
    reply.project_down = true;
    trace.emit({.at = now,
                .kind = TraceKind::kServerDown,
                .str = cfg_.name.c_str()});
    return reply;
  }

  for (const auto t : kAllProcTypes) {
    if (!req.wants_type(t)) continue;

    // Job classes of this type that are currently available.
    std::vector<int> classes;
    for (std::size_t i = 0; i < cfg_.job_classes.size(); ++i) {
      const auto& jc = cfg_.job_classes[i];
      if (jc.usage.primary_type() != t) continue;
      if (!class_avail_[i].on()) continue;
      classes.push_back(static_cast<int>(i));
    }
    if (classes.empty()) {
      if (cfg_.has_jobs_for(t)) {
        // The project *could* supply this type but can't right now.
        reply.no_jobs_for[t] = true;
      }
      continue;
    }

    double sent_seconds = 0.0;
    double sent_jobs_of_type = 0.0;
    const double n_inst = std::max(1.0, static_cast<double>(host_.count[t]));
    std::size_t rotor = next_class_hint_ % classes.size();
    std::size_t consecutive_rejects = 0;
    while ((sent_seconds < req.req_seconds[t] ||
            sent_jobs_of_type < req.req_instances[t]) &&
           static_cast<int>(reply.jobs.size()) < policy_.max_jobs_per_rpc &&
           (cfg_.max_jobs_in_progress == 0 ||
            in_progress_ + static_cast<int>(reply.jobs.size()) <
                cfg_.max_jobs_in_progress) &&
           consecutive_rejects < classes.size()) {
      const int ci = classes[rotor];
      rotor = (rotor + 1) % classes.size();
      const JobClass& jc = cfg_.job_classes[static_cast<std::size_t>(ci)];
      // The host's duration-correction factor scales this job's expected
      // runtime on that host (BOINC sends DCF with the request).
      const double corrected_runtime =
          jc.est_runtime(host_) * std::max(req.duration_correction, 0.01);
      // Deadline check: the client waits out its current queue plus the
      // jobs already in this reply before this one could start.
      const double effective_delay = req.est_delay[t] + sent_seconds / n_inst;
      if (!deadline_feasible(corrected_runtime, jc.latency_bound,
                             effective_delay)) {
        ++consecutive_rejects;
        continue;
      }
      consecutive_rejects = 0;
      Result job = make_job(now, ci, next_job_id++);
      // A job covers corrected_runtime seconds on usage_of(t) instances.
      sent_seconds += corrected_runtime * std::max(jc.usage.usage_of(t), 1e-6);
      sent_jobs_of_type += 1.0;
      reply.jobs.push_back(std::move(job));
      ++jobs_dispatched_;
    }
    next_class_hint_ = rotor;
    if (sent_jobs_of_type == 0.0 && req.wants_type(t)) {
      // Deadline-infeasible or the in-progress cap is full: back off.
      reply.no_jobs_for[t] = true;
    }
    trace.emit({.at = now,
                .kind = TraceKind::kServerSent,
                .ptype = static_cast<std::int32_t>(proc_index(t)),
                .v0 = sent_jobs_of_type,
                .v1 = req.req_seconds[t],
                .v2 = sent_seconds,
                .str = cfg_.name.c_str()});
  }
  in_progress_ += static_cast<int>(reply.jobs.size());
  return reply;
}

void ProjectServer::save_state(StateWriter& w) const {
  rng_.save_state(w, "server.rng");
  up_.save_state(w, "server.up");
  w.put_count("server.classes", class_avail_.size());
  for (const OnOffProcess& p : class_avail_) {
    p.save_state(w, "server.class_avail");
  }
  w.put_i64("server.jobs_dispatched", jobs_dispatched_);
  w.put_i64("server.in_progress", in_progress_);
  w.put_i64("server.jobs_reclaimed", jobs_reclaimed_);
  w.put_u64("server.next_class_hint", next_class_hint_);
  w.put_count("server.orphans", orphans_.size());
  for (const Orphan& o : orphans_) {
    w.put_f64("server.orphan.reclaim_at", o.reclaim_at);
    w.put_i64("server.orphan.n", o.n);
  }
}

void ProjectServer::restore_state(StateReader& r) {
  rng_.restore_state(r, "server.rng");
  up_.restore_state(r, "server.up");
  const std::uint64_t nc = r.get_count("server.classes");
  (void)nc;
  for (OnOffProcess& p : class_avail_) {
    p.restore_state(r, "server.class_avail");
  }
  jobs_dispatched_ = r.get_i64("server.jobs_dispatched");
  in_progress_ = static_cast<int>(r.get_i64("server.in_progress"));
  jobs_reclaimed_ = r.get_i64("server.jobs_reclaimed");
  next_class_hint_ = static_cast<std::size_t>(r.get_u64("server.next_class_hint"));
  const std::uint64_t no = r.get_count("server.orphans");
  orphans_.clear();
  orphans_.reserve(no);
  for (std::uint64_t i = 0; i < no; ++i) {
    Orphan o{};
    o.reclaim_at = r.get_f64("server.orphan.reclaim_at");
    o.n = static_cast<int>(r.get_i64("server.orphan.n"));
    orphans_.push_back(o);
  }
}

}  // namespace bce
