#include "server/project_server.hpp"

#include <algorithm>
#include <cmath>

#include "server/dispatch_policy.hpp"
#include "sim/distribution.hpp"
#include "sim/state_io.hpp"

namespace bce {

ProjectServer::ProjectServer(ProjectId id, const ProjectConfig& cfg,
                             const HostInfo& host, const ServerPolicy& policy,
                             double host_avail_fraction, Xoshiro256 rng,
                             SimTime now)
    : id_(id),
      cfg_(cfg),
      host_(host),
      policy_(policy),
      host_avail_fraction_(clamp(host_avail_fraction, 0.01, 1.0)),
      rng_(rng.fork("server.jobs")),
      up_(cfg.up, rng.fork("server.up"), now) {
  class_avail_.reserve(cfg_.job_classes.size());
  for (std::size_t i = 0; i < cfg_.job_classes.size(); ++i) {
    class_avail_.emplace_back(cfg_.job_classes[i].avail,
                              rng.fork("server.class" + std::to_string(i)),
                              now);
  }
  dispatch_ = policy_.dispatch
                  ? policy_.dispatch
                  : server_policy_registry().make_dispatch(
                        kDefaultDispatchName, PolicyConfig{});
}

void ProjectServer::advance_to(SimTime now) {
  up_.advance_to(now);
  for (auto& ca : class_avail_) ca.advance_to(now);
  while (!orphans_.empty() && orphans_.front().reclaim_at <= now + kFpEpsilon) {
    const int n = orphans_.front().n;
    in_progress_ = std::max(0, in_progress_ - n);
    jobs_reclaimed_ += n;
    orphans_.erase(orphans_.begin());
  }
}

SimTime ProjectServer::next_transition() const {
  SimTime t = up_.next_transition();
  for (const auto& ca : class_avail_) t = std::min(t, ca.next_transition());
  if (!orphans_.empty()) t = std::min(t, orphans_.front().reclaim_at);
  return t;
}

void ProjectServer::on_reply_lost(SimTime now, int n_jobs, Duration timeout) {
  if (n_jobs <= 0) return;
  orphans_.push_back(Orphan{now + timeout, n_jobs});
}

bool ProjectServer::deadline_feasible(double runtime, double latency,
                                      double effective_delay) const {
  if (!policy_.deadline_check) return true;
  // The job must fit within its latency bound when run at full speed,
  // de-rated by the host's long-run availability, after waiting out the
  // client's current queue plus the jobs already placed in this reply.
  // This is the simplified form of BOINC's server-side deadline check
  // (the scheduler's `estimated_delay` + runtime test).
  return effective_delay + runtime / host_avail_fraction_ <= latency;
}

Result ProjectServer::make_job(SimTime now, int class_idx, JobId id) {
  const JobClass& jc = cfg_.job_classes[static_cast<std::size_t>(class_idx)];
  Result r;
  r.id = id;
  r.project = id_;
  r.job_class = class_idx;
  r.workunit = id;  // replicas overwrite this with the primary's id
  r.flops_est = jc.flops_est;
  r.flops_total =
      sample_truncated_normal(rng_, jc.flops_est * jc.est_error, jc.flops_cv,
                              jc.flops_est * jc.est_error * 0.01);
  r.received = now;
  r.runnable_at = now + jc.transfer_delay;
  r.deadline = now + jc.latency_bound;
  r.usage = jc.usage;
  r.ram_bytes = jc.ram_bytes;
  r.checkpoint_period = jc.checkpoint_period;
  r.input_bytes = jc.input_bytes;
  r.output_bytes = jc.output_bytes;
  return r;
}

RpcReply ProjectServer::handle_rpc(SimTime now, const WorkRequest& req,
                                   int n_reported, JobId& next_job_id,
                                   Trace& trace, int n_failed) {
  advance_to(now);
  in_progress_ = std::max(0, in_progress_ - n_reported);
  n_failed = std::max(0, std::min(n_failed, n_reported));
  jobs_failed_ += n_failed;
  jobs_ok_ += n_reported - n_failed;
  RpcReply reply;
  if (!up_.on()) {
    reply.project_down = true;
    trace.emit({.at = now,
                .kind = TraceKind::kServerDown,
                .str = cfg_.name.c_str()});
    return reply;
  }

  DispatchContext ctx{now, *this, next_job_id, trace};
  dispatch_->select_jobs(ctx, req, reply);
  jobs_dispatched_ += static_cast<std::int64_t>(reply.jobs.size());
  in_progress_ += static_cast<int>(reply.jobs.size());
  return reply;
}

void ProjectServer::save_state(StateWriter& w) const {
  rng_.save_state(w, "server.rng");
  up_.save_state(w, "server.up");
  w.put_count("server.classes", class_avail_.size());
  for (const OnOffProcess& p : class_avail_) {
    p.save_state(w, "server.class_avail");
  }
  w.put_i64("server.jobs_dispatched", jobs_dispatched_);
  w.put_i64("server.in_progress", in_progress_);
  w.put_i64("server.jobs_reclaimed", jobs_reclaimed_);
  w.put_u64("server.next_class_hint", next_class_hint_);
  w.put_i64("server.jobs_ok", jobs_ok_);
  w.put_i64("server.jobs_failed", jobs_failed_);
  w.put_count("server.orphans", orphans_.size());
  for (const Orphan& o : orphans_) {
    w.put_f64("server.orphan.reclaim_at", o.reclaim_at);
    w.put_i64("server.orphan.n", o.n);
  }
}

void ProjectServer::restore_state(StateReader& r) {
  rng_.restore_state(r, "server.rng");
  up_.restore_state(r, "server.up");
  const std::uint64_t nc = r.get_count("server.classes");
  (void)nc;
  for (OnOffProcess& p : class_avail_) {
    p.restore_state(r, "server.class_avail");
  }
  jobs_dispatched_ = r.get_i64("server.jobs_dispatched");
  in_progress_ = static_cast<int>(r.get_i64("server.in_progress"));
  jobs_reclaimed_ = r.get_i64("server.jobs_reclaimed");
  next_class_hint_ = static_cast<std::size_t>(r.get_u64("server.next_class_hint"));
  jobs_ok_ = r.get_i64("server.jobs_ok");
  jobs_failed_ = r.get_i64("server.jobs_failed");
  const std::uint64_t no = r.get_count("server.orphans");
  orphans_.clear();
  orphans_.reserve(no);
  for (std::uint64_t i = 0; i < no; ++i) {
    Orphan o{};
    o.reclaim_at = r.get_f64("server.orphan.reclaim_at");
    o.n = static_cast<int>(r.get_i64("server.orphan.n"));
    orphans_.push_back(o);
  }
}

}  // namespace bce
