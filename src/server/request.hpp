#pragma once

/// \file request.hpp
/// Scheduler-RPC request/reply messages (§3.4): for each processor type
/// the client asks for enough jobs to occupy `req_instances` idle instances
/// and `req_seconds` instance-seconds of queue depth.

#include <vector>

#include "host/device_status.hpp"
#include "sim/proc_type.hpp"
#include "model/job.hpp"
#include "sim/types.hpp"

namespace bce {

struct WorkRequest {
  /// Instance-seconds of work requested per processor type.
  PerProc<double> req_seconds{};

  /// Currently idle instances per type (the server tries to send at least
  /// one job per idle instance).
  PerProc<double> req_instances{};

  /// Client's estimated busy time per type (SAT(T) from RR-sim): how long
  /// until an instance frees up. The real BOINC request carries this as
  /// `estimated_delay`; the server's deadline check adds it to a job's
  /// expected turnaround.
  PerProc<double> est_delay{};

  /// The client's learned duration-correction factor for this project
  /// (actual/estimated job size). The real BOINC request carries the
  /// host's DCF so the scheduler sizes batches by corrected estimates —
  /// without it, a 4x underestimate makes every fill-to-max request bring
  /// 4x the intended work.
  double duration_correction = 1.0;

  /// Device snapshot at RPC time (BOINC clients report DEVICE_STATUS with
  /// every scheduler RPC). Desktop defaults unless the scenario models a
  /// battery/wifi device; device-aware dispatch policies (SD_MOBILE) read
  /// it, the paper's policy ignores it.
  DeviceStatus device;

  [[nodiscard]] bool wants_work() const {
    for (const auto t : kAllProcTypes) {
      if (req_seconds[t] > 0.0 || req_instances[t] > 0.0) return true;
    }
    return false;
  }

  [[nodiscard]] bool wants_type(ProcType t) const {
    return req_seconds[t] > 0.0 || req_instances[t] > 0.0;
  }
};

struct RpcReply {
  /// Jobs dispatched in this reply.
  std::vector<Result> jobs;

  /// The project's server was down; the client should back off entirely.
  bool project_down = false;

  /// Type was requested but the project currently has no jobs of it; the
  /// client applies a per-(project,type) backoff.
  PerProc<bool> no_jobs_for{};
};

}  // namespace bce
