#include "server/dispatch_policy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "server/project_server.hpp"
#include "sim/trace.hpp"

namespace bce {

bool PaperDispatch::admit_host(const DispatchContext& /*ctx*/,
                               const WorkRequest& /*req*/) const {
  return true;
}

bool PaperDispatch::job_feasible(const DispatchContext& ctx,
                                 const WorkRequest& /*req*/, ProcType /*t*/,
                                 const JobClass& jc, double corrected_runtime,
                                 double effective_delay,
                                 double /*sent_seconds*/) const {
  return ctx.server.deadline_feasible(corrected_runtime, jc.latency_bound,
                                      effective_delay);
}

int PaperDispatch::replicas_for(const DispatchContext& ctx,
                                const WorkRequest& /*req*/) const {
  return ctx.server.config().target_replicas;
}

void PaperDispatch::select_jobs(DispatchContext& ctx, const WorkRequest& req,
                                RpcReply& reply) const {
  ProjectServer& srv = ctx.server;
  const ProjectConfig& cfg = srv.config();
  if (!admit_host(ctx, req)) {
    for (const auto t : kAllProcTypes) {
      if (req.wants_type(t) && cfg.has_jobs_for(t)) reply.no_jobs_for[t] = true;
    }
    return;
  }

  const int max_rpc = srv.policy().max_jobs_per_rpc;
  for (const auto t : kAllProcTypes) {
    if (!req.wants_type(t)) continue;

    // Job classes of this type that are currently available.
    std::vector<int> classes;
    for (std::size_t i = 0; i < cfg.job_classes.size(); ++i) {
      const auto& jc = cfg.job_classes[i];
      if (jc.usage.primary_type() != t) continue;
      if (!srv.class_on(i)) continue;
      classes.push_back(static_cast<int>(i));
    }
    if (classes.empty()) {
      if (cfg.has_jobs_for(t)) {
        // The project *could* supply this type but can't right now.
        reply.no_jobs_for[t] = true;
      }
      continue;
    }

    double sent_seconds = 0.0;
    double sent_jobs_of_type = 0.0;
    const double n_inst =
        std::max(1.0, static_cast<double>(srv.host().count[t]));
    std::size_t rotor = srv.class_rotor() % classes.size();
    std::size_t consecutive_rejects = 0;
    while ((sent_seconds < req.req_seconds[t] ||
            sent_jobs_of_type < req.req_instances[t]) &&
           static_cast<int>(reply.jobs.size()) < max_rpc &&
           (cfg.max_jobs_in_progress == 0 ||
            srv.jobs_in_progress() + static_cast<int>(reply.jobs.size()) <
                cfg.max_jobs_in_progress) &&
           consecutive_rejects < classes.size()) {
      const int ci = classes[rotor];
      rotor = (rotor + 1) % classes.size();
      const JobClass& jc = cfg.job_classes[static_cast<std::size_t>(ci)];
      // The host's duration-correction factor scales this job's expected
      // runtime on that host (BOINC sends DCF with the request).
      const double corrected_runtime =
          jc.est_runtime(srv.host()) * std::max(req.duration_correction, 0.01);
      // Deadline check: the client waits out its current queue plus the
      // jobs already in this reply before this one could start.
      const double effective_delay = req.est_delay[t] + sent_seconds / n_inst;
      if (!job_feasible(ctx, req, t, jc, corrected_runtime, effective_delay,
                        sent_seconds)) {
        ++consecutive_rejects;
        continue;
      }
      consecutive_rejects = 0;
      // One workunit covers corrected_runtime seconds on usage_of(t)
      // instances — per replica, since replicas each occupy the host.
      const double instance_seconds =
          corrected_runtime * std::max(jc.usage.usage_of(t), 1e-6);
      Result job = srv.make_job(ctx.now, ci, ctx.next_job_id++);
      sent_seconds += instance_seconds;
      sent_jobs_of_type += 1.0;
      const int replicas = std::max(1, replicas_for(ctx, req));
      const std::size_t primary_index = reply.jobs.size();
      reply.jobs.push_back(std::move(job));
      for (int k = 1; k < replicas; ++k) {
        if (static_cast<int>(reply.jobs.size()) >= max_rpc) break;
        if (cfg.max_jobs_in_progress != 0 &&
            srv.jobs_in_progress() + static_cast<int>(reply.jobs.size()) >=
                cfg.max_jobs_in_progress) {
          break;
        }
        // Same computation as the primary (same flops_total, no new RNG
        // draw); independent fault fate is drawn client-side on arrival.
        Result rep = reply.jobs[primary_index];
        rep.id = ctx.next_job_id++;
        rep.replica = k;
        sent_seconds += instance_seconds;
        sent_jobs_of_type += 1.0;
        reply.jobs.push_back(std::move(rep));
      }
    }
    srv.set_class_rotor(rotor);
    if (sent_jobs_of_type == 0.0 && req.wants_type(t)) {
      // Deadline-infeasible or the in-progress cap is full: back off.
      reply.no_jobs_for[t] = true;
    }
    ctx.trace.emit({.at = ctx.now,
                    .kind = TraceKind::kServerSent,
                    .ptype = static_cast<std::int32_t>(proc_index(t)),
                    .v0 = sent_jobs_of_type,
                    .v1 = req.req_seconds[t],
                    .v2 = sent_seconds,
                    .str = cfg.name.c_str()});
  }
}

namespace {

/// SD_MOBILE: BOINC-style device gating. No work for hosts off wifi (no
/// unmetered path for input files) or off AC below a charge floor; off-AC
/// hosts only get jobs the remaining battery can finish.
class MobileDispatch final : public PaperDispatch {
 public:
  /// Charge floor below which an off-AC host gets no work at all.
  static constexpr double kMinCharge = 0.25;

  [[nodiscard]] const char* name() const override { return "SD_MOBILE"; }

 protected:
  [[nodiscard]] bool admit_host(const DispatchContext& ctx,
                                const WorkRequest& req) const override {
    const DeviceStatus& d = req.device;
    if (d.on_wifi && (d.on_ac || d.battery_charge >= kMinCharge)) return true;
    ctx.trace.emit({.at = ctx.now,
                    .kind = TraceKind::kServerRefused,
                    .flag = d.on_ac,
                    .n = d.on_wifi ? 1 : 0,
                    .v0 = d.battery_charge,
                    .str = ctx.server.config().name.c_str()});
    return false;
  }

  [[nodiscard]] bool job_feasible(const DispatchContext& ctx,
                                  const WorkRequest& req, ProcType t,
                                  const JobClass& jc, double corrected_runtime,
                                  double effective_delay,
                                  double sent_seconds) const override {
    if (!PaperDispatch::job_feasible(ctx, req, t, jc, corrected_runtime,
                                     effective_delay, sent_seconds)) {
      return false;
    }
    const DeviceStatus& d = req.device;
    if (!d.on_ac && d.battery_discharge > 0.0) {
      // The job must finish before the battery does.
      const double battery_seconds =
          d.battery_charge / d.battery_discharge * kSecondsPerHour;
      if (effective_delay + corrected_runtime > battery_seconds) return false;
    }
    return true;
  }
};

/// SD_ADAPT_REPL: adaptive replication. Each server keeps a report history
/// for this host (jobs_ok / jobs_failed); the replica count per workunit
/// ramps from the project's quorum (reliable host) to its target_replicas
/// (unreliable host) with the Laplace-smoothed failure rate.
class AdaptiveReplicationDispatch final : public PaperDispatch {
 public:
  /// Failure rates at/below the low mark get quorum replicas; at/above the
  /// high mark, target_replicas; linear in between.
  static constexpr double kLowFailRate = 0.1;
  static constexpr double kHighFailRate = 0.5;

  [[nodiscard]] const char* name() const override { return "SD_ADAPT_REPL"; }

 protected:
  [[nodiscard]] int replicas_for(const DispatchContext& ctx,
                                 const WorkRequest& /*req*/) const override {
    const ProjectConfig& cfg = ctx.server.config();
    const int floor_n = std::max(1, cfg.quorum);
    const int ceil_n = std::max(floor_n, cfg.target_replicas);
    if (ceil_n == floor_n) return floor_n;
    const double ok = static_cast<double>(ctx.server.jobs_ok());
    const double fail = static_cast<double>(ctx.server.jobs_failed());
    const double p_fail = (fail + 1.0) / (ok + fail + 2.0);
    const double x =
        clamp((p_fail - kLowFailRate) / (kHighFailRate - kLowFailRate), 0.0,
              1.0);
    return floor_n +
           static_cast<int>(std::lround(x * static_cast<double>(ceil_n - floor_n)));
  }
};

/// SD_DEADLINE_BUDGET: Buyya-style deadline-and-budget constrained
/// dispatch. The deadline check is always on (regardless of the
/// server_deadline_check knob), and the requested seconds are treated as a
/// hard budget: a job that would overshoot the remaining budget is
/// rejected, so the rotor falls through to smaller classes that fit —
/// cost-time optimisation over the class mix instead of the paper's
/// fill-past-the-target behavior.
class DeadlineBudgetDispatch final : public PaperDispatch {
 public:
  [[nodiscard]] const char* name() const override {
    return "SD_DEADLINE_BUDGET";
  }

 protected:
  [[nodiscard]] bool job_feasible(const DispatchContext& ctx,
                                  const WorkRequest& req, ProcType t,
                                  const JobClass& jc, double corrected_runtime,
                                  double effective_delay,
                                  double sent_seconds) const override {
    if (effective_delay +
            corrected_runtime / ctx.server.host_avail_fraction() >
        jc.latency_bound) {
      return false;
    }
    if (req.req_seconds[t] > 0.0) {
      const double instance_seconds =
          corrected_runtime * std::max(jc.usage.usage_of(t), 1e-6);
      // Always grant the first job (an idle host beats a strict budget),
      // then never overshoot the requested seconds.
      if (sent_seconds > 0.0 &&
          sent_seconds + instance_seconds > req.req_seconds[t]) {
        return false;
      }
    }
    return true;
  }
};

[[noreturn]] void throw_unknown(const std::string& name,
                                const std::vector<std::string>& known) {
  std::string msg =
      std::string("unknown server-dispatch policy '") + name +
      "'; known policies:";
  for (const auto& k : known) msg += " " + k;
  throw std::invalid_argument(msg);
}

}  // namespace

void ServerPolicyRegistry::register_dispatch(std::string name,
                                             std::string description,
                                             DispatchFactory factory,
                                             std::vector<std::string> aliases) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& rec : dispatches_) {
    if (rec.info.name == name) {
      rec.info.description = std::move(description);
      rec.info.aliases = std::move(aliases);
      rec.factory = std::move(factory);
      return;
    }
  }
  dispatches_.push_back({{std::move(name), std::move(description),
                          std::move(aliases)},
                         std::move(factory)});
}

const ServerPolicyRegistry::DispatchRecord* ServerPolicyRegistry::find_dispatch(
    const std::string& name) const {
  for (const auto& rec : dispatches_) {
    if (rec.info.name == name) return &rec;
    for (const auto& a : rec.info.aliases) {
      if (a == name) return &rec;
    }
  }
  return nullptr;
}

std::shared_ptr<const DispatchPolicy> ServerPolicyRegistry::make_dispatch(
    const std::string& name, const PolicyConfig& cfg) const {
  const std::lock_guard<std::mutex> lock(mu_);
  if (const auto* rec = find_dispatch(name)) return rec->factory(cfg);
  std::vector<std::string> known;
  for (const auto& rec : dispatches_) known.push_back(rec.info.name);
  throw_unknown(name, known);
}

bool ServerPolicyRegistry::has_dispatch(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return find_dispatch(name) != nullptr;
}

std::vector<PolicyRegistryEntry> ServerPolicyRegistry::dispatch_entries()
    const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<PolicyRegistryEntry> out;
  out.reserve(dispatches_.size());
  for (const auto& rec : dispatches_) out.push_back(rec.info);
  return out;
}

ServerPolicyRegistry& server_policy_registry() {
  static ServerPolicyRegistry* reg = [] {
    auto* r = new ServerPolicyRegistry;
    // Strategies are stateless: construct each once and share.
    r->register_dispatch(
        "SD_PAPER", "the paper's fill loop; replication per scenario",
        [p = std::make_shared<const PaperDispatch>()](const PolicyConfig&) {
          return p;
        },
        {"paper"});
    r->register_dispatch(
        "SD_MOBILE", "no work off-wifi or on a low battery off AC",
        [p = std::make_shared<const MobileDispatch>()](const PolicyConfig&) {
          return p;
        },
        {"mobile"});
    r->register_dispatch(
        "SD_ADAPT_REPL", "replicas scale with observed host failure rate",
        [p = std::make_shared<const AdaptiveReplicationDispatch>()](
            const PolicyConfig&) { return p; },
        {"repl", "adaptive"});
    r->register_dispatch(
        "SD_DEADLINE_BUDGET",
        "strict deadline check, requested seconds as a hard budget",
        [p = std::make_shared<const DeadlineBudgetDispatch>()](
            const PolicyConfig&) { return p; },
        {"budget", "db"});
    return r;
  }();
  return *reg;
}

std::shared_ptr<const DispatchPolicy> make_dispatch_policy(
    const PolicyConfig& cfg) {
  const std::string name = cfg.dispatch_by_name.empty()
                               ? kDefaultDispatchName
                               : cfg.dispatch_by_name;
  return server_policy_registry().make_dispatch(name, cfg);
}

}  // namespace bce
