#pragma once

/// \file shard_worker.hpp
/// Shard execution: the loop that actually emulates a shard's hosts and
/// folds their metrics — shared between the supervisor's in-process mode
/// (n_workers == 0, no subprocesses: tests and single-threaded use) and the
/// `--bce-shard-worker` subprocess entry point (docs/fleet.md).
///
/// The loop is written so that a kill-and-resume run is bitwise identical
/// to an undisturbed one: hosts fold in fixed order, the checkpoint stores
/// the exact partial fold (doubles as raw bits), and a mid-host checkpoint
/// embeds a `.bcss` emulator frame whose restore is byte-exact (PR 6).

#include <cstdint>
#include <functional>
#include <optional>

#include "core/exit_codes.hpp"
#include "fleet/shard.hpp"

namespace bce {

// Worker process exit codes (docs/fleet.md): kWorkerExitProtocolError and
// kWorkerExitHarnessKill come from the repo-wide registry in
// core/exit_codes.hpp, distinct from the emulator CLI's savestate exit
// codes so a supervisor log is unambiguous.

/// Observation points in the shard loop. All optional; the in-process mode
/// typically passes none (harness faults are then inert, since a fault
/// without a kill hook has nothing to do).
struct ShardHooks {
  /// A host finished and was folded into the running accumulator.
  std::function<void(std::uint64_t hosts_done)> on_host_done;
  /// Checkpoint \p seq was written covering \p hosts_done complete hosts.
  std::function<void(std::uint64_t seq, std::uint64_t hosts_done)>
      on_checkpoint;
  /// The task's harness fault fired (kill / stall) at its checkpoint.
  std::function<void()> on_fault_kill;
  std::function<void()> on_fault_stall;
};

/// Execute one shard: emulate its hosts in order, fold each host's Metrics
/// into the running accumulator, write checkpoints per the task's settings,
/// and resume from the task's checkpoint file when `task.resume` is set
/// (a missing or unusable checkpoint silently falls back to a cold start —
/// the result is the same, just slower). Exceptions from the emulator
/// propagate with the shard/host index prepended.
ShardOutput run_shard(const ShardTask& task, const ShardHooks& hooks = {});

/// Subprocess entry: read one kTask frame from \p in_fd, run the shard
/// reporting heartbeat/checkpoint frames on \p out_fd, then write a kResult
/// frame. Returns the process exit code (0, or kWorkerExit*). Kill faults
/// _exit(kWorkerExitHarnessKill) directly; stall faults never return.
int run_shard_worker(int in_fd, int out_fd);

/// Intercept for main(): when argv[1] selects the hidden worker mode
/// (`--bce-shard-worker`, or the spelled-out `shard-worker`), run the
/// worker over stdin/stdout and return its exit code; otherwise nullopt.
/// Every binary that calls run_sharded with subprocess workers must call
/// this first thing in main() — the supervisor re-execs the current
/// executable (docs/fleet.md).
std::optional<int> maybe_run_shard_worker(int argc, char** argv);

}  // namespace bce
