#include "fleet/shard.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace bce {

namespace {

// A frame longer than this is a corrupt stream, not a real payload (the
// largest legitimate frame is a shard result with per-host figures).
constexpr std::uint32_t kMaxFrameLen = 1u << 30;

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t read_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

std::uint64_t read_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

void save_policy(StateWriter& w, const PolicyConfig& p) {
  w.put_u32("task.sched", static_cast<std::uint32_t>(p.sched));
  w.put_u32("task.fetch", static_cast<std::uint32_t>(p.fetch));
  w.put_str("task.sched_by_name", p.sched_by_name);
  w.put_str("task.fetch_by_name", p.fetch_by_name);
  w.put_u32("task.endangered_order",
            static_cast<std::uint32_t>(p.endangered_order));
  w.put_u32("task.transfer_order",
            static_cast<std::uint32_t>(p.transfer_order));
  w.put_f64("task.rec_half_life", p.rec_half_life);
  w.put_bool("task.server_deadline_check", p.server_deadline_check);
  w.put_bool("task.fetch_deadline_suppression", p.fetch_deadline_suppression);
  w.put_bool("task.use_duration_correction", p.use_duration_correction);
}

PolicyConfig load_policy(StateReader& r) {
  PolicyConfig p;
  p.sched = static_cast<JobSchedPolicy>(r.get_u32("task.sched"));
  p.fetch = static_cast<FetchPolicy>(r.get_u32("task.fetch"));
  p.sched_by_name = r.get_str("task.sched_by_name");
  p.fetch_by_name = r.get_str("task.fetch_by_name");
  p.endangered_order =
      static_cast<EndangeredOrder>(r.get_u32("task.endangered_order"));
  p.transfer_order =
      static_cast<TransferOrder>(r.get_u32("task.transfer_order"));
  p.rec_half_life = r.get_f64("task.rec_half_life");
  p.server_deadline_check = r.get_bool("task.server_deadline_check");
  p.fetch_deadline_suppression = r.get_bool("task.fetch_deadline_suppression");
  p.use_duration_correction = r.get_bool("task.use_duration_correction");
  return p;
}

void save_population(StateWriter& w, const PopulationParams& p) {
  w.put_i64("task.pop.min_cpus", p.min_cpus);
  w.put_i64("task.pop.max_cpus", p.max_cpus);
  w.put_f64("task.pop.cpu_flops_lo", p.cpu_flops_lo);
  w.put_f64("task.pop.cpu_flops_hi", p.cpu_flops_hi);
  w.put_f64("task.pop.gpu_probability", p.gpu_probability);
  w.put_i64("task.pop.max_gpus", p.max_gpus);
  w.put_f64("task.pop.gpu_speedup_lo", p.gpu_speedup_lo);
  w.put_f64("task.pop.gpu_speedup_hi", p.gpu_speedup_hi);
  w.put_i64("task.pop.min_projects", p.min_projects);
  w.put_i64("task.pop.max_projects", p.max_projects);
  w.put_f64("task.pop.job_seconds_lo", p.job_seconds_lo);
  w.put_f64("task.pop.job_seconds_hi", p.job_seconds_hi);
  w.put_f64("task.pop.latency_factor_lo", p.latency_factor_lo);
  w.put_f64("task.pop.latency_factor_hi", p.latency_factor_hi);
  w.put_f64("task.pop.intermittent_probability", p.intermittent_probability);
  w.put_f64("task.pop.mean_on_lo", p.mean_on_lo);
  w.put_f64("task.pop.mean_on_hi", p.mean_on_hi);
  w.put_f64("task.pop.duration", p.duration);
}

PopulationParams load_population(StateReader& r) {
  PopulationParams p;
  p.min_cpus = static_cast<int>(r.get_i64("task.pop.min_cpus"));
  p.max_cpus = static_cast<int>(r.get_i64("task.pop.max_cpus"));
  p.cpu_flops_lo = r.get_f64("task.pop.cpu_flops_lo");
  p.cpu_flops_hi = r.get_f64("task.pop.cpu_flops_hi");
  p.gpu_probability = r.get_f64("task.pop.gpu_probability");
  p.max_gpus = static_cast<int>(r.get_i64("task.pop.max_gpus"));
  p.gpu_speedup_lo = r.get_f64("task.pop.gpu_speedup_lo");
  p.gpu_speedup_hi = r.get_f64("task.pop.gpu_speedup_hi");
  p.min_projects = static_cast<int>(r.get_i64("task.pop.min_projects"));
  p.max_projects = static_cast<int>(r.get_i64("task.pop.max_projects"));
  p.job_seconds_lo = r.get_f64("task.pop.job_seconds_lo");
  p.job_seconds_hi = r.get_f64("task.pop.job_seconds_hi");
  p.latency_factor_lo = r.get_f64("task.pop.latency_factor_lo");
  p.latency_factor_hi = r.get_f64("task.pop.latency_factor_hi");
  p.intermittent_probability = r.get_f64("task.pop.intermittent_probability");
  p.mean_on_lo = r.get_f64("task.pop.mean_on_lo");
  p.mean_on_hi = r.get_f64("task.pop.mean_on_hi");
  p.duration = r.get_f64("task.pop.duration");
  return p;
}

void save_host_figures(StateWriter& w, const std::vector<HostFigures>& v) {
  w.put_count("out.host_figures", v.size());
  for (const HostFigures& f : v) {
    w.put_f64("out.hf.score", f.score);
    w.put_f64("out.hf.idle", f.idle);
    w.put_f64("out.hf.wasted", f.wasted);
    w.put_f64("out.hf.share_violation", f.share_violation);
    w.put_f64("out.hf.monotony", f.monotony);
    w.put_f64("out.hf.rpcs_per_job", f.rpcs_per_job);
  }
}

std::vector<HostFigures> load_host_figures(StateReader& r) {
  const std::uint64_t n = r.get_count("out.host_figures");
  std::vector<HostFigures> v(n);
  for (HostFigures& f : v) {
    f.score = r.get_f64("out.hf.score");
    f.idle = r.get_f64("out.hf.idle");
    f.wasted = r.get_f64("out.hf.wasted");
    f.share_violation = r.get_f64("out.hf.share_violation");
    f.monotony = r.get_f64("out.hf.monotony");
    f.rpcs_per_job = r.get_f64("out.hf.rpcs_per_job");
  }
  return v;
}

}  // namespace

// ---- harness fault injection ---------------------------------------------

HarnessFaultPlan parse_harness_faults(const std::string& spec) {
  HarnessFaultPlan plan;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;

    const std::size_t colon = entry.find(':');
    const std::size_t at = entry.find('@');
    if (colon == std::string::npos || at == std::string::npos || at < colon) {
      throw std::invalid_argument("harness fault \"" + entry +
                                  "\": expected kind:shard@checkpoint");
    }
    const std::string kind = entry.substr(0, colon);
    HarnessFault f;
    if (kind == "kill") {
      f.kind = HarnessFaultKind::kKill;
    } else if (kind == "stall") {
      f.kind = HarnessFaultKind::kStall;
    } else {
      throw std::invalid_argument("harness fault kind \"" + kind +
                                  "\": expected kill or stall");
    }
    try {
      f.shard = static_cast<std::uint32_t>(
          std::stoul(entry.substr(colon + 1, at - colon - 1)));
      f.at_checkpoint = std::stoull(entry.substr(at + 1));
    } catch (const std::exception&) {
      throw std::invalid_argument("harness fault \"" + entry +
                                  "\": bad shard or checkpoint number");
    }
    if (f.at_checkpoint == 0) {
      throw std::invalid_argument("harness fault \"" + entry +
                                  "\": checkpoints are numbered from 1");
    }
    plan.faults.push_back(f);
  }
  return plan;
}

HarnessFault fault_for(const HarnessFaultPlan& plan, std::uint32_t shard) {
  for (const HarnessFault& f : plan.faults) {
    if (f.shard == shard) return f;
  }
  return {};
}

// ---- pipe protocol --------------------------------------------------------

namespace {

bool write_all(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// Read exactly n bytes. 1 = ok, 0 = clean EOF before the first byte,
/// -1 = error or mid-read EOF.
int read_all(int fd, std::uint8_t* data, std::size_t n) {
  bool any = false;
  while (n > 0) {
    const ssize_t r = ::read(fd, data, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (r == 0) return any ? -1 : 0;
    any = true;
    data += r;
    n -= static_cast<std::size_t>(r);
  }
  return 1;
}

}  // namespace

bool write_frame(int fd, ShardMsg type,
                 const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> header;
  header.reserve(5);
  append_u32(header, static_cast<std::uint32_t>(payload.size()));
  header.push_back(static_cast<std::uint8_t>(type));
  return write_all(fd, header.data(), header.size()) &&
         write_all(fd, payload.data(), payload.size());
}

std::optional<ShardFrame> read_frame(int fd) {
  std::uint8_t header[5];
  const int rc = read_all(fd, header, sizeof header);
  if (rc == 0) return std::nullopt;
  if (rc < 0) throw std::runtime_error("shard pipe: truncated frame header");
  const std::uint32_t len = read_u32(header);
  if (len > kMaxFrameLen) {
    throw std::runtime_error("shard pipe: oversized frame (corrupt stream)");
  }
  ShardFrame f;
  f.type = static_cast<ShardMsg>(header[4]);
  f.payload.resize(len);
  if (len > 0 && read_all(fd, f.payload.data(), len) != 1) {
    throw std::runtime_error("shard pipe: truncated frame payload");
  }
  return f;
}

void FrameBuffer::append(const std::uint8_t* data, std::size_t n) {
  buf_.insert(buf_.end(), data, data + n);
}

bool FrameBuffer::next(ShardFrame& out) {
  if (buf_.size() - pos_ < 5) return false;
  const std::uint32_t len = read_u32(buf_.data() + pos_);
  if (len > kMaxFrameLen) {
    throw std::runtime_error("shard pipe: oversized frame (corrupt stream)");
  }
  if (buf_.size() - pos_ < 5 + static_cast<std::size_t>(len)) return false;
  out.type = static_cast<ShardMsg>(buf_[pos_ + 4]);
  out.payload.assign(buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + 5),
                     buf_.begin() +
                         static_cast<std::ptrdiff_t>(pos_ + 5 + len));
  pos_ += 5 + len;
  // Reclaim consumed bytes once they dominate the buffer.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  return true;
}

// ---- shard task -----------------------------------------------------------

std::vector<std::uint8_t> serialize_shard_task(const ShardTask& task) {
  StateWriter w;
  w.put_u32("task.shard_index", task.shard_index);
  w.put_str("task.label", task.label);
  save_policy(w, task.policy);
  w.put_count("task.scenarios", task.scenario_texts.size());
  for (const std::string& text : task.scenario_texts) {
    w.put_str("task.scenario", text);
  }
  w.put_count("task.project_maps", task.project_map.size());
  for (const std::vector<std::uint32_t>& map : task.project_map) {
    w.put_count("task.project_map", map.size());
    for (const std::uint32_t p : map) w.put_u32("task.pm", p);
  }
  w.put_u32("task.n_merge_projects", task.n_merge_projects);
  save_population(w, task.population);
  w.put_u64("task.population_seed", task.population_seed);
  w.put_u64("task.first_host", task.first_host);
  w.put_u64("task.n_population_hosts", task.n_population_hosts);
  w.put_bool("task.include_host_figures", task.include_host_figures);
  w.put_str("task.checkpoint_path", task.checkpoint_path);
  w.put_u64("task.checkpoint_every_hosts", task.checkpoint_every_hosts);
  w.put_f64("task.checkpoint_sim_period", task.checkpoint_sim_period);
  w.put_bool("task.resume", task.resume);
  w.put_u32("task.fault", static_cast<std::uint32_t>(task.fault));
  w.put_u64("task.fault_checkpoint", task.fault_checkpoint);
  return w.payload();
}

ShardTask deserialize_shard_task(const std::vector<std::uint8_t>& bytes) {
  StateReader r(bytes);
  ShardTask task;
  task.shard_index = r.get_u32("task.shard_index");
  task.label = r.get_str("task.label");
  task.policy = load_policy(r);
  task.scenario_texts.resize(r.get_count("task.scenarios"));
  for (std::string& text : task.scenario_texts) {
    text = r.get_str("task.scenario");
  }
  task.project_map.resize(r.get_count("task.project_maps"));
  for (std::vector<std::uint32_t>& map : task.project_map) {
    map.resize(r.get_count("task.project_map"));
    for (std::uint32_t& p : map) p = r.get_u32("task.pm");
  }
  task.n_merge_projects = r.get_u32("task.n_merge_projects");
  task.population = load_population(r);
  task.population_seed = r.get_u64("task.population_seed");
  task.first_host = r.get_u64("task.first_host");
  task.n_population_hosts = r.get_u64("task.n_population_hosts");
  task.include_host_figures = r.get_bool("task.include_host_figures");
  task.checkpoint_path = r.get_str("task.checkpoint_path");
  task.checkpoint_every_hosts = r.get_u64("task.checkpoint_every_hosts");
  task.checkpoint_sim_period = r.get_f64("task.checkpoint_sim_period");
  task.resume = r.get_bool("task.resume");
  task.fault = static_cast<HarnessFaultKind>(r.get_u32("task.fault"));
  task.fault_checkpoint = r.get_u64("task.fault_checkpoint");
  if (!r.at_end()) {
    throw SavestateError(SavestateErrc::kFieldMismatch,
                         "trailing bytes after the shard task");
  }
  return task;
}

std::uint64_t shard_task_fingerprint(const ShardTask& task) {
  // Normalize out the knobs a retry legitimately changes: the same work
  // keeps the same fingerprint across resume attempts and fault plans.
  ShardTask norm = task;
  norm.resume = false;
  norm.fault = HarnessFaultKind::kNone;
  norm.fault_checkpoint = 0;
  norm.checkpoint_path.clear();
  const std::vector<std::uint8_t> bytes = serialize_shard_task(norm);
  return fnv1a64_bytes(bytes.data(), bytes.size());
}

// ---- shard output ---------------------------------------------------------

std::vector<std::uint8_t> serialize_shard_output(const ShardOutput& out) {
  StateWriter w;
  save_metrics(w, out.merged);
  w.put_u64("out.hosts_done", out.hosts_done);
  w.put_u64("out.checkpoints_written", out.checkpoints_written);
  save_host_figures(w, out.host_figures);
  return w.payload();
}

ShardOutput deserialize_shard_output(const std::vector<std::uint8_t>& bytes) {
  StateReader r(bytes);
  ShardOutput out;
  out.merged = load_metrics(r);
  out.hosts_done = r.get_u64("out.hosts_done");
  out.checkpoints_written = r.get_u64("out.checkpoints_written");
  out.host_figures = load_host_figures(r);
  if (!r.at_end()) {
    throw SavestateError(SavestateErrc::kFieldMismatch,
                         "trailing bytes after the shard output");
  }
  return out;
}

// ---- shard checkpoints ----------------------------------------------------

void write_shard_checkpoint(const std::string& path, const ShardTask& task,
                            const ShardCheckpoint& cp) {
  StateWriter w;
  w.put_u64("cp.hosts_done", cp.hosts_done);
  w.put_u64("cp.seq", cp.seq);
  save_metrics(w, cp.merged);
  save_host_figures(w, cp.host_figures);
  w.put_bytes("cp.frame", cp.frame);
  const std::vector<std::uint8_t>& payload = w.payload();

  std::vector<std::uint8_t> file;
  file.reserve(28 + payload.size() + 8);
  file.insert(file.end(), kShardCheckpointMagic, kShardCheckpointMagic + 8);
  append_u32(file, kShardCheckpointVersion);
  append_u64(file, shard_task_fingerprint(task));
  append_u64(file, payload.size());
  file.insert(file.end(), payload.begin(), payload.end());
  append_u64(file, fnv1a64_bytes(payload.data(), payload.size()));

  // Write-to-tmp + rename so a worker killed mid-write leaves the previous
  // checkpoint intact instead of a torn file.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw SavestateError(SavestateErrc::kIo, "cannot open " + tmp);
  }
  const std::size_t n = std::fwrite(file.data(), 1, file.size(), f);
  const bool ok = n == file.size() && std::fclose(f) == 0;
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SavestateError(SavestateErrc::kIo, "cannot write " + path);
  }
}

ShardCheckpoint read_shard_checkpoint(const std::string& path,
                                      const ShardTask& task) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw SavestateError(SavestateErrc::kIo, "cannot open " + path);
  }
  std::vector<std::uint8_t> file;
  std::uint8_t chunk[4096];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
    file.insert(file.end(), chunk, chunk + n);
  }
  std::fclose(f);

  constexpr std::size_t kHeaderSize = 8 + 4 + 8 + 8;
  if (file.size() < kHeaderSize) {
    throw SavestateError(SavestateErrc::kTruncated,
                         "file shorter than the checkpoint header");
  }
  if (std::memcmp(file.data(), kShardCheckpointMagic, 8) != 0) {
    throw SavestateError(SavestateErrc::kBadMagic,
                         "not a shard checkpoint (bad magic)");
  }
  const std::uint32_t version = read_u32(file.data() + 8);
  if (version != kShardCheckpointVersion) {
    throw SavestateError(
        SavestateErrc::kBadVersion,
        "checkpoint version " + std::to_string(version) +
            ", this build reads " + std::to_string(kShardCheckpointVersion));
  }
  const std::uint64_t fp = read_u64(file.data() + 12);
  if (fp != shard_task_fingerprint(task)) {
    throw SavestateError(SavestateErrc::kScenarioMismatch,
                         "checkpoint written for a different shard task");
  }
  const std::uint64_t payload_len = read_u64(file.data() + 20);
  if (file.size() < kHeaderSize + payload_len + 8) {
    throw SavestateError(SavestateErrc::kTruncated,
                         "file shorter than its header claims");
  }
  const std::uint8_t* payload = file.data() + kHeaderSize;
  if (fnv1a64_bytes(payload, payload_len) != read_u64(payload + payload_len)) {
    throw SavestateError(SavestateErrc::kCorrupt,
                         "payload checksum mismatch");
  }

  StateReader r(std::vector<std::uint8_t>(payload, payload + payload_len));
  ShardCheckpoint cp;
  cp.hosts_done = r.get_u64("cp.hosts_done");
  cp.seq = r.get_u64("cp.seq");
  cp.merged = load_metrics(r);
  cp.host_figures = load_host_figures(r);
  cp.frame = r.get_bytes("cp.frame");
  if (!r.at_end()) {
    throw SavestateError(SavestateErrc::kFieldMismatch,
                         "trailing bytes after the checkpoint payload");
  }
  return cp;
}

}  // namespace bce
