#pragma once

/// \file fleet.hpp
/// Cross-host resource-share enforcement — the §6.2 extension: "increase
/// system throughput by enforcing resource share across a volunteer's
/// hosts, rather than for each host separately. For example, if a
/// particular host is well-suited to a particular project, it could run
/// only that project, and the difference could be made up on other hosts."
///
/// A fleet is a set of hosts plus one fleet-level project list with global
/// shares. Two enforcement modes:
///
///  * **Per-host** (BOINC's behaviour): every host applies the global
///    shares locally.
///  * **Cross-host**: a max-min-fair allocation over (host x processor
///    type) capacity buckets (core/maxmin) assigns each project a share of
///    each host, concentrating projects on the hosts best suited to them;
///    each host then runs with those derived local shares.
///
/// Each host's emulation is independent, so the fleet runs on the
/// controller's thread pool.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/emulator.hpp"
#include "model/scenario.hpp"

namespace bce {

struct FleetHostSpec {
  std::string name = "host";
  HostInfo host;
  Preferences prefs;
  HostAvailabilitySpec availability;
  std::uint64_t seed = 1;
};

struct FleetConfig {
  std::vector<FleetHostSpec> hosts;

  /// Fleet-level projects; `resource_share` here is the *global* share.
  /// Job classes a given host cannot run (e.g. GPU classes on a CPU-only
  /// box) are filtered out per host; a project with no runnable classes on
  /// a host is simply not attached there.
  std::vector<ProjectConfig> projects;

  Duration duration = 10.0 * kSecondsPerDay;
};

enum class FleetEnforcement {
  kPerHost,    ///< every host uses the global shares (BOINC today)
  kCrossHost,  ///< shares derived from a fleet-wide max-min allocation
};

struct FleetResult {
  /// Per-host emulation results, in fleet host order.
  std::vector<EmulationResult> per_host;

  /// Shares each host actually ran with: assigned_shares[h][p] indexed by
  /// *fleet* project index; 0 when the project is not attached to host h.
  std::vector<std::vector<double>> assigned_shares;

  /// Fleet-wide per-project usage fractions (peak-FLOPS-weighted).
  std::vector<double> usage_fraction;

  /// RMS over projects of (fleet usage fraction − global share fraction).
  double share_violation = 0.0;

  double total_used_flops = 0.0;
  double total_available_flops = 0.0;

  [[nodiscard]] double idle_fraction() const {
    if (total_available_flops <= 0.0) return 0.0;
    return clamp(1.0 - total_used_flops / total_available_flops, 0.0, 1.0);
  }
};

/// Build the per-host scenario for host \p h of \p config with the given
/// per-project shares (fleet project indexing; non-positive share or no
/// runnable job class = not attached). Exposed for tests.
Scenario fleet_host_scenario(const FleetConfig& config, std::size_t h,
                             const std::vector<double>& shares);

/// Compute the cross-host share assignment (fleet project indexing):
/// result[h][p] is the share of host h's capacity assigned to project p.
/// Exposed for tests.
std::vector<std::vector<double>> cross_host_shares(const FleetConfig& config);

/// Run the whole fleet under the given enforcement mode.
FleetResult run_fleet(const FleetConfig& config, const PolicyConfig& policy,
                      FleetEnforcement mode, unsigned n_threads = 0);

}  // namespace bce
