#pragma once

/// \file supervisor.hpp
/// The sharded fleet supervisor (docs/fleet.md): owns the lifecycle of the
/// worker subprocesses that execute ShardTasks — launch, liveness
/// heartbeats, per-shard deadlines, crash/hang detection, retry with
/// exponential backoff, checkpoint-resume, and graceful degradation.
///
/// Supervision state machine per shard:
///
///   pending --launch--> running --result--> done
///      ^                   |
///      |   crash / hang / deadline, retries left (backoff, resume=true)
///      +-------------------+
///                          |  retries exhausted
///                          +--> lost (partial_ok)  or  ShardFailedError
///                          |  stop flag raised
///                          +--> interrupted
///
/// Determinism: workers fold their hosts sequentially in fixed order; the
/// supervisor folds completed shard outputs in shard-index order at the
/// end, regardless of completion order. Combined with checkpoints that
/// store the exact partial fold, a killed-and-resumed run produces merged
/// figures of merit byte-identical to an undisturbed run (pinned by
/// tests/test_supervisor.cpp).

#include <csignal>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/report.hpp"
#include "core/exit_codes.hpp"
#include "fleet/fleet.hpp"
#include "fleet/shard.hpp"

namespace bce {

// Process exit codes for drivers built on the supervisor (docs/fleet.md):
// kFleetExitPartial (--partial-ok, hosts lost) and kFleetExitShardFailed
// (retries exhausted) come from the repo-wide registry in
// core/exit_codes.hpp. Partial is distinct from outright failure so
// scripts can accept degraded-but-usable results explicitly.

enum class ShardState : std::uint8_t {
  kPending,      ///< not yet launched (or waiting out a retry backoff)
  kRunning,      ///< worker alive, heartbeats current
  kDone,         ///< result received and folded
  kLost,         ///< retries exhausted under --partial-ok
  kInterrupted,  ///< stop flag raised before the shard finished
};

const char* shard_state_name(ShardState s);

/// Final status of one shard, as reported in the coverage table.
struct ShardReport {
  std::uint32_t index = 0;
  std::string label;
  ShardState state = ShardState::kPending;
  int attempts = 0;
  std::uint64_t n_hosts = 0;
  /// Hosts observed complete (final for done shards; last checkpoint /
  /// heartbeat progress for lost ones — informational, NOT merged).
  std::uint64_t hosts_done = 0;
  std::uint64_t checkpoints = 0;
  std::string error;  ///< last failure reason, empty for done shards
};

/// Merged outcome of a sharded run with explicit coverage accounting:
/// lost shards contribute *zero* to the merged figures, and every one of
/// their hosts counts in hosts_lost — the caller always knows exactly
/// which hosts the numbers cover.
struct ShardedResult {
  Metrics merged;
  /// Global host order when tasks set include_host_figures; hosts of
  /// lost/interrupted shards keep default-initialized rows.
  std::vector<HostFigures> host_figures;
  std::vector<ShardReport> shards;
  std::uint64_t hosts_total = 0;
  std::uint64_t hosts_done = 0;
  std::uint64_t hosts_lost = 0;

  [[nodiscard]] bool complete() const { return hosts_done == hosts_total; }
  /// Per-shard status table (the coverage report, docs/fleet.md).
  [[nodiscard]] Table coverage_table() const;
};

/// Thrown when a shard exhausts its retries and partial results were not
/// requested. Carries the failing shard's report.
class ShardFailedError : public std::runtime_error {
 public:
  ShardFailedError(ShardReport report, const std::string& what)
      : std::runtime_error(what), report_(std::move(report)) {}
  [[nodiscard]] const ShardReport& report() const { return report_; }

 private:
  ShardReport report_;
};

struct SupervisorConfig {
  /// Worker subprocesses running concurrently. 0 = in-process: shards run
  /// sequentially in this process via run_shard (no supervision, single
  /// attempt each) — the reference path the subprocess path must match
  /// byte-for-byte.
  unsigned n_workers = 0;

  /// Worker executable; empty = this executable (/proc/self/exe). The
  /// binary must call maybe_run_shard_worker first thing in main().
  std::string worker_exe;
  std::string worker_arg = "--bce-shard-worker";

  /// Seconds without a heartbeat/checkpoint/result frame before a worker
  /// counts as hung and is killed (`--heartbeat-timeout`).
  double heartbeat_timeout = 30.0;
  /// Wall-clock cap per shard attempt, seconds; 0 = none
  /// (`--shard-deadline`).
  double shard_deadline = 0.0;

  /// Retries after the first attempt (`--retries`); retry n waits
  /// min(backoff_initial * 2^n, backoff_max) seconds and resumes from the
  /// shard's last checkpoint.
  int max_retries = 2;
  double backoff_initial = 0.25;
  double backoff_max = 8.0;

  /// Degrade instead of aborting when a shard exhausts retries
  /// (`--partial-ok`): mark it lost, keep going, report coverage.
  bool partial_ok = false;

  /// Directory for per-shard checkpoint files (shard-<index>.bcsp); empty
  /// disables checkpointing (a retried shard then redoes all its work).
  std::string checkpoint_dir;

  /// Deterministic harness faults (`--harness-faults`), applied on each
  /// shard's first attempt only.
  HarnessFaultPlan harness_faults;

  /// When non-null and set (e.g. by a SIGINT handler), the supervisor
  /// kills running workers, marks unfinished shards interrupted, and
  /// returns the partial result.
  const volatile std::sig_atomic_t* stop_flag = nullptr;
};

/// Execute \p tasks under supervision and fold the results in shard-index
/// order. Throws ShardFailedError when a shard is lost without partial_ok;
/// std::runtime_error on launch-environment failures.
ShardedResult run_sharded(std::vector<ShardTask> tasks,
                          const SupervisorConfig& config = {});

// ---- task builders --------------------------------------------------------

/// Shard a Monte-Carlo population run: hosts [0, n_hosts) drawn from
/// \p params, split into shards of \p hosts_per_shard.
std::vector<ShardTask> make_population_shard_tasks(
    const PopulationParams& params, std::uint64_t n_hosts, std::uint64_t seed,
    const PolicyConfig& policy, std::uint64_t hosts_per_shard,
    bool include_host_figures = false);

/// Shard \p n_hosts copies of one scenario, host i reseeded to
/// scenario.seed + i (replicate studies, `bce fleet <scenario>`).
std::vector<ShardTask> make_replicated_shard_tasks(
    const Scenario& scenario, const PolicyConfig& policy,
    std::uint64_t n_hosts, std::uint64_t hosts_per_shard);

/// Shard a fleet run (fleet.hpp) under the given enforcement mode. Each
/// host's task carries the project remap into fleet indexing, so the
/// merged usage_fraction is fleet-indexed.
std::vector<ShardTask> make_fleet_shard_tasks(const FleetConfig& config,
                                              const PolicyConfig& policy,
                                              FleetEnforcement mode,
                                              std::uint64_t hosts_per_shard);

/// Sharded counterpart of run_fleet: same fleet-level figures, but
/// streamed through Metrics::merge instead of per-host result rows.
struct ShardedFleetResult {
  ShardedResult sharded;
  /// Shares each host ran with (fleet project indexing).
  std::vector<std::vector<double>> assigned_shares;
  /// Fleet-wide per-project usage fractions over *completed* hosts.
  std::vector<double> usage_fraction;
  /// RMS violation vs the global shares, recomputed from merged usage.
  double share_violation = 0.0;

  [[nodiscard]] double idle_fraction() const {
    return sharded.merged.idle_fraction();
  }
};

ShardedFleetResult run_sharded_fleet(const FleetConfig& config,
                                     const PolicyConfig& policy,
                                     FleetEnforcement mode,
                                     const SupervisorConfig& sup = {},
                                     std::uint64_t hosts_per_shard = 2);

/// Every fleet CLI flag and supervisor/worker exit code that docs/fleet.md
/// must document — the `fleet-docs` lint check's inventory (tools/bce_lint).
std::vector<std::string> fleet_doc_tokens();

}  // namespace bce
