#include "fleet/fleet.hpp"

#include <cassert>
#include <cmath>

#include "core/controller.hpp"
#include "core/maxmin.hpp"

namespace bce {

namespace {

/// Can this host run this job class at all?
bool runnable_on(const HostInfo& host, const JobClass& jc) {
  const auto& u = jc.usage;
  if (u.avg_ncpus > host.count[ProcType::kCpu]) return false;
  if (u.uses_gpu()) {
    if (host.count[u.coproc] == 0) return false;
    if (u.coproc_usage > host.count[u.coproc]) return false;
  }
  return true;
}

/// Effective capacity of one (host, type) bucket: peak FLOPS de-rated by
/// the host's expected availability.
double bucket_capacity(const FleetHostSpec& hs, ProcType t) {
  double cap = hs.host.peak_flops(t);
  cap *= hs.availability.host_on.expected_on_fraction();
  if (is_gpu(t)) cap *= hs.availability.gpu_allowed.expected_on_fraction();
  return cap;
}

}  // namespace

Scenario fleet_host_scenario(const FleetConfig& config, std::size_t h,
                             const std::vector<double>& shares) {
  assert(h < config.hosts.size());
  assert(shares.size() == config.projects.size());
  const FleetHostSpec& hs = config.hosts[h];

  Scenario sc;
  sc.name = hs.name;
  sc.host = hs.host;
  sc.prefs = hs.prefs;
  sc.availability = hs.availability;
  sc.duration = config.duration;
  sc.seed = hs.seed;

  for (std::size_t p = 0; p < config.projects.size(); ++p) {
    if (shares[p] <= 0.0) continue;
    ProjectConfig pc = config.projects[p];
    pc.resource_share = shares[p];
    // Keep only job classes this host can run.
    std::vector<JobClass> usable;
    for (const auto& jc : pc.job_classes) {
      if (runnable_on(hs.host, jc)) usable.push_back(jc);
    }
    if (usable.empty()) continue;
    pc.job_classes = std::move(usable);
    sc.projects.push_back(std::move(pc));
  }
  return sc;
}

std::vector<std::vector<double>> cross_host_shares(const FleetConfig& config) {
  const std::size_t nh = config.hosts.size();
  const std::size_t np = config.projects.size();

  // Buckets: (host, type) pairs with non-zero capacity.
  struct Bucket {
    std::size_t host;
    ProcType type;
  };
  std::vector<Bucket> buckets;
  MaxMinProblem prob;
  for (std::size_t h = 0; h < nh; ++h) {
    for (const auto t : kAllProcTypes) {
      const double cap = bucket_capacity(config.hosts[h], t);
      if (cap > 0.0) {
        buckets.push_back(Bucket{h, t});
        prob.capacity.push_back(cap);
      }
    }
  }

  for (const auto& proj : config.projects) {
    MaxMinProblem::Consumer c;
    c.share = proj.resource_share;
    c.can_use.resize(buckets.size(), false);
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      const auto& hs = config.hosts[buckets[b].host];
      for (const auto& jc : proj.job_classes) {
        if (!runnable_on(hs.host, jc)) continue;
        if (jc.usage.primary_type() == buckets[b].type) {
          c.can_use[b] = true;
          break;
        }
      }
    }
    prob.consumers.push_back(std::move(c));
  }

  const MaxMinSolution sol = maxmin_allocate(prob);

  // Per-host share for project p = its allocated fraction of the host's
  // capacity (summed over the host's buckets).
  std::vector<std::vector<double>> shares(nh, std::vector<double>(np, 0.0));
  for (std::size_t p = 0; p < np; ++p) {
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      shares[buckets[b].host][p] += sol.alloc[p][b];
    }
  }
  // Normalize each host's shares so the numbers stay human-readable
  // (only ratios matter); drop negligible slivers.
  for (std::size_t h = 0; h < nh; ++h) {
    double total = 0.0;
    for (const double s : shares[h]) total += s;
    if (total <= 0.0) continue;
    for (double& s : shares[h]) {
      s = s / total * 100.0;
      if (s < 1e-3) s = 0.0;
    }
  }
  return shares;
}

FleetResult run_fleet(const FleetConfig& config, const PolicyConfig& policy,
                      FleetEnforcement mode, unsigned n_threads) {
  const std::size_t nh = config.hosts.size();
  const std::size_t np = config.projects.size();

  std::vector<std::vector<double>> shares;
  if (mode == FleetEnforcement::kCrossHost) {
    shares = cross_host_shares(config);
  } else {
    std::vector<double> global(np);
    for (std::size_t p = 0; p < np; ++p) {
      global[p] = config.projects[p].resource_share;
    }
    shares.assign(nh, global);
  }

  // Build per-host scenarios; remember the fleet index of each attached
  // project so results can be folded back.
  std::vector<RunSpec> specs;
  std::vector<std::vector<std::size_t>> attach_map(nh);
  for (std::size_t h = 0; h < nh; ++h) {
    const Scenario sc = fleet_host_scenario(config, h, shares[h]);
    for (const auto& pc : sc.projects) {
      for (std::size_t p = 0; p < np; ++p) {
        if (config.projects[p].name == pc.name) {
          attach_map[h].push_back(p);
          break;
        }
      }
    }
    RunSpec spec;
    spec.label = config.hosts[h].name;
    spec.scenario = sc;
    spec.options.policy = policy;
    specs.push_back(std::move(spec));
  }

  auto batch = run_batch(specs, n_threads);

  FleetResult out;
  out.assigned_shares = shares;
  out.usage_fraction.assign(np, 0.0);
  std::vector<double> used_per_project(np, 0.0);
  for (std::size_t h = 0; h < nh; ++h) {
    EmulationResult& r = batch[h].result;
    out.total_used_flops += r.metrics.used_flops;
    out.total_available_flops += r.metrics.available_flops;
    for (std::size_t i = 0; i < attach_map[h].size(); ++i) {
      used_per_project[attach_map[h][i]] +=
          r.metrics.usage_fraction[i] * r.metrics.used_flops;
    }
    out.per_host.push_back(std::move(r));
  }

  double global_total = 0.0;
  for (const auto& p : config.projects) global_total += p.resource_share;
  if (out.total_used_flops > 0.0 && global_total > 0.0) {
    double sq = 0.0;
    for (std::size_t p = 0; p < np; ++p) {
      out.usage_fraction[p] = used_per_project[p] / out.total_used_flops;
      const double d = out.usage_fraction[p] -
                       config.projects[p].resource_share / global_total;
      sq += d * d;
    }
    out.share_violation = std::sqrt(sq / static_cast<double>(np));
  }
  return out;
}

}  // namespace bce
