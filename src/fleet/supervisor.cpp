#include "fleet/supervisor.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstring>

#include "core/scenario_io.hpp"
#include "fleet/shard_worker.hpp"

namespace bce {

const char* shard_state_name(ShardState s) {
  switch (s) {
    case ShardState::kPending: return "pending";
    case ShardState::kRunning: return "running";
    case ShardState::kDone: return "done";
    case ShardState::kLost: return "lost";
    case ShardState::kInterrupted: return "interrupted";
  }
  return "?";
}

Table ShardedResult::coverage_table() const {
  Table t({"shard", "label", "state", "attempts", "hosts", "done",
           "checkpoints"});
  for (const ShardReport& s : shards) {
    t.add_row({std::to_string(s.index), s.label, shard_state_name(s.state),
               std::to_string(s.attempts), std::to_string(s.n_hosts),
               std::to_string(s.hosts_done), std::to_string(s.checkpoints)});
  }
  return t;
}

namespace {

double mono_now() {
  timespec ts{};
  // bce-lint: allow(determinism): retry pacing only, never in results
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

std::uint64_t le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

std::string self_exe() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) {
    throw std::runtime_error("supervisor: cannot resolve /proc/self/exe");
  }
  return {buf, static_cast<std::size_t>(n)};
}

/// Supervisor-side view of one shard across its attempts.
struct Slot {
  ShardTask task;
  ShardState state = ShardState::kPending;
  int attempts = 0;
  double eligible_at = 0.0;  ///< mono_now() before which a retry waits
  std::string error;

  // Live-attempt state (subprocess path).
  pid_t pid = -1;
  int fd = -1;  ///< nonblocking read side of the worker's stdout
  FrameBuffer fb;
  double started_at = 0.0;
  double last_beat = 0.0;
  std::uint64_t hosts_seen = 0;
  std::uint64_t checkpoints_seen = 0;
  bool got_result = false;
  ShardOutput output;
};

ShardReport make_report(const Slot& s) {
  ShardReport r;
  r.index = s.task.shard_index;
  r.label = s.task.label;
  r.state = s.state;
  r.attempts = s.attempts;
  r.n_hosts = s.task.n_hosts();
  r.hosts_done =
      s.state == ShardState::kDone ? s.output.hosts_done : s.hosts_seen;
  r.checkpoints = s.state == ShardState::kDone ? s.output.checkpoints_written
                                               : s.checkpoints_seen;
  r.error = s.error;
  return r;
}

/// Close the pipe and reap the worker process, killing it first if asked.
void reap(Slot& s, bool kill_it) {
  if (s.fd >= 0) {
    ::close(s.fd);
    s.fd = -1;
  }
  if (s.pid > 0) {
    if (kill_it) ::kill(s.pid, SIGKILL);
    int status = 0;
    while (::waitpid(s.pid, &status, 0) < 0 && errno == EINTR) {
    }
    s.pid = -1;
  }
}

void launch(Slot& s, const std::string& exe, const std::string& arg) {
  int to_child[2] = {-1, -1};
  int from_child[2] = {-1, -1};
  if (::pipe(to_child) != 0 || ::pipe(from_child) != 0) {
    throw std::runtime_error("supervisor: pipe() failed");
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error("supervisor: fork() failed");
  }
  if (pid == 0) {
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    ::execl(exe.c_str(), exe.c_str(), arg.c_str(),
            static_cast<char*>(nullptr));
    ::_exit(127);
  }
  ::close(to_child[0]);
  ::close(from_child[1]);

  // Ship the task and close the pipe: the worker needs nothing further
  // from us. A write failure (worker died instantly, e.g. exec failed)
  // surfaces below as EOF-before-result and goes down the retry path.
  write_frame(to_child[1], ShardMsg::kTask, serialize_shard_task(s.task));
  ::close(to_child[1]);

  ::fcntl(from_child[0], F_SETFL, O_NONBLOCK);
  s.pid = pid;
  s.fd = from_child[0];
  s.fb = FrameBuffer{};
  s.got_result = false;
  s.started_at = s.last_beat = mono_now();
}

void mark_interrupted(std::vector<Slot>& slots) {
  for (Slot& s : slots) {
    if (s.state == ShardState::kRunning) {
      reap(s, true);
      s.state = ShardState::kInterrupted;
      s.error = "interrupted";
    } else if (s.state == ShardState::kPending) {
      s.state = ShardState::kInterrupted;
      s.error = "interrupted";
    }
  }
}

void run_inline(std::vector<Slot>& slots, const SupervisorConfig& cfg) {
  for (Slot& s : slots) {
    if (cfg.stop_flag != nullptr && *cfg.stop_flag != 0) {
      mark_interrupted(slots);
      return;
    }
    ++s.attempts;
    try {
      // No hooks: harness faults are inert in-process, which makes this
      // the undisturbed reference the subprocess path is tested against.
      s.output = run_shard(s.task);
      s.got_result = true;
      s.state = ShardState::kDone;
      s.hosts_seen = s.output.hosts_done;
      s.checkpoints_seen = s.output.checkpoints_written;
    } catch (const std::exception& e) {
      s.error = e.what();
      s.state = ShardState::kLost;
      if (!cfg.partial_ok) {
        throw ShardFailedError(
            make_report(s), "shard " + std::to_string(s.task.shard_index) +
                                " failed: " + s.error);
      }
    }
  }
}

void run_subprocess(std::vector<Slot>& slots, const SupervisorConfig& cfg) {
  const std::string exe = cfg.worker_exe.empty() ? self_exe() : cfg.worker_exe;
  // A worker dying mid-write must surface as an error return, not kill us.
  std::signal(SIGPIPE, SIG_IGN);

  const auto fail_attempt = [&](Slot& s, const std::string& why) {
    reap(s, true);
    s.error = why;
    if (s.attempts > cfg.max_retries) {
      s.state = ShardState::kLost;
      if (!cfg.partial_ok) {
        for (Slot& o : slots) {
          if (o.state == ShardState::kRunning) reap(o, true);
        }
        throw ShardFailedError(
            make_report(s),
            "shard " + std::to_string(s.task.shard_index) + " failed after " +
                std::to_string(s.attempts) + " attempt(s): " + why);
      }
      return;
    }
    s.state = ShardState::kPending;
    const double backoff =
        std::min(cfg.backoff_initial * std::ldexp(1.0, s.attempts - 1),
                 cfg.backoff_max);
    s.eligible_at = mono_now() + backoff;
    // Retries resume from the last checkpoint; harness faults fire on the
    // first attempt only, otherwise a killed worker would re-kill forever.
    s.task.resume = true;
    s.task.fault = HarnessFaultKind::kNone;
    s.task.fault_checkpoint = 0;
  };

  for (;;) {
    if (cfg.stop_flag != nullptr && *cfg.stop_flag != 0) {
      mark_interrupted(slots);
      return;
    }

    unsigned running = 0;
    bool pending = false;
    for (const Slot& s : slots) {
      if (s.state == ShardState::kRunning) ++running;
      if (s.state == ShardState::kPending) pending = true;
    }
    if (running == 0 && !pending) return;

    const double now = mono_now();
    for (Slot& s : slots) {
      if (running >= cfg.n_workers) break;
      if (s.state != ShardState::kPending || s.eligible_at > now) continue;
      launch(s, exe, cfg.worker_arg);
      ++s.attempts;
      s.state = ShardState::kRunning;
      ++running;
    }

    std::vector<pollfd> pfds;
    std::vector<std::size_t> who;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].state != ShardState::kRunning) continue;
      pfds.push_back(pollfd{slots[i].fd, POLLIN, 0});
      who.push_back(i);
    }
    if (pfds.empty()) {
      // Everything alive is waiting out a retry backoff.
      ::usleep(20 * 1000);
      continue;
    }
    ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 100);

    const double tick = mono_now();
    for (std::size_t k = 0; k < pfds.size(); ++k) {
      Slot& s = slots[who[k]];
      if (s.state != ShardState::kRunning) continue;

      bool eof = false;
      if ((pfds[k].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        std::uint8_t buf[4096];
        for (;;) {
          const ssize_t r = ::read(s.fd, buf, sizeof buf);
          if (r > 0) {
            s.fb.append(buf, static_cast<std::size_t>(r));
            continue;
          }
          if (r == 0) {
            eof = true;
            break;
          }
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          eof = true;
          break;
        }
      }

      try {
        ShardFrame f;
        while (s.fb.next(f)) {
          s.last_beat = tick;
          switch (f.type) {
            case ShardMsg::kHeartbeat:
              if (f.payload.size() >= 8) {
                s.hosts_seen = std::max(s.hosts_seen, le64(f.payload.data()));
              }
              break;
            case ShardMsg::kCheckpoint:
              if (f.payload.size() >= 16) {
                s.checkpoints_seen =
                    std::max(s.checkpoints_seen, le64(f.payload.data()));
                s.hosts_seen =
                    std::max(s.hosts_seen, le64(f.payload.data() + 8));
              }
              break;
            case ShardMsg::kResult:
              s.output = deserialize_shard_output(f.payload);
              s.got_result = true;
              break;
            case ShardMsg::kError:
              s.error.assign(f.payload.begin(), f.payload.end());
              break;
            default:
              throw std::runtime_error("unexpected frame type");
          }
        }
      } catch (const ShardFailedError&) {
        throw;
      } catch (const std::exception& e) {
        fail_attempt(s, std::string("protocol error: ") + e.what());
        continue;
      }

      if (s.got_result) {
        reap(s, false);
        s.state = ShardState::kDone;
        s.hosts_seen = s.output.hosts_done;
        s.checkpoints_seen = s.output.checkpoints_written;
        continue;
      }
      if (eof) {
        fail_attempt(s, s.error.empty()
                            ? "worker exited before sending a result"
                            : s.error);
        continue;
      }
      if (cfg.heartbeat_timeout > 0.0 &&
          tick - s.last_beat > cfg.heartbeat_timeout) {
        fail_attempt(s, "no heartbeat for " +
                            std::to_string(tick - s.last_beat) +
                            "s (worker hung)");
        continue;
      }
      if (cfg.shard_deadline > 0.0 &&
          tick - s.started_at > cfg.shard_deadline) {
        fail_attempt(s, "shard deadline exceeded");
      }
    }
  }
}

/// Fold completed shards in shard-index order — completion order must not
/// leak into the merged figures (byte-identity across reorderings of the
/// same completions).
ShardedResult finalize(std::vector<Slot>& slots) {
  ShardedResult out;
  bool any_figures = false;
  for (const Slot& s : slots) {
    out.hosts_total += s.task.n_hosts();
    if (s.task.include_host_figures) any_figures = true;
  }
  if (any_figures) out.host_figures.resize(out.hosts_total);

  std::uint64_t offset = 0;
  for (Slot& s : slots) {
    const std::uint64_t nh = s.task.n_hosts();
    if (s.state == ShardState::kDone) {
      out.merged.merge(s.output.merged);
      out.hosts_done += nh;
      if (any_figures) {
        for (std::size_t i = 0; i < s.output.host_figures.size() && i < nh;
             ++i) {
          out.host_figures[offset + i] = s.output.host_figures[i];
        }
      }
    } else if (s.state == ShardState::kLost) {
      out.hosts_lost += nh;
    }
    out.shards.push_back(make_report(s));
    offset += nh;
  }
  return out;
}

}  // namespace

ShardedResult run_sharded(std::vector<ShardTask> tasks,
                          const SupervisorConfig& config) {
  std::vector<Slot> slots;
  slots.reserve(tasks.size());
  for (ShardTask& t : tasks) {
    if (!config.checkpoint_dir.empty() && t.checkpoint_path.empty()) {
      t.checkpoint_path = config.checkpoint_dir + "/shard-" +
                          std::to_string(t.shard_index) + ".bcsp";
    }
    const HarnessFault f = fault_for(config.harness_faults, t.shard_index);
    if (f.kind != HarnessFaultKind::kNone) {
      t.fault = f.kind;
      t.fault_checkpoint = f.at_checkpoint;
    }
    Slot s;
    s.task = std::move(t);
    slots.push_back(std::move(s));
  }

  if (config.n_workers == 0) {
    run_inline(slots, config);
  } else {
    run_subprocess(slots, config);
  }
  return finalize(slots);
}

// ---- task builders --------------------------------------------------------

namespace {

std::string range_label(const std::string& stem, std::uint64_t lo,
                        std::uint64_t hi) {
  return stem + "[" + std::to_string(lo) + ".." + std::to_string(hi) + ")";
}

}  // namespace

std::vector<ShardTask> make_population_shard_tasks(
    const PopulationParams& params, std::uint64_t n_hosts, std::uint64_t seed,
    const PolicyConfig& policy, std::uint64_t hosts_per_shard,
    bool include_host_figures) {
  if (hosts_per_shard == 0) hosts_per_shard = 1;
  std::vector<ShardTask> tasks;
  for (std::uint64_t first = 0; first < n_hosts; first += hosts_per_shard) {
    ShardTask t;
    t.shard_index = static_cast<std::uint32_t>(tasks.size());
    t.policy = policy;
    t.population = params;
    t.population_seed = seed;
    t.first_host = first;
    t.n_population_hosts = std::min(hosts_per_shard, n_hosts - first);
    t.include_host_figures = include_host_figures;
    t.label = range_label("pop", first, first + t.n_population_hosts);
    tasks.push_back(std::move(t));
  }
  return tasks;
}

std::vector<ShardTask> make_replicated_shard_tasks(
    const Scenario& scenario, const PolicyConfig& policy,
    std::uint64_t n_hosts, std::uint64_t hosts_per_shard) {
  if (hosts_per_shard == 0) hosts_per_shard = 1;
  std::vector<ShardTask> tasks;
  for (std::uint64_t first = 0; first < n_hosts; first += hosts_per_shard) {
    const std::uint64_t count = std::min(hosts_per_shard, n_hosts - first);
    ShardTask t;
    t.shard_index = static_cast<std::uint32_t>(tasks.size());
    t.policy = policy;
    t.label = range_label(scenario.name, first, first + count);
    for (std::uint64_t i = 0; i < count; ++i) {
      Scenario sc = scenario;
      sc.seed = scenario.seed + first + i;
      t.scenario_texts.push_back(serialize_scenario(sc));
    }
    tasks.push_back(std::move(t));
  }
  return tasks;
}

std::vector<ShardTask> make_fleet_shard_tasks(const FleetConfig& config,
                                              const PolicyConfig& policy,
                                              FleetEnforcement mode,
                                              std::uint64_t hosts_per_shard) {
  if (hosts_per_shard == 0) hosts_per_shard = 1;
  const std::size_t nh = config.hosts.size();
  const std::size_t np = config.projects.size();

  std::vector<std::vector<double>> shares;
  if (mode == FleetEnforcement::kCrossHost) {
    shares = cross_host_shares(config);
  } else {
    std::vector<double> global(np);
    for (std::size_t p = 0; p < np; ++p) {
      global[p] = config.projects[p].resource_share;
    }
    shares.assign(nh, global);
  }

  std::vector<ShardTask> tasks;
  for (std::size_t first = 0; first < nh; first += hosts_per_shard) {
    const std::size_t count = std::min<std::size_t>(hosts_per_shard,
                                                    nh - first);
    ShardTask t;
    t.shard_index = static_cast<std::uint32_t>(tasks.size());
    t.policy = policy;
    t.label = range_label("fleet", first, first + count);
    t.n_merge_projects = static_cast<std::uint32_t>(np);
    for (std::size_t h = first; h < first + count; ++h) {
      const Scenario sc = fleet_host_scenario(config, h, shares[h]);
      // Fleet index of each attached project, in scenario project order.
      std::vector<std::uint32_t> map;
      for (const auto& pc : sc.projects) {
        for (std::size_t p = 0; p < np; ++p) {
          if (config.projects[p].name == pc.name) {
            map.push_back(static_cast<std::uint32_t>(p));
            break;
          }
        }
      }
      t.scenario_texts.push_back(serialize_scenario(sc));
      t.project_map.push_back(std::move(map));
    }
    tasks.push_back(std::move(t));
  }
  return tasks;
}

ShardedFleetResult run_sharded_fleet(const FleetConfig& config,
                                     const PolicyConfig& policy,
                                     FleetEnforcement mode,
                                     const SupervisorConfig& sup,
                                     std::uint64_t hosts_per_shard) {
  ShardedFleetResult out;
  if (mode == FleetEnforcement::kCrossHost) {
    out.assigned_shares = cross_host_shares(config);
  } else {
    const std::size_t np = config.projects.size();
    std::vector<double> global(np);
    for (std::size_t p = 0; p < np; ++p) {
      global[p] = config.projects[p].resource_share;
    }
    out.assigned_shares.assign(config.hosts.size(), global);
  }

  out.sharded = run_sharded(
      make_fleet_shard_tasks(config, policy, mode, hosts_per_shard), sup);

  // The merged usage_fraction is already the fleet-indexed used-FLOPS
  // weighted mean over completed hosts; recompute the violation against
  // the *global* shares (run_fleet's definition).
  const std::size_t np = config.projects.size();
  out.usage_fraction = out.sharded.merged.usage_fraction;
  out.usage_fraction.resize(np, 0.0);
  double global_total = 0.0;
  for (const auto& p : config.projects) global_total += p.resource_share;
  if (out.sharded.merged.used_flops > 0.0 && global_total > 0.0 && np > 0) {
    double sq = 0.0;
    for (std::size_t p = 0; p < np; ++p) {
      const double d = out.usage_fraction[p] -
                       config.projects[p].resource_share / global_total;
      sq += d * d;
    }
    out.share_violation = std::sqrt(sq / static_cast<double>(np));
  }
  return out;
}

std::vector<std::string> fleet_doc_tokens() {
  return {
      // `bce fleet` CLI flags (tools/bce_cli.cpp) and the hidden worker
      // mode; the fleet-docs lint check requires each in docs/fleet.md.
      "--hosts", "--shard-hosts", "--workers", "--days", "--seed", "--sched",
      "--fetch", "--dispatch", "--retries", "--heartbeat-timeout",
      "--shard-deadline",
      "--backoff", "--checkpoint-dir", "--checkpoint-hosts",
      "--checkpoint-sim-days", "--partial-ok", "--harness-faults",
      "--host-figures", "--bce-shard-worker",
      // Supervisor / worker exit codes.
      "exit code 10", "exit code 11", "exit code 40", "exit code 41",
  };
}

}  // namespace bce
