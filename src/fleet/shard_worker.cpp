#include "fleet/shard_worker.hpp"

#include <signal.h>
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>

#include "core/emulator.hpp"
#include "core/population.hpp"
#include "core/savestate.hpp"
#include "core/scenario_io.hpp"
#include "fleet/shard.hpp"
#include "sim/rng.hpp"

namespace bce {

namespace {

/// Per-host RNG stream offset (SplitMix64's golden-gamma): distinct seeds
/// per global host index, so any shard can sample its slice of the
/// population without replaying the hosts before it.
constexpr std::uint64_t kHostSeedStride = 0x9e3779b97f4a7c15ull;

Scenario shard_host_scenario(const ShardTask& task, std::uint64_t h) {
  if (!task.scenario_texts.empty()) {
    return parse_scenario(task.scenario_texts[h]);
  }
  Xoshiro256 rng(task.population_seed +
                 kHostSeedStride * (task.first_host + h + 1));
  return sample_scenario(rng, task.population);
}

void append_u64_le(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

}  // namespace

ShardOutput run_shard(const ShardTask& task, const ShardHooks& hooks) {
  ShardOutput out;
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> inflight;  // mid-host .bcss frame to resume from
  const std::uint64_t n = task.n_hosts();

  if (task.resume && !task.checkpoint_path.empty()) {
    try {
      ShardCheckpoint cp = read_shard_checkpoint(task.checkpoint_path, task);
      out.merged = cp.merged;
      out.host_figures = cp.host_figures;
      out.hosts_done = cp.hosts_done;
      seq = cp.seq;
      inflight = std::move(cp.frame);
    } catch (const SavestateError&) {
      // No checkpoint yet (the worker died before writing one) or an
      // unusable file: cold-start the shard. Same result, just slower.
      out = {};
      seq = 0;
      inflight.clear();
    }
  }

  const auto maybe_fault = [&]() {
    if (task.fault == HarnessFaultKind::kNone ||
        seq != task.fault_checkpoint) {
      return;
    }
    if (task.fault == HarnessFaultKind::kKill && hooks.on_fault_kill) {
      hooks.on_fault_kill();
    }
    if (task.fault == HarnessFaultKind::kStall && hooks.on_fault_stall) {
      hooks.on_fault_stall();
    }
  };

  const auto write_cp = [&](std::vector<std::uint8_t> frame) {
    ShardCheckpoint cp;
    cp.hosts_done = out.hosts_done;
    cp.seq = ++seq;
    cp.merged = out.merged;
    cp.host_figures = out.host_figures;
    cp.frame = std::move(frame);
    write_shard_checkpoint(task.checkpoint_path, task, cp);
    ++out.checkpoints_written;
    if (hooks.on_checkpoint) hooks.on_checkpoint(seq, out.hosts_done);
    maybe_fault();
  };

  for (std::uint64_t h = out.hosts_done; h < n; ++h) {
    try {
      const Scenario sc = shard_host_scenario(task, h);
      EmulationOptions opt;
      opt.policy = task.policy;
      Emulator em(sc, opt);

      bool resumed_mid_host = false;
      if (!inflight.empty()) {
        restore_savestate(em, inflight);
        inflight.clear();
        resumed_mid_host = true;
      }

      double next_mark = 0.0;
      if (task.checkpoint_sim_period > 0.0 && !task.checkpoint_path.empty()) {
        const double period = task.checkpoint_sim_period;
        // First boundary strictly past the current clock: a restored run
        // must not re-write the checkpoint it restored from.
        next_mark = resumed_mid_host
                        ? (std::floor((em.now() + kFpEpsilon) / period) + 1.0) *
                              period
                        : period;
        em.set_checkpoint_hook([&, period](Emulator& e) {
          while (e.now() + kFpEpsilon >= next_mark) {
            next_mark += period;
            write_cp(capture_savestate(e));
          }
        });
      }

      EmulationResult res = em.run();
      Metrics m = std::move(res.metrics);
      if (!task.project_map.empty()) {
        // Fleet mode: lift local project usage into the merged indexing so
        // hosts attached to different project subsets fold coherently.
        const std::vector<std::uint32_t>& map = task.project_map[h];
        std::vector<double> lifted(task.n_merge_projects, 0.0);
        for (std::size_t p = 0; p < m.usage_fraction.size() && p < map.size();
             ++p) {
          lifted[map[p]] += m.usage_fraction[p];
        }
        m.usage_fraction = std::move(lifted);
      }

      out.merged.merge(m);
      if (task.include_host_figures) {
        out.host_figures.push_back(
            {m.weighted_score(), m.idle_fraction(), m.wasted_fraction(),
             m.share_violation(), m.monotony, m.rpcs_per_job()});
      }
      ++out.hosts_done;
      if (hooks.on_host_done) hooks.on_host_done(out.hosts_done);

      if (!task.checkpoint_path.empty() && task.checkpoint_every_hosts > 0 &&
          (out.hosts_done % task.checkpoint_every_hosts == 0 ||
           out.hosts_done == n)) {
        write_cp({});
      }
    } catch (const std::exception& e) {
      throw std::runtime_error("shard " + std::to_string(task.shard_index) +
                               " host " + std::to_string(h) + " (" +
                               task.label + "): " + e.what());
    }
  }
  return out;
}

int run_shard_worker(int in_fd, int out_fd) {
  // A dying supervisor must surface as a failed write, not SIGPIPE death.
  ::signal(SIGPIPE, SIG_IGN);
  try {
    const std::optional<ShardFrame> frame = read_frame(in_fd);
    if (!frame || frame->type != ShardMsg::kTask) {
      return kWorkerExitProtocolError;
    }
    const ShardTask task = deserialize_shard_task(frame->payload);

    const auto send_progress = [out_fd](ShardMsg type, std::uint64_t a,
                                        std::uint64_t b) {
      std::vector<std::uint8_t> payload;
      append_u64_le(payload, a);
      append_u64_le(payload, b);
      write_frame(out_fd, type, payload);
    };

    ShardHooks hooks;
    hooks.on_host_done = [&](std::uint64_t done) {
      send_progress(ShardMsg::kHeartbeat, done, 0);
    };
    hooks.on_checkpoint = [&](std::uint64_t seq, std::uint64_t done) {
      send_progress(ShardMsg::kCheckpoint, seq, done);
    };
    hooks.on_fault_kill = [] { ::_exit(kWorkerExitHarnessKill); };
    hooks.on_fault_stall = [] {
      for (;;) ::pause();
    };

    // Initial heartbeat: tells the supervisor the worker is alive and
    // parsed its task before the first (possibly long) host completes.
    send_progress(ShardMsg::kHeartbeat, 0, 0);

    const ShardOutput out = run_shard(task, hooks);
    if (!write_frame(out_fd, ShardMsg::kResult, serialize_shard_output(out))) {
      return kWorkerExitProtocolError;
    }
    return 0;
  } catch (const std::exception& e) {
    const std::string what = e.what();
    std::vector<std::uint8_t> payload(what.begin(), what.end());
    write_frame(out_fd, ShardMsg::kError, payload);
    return kWorkerExitProtocolError;
  }
}

std::optional<int> maybe_run_shard_worker(int argc, char** argv) {
  if (argc >= 2 && (std::strcmp(argv[1], "--bce-shard-worker") == 0 ||
                    std::strcmp(argv[1], "shard-worker") == 0)) {
    return run_shard_worker(STDIN_FILENO, STDOUT_FILENO);
  }
  return std::nullopt;
}

}  // namespace bce
