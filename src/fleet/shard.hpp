#pragma once

/// \file shard.hpp
/// Wire types for sharded fleet execution (docs/fleet.md).
///
/// A fleet/population run is partitioned into *shards* of hosts. Each
/// shard is described by a self-contained ShardTask — everything a worker
/// needs to emulate its hosts with zero shared memory: the policy, either
/// explicit serialized scenarios or a population slice (params + seed +
/// host range), checkpoint settings, and an optional harness fault to
/// inject. Tasks and results cross the supervisor/worker pipe as
/// length-prefixed frames ([u32 len][u8 ShardMsg][payload]); payloads are
/// StateWriter byte streams, so every double travels as raw IEEE-754 bits
/// and the byte-identity invariant (supervisor merged figures == monolithic
/// run) survives the process boundary.
///
/// Shard checkpoints (`.bcsp` files) persist a worker's partial fold —
/// merged metrics, hosts done, per-host figures so far, and optionally a
/// mid-host `.bcss` emulator frame — so a killed worker's replacement
/// re-does only the tail of the shard. The checkpoint embeds a fingerprint
/// of its task (with resume/fault/path knobs normalized out) and a payload
/// checksum; mismatches are rejected with SavestateError, never silently
/// resumed.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "client/policy.hpp"
#include "core/metrics.hpp"
#include "core/population.hpp"
#include "sim/state_io.hpp"

namespace bce {

// ---- harness fault injection ---------------------------------------------

/// What the harness fault plan does to a worker (docs/fleet.md). Faults
/// are applied by the *worker itself* at a checkpoint boundary — that is
/// what makes kill-and-resume runs deterministic enough to pin
/// byte-identity in tests.
enum class HarnessFaultKind : std::uint8_t {
  kNone = 0,
  kKill,   ///< worker _exit()s right after writing the checkpoint
  kStall,  ///< worker stops heartbeating forever (supervisor must time out)
};

struct HarnessFault {
  std::uint32_t shard = 0;
  HarnessFaultKind kind = HarnessFaultKind::kNone;
  /// 1-based checkpoint sequence number at which the fault fires.
  std::uint64_t at_checkpoint = 1;
};

struct HarnessFaultPlan {
  std::vector<HarnessFault> faults;
  [[nodiscard]] bool empty() const { return faults.empty(); }
};

/// Parse a `--harness-faults` spec: comma-separated `kind:shard@checkpoint`
/// entries, e.g. "kill:1@2,stall:0@1". Throws std::invalid_argument on
/// malformed input.
HarnessFaultPlan parse_harness_faults(const std::string& spec);

/// The fault planned for \p shard, or kind == kNone.
HarnessFault fault_for(const HarnessFaultPlan& plan, std::uint32_t shard);

// ---- pipe protocol --------------------------------------------------------

/// Frame types on the supervisor <-> worker pipe.
enum class ShardMsg : std::uint8_t {
  kTask = 1,       ///< supervisor -> worker: serialized ShardTask
  kHeartbeat = 2,  ///< worker -> supervisor: liveness (hosts done so far)
  kCheckpoint = 3, ///< worker -> supervisor: checkpoint seq written
  kResult = 4,     ///< worker -> supervisor: serialized ShardOutput
  kError = 5,      ///< worker -> supervisor: error text
};

struct ShardFrame {
  ShardMsg type = ShardMsg::kError;
  std::vector<std::uint8_t> payload;
};

/// Blocking frame write ([u32 len][u8 type][payload], little-endian),
/// retrying on EINTR. Returns false when the peer is gone (EPIPE etc.).
bool write_frame(int fd, ShardMsg type, const std::vector<std::uint8_t>& payload);

/// Blocking frame read, retrying on EINTR. Returns nullopt on clean EOF;
/// throws std::runtime_error on a malformed or mid-frame-truncated stream.
std::optional<ShardFrame> read_frame(int fd);

/// Reassembles frames from a nonblocking read side: the supervisor appends
/// whatever bytes poll() delivered and extracts complete frames.
class FrameBuffer {
 public:
  void append(const std::uint8_t* data, std::size_t n);
  /// Extract the next complete frame, if any. Throws std::runtime_error on
  /// an oversized length prefix (corrupt stream).
  bool next(ShardFrame& out);

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

// ---- shard task -----------------------------------------------------------

/// One shard of work, fully self-describing. Exactly one of the two host
/// sources is active: explicit `scenario_texts` (fleet mode, replicated
/// scenario mode) or a population slice (`n_population_hosts` > 0).
struct ShardTask {
  std::uint32_t shard_index = 0;
  std::string label;
  PolicyConfig policy;

  /// Explicit mode: one serialized scenario per host (serialize_scenario
  /// round-trips doubles exactly, so shipping text loses nothing).
  std::vector<std::string> scenario_texts;
  /// Optional per-host remap of local project index -> merged project
  /// index (fleet runs, where hosts attach different project subsets).
  /// Empty = identity.
  std::vector<std::vector<std::uint32_t>> project_map;
  /// Size of the merged usage_fraction vector when project_map is used.
  std::uint32_t n_merge_projects = 0;

  /// Population mode: hosts [first_host, first_host + n_population_hosts)
  /// of the population drawn from `population` with `population_seed`.
  /// Each host h seeds its own Xoshiro256 stream from
  /// population_seed + GOLDEN * (first_host + h + 1), so a shard can be
  /// sampled without replaying the hosts before it.
  PopulationParams population;
  std::uint64_t population_seed = 1;
  std::uint64_t first_host = 0;
  std::uint64_t n_population_hosts = 0;

  /// Keep per-host figure rows (population studies). Off = only the merged
  /// accumulator flows back, memory stays flat in the host count.
  bool include_host_figures = false;

  /// Checkpointing: empty path = no checkpoints. A checkpoint is written
  /// every `checkpoint_every_hosts` completed hosts, and additionally every
  /// `checkpoint_sim_period` simulated seconds inside a host when > 0
  /// (mid-host checkpoints embed a `.bcss` emulator frame).
  std::string checkpoint_path;
  std::uint64_t checkpoint_every_hosts = 1;
  double checkpoint_sim_period = 0.0;

  /// Resume from `checkpoint_path` if it holds a valid checkpoint for this
  /// task. Set by the supervisor on retry attempts.
  bool resume = false;

  /// Harness fault injected by this worker (attempt 0 only; the supervisor
  /// strips it on retries).
  HarnessFaultKind fault = HarnessFaultKind::kNone;
  std::uint64_t fault_checkpoint = 0;

  [[nodiscard]] std::uint64_t n_hosts() const {
    return scenario_texts.empty() ? n_population_hosts
                                  : scenario_texts.size();
  }
};

std::vector<std::uint8_t> serialize_shard_task(const ShardTask& task);
ShardTask deserialize_shard_task(const std::vector<std::uint8_t>& bytes);

/// Fingerprint of the work a task describes, invariant under the knobs a
/// retry changes (resume flag, fault plan, checkpoint path). A checkpoint
/// written under one fingerprint is only resumable by a task with the
/// same fingerprint.
std::uint64_t shard_task_fingerprint(const ShardTask& task);

// ---- shard output ---------------------------------------------------------

/// Per-host figures of merit kept when include_host_figures is set.
struct HostFigures {
  double score = 0.0;
  double idle = 0.0;
  double wasted = 0.0;
  double share_violation = 0.0;
  double monotony = 0.0;
  double rpcs_per_job = 0.0;
};

struct ShardOutput {
  Metrics merged;
  std::uint64_t hosts_done = 0;
  std::uint64_t checkpoints_written = 0;
  std::vector<HostFigures> host_figures;
};

std::vector<std::uint8_t> serialize_shard_output(const ShardOutput& out);
ShardOutput deserialize_shard_output(const std::vector<std::uint8_t>& bytes);

// ---- shard checkpoints ----------------------------------------------------

/// File magic of a shard checkpoint (`.bcsp`), distinct from the emulator
/// savestate magic so the two cannot be confused.
inline constexpr char kShardCheckpointMagic[8] = {'B', 'C', 'E', 'S',
                                                  'H', 'A', 'R', 'D'};
inline constexpr std::uint32_t kShardCheckpointVersion = 1;

/// A worker's partial fold at a checkpoint boundary. `frame` is empty at a
/// host boundary (the next host starts from t = 0) and holds a framed
/// `.bcss` emulator savestate for a mid-host checkpoint.
struct ShardCheckpoint {
  std::uint64_t hosts_done = 0;
  std::uint64_t seq = 0;  ///< checkpoint sequence number, 1-based
  Metrics merged;
  std::vector<HostFigures> host_figures;
  std::vector<std::uint8_t> frame;
};

/// Atomically (write-to-tmp + rename) persist \p cp for \p task. Throws
/// SavestateError(kIo) on filesystem failure.
void write_shard_checkpoint(const std::string& path, const ShardTask& task,
                            const ShardCheckpoint& cp);

/// Read and validate a checkpoint. Throws SavestateError: kIo (unreadable),
/// kBadMagic, kBadVersion, kTruncated, kCorrupt (checksum), or
/// kScenarioMismatch (written for a different task fingerprint).
ShardCheckpoint read_shard_checkpoint(const std::string& path,
                                      const ShardTask& task);

}  // namespace bce
