#pragma once

/// \file timeline.hpp
/// Processor-usage timeline recorder and visualization. BCE "generates a
/// time-line visualization of processor usage" (§4.3); ours renders an
/// ASCII chart (one row per processor instance, one letter per project)
/// and exports CSV for external plotting. Also serves Figure 2: the RR-sim
/// busy prediction can be rendered through the same facility.

#include <iosfwd>
#include <string>
#include <vector>

#include "host/host_info.hpp"
#include "sim/types.hpp"

namespace bce {

class StateReader;
class StateWriter;

struct TimelineSpan {
  ProcType type = ProcType::kCpu;
  int slot = 0;  ///< instance index within the type
  SimTime t0 = 0.0;
  SimTime t1 = 0.0;
  ProjectId project = kNoProject;  ///< kNoProject = unavailable period
  JobId job = kNoJob;
};

class Timeline {
 public:
  Timeline() = default;
  explicit Timeline(const HostInfo& host) : host_(host) {}

  /// Record usage of one instance over [t0, t1]. Contiguous records for the
  /// same (type, slot, job) are merged.
  void record(ProcType type, int slot, SimTime t0, SimTime t1, ProjectId p,
              JobId j);

  [[nodiscard]] const std::vector<TimelineSpan>& spans() const { return spans_; }

  /// ASCII chart over [0, t_end]: one row per instance; letters A.. for
  /// projects, '.' for idle.
  [[nodiscard]] std::string to_ascii(SimTime t_end, int width = 96) const;

  /// CSV: type,slot,t0,t1,project,job
  void write_csv(std::ostream& os) const;

  void clear() { spans_.clear(); }

  /// Savestate support (docs/savestate.md): the recorded spans are
  /// serialized verbatim so a restored run's chart/CSV matches an
  /// uninterrupted one.
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  HostInfo host_;
  std::vector<TimelineSpan> spans_;
};

}  // namespace bce
