#pragma once

/// \file paper_scenarios.hpp
/// The four evaluation scenarios of §5:
///
///  * Scenario 1 — CPU only, two projects. Project 1's job runtime is
///    1000 s with a configurable latency bound (swept 1000→2000 s in
///    Figure 3); project 2 has normal jobs.
///  * Scenario 2 — 4 CPUs and 1 GPU, GPU 10× faster than one CPU. Two
///    projects: one with CPU jobs, one with both CPU and GPU jobs
///    (Figure 4).
///  * Scenario 3 — CPU only, two projects, one with very long
///    (million-second) low-slack jobs (Figure 6). Run longer than 10 days
///    so several long jobs complete.
///  * Scenario 4 — CPU and GPU, twenty projects with varying job types
///    (Figure 5).
///
/// Simulation period is 10 days unless otherwise specified (§5); scenario 3
/// uses 100 days because one of its jobs alone takes ~11.6 days.

#include "model/scenario.hpp"

namespace bce {

/// Scenario 1 with project 1's latency bound = \p latency_bound_s
/// (job runtime 1000 s, so slack = latency_bound_s − 1000).
Scenario paper_scenario1(double latency_bound_s = 2000.0);

Scenario paper_scenario2();

Scenario paper_scenario3();

Scenario paper_scenario4();

}  // namespace bce
