#include "core/paper_scenarios.hpp"

#include <cmath>
#include <string>

namespace bce {

namespace {
/// 1 GFLOPS per CPU core throughout, as a convenient unit: a job's FLOPs
/// count then reads directly as CPU-seconds.
constexpr double kCpuFlops = 1e9;
}  // namespace

Scenario paper_scenario1(double latency_bound_s) {
  Scenario sc;
  sc.name = "scenario1";
  sc.host = HostInfo::cpu_only(1, kCpuFlops);
  sc.duration = 10.0 * kSecondsPerDay;
  sc.seed = 1;

  // A small min buffer: JF_ORIG keeps ~one job per project queued, so
  // deadline behaviour is driven by the scheduling policy rather than by
  // queue stuffing.
  sc.prefs.min_queue = 600.0;
  sc.prefs.max_queue = 4000.0;

  ProjectConfig p1;
  p1.name = "project1";
  p1.resource_share = 100.0;
  JobClass j1;
  j1.name = "lowslack";
  j1.flops_est = 1000.0 * kCpuFlops;  // 1000 s at full speed
  j1.flops_cv = 0.1;                  // normally distributed actual runtimes
  j1.latency_bound = latency_bound_s;
  j1.usage = ResourceUsage::cpu(1.0);
  j1.checkpoint_period = 60.0;
  p1.job_classes.push_back(j1);

  // Project 2's "normal" jobs are long and slack-rich, so its queue is
  // essentially never empty: under pure WRR project 1's jobs really do run
  // at half speed (the situation Figure 3 probes).
  ProjectConfig p2;
  p2.name = "project2";
  p2.resource_share = 100.0;
  JobClass j2;
  j2.name = "normal";
  j2.flops_est = 3000.0 * kCpuFlops;
  j2.flops_cv = 0.1;
  j2.latency_bound = 10.0 * kSecondsPerDay;
  j2.usage = ResourceUsage::cpu(1.0);
  j2.checkpoint_period = 60.0;
  p2.job_classes.push_back(j2);

  sc.projects = {p1, p2};
  return sc;
}

Scenario paper_scenario2() {
  Scenario sc;
  sc.name = "scenario2";
  // GPU is 10x faster than one CPU.
  sc.host = HostInfo::cpu_gpu(4, kCpuFlops, 1, 10.0 * kCpuFlops);
  sc.duration = 10.0 * kSecondsPerDay;
  sc.seed = 1;
  sc.prefs.min_queue = 0.05 * kSecondsPerDay;
  sc.prefs.max_queue = 0.25 * kSecondsPerDay;

  // Project 1: CPU jobs only.
  ProjectConfig p1;
  p1.name = "cpu_only";
  p1.resource_share = 100.0;
  JobClass c1;
  c1.name = "cpu";
  c1.flops_est = 2000.0 * kCpuFlops;
  c1.latency_bound = 2.0 * kSecondsPerDay;
  c1.usage = ResourceUsage::cpu(1.0);
  p1.job_classes.push_back(c1);

  // Project 2: both CPU and GPU jobs.
  ProjectConfig p2;
  p2.name = "cpu_and_gpu";
  p2.resource_share = 100.0;
  JobClass c2 = c1;
  c2.name = "cpu";
  p2.job_classes.push_back(c2);
  JobClass g2;
  g2.name = "gpu";
  g2.flops_est = 2000.0 * (10.0 * kCpuFlops);  // 2000 s on the GPU
  g2.latency_bound = 2.0 * kSecondsPerDay;
  g2.usage = ResourceUsage::gpu(ProcType::kNvidia, 1.0, 0.05);
  p2.job_classes.push_back(g2);

  sc.projects = {p1, p2};
  return sc;
}

Scenario paper_scenario3() {
  Scenario sc;
  sc.name = "scenario3";
  sc.host = HostInfo::cpu_only(1, kCpuFlops);
  // One long job alone takes ~11.6 days; run 100 days so several complete
  // and the REC half-life effect (Figure 6) is observable.
  sc.duration = 100.0 * kSecondsPerDay;
  sc.seed = 1;
  sc.prefs.min_queue = 0.05 * kSecondsPerDay;
  sc.prefs.max_queue = 0.25 * kSecondsPerDay;

  // Project 1: very long, low-slack jobs — immediately deadline-endangered,
  // forcing the client to run them to the exclusion of other jobs (§5.4).
  ProjectConfig p1;
  p1.name = "long_lowslack";
  p1.resource_share = 100.0;
  JobClass j1;
  j1.name = "long";
  j1.flops_est = 1e6 * kCpuFlops;  // million-second job
  j1.latency_bound = 1.15e6;       // 15% slack: needs near-exclusive use
  j1.usage = ResourceUsage::cpu(1.0);
  j1.checkpoint_period = 600.0;
  p1.job_classes.push_back(j1);

  // Project 2: normal jobs.
  ProjectConfig p2;
  p2.name = "normal";
  p2.resource_share = 100.0;
  JobClass j2;
  j2.name = "normal";
  j2.flops_est = 1e4 * kCpuFlops;
  j2.latency_bound = 10.0 * kSecondsPerDay;
  j2.usage = ResourceUsage::cpu(1.0);
  p2.job_classes.push_back(j2);

  sc.projects = {p1, p2};
  return sc;
}

Scenario paper_scenario4() {
  Scenario sc;
  sc.name = "scenario4";
  sc.host = HostInfo::cpu_gpu(4, kCpuFlops, 1, 10.0 * kCpuFlops);
  sc.duration = 10.0 * kSecondsPerDay;
  sc.seed = 1;
  sc.prefs.min_queue = 0.1 * kSecondsPerDay;
  sc.prefs.max_queue = 0.5 * kSecondsPerDay;

  // Twenty projects with varying job types, shares, sizes and latency
  // bounds — generated from deterministic formulas so the scenario is
  // stable across runs and platforms.
  for (int i = 0; i < 20; ++i) {
    ProjectConfig p;
    p.name = "proj" + std::to_string(i);
    p.resource_share = 50.0 + 25.0 * (i % 4);  // 50..125

    const double runtime = 600.0 + 300.0 * (i % 7);       // 600..2400 s
    const double latency = (1.0 + (i % 5)) * kSecondsPerDay;

    const int kind = i % 3;  // 0: CPU only, 1: GPU only, 2: both
    if (kind == 0 || kind == 2) {
      JobClass c;
      c.name = "cpu";
      c.flops_est = runtime * kCpuFlops;
      c.latency_bound = latency;
      c.usage = ResourceUsage::cpu(1.0);
      p.job_classes.push_back(c);
    }
    if (kind == 1 || kind == 2) {
      JobClass g;
      g.name = "gpu";
      g.flops_est = runtime * 10.0 * kCpuFlops;
      g.latency_bound = latency;
      g.usage = ResourceUsage::gpu(ProcType::kNvidia, 1.0, 0.05);
      p.job_classes.push_back(g);
    }
    sc.projects.push_back(p);
  }
  return sc;
}

}  // namespace bce
