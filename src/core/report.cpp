#include "core/report.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <ostream>

namespace bce {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(width[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (const auto w : width) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double x, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, x);
  return buf;
}

}  // namespace bce
