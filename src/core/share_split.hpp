#pragma once

/// \file share_split.hpp
/// Ideal resource-share allocation across processor types (§2.1, Figure 1):
/// "resource share is intended to apply to a host's aggregate processing
/// resources, not to the processor types separately."
///
/// Given per-type capacities (FLOPS), and for each project a share and the
/// set of types it can use, compute the max-min-fair allocation of FLOPS:
/// raise every project's allocation in proportion to its share until a
/// capability constraint binds (progressive filling), freeze the saturated
/// projects, and continue with the rest. Feasibility at each level is
/// decided with a small max-flow (source → projects → types → sink).
///
/// For Figure 1's example (10 GFLOPS CPU + 20 GFLOPS GPU; A can use both,
/// B only the GPU; equal shares) this yields A = B = 15 GFLOPS with A
/// taking 100% of the CPU and 25% of the GPU.
///
/// This is the reference against which the share-violation metric can be
/// interpreted: it is the best any scheduler could do.

#include <vector>

#include "sim/proc_type.hpp"

namespace bce {

struct ShareSplitInput {
  /// Capacity of each processor type, FLOPS.
  PerProc<double> capacity{};

  struct Project {
    double share = 1.0;
    PerProc<bool> can_use{};
  };
  std::vector<Project> projects;
};

struct ShareSplitResult {
  /// alloc[p][t]: FLOPS of type t allocated to project p.
  std::vector<PerProc<double>> alloc;

  /// Total FLOPS per project.
  std::vector<double> total;

  /// Max-min fill level reached by the least-served project
  /// (total[p] / share[p] >= level for all p, up to numerics).
  double level = 0.0;
};

ShareSplitResult ideal_share_split(const ShareSplitInput& input);

}  // namespace bce
