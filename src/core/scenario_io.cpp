#include "core/scenario_io.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

namespace bce {

namespace {

std::string trim(const std::string& s) {
  const auto a = s.find_first_not_of(" \t\r\n");
  if (a == std::string::npos) return {};
  const auto b = s.find_last_not_of(" \t\r\n");
  return s.substr(a, b - a + 1);
}

std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

double to_num(const std::string& s, int line, const char* what) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw ScenarioParseError(line, std::string("bad number for ") + what +
                                       ": '" + s + "'");
  }
}

ProcType to_gpu_type(const std::string& s, int line) {
  if (s == "nvidia") return ProcType::kNvidia;
  if (s == "ati") return ProcType::kAti;
  throw ScenarioParseError(line, "unknown GPU type '" + s + "'");
}

OnOffSpec parse_onoff(const std::vector<std::string>& toks, std::size_t i,
                      int line) {
  if (i >= toks.size()) throw ScenarioParseError(line, "missing availability kind");
  if (toks[i] == "always") return OnOffSpec::always_on();
  if (toks[i] == "markov") {
    if (i + 2 >= toks.size()) {
      throw ScenarioParseError(line, "markov needs ON and OFF means");
    }
    OnOffSpec s = OnOffSpec::markov(to_num(toks[i + 1], line, "mean_on"),
                                    to_num(toks[i + 2], line, "mean_off"));
    // Optional period distribution: "... weibull K" or "... lognormal S".
    if (i + 3 < toks.size()) {
      if (i + 4 >= toks.size()) {
        throw ScenarioParseError(line, "distribution needs a shape parameter");
      }
      if (toks[i + 3] == "weibull") {
        s.dist = PeriodDist::kWeibull;
      } else if (toks[i + 3] == "lognormal") {
        s.dist = PeriodDist::kLognormal;
      } else {
        throw ScenarioParseError(line, "unknown period distribution '" +
                                           toks[i + 3] + "'");
      }
      s.shape = to_num(toks[i + 4], line, "distribution shape");
    }
    return s;
  }
  if (toks[i] == "trace") {
    // trace 3600:on 1800:off 7200:on ...
    if (i + 1 >= toks.size()) {
      throw ScenarioParseError(line, "trace needs at least one segment");
    }
    std::vector<OnOffSpec::TraceSegment> segs;
    for (std::size_t k = i + 1; k < toks.size(); ++k) {
      const auto colon = toks[k].find(':');
      if (colon == std::string::npos) {
        throw ScenarioParseError(line, "trace segment must be DURATION:on|off");
      }
      OnOffSpec::TraceSegment seg;
      seg.duration = to_num(toks[k].substr(0, colon), line, "trace duration");
      const std::string state = toks[k].substr(colon + 1);
      if (state == "on") {
        seg.on = true;
      } else if (state == "off") {
        seg.on = false;
      } else {
        throw ScenarioParseError(line, "trace state must be on or off");
      }
      segs.push_back(seg);
    }
    return OnOffSpec::from_trace(std::move(segs));
  }
  if (toks[i] == "window") {
    if (i + 2 >= toks.size()) {
      throw ScenarioParseError(line, "window needs start and end seconds");
    }
    return OnOffSpec::daily_window(to_num(toks[i + 1], line, "window start"),
                                   to_num(toks[i + 2], line, "window end"));
  }
  if (toks[i] == "weekly") {
    // weekly START END 1111100   (7 day flags, day 0 = first emulated day)
    if (i + 3 >= toks.size()) {
      throw ScenarioParseError(line, "weekly needs START END DAYFLAGS");
    }
    const std::string& flags = toks[i + 3];
    if (flags.size() != 7) {
      throw ScenarioParseError(line, "weekly day flags must be 7 chars of 0/1");
    }
    std::array<bool, 7> days{};
    for (std::size_t d = 0; d < 7; ++d) {
      if (flags[d] != '0' && flags[d] != '1') {
        throw ScenarioParseError(line, "weekly day flags must be 7 chars of 0/1");
      }
      days[d] = flags[d] == '1';
    }
    return OnOffSpec::weekly(to_num(toks[i + 1], line, "weekly start"),
                             to_num(toks[i + 2], line, "weekly end"), days);
  }
  throw ScenarioParseError(line, "unknown availability kind '" + toks[i] + "'");
}

std::string onoff_str(const OnOffSpec& s) {
  std::ostringstream os;
  switch (s.kind) {
    case OnOffSpec::Kind::kAlwaysOn:
      os << "always";
      break;
    case OnOffSpec::Kind::kMarkov:
      os << "markov " << s.mean_on << ' ' << s.mean_off;
      if (s.dist == PeriodDist::kWeibull) os << " weibull " << s.shape;
      if (s.dist == PeriodDist::kLognormal) os << " lognormal " << s.shape;
      break;
    case OnOffSpec::Kind::kTrace:
      os << "trace";
      for (const auto& seg : s.trace) {
        os << ' ' << seg.duration << ':' << (seg.on ? "on" : "off");
      }
      break;
    case OnOffSpec::Kind::kDailyWindow:
      os << "window " << s.window_start << ' ' << s.window_end;
      break;
    case OnOffSpec::Kind::kWeekly: {
      os << "weekly " << s.window_start << ' ' << s.window_end << ' ';
      for (const bool d : s.active_days) os << (d ? '1' : '0');
      break;
    }
  }
  return os.str();
}

/// Parse a `job:` line after the "job:" prefix.
JobClass parse_job(const std::string& rest, int line) {
  JobClass jc;
  const auto toks = split_ws(rest);
  if (toks.empty()) throw ScenarioParseError(line, "empty job spec");

  bool have_flops = false;
  bool have_latency = false;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const auto& tok = toks[i];
    if (i == 0 && tok == "cpu") {
      jc.usage = ResourceUsage::cpu(1.0);
      continue;
    }
    const auto eq = tok.find('=');
    if (eq == std::string::npos) {
      throw ScenarioParseError(line, "expected key=value, got '" + tok + "'");
    }
    const std::string key = tok.substr(0, eq);
    const std::string val = tok.substr(eq + 1);
    if (key == "gpu") {
      // gpu=nvidia:0.5
      const auto colon = val.find(':');
      const std::string type = colon == std::string::npos ? val : val.substr(0, colon);
      const double usage =
          colon == std::string::npos
              ? 1.0
              : to_num(val.substr(colon + 1), line, "gpu usage");
      jc.usage = ResourceUsage::gpu(to_gpu_type(type, line), usage,
                                    jc.usage.avg_ncpus != 1.0
                                        ? jc.usage.avg_ncpus
                                        : 0.05);
    } else if (key == "flops") {
      jc.flops_est = to_num(val, line, "flops");
      have_flops = true;
    } else if (key == "latency") {
      jc.latency_bound = to_num(val, line, "latency");
      have_latency = true;
    } else if (key == "ncpus") {
      jc.usage.avg_ncpus = to_num(val, line, "ncpus");
    } else if (key == "cpu_frac") {
      jc.usage.avg_ncpus = to_num(val, line, "cpu_frac");
    } else if (key == "cv") {
      jc.flops_cv = to_num(val, line, "cv");
    } else if (key == "est_error") {
      jc.est_error = to_num(val, line, "est_error");
    } else if (key == "checkpoint") {
      jc.checkpoint_period =
          val == "never" ? kNever : to_num(val, line, "checkpoint");
    } else if (key == "ram") {
      jc.ram_bytes = to_num(val, line, "ram");
    } else if (key == "transfer") {
      jc.transfer_delay = to_num(val, line, "transfer");
    } else if (key == "input_bytes") {
      jc.input_bytes = to_num(val, line, "input_bytes");
    } else if (key == "output_bytes") {
      jc.output_bytes = to_num(val, line, "output_bytes");
    } else if (key == "avail") {
      // avail=markov:ON:OFF
      std::vector<std::string> parts;
      std::istringstream is(val);
      std::string part;
      while (std::getline(is, part, ':')) parts.push_back(part);
      jc.avail = parse_onoff(parts, 0, line);
    } else if (key == "name") {
      jc.name = val;
    } else if (key == "error") {
      jc.error_rate = to_num(val, line, "error");
    } else if (key == "abort") {
      jc.abort_rate = to_num(val, line, "abort");
    } else {
      throw ScenarioParseError(line, "unknown job attribute '" + key + "'");
    }
  }
  if (!have_flops) throw ScenarioParseError(line, "job is missing flops=");
  if (!have_latency) throw ScenarioParseError(line, "job is missing latency=");
  return jc;
}

}  // namespace

Scenario parse_scenario(const std::string& text) {
  Scenario sc;
  sc.projects.clear();
  ProjectConfig* cur = nullptr;

  std::istringstream is(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(is, raw)) {
    ++lineno;
    const auto hash = raw.find('#');
    std::string s = trim(hash == std::string::npos ? raw : raw.substr(0, hash));
    if (s.empty()) continue;

    const auto colon = s.find(':');
    if (colon == std::string::npos) {
      throw ScenarioParseError(lineno, "expected 'key: value'");
    }
    const std::string key = trim(s.substr(0, colon));
    const std::string val = trim(s.substr(colon + 1));
    const auto toks = split_ws(val);

    if (key == "name") {
      sc.name = val;
    } else if (key == "duration_days") {
      sc.duration = to_num(val, lineno, "duration_days") * kSecondsPerDay;
    } else if (key == "duration") {
      sc.duration = to_num(val, lineno, "duration");
    } else if (key == "seed") {
      sc.seed = static_cast<std::uint64_t>(to_num(val, lineno, "seed"));
    } else if (key == "cpus") {
      // "4 @ 1e9"
      if (toks.size() != 3 || toks[1] != "@") {
        throw ScenarioParseError(lineno, "cpus: expects 'COUNT @ FLOPS'");
      }
      sc.host.count[ProcType::kCpu] =
          static_cast<int>(to_num(toks[0], lineno, "cpu count"));
      sc.host.flops_per_instance[ProcType::kCpu] =
          to_num(toks[2], lineno, "cpu flops");
    } else if (key == "gpu") {
      if (toks.size() != 4 || toks[2] != "@") {
        throw ScenarioParseError(lineno, "gpu: expects 'TYPE COUNT @ FLOPS'");
      }
      const ProcType t = to_gpu_type(toks[0], lineno);
      sc.host.count[t] = static_cast<int>(to_num(toks[1], lineno, "gpu count"));
      sc.host.flops_per_instance[t] = to_num(toks[3], lineno, "gpu flops");
    } else if (key == "ram") {
      sc.host.ram_bytes = to_num(val, lineno, "ram");
    } else if (key == "bandwidth") {
      sc.host.download_bandwidth_bps = to_num(val, lineno, "bandwidth");
    } else if (key == "device_ac") {
      sc.host.device.on_ac = parse_onoff(toks, 0, lineno);
    } else if (key == "device_wifi") {
      sc.host.device.on_wifi = parse_onoff(toks, 0, lineno);
    } else if (key == "battery_charge") {
      sc.host.device.battery_charge = to_num(val, lineno, "battery_charge");
    } else if (key == "battery_discharge") {
      sc.host.device.battery_discharge =
          to_num(val, lineno, "battery_discharge");
    } else if (key == "battery_recharge") {
      sc.host.device.battery_recharge =
          to_num(val, lineno, "battery_recharge");
    } else if (key == "min_queue") {
      sc.prefs.min_queue = to_num(val, lineno, "min_queue");
    } else if (key == "max_queue") {
      sc.prefs.max_queue = to_num(val, lineno, "max_queue");
    } else if (key == "ram_limit") {
      sc.prefs.ram_limit_fraction = to_num(val, lineno, "ram_limit");
    } else if (key == "poll_period") {
      sc.prefs.poll_period = to_num(val, lineno, "poll_period");
    } else if (key == "leave_in_memory") {
      sc.prefs.leave_apps_in_memory =
          to_num(val, lineno, "leave_in_memory") != 0.0;
    } else if (key == "faults") {
      // Preset base; individual fault_* keys may refine it afterwards.
      if (val == "off") {
        sc.faults = FaultPlan{};
      } else if (val == "light") {
        sc.faults = FaultPlan::light();
      } else if (val == "heavy") {
        sc.faults = FaultPlan::heavy();
      } else {
        throw ScenarioParseError(lineno, "faults: expects off, light or heavy");
      }
    } else if (key == "fault_job_error") {
      sc.faults.job_error_rate = to_num(val, lineno, "fault_job_error");
    } else if (key == "fault_job_abort") {
      sc.faults.job_abort_rate = to_num(val, lineno, "fault_job_abort");
    } else if (key == "fault_crash_mtbf") {
      sc.faults.crash_mtbf = to_num(val, lineno, "fault_crash_mtbf");
    } else if (key == "fault_crash_reboot") {
      sc.faults.crash_reboot_delay = to_num(val, lineno, "fault_crash_reboot");
    } else if (key == "fault_rpc_loss") {
      sc.faults.rpc_loss_rate = to_num(val, lineno, "fault_rpc_loss");
    } else if (key == "fault_rpc_timeout") {
      sc.faults.rpc_timeout = to_num(val, lineno, "fault_rpc_timeout");
    } else if (key == "fault_transfer_error") {
      sc.faults.transfer_error_rate = to_num(val, lineno, "fault_transfer_error");
    } else if (key == "fault_transfer_retry_min") {
      sc.faults.transfer_retry_min =
          to_num(val, lineno, "fault_transfer_retry_min");
    } else if (key == "fault_transfer_retry_max") {
      sc.faults.transfer_retry_max =
          to_num(val, lineno, "fault_transfer_retry_max");
    } else if (key == "avail_host") {
      sc.availability.host_on = parse_onoff(toks, 0, lineno);
    } else if (key == "avail_gpu") {
      sc.availability.gpu_allowed = parse_onoff(toks, 0, lineno);
    } else if (key == "avail_net") {
      sc.availability.network = parse_onoff(toks, 0, lineno);
    } else if (key == "project") {
      sc.projects.emplace_back();
      cur = &sc.projects.back();
      cur->name = val;
      cur->job_classes.clear();
    } else if (key == "share") {
      if (cur == nullptr) throw ScenarioParseError(lineno, "share: outside project");
      cur->resource_share = to_num(val, lineno, "share");
    } else if (key == "up") {
      if (cur == nullptr) throw ScenarioParseError(lineno, "up: outside project");
      cur->up = parse_onoff(toks, 0, lineno);
    } else if (key == "max_in_progress") {
      if (cur == nullptr) {
        throw ScenarioParseError(lineno, "max_in_progress: outside project");
      }
      cur->max_jobs_in_progress =
          static_cast<int>(to_num(val, lineno, "max_in_progress"));
    } else if (key == "replicas") {
      if (cur == nullptr) {
        throw ScenarioParseError(lineno, "replicas: outside project");
      }
      cur->target_replicas = static_cast<int>(to_num(val, lineno, "replicas"));
    } else if (key == "quorum") {
      if (cur == nullptr) {
        throw ScenarioParseError(lineno, "quorum: outside project");
      }
      cur->quorum = static_cast<int>(to_num(val, lineno, "quorum"));
    } else if (key == "no_gpu") {
      if (cur == nullptr) throw ScenarioParseError(lineno, "no_gpu: outside project");
      cur->no_gpu = to_num(val, lineno, "no_gpu") != 0.0;
    } else if (key == "suspended") {
      if (cur == nullptr) {
        throw ScenarioParseError(lineno, "suspended: outside project");
      }
      cur->suspended = to_num(val, lineno, "suspended") != 0.0;
    } else if (key == "resumable_transfers") {
      if (cur == nullptr) {
        throw ScenarioParseError(lineno, "resumable_transfers: outside project");
      }
      cur->transfers_resumable =
          to_num(val, lineno, "resumable_transfers") != 0.0;
    } else if (key == "job") {
      if (cur == nullptr) throw ScenarioParseError(lineno, "job: outside project");
      cur->job_classes.push_back(parse_job(val, lineno));
    } else {
      throw ScenarioParseError(lineno, "unknown key '" + key + "'");
    }
  }

  std::string err;
  if (!sc.validate(&err)) {
    throw std::invalid_argument("scenario fails validation: " + err);
  }
  return sc;
}

Scenario load_scenario_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open scenario file: " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return parse_scenario(buf.str());
}

std::string serialize_scenario(const Scenario& sc) {
  std::ostringstream os;
  os.precision(17);
  os << "name: " << sc.name << '\n';
  os << "duration: " << sc.duration << '\n';
  os << "seed: " << sc.seed << '\n';
  os << "cpus: " << sc.host.count[ProcType::kCpu] << " @ "
     << sc.host.flops_per_instance[ProcType::kCpu] << '\n';
  for (const auto t : kAllProcTypes) {
    if (is_gpu(t) && sc.host.count[t] > 0) {
      os << "gpu: " << proc_name(t) << ' ' << sc.host.count[t] << " @ "
         << sc.host.flops_per_instance[t] << '\n';
    }
  }
  os << "ram: " << sc.host.ram_bytes << '\n';
  if (sc.host.download_bandwidth_bps > 0.0) {
    os << "bandwidth: " << sc.host.download_bandwidth_bps << '\n';
  }
  // Device keys only when non-default, so pre-device serializations (and
  // the savestate fingerprints derived from them) are unchanged.
  if (sc.host.device.on_ac.kind != OnOffSpec::Kind::kAlwaysOn) {
    os << "device_ac: " << onoff_str(sc.host.device.on_ac) << '\n';
  }
  if (sc.host.device.on_wifi.kind != OnOffSpec::Kind::kAlwaysOn) {
    os << "device_wifi: " << onoff_str(sc.host.device.on_wifi) << '\n';
  }
  if (sc.host.device.battery_charge != 1.0) {
    os << "battery_charge: " << sc.host.device.battery_charge << '\n';
  }
  if (sc.host.device.battery_discharge != 0.0) {
    os << "battery_discharge: " << sc.host.device.battery_discharge << '\n';
  }
  if (sc.host.device.battery_recharge != 0.0) {
    os << "battery_recharge: " << sc.host.device.battery_recharge << '\n';
  }
  os << "min_queue: " << sc.prefs.min_queue << '\n';
  os << "max_queue: " << sc.prefs.max_queue << '\n';
  os << "ram_limit: " << sc.prefs.ram_limit_fraction << '\n';
  os << "poll_period: " << sc.prefs.poll_period << '\n';
  if (sc.prefs.leave_apps_in_memory) os << "leave_in_memory: 1\n";
  os << "avail_host: " << onoff_str(sc.availability.host_on) << '\n';
  os << "avail_gpu: " << onoff_str(sc.availability.gpu_allowed) << '\n';
  os << "avail_net: " << onoff_str(sc.availability.network) << '\n';
  {
    const FaultPlan def;
    const FaultPlan& f = sc.faults;
    if (f.job_error_rate != def.job_error_rate) {
      os << "fault_job_error: " << f.job_error_rate << '\n';
    }
    if (f.job_abort_rate != def.job_abort_rate) {
      os << "fault_job_abort: " << f.job_abort_rate << '\n';
    }
    if (f.crash_mtbf != def.crash_mtbf) {
      os << "fault_crash_mtbf: " << f.crash_mtbf << '\n';
    }
    if (f.crash_reboot_delay != def.crash_reboot_delay) {
      os << "fault_crash_reboot: " << f.crash_reboot_delay << '\n';
    }
    if (f.rpc_loss_rate != def.rpc_loss_rate) {
      os << "fault_rpc_loss: " << f.rpc_loss_rate << '\n';
    }
    if (f.rpc_timeout != def.rpc_timeout) {
      os << "fault_rpc_timeout: " << f.rpc_timeout << '\n';
    }
    if (f.transfer_error_rate != def.transfer_error_rate) {
      os << "fault_transfer_error: " << f.transfer_error_rate << '\n';
    }
    if (f.transfer_retry_min != def.transfer_retry_min) {
      os << "fault_transfer_retry_min: " << f.transfer_retry_min << '\n';
    }
    if (f.transfer_retry_max != def.transfer_retry_max) {
      os << "fault_transfer_retry_max: " << f.transfer_retry_max << '\n';
    }
  }

  for (const auto& p : sc.projects) {
    os << '\n' << "project: " << p.name << '\n';
    os << "share: " << p.resource_share << '\n';
    if (p.up.kind != OnOffSpec::Kind::kAlwaysOn) {
      os << "up: " << onoff_str(p.up) << '\n';
    }
    if (p.max_jobs_in_progress > 0) {
      os << "max_in_progress: " << p.max_jobs_in_progress << '\n';
    }
    if (p.target_replicas != 1) os << "replicas: " << p.target_replicas << '\n';
    if (p.quorum != 1) os << "quorum: " << p.quorum << '\n';
    if (p.no_gpu) os << "no_gpu: 1\n";
    if (p.suspended) os << "suspended: 1\n";
    if (!p.transfers_resumable) os << "resumable_transfers: 0\n";
    for (const auto& jc : p.job_classes) {
      os << "job:";
      if (jc.usage.uses_gpu()) {
        os << " gpu=" << proc_name(jc.usage.coproc) << ':'
           << jc.usage.coproc_usage << " cpu_frac=" << jc.usage.avg_ncpus;
      } else {
        os << " cpu ncpus=" << jc.usage.avg_ncpus;
      }
      os << " name=" << jc.name;
      os << " flops=" << jc.flops_est << " latency=" << jc.latency_bound;
      if (jc.flops_cv != 0.0) os << " cv=" << jc.flops_cv;
      if (jc.est_error != 1.0) os << " est_error=" << jc.est_error;
      if (std::isinf(jc.checkpoint_period)) {
        os << " checkpoint=never";
      } else if (jc.checkpoint_period != 300.0) {
        os << " checkpoint=" << jc.checkpoint_period;
      }
      if (jc.ram_bytes != 1e8) os << " ram=" << jc.ram_bytes;
      if (jc.transfer_delay != 0.0) os << " transfer=" << jc.transfer_delay;
      if (jc.input_bytes != 0.0) os << " input_bytes=" << jc.input_bytes;
      if (jc.output_bytes != 0.0) os << " output_bytes=" << jc.output_bytes;
      if (jc.avail.kind == OnOffSpec::Kind::kMarkov) {
        os << " avail=markov:" << jc.avail.mean_on << ':' << jc.avail.mean_off;
      }
      if (jc.error_rate >= 0.0) os << " error=" << jc.error_rate;
      if (jc.abort_rate >= 0.0) os << " abort=" << jc.abort_rate;
      os << '\n';
    }
  }
  return os.str();
}

}  // namespace bce
