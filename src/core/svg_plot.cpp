#include "core/svg_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/types.hpp"

namespace bce {

std::vector<double> nice_ticks(double lo, double hi, int target_count) {
  if (!(hi > lo)) hi = lo + 1.0;
  const double raw_step = (hi - lo) / std::max(target_count, 2);
  const double mag = std::pow(10.0, std::floor(std::log10(raw_step)));
  double step = mag;
  for (const double mult : {1.0, 2.0, 5.0, 10.0}) {
    if (mag * mult >= raw_step) {
      step = mag * mult;
      break;
    }
  }
  std::vector<double> ticks;
  const double first = std::ceil(lo / step - 1e-9) * step;
  for (double t = first; t <= hi + 1e-9 * step; t += step) {
    // Snap tiny float residue to zero.
    ticks.push_back(std::abs(t) < step * 1e-6 ? 0.0 : t);
  }
  return ticks;
}

namespace {

const char* kPalette[] = {"#1f77b4", "#d62728", "#2ca02c", "#9467bd",
                          "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f"};
constexpr int kPaletteSize = 8;

std::string fmt_num(double v) {
  char buf[32];
  if (std::abs(v) >= 10000.0 || (v != 0.0 && std::abs(v) < 0.01)) {
    std::snprintf(buf, sizeof buf, "%.3g", v);
  } else {
    std::snprintf(buf, sizeof buf, "%g", std::round(v * 1000.0) / 1000.0);
  }
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string SvgPlot::render(int width, int height) const {
  // Data ranges.
  double x_lo = 1e300;
  double x_hi = -1e300;
  double y_lo = y_fixed_ ? y_lo_ : 0.0;  // merit figures live in [0, ...)
  double y_hi = y_fixed_ ? y_hi_ : -1e300;
  for (const auto& s : series_) {
    for (const auto& [x, y] : s.points) {
      x_lo = std::min(x_lo, x);
      x_hi = std::max(x_hi, x);
      if (!y_fixed_) {
        y_lo = std::min(y_lo, y);
        y_hi = std::max(y_hi, y);
      }
    }
  }
  if (x_lo > x_hi) {
    x_lo = 0.0;
    x_hi = 1.0;
  }
  if (x_hi <= x_lo) x_hi = x_lo + 1.0;  // single-x data
  if (y_lo >= y_hi) y_hi = y_lo + 1.0;
  if (!y_fixed_) y_hi *= 1.05;  // headroom

  const double ml = 64.0;
  const double mr = 16.0;
  const double mt = 36.0;
  const double mb = 52.0;
  const double pw = width - ml - mr;
  const double ph = height - mt - mb;

  auto px = [&](double x) {
    return ml + (x - x_lo) / (x_hi - x_lo) * pw;
  };
  auto py = [&](double y) {
    return mt + ph - (y - y_lo) / (y_hi - y_lo) * ph;
  };

  std::ostringstream os;
  os << "<svg xmlns='http://www.w3.org/2000/svg' width='" << width
     << "' height='" << height << "' viewBox='0 0 " << width << ' ' << height
     << "'>\n"
     << "<rect width='100%' height='100%' fill='white'/>\n"
     << "<text x='" << width / 2 << "' y='22' text-anchor='middle' "
        "font-family='sans-serif' font-size='15' font-weight='bold'>"
     << escape(title_) << "</text>\n";

  // Grid + ticks.
  os << "<g font-family='sans-serif' font-size='11' fill='#333'>\n";
  for (const double t : nice_ticks(x_lo, x_hi)) {
    const double X = px(t);
    os << "<line x1='" << X << "' y1='" << mt << "' x2='" << X << "' y2='"
       << mt + ph << "' stroke='#ddd'/>\n"
       << "<text x='" << X << "' y='" << mt + ph + 16
       << "' text-anchor='middle'>" << fmt_num(t) << "</text>\n";
  }
  for (const double t : nice_ticks(y_lo, y_hi)) {
    const double Y = py(t);
    os << "<line x1='" << ml << "' y1='" << Y << "' x2='" << ml + pw
       << "' y2='" << Y << "' stroke='#ddd'/>\n"
       << "<text x='" << ml - 6 << "' y='" << Y + 4
       << "' text-anchor='end'>" << fmt_num(t) << "</text>\n";
  }
  os << "</g>\n";

  // Axes.
  os << "<rect x='" << ml << "' y='" << mt << "' width='" << pw
     << "' height='" << ph << "' fill='none' stroke='#444'/>\n"
     << "<text x='" << ml + pw / 2 << "' y='" << height - 12
     << "' text-anchor='middle' font-family='sans-serif' font-size='12'>"
     << escape(x_label_) << "</text>\n"
     << "<text x='14' y='" << mt + ph / 2
     << "' text-anchor='middle' font-family='sans-serif' font-size='12' "
        "transform='rotate(-90 14 "
     << mt + ph / 2 << ")'>" << escape(y_label_) << "</text>\n";

  // Series.
  for (std::size_t i = 0; i < series_.size(); ++i) {
    const char* color = kPalette[i % kPaletteSize];
    const auto& s = series_[i];
    if (!s.points.empty()) {
      os << "<polyline fill='none' stroke='" << color
         << "' stroke-width='2' points='";
      for (const auto& [x, y] : s.points) {
        os << px(x) << ',' << py(clamp(y, y_lo, y_hi)) << ' ';
      }
      os << "'/>\n";
      for (const auto& [x, y] : s.points) {
        os << "<circle cx='" << px(x) << "' cy='" << py(clamp(y, y_lo, y_hi))
           << "' r='3' fill='" << color << "'/>\n";
      }
    }
    // Legend entry.
    const double ly = mt + 14 + 16.0 * static_cast<double>(i);
    os << "<line x1='" << ml + 10 << "' y1='" << ly << "' x2='" << ml + 34
       << "' y2='" << ly << "' stroke='" << color << "' stroke-width='2'/>\n"
       << "<text x='" << ml + 40 << "' y='" << ly + 4
       << "' font-family='sans-serif' font-size='12'>" << escape(s.label)
       << "</text>\n";
  }
  os << "</svg>\n";
  return os.str();
}

bool SvgPlot::save(const std::string& path, int width, int height) const {
  std::ofstream f(path);
  if (!f) return false;
  f << render(width, height);
  return static_cast<bool>(f);
}

}  // namespace bce
