#include "core/savestate.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <numeric>

#include "core/scenario_io.hpp"

namespace bce {

namespace {

/// Header layout: magic[8] + u32 version + u64 fingerprint + u64 payload
/// length; a u64 FNV-1a of the payload trails the payload.
constexpr std::size_t kHeaderSize = 8 + 4 + 8 + 8;

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t read_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

std::uint64_t read_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

}  // namespace

std::uint64_t scenario_fingerprint(const Scenario& scenario,
                                   const PolicyConfig& policy) {
  // The text serialization is the canonical scenario identity (it
  // round-trips); zero the duration so savestates transfer across sweep
  // points that differ only in horizon.
  Scenario sc = scenario;
  sc.duration = 0.0;
  const std::string text = serialize_scenario(sc);
  std::uint64_t h = fnv1a64_bytes(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size());
  // Fold in every policy knob that steers scheduling decisions.
  char buf[256];
  std::snprintf(buf, sizeof(buf), "|%s|%s|%s|%d|%d|%.17g|%d|%d|%d",
                policy.selected_sched_name().c_str(),
                policy.selected_fetch_name().c_str(),
                policy.selected_dispatch_name().c_str(),
                static_cast<int>(policy.endangered_order),
                static_cast<int>(policy.transfer_order), policy.rec_half_life,
                policy.server_deadline_check ? 1 : 0,
                policy.fetch_deadline_suppression ? 1 : 0,
                policy.use_duration_correction ? 1 : 0);
  return fnv1a64_bytes(reinterpret_cast<const std::uint8_t*>(buf),
                       std::strlen(buf), h);
}

std::vector<std::uint8_t> capture_savestate(const Emulator& em) {
  StateWriter w;
  em.save_state(w);
  const std::vector<std::uint8_t>& payload = w.payload();

  std::vector<std::uint8_t> frame;
  frame.reserve(kHeaderSize + payload.size() + 8);
  frame.insert(frame.end(), kSavestateMagic, kSavestateMagic + 8);
  append_u32(frame, kSavestateVersion);
  append_u64(frame, scenario_fingerprint(em.scenario(), em.options().policy));
  append_u64(frame, payload.size());
  frame.insert(frame.end(), payload.begin(), payload.end());
  append_u64(frame, fnv1a64_bytes(payload.data(), payload.size()));
  return frame;
}

void restore_savestate(Emulator& em, const std::vector<std::uint8_t>& frame) {
  if (frame.size() < kHeaderSize) {
    throw SavestateError(SavestateErrc::kTruncated,
                         "file shorter than the savestate header");
  }
  if (std::memcmp(frame.data(), kSavestateMagic, 8) != 0) {
    throw SavestateError(SavestateErrc::kBadMagic,
                         "not a savestate file (bad magic)");
  }
  const std::uint32_t version = read_u32(frame.data() + 8);
  if (version != kSavestateVersion) {
    throw SavestateError(
        SavestateErrc::kBadVersion,
        "format version " + std::to_string(version) + ", this build reads " +
            std::to_string(kSavestateVersion));
  }
  const std::uint64_t fp = read_u64(frame.data() + 12);
  const std::uint64_t want =
      scenario_fingerprint(em.scenario(), em.options().policy);
  if (fp != want) {
    throw SavestateError(SavestateErrc::kScenarioMismatch,
                         "saved under a different scenario/policy");
  }
  const std::uint64_t payload_len = read_u64(frame.data() + 20);
  if (frame.size() < kHeaderSize + payload_len + 8) {
    throw SavestateError(SavestateErrc::kTruncated,
                         "file shorter than its header claims");
  }
  const std::uint8_t* payload = frame.data() + kHeaderSize;
  const std::uint64_t sum =
      read_u64(payload + payload_len);
  if (fnv1a64_bytes(payload, payload_len) != sum) {
    throw SavestateError(SavestateErrc::kCorrupt,
                         "payload checksum mismatch");
  }
  StateReader r(std::vector<std::uint8_t>(payload, payload + payload_len));
  em.restore_state(r);
  if (!r.at_end()) {
    throw SavestateError(SavestateErrc::kFieldMismatch,
                         "trailing payload bytes after the last field");
  }
}

void write_savestate_file(const std::string& path,
                          const std::vector<std::uint8_t>& frame) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw SavestateError(SavestateErrc::kIo, "cannot open " + path);
  }
  const std::size_t n = std::fwrite(frame.data(), 1, frame.size(), f);
  const bool ok = n == frame.size() && std::fclose(f) == 0;
  if (!ok) {
    throw SavestateError(SavestateErrc::kIo, "short write to " + path);
  }
}

std::vector<std::uint8_t> read_savestate_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw SavestateError(SavestateErrc::kIo, "cannot open " + path);
  }
  std::vector<std::uint8_t> frame;
  std::uint8_t buf[65536];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    frame.insert(frame.end(), buf, buf + n);
  }
  const bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) {
    throw SavestateError(SavestateErrc::kIo, "read error on " + path);
  }
  return frame;
}

std::vector<StateWriter::Entry> savestate_entries(const Emulator& em) {
  StateWriter w;
  w.record_entries(true);
  em.save_state(w);
  return w.entries();
}

std::vector<EmulationResult> run_duration_chain(
    const Scenario& scenario, const EmulationOptions& options,
    const std::vector<Duration>& durations) {
  std::vector<std::size_t> order(durations.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return durations[a] < durations[b];
  });

  std::vector<EmulationResult> results(durations.size());
  std::vector<std::uint8_t> prev;  // savestate from the previous duration
  for (std::size_t k = 0; k < order.size(); ++k) {
    Scenario sc = scenario;
    sc.duration = durations[order[k]];
    Emulator em(sc, options);
    if (!prev.empty()) restore_savestate(em, prev);

    // Arm a one-shot capture near this run's end for the next (longer)
    // run. Poll events recur every poll_period, so a boundary always lands
    // within the window [duration - 2 * poll, duration).
    std::vector<std::uint8_t> next;
    if (k + 1 < order.size()) {
      const SimTime save_at =
          std::max(em.now(), sc.duration - 2.0 * sc.prefs.poll_period);
      bool captured = false;
      em.set_checkpoint_hook([&next, &captured, save_at](Emulator& e) {
        if (!captured && e.now() + kFpEpsilon >= save_at) {
          next = capture_savestate(e);
          captured = true;
        }
      });
    }
    results[order[k]] = em.run();
    if (!next.empty()) prev = std::move(next);
  }
  return results;
}

}  // namespace bce
