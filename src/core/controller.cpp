#include "core/controller.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "client/policy_registry.hpp"

namespace bce {

std::vector<RunResult> run_batch(const std::vector<RunSpec>& specs,
                                 unsigned n_threads) {
  if (n_threads == 0) {
    n_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  n_threads = std::min<unsigned>(n_threads,
                                 static_cast<unsigned>(specs.size() ? specs.size() : 1));

  std::vector<RunResult> results(specs.size());
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= specs.size() || failed.load()) break;
      try {
        results[i].label = specs[i].label;
        results[i].result = emulate(specs[i].scenario, specs[i].options);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
        failed.store(true);
        break;
      }
    }
  };

  if (n_threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(n_threads);
    for (unsigned i = 0; i < n_threads; ++i) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }
  if (first_error) std::rethrow_exception(first_error);
  return results;
}

std::vector<RunResult> run_sweep(const std::vector<double>& params,
                                 const std::function<RunSpec(double)>& make,
                                 unsigned n_threads) {
  std::vector<RunSpec> specs;
  specs.reserve(params.size());
  for (const double p : params) specs.push_back(make(p));
  return run_batch(specs, n_threads);
}

std::vector<RunSpec> policy_matrix_specs(const Scenario& scenario,
                                         const EmulationOptions& base) {
  std::vector<RunSpec> specs;
  const auto orders = policy_registry().job_order_entries();
  const auto fetches = policy_registry().fetch_entries();
  specs.reserve(orders.size() * fetches.size());
  for (const auto& s : orders) {
    for (const auto& f : fetches) {
      RunSpec spec;
      spec.scenario = scenario;
      spec.options = base;
      spec.options.policy.sched_by_name = s.name;
      spec.options.policy.fetch_by_name = f.name;
      spec.label = s.name + "+" + f.name;
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

ReplicateSummary run_replicates(const Scenario& scenario,
                                const EmulationOptions& options, int n_seeds,
                                unsigned n_threads) {
  std::vector<RunSpec> specs;
  specs.reserve(static_cast<std::size_t>(n_seeds));
  for (int s = 1; s <= n_seeds; ++s) {
    RunSpec spec;
    spec.label = "seed" + std::to_string(s);
    spec.scenario = scenario;
    spec.scenario.seed = static_cast<std::uint64_t>(s);
    spec.options = options;
    specs.push_back(std::move(spec));
  }
  auto results = run_batch(specs, n_threads);

  ReplicateSummary out;
  for (auto& r : results) {
    const Metrics& m = r.result.metrics;
    out.idle.add(m.idle_fraction());
    out.wasted.add(m.wasted_fraction());
    out.share_violation.add(m.share_violation());
    out.monotony.add(m.monotony);
    out.rpcs_per_job.add(m.rpcs_per_job());
    out.score.add(m.weighted_score());
    out.runs.push_back(std::move(r.result));
  }
  return out;
}

}  // namespace bce
