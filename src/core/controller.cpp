#include "core/controller.hpp"

#include <stdexcept>
#include <string>

#include "client/policy_registry.hpp"
#include "core/savestate.hpp"
#include "sim/thread_pool.hpp"

namespace bce {

std::vector<RunResult> run_batch(const std::vector<RunSpec>& specs,
                                 unsigned n_threads) {
  std::vector<RunResult> results(specs.size());
  ThreadPool::shared().parallel_for(
      specs.size(), resolve_thread_count(n_threads), [&](std::size_t i) {
        try {
          // Fill the slot only once the emulation succeeded: if another
          // run throws, untouched slots stay default-initialized rather
          // than half-written (label set, result empty).
          results[i].result = emulate(specs[i].scenario, specs[i].options);
          results[i].label = specs[i].label;
        } catch (const std::exception& e) {
          // Name the culprit: the pool's fail-fast surfaces only the first
          // exception, and "item 31572 of 100000" beats a bare what().
          throw std::runtime_error("run_batch item " + std::to_string(i) +
                                   " (" + specs[i].label + "): " + e.what());
        }
      });
  return results;
}

std::vector<RunResult> run_sweep(const std::vector<double>& params,
                                 const std::function<RunSpec(double)>& make,
                                 unsigned n_threads) {
  std::vector<RunSpec> specs;
  specs.reserve(params.size());
  for (const double p : params) specs.push_back(make(p));
  return run_batch(specs, n_threads);
}

std::vector<ChainResult> run_chain_batch(const std::vector<ChainSpec>& specs,
                                         unsigned n_threads) {
  std::vector<ChainResult> results(specs.size());
  ThreadPool::shared().parallel_for(
      specs.size(), resolve_thread_count(n_threads), [&](std::size_t i) {
        try {
          results[i].results = run_duration_chain(
              specs[i].scenario, specs[i].options, specs[i].durations);
          results[i].label = specs[i].label;
        } catch (const std::exception& e) {
          throw std::runtime_error("run_chain_batch item " +
                                   std::to_string(i) + " (" + specs[i].label +
                                   "): " + e.what());
        }
      });
  return results;
}

std::vector<RunSpec> policy_matrix_specs(const Scenario& scenario,
                                         const EmulationOptions& base) {
  std::vector<RunSpec> specs;
  const auto orders = policy_registry().job_order_entries();
  const auto fetches = policy_registry().fetch_entries();
  specs.reserve(orders.size() * fetches.size());
  for (const auto& s : orders) {
    for (const auto& f : fetches) {
      RunSpec spec;
      spec.scenario = scenario;
      spec.options = base;
      spec.options.policy.sched_by_name = s.name;
      spec.options.policy.fetch_by_name = f.name;
      spec.label = s.name + "+" + f.name;
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

ReplicateSummary run_replicates(const Scenario& scenario,
                                const EmulationOptions& options, int n_seeds,
                                unsigned n_threads) {
  std::vector<RunSpec> specs;
  specs.reserve(static_cast<std::size_t>(n_seeds));
  for (int s = 1; s <= n_seeds; ++s) {
    RunSpec spec;
    spec.label = "seed" + std::to_string(s);
    spec.scenario = scenario;
    spec.scenario.seed = static_cast<std::uint64_t>(s);
    spec.options = options;
    specs.push_back(std::move(spec));
  }
  auto results = run_batch(specs, n_threads);

  ReplicateSummary out;
  for (auto& r : results) {
    const Metrics& m = r.result.metrics;
    out.idle.add(m.idle_fraction());
    out.wasted.add(m.wasted_fraction());
    out.share_violation.add(m.share_violation());
    out.monotony.add(m.monotony);
    out.rpcs_per_job.add(m.rpcs_per_job());
    out.score.add(m.weighted_score());
    out.runs.push_back(std::move(r.result));
  }
  return out;
}

}  // namespace bce
