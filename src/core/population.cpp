#include "core/population.hpp"

#include <string>

#include "sim/distribution.hpp"

namespace bce {

Scenario sample_scenario(Xoshiro256& rng, const PopulationParams& pp) {
  Scenario sc;
  sc.name = "sampled";
  sc.duration = pp.duration;
  sc.seed = rng();

  // Host hardware.
  const int ncpus =
      pp.min_cpus +
      static_cast<int>(rng.below(
          static_cast<std::uint64_t>(pp.max_cpus - pp.min_cpus + 1)));
  const double cpu_flops =
      sample_log_uniform(rng, pp.cpu_flops_lo, pp.cpu_flops_hi);
  sc.host = HostInfo::cpu_only(ncpus, cpu_flops);
  bool has_gpu = false;
  ProcType gpu_type = ProcType::kNvidia;
  if (sample_bernoulli(rng, pp.gpu_probability)) {
    has_gpu = true;
    gpu_type = sample_bernoulli(rng, 0.8) ? ProcType::kNvidia : ProcType::kAti;
    const int ngpus =
        1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(pp.max_gpus)));
    sc.host.count[gpu_type] = ngpus;
    sc.host.flops_per_instance[gpu_type] =
        cpu_flops * sample_log_uniform(rng, pp.gpu_speedup_lo, pp.gpu_speedup_hi);
  }
  sc.host.ram_bytes = sample_log_uniform(rng, 2e9, 32e9);

  // Preferences.
  sc.prefs.min_queue = sample_log_uniform(rng, 600.0, 0.5 * kSecondsPerDay);
  sc.prefs.max_queue =
      sc.prefs.min_queue * sample_log_uniform(rng, 1.5, 6.0);

  // Availability.
  if (sample_bernoulli(rng, pp.intermittent_probability)) {
    const double mean_on = sample_log_uniform(rng, pp.mean_on_lo, pp.mean_on_hi);
    const double mean_off = mean_on * sample_log_uniform(rng, 0.05, 1.0);
    sc.availability.host_on = OnOffSpec::markov(mean_on, mean_off);
  }
  if (has_gpu && sample_bernoulli(rng, 0.3)) {
    // "no GPU while the computer is in use" — a daily window.
    sc.availability.gpu_allowed =
        OnOffSpec::daily_window(18.0 * kSecondsPerHour, 8.0 * kSecondsPerHour);
  }

  // Projects.
  const int n_proj =
      pp.min_projects +
      static_cast<int>(rng.below(
          static_cast<std::uint64_t>(pp.max_projects - pp.min_projects + 1)));
  for (int i = 0; i < n_proj; ++i) {
    ProjectConfig p;
    p.name = "proj" + std::to_string(i);
    p.resource_share = sample_log_uniform(rng, 10.0, 1000.0);

    const bool gpu_project = has_gpu && sample_bernoulli(rng, 0.5);
    const bool cpu_project = !gpu_project || sample_bernoulli(rng, 0.6);

    if (cpu_project) {
      JobClass c;
      c.name = "cpu";
      const double runtime =
          sample_log_uniform(rng, pp.job_seconds_lo, pp.job_seconds_hi);
      c.flops_est = runtime * cpu_flops;
      c.flops_cv = rng.uniform(0.0, 0.3);
      c.latency_bound =
          runtime *
          sample_log_uniform(rng, pp.latency_factor_lo, pp.latency_factor_hi);
      c.usage = ResourceUsage::cpu(1.0);
      p.job_classes.push_back(c);
    }
    if (gpu_project) {
      JobClass g;
      g.name = "gpu";
      const double runtime =
          sample_log_uniform(rng, pp.job_seconds_lo, pp.job_seconds_hi);
      g.flops_est = runtime * sc.host.flops_per_instance[gpu_type];
      g.flops_cv = rng.uniform(0.0, 0.3);
      g.latency_bound =
          runtime *
          sample_log_uniform(rng, pp.latency_factor_lo, pp.latency_factor_hi);
      g.usage = ResourceUsage::gpu(gpu_type, 1.0, 0.05);
      p.job_classes.push_back(g);
    }
    if (sample_bernoulli(rng, 0.15)) {
      // Sporadically unavailable project server.
      p.up = OnOffSpec::markov(5.0 * kSecondsPerDay, 0.2 * kSecondsPerDay);
    }
    sc.projects.push_back(p);
  }
  return sc;
}

}  // namespace bce
