#pragma once

/// \file maxmin.hpp
/// Generic max-min-fair allocation of divisible resources to weighted
/// consumers with capability constraints: raise every consumer's total in
/// proportion to its share until a constraint binds (progressive filling),
/// freeze the blocked consumers, continue with the rest. Feasibility at
/// each level is decided with a small max-flow.
///
/// Used by core/share_split (processor types on one host, Figure 1) and by
/// fleet/allocator (host x type buckets across a volunteer's machines —
/// the cross-host share-enforcement extension of §6.2).

#include <cstddef>
#include <vector>

namespace bce {

struct MaxMinProblem {
  /// Capacity of each resource bucket (e.g. FLOPS).
  std::vector<double> capacity;

  struct Consumer {
    double share = 1.0;
    /// can_use[r]: whether this consumer can draw from bucket r. Must have
    /// the same size as `capacity`.
    std::vector<bool> can_use;
  };
  std::vector<Consumer> consumers;
};

struct MaxMinSolution {
  /// alloc[c][r]: amount of bucket r allocated to consumer c.
  std::vector<std::vector<double>> alloc;

  /// Total per consumer.
  std::vector<double> total;

  /// Final fill level: every consumer reaches total/share >= level unless
  /// blocked (all its usable buckets exhausted).
  double level = 0.0;
};

MaxMinSolution maxmin_allocate(const MaxMinProblem& problem);

}  // namespace bce
