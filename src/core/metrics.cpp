#include "core/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

#include "sim/state_io.hpp"

namespace bce {

double Metrics::weighted_score(const MetricWeights& w) const {
  const double total = w.idle + w.wasted + w.share_violation + w.monotony +
                       w.rpcs_per_job;
  if (total <= 0.0) return 0.0;
  return (w.idle * idle_fraction() + w.wasted * wasted_fraction() +
          w.share_violation * share_violation() + w.monotony * monotony +
          w.rpcs_per_job * rpcs_per_job_norm()) /
         total;
}

std::string Metrics::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "idle=%.3f wasted=%.3f share_viol=%.3f monotony=%.3f "
                "rpcs/job=%.2f (jobs=%lld missed=%lld rpcs=%lld)",
                idle_fraction(), wasted_fraction(), share_violation(),
                monotony, rpcs_per_job(),
                static_cast<long long>(n_jobs_completed),
                static_cast<long long>(n_jobs_missed),
                static_cast<long long>(n_rpcs));
  std::string out = buf;
  if (faults_fired()) {
    std::snprintf(buf, sizeof buf,
                  " faults: fail_wasted=%.3f retries/job=%.2f "
                  "recovery=%.0fs (failures=%lld aborts=%lld crashes=%lld "
                  "rpcs_lost=%lld xfer_retries=%lld)",
                  failure_wasted_fraction(), retries_per_job(),
                  mean_recovery_time(),
                  static_cast<long long>(n_job_failures),
                  static_cast<long long>(n_job_aborts),
                  static_cast<long long>(n_host_crashes),
                  static_cast<long long>(n_rpcs_lost),
                  static_cast<long long>(n_transfer_retries));
    out += buf;
  }
  if (replication_used()) {
    std::snprintf(buf, sizeof buf,
                  " replication: replica_wasted=%.3f quorum=%.2f "
                  "credit=%.3g (workunits=%lld met=%lld failed=%lld)",
                  replica_wasted_fraction(), quorum_rate(),
                  granted_credit_flops,
                  static_cast<long long>(n_workunits),
                  static_cast<long long>(n_quorum_met),
                  static_cast<long long>(n_quorum_failed));
    out += buf;
  }
  return out;
}

namespace {

/// Weighted mean with exact identity edges: a zero-weight side is dropped
/// entirely (copy, not 0-weighted arithmetic), so folding into an empty
/// accumulator reproduces the other side bitwise.
double weighted_mean(double a, double wa, double b, double wb) {
  if (wb <= 0.0) return a;
  if (wa <= 0.0) return b;
  return (a * wa + b * wb) / (wa + wb);
}

}  // namespace

void Metrics::merge(const Metrics& other) {
  // Weighted figures first: they need both sides' pre-merge totals.
  const double wu = used_flops;
  const double ou = other.used_flops;
  const double wa = available_flops;
  const double oa = other.available_flops;

  const std::size_t np =
      std::max(usage_fraction.size(), other.usage_fraction.size());
  usage_fraction.resize(np, 0.0);
  for (std::size_t p = 0; p < np; ++p) {
    const double theirs =
        p < other.usage_fraction.size() ? other.usage_fraction[p] : 0.0;
    usage_fraction[p] = weighted_mean(usage_fraction[p], wu, theirs, ou);
  }
  share_violation_rms =
      weighted_mean(share_violation_rms, wu, other.share_violation_rms, ou);
  monotony = weighted_mean(monotony, wa, other.monotony, oa);
  mean_exclusive_streak =
      weighted_mean(mean_exclusive_streak, wa, other.mean_exclusive_streak, oa);

  available_flops += other.available_flops;
  used_flops += other.used_flops;
  wasted_flops += other.wasted_flops;
  failure_wasted_flops += other.failure_wasted_flops;
  recovery_time_sum += other.recovery_time_sum;
  n_rpcs += other.n_rpcs;
  n_work_request_rpcs += other.n_work_request_rpcs;
  n_jobs_fetched += other.n_jobs_fetched;
  n_jobs_completed += other.n_jobs_completed;
  n_jobs_missed += other.n_jobs_missed;
  n_jobs_abandoned += other.n_jobs_abandoned;
  n_preemptions += other.n_preemptions;
  n_sched_passes += other.n_sched_passes;
  n_job_failures += other.n_job_failures;
  n_job_aborts += other.n_job_aborts;
  n_host_crashes += other.n_host_crashes;
  n_crash_recoveries += other.n_crash_recoveries;
  n_rpcs_lost += other.n_rpcs_lost;
  n_jobs_orphaned += other.n_jobs_orphaned;
  n_transfer_retries += other.n_transfer_retries;
  replica_wasted_flops += other.replica_wasted_flops;
  granted_credit_flops += other.granted_credit_flops;
  n_workunits += other.n_workunits;
  n_quorum_met += other.n_quorum_met;
  n_quorum_failed += other.n_quorum_failed;
  for (std::size_t c = 0; c < trace_events.size(); ++c) {
    trace_events[c] += other.trace_events[c];
  }
}

void save_metrics(StateWriter& w, const Metrics& m) {
  w.put_f64("wire.available_flops", m.available_flops);
  w.put_f64("wire.used_flops", m.used_flops);
  w.put_f64("wire.wasted_flops", m.wasted_flops);
  w.put_f64("wire.share_violation_rms", m.share_violation_rms);
  w.put_f64("wire.monotony", m.monotony);
  w.put_f64("wire.mean_exclusive_streak", m.mean_exclusive_streak);
  w.put_i64("wire.n_rpcs", m.n_rpcs);
  w.put_i64("wire.n_work_request_rpcs", m.n_work_request_rpcs);
  w.put_i64("wire.n_jobs_fetched", m.n_jobs_fetched);
  w.put_i64("wire.n_jobs_completed", m.n_jobs_completed);
  w.put_i64("wire.n_jobs_missed", m.n_jobs_missed);
  w.put_i64("wire.n_jobs_abandoned", m.n_jobs_abandoned);
  w.put_i64("wire.n_preemptions", m.n_preemptions);
  w.put_i64("wire.n_sched_passes", m.n_sched_passes);
  w.put_f64("wire.failure_wasted_flops", m.failure_wasted_flops);
  w.put_f64("wire.recovery_time_sum", m.recovery_time_sum);
  w.put_i64("wire.n_job_failures", m.n_job_failures);
  w.put_i64("wire.n_job_aborts", m.n_job_aborts);
  w.put_i64("wire.n_host_crashes", m.n_host_crashes);
  w.put_i64("wire.n_crash_recoveries", m.n_crash_recoveries);
  w.put_i64("wire.n_rpcs_lost", m.n_rpcs_lost);
  w.put_i64("wire.n_jobs_orphaned", m.n_jobs_orphaned);
  w.put_i64("wire.n_transfer_retries", m.n_transfer_retries);
  w.put_f64("wire.replica_wasted_flops", m.replica_wasted_flops);
  w.put_f64("wire.granted_credit_flops", m.granted_credit_flops);
  w.put_i64("wire.n_workunits", m.n_workunits);
  w.put_i64("wire.n_quorum_met", m.n_quorum_met);
  w.put_i64("wire.n_quorum_failed", m.n_quorum_failed);
  w.put_count("wire.usage_fraction", m.usage_fraction.size());
  for (const double u : m.usage_fraction) w.put_f64("wire.usage", u);
  w.put_count("wire.trace_events", m.trace_events.size());
  for (const std::int64_t t : m.trace_events) w.put_i64("wire.trace", t);
}

Metrics load_metrics(StateReader& r) {
  Metrics m;
  m.available_flops = r.get_f64("wire.available_flops");
  m.used_flops = r.get_f64("wire.used_flops");
  m.wasted_flops = r.get_f64("wire.wasted_flops");
  m.share_violation_rms = r.get_f64("wire.share_violation_rms");
  m.monotony = r.get_f64("wire.monotony");
  m.mean_exclusive_streak = r.get_f64("wire.mean_exclusive_streak");
  m.n_rpcs = r.get_i64("wire.n_rpcs");
  m.n_work_request_rpcs = r.get_i64("wire.n_work_request_rpcs");
  m.n_jobs_fetched = r.get_i64("wire.n_jobs_fetched");
  m.n_jobs_completed = r.get_i64("wire.n_jobs_completed");
  m.n_jobs_missed = r.get_i64("wire.n_jobs_missed");
  m.n_jobs_abandoned = r.get_i64("wire.n_jobs_abandoned");
  m.n_preemptions = r.get_i64("wire.n_preemptions");
  m.n_sched_passes = r.get_i64("wire.n_sched_passes");
  m.failure_wasted_flops = r.get_f64("wire.failure_wasted_flops");
  m.recovery_time_sum = r.get_f64("wire.recovery_time_sum");
  m.n_job_failures = r.get_i64("wire.n_job_failures");
  m.n_job_aborts = r.get_i64("wire.n_job_aborts");
  m.n_host_crashes = r.get_i64("wire.n_host_crashes");
  m.n_crash_recoveries = r.get_i64("wire.n_crash_recoveries");
  m.n_rpcs_lost = r.get_i64("wire.n_rpcs_lost");
  m.n_jobs_orphaned = r.get_i64("wire.n_jobs_orphaned");
  m.n_transfer_retries = r.get_i64("wire.n_transfer_retries");
  m.replica_wasted_flops = r.get_f64("wire.replica_wasted_flops");
  m.granted_credit_flops = r.get_f64("wire.granted_credit_flops");
  m.n_workunits = r.get_i64("wire.n_workunits");
  m.n_quorum_met = r.get_i64("wire.n_quorum_met");
  m.n_quorum_failed = r.get_i64("wire.n_quorum_failed");
  const std::uint64_t np = r.get_count("wire.usage_fraction");
  m.usage_fraction.resize(np);
  for (double& u : m.usage_fraction) u = r.get_f64("wire.usage");
  const std::uint64_t nt = r.get_count("wire.trace_events");
  if (nt != m.trace_events.size()) {
    throw SavestateError(SavestateErrc::kFieldMismatch,
                         "trace_events count mismatch");
  }
  for (std::int64_t& t : m.trace_events) t = r.get_i64("wire.trace");
  return m;
}

MetricsCollector::MetricsCollector(const HostInfo& host,
                                   std::vector<double> share_fractions)
    : host_(host), shares_(std::move(share_fractions)) {
  used_per_project_.assign(shares_.size(), 0.0);
}

void MetricsCollector::note_interval(
    Duration dt, double capacity_flops_rate,
    const std::vector<double>& used_flops_per_project, ProjectId exclusive) {
  if (dt <= 0.0) return;
  m_.available_flops += capacity_flops_rate * dt;
  assert(used_flops_per_project.size() == used_per_project_.size());
  for (std::size_t p = 0; p < used_flops_per_project.size(); ++p) {
    m_.used_flops += used_flops_per_project[p];
    used_per_project_[p] += used_flops_per_project[p];
  }

  // Exclusive-streak tracking for the monotony metric. Only meaningful
  // with >= 2 attached projects.
  if (shares_.size() < 2) return;
  if (exclusive == streak_project_ && exclusive != kNoProject) {
    streak_len_ += dt;
  } else {
    close_streak();
    streak_project_ = exclusive;
    streak_len_ = exclusive != kNoProject ? dt : 0.0;
  }
}

void MetricsCollector::close_streak() {
  if (streak_project_ != kNoProject && streak_len_ > 0.0) {
    streak_len_sum_ += streak_len_;
    streak_len_sq_sum_ += streak_len_ * streak_len_;
  }
  streak_project_ = kNoProject;
  streak_len_ = 0.0;
}

Metrics MetricsCollector::finalize(const std::vector<const Result*>& all_jobs,
                                   SimTime now) {
  close_streak();

  // Monotony: length-weighted mean exclusive-streak duration, squashed.
  if (streak_len_sum_ > 0.0) {
    m_.mean_exclusive_streak = streak_len_sq_sum_ / streak_len_sum_;
    m_.monotony =
        m_.mean_exclusive_streak / (m_.mean_exclusive_streak + kMonotonyRef);
  }

  // Waste: every FLOP ever spent on a job that missed (or can no longer
  // make) its deadline, including progress lost to preemption. Failed
  // jobs are pure waste regardless of deadline, tallied separately so the
  // failure-driven share of the waste is visible.
  for (const Result* r : all_jobs) {
    if (r->failed) {
      m_.wasted_flops += r->flops_spent;
      m_.failure_wasted_flops += r->flops_spent;
      continue;
    }
    const bool missed_completed = r->is_complete() && r->missed_deadline();
    const bool abandoned = !r->is_complete() && now > r->deadline;
    if (missed_completed || abandoned) {
      m_.wasted_flops += r->flops_spent;
      if (abandoned) ++m_.n_jobs_abandoned;
    }
  }

  // Resource-share violation: RMS over projects of (usage − share).
  double total_used = 0.0;
  for (const double u : used_per_project_) total_used += u;
  m_.usage_fraction.assign(shares_.size(), 0.0);
  if (total_used > 0.0) {
    double sq = 0.0;
    for (std::size_t p = 0; p < shares_.size(); ++p) {
      m_.usage_fraction[p] = used_per_project_[p] / total_used;
      const double d = m_.usage_fraction[p] - shares_[p];
      sq += d * d;
    }
    m_.share_violation_rms = std::sqrt(sq / static_cast<double>(shares_.size()));
  }
  return m_;
}

void MetricsCollector::save_state(StateWriter& w) const {
  w.put_f64("metrics.available_flops", m_.available_flops);
  w.put_f64("metrics.used_flops", m_.used_flops);
  w.put_f64("metrics.wasted_flops", m_.wasted_flops);
  w.put_i64("metrics.n_rpcs", m_.n_rpcs);
  w.put_i64("metrics.n_work_request_rpcs", m_.n_work_request_rpcs);
  w.put_i64("metrics.n_jobs_fetched", m_.n_jobs_fetched);
  w.put_i64("metrics.n_jobs_completed", m_.n_jobs_completed);
  w.put_i64("metrics.n_jobs_missed", m_.n_jobs_missed);
  w.put_i64("metrics.n_preemptions", m_.n_preemptions);
  w.put_i64("metrics.n_sched_passes", m_.n_sched_passes);
  w.put_f64("metrics.failure_wasted_flops", m_.failure_wasted_flops);
  w.put_f64("metrics.recovery_time_sum", m_.recovery_time_sum);
  w.put_i64("metrics.n_job_failures", m_.n_job_failures);
  w.put_i64("metrics.n_job_aborts", m_.n_job_aborts);
  w.put_i64("metrics.n_host_crashes", m_.n_host_crashes);
  w.put_i64("metrics.n_crash_recoveries", m_.n_crash_recoveries);
  w.put_i64("metrics.n_rpcs_lost", m_.n_rpcs_lost);
  w.put_i64("metrics.n_jobs_orphaned", m_.n_jobs_orphaned);
  w.put_i64("metrics.n_transfer_retries", m_.n_transfer_retries);
  w.put_count("metrics.used_per_project", used_per_project_.size());
  for (const double u : used_per_project_) w.put_f64("metrics.used", u);
  w.put_i64("metrics.streak_project", streak_project_);
  w.put_f64("metrics.streak_len", streak_len_);
  w.put_f64("metrics.streak_len_sum", streak_len_sum_);
  w.put_f64("metrics.streak_len_sq_sum", streak_len_sq_sum_);
}

void MetricsCollector::restore_state(StateReader& r) {
  m_.available_flops = r.get_f64("metrics.available_flops");
  m_.used_flops = r.get_f64("metrics.used_flops");
  m_.wasted_flops = r.get_f64("metrics.wasted_flops");
  m_.n_rpcs = r.get_i64("metrics.n_rpcs");
  m_.n_work_request_rpcs = r.get_i64("metrics.n_work_request_rpcs");
  m_.n_jobs_fetched = r.get_i64("metrics.n_jobs_fetched");
  m_.n_jobs_completed = r.get_i64("metrics.n_jobs_completed");
  m_.n_jobs_missed = r.get_i64("metrics.n_jobs_missed");
  m_.n_preemptions = r.get_i64("metrics.n_preemptions");
  m_.n_sched_passes = r.get_i64("metrics.n_sched_passes");
  m_.failure_wasted_flops = r.get_f64("metrics.failure_wasted_flops");
  m_.recovery_time_sum = r.get_f64("metrics.recovery_time_sum");
  m_.n_job_failures = r.get_i64("metrics.n_job_failures");
  m_.n_job_aborts = r.get_i64("metrics.n_job_aborts");
  m_.n_host_crashes = r.get_i64("metrics.n_host_crashes");
  m_.n_crash_recoveries = r.get_i64("metrics.n_crash_recoveries");
  m_.n_rpcs_lost = r.get_i64("metrics.n_rpcs_lost");
  m_.n_jobs_orphaned = r.get_i64("metrics.n_jobs_orphaned");
  m_.n_transfer_retries = r.get_i64("metrics.n_transfer_retries");
  const std::uint64_t n = r.get_count("metrics.used_per_project");
  (void)n;
  for (double& u : used_per_project_) u = r.get_f64("metrics.used");
  streak_project_ = static_cast<ProjectId>(r.get_i64("metrics.streak_project"));
  streak_len_ = r.get_f64("metrics.streak_len");
  streak_len_sum_ = r.get_f64("metrics.streak_len_sum");
  streak_len_sq_sum_ = r.get_f64("metrics.streak_len_sq_sum");
}

}  // namespace bce
