#pragma once

/// \file metrics.hpp
/// Figures of merit (§4.2). Each is scaled to [0,1] where 0 is good:
///
///  * **idle fraction** — fraction of *available* processing capacity
///    (peak-FLOPS-weighted over all processor types, counting only periods
///    when computing was allowed) that went unused;
///  * **wasted fraction** — fraction of available capacity spent on jobs
///    that did not complete by their deadline (including progress later
///    lost to preemption);
///  * **resource share violation** — RMS over projects of
///    (fraction of processing actually received − fractional share);
///  * **monotony** — squashed length-weighted mean duration of maximal
///    intervals during which only one project's jobs ran (see DESIGN.md);
///  * **RPCs per job** — scheduler RPCs divided by jobs completed, reported
///    raw and squashed as r/(1+r) for the normalized vector.
///
/// The metrics conflict; the overall evaluation is a subjectively-weighted
/// combination (§4.2), exposed via MetricWeights.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "host/host_info.hpp"
#include "model/job.hpp"
#include "sim/logger.hpp"
#include "sim/types.hpp"

namespace bce {

class StateReader;
class StateWriter;

struct MetricWeights {
  double idle = 1.0;
  double wasted = 1.0;
  double share_violation = 1.0;
  double monotony = 1.0;
  double rpcs_per_job = 1.0;
};

struct Metrics {
  // --- raw accumulators -------------------------------------------------
  double available_flops = 0.0;  ///< ∫ allowed capacity dt
  double used_flops = 0.0;       ///< ∫ running-job rates dt
  double wasted_flops = 0.0;     ///< FLOPs spent on deadline-missing jobs
  double share_violation_rms = 0.0;
  double monotony = 0.0;          ///< already normalized to [0,1)
  double mean_exclusive_streak = 0.0;  ///< seconds (diagnostics)

  std::int64_t n_rpcs = 0;            ///< all scheduler RPCs
  std::int64_t n_work_request_rpcs = 0;
  std::int64_t n_jobs_fetched = 0;
  std::int64_t n_jobs_completed = 0;
  std::int64_t n_jobs_missed = 0;     ///< completed after deadline
  std::int64_t n_jobs_abandoned = 0;  ///< unfinished with deadline passed
  std::int64_t n_preemptions = 0;
  std::int64_t n_sched_passes = 0;

  // --- fault-injection accounting (sim/fault.hpp; all zero in a
  // fault-free run) ------------------------------------------------------
  double failure_wasted_flops = 0.0;  ///< FLOPs spent on failed jobs
  double recovery_time_sum = 0.0;     ///< crash → first job running again
  std::int64_t n_job_failures = 0;    ///< compute errors
  std::int64_t n_job_aborts = 0;      ///< aborts
  std::int64_t n_host_crashes = 0;
  std::int64_t n_crash_recoveries = 0;  ///< crashes after which work resumed
  std::int64_t n_rpcs_lost = 0;         ///< scheduler replies dropped
  std::int64_t n_jobs_orphaned = 0;     ///< jobs stranded by lost replies
  std::int64_t n_transfer_retries = 0;  ///< errored download attempts

  // --- replication / quorum accounting (server dispatch; all trivial in
  // an unreplicated run: every completed workunit grants its estimate) ---
  double replica_wasted_flops = 0.0;  ///< FLOPs spent beyond the quorum on
                                      ///< multi-replica workunits
  double granted_credit_flops = 0.0;  ///< flops_est granted once per
                                      ///< quorum-met workunit
  std::int64_t n_workunits = 0;       ///< distinct workunits dispatched
  std::int64_t n_quorum_met = 0;      ///< workunits validated (quorum met)
  std::int64_t n_quorum_failed = 0;   ///< all replicas terminal, no quorum

  /// Per-project peak-FLOPS usage fractions (sums to 1 when any work ran).
  std::vector<double> usage_fraction;

  /// Decision-trace events observed per log category (sim/trace.hpp),
  /// indexed by LogCategory. Only events whose category was enabled on the
  /// emulator's trace are counted, so a run with tracing fully disabled
  /// reports zeros (and pays nothing to produce them).
  std::array<std::int64_t, kNumLogCategories> trace_events{};

  // --- normalized figures of merit [0,1], 0 = good ----------------------
  [[nodiscard]] double idle_fraction() const {
    if (available_flops <= 0.0) return 0.0;
    return clamp(1.0 - used_flops / available_flops, 0.0, 1.0);
  }
  [[nodiscard]] double wasted_fraction() const {
    if (available_flops <= 0.0) return 0.0;
    return clamp(wasted_flops / available_flops, 0.0, 1.0);
  }
  [[nodiscard]] double share_violation() const { return share_violation_rms; }
  [[nodiscard]] double rpcs_per_job() const {
    return n_jobs_completed > 0
               ? static_cast<double>(n_rpcs) /
                     static_cast<double>(n_jobs_completed)
               : static_cast<double>(n_rpcs);
  }
  [[nodiscard]] double rpcs_per_job_norm() const {
    const double r = rpcs_per_job();
    return r / (1.0 + r);
  }

  // --- degradation figures (fault studies; 0 when no faults fired) ------
  /// Fraction of available capacity burned by jobs that terminated
  /// abnormally (subset of wasted_fraction).
  [[nodiscard]] double failure_wasted_fraction() const {
    if (available_flops <= 0.0) return 0.0;
    return clamp(failure_wasted_flops / available_flops, 0.0, 1.0);
  }
  /// Fault-driven retries (lost-RPC retries + errored download attempts)
  /// per completed job.
  [[nodiscard]] double retries_per_job() const {
    const auto retries =
        static_cast<double>(n_rpcs_lost + n_transfer_retries);
    return n_jobs_completed > 0
               ? retries / static_cast<double>(n_jobs_completed)
               : retries;
  }
  /// Mean time from a host crash to the client running a job again.
  [[nodiscard]] double mean_recovery_time() const {
    return n_crash_recoveries > 0
               ? recovery_time_sum / static_cast<double>(n_crash_recoveries)
               : 0.0;
  }
  /// Any fault-channel activity in this run?
  [[nodiscard]] bool faults_fired() const {
    return n_job_failures > 0 || n_job_aborts > 0 || n_host_crashes > 0 ||
           n_rpcs_lost > 0 || n_transfer_retries > 0;
  }

  // --- replication figures (0 when no workunit was replicated) ----------
  /// Fraction of available capacity burned on redundant replicas.
  [[nodiscard]] double replica_wasted_fraction() const {
    if (available_flops <= 0.0) return 0.0;
    return clamp(replica_wasted_flops / available_flops, 0.0, 1.0);
  }
  /// Fraction of dispatched workunits that validated (met quorum).
  [[nodiscard]] double quorum_rate() const {
    return n_workunits > 0 ? static_cast<double>(n_quorum_met) /
                                 static_cast<double>(n_workunits)
                           : 0.0;
  }
  /// Any multi-replica dispatch in this run?
  [[nodiscard]] bool replication_used() const {
    return replica_wasted_flops > 0.0 ||
           n_workunits != n_jobs_fetched;
  }

  /// Subjectively-weighted overall score, [0,1], 0 = good.
  [[nodiscard]] double weighted_score(const MetricWeights& w = {}) const;

  /// Compact one-line summary for logs and quick comparisons.
  [[nodiscard]] std::string summary() const;

  /// Fold \p other into this, so a fleet/population run can stream one
  /// accumulator per shard instead of keeping per-host result rows
  /// (docs/fleet.md). Semantics:
  ///  * raw FLOP integrals and every event/fault counter sum;
  ///  * `usage_fraction` becomes the used-FLOPS-weighted mean, padded to
  ///    the longer vector (merging across hosts with different project
  ///    counts is allowed; missing projects contribute 0);
  ///  * `share_violation_rms` is used-FLOPS-weighted, `monotony` and
  ///    `mean_exclusive_streak` are available-FLOPS-weighted means — each
  ///    host's figure weighted by how much of the merged total it covers.
  /// Merging into (or from) a default-constructed Metrics copies the other
  /// side exactly, so a sequential left-fold is bitwise deterministic:
  /// folding the same sequence in the same order always yields the same
  /// bits, which is what the sharded supervisor's byte-identity invariant
  /// rests on. Merging is exactly commutative; associativity holds only up
  /// to floating-point rounding (tests/test_metrics_merge.cpp).
  void merge(const Metrics& other);
};

/// Bit-exact wire serialization of a Metrics (doubles as raw IEEE-754
/// bits): how shard workers ship their merged accumulator back to the
/// supervisor, and how shard checkpoints persist partial folds.
void save_metrics(StateWriter& w, const Metrics& m);
Metrics load_metrics(StateReader& r);

/// Streaming collector fed by the emulator main loop.
class MetricsCollector {
 public:
  MetricsCollector(const HostInfo& host, std::vector<double> share_fractions);

  /// Account one interval of length \p dt during which the running-set was
  /// constant. \p capacity_flops_rate: allowed peak FLOPS during the
  /// interval. \p used_flops_per_project: FLOPs each project's jobs
  /// performed over the interval. \p exclusive: the single project with
  /// running jobs, or kNoProject when zero or several projects ran.
  void note_interval(Duration dt, double capacity_flops_rate,
                     const std::vector<double>& used_flops_per_project,
                     ProjectId exclusive);

  /// Direct access to the event counters.
  Metrics& counters() { return m_; }

  /// Finish: computes waste from final job states, share violation and
  /// monotony. \p now is the end of the emulation (deadline comparisons
  /// for unfinished jobs).
  Metrics finalize(const std::vector<const Result*>& all_jobs, SimTime now);

  /// Savestate support (docs/savestate.md): serializes the raw metric
  /// accumulators, the per-project usage totals, and the open exclusive
  /// streak, so a restored run finalizes to bitwise-identical figures of
  /// merit. Host and shares are reconstructed from the scenario.
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  void close_streak();

  HostInfo host_;
  std::vector<double> shares_;
  std::vector<double> used_per_project_;
  Metrics m_;

  ProjectId streak_project_ = kNoProject;
  Duration streak_len_ = 0.0;
  double streak_len_sum_ = 0.0;
  double streak_len_sq_sum_ = 0.0;

  /// Reference streak length for the monotony squash (L / (L + L0)).
  static constexpr double kMonotonyRef = 3600.0;
};

}  // namespace bce
