#pragma once

/// \file report.hpp
/// Result-table helpers: the experiment harnesses in bench/ print the same
/// rows/series the paper's figures report, in aligned text and CSV.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace bce {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Aligned, human-readable rendering.
  void print(std::ostream& os) const;

  /// CSV rendering (no quoting; callers keep cells comma-free).
  void write_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const {
    return rows_.at(i);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with \p prec significant-looking decimals.
std::string fmt(double x, int prec = 3);

}  // namespace bce
