#include "core/emulator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "server/dispatch_policy.hpp"
#include "sim/state_io.hpp"

namespace bce {

namespace {
/// Tolerance for "this job is done" at completion events: one part in 1e9
/// of the job, or one FLOP, whichever is larger.
double completion_slack(const Result& r) {
  return std::max(1.0, r.flops_total * 1e-9);
}
}  // namespace

EmulationResult emulate(const Scenario& scenario,
                        const EmulationOptions& options) {
  Emulator em(scenario, options);
  return em.run();
}

const Scenario& Emulator::validated(const Scenario& sc) {
  std::string err;
  if (!sc.validate(&err)) {
    // Invariant violations are programming errors in scenario
    // construction; fail loudly.
    throw std::invalid_argument("invalid scenario: " + err);
  }
  return sc;
}

Emulator::Emulator(const Scenario& scenario, const EmulationOptions& options)
    : sc_(validated(scenario)),
      opt_(options),
      rng_(scenario.seed),
      avail_(scenario.availability, rng_, 0.0),
      client_(sc_, options.policy, &trace_),
      metrics_(sc_.host, client_.share_fractions()),
      timeline_(sc_.host) {
  // Sink wiring: the internal trace enables the union of the categories
  // the external logger and external trace want; each external consumer
  // re-filters with its own mask, so neither sees more than it asked for.
  if (opt_.logger != nullptr) {
    logger_sink_.emplace(*opt_.logger);
    trace_.add_sink(&*logger_sink_);
  }
  if (opt_.trace != nullptr) {
    forward_sink_.emplace(*opt_.trace);
    trace_.add_sink(&*forward_sink_);
  }
  trace_.add_sink(&counters_);
  for (std::size_t c = 0; c < kNumLogCategories; ++c) {
    const auto cat = static_cast<LogCategory>(c);
    const bool on =
        (opt_.logger != nullptr && opt_.logger->enabled(cat)) ||
        (opt_.trace != nullptr && opt_.trace->enabled(cat));
    trace_.enable(cat, on);
  }

  // Invariant auditing: caller-supplied, or always-on when the build
  // defines BCE_AUDIT (the `audit` preset). Checks never mutate
  // scheduling state, so audited runs stay byte-identical to unaudited
  // ones — they just fail loudly at the decision point that corrupted
  // state instead of finishing with poisoned results.
  audit_ = opt_.auditor;
#ifdef BCE_AUDIT
  if (audit_ == nullptr) {
    owned_auditor_.emplace();
    audit_ = &*owned_auditor_;
  }
#endif
  if (audit_ != nullptr) {
    // Clear per-run ordering state (event clock, RR-sim version) so one
    // auditor can vet successive emulations; checks_run() keeps counting.
    audit_->reset();
    client_.set_auditor(audit_);
    queue_.set_auditor(audit_);
  }

  ServerPolicy sp;
  sp.deadline_check = opt_.policy.server_deadline_check;
  sp.dispatch = make_dispatch_policy(opt_.policy);
  const double host_avail = sc_.availability.host_on.expected_on_fraction();
  servers_.reserve(sc_.projects.size());
  for (std::size_t p = 0; p < sc_.projects.size(); ++p) {
    servers_.emplace_back(static_cast<ProjectId>(p), sc_.projects[p], sc_.host,
                          sp, host_avail,
                          rng_.fork("server." + sc_.projects[p].name), 0.0);
  }
  // Forked last so pre-existing streams keep their derivation order (an
  // all-zero FaultPlan then changes nothing: the injector never draws).
  faults_ = FaultInjector(sc_.faults, rng_);
  // After faults_ for the same reason; a default (desktop) DeviceSpec
  // builds two always-on processes that never draw.
  device_ = DeviceModel(sc_.host.device, rng_.fork("device"), 0.0);
  project_events_.resize(sc_.projects.size(), kNoEvent);

  // Typical steady state keeps a few dozen pending events (per-task
  // completion/checkpoint timers, transfers, availability flips); pre-size
  // so the hot loop's schedule/cancel churn never reallocates.
  queue_.reserve(256);

  for (const auto t : kAllProcTypes) {
    slot_used_[t].assign(static_cast<std::size_t>(sc_.host.count[t]), false);
  }
  used_inst_secs_.resize(sc_.projects.size());
  runnable_flags_.resize(sc_.projects.size());
  used_flops_.resize(sc_.projects.size());
}

double Emulator::task_rate(const Result& r) const {
  return r.usage.flops_rate(sc_.host);
}

void Emulator::assign_slot(Result& r) {
  auto& used = slot_used_[r.usage.primary_type()];
  for (std::size_t i = 0; i < used.size(); ++i) {
    if (!used[i]) {
      used[i] = true;
      r.slot = static_cast<int>(i);
      return;
    }
  }
  r.slot = -1;  // over-committed; not drawn in the timeline
}

void Emulator::release_slot(Result& r) {
  if (r.slot >= 0) {
    slot_used_[r.usage.primary_type()][static_cast<std::size_t>(r.slot)] =
        false;
  }
  r.slot = -1;
}

void Emulator::preempt(Result& r, bool count) {
  if (!r.running) return;
  r.running = false;
  release_slot(r);
  if (!sc_.prefs.leave_apps_in_memory &&
      r.flops_done > r.checkpointed_flops) {
    // Roll back to the last checkpoint; the lost FLOPs stay in flops_spent.
    // Applied while acting on a scheduling decision, so deliberately no
    // state-version bump: the same-instant fetch pass must reuse the
    // reschedule's RR-sim view (see client_runtime.hpp).
    r.flops_done = r.checkpointed_flops;
    r.run_since_checkpoint = 0.0;
  }
  r.episode_checkpointed = true;
  if (count) ++metrics_.counters().n_preemptions;
  trace_.emit({.at = now_,
               .kind = TraceKind::kJobPreempted,
               .project = r.project,
               .job = r.id});
}

void Emulator::advance_to(SimTime t) {
  const Duration dt = t - now_;
  if (dt <= 0.0) return;

  // Progress active downloads; availability is constant over the interval.
  client_.transfers().advance_to(t,
                                 avail_.network_available() && !crash_down());

  // Per-project usage and runnable flags over the interval (the running
  // set and availability are constant within it).
  for (auto& u : used_inst_secs_) u = PerProc<double>{};
  for (auto& f : runnable_flags_) f = PerProc<bool>{};
  std::fill(used_flops_.begin(), used_flops_.end(), 0.0);

  for (const Result* r : active_) {
    if (!r->is_complete() && r->runnable(now_)) {
      runnable_flags_[static_cast<std::size_t>(r->project)]
                     [r->usage.primary_type()] = true;
    }
  }

  bool any_running = false;
  for (Result* r : active_) {
    if (!r->running) continue;
    any_running = true;
    const auto p = static_cast<std::size_t>(r->project);
    const double rate = task_rate(*r);
    const double progress = rate * dt;
    r->flops_done += progress;
    r->flops_spent += progress;
    used_flops_[p] += progress;
    for (const auto ty : kAllProcTypes) {
      const double u = r->usage.usage_of(ty);
      if (u > 0.0) used_inst_secs_[p][ty] += u * dt;
    }

    // Checkpoint boundaries crossed during the interval.
    if (std::isfinite(r->checkpoint_period)) {
      const double run_total = r->run_since_checkpoint + dt;
      const double k = std::floor(run_total / r->checkpoint_period);
      if (k > 0.0) {
        const double since = run_total - k * r->checkpoint_period;
        r->checkpointed_flops = r->flops_done - rate * since;
        r->run_since_checkpoint = since;
        r->episode_checkpointed = true;
      } else {
        r->run_since_checkpoint = run_total;
      }
    } else {
      r->run_since_checkpoint += dt;
    }

    if (opt_.record_timeline && r->slot >= 0) {
      timeline_.record(r->usage.primary_type(), r->slot, now_, t, r->project,
                       r->id);
    }
  }
  if (any_running) client_.on_progress();

  // Monotony input: the single project with running jobs during the
  // interval, or kNoProject when zero or several projects ran.
  ProjectId exclusive = kNoProject;
  {
    bool multiple = false;
    for (const Result* r : active_) {
      if (!r->running) continue;
      if (exclusive == kNoProject) {
        exclusive = r->project;
      } else if (exclusive != r->project) {
        multiple = true;
        break;
      }
    }
    if (multiple) exclusive = kNoProject;
  }

  // Available capacity during the interval.
  double cap_rate = 0.0;
  if (avail_.cpu_computing_allowed()) {
    cap_rate += sc_.host.peak_flops(ProcType::kCpu);
    if (avail_.gpu_computing_allowed()) {
      cap_rate += sc_.host.peak_flops(ProcType::kNvidia) +
                  sc_.host.peak_flops(ProcType::kAti);
    }
  }

  metrics_.note_interval(dt, cap_rate, used_flops_, exclusive);
  client_.charge(t, dt, used_inst_secs_, runnable_flags_);
  now_ = t;
}

void Emulator::handle_completions() {
  for (Result* r : active_) {
    if (!r->running) continue;
    // Injected failure boundary reached? A failure decided at dispatch
    // fires strictly before the job's natural completion (fail_fraction
    // < 1), so check it first.
    if (std::isfinite(r->fail_at_flops) &&
        r->flops_done >= r->fail_at_flops - completion_slack(*r)) {
      r->failed = true;
      r->aborted = r->will_abort;
      r->failed_at = now_;
      r->running = false;
      release_slot(*r);
      r->run_since_checkpoint = 0.0;
      // Error reports are tiny; the job is reportable immediately and the
      // server frees its in-progress slot on report.
      r->uploaded = true;
      client_.on_job_failed(*r);
      if (r->aborted) {
        ++metrics_.counters().n_job_aborts;
      } else {
        ++metrics_.counters().n_job_failures;
      }
      trace_.emit({.at = now_,
                   .kind = TraceKind::kJobFaulted,
                   .project = r->project,
                   .job = r->id,
                   .flag = r->aborted,
                   .v0 = 100.0 * r->flops_done / r->flops_total});
      continue;
    }
    if (r->flops_remaining() <= completion_slack(*r)) {
      r->flops_done = r->flops_total;
      r->completed_at = now_;
      r->running = false;
      release_slot(*r);
      r->run_since_checkpoint = 0.0;
      client_.on_job_completed(*r);
      ++metrics_.counters().n_jobs_completed;
      if (r->missed_deadline()) ++metrics_.counters().n_jobs_missed;
      // Upload output files before the job can be reported.
      if (client_.transfers().modeled() && r->output_bytes > 0.0) {
        client_.transfers().add(
            r->id, r->output_bytes, r->deadline, now_,
            sc_.projects[static_cast<std::size_t>(r->project)]
                .transfers_resumable);
      } else {
        r->uploaded = true;
      }
      trace_.emit({.at = now_,
                   .kind = TraceKind::kJobCompleted,
                   .project = r->project,
                   .job = r->id,
                   .flag = r->missed_deadline()});
    }
  }
  active_.erase(std::remove_if(active_.begin(), active_.end(),
                               [](Result* r) { return r->terminal(); }),
                active_.end());
  schedule_transfer_event();  // uploads may have been enqueued
}

void Emulator::schedule_task_event() {
  if (task_event_ != kNoEvent) {
    queue_.cancel(task_event_);
    task_event_ = kNoEvent;
  }
  double dt_min = kNever;
  for (const Result* r : active_) {
    if (!r->running) continue;
    const double rate = task_rate(*r);
    if (rate <= 0.0) continue;
    // The next boundary is the natural completion or, for a doomed job,
    // its injected failure point — whichever comes first.
    const double target =
        std::min(r->flops_remaining(), r->fail_at_flops - r->flops_done);
    dt_min = std::min(dt_min, std::max(0.0, target) / rate);
  }
  if (std::isfinite(dt_min)) {
    task_event_ =
        queue_.schedule(now_ + dt_min, EventKind::kTaskCompletion);
  }
}

void Emulator::schedule_transfer_event() {
  if (transfer_event_ != kNoEvent) {
    queue_.cancel(transfer_event_);
    transfer_event_ = kNoEvent;
  }
  const SimTime t = client_.transfers().next_completion(
      avail_.network_available() && !crash_down());
  // Duration-independence: events are scheduled unconditionally, past the
  // scenario end too (the main loop never pops them — it breaks at the
  // duration first). Filtering on sc_.duration here would make the event
  // stream — and hence RNG draw order and savestates — depend on how long
  // the run is, breaking warm-started sweeps (docs/savestate.md).
  if (std::isfinite(t)) {
    transfer_event_ = queue_.schedule(std::max(t, now_), EventKind::kTransfer);
  }
}

void Emulator::handle_finished_transfers() {
  const auto completed = client_.transfers().take_completed();
  if (completed.empty()) return;
  for (const JobId id : completed) {
    // Job ids are allocated sequentially as jobs are created, so the id
    // indexes jobs_ directly.
    assert(id >= 0 && static_cast<std::size_t>(id) < jobs_.size());
    Result& r = *jobs_[static_cast<std::size_t>(id)];
    if (r.is_complete()) {
      // This was the result upload: the job is now reportable.
      r.uploaded = true;
      trace_.emit({.at = now_, .kind = TraceKind::kJobUploaded, .job = id});
    } else {
      r.runnable_at = std::min(r.runnable_at, now_);
      trace_.emit({.at = now_, .kind = TraceKind::kJobDownloaded, .job = id});
    }
  }
  client_.on_jobs_runnable();
}

void Emulator::schedule_avail_event() {
  if (avail_event_ != kNoEvent) {
    queue_.cancel(avail_event_);
    avail_event_ = kNoEvent;
  }
  const SimTime t = avail_.next_transition();
  if (std::isfinite(t)) {
    avail_event_ = queue_.schedule(t, EventKind::kHostTransition);
  }
}

void Emulator::schedule_project_event(std::size_t p) {
  if (project_events_[p] != kNoEvent) {
    queue_.cancel(project_events_[p]);
    project_events_[p] = kNoEvent;
  }
  const SimTime t = servers_[p].next_transition();
  if (std::isfinite(t)) {
    project_events_[p] = queue_.schedule(t, EventKind::kProjectTransition,
                                         static_cast<std::int64_t>(p));
  }
}

void Emulator::schedule_crash_event(SimTime from) {
  if (crash_event_ != kNoEvent) {
    queue_.cancel(crash_event_);
    crash_event_ = kNoEvent;
  }
  const SimTime t = faults_.next_crash(from);
  if (std::isfinite(t)) {
    crash_event_ = queue_.schedule(t, EventKind::kHostCrash);
  }
}

void Emulator::handle_crash() {
  ++metrics_.counters().n_host_crashes;
  trace_.emit({.at = now_,
               .kind = TraceKind::kHostCrash,
               .v0 = sc_.faults.crash_reboot_delay});
  // A crash loses everything since the last checkpoint regardless of
  // leave_apps_in_memory (memory contents are gone). Not a scheduling
  // preemption: no preemption count, and the runtime is told afterwards.
  for (Result* r : active_) {
    if (!r->running) continue;
    r->running = false;
    release_slot(*r);
    r->flops_done = r->checkpointed_flops;
    r->run_since_checkpoint = 0.0;
    r->episode_checkpointed = true;
  }
  client_.on_availability_change();
  crash_down_until_ = now_ + sc_.faults.crash_reboot_delay;
  pending_crash_ = now_;
  queue_.schedule(crash_down_until_, EventKind::kHostRecover);
  schedule_task_event();      // nothing is running now
  schedule_transfer_event();  // link down until reboot completes
}

void Emulator::handle_crash_recover() {
  trace_.emit({.at = now_, .kind = TraceKind::kHostReboot});
  client_.on_availability_change();
  schedule_crash_event(now_);  // arm the next crash
  schedule_transfer_event();   // link back up
}

void Emulator::reschedule() {
  ++metrics_.counters().n_sched_passes;
  const bool cpu_ok = avail_.cpu_computing_allowed() && !crash_down();
  const bool gpu_ok = avail_.gpu_computing_allowed() && !crash_down();
  const ScheduleOutcome& outcome =
      client_.schedule_jobs(now_, active_, cpu_ok, gpu_ok);

  // Preempt running jobs not selected.
  for (Result* r : active_) {
    if (!r->running) continue;
    const bool keep = std::find(outcome.to_run.begin(), outcome.to_run.end(),
                                r) != outcome.to_run.end();
    if (!keep) preempt(*r, /*count=*/true);
  }
  // Start newly selected jobs.
  for (Result* r : outcome.to_run) {
    if (r->running) continue;
    r->running = true;
    r->run_since_checkpoint = 0.0;
    r->episode_checkpointed = false;
    if (r->first_started == kNever) r->first_started = now_;
    assign_slot(*r);
    trace_.emit({.at = now_,
                 .kind = TraceKind::kJobStarted,
                 .project = r->project,
                 .job = r->id});
    // First job running again after a crash closes the recovery sample.
    if (pending_crash_ < kNever) {
      metrics_.counters().recovery_time_sum += now_ - pending_crash_;
      ++metrics_.counters().n_crash_recoveries;
      pending_crash_ = kNever;
    }
  }
  schedule_task_event();
}

void Emulator::do_rpc(ProjectId p, const WorkRequest& req,
                      bool is_work_request) {
  client_.on_rpc_sent(now_, p, is_work_request);
  ++metrics_.counters().n_rpcs;
  if (is_work_request) ++metrics_.counters().n_work_request_rpcs;

  // Report finished (completed-and-uploaded, or failed) unreported jobs
  // of this project (piggybacked on every RPC, as in BOINC). Marking is
  // deferred until the reply arrives: if it is lost in flight the client
  // does not know the server processed the reports and re-sends them
  // later (the server's max(0,·) clamp absorbs the duplicates).
  std::vector<Result*> to_report;
  for (const auto& jp : jobs_) {
    if (jp->project == p && jp->terminal() && jp->uploaded && !jp->reported) {
      to_report.push_back(jp.get());
    }
  }
  const int reported = static_cast<int>(to_report.size());
  int n_failed = 0;
  for (const Result* r : to_report) {
    if (r->failed) ++n_failed;
  }

  // The request carries the host's current device status (battery/AC/
  // wifi), which device-aware dispatch policies read; the copy keeps the
  // client-side reply handling below on the caller's original request.
  device_.advance_to(now_);
  WorkRequest stamped = req;
  stamped.device = device_.status();

  const JobId id0 = next_job_id_;
  RpcReply reply = servers_[static_cast<std::size_t>(p)].handle_rpc(
      now_, stamped, reported, next_job_id_, trace_, n_failed);
  schedule_project_event(static_cast<std::size_t>(p));

  if (faults_.rpc_reply_lost()) {
    // The reply is dropped in flight: the client sees nothing; the jobs
    // the server just assigned sit orphaned in its in-progress count
    // until the timeout reclaims them. Their ids are recycled (the
    // client-side jobs_ array never learns of them). The client retries
    // under its own exponential backoff, separate from "project down".
    const auto n_lost = static_cast<int>(reply.jobs.size());
    servers_[static_cast<std::size_t>(p)].on_reply_lost(
        now_, n_lost, sc_.faults.rpc_timeout);
    schedule_project_event(static_cast<std::size_t>(p));  // reclaim wake-up
    next_job_id_ = id0;
    ++metrics_.counters().n_rpcs_lost;
    metrics_.counters().n_jobs_orphaned += n_lost;
    const SimTime retry = client_.on_rpc_lost(now_, p);
    if (std::isfinite(retry)) {
      queue_.schedule(retry, EventKind::kRpcDeferral);
    }
    trace_.emit({.at = now_,
                 .kind = TraceKind::kRpcReplyLost,
                 .project = p,
                 .n = n_lost});
    return;
  }
  for (Result* r : to_report) r->reported = true;

  if (is_work_request || reply.project_down) {
    client_.on_rpc_reply(now_, req, reply, p);
  }

  trace_.emit({.at = now_,
               .kind = TraceKind::kRpcRoundTrip,
               .project = p,
               .flag = reply.project_down,
               .n = reported,
               .m = static_cast<std::int64_t>(reply.jobs.size())});

  if (!reply.jobs.empty()) {
    metrics_.counters().n_jobs_fetched +=
        static_cast<std::int64_t>(reply.jobs.size());
    for (auto& job : reply.jobs) {
      jobs_.push_back(std::make_unique<Result>(job));
      Result* r = jobs_.back().get();
      client_.on_job_arrival(*r);
      active_.push_back(r);
      // Modeled download link: the job becomes runnable when its input
      // files arrive (on top of any fixed transfer_delay).
      // Fate decided at dispatch: a doomed job carries its failure point
      // (no RNG draws when the effective rates are zero).
      const JobClass& jc =
          sc_.projects[static_cast<std::size_t>(p)]
              .job_classes[static_cast<std::size_t>(r->job_class)];
      const double err_rate =
          jc.error_rate >= 0.0 ? jc.error_rate : sc_.faults.job_error_rate;
      const double abort_rate =
          jc.abort_rate >= 0.0 ? jc.abort_rate : sc_.faults.job_abort_rate;
      const FaultInjector::JobFate fate =
          faults_.job_fate(err_rate, abort_rate);
      if (fate.fails) {
        r->fail_at_flops = fate.fail_fraction * r->flops_total;
        r->will_abort = fate.abort;
      }
      if (client_.transfers().modeled() && r->input_bytes > 0.0) {
        if (!client_.transfers().add(
                r->id, r->input_bytes, r->deadline, now_,
                sc_.projects[static_cast<std::size_t>(p)]
                    .transfers_resumable)) {
          r->runnable_at = kNever;  // released by handle_finished_transfers
        }
      }
    }
    schedule_transfer_event();
    // New jobs start at the next scheduling point (<= one poll period
    // away), matching the real client's schedule-enforcement cadence —
    // a freshly fetched job does not run the instant the RPC returns.
  }
}

void Emulator::work_fetch_pass() {
  if (!avail_.network_available() || crash_down()) return;

  // Report-deadline RPCs: finished jobs must be reported within
  // max_report_delay even if no work is needed.
  for (std::size_t p = 0; p < sc_.projects.size(); ++p) {
    bool due = false;
    for (const auto& jp : jobs_) {
      if (jp->project == static_cast<ProjectId>(p) && jp->terminal() &&
          jp->uploaded && !jp->reported &&
          jp->terminal_at() + sc_.prefs.max_report_delay <= now_) {
        due = true;
        break;
      }
    }
    if (due && now_ >= client_.next_allowed_rpc(static_cast<ProjectId>(p))) {
      do_rpc(static_cast<ProjectId>(p), WorkRequest{}, /*is_work_request=*/false);
    }
  }

  // At most one work-request RPC per pass (per client poll), as in BOINC.
  WorkFetch::Decision d = client_.choose_fetch(now_, active_);
  if (d.fetch()) {
    do_rpc(d.project, d.request, /*is_work_request=*/true);
  }
}

EmulationResult Emulator::run() {
  if (!primed_) {
    queue_.schedule(0.0, EventKind::kPoll);
    schedule_avail_event();
    for (std::size_t p = 0; p < servers_.size(); ++p) {
      schedule_project_event(p);
    }
    schedule_crash_event(0.0);  // no-op when the crash channel is off
    primed_ = true;
  }

  while (true) {
    const SimTime t = std::min(queue_.next_time(), sc_.duration);
    advance_to(t);
    if (now_ >= sc_.duration - kFpEpsilon) break;

    bool need_sched = false;
    bool need_fetch = false;
    while (!queue_.empty() && queue_.next_time() <= now_ + kFpEpsilon) {
      const Event ev = queue_.pop();
      switch (ev.kind) {
        case EventKind::kPoll:
          need_sched = need_fetch = true;
          queue_.schedule(now_ + sc_.prefs.poll_period, EventKind::kPoll);
          break;
        case EventKind::kTaskCompletion:
          task_event_ = kNoEvent;
          handle_completions();
          need_sched = need_fetch = true;
          break;
        case EventKind::kHostTransition: {
          avail_event_ = kNoEvent;
          avail_.advance_to(now_);
          client_.on_availability_change();
          trace_.emit({.at = now_,
                       .kind = TraceKind::kAvailability,
                       .flag = avail_.network_available(),
                       .n = avail_.cpu_computing_allowed() ? 1 : 0,
                       .m = avail_.gpu_computing_allowed() ? 1 : 0});
          schedule_avail_event();
          schedule_transfer_event();  // link state changed
          need_sched = true;
          need_fetch = avail_.network_available();
          break;
        }
        case EventKind::kProjectTransition: {
          const auto p = static_cast<std::size_t>(ev.payload);
          project_events_[p] = kNoEvent;
          servers_[p].advance_to(now_);
          schedule_project_event(p);
          break;
        }
        case EventKind::kRpcDeferral:
          need_fetch = true;
          break;
        case EventKind::kTransfer:
          transfer_event_ = kNoEvent;
          // The drain loop pops events up to now_ + kFpEpsilon without
          // running advance_to, so a transfer boundary within that window
          // (e.g. a fail point one ULP ahead after many short retries)
          // would never be crossed and the event would re-arm itself at
          // the same instant forever. Advance the link to the event's own
          // time so the boundary is actually processed.
          client_.transfers().advance_to(
              ev.at, avail_.network_available() && !crash_down());
          handle_finished_transfers();
          schedule_transfer_event();
          need_sched = true;
          break;
        case EventKind::kHostCrash:
          crash_event_ = kNoEvent;
          handle_crash();
          need_sched = need_fetch = true;
          break;
        case EventKind::kHostRecover:
          handle_crash_recover();
          need_sched = need_fetch = true;
          break;
        case EventKind::kTaskCheckpoint:  // checkpoints are computed
        case EventKind::kUser:            // arithmetically, not evented
          break;
      }
    }

    if (need_sched) reschedule();
    if (need_fetch) work_fetch_pass();

    // Inter-event boundary: the drain and the scheduling/fetch passes for
    // this instant are done, no interval is split. Savestates captured
    // here are byte-identical to the same boundary of any longer run.
    if (checkpoint_fn_) checkpoint_fn_(*this);
  }

  // Finalize: stop running tasks (without counting preemptions) and build
  // the result.
  handle_completions();
  for (Result* r : active_) {
    if (r->running) preempt(*r, /*count=*/false);
  }

  metrics_.counters().n_transfer_retries = client_.transfers().retries();
  metrics_.counters().trace_events = counters_.counts();

  // Replication/quorum accounting. Replicas of a workunit are dispatched
  // in one reply and appended to jobs_ in order, so each workunit is a
  // contiguous run (keyed by the primary's id; kNoJob-keyed jobs — not
  // made by a ProjectServer — group by their own id). Recomputed here from
  // job states rather than streamed, so savestate restores need no extra
  // collector fields.
  {
    Metrics& c = metrics_.counters();
    std::size_t i = 0;
    while (i < jobs_.size()) {
      const Result& first = *jobs_[i];
      const JobId key = first.workunit == kNoJob ? first.id : first.workunit;
      std::size_t j = i;
      while (j < jobs_.size() &&
             (jobs_[j]->workunit == kNoJob ? jobs_[j]->id
                                           : jobs_[j]->workunit) == key) {
        ++j;
      }
      ++c.n_workunits;
      const int q = std::max(
          1, sc_.projects[static_cast<std::size_t>(first.project)].quorum);
      int successes = 0;
      bool all_terminal = true;
      for (std::size_t k = i; k < j; ++k) {
        const Result& r = *jobs_[k];
        if (r.is_complete()) {
          ++successes;
          // Successful replicas past the quorum are pure redundancy; the
          // waste of failed replicas is already failure_wasted_flops.
          if (successes > q && j - i > 1) {
            c.replica_wasted_flops += r.flops_spent;
          }
        } else if (!r.terminal()) {
          all_terminal = false;
        }
      }
      if (successes >= q) {
        ++c.n_quorum_met;
        c.granted_credit_flops += first.flops_est;
      } else if (all_terminal) {
        ++c.n_quorum_failed;
      }
      i = j;
    }
  }

  EmulationResult res;
  std::vector<const Result*> all;
  all.reserve(jobs_.size());
  for (const auto& jp : jobs_) all.push_back(jp.get());
  res.metrics = metrics_.finalize(all, now_);
  if (audit_ != nullptr) audit_->check_metrics(res.metrics);
  res.timeline = std::move(timeline_);
  res.jobs.reserve(jobs_.size());
  for (const auto& jp : jobs_) res.jobs.push_back(*jp);

  res.project_stats.resize(sc_.projects.size());
  for (const auto& jp : jobs_) {
    ProjectStats& ps = res.project_stats[static_cast<std::size_t>(jp->project)];
    ++ps.jobs_fetched;
    ps.flops_used += jp->flops_spent;
    if (jp->failed) {
      ++ps.jobs_failed;
    } else if (jp->is_complete()) {
      ++ps.jobs_completed;
      if (jp->missed_deadline()) ++ps.jobs_missed;
      ps.turnaround.add(jp->completed_at - jp->received);
    }
    if (jp->first_started < kNever) {
      ps.queue_wait.add(jp->first_started - jp->received);
    }
  }
  const Accounting& acct = client_.accounting();
  res.final_rec.resize(sc_.projects.size());
  res.final_debt.resize(sc_.projects.size());
  for (std::size_t p = 0; p < sc_.projects.size(); ++p) {
    res.final_rec[p] = acct.rec(static_cast<ProjectId>(p));
    for (const auto t : kAllProcTypes) {
      res.final_debt[p][t] = acct.debt(static_cast<ProjectId>(p), t);
    }
  }
  res.rr_cache = client_.rr_cache_stats();
  return res;
}

namespace {

/// Every Result field is serialized, including the ones copied from the
/// job class at dispatch: a savestate must not depend on re-deriving them.
void save_result(StateWriter& w, const Result& r) {
  w.put_i64("job.id", r.id);
  w.put_i64("job.project", r.project);
  w.put_i64("job.class", r.job_class);
  w.put_i64("job.workunit", r.workunit);
  w.put_i64("job.replica", r.replica);
  w.put_f64("job.flops_total", r.flops_total);
  w.put_f64("job.flops_est", r.flops_est);
  w.put_f64("job.received", r.received);
  w.put_f64("job.runnable_at", r.runnable_at);
  w.put_f64("job.deadline", r.deadline);
  w.put_f64("job.usage.avg_ncpus", r.usage.avg_ncpus);
  w.put_u32("job.usage.coproc", static_cast<std::uint32_t>(r.usage.coproc));
  w.put_f64("job.usage.coproc_usage", r.usage.coproc_usage);
  w.put_f64("job.ram_bytes", r.ram_bytes);
  w.put_f64("job.checkpoint_period", r.checkpoint_period);
  w.put_f64("job.input_bytes", r.input_bytes);
  w.put_f64("job.output_bytes", r.output_bytes);
  w.put_bool("job.uploaded", r.uploaded);
  w.put_f64("job.flops_done", r.flops_done);
  w.put_f64("job.checkpointed_flops", r.checkpointed_flops);
  w.put_f64("job.completed_at", r.completed_at);
  w.put_bool("job.reported", r.reported);
  w.put_bool("job.running", r.running);
  w.put_f64("job.run_since_checkpoint", r.run_since_checkpoint);
  w.put_bool("job.episode_checkpointed", r.episode_checkpointed);
  w.put_i64("job.slot", r.slot);
  w.put_f64("job.flops_spent", r.flops_spent);
  w.put_f64("job.first_started", r.first_started);
  w.put_f64("job.fail_at_flops", r.fail_at_flops);
  w.put_bool("job.will_abort", r.will_abort);
  w.put_bool("job.failed", r.failed);
  w.put_bool("job.aborted", r.aborted);
  w.put_f64("job.failed_at", r.failed_at);
  w.put_bool("job.deadline_endangered", r.deadline_endangered);
  w.put_f64("job.rr_projected_finish", r.rr_projected_finish);
  w.put_f64("job.first_projected_finish", r.first_projected_finish);
  w.put_f64("job.est_correction", r.est_correction);
}

Result restore_result(StateReader& r) {
  Result j;
  j.id = static_cast<JobId>(r.get_i64("job.id"));
  j.project = static_cast<ProjectId>(r.get_i64("job.project"));
  j.job_class = static_cast<int>(r.get_i64("job.class"));
  j.workunit = static_cast<JobId>(r.get_i64("job.workunit"));
  j.replica = static_cast<int>(r.get_i64("job.replica"));
  j.flops_total = r.get_f64("job.flops_total");
  j.flops_est = r.get_f64("job.flops_est");
  j.received = r.get_f64("job.received");
  j.runnable_at = r.get_f64("job.runnable_at");
  j.deadline = r.get_f64("job.deadline");
  j.usage.avg_ncpus = r.get_f64("job.usage.avg_ncpus");
  j.usage.coproc = static_cast<ProcType>(r.get_u32("job.usage.coproc"));
  j.usage.coproc_usage = r.get_f64("job.usage.coproc_usage");
  j.ram_bytes = r.get_f64("job.ram_bytes");
  j.checkpoint_period = r.get_f64("job.checkpoint_period");
  j.input_bytes = r.get_f64("job.input_bytes");
  j.output_bytes = r.get_f64("job.output_bytes");
  j.uploaded = r.get_bool("job.uploaded");
  j.flops_done = r.get_f64("job.flops_done");
  j.checkpointed_flops = r.get_f64("job.checkpointed_flops");
  j.completed_at = r.get_f64("job.completed_at");
  j.reported = r.get_bool("job.reported");
  j.running = r.get_bool("job.running");
  j.run_since_checkpoint = r.get_f64("job.run_since_checkpoint");
  j.episode_checkpointed = r.get_bool("job.episode_checkpointed");
  j.slot = static_cast<int>(r.get_i64("job.slot"));
  j.flops_spent = r.get_f64("job.flops_spent");
  j.first_started = r.get_f64("job.first_started");
  j.fail_at_flops = r.get_f64("job.fail_at_flops");
  j.will_abort = r.get_bool("job.will_abort");
  j.failed = r.get_bool("job.failed");
  j.aborted = r.get_bool("job.aborted");
  j.failed_at = r.get_f64("job.failed_at");
  j.deadline_endangered = r.get_bool("job.deadline_endangered");
  j.rr_projected_finish = r.get_f64("job.rr_projected_finish");
  j.first_projected_finish = r.get_f64("job.first_projected_finish");
  j.est_correction = r.get_f64("job.est_correction");
  return j;
}

}  // namespace

void Emulator::save_state(StateWriter& w) const {
  w.put_f64("emu.now", now_);
  w.put_i64("emu.next_job_id", next_job_id_);
  rng_.save_state(w, "emu.rng");
  avail_.save_state(w);
  faults_.save_state(w);
  device_.save_state(w);
  counters_.save_state(w);
  client_.save_state(w);
  w.put_count("emu.servers", servers_.size());
  for (const ProjectServer& s : servers_) s.save_state(w);
  queue_.save_state(w);
  w.put_count("emu.jobs", jobs_.size());
  for (const auto& jp : jobs_) save_result(w, *jp);
  w.put_count("emu.active", active_.size());
  for (const Result* r : active_) w.put_i64("emu.active_job", r->id);
  w.put_u64("emu.task_event", task_event_);
  w.put_u64("emu.avail_event", avail_event_);
  w.put_u64("emu.transfer_event", transfer_event_);
  w.put_u64("emu.crash_event", crash_event_);
  w.put_count("emu.project_events", project_events_.size());
  for (const EventHandle h : project_events_) {
    w.put_u64("emu.project_event", h);
  }
  w.put_f64("emu.crash_down_until", crash_down_until_);
  w.put_f64("emu.pending_crash", pending_crash_);
  metrics_.save_state(w);
  timeline_.save_state(w);
  for (const auto t : kAllProcTypes) {
    w.put_count("emu.slots", slot_used_[t].size());
    for (const bool used : slot_used_[t]) w.put_bool("emu.slot_used", used);
  }
}

void Emulator::restore_state(StateReader& r) {
  now_ = r.get_f64("emu.now");
  next_job_id_ = static_cast<JobId>(r.get_i64("emu.next_job_id"));
  rng_.restore_state(r, "emu.rng");
  avail_.restore_state(r);
  faults_.restore_state(r);
  device_.restore_state(r);
  counters_.restore_state(r);
  client_.restore_state(r);
  const std::uint64_t ns = r.get_count("emu.servers");
  assert(ns == servers_.size());
  (void)ns;
  for (ProjectServer& s : servers_) s.restore_state(r);
  queue_.restore_state(r);
  const std::uint64_t nj = r.get_count("emu.jobs");
  jobs_.clear();
  jobs_.reserve(nj);
  for (std::uint64_t i = 0; i < nj; ++i) {
    jobs_.push_back(std::make_unique<Result>(restore_result(r)));
    // Job ids are allocated sequentially, so the id indexes jobs_.
    assert(jobs_.back()->id == static_cast<JobId>(i));
  }
  const std::uint64_t na = r.get_count("emu.active");
  active_.clear();
  active_.reserve(na);
  for (std::uint64_t i = 0; i < na; ++i) {
    const auto id = static_cast<std::size_t>(r.get_i64("emu.active_job"));
    active_.push_back(jobs_[id].get());
  }
  task_event_ = r.get_u64("emu.task_event");
  avail_event_ = r.get_u64("emu.avail_event");
  transfer_event_ = r.get_u64("emu.transfer_event");
  crash_event_ = r.get_u64("emu.crash_event");
  const std::uint64_t np = r.get_count("emu.project_events");
  assert(np == project_events_.size());
  (void)np;
  for (EventHandle& h : project_events_) h = r.get_u64("emu.project_event");
  crash_down_until_ = r.get_f64("emu.crash_down_until");
  pending_crash_ = r.get_f64("emu.pending_crash");
  metrics_.restore_state(r);
  timeline_.restore_state(r);
  for (const auto t : kAllProcTypes) {
    const std::uint64_t nslots = r.get_count("emu.slots");
    slot_used_[t].assign(nslots, false);
    for (std::uint64_t i = 0; i < nslots; ++i) {
      slot_used_[t][i] = r.get_bool("emu.slot_used");
    }
  }
  // The restored queue already holds the live events; run() must resume
  // the loop, not re-prime t=0 events.
  primed_ = true;
  // A restore legitimately rewinds the auditor's monotonic history.
  if (audit_ != nullptr) {
    audit_->on_state_restored(now_, client_.state_version());
  }
}

}  // namespace bce
