#pragma once

/// \file exit_codes.hpp
/// The repo-wide exit-code contract, in one place. Every non-zero exit
/// code a BCE tool can return is registered here with the tool (or
/// subcommand) it belongs to, a stable machine-readable name, and its
/// meaning; call sites reference the named constants below, which are
/// looked up from the table at compile time so a renumbering cannot
/// silently detach a constant from its registry row.
///
/// `bce_lint --check exit-codes` (exit 11) parses this table *textually*
/// from the tree under --root and enforces two contracts on it:
///   * per tool, every code and every name is registered exactly once;
///   * every row appears in docs/static_analysis.md's exit-code table as
///     `| \`tool\` | code | \`name\` | ...`.
/// Keep each entry on a single line in the form
/// `{"tool", code, "name", "meaning"},` — the linter's parser and the
/// docs table both key off that shape.

namespace bce {

struct ExitCodeInfo {
  const char* tool;     ///< tool or subcommand ("bce fleet", "bce_lint", ...)
  int code;             ///< the process exit code (non-zero)
  const char* name;     ///< stable machine-readable tag, unique per tool
  const char* meaning;  ///< one-line human description
};

// clang-format off
inline constexpr ExitCodeInfo kExitCodeRegistry[] = {
    // bce CLI, all subcommands. 0 = success everywhere.
    {"bce", 1, "runtime-error", "unreadable scenario, I/O failure, or uncaught emulation error"},
    {"bce", 2, "usage", "bad command line"},

    // bce run --save-state/--load-state: savestate rejection paths, one
    // code per SavestateErrc (exit = 2 + errc; sim/state_io.hpp).
    {"bce run", 3, "savestate-io", "savestate file unreadable or unwritable"},
    {"bce run", 4, "savestate-bad-magic", "not a savestate file"},
    {"bce run", 5, "savestate-bad-version", "savestate from an incompatible format version"},
    {"bce run", 6, "savestate-truncated", "savestate shorter than its header claims"},
    {"bce run", 7, "savestate-corrupt", "savestate payload checksum mismatch"},
    {"bce run", 8, "savestate-field-mismatch", "savestate field sequence disagrees with this build"},
    {"bce run", 9, "savestate-scenario-mismatch", "savestate saved under a different scenario or policy"},

    // bce determinism (docs/savestate.md).
    {"bce determinism", 3, "reports-diverge", "end-of-run reports differ between the two runs"},
    {"bce determinism", 4, "traces-diverge", "reports match but the decision traces differ"},
    {"bce determinism", 5, "bisect-anomaly", "divergence not attributable to a checkpoint interval"},

    // bce fleet and the hidden --bce-shard-worker mode (docs/fleet.md).
    {"bce fleet", 10, "fleet-partial", "--partial-ok accepted a degraded run; some hosts lost"},
    {"bce fleet", 11, "fleet-shard-failed", "a shard exhausted its retries"},
    {"bce fleet", 40, "worker-protocol-error", "shard worker saw a malformed supervisor frame"},
    {"bce fleet", 41, "worker-harness-kill", "shard worker killed by deterministic fault injection"},

    // bce_lint (docs/static_analysis.md): one code per check, in check
    // order; the exit code is the first failing check's.
    {"bce_lint", 1, "lint-usage", "bad command line or unreadable --root"},
    {"bce_lint", 2, "lint-trace-docs", "undocumented or non-round-tripping TraceKind"},
    {"bce_lint", 3, "lint-policy-docs", "registered policy missing from docs/policies.md"},
    {"bce_lint", 4, "lint-logf", "raw Logger::logf call site outside the trace dispatcher"},
    {"bce_lint", 5, "lint-scenarios", "shipped scenario fails to parse or validate"},
    {"bce_lint", 6, "lint-iwyu", "header uses a std symbol without including its header"},
    {"bce_lint", 7, "lint-savestate-docs", "serialized savestate field missing from docs/savestate.md"},
    {"bce_lint", 8, "lint-fleet-docs", "fleet exit code or CLI flag missing from docs/fleet.md"},
    {"bce_lint", 9, "lint-determinism", "nondeterminism source in src/ without an allow comment"},
    {"bce_lint", 10, "lint-layering", "include cycle or upward include across the layer DAG"},
    {"bce_lint", 11, "lint-exit-codes", "exit-code registry collision or undocumented exit code"},

    // bce_perf (docs/performance.md).
    {"bce_perf", 1, "perf-usage", "bad command line or unreadable report"},
    {"bce_perf", 7, "perf-regression", "a kernel fell more than --tolerance below the baseline"},
    {"bce_perf", 8, "perf-core-count-mismatch", "reports from different core counts (override with --force)"},
};
// clang-format on

namespace detail {

constexpr bool exit_str_eq(const char* a, const char* b) {
  for (; *a != '\0' && *a == *b; ++a, ++b) {
  }
  return *a == *b;
}

/// Compile-time lookup; a (tool, name) absent from the registry fails the
/// build (constexpr evaluation reaches the throw).
constexpr int exit_code_of(const char* tool, const char* name) {
  for (const auto& e : kExitCodeRegistry) {
    if (exit_str_eq(e.tool, tool) && exit_str_eq(e.name, name)) return e.code;
  }
  throw "exit code not registered in kExitCodeRegistry";
}

}  // namespace detail

// bce CLI.
inline constexpr int kExitRuntimeError =
    detail::exit_code_of("bce", "runtime-error");
inline constexpr int kExitUsage = detail::exit_code_of("bce", "usage");

/// Savestate rejections exit at kExitSavestateBase +
/// static_cast<int>(SavestateErrc); the registry spells each one out.
inline constexpr int kExitSavestateBase =
    detail::exit_code_of("bce run", "savestate-io") - 1;

// bce determinism.
inline constexpr int kExitDeterminismReportsDiverge =
    detail::exit_code_of("bce determinism", "reports-diverge");
inline constexpr int kExitDeterminismTracesDiverge =
    detail::exit_code_of("bce determinism", "traces-diverge");
inline constexpr int kExitDeterminismBisectAnomaly =
    detail::exit_code_of("bce determinism", "bisect-anomaly");

// bce fleet (the kFleetExit*/kWorkerExit* names predate this registry and
// are kept: supervisor.hpp and shard_worker.hpp re-export them).
inline constexpr int kFleetExitPartial =
    detail::exit_code_of("bce fleet", "fleet-partial");
inline constexpr int kFleetExitShardFailed =
    detail::exit_code_of("bce fleet", "fleet-shard-failed");
inline constexpr int kWorkerExitProtocolError =
    detail::exit_code_of("bce fleet", "worker-protocol-error");
inline constexpr int kWorkerExitHarnessKill =
    detail::exit_code_of("bce fleet", "worker-harness-kill");

// bce_lint.
inline constexpr int kLintExitUsage =
    detail::exit_code_of("bce_lint", "lint-usage");
inline constexpr int kLintExitTraceDocs =
    detail::exit_code_of("bce_lint", "lint-trace-docs");
inline constexpr int kLintExitPolicyDocs =
    detail::exit_code_of("bce_lint", "lint-policy-docs");
inline constexpr int kLintExitLogf = detail::exit_code_of("bce_lint",
                                                          "lint-logf");
inline constexpr int kLintExitScenarios =
    detail::exit_code_of("bce_lint", "lint-scenarios");
inline constexpr int kLintExitIwyu = detail::exit_code_of("bce_lint",
                                                          "lint-iwyu");
inline constexpr int kLintExitSavestateDocs =
    detail::exit_code_of("bce_lint", "lint-savestate-docs");
inline constexpr int kLintExitFleetDocs =
    detail::exit_code_of("bce_lint", "lint-fleet-docs");
inline constexpr int kLintExitDeterminism =
    detail::exit_code_of("bce_lint", "lint-determinism");
inline constexpr int kLintExitLayering =
    detail::exit_code_of("bce_lint", "lint-layering");
inline constexpr int kLintExitExitCodes =
    detail::exit_code_of("bce_lint", "lint-exit-codes");

// bce_perf.
inline constexpr int kPerfExitUsage =
    detail::exit_code_of("bce_perf", "perf-usage");
inline constexpr int kPerfExitRegression =
    detail::exit_code_of("bce_perf", "perf-regression");
inline constexpr int kPerfExitCoreCountMismatch =
    detail::exit_code_of("bce_perf", "perf-core-count-mismatch");

}  // namespace bce
