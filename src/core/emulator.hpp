#pragma once

/// \file emulator.hpp
/// The BOINC Client Emulator (BCE) — the paper's contribution (§4.3).
/// Takes a scenario description and a set of policy flags, emulates the
/// client's scheduling behavior over the scenario's time period, and
/// reports the figures of merit, a processor-usage timeline, and a message
/// log of scheduling decisions.
///
/// "BCE uses a mix of emulation and simulation": the scheduling machinery
/// (RR-sim, accounting, the job scheduler, work fetch) runs exactly as the
/// client would run it — that stack lives in ClientRuntime — while the
/// Emulator itself is the simulation side: the clock, the event queue,
/// host availability, the project servers, job execution, and metrics. It
/// notifies the runtime of state changes (arrivals, completions, progress,
/// availability) and applies the runtime's scheduling decisions; policy
/// variants never appear here (they are strategy objects resolved through
/// bce::policy_registry()).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "client/client_runtime.hpp"
#include "client/policy.hpp"
#include "core/metrics.hpp"
#include "core/timeline.hpp"
#include "host/device_status.hpp"
#include "model/scenario.hpp"
#include "server/project_server.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault.hpp"
#include "sim/logger.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace bce {

struct EmulationOptions {
  PolicyConfig policy;

  /// Record per-instance usage spans (costs memory on long runs).
  bool record_timeline = false;

  /// External logger; pass one with categories enabled to see the message
  /// log. nullptr = silent. Kept for back-compat: internally every decision
  /// is a TraceEvent and the logger is fed through a LoggerSink rendering
  /// the exact pre-trace text.
  Logger* logger = nullptr;

  /// External trace; events whose category is enabled on it are forwarded
  /// to its sinks (e.g. a JsonlSink for `bce run --trace`). nullptr = none.
  Trace* trace = nullptr;

  /// Debug auditor (sim/audit.hpp), threaded through the client stack and
  /// the event queue; every decision point then re-checks the scheduling
  /// invariants and throws AuditFailure on corruption. nullptr = no
  /// auditing — unless the build defines BCE_AUDIT (the `audit` preset),
  /// in which case the emulator installs its own per-run auditor. Must
  /// not be shared across concurrent emulations.
  InvariantAuditor* auditor = nullptr;
};

/// Per-project breakdown of one emulation.
struct ProjectStats {
  std::int64_t jobs_fetched = 0;
  std::int64_t jobs_completed = 0;
  std::int64_t jobs_missed = 0;
  std::int64_t jobs_failed = 0;  ///< errored or aborted (fault injection)
  double flops_used = 0.0;

  /// Turnaround: completed_at − received, over completed jobs.
  RunningStats turnaround;

  /// Queue wait: first start − arrival, over jobs that ever started.
  RunningStats queue_wait;
};

struct EmulationResult {
  Metrics metrics;
  Timeline timeline;

  /// Final state of every job ever dispatched (for inspection and tests).
  std::vector<Result> jobs;

  /// Per-project statistics (indexing follows Scenario::projects).
  std::vector<ProjectStats> project_stats;

  /// Final accounting state per project.
  std::vector<double> final_rec;
  std::vector<PerProc<double>> final_debt;

  /// RR-sim memoization counters for the run (hits = re-simulations the
  /// versioned cache avoided, typically one per scheduling step since the
  /// fetch pass reuses the reschedule's output).
  RrSim::CacheStats rr_cache;
};

/// Run one emulation. Deterministic given (scenario, options.policy,
/// scenario.seed). Thread-safe with respect to other concurrent emulate()
/// calls (no shared mutable state).
EmulationResult emulate(const Scenario& scenario,
                        const EmulationOptions& options = {});

/// Implementation class, exposed so tests can poke at intermediate state.
class Emulator {
 public:
  Emulator(const Scenario& scenario, const EmulationOptions& options);
  EmulationResult run();

  /// The client scheduling stack (tests inspect cache stats, DCF, policy
  /// objects).
  [[nodiscard]] const ClientRuntime& client() const { return client_; }

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] const Scenario& scenario() const { return sc_; }
  [[nodiscard]] const EmulationOptions& options() const { return opt_; }

  /// The host's device model (battery/AC/wifi realization; tests inspect
  /// the charge trajectory).
  [[nodiscard]] const DeviceModel& device() const { return device_; }

  /// Install a checkpoint hook, fired at the end of every main-loop
  /// iteration — after the event drain and the reschedule/work-fetch
  /// passes, i.e. at an inter-event boundary where no interval is split.
  /// State at such a boundary is identical across runs of any duration
  /// beyond it (event scheduling is duration-independent), which is what
  /// makes savestates byte-exact (docs/savestate.md). The hook decides
  /// when to capture (one-shot save, periodic bisection checkpoints, ...).
  void set_checkpoint_hook(std::function<void(Emulator&)> fn) {
    checkpoint_fn_ = std::move(fn);
  }

  /// Savestate support (docs/savestate.md): serialize/overwrite every
  /// piece of mutable emulation state. Construct the Emulator from the
  /// same scenario (the file layer fingerprints it) — possibly with a
  /// different duration — then restore_state and run(): the run resumes
  /// the main loop at the restored clock instead of re-priming t=0 events.
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  // Main-loop helpers --------------------------------------------------
  void advance_to(SimTime t);
  void handle_completions();
  void reschedule();
  void work_fetch_pass();
  void do_rpc(ProjectId p, const WorkRequest& req, bool is_work_request);
  void schedule_task_event();
  void schedule_avail_event();
  void schedule_project_event(std::size_t p);
  void schedule_transfer_event();
  void handle_finished_transfers();

  // Fault handling (sim/fault.hpp) --------------------------------------
  void schedule_crash_event(SimTime from);
  void handle_crash();
  void handle_crash_recover();
  /// True while the host is rebooting after an injected crash (distinct
  /// from the availability channels).
  [[nodiscard]] bool crash_down() const {
    return now_ + kFpEpsilon < crash_down_until_;
  }

  [[nodiscard]] double task_rate(const Result& r) const;
  void assign_slot(Result& r);
  void release_slot(Result& r);
  void preempt(Result& r, bool count);

  /// Throws std::invalid_argument when \p sc is malformed; used to vet the
  /// scenario before any subsystem is built from it.
  static const Scenario& validated(const Scenario& sc);

  // Immutable inputs ----------------------------------------------------
  Scenario sc_;
  EmulationOptions opt_;

  // Simulation state ----------------------------------------------------
  Xoshiro256 rng_;
  HostAvailability avail_;
  /// Constructed (in the ctor body, after all pre-existing forks) from
  /// sc_.faults; inert when every channel is off.
  FaultInjector faults_;
  /// Constructed (in the ctor body, after faults_ — fork order is part of
  /// the determinism contract) from sc_.host.device; a default desktop
  /// spec draws nothing and changes nothing.
  DeviceModel device_;
  /// Internal dispatcher every decision point emits into. Enabled
  /// categories are the union of what opt_.logger and opt_.trace want;
  /// attached sinks: LoggerSink (when opt_.logger), TraceForwarder (when
  /// opt_.trace), and counters_ (always; it only sees enabled categories).
  Trace trace_;
  std::optional<LoggerSink> logger_sink_;
  std::optional<TraceForwarder> forward_sink_;
  CounterSink counters_;
  /// Active auditor: opt_.auditor, or owned_auditor_ when the build
  /// defines BCE_AUDIT and the caller did not supply one. nullptr = off.
  std::optional<InvariantAuditor> owned_auditor_;
  InvariantAuditor* audit_ = nullptr;
  ClientRuntime client_;
  std::vector<ProjectServer> servers_;
  EventQueue queue_;

  std::vector<std::unique_ptr<Result>> jobs_;  ///< stable addresses
  std::vector<Result*> active_;                ///< incomplete jobs
  SimTime now_ = 0.0;
  JobId next_job_id_ = 0;
  EventHandle task_event_ = kNoEvent;
  EventHandle avail_event_ = kNoEvent;
  EventHandle transfer_event_ = kNoEvent;
  EventHandle crash_event_ = kNoEvent;
  std::vector<EventHandle> project_events_;

  /// End of the current crash reboot; crash_down() while now_ < this.
  SimTime crash_down_until_ = 0.0;
  /// Time of the last crash whose recovery has not yet been observed
  /// (first job start after it closes the mean-recovery-time sample).
  SimTime pending_crash_ = kNever;

  MetricsCollector metrics_;
  Timeline timeline_;
  PerProc<std::vector<bool>> slot_used_;

  /// True once the t=0 events exist — set by run()'s priming block and by
  /// restore_state (a restored queue already holds the live events).
  bool primed_ = false;
  std::function<void(Emulator&)> checkpoint_fn_;

  // Scratch -------------------------------------------------------------
  std::vector<PerProc<double>> used_inst_secs_;
  std::vector<PerProc<bool>> runnable_flags_;
  std::vector<double> used_flops_;
};

}  // namespace bce
