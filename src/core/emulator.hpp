#pragma once

/// \file emulator.hpp
/// The BOINC Client Emulator (BCE) — the paper's contribution (§4.3).
/// Takes a scenario description and a set of policy flags, emulates the
/// client's scheduling behavior over the scenario's time period, and
/// reports the figures of merit, a processor-usage timeline, and a message
/// log of scheduling decisions.
///
/// "BCE uses a mix of emulation and simulation": the scheduling machinery
/// (RR-sim, accounting, the job scheduler, work fetch) runs exactly as the
/// client would run it; job execution, host availability, and the project
/// schedulers are simulated.

#include <memory>
#include <vector>

#include "client/accounting.hpp"
#include "client/job_scheduler.hpp"
#include "client/policy.hpp"
#include "client/rr_sim.hpp"
#include "client/transfer.hpp"
#include "client/work_fetch.hpp"
#include "core/metrics.hpp"
#include "core/timeline.hpp"
#include "model/scenario.hpp"
#include "server/project_server.hpp"
#include "sim/event_queue.hpp"
#include "sim/logger.hpp"
#include "sim/stats.hpp"

namespace bce {

struct EmulationOptions {
  PolicyConfig policy;

  /// Record per-instance usage spans (costs memory on long runs).
  bool record_timeline = false;

  /// External logger; pass one with categories enabled to see the message
  /// log. nullptr = silent.
  Logger* logger = nullptr;
};

/// Per-project breakdown of one emulation.
struct ProjectStats {
  std::int64_t jobs_fetched = 0;
  std::int64_t jobs_completed = 0;
  std::int64_t jobs_missed = 0;
  double flops_used = 0.0;

  /// Turnaround: completed_at − received, over completed jobs.
  RunningStats turnaround;

  /// Queue wait: first start − arrival, over jobs that ever started.
  RunningStats queue_wait;
};

struct EmulationResult {
  Metrics metrics;
  Timeline timeline;

  /// Final state of every job ever dispatched (for inspection and tests).
  std::vector<Result> jobs;

  /// Per-project statistics (indexing follows Scenario::projects).
  std::vector<ProjectStats> project_stats;

  /// Final accounting state per project.
  std::vector<double> final_rec;
  std::vector<PerProc<double>> final_debt;
};

/// Run one emulation. Deterministic given (scenario, options.policy,
/// scenario.seed). Thread-safe with respect to other concurrent emulate()
/// calls (no shared mutable state).
EmulationResult emulate(const Scenario& scenario,
                        const EmulationOptions& options = {});

/// Implementation class, exposed so tests can poke at intermediate state.
class Emulator {
 public:
  Emulator(const Scenario& scenario, const EmulationOptions& options);
  EmulationResult run();

 private:
  // Main-loop helpers --------------------------------------------------
  void advance_to(SimTime t);
  void handle_completions();
  void reschedule();
  void work_fetch_pass();
  void do_rpc(ProjectId p, const WorkRequest& req, bool is_work_request);
  void schedule_task_event();
  void schedule_avail_event();
  void schedule_project_event(std::size_t p);
  void schedule_transfer_event();
  void handle_finished_transfers();

  [[nodiscard]] double task_rate(const Result& r) const;
  [[nodiscard]] PerProc<double> expected_avail() const;
  void assign_slot(Result& r);
  void release_slot(Result& r);
  void preempt(Result& r, bool count);

  // Immutable inputs ----------------------------------------------------
  Scenario sc_;
  EmulationOptions opt_;
  std::vector<double> share_frac_;

  // Simulation state ----------------------------------------------------
  Xoshiro256 rng_;
  HostAvailability avail_;
  std::vector<ProjectServer> servers_;
  std::vector<ProjectFetchState> fetch_states_;
  Accounting acct_;
  RrSim rrsim_;
  JobScheduler sched_;
  WorkFetch fetch_;
  EventQueue queue_;
  Logger null_log_;
  Logger* log_;

  std::vector<std::unique_ptr<Result>> jobs_;  ///< stable addresses
  std::vector<Result*> active_;                ///< incomplete jobs
  SimTime now_ = 0.0;
  JobId next_job_id_ = 0;
  EventHandle task_event_ = kNoEvent;
  EventHandle avail_event_ = kNoEvent;
  EventHandle transfer_event_ = kNoEvent;
  std::vector<EventHandle> project_events_;
  RrSimOutput last_rr_;
  TransferManager transfers_;
  /// Per-project duration-correction factor (BOINC DCF): the learned ratio
  /// of actual to estimated job size, applied to new arrivals' estimates.
  std::vector<double> dcf_;

  MetricsCollector metrics_;
  Timeline timeline_;
  PerProc<std::vector<bool>> slot_used_;

  // Scratch -------------------------------------------------------------
  std::vector<PerProc<double>> used_inst_secs_;
  std::vector<PerProc<bool>> runnable_flags_;
  std::vector<double> used_flops_;
};

}  // namespace bce
