#pragma once

/// \file svg_plot.hpp
/// Minimal dependency-free SVG line charts. The paper's controller
/// "generates graphs summarizing the figures of merit" (§4.3); the
/// experiment harnesses use this to emit each figure as a standalone .svg
/// alongside the printed table.
///
/// Deliberately small: line series with markers, auto-scaled axes with
/// 1-2-5 ticks, a legend, and axis titles. Not a plotting library.

#include <string>
#include <utility>
#include <vector>

namespace bce {

struct PlotSeries {
  std::string label;
  std::vector<std::pair<double, double>> points;  ///< (x, y)
};

/// Compute "nice" tick positions covering [lo, hi] with roughly
/// `target_count` steps of size 1/2/5 x 10^k. Exposed for tests.
std::vector<double> nice_ticks(double lo, double hi, int target_count = 6);

class SvgPlot {
 public:
  SvgPlot(std::string title, std::string x_label, std::string y_label)
      : title_(std::move(title)),
        x_label_(std::move(x_label)),
        y_label_(std::move(y_label)) {}

  void add_series(PlotSeries series) { series_.push_back(std::move(series)); }

  /// Force the y-axis range (otherwise auto-scaled to the data; the y
  /// range always includes 0 for the [0,1] figures of merit).
  void set_y_range(double lo, double hi) {
    y_lo_ = lo;
    y_hi_ = hi;
    y_fixed_ = true;
  }

  [[nodiscard]] std::string render(int width = 640, int height = 420) const;

  /// Render to a file; parent directory must exist. Returns false (and
  /// stays silent) if the file can't be written — plots are a side
  /// artifact, never worth failing an experiment over.
  bool save(const std::string& path, int width = 640, int height = 420) const;

 private:
  std::string title_;
  std::string x_label_;
  std::string y_label_;
  std::vector<PlotSeries> series_;
  double y_lo_ = 0.0;
  double y_hi_ = 1.0;
  bool y_fixed_ = false;
};

}  // namespace bce
