#include "core/maxmin.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

namespace bce {

namespace {

/// Dense max-flow (Edmonds-Karp) on the bipartite consumers -> buckets
/// feasibility graph. Node layout: 0 = source, 1..n = consumers,
/// n+1..n+m = buckets, n+m+1 = sink.
class MaxFlow {
 public:
  explicit MaxFlow(std::size_t n_nodes)
      : n_(n_nodes), cap_(n_nodes * n_nodes, 0.0) {}

  void set_cap(std::size_t u, std::size_t v, double c) { cap_[u * n_ + v] = c; }
  [[nodiscard]] double cap(std::size_t u, std::size_t v) const {
    return cap_[u * n_ + v];
  }

  double solve(std::size_t s, std::size_t t) {
    double total = 0.0;
    std::vector<std::size_t> parent(n_);
    for (;;) {
      std::fill(parent.begin(), parent.end(), n_);
      parent[s] = s;
      std::queue<std::size_t> q;
      q.push(s);
      while (!q.empty() && parent[t] == n_) {
        const std::size_t u = q.front();
        q.pop();
        for (std::size_t v = 0; v < n_; ++v) {
          if (parent[v] == n_ && cap_[u * n_ + v] > 1e-12) {
            parent[v] = u;
            q.push(v);
          }
        }
      }
      if (parent[t] == n_) break;
      double bottleneck = 1e300;
      for (std::size_t v = t; v != s; v = parent[v]) {
        bottleneck = std::min(bottleneck, cap_[parent[v] * n_ + v]);
      }
      for (std::size_t v = t; v != s; v = parent[v]) {
        cap_[parent[v] * n_ + v] -= bottleneck;
        cap_[v * n_ + parent[v]] += bottleneck;
      }
      total += bottleneck;
    }
    return total;
  }

 private:
  std::size_t n_;
  std::vector<double> cap_;
};

}  // namespace

MaxMinSolution maxmin_allocate(const MaxMinProblem& problem) {
  const std::size_t n = problem.consumers.size();
  const std::size_t m = problem.capacity.size();
  MaxMinSolution out;
  out.alloc.assign(n, std::vector<double>(m, 0.0));
  out.total.assign(n, 0.0);
  if (n == 0 || m == 0) return out;

  double total_cap = 0.0;
  for (const double c : problem.capacity) total_cap += c;
  if (total_cap <= 0.0) return out;

  const std::size_t src = 0;
  const std::size_t snk = n + m + 1;
  const std::size_t n_nodes = snk + 1;

  auto make_flow = [&](const std::vector<double>& demand) {
    MaxFlow mf(n_nodes);
    for (std::size_t c = 0; c < n; ++c) {
      mf.set_cap(src, 1 + c, demand[c]);
      assert(problem.consumers[c].can_use.size() == m);
      for (std::size_t r = 0; r < m; ++r) {
        if (problem.consumers[c].can_use[r] && problem.capacity[r] > 0.0) {
          mf.set_cap(1 + c, 1 + n + r, 1e300);
        }
      }
    }
    for (std::size_t r = 0; r < m; ++r) {
      mf.set_cap(1 + n + r, snk, problem.capacity[r]);
    }
    return mf;
  };

  auto feasible = [&](const std::vector<double>& demand) {
    double sum = 0.0;
    for (const double d : demand) sum += d;
    MaxFlow mf = make_flow(demand);
    return mf.solve(src, snk) >= sum - 1e-6 * std::max(1.0, sum);
  };

  std::vector<bool> frozen(n, false);
  std::vector<double> fixed(n, 0.0);
  double level = 0.0;

  for (std::size_t c = 0; c < n; ++c) {
    bool usable = false;
    for (std::size_t r = 0; r < m; ++r) {
      usable |= problem.consumers[c].can_use[r] && problem.capacity[r] > 0.0;
    }
    if (!usable || problem.consumers[c].share <= 0.0) frozen[c] = true;
  }

  auto demand_at = [&](double lvl) {
    std::vector<double> d(n);
    for (std::size_t c = 0; c < n; ++c) {
      d[c] = frozen[c] ? fixed[c] : problem.consumers[c].share * lvl;
    }
    return d;
  };

  for (std::size_t round = 0; round < n + 1; ++round) {
    bool any_active = false;
    double min_share = 1e300;
    for (std::size_t c = 0; c < n; ++c) {
      if (!frozen[c]) {
        any_active = true;
        min_share = std::min(min_share, problem.consumers[c].share);
      }
    }
    if (!any_active) break;

    double lo = level;
    double hi = level + total_cap / min_share + 1.0;
    for (int it = 0; it < 80; ++it) {
      const double mid = 0.5 * (lo + hi);
      if (feasible(demand_at(mid))) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    level = lo;

    const double probe = std::max(1e-6 * total_cap, 1e-9);
    bool froze_any = false;
    for (std::size_t c = 0; c < n; ++c) {
      if (frozen[c]) continue;
      auto d = demand_at(level);
      d[c] += probe;
      if (!feasible(d)) {
        frozen[c] = true;
        fixed[c] = problem.consumers[c].share * level;
        froze_any = true;
      }
    }
    if (!froze_any) {
      for (std::size_t c = 0; c < n; ++c) {
        if (!frozen[c]) {
          frozen[c] = true;
          fixed[c] = problem.consumers[c].share * level;
        }
      }
      break;
    }
  }

  // Composition: extract per-bucket flows from the residual graph.
  MaxFlow mf = make_flow(fixed);
  mf.solve(src, snk);
  for (std::size_t c = 0; c < n; ++c) {
    for (std::size_t r = 0; r < m; ++r) {
      if (!problem.consumers[c].can_use[r] || problem.capacity[r] <= 0.0) {
        continue;
      }
      const double flow = mf.cap(1 + n + r, 1 + c);  // reverse edge = flow
      out.alloc[c][r] = std::max(0.0, flow);
      out.total[c] += out.alloc[c][r];
    }
  }
  out.level = level;
  return out;
}

}  // namespace bce
