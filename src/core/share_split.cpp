#include "core/share_split.hpp"

#include "core/maxmin.hpp"

namespace bce {

ShareSplitResult ideal_share_split(const ShareSplitInput& input) {
  MaxMinProblem prob;
  prob.capacity.resize(kNumProcTypes);
  for (const auto t : kAllProcTypes) {
    prob.capacity[proc_index(t)] = input.capacity[t];
  }
  for (const auto& p : input.projects) {
    MaxMinProblem::Consumer c;
    c.share = p.share;
    c.can_use.resize(kNumProcTypes);
    for (const auto t : kAllProcTypes) {
      c.can_use[proc_index(t)] = p.can_use[t];
    }
    prob.consumers.push_back(std::move(c));
  }

  const MaxMinSolution sol = maxmin_allocate(prob);

  ShareSplitResult out;
  out.alloc.assign(input.projects.size(), PerProc<double>{});
  out.total = sol.total;
  out.total.resize(input.projects.size(), 0.0);
  for (std::size_t p = 0; p < sol.alloc.size(); ++p) {
    for (const auto t : kAllProcTypes) {
      out.alloc[p][t] = sol.alloc[p][proc_index(t)];
    }
  }
  out.level = sol.level;
  return out;
}

}  // namespace bce
