#pragma once

/// \file population.hpp
/// Monte-Carlo scenario population sampling — the first item on the
/// paper's future-work list (§6.2): "characterize the actual population of
/// scenarios, and develop a system, perhaps based on Monte-Carlo sampling,
/// to study policies over the entire population."
///
/// Draws scenarios whose marginals roughly follow the population the paper
/// sketches in §4.1: host speeds and job sizes span orders of magnitude
/// (log-uniform), availability varies from always-on to sporadic, project
/// counts from 1 to many.

#include "model/scenario.hpp"
#include "sim/rng.hpp"

namespace bce {

struct PopulationParams {
  int min_cpus = 1;
  int max_cpus = 8;
  double cpu_flops_lo = 5e8;
  double cpu_flops_hi = 5e9;

  double gpu_probability = 0.5;
  int max_gpus = 2;
  double gpu_speedup_lo = 5.0;    ///< GPU FLOPS as multiple of one CPU
  double gpu_speedup_hi = 50.0;

  int min_projects = 1;
  int max_projects = 10;

  double job_seconds_lo = 300.0;      ///< job runtime at full speed
  double job_seconds_hi = 100000.0;
  double latency_factor_lo = 1.5;     ///< latency bound / runtime
  double latency_factor_hi = 50.0;

  double intermittent_probability = 0.5;  ///< host not always-on
  double mean_on_lo = 2.0 * kSecondsPerHour;
  double mean_on_hi = 2.0 * kSecondsPerDay;

  Duration duration = 10.0 * kSecondsPerDay;
};

/// Draw one scenario. Deterministic given the RNG state.
Scenario sample_scenario(Xoshiro256& rng, const PopulationParams& params = {});

}  // namespace bce
