// InvariantAuditor checks whose subjects live in the core layer (final
// Metrics conservation). See src/client/audit_checks.cpp for why the
// auditor's method definitions live beside the types they inspect.

#include <cmath>

#include "core/metrics.hpp"
#include "sim/audit.hpp"

namespace bce {

using detail::audit_format;

void InvariantAuditor::check_metrics(const Metrics& m) {
  const double rel = 1e-9;
  if (!std::isfinite(m.available_flops) || m.available_flops < 0.0) {
    fail(audit_format("available FLOPs = %g < 0", m.available_flops));
  }
  // No upper bound against available_flops: the scheduler may briefly
  // over-commit instances (assign_slot's slot = -1 path) and every
  // running job progresses at full rate, so busy work can legitimately
  // exceed nominal capacity by the over-committed fraction.
  if (!std::isfinite(m.used_flops) || m.used_flops < 0.0) {
    fail(audit_format("used FLOPs = %g; must be finite and non-negative",
                      m.used_flops));
  }
  if (m.wasted_flops < 0.0 ||
      m.wasted_flops > m.used_flops * (1.0 + rel) + 1.0) {
    fail(audit_format("wasted FLOPs = %g outside [0, used=%g]; waste is a "
                      "subset of work performed",
                      m.wasted_flops, m.used_flops));
  }
  if (m.failure_wasted_flops < 0.0 ||
      m.failure_wasted_flops > m.wasted_flops * (1.0 + rel) + 1.0) {
    fail(audit_format("failure-wasted FLOPs = %g outside [0, wasted=%g]",
                      m.failure_wasted_flops, m.wasted_flops));
  }
  ++checks_run_;
}

}  // namespace bce
