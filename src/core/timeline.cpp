#include "core/timeline.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "sim/state_io.hpp"

namespace bce {

void Timeline::record(ProcType type, int slot, SimTime t0, SimTime t1,
                      ProjectId p, JobId j) {
  if (t1 <= t0) return;
  if (!spans_.empty()) {
    auto& last = spans_.back();
    if (last.type == type && last.slot == slot && last.job == j &&
        last.project == p && std::abs(last.t1 - t0) < 1e-6) {
      last.t1 = t1;
      return;
    }
  }
  spans_.push_back(TimelineSpan{type, slot, t0, t1, p, j});
}

std::string Timeline::to_ascii(SimTime t_end, int width) const {
  if (t_end <= 0.0 || width <= 0) return {};
  std::string out;
  const double bucket = t_end / width;

  for (const auto t : kAllProcTypes) {
    for (int slot = 0; slot < host_.count[t]; ++slot) {
      std::string row(static_cast<std::size_t>(width), '.');
      for (const auto& s : spans_) {
        if (s.type != t || s.slot != slot) continue;
        const int b0 = std::max(0, static_cast<int>(s.t0 / bucket));
        const int b1 =
            std::min(width - 1, static_cast<int>((s.t1 - 1e-9) / bucket));
        const char c =
            s.project == kNoProject
                ? ' '
                : static_cast<char>('A' + (s.project % 26));
        for (int b = b0; b <= b1; ++b) row[static_cast<std::size_t>(b)] = c;
      }
      char head[32];
      std::snprintf(head, sizeof head, "%-6s %2d |", proc_name(t), slot);
      out += head;
      out += row;
      out += "|\n";
    }
  }
  char foot[64];
  std::snprintf(foot, sizeof foot, "%10s0%*.1f (days)\n", "", width - 1,
                t_end / kSecondsPerDay);
  out += foot;
  return out;
}

void Timeline::write_csv(std::ostream& os) const {
  os << "type,slot,t0,t1,project,job\n";
  for (const auto& s : spans_) {
    os << proc_name(s.type) << ',' << s.slot << ',' << s.t0 << ',' << s.t1
       << ',' << s.project << ',' << s.job << '\n';
  }
}

void Timeline::save_state(StateWriter& w) const {
  w.put_count("timeline.spans", spans_.size());
  for (const TimelineSpan& s : spans_) {
    w.put_u32("timeline.type", static_cast<std::uint32_t>(s.type));
    w.put_i64("timeline.slot", s.slot);
    w.put_f64("timeline.t0", s.t0);
    w.put_f64("timeline.t1", s.t1);
    w.put_i64("timeline.project", s.project);
    w.put_i64("timeline.job", s.job);
  }
}

void Timeline::restore_state(StateReader& r) {
  const std::uint64_t n = r.get_count("timeline.spans");
  spans_.clear();
  spans_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    TimelineSpan s;
    s.type = static_cast<ProcType>(r.get_u32("timeline.type"));
    s.slot = static_cast<int>(r.get_i64("timeline.slot"));
    s.t0 = r.get_f64("timeline.t0");
    s.t1 = r.get_f64("timeline.t1");
    s.project = static_cast<ProjectId>(r.get_i64("timeline.project"));
    s.job = static_cast<JobId>(r.get_i64("timeline.job"));
    spans_.push_back(s);
  }
}

}  // namespace bce
