#pragma once

/// \file bce.hpp
/// Umbrella header: the full public API of the BCE library.
///
/// Quick start:
/// \code
///   #include "core/bce.hpp"
///   bce::Scenario sc = bce::paper_scenario1(1500.0);
///   bce::EmulationOptions opt;
///   opt.policy.sched = bce::JobSchedPolicy::kGlobal;
///   bce::EmulationResult res = bce::emulate(sc, opt);
///   std::cout << res.metrics.summary() << "\n";
/// \endcode

#include "client/accounting.hpp"
#include "client/client_runtime.hpp"
#include "client/job_scheduler.hpp"
#include "client/policy.hpp"
#include "client/policy_registry.hpp"
#include "client/rr_sim.hpp"
#include "client/scheduling_policy.hpp"
#include "client/work_fetch.hpp"
#include "client/transfer.hpp"
#include "core/controller.hpp"
#include "core/emulator.hpp"
#include "core/maxmin.hpp"
#include "core/metrics.hpp"
#include "core/paper_scenarios.hpp"
#include "core/population.hpp"
#include "core/report.hpp"
#include "core/savestate.hpp"
#include "core/scenario_io.hpp"
#include "core/share_split.hpp"
#include "core/svg_plot.hpp"
#include "core/timeline.hpp"
#include "host/availability.hpp"
#include "host/availability_presets.hpp"
#include "host/host_info.hpp"
#include "host/preferences.hpp"
#include "sim/proc_type.hpp"
#include "model/job.hpp"
#include "model/project.hpp"
#include "model/resource_usage.hpp"
#include "model/scenario.hpp"
#include "server/project_server.hpp"
#include "server/request.hpp"
#include "sim/decaying_average.hpp"
#include "sim/distribution.hpp"
#include "sim/event_queue.hpp"
#include "sim/logger.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"
