#pragma once

/// \file controller.hpp
/// Multi-run controller (§4.3: "a controller script that does multiple BCE
/// runs and generates graphs summarizing the figures of merit"). Runs a
/// batch of independent emulations across a thread pool — emulations share
/// no mutable state, so sweeps scale with cores — and returns results in
/// input order regardless of thread count.

#include <functional>
#include <string>
#include <vector>

#include "core/emulator.hpp"

namespace bce {

struct RunSpec {
  std::string label;
  Scenario scenario;
  EmulationOptions options;
};

struct RunResult {
  std::string label;
  EmulationResult result;
};

/// Run all specs, fanning out over \p n_threads on the shared persistent
/// ThreadPool (0 = the BCE_THREADS environment variable, else hardware
/// concurrency; see resolve_thread_count). If a run throws, no further
/// runs are started and the first exception propagates after in-flight
/// runs drain; the partial results vector is discarded.
std::vector<RunResult> run_batch(const std::vector<RunSpec>& specs,
                                 unsigned n_threads = 0);

/// Convenience: sweep a scalar parameter. \p make produces the RunSpec for
/// each parameter value.
std::vector<RunResult> run_sweep(
    const std::vector<double>& params,
    const std::function<RunSpec(double)>& make, unsigned n_threads = 0);

/// One warm-start chain: the same (scenario, policy) emulated at several
/// horizons. The scenario's own duration is ignored; each entry of
/// `durations` is one run, and results come back aligned with it.
struct ChainSpec {
  std::string label;
  Scenario scenario;
  EmulationOptions options;
  std::vector<Duration> durations;
};

struct ChainResult {
  std::string label;
  std::vector<EmulationResult> results;  ///< aligned with ChainSpec::durations
};

/// Run every chain via run_duration_chain (core/savestate.hpp): durations
/// ascending, each longer run forked from a savestate captured near the
/// previous horizon, so the shared scenario prefix is emulated once per
/// chain instead of once per duration. Chains fan out across the shared
/// ThreadPool; each chain is sequential internally (a longer run needs the
/// shorter run's snapshot). Results are byte-identical to cold runs of each
/// duration — the savestate round-trip guarantee (docs/savestate.md).
std::vector<ChainResult> run_chain_batch(const std::vector<ChainSpec>& specs,
                                         unsigned n_threads = 0);

/// One RunSpec per (job-order, fetch) pair registered in
/// bce::policy_registry(), labeled "SCHED+FETCH" and selected by name, on
/// top of \p base options. Policies registered by user code are swept
/// automatically — registry-driven drivers never enumerate enums.
std::vector<RunSpec> policy_matrix_specs(const Scenario& scenario,
                                         const EmulationOptions& base = {});

/// Summary statistics of the figures of merit over seed replicates.
struct ReplicateSummary {
  RunningStats idle;
  RunningStats wasted;
  RunningStats share_violation;
  RunningStats monotony;
  RunningStats rpcs_per_job;
  RunningStats score;
  std::vector<EmulationResult> runs;  ///< individual results, in seed order
};

/// Run the same (scenario, options) with seeds 1..n_seeds in parallel and
/// aggregate the figures of merit — the standard way to put error bars on
/// an experiment point.
ReplicateSummary run_replicates(const Scenario& scenario,
                                const EmulationOptions& options, int n_seeds,
                                unsigned n_threads = 0);

}  // namespace bce
