#pragma once

/// \file savestate.hpp
/// Emulator savestates: snapshot the *entire* mutable emulation state at an
/// inter-event boundary and restore it into a freshly constructed Emulator,
/// byte-identically (docs/savestate.md).
///
/// The correctness bar is strict: save -> restore -> continue must produce
/// traces, metrics, and job states bitwise equal to the uninterrupted run.
/// Two properties make that possible:
///  * snapshots are only captured via Emulator::set_checkpoint_hook, which
///    fires between events — never inside an interval, where splitting the
///    `rate * dt` accumulation would change floating-point results;
///  * event scheduling is duration-independent (the emulator schedules
///    events past the scenario end instead of filtering them), so the state
///    at a boundary does not depend on how long the run will be — which is
///    what lets a short run's savestate warm-start a longer one.
///
/// File format: an 8-byte magic, the format version, a fingerprint of
/// (scenario minus duration, policy), the payload length, the StateWriter
/// payload, and a trailing FNV-1a checksum of the payload. Every rejection
/// path throws SavestateError with a distinct SavestateErrc, which `bce run
/// --load-state` maps to distinct exit codes.

#include <cstdint>
#include <string>
#include <vector>

#include "client/policy.hpp"
#include "core/emulator.hpp"
#include "model/scenario.hpp"
#include "sim/state_io.hpp"

namespace bce {

/// File magic, first 8 bytes of every savestate file.
inline constexpr char kSavestateMagic[8] = {'B', 'C', 'E', 'S',
                                            'T', 'A', 'T', 'E'};

/// Fingerprint of everything a savestate implicitly depends on but does not
/// serialize: the scenario (with the duration zeroed out — savestates
/// transfer across durations by design) and the policy selection. Two runs
/// may exchange savestates iff their fingerprints match.
std::uint64_t scenario_fingerprint(const Scenario& scenario,
                                   const PolicyConfig& policy);

/// Snapshot \p em into a framed byte buffer (magic + version + fingerprint
/// + payload + checksum). Capture only from a checkpoint hook (or before
/// run()); capturing mid-interval is not representable.
std::vector<std::uint8_t> capture_savestate(const Emulator& em);

/// Validate \p frame and overwrite \p em's state with it. \p em must be
/// freshly constructed from a scenario whose fingerprint matches the
/// frame's (duration may differ). Throws SavestateError: kBadMagic /
/// kBadVersion / kTruncated / kCorrupt / kScenarioMismatch on framing
/// problems, kFieldMismatch when the payload's field sequence disagrees
/// with this build.
void restore_savestate(Emulator& em, const std::vector<std::uint8_t>& frame);

/// Write/read a framed savestate to/from disk. Throw SavestateError(kIo)
/// on filesystem failure; read performs no validation beyond I/O (pass the
/// result to restore_savestate).
void write_savestate_file(const std::string& path,
                          const std::vector<std::uint8_t>& frame);
std::vector<std::uint8_t> read_savestate_file(const std::string& path);

/// Snapshot \p em recording one printable (name, value) entry per field —
/// the diffable form `bce determinism --bisect` dumps for the two divergent
/// states, and the inventory the `savestate-docs` lint check audits against
/// docs/savestate.md.
std::vector<StateWriter::Entry> savestate_entries(const Emulator& em);

/// Run the same (scenario, options) at each duration, warm-starting each
/// run from a savestate captured near the previous (shorter) duration's
/// end: durations are processed in ascending order, each run arms a
/// one-shot checkpoint hook at the first boundary at or after
/// `duration - 2 * poll_period`, and the next run restores that snapshot
/// instead of replaying from t = 0. Results are returned in the *input*
/// order and are byte-identical to cold runs (tests/test_savestate.cpp);
/// bench::run_grid uses this to collapse shared scenario prefixes.
std::vector<EmulationResult> run_duration_chain(
    const Scenario& scenario, const EmulationOptions& options,
    const std::vector<Duration>& durations);

}  // namespace bce
