#pragma once

/// \file scenario_io.hpp
/// Text scenario files. The paper's BCE lets volunteers paste their BOINC
/// client state files into a web form (§4.3); our equivalent is a simple,
/// diffable text format that fully describes a scenario. Round-trips:
/// parse(serialize(sc)) reproduces sc.
///
/// Format (one `key: value` per line; '#' starts a comment):
///
///   name: my_host
///   duration_days: 10
///   seed: 42
///   cpus: 4 @ 1e9            # count @ FLOPS-per-instance
///   gpu: nvidia 1 @ 1e10     # type count @ FLOPS-per-instance
///   ram: 8e9
///   min_queue: 8640          # seconds
///   max_queue: 43200
///   ram_limit: 0.9
///   avail_host: markov 36000 3600   # always | markov ON OFF | window S E
///   avail_gpu: always
///   avail_net: always
///
///   project: einstein
///   share: 100
///   up: markov 800000 4000          # optional server downtime
///   job: cpu flops=2e12 latency=86400 ncpus=1 checkpoint=300
///   job: gpu=nvidia:1.0 flops=2e13 latency=86400 cpu_frac=0.05
///
/// Job attributes: flops, latency, ncpus, cpu_frac, cv, est_error,
/// checkpoint (seconds or `never`), ram, transfer,
/// avail=markov:ON:OFF (sporadic class availability).

#include <stdexcept>
#include <string>

#include "model/scenario.hpp"

namespace bce {

/// Error with the 1-based line number where parsing failed.
class ScenarioParseError : public std::runtime_error {
 public:
  ScenarioParseError(int line, const std::string& what)
      : std::runtime_error("line " + std::to_string(line) + ": " + what),
        line_(line) {}
  [[nodiscard]] int line() const { return line_; }

 private:
  int line_;
};

/// Parse a scenario from text. Throws ScenarioParseError on malformed
/// input and std::invalid_argument if the result fails validation.
Scenario parse_scenario(const std::string& text);

/// Load from a file path (throws std::runtime_error if unreadable).
Scenario load_scenario_file(const std::string& path);

/// Serialize to the text format above.
std::string serialize_scenario(const Scenario& sc);

}  // namespace bce
