// Whole-tree structure checks: scenario files parse and validate
// (ported byte-identically), the include graph respects the layer DAG,
// and the exit-code registry is collision-free and documented.
//
// The exit-codes check parses src/core/exit_codes.hpp *textually* rather
// than reading the compiled-in registry: the check must lint the fixture
// tree under --root, not the tree bce_lint was built from.

#include <algorithm>
#include <cctype>
#include <exception>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/exit_codes.hpp"
#include "core/scenario_io.hpp"
#include "lint/checks.hpp"
#include "lint/include_graph.hpp"
#include "lint/source.hpp"

namespace bce::lint {

namespace fs = std::filesystem;

void check_scenarios(AnalysisContext& ctx) {
  const fs::path dir = ctx.root() / "scenarios";
  if (!fs::is_directory(dir)) {
    ctx.diagnose("scenarios",
                 "no scenarios/ directory under " + ctx.root().string());
    return;
  }
  for (const auto& p : files_under(dir, {".txt"})) {
    try {
      const bce::Scenario sc = bce::load_scenario_file(p.string());
      std::string err;
      if (!sc.validate(&err)) {
        ctx.diagnose_at("scenarios", p.filename().string() + ": " + err,
                        "scenarios/" + p.filename().string());
      }
    } catch (const std::exception& e) {
      ctx.diagnose_at("scenarios", p.filename().string() + ": " + e.what(),
                      "scenarios/" + p.filename().string());
    }
  }
}

// ---- layering -------------------------------------------------------------

void check_layering(AnalysisContext& ctx) {
  const IncludeGraph g = build_include_graph(ctx.root());

  for (const auto& [node, edges] : g.edges) {
    const int from = layer_rank(node);
    if (from < 0) {
      ctx.diagnose_at(
          "layering",
          node +
              " is in no known layer (add its directory to the layer map "
              "in src/lint/include_graph.cpp and docs/static_analysis.md)",
          node);
      continue;
    }
    for (const auto& e : edges) {
      const int to = layer_rank(e.target);
      if (to < 0) continue;  // the unknown-layer finding covers e.target
      if (to > from) {
        ctx.diagnose_at(
            "layering",
            node + ":" + std::to_string(e.line) + ": upward include of " +
                e.target + " (" + layer_name(node) + " layer " +
                std::to_string(from) + " -> " + layer_name(e.target) +
                " layer " + std::to_string(to) + ")",
            node, e.line);
      }
    }
  }

  const std::vector<std::string> cycle = find_include_cycle(g);
  if (!cycle.empty()) {
    std::string chain;
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      if (i != 0) chain += " -> ";
      chain += cycle[i];
    }
    ctx.diagnose_at("layering", "include cycle: " + chain, cycle.front());
  }
}

// ---- exit-codes -----------------------------------------------------------

namespace {

struct RegistryRow {
  std::string tool;
  int code = 0;
  std::string name;
  int line = 0;  ///< 1-based line of the row in exit_codes.hpp
};

/// Parse the brace-initializer rows of kExitCodeRegistry out of the
/// (comment-stripped) header text. Returns false when the registry
/// marker cannot be found at all.
bool parse_registry(const std::string& text, std::vector<RegistryRow>* rows) {
  const std::size_t marker = text.find("kExitCodeRegistry[]");
  if (marker == std::string::npos) return false;
  const std::size_t open = text.find('{', marker);
  if (open == std::string::npos) return false;

  int depth = 0;
  bool in_str = false;
  std::size_t row_start = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    const char c = text[i];
    if (in_str) {
      if (c == '\\') ++i;
      else if (c == '"') in_str = false;
      continue;
    }
    if (c == '"') { in_str = true; continue; }
    if (c == '{') {
      ++depth;
      if (depth == 2) row_start = i;
    } else if (c == '}') {
      if (depth == 2) {
        const std::string row = text.substr(row_start, i - row_start + 1);
        // Fields in declaration order: tool (string), code (int),
        // name (string), meaning (string).
        std::vector<std::string> strings;
        std::string number;
        bool s = false;
        std::string cur;
        for (std::size_t k = 0; k < row.size(); ++k) {
          const char rc = row[k];
          if (s) {
            if (rc == '\\' && k + 1 < row.size()) { cur += row[++k]; }
            else if (rc == '"') { strings.push_back(cur); cur.clear(); s = false; }
            else cur += rc;
          } else if (rc == '"') {
            s = true;
          } else if (strings.size() == 1 && number.empty() &&
                     (std::isdigit(static_cast<unsigned char>(rc)) != 0 ||
                      rc == '-')) {
            std::size_t e = k;
            while (e < row.size() &&
                   (std::isdigit(static_cast<unsigned char>(row[e])) != 0 ||
                    row[e] == '-')) {
              ++e;
            }
            number = row.substr(k, e - k);
            k = e - 1;
          }
        }
        if (strings.size() >= 2 && !number.empty()) {
          RegistryRow r;
          r.tool = strings[0];
          r.code = std::stoi(number);
          r.name = strings[1];
          r.line = 1 + static_cast<int>(std::count(
                           text.begin(),
                           text.begin() +
                               static_cast<std::ptrdiff_t>(row_start),
                           '\n'));
          rows->push_back(std::move(r));
        }
      }
      --depth;
      if (depth == 0) break;  // end of the registry initializer
    }
  }
  return true;
}

}  // namespace

void check_exit_codes(AnalysisContext& ctx) {
  const std::string reg_rel = "src/core/exit_codes.hpp";
  const fs::path reg_path = ctx.root() / "src" / "core" / "exit_codes.hpp";
  const auto reg_raw = read_file(reg_path);
  if (!reg_raw) {
    ctx.diagnose("exit-codes", "cannot read " + reg_path.string());
    return;
  }
  std::vector<RegistryRow> rows;
  if (!parse_registry(strip_comments(*reg_raw), &rows)) {
    ctx.diagnose_at("exit-codes",
                    reg_rel + " has no kExitCodeRegistry[] initializer",
                    reg_rel);
    return;
  }

  // Uniqueness per tool, for both codes and names.
  std::map<std::pair<std::string, int>, const RegistryRow*> by_code;
  std::map<std::pair<std::string, std::string>, const RegistryRow*> by_name;
  for (const auto& r : rows) {
    const auto [cit, cnew] = by_code.try_emplace({r.tool, r.code}, &r);
    if (!cnew) {
      ctx.diagnose_at("exit-codes",
                      reg_rel + ":" + std::to_string(r.line) + ": tool \"" +
                          r.tool + "\" reuses exit code " +
                          std::to_string(r.code) + " for \"" + r.name +
                          "\" (already assigned to \"" + cit->second->name +
                          "\")",
                      reg_rel, r.line);
    }
    const auto [nit, nnew] = by_name.try_emplace({r.tool, r.name}, &r);
    if (!nnew) {
      ctx.diagnose_at("exit-codes",
                      reg_rel + ":" + std::to_string(r.line) + ": tool \"" +
                          r.tool + "\" reuses exit name \"" + r.name +
                          "\" (already code " +
                          std::to_string(nit->second->code) + ")",
                      reg_rel, r.line);
    }
  }

  // Every row must be documented: docs/static_analysis.md carries the
  // registry as a table with rows "| `tool` | code | `name` | ...".
  const fs::path doc_path = ctx.root() / "docs" / "static_analysis.md";
  const auto doc = read_file(doc_path);
  if (!doc) {
    ctx.diagnose("exit-codes", "cannot read " + doc_path.string());
  } else {
    for (const auto& r : rows) {
      const std::string want = "| `" + r.tool + "` | " +
                               std::to_string(r.code) + " | `" + r.name +
                               "` |";
      if (doc->find(want) == std::string::npos) {
        ctx.diagnose_at("exit-codes",
                        "exit code " + r.tool + "/" + r.name + " (" +
                            std::to_string(r.code) +
                            ") has no row \"" + want +
                            " ...\" in docs/static_analysis.md",
                        "docs/static_analysis.md");
      }
    }
  }

  // The linter's own roster must be registered: every check in
  // lint_checks() needs a bce_lint row with the matching code.
  for (const auto& c : lint_checks()) {
    const auto it = std::find_if(rows.begin(), rows.end(), [&](auto& r) {
      return r.tool == "bce_lint" && r.name == "lint-" + std::string(c.name);
    });
    if (it == rows.end()) {
      ctx.diagnose_at("exit-codes",
                      "lint check \"" + std::string(c.name) + "\" (exit " +
                          std::to_string(c.exit_code) +
                          ") has no \"lint-" + c.name +
                          "\" row in the kExitCodeRegistry",
                      reg_rel);
    } else if (it->code != c.exit_code) {
      ctx.diagnose_at("exit-codes",
                      reg_rel + ":" + std::to_string(it->line) +
                          ": lint check \"" + c.name + "\" registered as " +
                          std::to_string(it->code) + " but exits " +
                          std::to_string(c.exit_code),
                      reg_rel, it->line);
    }
  }
}

}  // namespace bce::lint
