#include "lint/include_graph.hpp"

#include <algorithm>
#include <cstdint>
#include <set>
#include <sstream>

#include "lint/source.hpp"

namespace bce::lint {

namespace fs = std::filesystem;

namespace {

/// The frozen layer DAG. Key = path prefix (directory), value = rank;
/// an include from rank R may only target ranks <= R.
struct LayerEntry {
  const char* prefix;
  int rank;
  const char* name;
};

constexpr LayerEntry kLayers[] = {
    {"src/sim/", 0, "sim"},
    {"src/host/", 1, "host"},
    {"src/model/", 1, "model"},
    {"src/client/", 2, "client"},
    {"src/server/", 2, "server"},
    {"src/core/", 3, "core"},
    {"src/fleet/", 4, "fleet"},
    {"src/lint/", 5, "lint"},
    {"src/", 5, "src"},  // loose files directly under src/ (none today)
    {"bench/", 6, "bench"},
    {"tools/", 6, "tools"},
    {"tests/", 6, "tests"},
    {"examples/", 6, "examples"},
};

const LayerEntry* layer_of(const std::string& rel) {
  for (const auto& l : kLayers) {
    if (rel.rfind(l.prefix, 0) == 0) return &l;
  }
  return nullptr;
}

}  // namespace

int layer_rank(const std::string& rel_path) {
  const LayerEntry* l = layer_of(rel_path);
  return l != nullptr ? l->rank : -1;
}

std::string layer_name(const std::string& rel_path) {
  const LayerEntry* l = layer_of(rel_path);
  return l != nullptr ? l->name : "?";
}

IncludeGraph build_include_graph(const fs::path& root) {
  IncludeGraph g;
  std::set<std::string> known;
  std::vector<fs::path> files;
  for (const char* dir : {"src", "tools", "tests", "bench", "examples"}) {
    for (auto& p : files_under(root / dir, {".hpp", ".cpp"})) {
      files.push_back(std::move(p));
    }
  }
  for (const auto& p : files) {
    known.insert(fs::relative(p, root).generic_string());
  }
  for (const auto& p : files) {
    const std::string rel = fs::relative(p, root).generic_string();
    auto& out = g.edges[rel];  // every scanned file is a node
    const auto text = read_file(p);
    if (!text) continue;
    std::istringstream lines(*text);
    std::string line;
    for (int ln = 1; std::getline(lines, line); ++ln) {
      std::size_t i = line.find_first_not_of(" \t");
      if (i == std::string::npos || line[i] != '#') continue;
      i = line.find_first_not_of(" \t", i + 1);
      if (i == std::string::npos || line.compare(i, 7, "include") != 0) {
        continue;
      }
      const std::size_t open = line.find('"', i + 7);
      if (open == std::string::npos) continue;
      const std::size_t close = line.find('"', open + 1);
      if (close == std::string::npos) continue;
      const std::string inc = line.substr(open + 1, close - open - 1);
      // Resolution order mirrors the compiler's: the includer's own
      // directory first, then the -I roots (src/, then the repo root).
      const fs::path own =
          fs::path(rel).parent_path() / fs::path(inc);
      std::string resolved;
      for (const std::string& cand :
           {own.lexically_normal().generic_string(),
            (fs::path("src") / inc).lexically_normal().generic_string(),
            fs::path(inc).lexically_normal().generic_string()}) {
        if (known.count(cand) != 0) {
          resolved = cand;
          break;
        }
      }
      if (resolved.empty() || resolved == rel) continue;
      out.push_back({resolved, ln});
    }
  }
  return g;
}

namespace {

enum class Mark : std::uint8_t { kWhite, kGray, kBlack };

bool dfs_cycle(const IncludeGraph& g, const std::string& node,
               std::map<std::string, Mark>& marks,
               std::vector<std::string>& stack,
               std::vector<std::string>& cycle) {
  marks[node] = Mark::kGray;
  stack.push_back(node);
  const auto it = g.edges.find(node);
  if (it != g.edges.end()) {
    for (const auto& e : it->second) {
      const Mark m = marks.count(e.target) != 0 ? marks.at(e.target)
                                                : Mark::kWhite;
      if (m == Mark::kGray) {
        // Found: slice the stack from the first occurrence of the target.
        const auto first =
            std::find(stack.begin(), stack.end(), e.target);
        cycle.assign(first, stack.end());
        cycle.push_back(e.target);
        return true;
      }
      if (m == Mark::kWhite &&
          dfs_cycle(g, e.target, marks, stack, cycle)) {
        return true;
      }
    }
  }
  stack.pop_back();
  marks[node] = Mark::kBlack;
  return false;
}

}  // namespace

std::vector<std::string> find_include_cycle(const IncludeGraph& g) {
  std::map<std::string, Mark> marks;
  std::vector<std::string> stack;
  std::vector<std::string> cycle;
  for (const auto& [node, edges] : g.edges) {
    (void)edges;
    const Mark m = marks.count(node) != 0 ? marks.at(node) : Mark::kWhite;
    if (m == Mark::kWhite && dfs_cycle(g, node, marks, stack, cycle)) {
      return cycle;
    }
  }
  return {};
}

}  // namespace bce::lint
