#include "lint/analyzer.hpp"

#include <algorithm>
#include <cstdint>

#include "core/exit_codes.hpp"
#include "lint/checks.hpp"

namespace bce::lint {

namespace {

constexpr CheckInfo kChecks[] = {
    {"trace-docs", kLintExitTraceDocs,
     "every TraceKind has a registered name, round-trips, and appears in "
     "docs/observability.md",
     check_trace_docs},
    {"policy-docs", kLintExitPolicyDocs,
     "every registered policy appears in docs/policies.md",
     check_policy_docs},
    {"logf", kLintExitLogf,
     "no raw Logger::logf call sites outside the trace dispatcher",
     check_logf},
    {"scenarios", kLintExitScenarios,
     "every file under scenarios/ parses and passes Scenario::validate",
     check_scenarios},
    {"iwyu", kLintExitIwyu,
     "headers under src/ directly include the std headers they use",
     check_iwyu},
    {"savestate-docs", kLintExitSavestateDocs,
     "every serialized savestate field appears in docs/savestate.md",
     check_savestate_docs},
    {"fleet-docs", kLintExitFleetDocs,
     "every fleet exit code and CLI flag appears in docs/fleet.md",
     check_fleet_docs},
    {"determinism", kLintExitDeterminism,
     "no nondeterminism sources in src/ without an allow(determinism) "
     "reason",
     check_determinism},
    {"layering", kLintExitLayering,
     "the include graph respects the layer DAG: no cycles, no upward "
     "includes",
     check_layering},
    {"exit-codes", kLintExitExitCodes,
     "the exit-code registry is collision-free and documented",
     check_exit_codes},
};

}  // namespace

std::span<const CheckInfo> lint_checks() { return kChecks; }

const CheckInfo* find_check(std::string_view name) {
  for (const auto& c : kChecks) {
    if (name == c.name) return &c;
  }
  return nullptr;
}

LintResult run_lint(const std::filesystem::path& root,
                    const std::vector<std::string>& selected) {
  AnalysisContext ctx(root);
  LintResult result;
  for (const auto& c : kChecks) {
    if (!selected.empty() &&
        std::find(selected.begin(), selected.end(), c.name) ==
            selected.end()) {
      continue;
    }
    const std::size_t before = ctx.count();
    c.run(ctx);
    if (ctx.count() > before && result.exit_code == 0) {
      result.exit_code = c.exit_code;
    }
  }
  result.diagnostics = ctx.diagnostics();
  return result;
}

std::string format_text(const std::vector<Diagnostic>& diags) {
  std::string out;
  for (const auto& d : diags) {
    out += "bce_lint: " + d.check + ": " + d.message + "\n";
  }
  return out;
}

namespace {

/// JSON string escaping per RFC 8259 (control chars as \u00XX).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(static_cast<unsigned char>(c) >> 4) & 0xf];
          out += hex[static_cast<unsigned char>(c) & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string format_sarif(const LintResult& result,
                         const std::filesystem::path& root) {
  const auto checks = lint_checks();
  std::string out;
  out +=
      "{\n"
      "  \"$schema\": "
      "\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
      "Schemata/sarif-schema-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [\n"
      "    {\n"
      "      \"tool\": {\n"
      "        \"driver\": {\n"
      "          \"name\": \"bce_lint\",\n"
      "          \"informationUri\": "
      "\"https://example.invalid/bce/docs/static_analysis.md\",\n"
      "          \"rules\": [\n";
  for (std::size_t i = 0; i < checks.size(); ++i) {
    const auto& c = checks[i];
    out += "            {\"id\": \"" + json_escape(c.name) +
           "\", \"shortDescription\": {\"text\": \"" +
           json_escape(c.description) + "\"}}";
    out += i + 1 < checks.size() ? ",\n" : "\n";
  }
  out +=
      "          ]\n"
      "        }\n"
      "      },\n"
      "      \"originalUriBaseIds\": {\n"
      "        \"ROOTDIR\": {\"uri\": \"file://" +
      json_escape(std::filesystem::absolute(root).generic_string()) +
      "/\"}\n"
      "      },\n"
      "      \"results\": [\n";
  for (std::size_t i = 0; i < result.diagnostics.size(); ++i) {
    const auto& d = result.diagnostics[i];
    std::size_t rule_index = 0;
    for (std::size_t r = 0; r < checks.size(); ++r) {
      if (d.check == checks[r].name) rule_index = r;
    }
    out += "        {\"ruleId\": \"" + json_escape(d.check) +
           "\", \"ruleIndex\": " + std::to_string(rule_index) +
           ", \"level\": \"error\", \"message\": {\"text\": \"" +
           json_escape(d.message) + "\"}";
    if (!d.file.empty()) {
      out +=
          ", \"locations\": [{\"physicalLocation\": "
          "{\"artifactLocation\": {\"uri\": \"" +
          json_escape(d.file) + "\", \"uriBaseId\": \"ROOTDIR\"}";
      if (d.line > 0) {
        out += ", \"region\": {\"startLine\": " + std::to_string(d.line);
        if (d.col > 0) {
          out += ", \"startColumn\": " + std::to_string(d.col);
        }
        out += "}";
      }
      out += "}}]";
    }
    out += "}";
    out += i + 1 < result.diagnostics.size() ? ",\n" : "\n";
  }
  out +=
      "      ]\n"
      "    }\n"
      "  ]\n"
      "}\n";
  return out;
}

}  // namespace bce::lint
