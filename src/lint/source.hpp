#pragma once

/// \file source.hpp
/// Lexical layer of the static-analysis library (docs/static_analysis.md).
/// A SourceFile owns one file's text and lazily derives the two views the
/// checks consume:
///
///  * stripped() — comments, string literals (including raw strings,
///    which the pre-library stripper silently corrupted) and character
///    literals replaced by spaces, newlines preserved, so symbol scans
///    only ever see code;
///  * tokens() — a flat token stream over the stripped text with exact
///    1-based line:col positions, so checks can match token *sequences*
///    (`steady_clock :: now`, `for ( ... : name )`) instead of
///    substrings, and diagnostics can point at the offending token.
///
/// The raw text stays available per line for the one thing that must see
/// comments: the `// bce-lint: allow(<check>): <reason>` escape hatch.

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace bce::lint {

/// Whole-file read; nullopt when unreadable.
std::optional<std::string> read_file(const std::filesystem::path& p);

/// All regular files under \p dir with one of \p exts, sorted for
/// deterministic diagnostics. Empty when the directory does not exist.
std::vector<std::filesystem::path> files_under(
    const std::filesystem::path& dir, const std::vector<std::string>& exts);

/// Replace comments, string and char literals with spaces so symbol
/// matching only sees code. Newlines survive (positions stay exact), and
/// raw string literals R"delim(...)delim" are blanked as a unit — the
/// `//` or `"` they may contain never corrupts the scan state.
std::string strip_noncode(const std::string& in);

/// Replace only comments with spaces, preserving string and character
/// literals (for parsers that must read literal values, e.g. the
/// exit-code registry parser). Raw-string aware like strip_noncode.
std::string strip_comments(const std::string& in);

struct Token {
  enum class Kind : std::uint8_t {
    kIdentifier,  ///< [A-Za-z_][A-Za-z0-9_]*
    kNumber,      ///< leading digit, consumes alnum/_/. (good enough to lex)
    kPunct,       ///< "::" as one token; any other single non-space char
  };
  Kind kind = Kind::kPunct;
  std::string text;
  int line = 1;  ///< 1-based
  int col = 1;   ///< 1-based, in bytes
};

class SourceFile {
 public:
  /// \p name is the diagnostic label (conventionally the repo-relative
  /// path with forward slashes).
  SourceFile(std::string name, std::string text);

  /// Load from disk; nullopt when unreadable.
  static std::optional<SourceFile> load(const std::filesystem::path& path,
                                        std::string name);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& raw() const { return raw_; }

  /// Lazily built; cached after the first call.
  [[nodiscard]] const std::string& stripped() const;
  [[nodiscard]] const std::vector<Token>& tokens() const;

  /// Raw text of 1-based line \p line (no trailing newline); empty view
  /// when out of range.
  [[nodiscard]] std::string_view line_text(int line) const;

  /// True when \p line carries the inline escape hatch
  /// `bce-lint: allow(<check>)` for \p check (in a comment by
  /// convention; the marker is searched in the raw line).
  [[nodiscard]] bool line_has_allow_marker(int line,
                                           std::string_view check) const;

  /// The reason text after `allow(<check>):` on \p line, trimmed; empty
  /// when there is no marker or no reason was given. Every allow must
  /// carry one — the determinism check rejects bare markers.
  [[nodiscard]] std::string allow_reason(int line,
                                         std::string_view check) const;

 private:
  void build_line_index() const;

  std::string name_;
  std::string raw_;
  mutable std::optional<std::string> stripped_;
  mutable std::optional<std::vector<Token>> tokens_;
  mutable std::vector<std::size_t> line_starts_;  ///< byte offset per line
};

}  // namespace bce::lint
