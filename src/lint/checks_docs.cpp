// Documentation-drift checks: each compares a live, compiled-in
// inventory (trace kinds, policy registries, savestate fields, fleet
// tokens) against the doc that is supposed to list it, so docs cannot
// silently fall behind the code. Diagnostics are byte-identical to the
// pre-library bce_lint.

#include <set>
#include <string>

#include "client/policy_registry.hpp"
#include "core/paper_scenarios.hpp"
#include "core/savestate.hpp"
#include "fleet/supervisor.hpp"
#include "lint/checks.hpp"
#include "lint/source.hpp"
#include "server/dispatch_policy.hpp"
#include "sim/fault.hpp"
#include "sim/trace.hpp"

namespace bce::lint {

namespace fs = std::filesystem;

void check_trace_docs(AnalysisContext& ctx) {
  const fs::path doc_path = ctx.root() / "docs" / "observability.md";
  const auto doc = read_file(doc_path);
  if (!doc) {
    ctx.diagnose("trace-docs", "cannot read " + doc_path.string());
    return;
  }
  for (std::size_t i = 0; i < bce::kNumTraceKinds; ++i) {
    const auto k = static_cast<bce::TraceKind>(i);
    const std::string name = bce::trace_kind_name(k);
    if (name == "?") {
      ctx.diagnose("trace-docs", "trace kind #" + std::to_string(i) +
                                     " has no registered name");
      continue;
    }
    bce::TraceKind back{};
    if (!bce::trace_kind_from_name(name, &back) || back != k) {
      ctx.diagnose("trace-docs", "trace kind name \"" + name +
                                     "\" does not round-trip (duplicate "
                                     "name?)");
    }
    if (doc->find(name) == std::string::npos) {
      ctx.diagnose_at("trace-docs",
                      "trace kind \"" + name + "\" is missing from " +
                          doc_path.string(),
                      "docs/observability.md");
    }
  }
}

void check_policy_docs(AnalysisContext& ctx) {
  const fs::path doc_path = ctx.root() / "docs" / "policies.md";
  const auto doc = read_file(doc_path);
  if (!doc) {
    ctx.diagnose("policy-docs", "cannot read " + doc_path.string());
    return;
  }
  const auto require = [&](const bce::PolicyRegistryEntry& e) {
    if (doc->find(e.name) == std::string::npos) {
      ctx.diagnose_at("policy-docs",
                      "registered policy \"" + e.name +
                          "\" is missing from " + doc_path.string(),
                      "docs/policies.md");
    }
  };
  for (const auto& e : bce::policy_registry().job_order_entries()) require(e);
  for (const auto& e : bce::policy_registry().fetch_entries()) require(e);
  for (const auto& e : bce::server_policy_registry().dispatch_entries()) {
    require(e);
  }
}

void check_savestate_docs(AnalysisContext& ctx) {
  const fs::path doc_path = ctx.root() / "docs" / "savestate.md";
  const auto doc = read_file(doc_path);
  if (!doc) {
    ctx.diagnose("savestate-docs", "cannot read " + doc_path.string());
    return;
  }
  // The field inventory is collected live, not by source scanning: a
  // faulted half-day run with modeled transfers is checkpointed at every
  // inter-event boundary and the savestate_entries names are unioned, so
  // fields only present mid-flight (pending transfers, retry backoffs,
  // orphaned jobs) make it into the inventory too.
  bce::Scenario sc = bce::paper_scenario2();
  sc.duration = 0.5 * bce::kSecondsPerDay;
  sc.faults = bce::FaultPlan::light();
  sc.host.download_bandwidth_bps = 1e6;
  for (auto& p : sc.projects) {
    for (auto& jc : p.job_classes) jc.input_bytes = 5e7;
  }
  bce::EmulationOptions opt;
  opt.record_timeline = true;  // covers the timeline.* span fields
  bce::Emulator em(sc, opt);
  std::set<std::string> names;
  em.set_checkpoint_hook([&](bce::Emulator& e) {
    for (const auto& entry : bce::savestate_entries(e)) {
      names.insert(entry.name);
    }
  });
  (void)em.run();
  for (const auto& name : names) {
    if (doc->find("`" + name + "`") == std::string::npos) {
      ctx.diagnose_at("savestate-docs",
                      "serialized field \"" + name + "\" is missing from " +
                          doc_path.string(),
                      "docs/savestate.md");
    }
  }
}

void check_fleet_docs(AnalysisContext& ctx) {
  const fs::path doc_path = ctx.root() / "docs" / "fleet.md";
  const auto doc = read_file(doc_path);
  if (!doc) {
    ctx.diagnose("fleet-docs", "cannot read " + doc_path.string());
    return;
  }
  // The inventory comes from the supervisor itself, not a hand-kept
  // list: adding a CLI flag or exit code to the fleet layer without
  // mentioning it in docs/fleet.md fails this check.
  for (const auto& token : bce::fleet_doc_tokens()) {
    if (doc->find(token) == std::string::npos) {
      ctx.diagnose_at("fleet-docs",
                      "fleet token \"" + token + "\" is missing from " +
                          doc_path.string(),
                      "docs/fleet.md");
    }
  }
}

}  // namespace bce::lint
