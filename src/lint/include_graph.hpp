#pragma once

/// \file include_graph.hpp
/// The project include graph and the layer DAG it must respect
/// (docs/static_analysis.md, `bce_lint --check layering`).
///
/// Nodes are repo-relative paths ("src/core/emulator.hpp"); edges are
/// resolved `#include "..."` directives (system includes and unresolved
/// paths are ignored). The layer map freezes the architecture:
///
///   sim → {host, model} → {client, server} → core → fleet → lint
///
/// with bench/, tools/, tests/ and examples/ on top. An include may point
/// sideways (same layer) or down, never up, and the file-level graph must
/// be acyclic.

#include <filesystem>
#include <map>
#include <string>
#include <vector>

namespace bce::lint {

struct IncludeEdge {
  std::string target;  ///< repo-relative includee
  int line = 0;        ///< 1-based line of the #include directive
};

struct IncludeGraph {
  /// includer (repo-relative) -> resolved project includes, in file order.
  std::map<std::string, std::vector<IncludeEdge>> edges;
};

/// Scan \p root's source directories (src/, tools/, tests/, bench/,
/// examples/) and resolve every quoted include against (1) the includer's
/// own directory, (2) root/src, (3) root. Unresolvable includes are
/// dropped: only edges between files that exist in the tree matter.
IncludeGraph build_include_graph(const std::filesystem::path& root);

/// Layer rank of a repo-relative path per the frozen DAG; higher ranks
/// may include lower ones. Returns -1 for a directory the layer map does
/// not know (the layering check turns that into a finding, so new
/// top-level code must be placed in the DAG explicitly).
int layer_rank(const std::string& rel_path);

/// Human label for a path's layer ("sim", "core", "tools", ...).
std::string layer_name(const std::string& rel_path);

/// First include cycle found (as the chain of repo-relative paths, first
/// node repeated at the end), or empty when the graph is acyclic.
std::vector<std::string> find_include_cycle(const IncludeGraph& g);

}  // namespace bce::lint
