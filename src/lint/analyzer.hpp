#pragma once

/// \file analyzer.hpp
/// The static-analysis engine behind `tools/bce_lint`
/// (docs/static_analysis.md). The checks are a registry of named
/// CheckInfo entries, each with the distinct exit code the repo's
/// exit-code contract assigns it (core/exit_codes.hpp); running them
/// in-process produces positioned Diagnostics that render either as the
/// classic one-line-per-finding text (byte-identical to the pre-library
/// linter) or as SARIF 2.1.0 for code-scanning upload.

#include <cstddef>
#include <filesystem>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bce::lint {

struct Diagnostic {
  std::string check;    ///< rule id ("determinism", "iwyu", ...)
  std::string message;  ///< everything after "bce_lint: <check>: "
  std::string file;     ///< repo-relative path, empty when not file-bound
  int line = 0;         ///< 1-based; 0 = whole file
  int col = 0;          ///< 1-based; 0 = whole line
};

/// Shared state of one analysis run: the tree root and the findings
/// accumulated so far. Checks append; they never print.
class AnalysisContext {
 public:
  explicit AnalysisContext(std::filesystem::path root)
      : root_(std::move(root)) {}

  [[nodiscard]] const std::filesystem::path& root() const { return root_; }

  void diagnose(const char* check, const std::string& msg) {
    diags_.push_back({check, msg, {}, 0, 0});
  }
  void diagnose_at(const char* check, const std::string& msg,
                   std::string file, int line = 0, int col = 0) {
    diags_.push_back({check, msg, std::move(file), line, col});
  }

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diags_;
  }
  [[nodiscard]] std::size_t count() const { return diags_.size(); }

 private:
  std::filesystem::path root_;
  std::vector<Diagnostic> diags_;
};

struct CheckInfo {
  const char* name;         ///< rule id, also the --check selector
  int exit_code;            ///< distinct per check (core/exit_codes.hpp)
  const char* description;  ///< one line, shown by --list-checks
  void (*run)(AnalysisContext&);
};

/// All checks in contract order (the exit code of a full run is the
/// first failing check's).
std::span<const CheckInfo> lint_checks();

/// Lookup by name; nullptr when unknown.
const CheckInfo* find_check(std::string_view name);

struct LintResult {
  std::vector<Diagnostic> diagnostics;  ///< in check, then discovery order
  int exit_code = 0;  ///< first failing selected check's code; 0 = clean
};

/// Run \p selected checks (all when empty) over the tree at \p root.
LintResult run_lint(const std::filesystem::path& root,
                    const std::vector<std::string>& selected);

/// Classic text rendering: "bce_lint: <check>: <message>\n" per finding,
/// byte-identical to the pre-library linter for the ported checks.
std::string format_text(const std::vector<Diagnostic>& diags);

/// SARIF 2.1.0 rendering (one run, one result per finding, physical
/// locations where the finding is file-bound).
std::string format_sarif(const LintResult& result,
                         const std::filesystem::path& root);

}  // namespace bce::lint
