#pragma once

/// \file checks.hpp
/// Internal declarations of the individual lint checks, one function per
/// rule, grouped by implementation file. The public surface is the
/// registry in analyzer.hpp; this header only wires the registry to the
/// definitions.

#include "lint/analyzer.hpp"

namespace bce::lint {

// checks_docs.cpp — documentation-drift checks against live inventories.
void check_trace_docs(AnalysisContext& ctx);
void check_policy_docs(AnalysisContext& ctx);
void check_savestate_docs(AnalysisContext& ctx);
void check_fleet_docs(AnalysisContext& ctx);

// checks_source.cpp — source scans over src/.
void check_logf(AnalysisContext& ctx);
void check_iwyu(AnalysisContext& ctx);
void check_determinism(AnalysisContext& ctx);

// checks_structure.cpp — whole-tree structure checks.
void check_scenarios(AnalysisContext& ctx);
void check_layering(AnalysisContext& ctx);
void check_exit_codes(AnalysisContext& ctx);

}  // namespace bce::lint
