#include "lint/source.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace bce::lint {

namespace fs = std::filesystem;

std::optional<std::string> read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<fs::path> files_under(const fs::path& dir,
                                  const std::vector<std::string>& exts) {
  std::vector<fs::path> out;
  if (!fs::is_directory(dir)) return out;
  for (const auto& e : fs::recursive_directory_iterator(dir)) {
    if (!e.is_regular_file()) continue;
    const std::string ext = e.path().extension().string();
    if (std::find(exts.begin(), exts.end(), ext) != exts.end()) {
      out.push_back(e.path());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when the `"` at \p i opens a raw string literal: it is preceded
/// by `R` with an optional encoding prefix (u8R, uR, UR, LR) that is not
/// itself the tail of a longer identifier (`FooR"..."` lexes as an
/// identifier followed by an ordinary string).
bool opens_raw_string(const std::string& in, std::size_t i) {
  if (i == 0 || in[i - 1] != 'R') return false;
  std::size_t j = i - 1;  // index of the 'R'
  if (j >= 2 && in[j - 2] == 'u' && in[j - 1] == '8') {
    j -= 2;
  } else if (j >= 1 &&
             (in[j - 1] == 'u' || in[j - 1] == 'U' || in[j - 1] == 'L')) {
    j -= 1;
  }
  return j == 0 || !is_ident_char(in[j - 1]);
}

/// Blank the raw string whose opening `"` is at \p i (newlines kept);
/// returns the index of the closing `"` (or the last index when
/// unterminated, blanking to end of input).
std::size_t blank_raw_string(std::string& out, std::size_t i) {
  // Opening sequence: "delim( — the delimiter is at most 16 chars and
  // cannot contain parens, backslash, or whitespace.
  std::size_t d = i + 1;
  while (d < out.size() && out[d] != '(' && out[d] != '\n' &&
         d - i <= 17) {
    ++d;
  }
  const std::string closer =
      ")" + out.substr(i + 1, d - i - 1) + "\"";
  const std::size_t close = out.find(closer, d);
  const std::size_t end =
      close == std::string::npos ? out.size() : close + closer.size();
  for (std::size_t k = i; k < end; ++k) {
    if (out[k] != '\n') out[k] = ' ';
  }
  return end == 0 ? 0 : end - 1;
}

std::string strip_impl(const std::string& in, bool keep_literals) {
  std::string out = in;
  enum class St : std::uint8_t { kCode, kLine, kBlock, kStr, kChar };
  St st = St::kCode;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLine;
        } else if (c == '/' && next == '*') {
          st = St::kBlock;
        } else if (c == '"' && opens_raw_string(out, i)) {
          if (keep_literals) {
            // Skip to the closing quote without touching the contents.
            std::size_t d = i + 1;
            while (d < out.size() && out[d] != '(' && out[d] != '\n' &&
                   d - i <= 17) {
              ++d;
            }
            const std::string closer =
                ")" + out.substr(i + 1, d - i - 1) + "\"";
            const std::size_t close = out.find(closer, d);
            i = close == std::string::npos ? out.size() - 1
                                           : close + closer.size() - 1;
          } else {
            i = blank_raw_string(out, i);
          }
        } else if (c == '"') {
          st = St::kStr;
          if (!keep_literals) out[i] = ' ';
        } else if (c == '\'') {
          st = St::kChar;
          if (!keep_literals) out[i] = ' ';
        }
        break;
      case St::kLine:
        if (c == '\n') st = St::kCode;
        else out[i] = ' ';
        break;
      case St::kBlock:
        if (c == '*' && next == '/') {
          st = St::kCode;
          out[i + 1] = ' ';
        }
        if (c != '\n') out[i] = ' ';
        break;
      case St::kStr:
        if (c == '\\') {
          if (!keep_literals) {
            out[i] = ' ';
            if (next != '\n' && i + 1 < out.size()) out[i + 1] = ' ';
          }
          if (i + 1 < out.size()) ++i;
        } else if (c == '"') {
          st = St::kCode;
          if (!keep_literals) out[i] = ' ';
        } else if (c != '\n' && !keep_literals) {
          out[i] = ' ';
        }
        break;
      case St::kChar:
        if (c == '\\') {
          if (!keep_literals) {
            out[i] = ' ';
            if (next != '\n' && i + 1 < out.size()) out[i + 1] = ' ';
          }
          if (i + 1 < out.size()) ++i;
        } else if (c == '\'') {
          st = St::kCode;
          if (!keep_literals) out[i] = ' ';
        } else if (c != '\n' && !keep_literals) {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

}  // namespace

std::string strip_noncode(const std::string& in) {
  return strip_impl(in, /*keep_literals=*/false);
}

std::string strip_comments(const std::string& in) {
  return strip_impl(in, /*keep_literals=*/true);
}

SourceFile::SourceFile(std::string name, std::string text)
    : name_(std::move(name)), raw_(std::move(text)) {}

std::optional<SourceFile> SourceFile::load(const fs::path& path,
                                           std::string name) {
  auto text = read_file(path);
  if (!text) return std::nullopt;
  return SourceFile(std::move(name), *std::move(text));
}

const std::string& SourceFile::stripped() const {
  if (!stripped_) stripped_ = strip_noncode(raw_);
  return *stripped_;
}

const std::vector<Token>& SourceFile::tokens() const {
  if (tokens_) return *tokens_;
  const std::string& code = stripped();
  std::vector<Token> toks;
  int line = 1;
  int col = 1;
  for (std::size_t i = 0; i < code.size();) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      col = 1;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++col;
      ++i;
      continue;
    }
    Token t;
    t.line = line;
    t.col = col;
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::size_t end = i;
      while (end < code.size() && is_ident_char(code[end])) ++end;
      t.kind = Token::Kind::kIdentifier;
      t.text = code.substr(i, end - i);
    } else if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t end = i;
      while (end < code.size() &&
             (is_ident_char(code[end]) || code[end] == '.')) {
        ++end;
      }
      t.kind = Token::Kind::kNumber;
      t.text = code.substr(i, end - i);
    } else if (c == ':' && i + 1 < code.size() && code[i + 1] == ':') {
      t.kind = Token::Kind::kPunct;
      t.text = "::";
    } else {
      t.kind = Token::Kind::kPunct;
      t.text = std::string(1, c);
    }
    col += static_cast<int>(t.text.size());
    i += t.text.size();
    toks.push_back(std::move(t));
  }
  tokens_ = std::move(toks);
  return *tokens_;
}

void SourceFile::build_line_index() const {
  if (!line_starts_.empty()) return;
  line_starts_.push_back(0);
  for (std::size_t i = 0; i < raw_.size(); ++i) {
    if (raw_[i] == '\n') line_starts_.push_back(i + 1);
  }
}

std::string_view SourceFile::line_text(int line) const {
  build_line_index();
  if (line < 1 || static_cast<std::size_t>(line) > line_starts_.size()) {
    return {};
  }
  const std::size_t begin = line_starts_[static_cast<std::size_t>(line - 1)];
  std::size_t end = static_cast<std::size_t>(line) < line_starts_.size()
                        ? line_starts_[static_cast<std::size_t>(line)] - 1
                        : raw_.size();
  if (end > begin && raw_[end - 1] == '\r') --end;
  return std::string_view(raw_).substr(begin, end - begin);
}

bool SourceFile::line_has_allow_marker(int line,
                                       std::string_view check) const {
  const std::string marker =
      "bce-lint: allow(" + std::string(check) + ")";
  return line_text(line).find(marker) != std::string_view::npos;
}

std::string SourceFile::allow_reason(int line, std::string_view check) const {
  const std::string marker =
      "bce-lint: allow(" + std::string(check) + "):";
  const std::string_view text = line_text(line);
  const std::size_t pos = text.find(marker);
  if (pos == std::string_view::npos) return {};
  std::string_view reason = text.substr(pos + marker.size());
  while (!reason.empty() &&
         std::isspace(static_cast<unsigned char>(reason.front())) != 0) {
    reason.remove_prefix(1);
  }
  while (!reason.empty() &&
         std::isspace(static_cast<unsigned char>(reason.back())) != 0) {
    reason.remove_suffix(1);
  }
  return std::string(reason);
}

}  // namespace bce::lint
