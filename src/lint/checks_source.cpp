// Source scans over src/: the logf ban, include-what-you-use for a
// curated std symbol set, and the determinism check that keeps wall-clock
// and entropy out of the emulation core. The ported checks (logf, iwyu)
// keep their pre-library diagnostics byte-for-byte.

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lint/checks.hpp"
#include "lint/source.hpp"

namespace bce::lint {

namespace fs = std::filesystem;

void check_logf(AnalysisContext& ctx) {
  // The only legitimate logf call site is the trace dispatcher's
  // LoggerSink (sim/trace.cpp) plus the Logger's own declaration and
  // definition. Everywhere else, decisions must emit typed TraceEvents.
  // The linter's own implementation must spell the banned pattern and is
  // exempt.
  const std::vector<std::string> allowed = {"sim/logger.hpp", "sim/logger.cpp",
                                            "sim/trace.cpp",
                                            "lint/checks_source.cpp"};
  for (const auto& p : files_under(ctx.root() / "src", {".hpp", ".cpp"})) {
    const std::string rel =
        fs::relative(p, ctx.root() / "src").generic_string();
    if (std::find(allowed.begin(), allowed.end(), rel) != allowed.end()) {
      continue;
    }
    const auto text = read_file(p);
    if (!text) continue;
    std::istringstream lines(*text);
    std::string line;
    for (int ln = 1; std::getline(lines, line); ++ln) {
      const auto pos = line.find("logf(");
      // Match only call syntax (".logf(" / "->logf(" / bare "logf("),
      // not identifiers that merely end in "logf".
      if (pos != std::string::npos &&
          (pos == 0 ||
           !(std::isalnum(static_cast<unsigned char>(line[pos - 1])) != 0 ||
             line[pos - 1] == '_' || line[pos - 1] == ':'))) {
        ctx.diagnose_at("logf",
                        "raw Logger::logf call at src/" + rel + ":" +
                            std::to_string(ln) +
                            " (emit a TraceEvent instead)",
                        "src/" + rel, ln, static_cast<int>(pos) + 1);
      }
    }
  }
}

void check_iwyu(AnalysisContext& ctx) {
  // Curated symbol -> standard header map. Deliberately conservative:
  // only symbols whose home header is unambiguous.
  static const std::map<std::string, std::string> kHeaderOf = {
      {"vector", "vector"},
      {"string", "string"},
      {"to_string", "string"},
      {"array", "array"},
      {"function", "functional"},
      {"unique_ptr", "memory"},
      {"shared_ptr", "memory"},
      {"weak_ptr", "memory"},
      {"make_unique", "memory"},
      {"make_shared", "memory"},
      {"optional", "optional"},
      {"nullopt", "optional"},
      {"mutex", "mutex"},
      {"lock_guard", "mutex"},
      {"scoped_lock", "mutex"},
      {"unique_lock", "mutex"},
      {"condition_variable", "condition_variable"},
      {"map", "map"},
      {"multimap", "map"},
      {"unordered_map", "unordered_map"},
      {"unordered_set", "unordered_set"},
      {"priority_queue", "queue"},
      {"queue", "queue"},
      {"deque", "deque"},
      {"thread", "thread"},
      {"atomic", "atomic"},
      {"runtime_error", "stdexcept"},
      {"logic_error", "stdexcept"},
      {"invalid_argument", "stdexcept"},
      {"out_of_range", "stdexcept"},
      {"domain_error", "stdexcept"},
      {"ostringstream", "sstream"},
      {"istringstream", "sstream"},
      {"stringstream", "sstream"},
      {"ofstream", "fstream"},
      {"ifstream", "fstream"},
      {"numeric_limits", "limits"},
      {"sort", "algorithm"},
      {"stable_sort", "algorithm"},
      {"fill", "algorithm"},
      {"find_if", "algorithm"},
      {"lower_bound", "algorithm"},
      {"upper_bound", "algorithm"},
      {"min_element", "algorithm"},
      {"max_element", "algorithm"},
      {"accumulate", "numeric"},
      {"move", "utility"},
      {"forward", "utility"},
      {"swap", "utility"},
      {"exchange", "utility"},
      {"pair", "utility"},
      {"int8_t", "cstdint"},
      {"int16_t", "cstdint"},
      {"int32_t", "cstdint"},
      {"int64_t", "cstdint"},
      {"uint8_t", "cstdint"},
      {"uint16_t", "cstdint"},
      {"uint32_t", "cstdint"},
      {"uint64_t", "cstdint"},
      {"set", "set"},
      {"span", "span"},
      {"string_view", "string_view"},
      {"filesystem", "filesystem"},
      {"size_t", "cstddef"},
      {"abs", "cmath"},
      {"fabs", "cmath"},
  };

  for (const auto& p : files_under(ctx.root() / "src", {".hpp"})) {
    const auto raw = read_file(p);
    if (!raw) continue;
    const std::string code = strip_noncode(*raw);
    const std::string rel = fs::relative(p, ctx.root()).generic_string();
    std::vector<std::pair<std::string, int>> missing;  // note, first line
    for (std::size_t pos = code.find("std::"); pos != std::string::npos;
         pos = code.find("std::", pos + 5)) {
      std::size_t end = pos + 5;
      while (end < code.size() &&
             (std::isalnum(static_cast<unsigned char>(code[end])) != 0 ||
              code[end] == '_')) {
        ++end;
      }
      const std::string sym = code.substr(pos + 5, end - pos - 5);
      const auto it = kHeaderOf.find(sym);
      if (it == kHeaderOf.end()) continue;
      const std::string inc = "#include <" + it->second + ">";
      if (raw->find(inc) != std::string::npos) continue;
      const std::string note = "uses std::" + sym + " but does not include <" +
                               it->second + ">";
      const auto seen =
          std::find_if(missing.begin(), missing.end(),
                       [&](const auto& m) { return m.first == note; });
      if (seen == missing.end()) {
        const int ln = 1 + static_cast<int>(std::count(
                               code.begin(),
                               code.begin() + static_cast<std::ptrdiff_t>(pos),
                               '\n'));
        missing.emplace_back(note, ln);
      }
    }
    for (const auto& [note, ln] : missing) {
      ctx.diagnose_at("iwyu", rel + " " + note, rel, ln);
    }
  }
}

// ---- determinism ----------------------------------------------------------

namespace {

/// One banned nondeterminism source, matched as a token sequence over the
/// stripped text (so comments and literals never trigger).
struct BannedSeq {
  std::vector<const char*> seq;  ///< tokens that must appear consecutively
  const char* label;             ///< what the diagnostic names
};

bool tokens_match(const std::vector<Token>& toks, std::size_t i,
                  const std::vector<const char*>& seq) {
  if (i + seq.size() > toks.size()) return false;
  for (std::size_t k = 0; k < seq.size(); ++k) {
    if (toks[i + k].text != seq[k]) return false;
  }
  return true;
}

/// Skip a balanced template argument list starting at `<` (index i);
/// returns the index just past the matching `>`, or i when toks[i] is not
/// `<`. `>>` never appears: the tokenizer emits single-char puncts.
std::size_t skip_template_args(const std::vector<Token>& toks,
                               std::size_t i) {
  if (i >= toks.size() || toks[i].text != "<") return i;
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (toks[i].text == "<") ++depth;
    if (toks[i].text == ">" && --depth == 0) return i + 1;
  }
  return i;
}

}  // namespace

void check_determinism(AnalysisContext& ctx) {
  // The emulation must be a pure function of the scenario: no entropy, no
  // wall-clock, no thread identity, no host topology probes. The thread
  // pool is the one component allowed to size itself off the machine.
  static const std::vector<BannedSeq> kBanned = {
      {{"random_device"}, "std::random_device"},
      {{"rand", "("}, "rand()"},
      {{"srand"}, "srand"},
      {{"time", "(", "nullptr", ")"}, "time(nullptr)"},
      {{"time", "(", "NULL", ")"}, "time(NULL)"},
      {{"time", "(", "0", ")"}, "time(0)"},
      {{"system_clock"}, "std::chrono::system_clock"},
      {{"steady_clock", "::", "now"}, "std::chrono::steady_clock::now"},
      {{"this_thread", "::", "get_id"}, "std::this_thread::get_id"},
      {{"hardware_concurrency"}, "hardware_concurrency"},
      {{"clock_gettime"}, "clock_gettime"},
      {{"gettimeofday"}, "gettimeofday"},
  };
  // hardware_concurrency is how the thread pool sizes itself; that one
  // file may probe the machine because worker count never changes results
  // (sharding is by stable scenario index).
  static const std::set<std::string> kHwConcurrencyAllowed = {
      "src/sim/thread_pool.cpp"};
  // Iterating an unordered container is only a determinism hazard where
  // the iteration order can leak into observable output; these are the
  // headers that grant a TU that power.
  static const std::vector<std::string> kOutputHeaders = {
      "sim/trace.hpp", "core/metrics.hpp", "sim/state_io.hpp"};

  for (const auto& p : files_under(ctx.root() / "src", {".hpp", ".cpp"})) {
    const std::string rel = fs::relative(p, ctx.root()).generic_string();
    auto sf = SourceFile::load(p, rel);
    if (!sf) continue;
    const auto& toks = sf->tokens();

    // The escape hatch may sit on the flagged line or the one above it
    // (long call sites put the comment on its own line).
    const auto marker_line = [&](const Token& t) {
      if (sf->line_has_allow_marker(t.line, "determinism")) return t.line;
      if (t.line > 1 && sf->line_has_allow_marker(t.line - 1, "determinism")) {
        return t.line - 1;
      }
      return 0;
    };
    const auto report = [&](const Token& t, const std::string& what) {
      if (const int ml = marker_line(t); ml != 0) {
        if (sf->allow_reason(ml, "determinism").empty()) {
          ctx.diagnose_at(
              "determinism",
              rel + ":" + std::to_string(t.line) +
                  ": allow(determinism) marker without a reason (write "
                  "\"// bce-lint: allow(determinism): <why>\")",
              rel, t.line, t.col);
        }
        return;
      }
      ctx.diagnose_at("determinism",
                      rel + ":" + std::to_string(t.line) +
                          ": nondeterminism source " + what +
                          " in emulation code (results must be a pure "
                          "function of the scenario)",
                      rel, t.line, t.col);
    };

    for (std::size_t i = 0; i < toks.size(); ++i) {
      for (const auto& b : kBanned) {
        if (toks[i].kind != Token::Kind::kIdentifier) continue;
        if (!tokens_match(toks, i, b.seq)) continue;
        if (std::string_view(b.label) == "hardware_concurrency" &&
            kHwConcurrencyAllowed.count(rel) != 0) {
          continue;
        }
        report(toks[i], b.label);
        break;
      }
    }

    // Unordered-iteration heuristic: names declared as
    // unordered_{map,set}<...> name, then range-for loops whose range is
    // exactly one of those names.
    bool emits_output = false;
    for (const auto& h : kOutputHeaders) {
      if (sf->raw().find("#include \"" + h + "\"") != std::string::npos) {
        emits_output = true;
        break;
      }
    }
    if (!emits_output) continue;
    std::set<std::string> unordered_names;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].text != "unordered_map" && toks[i].text != "unordered_set") {
        continue;
      }
      const std::size_t after = skip_template_args(toks, i + 1);
      if (after < toks.size() &&
          toks[after].kind == Token::Kind::kIdentifier) {
        unordered_names.insert(toks[after].text);
      }
    }
    if (unordered_names.empty()) continue;
    for (std::size_t i = 0; i + 4 < toks.size(); ++i) {
      if (toks[i].text != "for" || toks[i + 1].text != "(") continue;
      // Find the range expression: the token after the top-level ':'.
      int depth = 0;
      for (std::size_t k = i + 1; k < toks.size(); ++k) {
        if (toks[k].text == "(") ++depth;
        if (toks[k].text == ")" && --depth == 0) break;
        if (depth == 1 && toks[k].text == ":" && k + 2 < toks.size() &&
            toks[k + 1].kind == Token::Kind::kIdentifier &&
            toks[k + 2].text == ")" &&
            unordered_names.count(toks[k + 1].text) != 0) {
          const Token& t = toks[k + 1];
          if (const int ml = marker_line(t); ml != 0) {
            if (sf->allow_reason(ml, "determinism").empty()) {
              ctx.diagnose_at(
                  "determinism",
                  rel + ":" + std::to_string(t.line) +
                      ": allow(determinism) marker without a reason (write "
                      "\"// bce-lint: allow(determinism): <why>\")",
                  rel, t.line, t.col);
            }
            break;
          }
          ctx.diagnose_at(
              "determinism",
              rel + ":" + std::to_string(t.line) +
                  ": iteration over unordered container \"" +
                  t.text +
                  "\" in a TU that emits traces/metrics/savestate "
                  "(order leaks into observable output)",
              rel, t.line, t.col);
          break;
        }
      }
    }
  }
}

}  // namespace bce::lint
