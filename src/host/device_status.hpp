#pragma once

/// \file device_status.hpp
/// Device-diversity host model, after BOINC's lib/device_status: a host may
/// be a mobile/battery device that is sometimes off AC power (draining its
/// battery) and sometimes off wifi. The scenario describes the device with
/// a DeviceSpec; the emulator realizes it as a DeviceModel and stamps a
/// DeviceStatus snapshot onto every WorkRequest so server-side dispatch
/// policies (e.g. SD_MOBILE, docs/policies.md) can refuse work to hosts
/// that are about to run out of power or have no cheap network path.
///
/// The default spec — always on AC, always on wifi, full battery — models
/// the paper's desktop hosts and draws nothing from the RNG, so scenarios
/// that don't mention a device are byte-identical to builds predating it.

#include "host/availability.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace bce {

class StateReader;
class StateWriter;

/// Declarative device description; lives in the scenario's host section
/// (docs/scenario_format.md: device_ac, device_wifi, battery_*).
struct DeviceSpec {
  /// On/off process for AC power (ON = plugged in). Battery charges while
  /// ON and drains while OFF.
  OnOffSpec on_ac = OnOffSpec::always_on();

  /// On/off process for wifi connectivity (ON = unmetered network).
  OnOffSpec on_wifi = OnOffSpec::always_on();

  /// Initial battery charge, fraction of capacity in [0, 1].
  double battery_charge = 1.0;

  /// Battery drain while off AC, fraction of capacity per hour.
  double battery_discharge = 0.0;

  /// Battery recharge while on AC, fraction of capacity per hour.
  double battery_recharge = 0.0;

  /// True when the spec is the desktop default (always on AC and wifi,
  /// full battery): nothing to model, nothing to serialize.
  [[nodiscard]] bool is_default() const {
    return on_ac.kind == OnOffSpec::Kind::kAlwaysOn &&
           on_wifi.kind == OnOffSpec::Kind::kAlwaysOn &&
           battery_charge == 1.0 && battery_discharge == 0.0 &&
           battery_recharge == 0.0;
  }
};

/// Point-in-time device snapshot, carried on every WorkRequest (BOINC
/// clients report DEVICE_STATUS with each scheduler RPC).
struct DeviceStatus {
  bool on_ac = true;
  bool on_wifi = true;
  double battery_charge = 1.0;     ///< fraction of capacity in [0, 1]
  double battery_discharge = 0.0;  ///< fraction of capacity per hour (off-AC)
};

/// Stateful realization of a DeviceSpec: two on/off processes plus a
/// piecewise-linear battery integration across AC flips. Deterministic
/// given the RNG stream passed at construction.
class DeviceModel {
 public:
  DeviceModel() : DeviceModel(DeviceSpec{}, Xoshiro256(0), 0.0) {}

  /// \p rng is consumed by value: the model owns an independent stream.
  DeviceModel(const DeviceSpec& spec, Xoshiro256 rng, SimTime now);

  /// Integrate the battery and process AC/wifi flips up to \p now.
  void advance_to(SimTime now);

  /// Snapshot at the model's current time (call advance_to first).
  [[nodiscard]] DeviceStatus status() const;

  /// Savestate support (docs/savestate.md): the spec is reconstructed from
  /// the scenario; serialized state is the two channel realizations plus
  /// the battery charge and integration frontier.
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  /// Accumulate battery charge/drain over [last_, to] under the current
  /// AC state, then move the frontier.
  void integrate_to(SimTime to);

  DeviceSpec spec_;
  OnOffProcess ac_;
  OnOffProcess wifi_;
  double charge_ = 1.0;
  SimTime last_ = 0.0;
};

}  // namespace bce
