#pragma once

/// \file availability_presets.hpp
/// Ready-made host availability patterns matching the archetypes the paper
/// describes ("some are available all the time, others are available
/// periodically or randomly", §4.1). These are building blocks for
/// scenarios and the population sampler; each returns a full three-channel
/// HostAvailabilitySpec.

#include "host/availability.hpp"

namespace bce {

/// A dedicated machine: always on, always connected.
HostAvailabilitySpec avail_dedicated();

/// An office workstation: powered during working hours (weekday rhythm is
/// approximated by a daily window), GPU free only outside them (the user
/// works on it during the day), always connected while on.
HostAvailabilitySpec avail_office_workstation(
    double work_start = 8.0 * kSecondsPerHour,
    double work_end = 18.0 * kSecondsPerHour);

/// A home PC used in the evening: on from ~17:00 to midnight.
HostAvailabilitySpec avail_evening_pc();

/// A laptop: random on/off periods (Weibull-distributed, per Javadi et
/// al.'s SETI@home fits) and an intermittent network connection.
HostAvailabilitySpec avail_laptop(Duration mean_on = 2.0 * kSecondsPerHour,
                                  Duration mean_off = 4.0 * kSecondsPerHour);

/// A gamer's rig: host always on, GPU yielded to games every evening.
HostAvailabilitySpec avail_gamer_rig();

}  // namespace bce
