#include "host/device_status.hpp"

#include "sim/state_io.hpp"

namespace bce {

DeviceModel::DeviceModel(const DeviceSpec& spec, Xoshiro256 rng, SimTime now)
    : spec_(spec),
      ac_(spec.on_ac, rng.fork("device.ac"), now),
      wifi_(spec.on_wifi, rng.fork("device.wifi"), now),
      charge_(clamp(spec.battery_charge, 0.0, 1.0)),
      last_(now) {}

void DeviceModel::integrate_to(SimTime to) {
  const double dt = to - last_;
  if (dt > 0.0) {
    const double rate = ac_.on() ? spec_.battery_recharge
                                 : -spec_.battery_discharge;
    charge_ = clamp(charge_ + rate * dt / kSecondsPerHour, 0.0, 1.0);
  }
  last_ = to;
}

void DeviceModel::advance_to(SimTime now) {
  if (now <= last_) return;
  // Integrate piecewise so the charge rate changes exactly at AC flips.
  while (ac_.next_transition() <= now) {
    const SimTime flip = ac_.next_transition();
    integrate_to(flip);
    ac_.advance_to(flip);
  }
  integrate_to(now);
  wifi_.advance_to(now);
}

DeviceStatus DeviceModel::status() const {
  DeviceStatus s;
  s.on_ac = ac_.on();
  s.on_wifi = wifi_.on();
  s.battery_charge = charge_;
  s.battery_discharge = spec_.battery_discharge;
  return s;
}

void DeviceModel::save_state(StateWriter& w) const {
  ac_.save_state(w, "device.ac");
  wifi_.save_state(w, "device.wifi");
  w.put_f64("device.charge", charge_);
  w.put_f64("device.last", last_);
}

void DeviceModel::restore_state(StateReader& r) {
  ac_.restore_state(r, "device.ac");
  wifi_.restore_state(r, "device.wifi");
  charge_ = r.get_f64("device.charge");
  last_ = r.get_f64("device.last");
}

}  // namespace bce
