#include "host/availability_presets.hpp"

namespace bce {

HostAvailabilitySpec avail_dedicated() { return {}; }

HostAvailabilitySpec avail_office_workstation(double work_start,
                                              double work_end) {
  HostAvailabilitySpec s;
  // Powered during working hours on weekdays only (day 0 = "Monday").
  s.host_on = OnOffSpec::weekly(work_start, work_end,
                                {true, true, true, true, true, false, false});
  // GPU available only outside working hours (the machine computes with
  // the CPU all day, but the GPU is reserved while the user is active).
  s.gpu_allowed = OnOffSpec::daily_window(work_end - kSecondsPerHour,
                                          work_start + kSecondsPerHour);
  return s;
}

HostAvailabilitySpec avail_evening_pc() {
  HostAvailabilitySpec s;
  s.host_on =
      OnOffSpec::daily_window(17.0 * kSecondsPerHour, 24.0 * kSecondsPerHour);
  return s;
}

HostAvailabilitySpec avail_laptop(Duration mean_on, Duration mean_off) {
  HostAvailabilitySpec s;
  OnOffSpec host = OnOffSpec::markov(mean_on, mean_off);
  host.dist = PeriodDist::kWeibull;
  host.shape = 0.6;  // heavy-tailed periods, per the SETI@home fits
  s.host_on = host;
  s.network = OnOffSpec::markov(6.0 * kSecondsPerHour, kSecondsPerHour);
  return s;
}

HostAvailabilitySpec avail_gamer_rig() {
  HostAvailabilitySpec s;
  // GPU yielded to games from 19:00 to 23:00.
  s.gpu_allowed = OnOffSpec::daily_window(23.0 * kSecondsPerHour,
                                          19.0 * kSecondsPerHour);
  return s;
}

}  // namespace bce
