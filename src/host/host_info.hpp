#pragma once

/// \file host_info.hpp
/// Static hardware description of the emulated host (§2.2): processor
/// counts and per-instance peak FLOPS per type, RAM. The BOINC client
/// probes these on a real host; scenarios specify them directly.

#include "host/device_status.hpp"
#include "sim/proc_type.hpp"

namespace bce {

struct HostInfo {
  /// Number of instances of each processor type. CPUs >= 1 for a usable
  /// host; GPU counts may be zero.
  PerProc<int> count{};

  /// Peak FLOPS of a single instance of each type.
  PerProc<double> flops_per_instance{};

  /// Main memory, bytes. Jobs' working sets are charged against
  /// Preferences::ram_limit_fraction of this.
  double ram_bytes = 4e9;

  /// Download bandwidth, bytes/second; <= 0 disables the transfer model
  /// (jobs are runnable immediately after dispatch, the paper's base
  /// assumption). When positive, jobs with input_bytes > 0 must finish
  /// downloading before they can run (§6.2 extension).
  double download_bandwidth_bps = 0.0;

  /// Device diversity (BOINC lib/device_status): AC power and wifi
  /// processes plus battery parameters. The default models a desktop —
  /// always on AC and wifi — and changes nothing.
  DeviceSpec device;

  /// Aggregate peak FLOPS of one type.
  [[nodiscard]] double peak_flops(ProcType t) const {
    return count[t] * flops_per_instance[t];
  }

  /// Aggregate peak FLOPS across all processor types — the capacity measure
  /// the paper's figures of merit are expressed in (§4.2).
  [[nodiscard]] double total_peak_flops() const {
    double sum = 0.0;
    for (const auto t : kAllProcTypes) sum += peak_flops(t);
    return sum;
  }

  [[nodiscard]] bool has_gpu() const {
    return count[ProcType::kNvidia] > 0 || count[ProcType::kAti] > 0;
  }

  /// Convenience factories for the common scenario shapes.
  static HostInfo cpu_only(int ncpus, double cpu_flops) {
    HostInfo h;
    h.count[ProcType::kCpu] = ncpus;
    h.flops_per_instance[ProcType::kCpu] = cpu_flops;
    return h;
  }

  static HostInfo cpu_gpu(int ncpus, double cpu_flops, int ngpus,
                          double gpu_flops, ProcType gpu = ProcType::kNvidia) {
    HostInfo h = cpu_only(ncpus, cpu_flops);
    h.count[gpu] = ngpus;
    h.flops_per_instance[gpu] = gpu_flops;
    return h;
  }
};

}  // namespace bce
