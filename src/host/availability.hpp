#pragma once

/// \file availability.hpp
/// Host availability modelling (§2.2, §4.3): "host availability is modeled
/// as a random process in which available and unavailable periods have
/// exponentially distributed lengths". We support three channels —
/// host powered on, GPU computing allowed, network connected — each driven
/// by an independent on/off process. Besides the paper's Markov model we
/// provide always-on and deterministic daily-window processes (time-of-day
/// preferences, §2.2).

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace bce {

/// Period-length distribution for the random on/off model. The paper's
/// model is exponential (§4.3b); Javadi et al. [5] found Weibull and
/// lognormal often fit real hosts better, so those are provided too.
enum class PeriodDist : std::uint8_t { kExponential, kWeibull, kLognormal };

/// Declarative description of an on/off process; lives in scenario files.
struct OnOffSpec {
  enum class Kind { kAlwaysOn, kMarkov, kDailyWindow, kWeekly, kTrace };

  Kind kind = Kind::kAlwaysOn;

  // kMarkov: mean lengths of available / unavailable periods (seconds),
  // drawn from `dist` (shape: Weibull k, or lognormal sigma; ignored for
  // exponential).
  double mean_on = kSecondsPerDay;
  double mean_off = 0.0;
  bool start_on = true;
  PeriodDist dist = PeriodDist::kExponential;
  double shape = 1.0;

  // kTrace: a recorded availability trace, replayed cyclically. Each
  // segment lasts `duration` seconds in state `on`; the process starts at
  // the head of the trace.
  struct TraceSegment {
    double duration = 0.0;
    bool on = true;
  };
  std::vector<TraceSegment> trace;

  // kDailyWindow: ON during [window_start, window_end) seconds-of-day;
  // if window_start > window_end the window wraps midnight.
  // kWeekly: the same window, but only on days where active_days is set
  // (day 0 = the emulation's first day; windows must not wrap midnight).
  double window_start = 0.0;
  double window_end = kSecondsPerDay;
  std::array<bool, 7> active_days{true, true, true, true, true, true, true};

  static OnOffSpec always_on() { return {}; }
  static OnOffSpec markov(double on_mean, double off_mean, bool begin_on = true) {
    OnOffSpec s;
    s.kind = Kind::kMarkov;
    s.mean_on = on_mean;
    s.mean_off = off_mean;
    s.start_on = begin_on;
    return s;
  }
  static OnOffSpec daily_window(double start_sec, double end_sec) {
    OnOffSpec s;
    s.kind = Kind::kDailyWindow;
    s.window_start = start_sec;
    s.window_end = end_sec;
    return s;
  }
  static OnOffSpec from_trace(std::vector<TraceSegment> segments) {
    OnOffSpec s;
    s.kind = Kind::kTrace;
    s.trace = std::move(segments);
    return s;
  }
  /// Weekly schedule: ON during [start, end) seconds-of-day on the days
  /// where \p days is set (e.g. weekdays only). The window must not wrap
  /// midnight.
  static OnOffSpec weekly(double start_sec, double end_sec,
                          std::array<bool, 7> days) {
    OnOffSpec s;
    s.kind = Kind::kWeekly;
    s.window_start = start_sec;
    s.window_end = end_sec;
    s.active_days = days;
    return s;
  }

  /// Long-run fraction of time the process is ON (exact for all kinds).
  [[nodiscard]] double expected_on_fraction() const;
};

/// Stateful realization of an OnOffSpec. Deterministic given the RNG stream
/// passed at construction. The owner advances it through simulated time and
/// asks for the next transition so it can schedule an event.
class OnOffProcess {
 public:
  OnOffProcess() : OnOffProcess(OnOffSpec::always_on(), Xoshiro256(0), 0.0) {}

  /// \p rng is consumed by value: the process owns an independent stream.
  OnOffProcess(const OnOffSpec& spec, Xoshiro256 rng, SimTime now);

  [[nodiscard]] bool on() const { return on_; }

  /// Absolute time of the next state flip; kNever if the state is permanent.
  [[nodiscard]] SimTime next_transition() const { return next_flip_; }

  /// Process all flips with time <= now. Safe to call with now between
  /// transitions (no-op).
  void advance_to(SimTime now);

  [[nodiscard]] const OnOffSpec& spec() const { return spec_; }

  /// Savestate support (docs/savestate.md): the spec is reconstructed from
  /// the scenario; only the realization (stream position, phase) is
  /// serialized. \p name prefixes the field names.
  void save_state(StateWriter& w, const std::string& name) const;
  void restore_state(StateReader& r, const std::string& name);

 private:
  void schedule_next(SimTime from);
  [[nodiscard]] double sample_period(double mean);

  OnOffSpec spec_;
  Xoshiro256 rng_;
  bool on_ = true;
  SimTime next_flip_ = kNever;
  std::size_t trace_pos_ = 0;  ///< next segment index (kTrace)
};

/// The three availability channels of a host. Channel indices are used as
/// event payloads.
enum class AvailChannel : std::uint8_t { kHostOn = 0, kGpuAllowed = 1, kNetwork = 2 };
inline constexpr std::size_t kNumAvailChannels = 3;

struct HostAvailabilitySpec {
  OnOffSpec host_on = OnOffSpec::always_on();
  OnOffSpec gpu_allowed = OnOffSpec::always_on();
  OnOffSpec network = OnOffSpec::always_on();
};

/// Runtime aggregate of the three channels with the BOINC semantics:
/// CPU computing requires the host to be on; GPU computing additionally
/// requires the GPU channel; network access requires host + network.
class HostAvailability {
 public:
  HostAvailability() = default;
  HostAvailability(const HostAvailabilitySpec& spec, Xoshiro256& parent_rng,
                   SimTime now);

  [[nodiscard]] bool cpu_computing_allowed() const { return host_on_.on(); }
  [[nodiscard]] bool gpu_computing_allowed() const {
    return host_on_.on() && gpu_allowed_.on();
  }
  [[nodiscard]] bool network_available() const {
    return host_on_.on() && network_.on();
  }

  /// Earliest next transition across channels.
  [[nodiscard]] SimTime next_transition() const;

  void advance_to(SimTime now);

  [[nodiscard]] const OnOffProcess& channel(AvailChannel c) const;

  /// Savestate support: delegates to the three channel processes.
  void save_state(StateWriter& w) const;
  void restore_state(StateReader& r);

 private:
  OnOffProcess host_on_;
  OnOffProcess gpu_allowed_;
  OnOffProcess network_;
};

}  // namespace bce
