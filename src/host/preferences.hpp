#pragma once

/// \file preferences.hpp
/// User-specified preferences governing the client (§2.2, §3.4). We model
/// the subset that affects scheduling: work-buffer sizes, the RAM budget,
/// and whether GPU computing is suspended while the host is "in use"
/// (subsumed into the GPU availability channel).

#include "sim/types.hpp"

namespace bce {

struct Preferences {
  /// min_queue (a.k.a. work_buf_min_days in BOINC, here in seconds): the
  /// client tries to keep every processor busy for at least this long;
  /// reflects expected disconnected periods (§3.4).
  Duration min_queue = 0.1 * kSecondsPerDay;

  /// max_queue (seconds): don't fetch more work for a type once it is
  /// saturated this far ahead. Must be >= min_queue.
  Duration max_queue = 0.5 * kSecondsPerDay;

  /// Fraction of HostInfo::ram_bytes that running jobs may occupy in total.
  double ram_limit_fraction = 0.9;

  /// Minimum spacing between scheduler RPCs to the same project, seconds.
  /// Protects project servers from rapid-fire requests.
  Duration min_rpc_interval = 60.0;

  /// A completed job is reported no later than this after completion, even
  /// if no work request is pending (BOINC reports within ~1 day or at the
  /// report deadline; the exact bound only matters for RPC counting).
  Duration max_report_delay = 0.25 * kSecondsPerDay;

  /// How often the client re-evaluates scheduling and work fetch when no
  /// event forces it earlier. The real client polls every ~60 s; BCE uses
  /// the same cadence.
  Duration poll_period = 60.0;

  /// Keep preempted applications in memory: suspension then loses no
  /// progress (no rollback to the last checkpoint). BOINC's
  /// leave_applications_in_memory preference; off by default, as in BOINC.
  bool leave_apps_in_memory = false;

  [[nodiscard]] bool valid() const {
    return min_queue >= 0 && max_queue >= min_queue &&
           ram_limit_fraction > 0 && ram_limit_fraction <= 1.0 &&
           min_rpc_interval >= 0 && poll_period > 0;
  }
};

}  // namespace bce
