#include "host/availability.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sim/distribution.hpp"
#include "sim/state_io.hpp"

namespace bce {

double OnOffSpec::expected_on_fraction() const {
  switch (kind) {
    case Kind::kAlwaysOn:
      return 1.0;
    case Kind::kMarkov: {
      const double total = mean_on + mean_off;
      return total > 0.0 ? mean_on / total : 1.0;
    }
    case Kind::kDailyWindow: {
      double len = window_end - window_start;
      if (len < 0) len += kSecondsPerDay;  // wraps midnight
      return len / kSecondsPerDay;
    }
    case Kind::kWeekly: {
      int n_active = 0;
      for (const bool d : active_days) n_active += d ? 1 : 0;
      const double len = std::max(0.0, window_end - window_start);
      return n_active * len / (7.0 * kSecondsPerDay);
    }
    case Kind::kTrace: {
      double on_time = 0.0;
      double total = 0.0;
      for (const auto& seg : trace) {
        total += seg.duration;
        if (seg.on) on_time += seg.duration;
      }
      return total > 0.0 ? on_time / total : 1.0;
    }
  }
  return 1.0;
}

namespace {
/// Weekly-schedule state at absolute time t (window must not wrap).
bool weekly_on(const OnOffSpec& spec, SimTime t) {
  const auto day =
      static_cast<std::size_t>(std::fmod(std::floor(t / kSecondsPerDay), 7.0));
  if (!spec.active_days[day]) return false;
  const double tod = std::fmod(t, kSecondsPerDay);
  return tod >= spec.window_start && tod < spec.window_end;
}
}  // namespace

OnOffProcess::OnOffProcess(const OnOffSpec& spec, Xoshiro256 rng, SimTime now)
    : spec_(spec), rng_(rng) {
  switch (spec_.kind) {
    case OnOffSpec::Kind::kAlwaysOn:
      on_ = true;
      next_flip_ = kNever;
      break;
    case OnOffSpec::Kind::kMarkov:
      on_ = spec_.start_on;
      if (spec_.mean_off <= 0.0) {
        // Degenerate: never goes off.
        on_ = true;
        next_flip_ = kNever;
      } else {
        schedule_next(now);
      }
      break;
    case OnOffSpec::Kind::kDailyWindow: {
      const double tod = std::fmod(now, kSecondsPerDay);
      const double s = spec_.window_start;
      const double e = spec_.window_end;
      if (s <= e) {
        on_ = tod >= s && tod < e;
      } else {
        on_ = tod >= s || tod < e;
      }
      schedule_next(now);
      break;
    }
    case OnOffSpec::Kind::kWeekly: {
      on_ = weekly_on(spec_, now);
      schedule_next(now);
      break;
    }
    case OnOffSpec::Kind::kTrace: {
      if (spec_.trace.empty()) {
        on_ = true;
        next_flip_ = kNever;
      } else {
        on_ = spec_.trace[0].on;
        trace_pos_ = 0;
        schedule_next(now);
      }
      break;
    }
  }
}

double OnOffProcess::sample_period(double mean) {
  const double m = std::max(mean, 1.0);
  switch (spec_.dist) {
    case PeriodDist::kExponential:
      return sample_exponential(rng_, m);
    case PeriodDist::kWeibull:
      return std::max(1.0, sample_weibull(rng_, m, std::max(spec_.shape, 0.05)));
    case PeriodDist::kLognormal:
      return std::max(1.0, sample_lognormal(rng_, m, std::max(spec_.shape, 0.0)));
  }
  return sample_exponential(rng_, m);
}

void OnOffProcess::schedule_next(SimTime from) {
  switch (spec_.kind) {
    case OnOffSpec::Kind::kAlwaysOn:
      next_flip_ = kNever;
      break;
    case OnOffSpec::Kind::kMarkov: {
      const double mean = on_ ? spec_.mean_on : spec_.mean_off;
      next_flip_ = from + sample_period(mean);
      break;
    }
    case OnOffSpec::Kind::kDailyWindow: {
      // Next boundary strictly after `from`.
      const double day_base = std::floor(from / kSecondsPerDay) * kSecondsPerDay;
      const double boundary = on_ ? spec_.window_end : spec_.window_start;
      double t = day_base + boundary;
      while (t <= from + kFpEpsilon) t += kSecondsPerDay;
      next_flip_ = t;
      break;
    }
    case OnOffSpec::Kind::kWeekly: {
      // Scan window boundaries over the next 8 days for the first state
      // change strictly after `from`.
      const double day_base =
          std::floor(from / kSecondsPerDay) * kSecondsPerDay;
      next_flip_ = kNever;
      bool all_off = true;
      for (const bool d : spec_.active_days) all_off = all_off && !d;
      if (all_off || spec_.window_end <= spec_.window_start) {
        on_ = false;
        break;  // permanently off: never flips
      }
      for (int d = 0; d <= 8 && next_flip_ == kNever; ++d) {
        for (const double boundary : {spec_.window_start, spec_.window_end}) {
          const double t = day_base + d * kSecondsPerDay + boundary;
          if (t > from + kFpEpsilon && weekly_on(spec_, t) != on_) {
            next_flip_ = t;
            break;
          }
        }
      }
      break;
    }
    case OnOffSpec::Kind::kTrace: {
      // The current segment is trace[trace_pos_]; its end is the next
      // flip, except that consecutive same-state segments merge (no flip)
      // and zero-length segments are skipped.
      next_flip_ = from;
      for (std::size_t hops = 0; hops <= 2 * spec_.trace.size(); ++hops) {
        const auto& seg = spec_.trace[trace_pos_];
        next_flip_ += std::max(seg.duration, 0.0);
        trace_pos_ = (trace_pos_ + 1) % spec_.trace.size();
        if (spec_.trace[trace_pos_].on != on_ && next_flip_ > from) {
          return;
        }
      }
      next_flip_ = kNever;  // trace never changes state
      break;
    }
  }
}

void OnOffProcess::advance_to(SimTime now) {
  while (next_flip_ <= now) {
    const SimTime flip_at = next_flip_;
    on_ = !on_;
    schedule_next(flip_at);
    assert(next_flip_ > flip_at);
  }
}

HostAvailability::HostAvailability(const HostAvailabilitySpec& spec,
                                   Xoshiro256& parent_rng, SimTime now)
    : host_on_(spec.host_on, parent_rng.fork("avail.host_on"), now),
      gpu_allowed_(spec.gpu_allowed, parent_rng.fork("avail.gpu"), now),
      network_(spec.network, parent_rng.fork("avail.net"), now) {}

SimTime HostAvailability::next_transition() const {
  return std::min({host_on_.next_transition(), gpu_allowed_.next_transition(),
                   network_.next_transition()});
}

void HostAvailability::advance_to(SimTime now) {
  host_on_.advance_to(now);
  gpu_allowed_.advance_to(now);
  network_.advance_to(now);
}

void OnOffProcess::save_state(StateWriter& w, const std::string& name) const {
  rng_.save_state(w, (name + ".rng").c_str());
  w.put_bool((name + ".on").c_str(), on_);
  w.put_f64((name + ".next_flip").c_str(), next_flip_);
  w.put_u64((name + ".trace_pos").c_str(),
            static_cast<std::uint64_t>(trace_pos_));
}

void OnOffProcess::restore_state(StateReader& r, const std::string& name) {
  rng_.restore_state(r, (name + ".rng").c_str());
  on_ = r.get_bool((name + ".on").c_str());
  next_flip_ = r.get_f64((name + ".next_flip").c_str());
  trace_pos_ =
      static_cast<std::size_t>(r.get_u64((name + ".trace_pos").c_str()));
}

void HostAvailability::save_state(StateWriter& w) const {
  host_on_.save_state(w, "avail.host_on");
  gpu_allowed_.save_state(w, "avail.gpu");
  network_.save_state(w, "avail.net");
}

void HostAvailability::restore_state(StateReader& r) {
  host_on_.restore_state(r, "avail.host_on");
  gpu_allowed_.restore_state(r, "avail.gpu");
  network_.restore_state(r, "avail.net");
}

const OnOffProcess& HostAvailability::channel(AvailChannel c) const {
  switch (c) {
    case AvailChannel::kHostOn: return host_on_;
    case AvailChannel::kGpuAllowed: return gpu_allowed_;
    case AvailChannel::kNetwork: return network_;
  }
  return host_on_;
}

}  // namespace bce
