// One-off: print exact figures of merit for scenarios 1-4 across the full
// (sched x fetch) policy matrix, formatted as initializers for the
// golden-equivalence test. Not built by default.

#include <cstdio>

#include "core/bce.hpp"

using namespace bce;

int main() {
  struct S {
    const char* name;
    Scenario sc;
    double days;
  };
  std::vector<S> scenarios;
  scenarios.push_back({"s1", paper_scenario1(1500.0), 2.0});
  scenarios.push_back({"s2", paper_scenario2(), 2.0});
  scenarios.push_back({"s3", paper_scenario3(), 6.0});
  scenarios.push_back({"s4", paper_scenario4(), 2.0});

  const JobSchedPolicy scheds[] = {JobSchedPolicy::kWrr, JobSchedPolicy::kLocal,
                                   JobSchedPolicy::kGlobal,
                                   JobSchedPolicy::kEdfOnly};
  const FetchPolicy fetches[] = {FetchPolicy::kOrig, FetchPolicy::kHysteresis,
                                 FetchPolicy::kRoundRobin};

  for (const auto& s : scenarios) {
    for (const auto sched : scheds) {
      for (const auto fetch : fetches) {
        Scenario sc = s.sc;
        sc.duration = s.days * kSecondsPerDay;
        EmulationOptions opt;
        opt.policy.sched = sched;
        opt.policy.fetch = fetch;
        const EmulationResult res = emulate(sc, opt);
        const Metrics& m = res.metrics;
        std::printf(
            "    {\"%s\", %d, %d, %.17g, %.17g, %.17g, %.17g, %.17g, %lld, "
            "%lld, %lld},\n",
            s.name, static_cast<int>(sched), static_cast<int>(fetch),
            m.idle_fraction(), m.wasted_fraction(), m.share_violation(),
            m.monotony, m.rpcs_per_job(),
            static_cast<long long>(m.n_jobs_fetched),
            static_cast<long long>(m.n_jobs_completed),
            static_cast<long long>(m.n_jobs_missed));
      }
    }
  }
  return 0;
}
