// bce — command-line front end to the BOINC Client Emulator.
//
// This is the library's equivalent of the paper's controller script and
// web form (§4.3): volunteers/developers feed a scenario file in, get the
// figures of merit, timeline, and message log out, or sweep policies.
//
//   bce run <scenario> [options]       emulate one scenario
//   bce compare <scenario> [options]   every registered policy pair, one table
//   bce sweep <scenario> --param min_queue --values 600,3600,14400
//   bce sample [n] [days]              Monte-Carlo population comparison
//   bce print <scenario>               parse, validate and echo a scenario
//   bce list-policies                  registered policies (also --list-policies)
//
// Common options:
//   --sched NAME                  job scheduling policy by registry name or
//                                 alias (JS_WRR/wrr, JS_LOCAL/local,
//                                 JS_GLOBAL/global, JS_EDF/edf, ...)
//   --fetch NAME                  job fetch policy likewise (JF_ORIG/orig,
//                                 JF_HYSTERESIS/hyst, JF_RR/rr, ...)
//   --policy wrr|local|global     legacy spelling of --sched
//   --half-life SECONDS           REC half-life           (default 10 days)
//   --server-deadline-check       enable the server-side deadline check
//   --fetch-suppression           don't fetch from overcommitted projects
//   --days N                      override scenario duration
//   --seed N                      override scenario seed
//   --timeline                    print the ASCII processor timeline
//   --log CAT[,CAT...]            message log (task,cpu_sched,rr_sim,
//                                 work_fetch,rpc,avail,server or 'all')
//   --threads N                   sweep parallelism

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/bce.hpp"

namespace {

using namespace bce;

struct CliOptions {
  PolicyConfig policy;
  double days = -1.0;
  std::uint64_t seed = 0;
  bool timeline = false;
  std::vector<std::string> log_cats;
  unsigned threads = 0;
  std::string sweep_param;
  std::vector<double> sweep_values;
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::cerr << "error: " << msg << "\n\n";
  std::cerr <<
      "usage: bce <run|compare|sweep|sample|print|list-policies>\n"
      "           [scenario-file] [options]\n"
      "  run            emulate one scenario and report the figures of merit\n"
      "  compare        run every registered scheduling x fetch policy pair\n"
      "  sweep          sweep a preference (--param min_queue|max_queue|\n"
      "                 half_life --values v1,v2,...)\n"
      "  sample         [n] [days]: Monte-Carlo population policy comparison\n"
      "  print          parse, validate and echo a scenario file\n"
      "  list-policies  list the registered policies and their aliases\n"
      "options: --sched NAME  --fetch NAME  (registry names or aliases;\n"
      "         see list-policies)  --policy wrr|local|global (legacy)\n"
      "         --half-life S  --server-deadline-check  --fetch-suppression\n"
      "         --days N  --seed N  --timeline  --log CATS  --threads N\n";
  std::exit(2);
}

int cmd_list_policies() {
  auto print = [](const char* kind,
                  const std::vector<PolicyRegistryEntry>& entries) {
    std::cout << kind << ":\n";
    for (const auto& e : entries) {
      std::cout << "  " << e.name;
      if (!e.aliases.empty()) {
        std::cout << " (";
        for (std::size_t i = 0; i < e.aliases.size(); ++i) {
          std::cout << (i ? ", " : "") << e.aliases[i];
        }
        std::cout << ")";
      }
      std::cout << " — " << e.description << "\n";
    }
  };
  print("job scheduling policies", policy_registry().job_order_entries());
  print("job fetch policies", policy_registry().fetch_entries());
  return 0;
}

std::vector<double> parse_values(const std::string& csv) {
  std::vector<double> out;
  std::istringstream is(csv);
  std::string tok;
  while (std::getline(is, tok, ',')) out.push_back(std::stod(tok));
  return out;
}

CliOptions parse_options(int argc, char** argv, int first,
                         std::string* scenario_path) {
  CliOptions o;
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    auto need_value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--policy") {
      // Legacy spelling, kept for compatibility; --sched accepts any
      // registered name or alias.
      const std::string v = need_value();
      if (v == "wrr") {
        o.policy.sched = JobSchedPolicy::kWrr;
      } else if (v == "local") {
        o.policy.sched = JobSchedPolicy::kLocal;
      } else if (v == "global") {
        o.policy.sched = JobSchedPolicy::kGlobal;
      } else {
        usage("unknown --policy");
      }
    } else if (a == "--sched") {
      const std::string v = need_value();
      if (!policy_registry().has_job_order(v)) {
        usage(("unknown --sched '" + v + "' (see bce list-policies)").c_str());
      }
      o.policy.sched_by_name = v;
    } else if (a == "--fetch") {
      const std::string v = need_value();
      if (!policy_registry().has_fetch(v)) {
        usage(("unknown --fetch '" + v + "' (see bce list-policies)").c_str());
      }
      o.policy.fetch_by_name = v;
    } else if (a == "--list-policies") {
      std::exit(cmd_list_policies());
    } else if (a == "--half-life") {
      o.policy.rec_half_life = std::stod(need_value());
    } else if (a == "--server-deadline-check") {
      o.policy.server_deadline_check = true;
    } else if (a == "--fetch-suppression") {
      o.policy.fetch_deadline_suppression = true;
    } else if (a == "--days") {
      o.days = std::stod(need_value());
    } else if (a == "--seed") {
      o.seed = std::strtoull(need_value().c_str(), nullptr, 10);
    } else if (a == "--timeline") {
      o.timeline = true;
    } else if (a == "--log") {
      std::istringstream is(need_value());
      std::string cat;
      while (std::getline(is, cat, ',')) o.log_cats.push_back(cat);
    } else if (a == "--threads") {
      o.threads = static_cast<unsigned>(std::stoul(need_value()));
    } else if (a == "--param") {
      o.sweep_param = need_value();
    } else if (a == "--values") {
      o.sweep_values = parse_values(need_value());
    } else if (!a.empty() && a[0] == '-') {
      usage(("unknown option " + a).c_str());
    } else if (scenario_path != nullptr && scenario_path->empty()) {
      *scenario_path = a;
    } else {
      usage(("unexpected argument " + a).c_str());
    }
  }
  return o;
}

Scenario load(const std::string& path, const CliOptions& o) {
  Scenario sc = load_scenario_file(path);
  if (o.days > 0.0) sc.duration = o.days * kSecondsPerDay;
  if (o.seed != 0) sc.seed = o.seed;
  return sc;
}

void configure_log(Logger& log, const CliOptions& o) {
  for (const auto& cat : o.log_cats) {
    if (cat == "all") {
      log.enable_all();
    } else if (cat == "task") {
      log.enable(LogCategory::kTask);
    } else if (cat == "cpu_sched") {
      log.enable(LogCategory::kCpuSched);
    } else if (cat == "rr_sim") {
      log.enable(LogCategory::kRrSim);
    } else if (cat == "work_fetch") {
      log.enable(LogCategory::kWorkFetch);
    } else if (cat == "rpc") {
      log.enable(LogCategory::kRpc);
    } else if (cat == "avail") {
      log.enable(LogCategory::kAvail);
    } else if (cat == "server") {
      log.enable(LogCategory::kServer);
    } else {
      usage(("unknown log category " + cat).c_str());
    }
  }
  log.set_stream(&std::cout);
}

void print_metrics_row(Table& t, const std::string& label, const Metrics& m) {
  t.add_row({label, fmt(m.idle_fraction()), fmt(m.wasted_fraction()),
             fmt(m.share_violation()), fmt(m.monotony),
             fmt(m.rpcs_per_job(), 2), fmt(m.weighted_score())});
}

int cmd_run(const std::string& path, const CliOptions& o) {
  const Scenario sc = load(path, o);
  Logger log;
  configure_log(log, o);
  EmulationOptions opt;
  opt.policy = o.policy;
  opt.logger = &log;
  opt.record_timeline = o.timeline;
  const EmulationResult res = emulate(sc, opt);

  std::cout << "scenario '" << sc.name << "', "
            << sc.duration / kSecondsPerDay << " days, "
            << opt.policy.selected_sched_name() << " + "
            << opt.policy.selected_fetch_name() << "\n"
            << res.metrics.summary() << "\n\nusage vs share:\n";
  for (std::size_t p = 0; p < sc.projects.size(); ++p) {
    std::cout << "  " << sc.projects[p].name << ": share "
              << fmt(sc.share_fraction(p)) << ", got "
              << fmt(res.metrics.usage_fraction[p]) << "\n";
  }
  if (o.timeline) {
    std::cout << "\n" << res.timeline.to_ascii(sc.duration, 96);
  }
  return 0;
}

int cmd_compare(const std::string& path, const CliOptions& o) {
  const Scenario sc = load(path, o);
  // Registry-driven: every registered (scheduling, fetch) pair, including
  // policies user code registered before calling into the CLI's library
  // entry points.
  EmulationOptions base;
  base.policy = o.policy;
  base.policy.sched_by_name.clear();
  base.policy.fetch_by_name.clear();
  const std::vector<RunSpec> specs = policy_matrix_specs(sc, base);
  const auto results = run_batch(specs, o.threads);
  Table t({"policy", "idle", "wasted", "share_viol", "monotony", "rpcs/job",
           "score"});
  for (const auto& r : results) {
    print_metrics_row(t, r.label, r.result.metrics);
  }
  t.print(std::cout);
  return 0;
}

int cmd_sweep(const std::string& path, const CliOptions& o) {
  if (o.sweep_param.empty() || o.sweep_values.empty()) {
    usage("sweep needs --param and --values");
  }
  const Scenario base = load(path, o);
  std::vector<RunSpec> specs;
  for (const double v : o.sweep_values) {
    RunSpec spec;
    spec.scenario = base;
    spec.options.policy = o.policy;
    if (o.sweep_param == "min_queue") {
      spec.scenario.prefs.min_queue = v;
      spec.scenario.prefs.max_queue =
          std::max(spec.scenario.prefs.max_queue, v);
    } else if (o.sweep_param == "max_queue") {
      spec.scenario.prefs.max_queue = v;
      spec.scenario.prefs.min_queue =
          std::min(spec.scenario.prefs.min_queue, v);
    } else if (o.sweep_param == "half_life") {
      spec.options.policy.rec_half_life = v;
    } else {
      usage("unknown --param (use min_queue, max_queue or half_life)");
    }
    spec.label = o.sweep_param + "=" + fmt(v, 0);
    specs.push_back(std::move(spec));
  }
  const auto results = run_batch(specs, o.threads);
  Table t({"run", "idle", "wasted", "share_viol", "monotony", "rpcs/job",
           "score"});
  for (const auto& r : results) {
    print_metrics_row(t, r.label, r.result.metrics);
  }
  t.print(std::cout);
  return 0;
}

int cmd_sample(int argc, char** argv) {
  const int n = argc > 2 ? std::atoi(argv[2]) : 20;
  const double days = argc > 3 ? std::atof(argv[3]) : 2.0;
  Xoshiro256 rng(1);
  PopulationParams pp;
  pp.duration = days * kSecondsPerDay;
  std::vector<RunSpec> specs;
  for (int i = 0; i < n; ++i) {
    const Scenario sc = sample_scenario(rng, pp);
    for (const bool modern : {false, true}) {
      RunSpec spec;
      spec.scenario = sc;
      spec.options.policy.sched =
          modern ? JobSchedPolicy::kGlobal : JobSchedPolicy::kWrr;
      spec.options.policy.fetch =
          modern ? FetchPolicy::kHysteresis : FetchPolicy::kOrig;
      spec.options.policy.fetch_deadline_suppression = modern;
      spec.label = std::to_string(i);
      specs.push_back(std::move(spec));
    }
  }
  const auto results = run_batch(specs);
  int wins = 0;
  RunningStats delta;
  for (int i = 0; i < n; ++i) {
    const double b =
        results[static_cast<std::size_t>(2 * i)].result.metrics.weighted_score();
    const double m = results[static_cast<std::size_t>(2 * i + 1)]
                         .result.metrics.weighted_score();
    if (m < b) ++wins;
    delta.add(m - b);
  }
  std::cout << "sampled " << n << " scenarios (" << days
            << " days each): modern policies win " << wins << "/" << n
            << ", mean score delta " << fmt(delta.mean()) << " (negative = "
            << "modern better)\n";
  return 0;
}

int cmd_print(const std::string& path) {
  const Scenario sc = load_scenario_file(path);
  std::cout << serialize_scenario(sc);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "sample") return cmd_sample(argc, argv);
    if (cmd == "list-policies") return cmd_list_policies();

    std::string path;
    const CliOptions o = parse_options(argc, argv, 2, &path);
    if (path.empty()) usage("missing scenario file");
    if (cmd == "run") return cmd_run(path, o);
    if (cmd == "compare") return cmd_compare(path, o);
    if (cmd == "sweep") return cmd_sweep(path, o);
    if (cmd == "print") return cmd_print(path);
    usage(("unknown command " + cmd).c_str());
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
