// bce — command-line front end to the BOINC Client Emulator.
//
// This is the library's equivalent of the paper's controller script and
// web form (§4.3): volunteers/developers feed a scenario file in, get the
// figures of merit, timeline, and message log out, or sweep policies.
//
//   bce run <scenario> [options]       emulate one scenario
//                                      (--trace FILE: JSONL decision trace)
//   bce compare <scenario> [options]   every registered policy pair, one table
//   bce sweep <scenario> --param min_queue --values 600,3600,14400
//   bce sample [n] [days]              Monte-Carlo population comparison
//   bce print <scenario>               parse, validate and echo a scenario
//   bce determinism <scenario>         run twice, fail unless byte-identical
//   bce fleet [scenario] [options]     sharded, supervised multi-host run
//                                      (docs/fleet.md)
//   bce list-policies                  registered policies (also --list-policies)
//
// Common options:
//   --sched NAME                  job scheduling policy by registry name or
//                                 alias (JS_WRR/wrr, JS_LOCAL/local,
//                                 JS_GLOBAL/global, JS_EDF/edf, ...)
//   --fetch NAME                  job fetch policy likewise (JF_ORIG/orig,
//                                 JF_HYSTERESIS/hyst, JF_RR/rr, ...)
//   --policy wrr|local|global     legacy spelling of --sched
//   --half-life SECONDS           REC half-life           (default 10 days)
//   --server-deadline-check       enable the server-side deadline check
//   --fetch-suppression           don't fetch from overcommitted projects
//   --days N                      override scenario duration
//   --seed N                      override scenario seed
//   --timeline                    print the ASCII processor timeline
//   --log CAT[,CAT...]            message log (task,cpu_sched,rr_sim,
//                                 work_fetch,rpc,avail,server,fault or 'all')
//   --trace FILE                  write every decision as one JSON object
//                                 per line (all categories; docs/observability.md)
//   --threads N                   batch parallelism for compare/sweep/sample
//                                 (default: BCE_THREADS env var, else the
//                                 hardware concurrency)
//
// Fault injection (docs/faults.md); each overrides the scenario file:
//   --faults off|light|heavy      preset fault plan
//   --job-error R --job-abort R   per-job failure probabilities in [0,1]
//   --crash-mtbf S                mean seconds between host crashes (0 = off)
//   --crash-reboot S              reboot delay after a crash
//   --rpc-loss R                  scheduler-reply loss probability
//   --rpc-timeout S               server-side orphaned-job reclaim timeout
//   --transfer-error R            per-attempt download/upload failure rate

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/bce.hpp"
#include "core/exit_codes.hpp"
#include "server/dispatch_policy.hpp"
#include "fleet/shard_worker.hpp"
#include "fleet/supervisor.hpp"

namespace {

using namespace bce;

struct CliOptions {
  PolicyConfig policy;
  double days = -1.0;
  std::uint64_t seed = 0;
  bool timeline = false;
  std::vector<std::string> log_cats;
  std::string trace_path;
  unsigned threads = 0;
  std::string sweep_param;
  std::vector<double> sweep_values;

  /// Savestates (docs/savestate.md): `run --save-state FILE [--save-at T]`
  /// snapshots the run at the first checkpoint boundary at or after T days
  /// (default: just before the end); `run --load-state FILE` resumes from a
  /// snapshot instead of t = 0.
  std::string save_state_path;
  double save_at_days = -1.0;
  std::string load_state_path;

  /// determinism: compare against a second seed instead of an identical
  /// re-run (0 = same seed), and bisect to the first divergent checkpoint.
  std::uint64_t seed2 = 0;
  bool bisect = false;

  /// Fault-plan overrides: the preset (if any) is applied first, then the
  /// individual knobs, mirroring the scenario-file key order.
  bool have_faults_preset = false;
  FaultPlan faults_preset;
  std::vector<std::pair<double FaultPlan::*, double>> fault_knobs;
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::cerr << "error: " << msg << "\n\n";
  std::cerr <<
      "usage: bce <run|compare|sweep|sample|print|fleet|list-policies>\n"
      "           [scenario-file] [options]\n"
      "  run            emulate one scenario and report the figures of merit\n"
      "  compare        run every registered scheduling x fetch policy pair\n"
      "  sweep          sweep a preference (--param min_queue|max_queue|\n"
      "                 half_life --values v1,v2,...)\n"
      "  sample         [n] [days]: Monte-Carlo population policy comparison\n"
      "  print          parse, validate and echo a scenario file\n"
      "  determinism    run a scenario twice, fail unless reports are\n"
      "                 byte-identical; exit 0 identical, 3 reports diverge,\n"
      "                 4 decision traces diverge, 5 bisect anomaly\n"
      "                 (--seed2 N: compare against a second seed;\n"
      "                 --bisect: locate the first divergent checkpoint and\n"
      "                 dump both states as JSONL)\n"
      "  fleet          sharded, supervised multi-host run (docs/fleet.md):\n"
      "                 [scenario] replicates one scenario across hosts,\n"
      "                 no scenario samples a Monte-Carlo population;\n"
      "                 --hosts N --shard-hosts K --workers W (0 = in-process)\n"
      "                 --retries N --heartbeat-timeout S --shard-deadline S\n"
      "                 --backoff S --checkpoint-dir DIR --checkpoint-hosts K\n"
      "                 --checkpoint-sim-days D --partial-ok --host-figures\n"
      "                 --harness-faults kill:SHARD@CP,stall:SHARD@CP\n"
      "                 exits: 0 complete, 10 partial, 11 shard failed\n"
      "  list-policies  list the registered policies and their aliases\n"
      "options: --sched NAME  --fetch NAME  --dispatch NAME  (registry names\n"
      "         or aliases; see list-policies)  --policy wrr|local|global\n"
      "         (legacy)\n"
      "         --half-life S  --server-deadline-check  --fetch-suppression\n"
      "         --days N  --seed N  --timeline  --log CATS\n"
      "         --threads N (batch parallelism; default BCE_THREADS env,\n"
      "         else hardware concurrency)\n"
      "         --trace FILE (run: JSONL decision trace, all categories)\n"
      "savestates (docs/savestate.md):\n"
      "         --save-state FILE  (run: snapshot the full emulation state)\n"
      "         --save-at T        (snapshot at the first checkpoint\n"
      "         boundary at or after day T; default: just before the end)\n"
      "         --load-state FILE  (run: resume from a snapshot; rejection\n"
      "         exit codes: 3 io, 4 bad magic, 5 bad version, 6 truncated,\n"
      "         7 corrupt, 8 field mismatch, 9 scenario/policy mismatch)\n"
      "faults:  --faults off|light|heavy  --job-error R  --job-abort R\n"
      "         --crash-mtbf S  --crash-reboot S  --rpc-loss R\n"
      "         --rpc-timeout S  --transfer-error R  (see docs/faults.md)\n";
  std::exit(kExitUsage);
}

int cmd_list_policies() {
  auto print = [](const char* kind,
                  const std::vector<PolicyRegistryEntry>& entries) {
    std::cout << kind << ":\n";
    for (const auto& e : entries) {
      std::cout << "  " << e.name;
      if (!e.aliases.empty()) {
        std::cout << " (";
        for (std::size_t i = 0; i < e.aliases.size(); ++i) {
          std::cout << (i ? ", " : "") << e.aliases[i];
        }
        std::cout << ")";
      }
      std::cout << " — " << e.description << "\n";
    }
  };
  print("job scheduling policies", policy_registry().job_order_entries());
  print("job fetch policies", policy_registry().fetch_entries());
  print("server dispatch policies", server_policy_registry().dispatch_entries());
  return 0;
}

/// std::stod with a diagnostic naming the offending option instead of the
/// bare "stod" message (and rejecting trailing junk like "1.5x").
double parse_number(const std::string& s, const std::string& opt) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument("trailing characters");
    return v;
  } catch (const std::exception&) {
    usage(("bad number '" + s + "' for " + opt).c_str());
  }
}

std::vector<double> parse_values(const std::string& csv) {
  std::vector<double> out;
  std::istringstream is(csv);
  std::string tok;
  while (std::getline(is, tok, ',')) {
    out.push_back(parse_number(tok, "--values"));
  }
  return out;
}

CliOptions parse_options(int argc, char** argv, int first,
                         std::string* scenario_path) {
  CliOptions o;
  for (int i = first; i < argc; ++i) {
    const std::string a = argv[i];
    auto need_value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--policy") {
      // Legacy spelling, kept for compatibility; --sched accepts any
      // registered name or alias.
      const std::string v = need_value();
      if (v == "wrr") {
        o.policy.sched = JobSchedPolicy::kWrr;
      } else if (v == "local") {
        o.policy.sched = JobSchedPolicy::kLocal;
      } else if (v == "global") {
        o.policy.sched = JobSchedPolicy::kGlobal;
      } else {
        usage("unknown --policy");
      }
    } else if (a == "--sched") {
      const std::string v = need_value();
      if (!policy_registry().has_job_order(v)) {
        usage(("unknown --sched '" + v + "' (see bce list-policies)").c_str());
      }
      o.policy.sched_by_name = v;
    } else if (a == "--fetch") {
      const std::string v = need_value();
      if (!policy_registry().has_fetch(v)) {
        usage(("unknown --fetch '" + v + "' (see bce list-policies)").c_str());
      }
      o.policy.fetch_by_name = v;
    } else if (a == "--dispatch") {
      const std::string v = need_value();
      if (!server_policy_registry().has_dispatch(v)) {
        usage(
            ("unknown --dispatch '" + v + "' (see bce list-policies)").c_str());
      }
      o.policy.dispatch_by_name = v;
    } else if (a == "--list-policies") {
      std::exit(cmd_list_policies());
    } else if (a == "--half-life") {
      o.policy.rec_half_life = parse_number(need_value(), a);
    } else if (a == "--server-deadline-check") {
      o.policy.server_deadline_check = true;
    } else if (a == "--fetch-suppression") {
      o.policy.fetch_deadline_suppression = true;
    } else if (a == "--days") {
      o.days = parse_number(need_value(), a);
    } else if (a == "--seed") {
      o.seed = std::strtoull(need_value().c_str(), nullptr, 10);
    } else if (a == "--faults") {
      const std::string v = need_value();
      o.have_faults_preset = true;
      if (v == "off") {
        o.faults_preset = FaultPlan{};
      } else if (v == "light") {
        o.faults_preset = FaultPlan::light();
      } else if (v == "heavy") {
        o.faults_preset = FaultPlan::heavy();
      } else {
        usage("--faults expects off, light or heavy");
      }
    } else if (a == "--job-error") {
      o.fault_knobs.emplace_back(&FaultPlan::job_error_rate,
                                 parse_number(need_value(), a));
    } else if (a == "--job-abort") {
      o.fault_knobs.emplace_back(&FaultPlan::job_abort_rate,
                                 parse_number(need_value(), a));
    } else if (a == "--crash-mtbf") {
      o.fault_knobs.emplace_back(&FaultPlan::crash_mtbf,
                                 parse_number(need_value(), a));
    } else if (a == "--crash-reboot") {
      o.fault_knobs.emplace_back(&FaultPlan::crash_reboot_delay,
                                 parse_number(need_value(), a));
    } else if (a == "--rpc-loss") {
      o.fault_knobs.emplace_back(&FaultPlan::rpc_loss_rate,
                                 parse_number(need_value(), a));
    } else if (a == "--rpc-timeout") {
      o.fault_knobs.emplace_back(&FaultPlan::rpc_timeout,
                                 parse_number(need_value(), a));
    } else if (a == "--transfer-error") {
      o.fault_knobs.emplace_back(&FaultPlan::transfer_error_rate,
                                 parse_number(need_value(), a));
    } else if (a == "--timeline") {
      o.timeline = true;
    } else if (a == "--log") {
      std::istringstream is(need_value());
      std::string cat;
      while (std::getline(is, cat, ',')) o.log_cats.push_back(cat);
    } else if (a == "--trace") {
      o.trace_path = need_value();
    } else if (a == "--save-state") {
      o.save_state_path = need_value();
    } else if (a == "--save-at") {
      o.save_at_days = parse_number(need_value(), a);
    } else if (a == "--load-state") {
      o.load_state_path = need_value();
    } else if (a == "--seed2") {
      o.seed2 = std::strtoull(need_value().c_str(), nullptr, 10);
    } else if (a == "--bisect") {
      o.bisect = true;
    } else if (a == "--threads") {
      o.threads = static_cast<unsigned>(std::stoul(need_value()));
    } else if (a == "--param") {
      o.sweep_param = need_value();
    } else if (a == "--values") {
      o.sweep_values = parse_values(need_value());
    } else if (!a.empty() && a[0] == '-') {
      usage(("unknown option " + a).c_str());
    } else if (scenario_path != nullptr && scenario_path->empty()) {
      *scenario_path = a;
    } else {
      usage(("unexpected argument " + a).c_str());
    }
  }
  return o;
}

Scenario load(const std::string& path, const CliOptions& o) {
  Scenario sc = load_scenario_file(path);
  if (o.days > 0.0) sc.duration = o.days * kSecondsPerDay;
  if (o.seed != 0) sc.seed = o.seed;
  if (o.have_faults_preset) sc.faults = o.faults_preset;
  for (const auto& [knob, v] : o.fault_knobs) sc.faults.*knob = v;
  if (const std::string err = sc.faults.validate(); !err.empty()) {
    usage(("bad fault options: " + err).c_str());
  }
  return sc;
}

void configure_log(Logger& log, const CliOptions& o) {
  for (const auto& cat : o.log_cats) {
    LogCategory c{};
    if (cat == "all") {
      log.enable_all();
    } else if (log_category_from_name(cat, &c)) {
      log.enable(c);
    } else {
      usage(("unknown log category " + cat).c_str());
    }
  }
  log.set_stream(&std::cout);
}

void print_metrics_row(Table& t, const std::string& label, const Metrics& m) {
  t.add_row({label, fmt(m.idle_fraction()), fmt(m.wasted_fraction()),
             fmt(m.share_violation()), fmt(m.monotony),
             fmt(m.rpcs_per_job(), 2), fmt(m.weighted_score())});
}

/// Exit code of a savestate failure: 2 + the SavestateErrc, i.e. 3 (io)
/// through 9 (scenario mismatch) — distinct from 1 (runtime error) and
/// 2 (usage) so scripts can branch on the rejection class.
int savestate_exit_code(const SavestateError& e) {
  std::cerr << "error: " << e.what() << " [" << savestate_errc_name(e.code())
            << "]\n";
  return kExitSavestateBase + static_cast<int>(e.code());
}

int cmd_run(const std::string& path, const CliOptions& o) {
  const Scenario sc = load(path, o);
  Logger log;
  configure_log(log, o);
  EmulationOptions opt;
  opt.policy = o.policy;
  opt.logger = &log;
  opt.record_timeline = o.timeline;

  // --trace FILE: JSONL decision trace, every category. Scoped so the
  // stream flushes before we print the summary.
  std::ofstream trace_file;
  Trace trace;
  std::optional<JsonlSink> jsonl;
  if (!o.trace_path.empty()) {
    trace_file.open(o.trace_path);
    if (!trace_file) {
      usage(("cannot open trace file " + o.trace_path).c_str());
    }
    jsonl.emplace(trace_file);
    trace.add_sink(&*jsonl);
    trace.enable_all();
    opt.trace = &trace;
  }

  Emulator em(sc, opt);
  if (!o.load_state_path.empty()) {
    try {
      restore_savestate(em, read_savestate_file(o.load_state_path));
    } catch (const SavestateError& e) {
      return savestate_exit_code(e);
    }
    std::cout << "resumed from " << o.load_state_path << " at day "
              << fmt(em.now() / kSecondsPerDay, 3) << "\n";
  }
  std::vector<std::uint8_t> frame;
  if (!o.save_state_path.empty()) {
    // Snapshot the first checkpoint boundary at or after --save-at (in
    // days); with no --save-at, near the end of the run (the same window
    // run_duration_chain uses — a poll boundary always lands in it).
    const SimTime save_at =
        o.save_at_days >= 0.0 ? o.save_at_days * kSecondsPerDay
                              : sc.duration - 2.0 * sc.prefs.poll_period;
    em.set_checkpoint_hook([&frame, save_at](Emulator& e) {
      if (frame.empty() && e.now() + kFpEpsilon >= save_at) {
        frame = capture_savestate(e);
      }
    });
  }
  const EmulationResult res = em.run();
  if (!o.save_state_path.empty()) {
    if (frame.empty()) {
      std::cerr << "error: no checkpoint boundary at or after --save-at "
                << o.save_at_days << " days\n";
      return 1;
    }
    try {
      write_savestate_file(o.save_state_path, frame);
    } catch (const SavestateError& e) {
      return savestate_exit_code(e);
    }
    std::cout << "savestate written to " << o.save_state_path << " ("
              << frame.size() << " bytes)\n";
  }
  if (!o.trace_path.empty()) {
    trace_file.close();
    std::cout << "decision trace written to " << o.trace_path << "\n";
  }

  std::cout << "scenario '" << sc.name << "', "
            << sc.duration / kSecondsPerDay << " days, "
            << opt.policy.selected_sched_name() << " + "
            << opt.policy.selected_fetch_name();
  // Named only when overridden: the default header (and the reports byte-
  // compared by `bce determinism`) predates server dispatch selection.
  if (!opt.policy.dispatch_by_name.empty()) {
    std::cout << " + " << opt.policy.selected_dispatch_name();
  }
  std::cout << "\n"
            << res.metrics.summary() << "\n\nusage vs share:\n";
  for (std::size_t p = 0; p < sc.projects.size(); ++p) {
    std::cout << "  " << sc.projects[p].name << ": share "
              << fmt(sc.share_fraction(p)) << ", got "
              << fmt(res.metrics.usage_fraction[p]) << "\n";
  }
  if (o.timeline) {
    std::cout << "\n" << res.timeline.to_ascii(sc.duration, 96);
  }
  return 0;
}

int cmd_compare(const std::string& path, const CliOptions& o) {
  const Scenario sc = load(path, o);
  // Registry-driven: every registered (scheduling, fetch) pair, including
  // policies user code registered before calling into the CLI's library
  // entry points.
  EmulationOptions base;
  base.policy = o.policy;
  base.policy.sched_by_name.clear();
  base.policy.fetch_by_name.clear();
  const std::vector<RunSpec> specs = policy_matrix_specs(sc, base);
  const auto results = run_batch(specs, o.threads);
  Table t({"policy", "idle", "wasted", "share_viol", "monotony", "rpcs/job",
           "score"});
  for (const auto& r : results) {
    print_metrics_row(t, r.label, r.result.metrics);
  }
  t.print(std::cout);
  return 0;
}

int cmd_sweep(const std::string& path, const CliOptions& o) {
  if (o.sweep_param.empty() || o.sweep_values.empty()) {
    usage("sweep needs --param and --values");
  }
  const Scenario base = load(path, o);
  std::vector<RunSpec> specs;
  for (const double v : o.sweep_values) {
    RunSpec spec;
    spec.scenario = base;
    spec.options.policy = o.policy;
    if (o.sweep_param == "min_queue") {
      spec.scenario.prefs.min_queue = v;
      spec.scenario.prefs.max_queue =
          std::max(spec.scenario.prefs.max_queue, v);
    } else if (o.sweep_param == "max_queue") {
      spec.scenario.prefs.max_queue = v;
      spec.scenario.prefs.min_queue =
          std::min(spec.scenario.prefs.min_queue, v);
    } else if (o.sweep_param == "half_life") {
      spec.options.policy.rec_half_life = v;
    } else {
      usage("unknown --param (use min_queue, max_queue or half_life)");
    }
    spec.label = o.sweep_param + "=" + fmt(v, 0);
    specs.push_back(std::move(spec));
  }
  const auto results = run_batch(specs, o.threads);
  Table t({"run", "idle", "wasted", "share_viol", "monotony", "rpcs/job",
           "score"});
  for (const auto& r : results) {
    print_metrics_row(t, r.label, r.result.metrics);
  }
  t.print(std::cout);
  return 0;
}

int cmd_sample(int argc, char** argv) {
  // Positional [n] [days], plus --threads N (sample is the one command
  // that doesn't go through the scenario-file option parser).
  std::vector<std::string> pos;
  unsigned threads = 0;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--threads") {
      if (i + 1 >= argc) usage("missing value for --threads");
      threads = static_cast<unsigned>(std::stoul(argv[++i]));
    } else {
      pos.push_back(a);
    }
  }
  const int n = !pos.empty() ? std::atoi(pos[0].c_str()) : 20;
  const double days = pos.size() > 1 ? std::atof(pos[1].c_str()) : 2.0;
  Xoshiro256 rng(1);
  PopulationParams pp;
  pp.duration = days * kSecondsPerDay;
  std::vector<RunSpec> specs;
  for (int i = 0; i < n; ++i) {
    const Scenario sc = sample_scenario(rng, pp);
    for (const bool modern : {false, true}) {
      RunSpec spec;
      spec.scenario = sc;
      spec.options.policy.sched =
          modern ? JobSchedPolicy::kGlobal : JobSchedPolicy::kWrr;
      spec.options.policy.fetch =
          modern ? FetchPolicy::kHysteresis : FetchPolicy::kOrig;
      spec.options.policy.fetch_deadline_suppression = modern;
      spec.label = std::to_string(i);
      specs.push_back(std::move(spec));
    }
  }
  const auto results = run_batch(specs, threads);
  int wins = 0;
  RunningStats delta;
  for (int i = 0; i < n; ++i) {
    const double b =
        results[static_cast<std::size_t>(2 * i)].result.metrics.weighted_score();
    const double m = results[static_cast<std::size_t>(2 * i + 1)]
                         .result.metrics.weighted_score();
    if (m < b) ++wins;
    delta.add(m - b);
  }
  std::cout << "sampled " << n << " scenarios (" << days
            << " days each): modern policies win " << wins << "/" << n
            << ", mean score delta " << fmt(delta.mean()) << " (negative = "
            << "modern better)\n";
  return 0;
}

int cmd_print(const std::string& path) {
  const Scenario sc = load_scenario_file(path);
  std::cout << serialize_scenario(sc);
  return 0;
}

/// Full-precision dump of everything an emulation produced: every metric
/// (including fault counters), per-project stats, and the final state of
/// every job. Two runs of the same scenario must match byte-for-byte.
/// \p trace_out, when non-null, additionally collects the full JSONL
/// decision trace of the run (all categories), so the comparison covers
/// every scheduling decision, not just the end-of-run figures of merit.
std::string precise_report(const Scenario& sc, EmulationOptions opt,
                           std::string* trace_out = nullptr) {
  std::ostringstream trace_os;
  Trace trace;
  std::optional<JsonlSink> jsonl;
  if (trace_out != nullptr) {
    jsonl.emplace(trace_os);
    trace.add_sink(&*jsonl);
    trace.enable_all();
    opt.trace = &trace;
  }
  const EmulationResult res = emulate(sc, opt);
  if (trace_out != nullptr) *trace_out = trace_os.str();
  std::ostringstream os;
  os.precision(17);
  const Metrics& m = res.metrics;
  os << "metrics " << m.available_flops << ' ' << m.used_flops << ' '
     << m.wasted_flops << ' ' << m.share_violation_rms << ' ' << m.monotony
     << ' ' << m.mean_exclusive_streak << ' ' << m.n_rpcs << ' '
     << m.n_work_request_rpcs << ' ' << m.n_jobs_fetched << ' '
     << m.n_jobs_completed << ' ' << m.n_jobs_missed << ' '
     << m.n_jobs_abandoned << ' ' << m.n_preemptions << '\n'
     << "faults " << m.failure_wasted_flops << ' ' << m.recovery_time_sum
     << ' ' << m.n_job_failures << ' ' << m.n_job_aborts << ' '
     << m.n_host_crashes << ' ' << m.n_crash_recoveries << ' '
     << m.n_rpcs_lost << ' ' << m.n_jobs_orphaned << ' '
     << m.n_transfer_retries << '\n';
  for (std::size_t p = 0; p < res.project_stats.size(); ++p) {
    const ProjectStats& ps = res.project_stats[p];
    os << "project " << p << ' ' << ps.jobs_fetched << ' '
       << ps.jobs_completed << ' ' << ps.jobs_missed << ' ' << ps.jobs_failed
       << ' ' << ps.flops_used << ' ' << m.usage_fraction[p] << ' '
       << res.final_rec[p] << '\n';
  }
  for (const Result& r : res.jobs) {
    os << "job " << r.id << ' ' << r.project << ' ' << r.flops_done << ' '
       << r.flops_spent << ' ' << r.completed_at << ' ' << r.failed << ' '
       << r.aborted << ' ' << r.failed_at << ' ' << r.reported << '\n';
  }
  return os.str();
}

/// Checkpoint snapshots of one run: a savestate frame captured at the
/// first boundary at or after each multiple of duration/kBisectSteps,
/// with its capture time. Both bisected runs produce index-aligned lists
/// (checkpoint k covers the same wall of simulated time in each).
struct CheckpointTrail {
  std::vector<std::vector<std::uint8_t>> frames;
  std::vector<SimTime> times;
};

constexpr std::size_t kBisectSteps = 32;

CheckpointTrail capture_trail(const Scenario& sc,
                              const EmulationOptions& opt) {
  CheckpointTrail trail;
  Emulator em(sc, opt);
  const SimTime step = sc.duration / static_cast<double>(kBisectSteps);
  em.set_checkpoint_hook([&trail, step](Emulator& e) {
    // One boundary can cross several step marks at once (sparse event
    // stretches): the same frame then stands in for each crossed mark,
    // keeping both runs' trails index-aligned.
    while (trail.frames.size() + 1 < kBisectSteps &&
           e.now() + kFpEpsilon >=
               static_cast<double>(trail.frames.size() + 1) * step) {
      trail.frames.push_back(capture_savestate(e));
      trail.times.push_back(e.now());
    }
  });
  (void)em.run();
  return trail;
}

/// Dump one captured frame's field inventory as JSONL (one {"name","value"}
/// object per serialized field) for diffing the two divergent states.
bool dump_state_jsonl(const Scenario& sc, const EmulationOptions& opt,
                      const std::vector<std::uint8_t>& frame,
                      const std::string& path) {
  Emulator em(sc, opt);
  restore_savestate(em, frame);
  std::ofstream os(path);
  if (!os) return false;
  for (const auto& e : savestate_entries(em)) {
    os << "{\"name\":\"" << e.name << "\",\"value\":\"" << e.value << "\"}\n";
  }
  return static_cast<bool>(os);
}

/// Locate the first divergent checkpoint between two runs by binary search
/// over their captured savestate trails (divergence is monotone: once the
/// full states differ they never re-converge), and dump both states as
/// diffable JSONL. Returns \p rc on success, 5 on a bisect anomaly (the
/// end-of-run outputs diverged but every checkpoint state is identical —
/// the divergence then lies after the last checkpoint window).
int bisect_divergence(const Scenario& sc_a, const Scenario& sc_b,
                      const EmulationOptions& opt, int rc) {
  const CheckpointTrail a = capture_trail(sc_a, opt);
  const CheckpointTrail b = capture_trail(sc_b, opt);
  const std::size_t n = std::min(a.frames.size(), b.frames.size());

  // First index with differing frames, by binary search on the monotone
  // "diverged by checkpoint i" predicate; n when all common frames match.
  std::size_t lo = 0;
  std::size_t hi = n;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (a.frames[mid] != b.frames[mid]) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (lo == n) {
    if (a.frames.size() == b.frames.size()) {
      std::cerr << "bisect ANOMALY: outputs diverge but all " << n
                << " checkpoint states are identical (divergence is after "
                << "the last checkpoint)\n";
      return kExitDeterminismBisectAnomaly;
    }
    std::cerr << "bisect ANOMALY: runs produced " << a.frames.size()
              << " vs " << b.frames.size() << " checkpoints\n";
    return kExitDeterminismBisectAnomaly;
  }
  std::cerr << "first divergent checkpoint: " << (lo + 1) << "/"
            << kBisectSteps << " at day "
            << fmt(a.times[lo] / kSecondsPerDay, 3);
  if (lo > 0) {
    std::cerr << " (states still identical at day "
              << fmt(a.times[lo - 1] / kSecondsPerDay, 3) << ")";
  }
  std::cerr << "\n";
  const bool ok =
      dump_state_jsonl(sc_a, opt, a.frames[lo], "bce_divergence_a.jsonl") &&
      dump_state_jsonl(sc_b, opt, b.frames[lo], "bce_divergence_b.jsonl");
  if (!ok) {
    std::cerr << "error: cannot write divergence dumps\n";
    return 1;
  }
  std::cerr << "divergent states dumped to bce_divergence_a.jsonl / "
            << "bce_divergence_b.jsonl (diff them field by field)\n";
  return rc;
}

int cmd_determinism(const std::string& path, const CliOptions& o) {
  // Exit-code contract (pinned by tools tests): 0 byte-identical, 1
  // runtime error, 2 usage, 3 end-of-run reports diverge, 4 decision
  // traces diverge, 5 bisect anomaly.
  const Scenario sc = load(path, o);
  Scenario sc_b = sc;
  if (o.seed2 != 0) sc_b.seed = o.seed2;
  EmulationOptions opt;
  opt.policy = o.policy;
  std::string trace_a;
  std::string trace_b;
  const std::string a = precise_report(sc, opt, &trace_a);
  const std::string b = precise_report(sc_b, opt, &trace_b);
  int rc = 0;
  if (a != b) {
    std::size_t i = 0;
    while (i < a.size() && i < b.size() && a[i] == b[i]) ++i;
    std::cerr << "determinism FAILED: reports diverge at byte " << i << "\n";
    rc = kExitDeterminismReportsDiverge;
  } else if (trace_a != trace_b) {
    // The figures of merit matched but a decision differed along the way:
    // point at the first diverging trace line for a one-command repro.
    std::size_t i = 0;
    while (i < trace_a.size() && i < trace_b.size() &&
           trace_a[i] == trace_b[i]) {
      ++i;
    }
    const std::size_t line =
        1 + static_cast<std::size_t>(
                std::count(trace_a.begin(),
                           trace_a.begin() + static_cast<std::ptrdiff_t>(i),
                           '\n'));
    std::cerr << "determinism FAILED: decision traces diverge at byte " << i
              << " (trace line " << line << ")\n";
    rc = kExitDeterminismTracesDiverge;
  }
  if (rc == 0) {
    std::cout << "determinism OK: two runs byte-identical (report "
              << a.size() << " bytes, decision trace " << trace_a.size()
              << " bytes, seed " << sc.seed << ")\n";
    return 0;
  }
  if (o.bisect) return bisect_divergence(sc, sc_b, opt, rc);
  return rc;
}

/// Full-precision dump of the merged figures: two sharded runs that are
/// supposed to be byte-identical (kill-and-resume vs undisturbed) must
/// produce this line byte-for-byte (tests/test_cli_fleet.cpp).
std::string merged_raw_line(const Metrics& m) {
  std::ostringstream os;
  os.precision(17);
  os << "merged raw " << m.available_flops << ' ' << m.used_flops << ' '
     << m.wasted_flops << ' ' << m.share_violation_rms << ' ' << m.monotony
     << ' ' << m.mean_exclusive_streak << ' ' << m.n_rpcs << ' '
     << m.n_work_request_rpcs << ' ' << m.n_jobs_fetched << ' '
     << m.n_jobs_completed << ' ' << m.n_jobs_missed << ' '
     << m.n_jobs_abandoned << ' ' << m.n_preemptions << ' '
     << m.n_sched_passes << ' ' << m.failure_wasted_flops << ' '
     << m.recovery_time_sum << ' ' << m.n_job_failures << ' '
     << m.n_job_aborts << ' ' << m.n_host_crashes << ' '
     << m.n_crash_recoveries << ' ' << m.n_rpcs_lost << ' '
     << m.n_jobs_orphaned << ' ' << m.n_transfer_retries;
  for (const double u : m.usage_fraction) os << ' ' << u;
  return os.str();
}

int cmd_fleet(int argc, char** argv) {
  std::string scenario_path;
  std::uint64_t hosts = 8;
  std::uint64_t shard_hosts = 2;
  unsigned workers = 2;
  double days = 0.0;  // 0 = keep the scenario/population default
  std::uint64_t seed = 1;
  std::uint64_t checkpoint_hosts = 1;
  double checkpoint_sim_days = 0.0;
  bool host_figures = false;
  PolicyConfig policy;
  SupervisorConfig sup;

  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--hosts") {
      hosts = static_cast<std::uint64_t>(parse_number(next(), a));
    } else if (a == "--shard-hosts") {
      shard_hosts = static_cast<std::uint64_t>(parse_number(next(), a));
    } else if (a == "--workers") {
      workers = static_cast<unsigned>(parse_number(next(), a));
    } else if (a == "--days") {
      days = parse_number(next(), a);
    } else if (a == "--seed") {
      seed = static_cast<std::uint64_t>(parse_number(next(), a));
    } else if (a == "--sched") {
      policy.sched_by_name = next();
    } else if (a == "--fetch") {
      policy.fetch_by_name = next();
    } else if (a == "--dispatch") {
      policy.dispatch_by_name = next();
    } else if (a == "--retries") {
      sup.max_retries = static_cast<int>(parse_number(next(), a));
    } else if (a == "--heartbeat-timeout") {
      sup.heartbeat_timeout = parse_number(next(), a);
    } else if (a == "--shard-deadline") {
      sup.shard_deadline = parse_number(next(), a);
    } else if (a == "--backoff") {
      sup.backoff_initial = parse_number(next(), a);
    } else if (a == "--checkpoint-dir") {
      sup.checkpoint_dir = next();
    } else if (a == "--checkpoint-hosts") {
      checkpoint_hosts = static_cast<std::uint64_t>(parse_number(next(), a));
    } else if (a == "--checkpoint-sim-days") {
      checkpoint_sim_days = parse_number(next(), a);
    } else if (a == "--partial-ok") {
      sup.partial_ok = true;
    } else if (a == "--harness-faults") {
      try {
        sup.harness_faults = parse_harness_faults(next());
      } catch (const std::invalid_argument& e) {
        usage(e.what());
      }
    } else if (a == "--host-figures") {
      host_figures = true;
    } else if (!a.empty() && a[0] != '-' && scenario_path.empty()) {
      scenario_path = a;
    } else {
      usage(("unknown option " + a).c_str());
    }
  }
  sup.n_workers = workers;

  std::vector<ShardTask> tasks;
  if (!scenario_path.empty()) {
    Scenario sc = load_scenario_file(scenario_path);
    if (days > 0.0) sc.duration = days * kSecondsPerDay;
    if (seed != 1) sc.seed = seed;
    tasks = make_replicated_shard_tasks(sc, policy, hosts, shard_hosts);
  } else {
    PopulationParams pp;
    if (days > 0.0) pp.duration = days * kSecondsPerDay;
    tasks = make_population_shard_tasks(pp, hosts, seed, policy, shard_hosts,
                                        host_figures);
  }
  for (ShardTask& t : tasks) {
    t.checkpoint_every_hosts = checkpoint_hosts;
    t.checkpoint_sim_period = checkpoint_sim_days * kSecondsPerDay;
    t.include_host_figures = host_figures;
  }

  try {
    const ShardedResult res = run_sharded(std::move(tasks), sup);
    std::cout << "merged: " << res.merged.summary() << "\n"
              << merged_raw_line(res.merged) << "\n"
              << "coverage: " << res.hosts_done << "/" << res.hosts_total
              << " hosts done, " << res.hosts_lost << " lost\n\n";
    res.coverage_table().print(std::cout);
    return res.complete() ? 0 : kFleetExitPartial;
  } catch (const ShardFailedError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kFleetExitShardFailed;
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Hidden worker mode: the fleet supervisor re-execs this binary with
  // --bce-shard-worker and speaks the shard protocol over stdin/stdout.
  if (const auto rc = bce::maybe_run_shard_worker(argc, argv)) return *rc;
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "sample") return cmd_sample(argc, argv);
    if (cmd == "fleet") return cmd_fleet(argc, argv);
    if (cmd == "list-policies") return cmd_list_policies();

    std::string path;
    const CliOptions o = parse_options(argc, argv, 2, &path);
    if (path.empty()) usage("missing scenario file");
    if (cmd == "run") return cmd_run(path, o);
    if (cmd == "compare") return cmd_compare(path, o);
    if (cmd == "sweep") return cmd_sweep(path, o);
    if (cmd == "print") return cmd_print(path);
    if (cmd == "determinism") return cmd_determinism(path, o);
    usage(("unknown command " + cmd).c_str());
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
