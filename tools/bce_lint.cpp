/// \file bce_lint.cpp
/// CLI driver for the project-specific static-analysis engine in
/// src/lint/ (docs/static_analysis.md). Generic static analysis
/// (clang-tidy, the warning set) cannot know BCE's own contracts; the
/// lint library enforces the ones that have silently drifted before —
/// doc inventories, raw logf call sites, scenario validity, header
/// hygiene, determinism bans, the layer DAG, and the exit-code registry.
///
/// Each finding prints one diagnostic line; the exit code is that of the
/// first failing check in registry order (0 = clean, 1 = usage/IO
/// error; see src/core/exit_codes.hpp for the full contract).
///
///   bce_lint --root <repo>                 run every check
///   bce_lint --root <repo> --check NAME    restrict to one check
///   bce_lint --list-checks                 name / exit code / description
///   bce_lint --format sarif --out F        SARIF 2.1.0 for code scanning

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/exit_codes.hpp"
#include "lint/analyzer.hpp"

namespace fs = std::filesystem;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bce_lint [--root DIR] [--check NAME]...\n"
               "checks:");
  for (const auto& c : bce::lint::lint_checks()) {
    std::fprintf(stderr, " %s", c.name);
  }
  std::fprintf(stderr, "\n");
  std::fprintf(stderr,
               "other options: --format text|sarif, --out FILE, "
               "--list-checks\n");
  return bce::kLintExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::vector<std::string> selected;
  std::string format = "text";
  std::string out_path;
  bool list_checks = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--check" && i + 1 < argc) {
      selected.emplace_back(argv[++i]);
    } else if (arg == "--format" && i + 1 < argc) {
      format = argv[++i];
      if (format != "text" && format != "sarif") {
        std::fprintf(stderr, "bce_lint: unknown format \"%s\"\n",
                     format.c_str());
        return usage();
      }
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--list-checks") {
      list_checks = true;
    } else {
      return usage();
    }
  }
  if (list_checks) {
    for (const auto& c : bce::lint::lint_checks()) {
      std::printf("%-16s exit %-2d  %s\n", c.name, c.exit_code,
                  c.description);
    }
    return 0;
  }
  for (const auto& s : selected) {
    if (bce::lint::find_check(s) == nullptr) {
      std::fprintf(stderr, "bce_lint: unknown check \"%s\"\n", s.c_str());
      return usage();
    }
  }
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "bce_lint: not a directory: %s\n",
                 root.string().c_str());
    return bce::kLintExitUsage;
  }

  const bce::lint::LintResult result = bce::lint::run_lint(root, selected);
  const std::string rendered =
      format == "sarif"
          ? bce::lint::format_sarif(result, root)
          : bce::lint::format_text(result.diagnostics);
  if (out_path.empty()) {
    std::fputs(rendered.c_str(), stdout);
  } else {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "bce_lint: cannot write %s\n", out_path.c_str());
      return bce::kLintExitUsage;
    }
    out << rendered;
  }
  return result.exit_code;
}
