/// \file bce_lint.cpp
/// Project-specific invariant linter. Generic static analysis (clang-tidy,
/// the warning set) cannot know BCE's own contracts; bce_lint enforces the
/// ones that have silently drifted before:
///
///   trace-docs   every TraceKind has a registered machine-readable name,
///                round-trips through trace_kind_from_name, and appears in
///                docs/observability.md                          (exit 2)
///   policy-docs  every policy registered in bce::policy_registry() or
///                bce::server_policy_registry() appears in
///                docs/policies.md                               (exit 3)
///   logf         no raw Logger::logf call sites outside the trace
///                dispatcher (decisions must emit TraceEvents)   (exit 4)
///   scenarios    every file under scenarios/ parses and passes
///                Scenario::validate                             (exit 5)
///   iwyu         headers under src/ directly include the standard
///                headers they use (include-what-you-use for a curated
///                std symbol set)                                (exit 6)
///   savestate-docs
///                every field the savestate layer serializes appears in
///                docs/savestate.md (inventory collected live from a
///                faulted run with modeled transfers)            (exit 7)
///   fleet-docs   every supervisor exit code and fleet CLI flag
///                (bce::fleet_doc_tokens()) appears in
///                docs/fleet.md                                  (exit 8)
///
/// Each finding prints one diagnostic line; the exit code is that of the
/// first failing check in the order above (0 = clean, 1 = usage/IO error).
/// Run as `bce_lint --root <repo>`; `--check NAME` restricts to one check
/// (used by the test fixtures under tests/lint_fixtures/).

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "client/policy_registry.hpp"
#include "core/paper_scenarios.hpp"
#include "server/dispatch_policy.hpp"
#include "core/savestate.hpp"
#include "core/scenario_io.hpp"
#include "fleet/supervisor.hpp"
#include "sim/fault.hpp"
#include "sim/trace.hpp"

namespace fs = std::filesystem;

namespace {

int g_failures = 0;

void diagnose(const char* check, const std::string& msg) {
  std::printf("bce_lint: %s: %s\n", check, msg.c_str());
  ++g_failures;
}

std::optional<std::string> read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// All regular files under \p dir with one of \p exts, sorted for
/// deterministic diagnostics. Empty when the directory does not exist.
std::vector<fs::path> files_under(const fs::path& dir,
                                  const std::vector<std::string>& exts) {
  std::vector<fs::path> out;
  if (!fs::is_directory(dir)) return out;
  for (const auto& e : fs::recursive_directory_iterator(dir)) {
    if (!e.is_regular_file()) continue;
    const std::string ext = e.path().extension().string();
    if (std::find(exts.begin(), exts.end(), ext) != exts.end()) {
      out.push_back(e.path());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---- trace-docs -----------------------------------------------------------

int check_trace_docs(const fs::path& root) {
  const int before = g_failures;
  const fs::path doc_path = root / "docs" / "observability.md";
  const auto doc = read_file(doc_path);
  if (!doc) {
    diagnose("trace-docs", "cannot read " + doc_path.string());
    return g_failures - before;
  }
  for (std::size_t i = 0; i < bce::kNumTraceKinds; ++i) {
    const auto k = static_cast<bce::TraceKind>(i);
    const std::string name = bce::trace_kind_name(k);
    if (name == "?") {
      diagnose("trace-docs", "trace kind #" + std::to_string(i) +
                                 " has no registered name");
      continue;
    }
    bce::TraceKind back{};
    if (!bce::trace_kind_from_name(name, &back) || back != k) {
      diagnose("trace-docs", "trace kind name \"" + name +
                                 "\" does not round-trip (duplicate name?)");
    }
    if (doc->find(name) == std::string::npos) {
      diagnose("trace-docs", "trace kind \"" + name + "\" is missing from " +
                                 doc_path.string());
    }
  }
  return g_failures - before;
}

// ---- policy-docs ----------------------------------------------------------

int check_policy_docs(const fs::path& root) {
  const int before = g_failures;
  const fs::path doc_path = root / "docs" / "policies.md";
  const auto doc = read_file(doc_path);
  if (!doc) {
    diagnose("policy-docs", "cannot read " + doc_path.string());
    return g_failures - before;
  }
  const auto require = [&](const bce::PolicyRegistryEntry& e) {
    if (doc->find(e.name) == std::string::npos) {
      diagnose("policy-docs", "registered policy \"" + e.name +
                                  "\" is missing from " + doc_path.string());
    }
  };
  for (const auto& e : bce::policy_registry().job_order_entries()) require(e);
  for (const auto& e : bce::policy_registry().fetch_entries()) require(e);
  for (const auto& e : bce::server_policy_registry().dispatch_entries()) {
    require(e);
  }
  return g_failures - before;
}

// ---- logf -----------------------------------------------------------------

int check_logf(const fs::path& root) {
  const int before = g_failures;
  // The only legitimate logf call site is the trace dispatcher's
  // LoggerSink (sim/trace.cpp) plus the Logger's own declaration and
  // definition. Everywhere else, decisions must emit typed TraceEvents.
  const std::vector<std::string> allowed = {"sim/logger.hpp", "sim/logger.cpp",
                                            "sim/trace.cpp"};
  for (const auto& p : files_under(root / "src", {".hpp", ".cpp"})) {
    const std::string rel =
        fs::relative(p, root / "src").generic_string();
    if (std::find(allowed.begin(), allowed.end(), rel) != allowed.end()) {
      continue;
    }
    const auto text = read_file(p);
    if (!text) continue;
    std::istringstream lines(*text);
    std::string line;
    for (int ln = 1; std::getline(lines, line); ++ln) {
      const auto pos = line.find("logf(");
      // Match only call syntax (".logf(" / "->logf(" / bare "logf("),
      // not identifiers that merely end in "logf".
      if (pos != std::string::npos &&
          (pos == 0 ||
           !(std::isalnum(static_cast<unsigned char>(line[pos - 1])) != 0 ||
             line[pos - 1] == '_' || line[pos - 1] == ':'))) {
        diagnose("logf", "raw Logger::logf call at src/" + rel + ":" +
                             std::to_string(ln) +
                             " (emit a TraceEvent instead)");
      }
    }
  }
  return g_failures - before;
}

// ---- scenarios ------------------------------------------------------------

int check_scenarios(const fs::path& root) {
  const int before = g_failures;
  const fs::path dir = root / "scenarios";
  if (!fs::is_directory(dir)) {
    diagnose("scenarios", "no scenarios/ directory under " + root.string());
    return g_failures - before;
  }
  for (const auto& p : files_under(dir, {".txt"})) {
    try {
      const bce::Scenario sc = bce::load_scenario_file(p.string());
      std::string err;
      if (!sc.validate(&err)) {
        diagnose("scenarios", p.filename().string() + ": " + err);
      }
    } catch (const std::exception& e) {
      diagnose("scenarios", p.filename().string() + ": " + e.what());
    }
  }
  return g_failures - before;
}

// ---- iwyu -----------------------------------------------------------------

/// Replace comments, string and char literals with spaces so symbol
/// matching only sees code.
std::string strip_noncode(const std::string& in) {
  std::string out = in;
  enum class St { kCode, kLine, kBlock, kStr, kChar };
  St st = St::kCode;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') st = St::kLine;
        else if (c == '/' && next == '*') st = St::kBlock;
        else if (c == '"') { st = St::kStr; out[i] = ' '; }
        else if (c == '\'') { st = St::kChar; out[i] = ' '; }
        break;
      case St::kLine:
        if (c == '\n') st = St::kCode;
        else out[i] = ' ';
        break;
      case St::kBlock:
        if (c == '*' && next == '/') { st = St::kCode; out[i + 1] = ' '; }
        if (c != '\n') out[i] = ' ';
        break;
      case St::kStr:
        if (c == '\\') { out[i] = ' '; if (next != '\n') out[++i] = ' '; }
        else if (c == '"') { st = St::kCode; out[i] = ' '; }
        else if (c != '\n') out[i] = ' ';
        break;
      case St::kChar:
        if (c == '\\') { out[i] = ' '; if (next != '\n') out[++i] = ' '; }
        else if (c == '\'') { st = St::kCode; out[i] = ' '; }
        else if (c != '\n') out[i] = ' ';
        break;
    }
  }
  return out;
}

int check_iwyu(const fs::path& root) {
  const int before = g_failures;
  // Curated symbol -> standard header map. Deliberately conservative:
  // only symbols whose home header is unambiguous.
  static const std::map<std::string, std::string> kHeaderOf = {
      {"vector", "vector"},
      {"string", "string"},
      {"to_string", "string"},
      {"array", "array"},
      {"function", "functional"},
      {"unique_ptr", "memory"},
      {"shared_ptr", "memory"},
      {"weak_ptr", "memory"},
      {"make_unique", "memory"},
      {"make_shared", "memory"},
      {"optional", "optional"},
      {"nullopt", "optional"},
      {"mutex", "mutex"},
      {"lock_guard", "mutex"},
      {"scoped_lock", "mutex"},
      {"unique_lock", "mutex"},
      {"condition_variable", "condition_variable"},
      {"map", "map"},
      {"multimap", "map"},
      {"unordered_map", "unordered_map"},
      {"unordered_set", "unordered_set"},
      {"priority_queue", "queue"},
      {"queue", "queue"},
      {"deque", "deque"},
      {"thread", "thread"},
      {"atomic", "atomic"},
      {"runtime_error", "stdexcept"},
      {"logic_error", "stdexcept"},
      {"invalid_argument", "stdexcept"},
      {"out_of_range", "stdexcept"},
      {"domain_error", "stdexcept"},
      {"ostringstream", "sstream"},
      {"istringstream", "sstream"},
      {"stringstream", "sstream"},
      {"ofstream", "fstream"},
      {"ifstream", "fstream"},
      {"numeric_limits", "limits"},
      {"sort", "algorithm"},
      {"stable_sort", "algorithm"},
      {"fill", "algorithm"},
      {"find_if", "algorithm"},
      {"lower_bound", "algorithm"},
      {"upper_bound", "algorithm"},
      {"min_element", "algorithm"},
      {"max_element", "algorithm"},
      {"accumulate", "numeric"},
      {"move", "utility"},
      {"forward", "utility"},
      {"swap", "utility"},
      {"exchange", "utility"},
      {"pair", "utility"},
      {"int8_t", "cstdint"},
      {"int16_t", "cstdint"},
      {"int32_t", "cstdint"},
      {"int64_t", "cstdint"},
      {"uint8_t", "cstdint"},
      {"uint16_t", "cstdint"},
      {"uint32_t", "cstdint"},
      {"uint64_t", "cstdint"},
  };

  for (const auto& p : files_under(root / "src", {".hpp"})) {
    const auto raw = read_file(p);
    if (!raw) continue;
    const std::string code = strip_noncode(*raw);
    const std::string rel = fs::relative(p, root).generic_string();
    std::vector<std::string> missing;
    for (std::size_t pos = code.find("std::"); pos != std::string::npos;
         pos = code.find("std::", pos + 5)) {
      std::size_t end = pos + 5;
      while (end < code.size() &&
             (std::isalnum(static_cast<unsigned char>(code[end])) != 0 ||
              code[end] == '_')) {
        ++end;
      }
      const std::string sym = code.substr(pos + 5, end - pos - 5);
      const auto it = kHeaderOf.find(sym);
      if (it == kHeaderOf.end()) continue;
      const std::string inc = "#include <" + it->second + ">";
      if (raw->find(inc) != std::string::npos) continue;
      const std::string note = "uses std::" + sym + " but does not include <" +
                               it->second + ">";
      if (std::find(missing.begin(), missing.end(), note) == missing.end()) {
        missing.push_back(note);
      }
    }
    for (const auto& note : missing) diagnose("iwyu", rel + " " + note);
  }
  return g_failures - before;
}

// ---- savestate-docs -------------------------------------------------------

int check_savestate_docs(const fs::path& root) {
  const int before = g_failures;
  const fs::path doc_path = root / "docs" / "savestate.md";
  const auto doc = read_file(doc_path);
  if (!doc) {
    diagnose("savestate-docs", "cannot read " + doc_path.string());
    return g_failures - before;
  }
  // The field inventory is collected live, not by source scanning: a
  // faulted half-day run with modeled transfers is checkpointed at every
  // inter-event boundary and the savestate_entries names are unioned, so
  // fields only present mid-flight (pending transfers, retry backoffs,
  // orphaned jobs) make it into the inventory too.
  bce::Scenario sc = bce::paper_scenario2();
  sc.duration = 0.5 * bce::kSecondsPerDay;
  sc.faults = bce::FaultPlan::light();
  sc.host.download_bandwidth_bps = 1e6;
  for (auto& p : sc.projects) {
    for (auto& jc : p.job_classes) jc.input_bytes = 5e7;
  }
  bce::EmulationOptions opt;
  opt.record_timeline = true;  // covers the timeline.* span fields
  bce::Emulator em(sc, opt);
  std::set<std::string> names;
  em.set_checkpoint_hook([&](bce::Emulator& e) {
    for (const auto& entry : bce::savestate_entries(e)) {
      names.insert(entry.name);
    }
  });
  (void)em.run();
  for (const auto& name : names) {
    if (doc->find("`" + name + "`") == std::string::npos) {
      diagnose("savestate-docs", "serialized field \"" + name +
                                     "\" is missing from " +
                                     doc_path.string());
    }
  }
  return g_failures - before;
}

// ---- fleet-docs -----------------------------------------------------------

int check_fleet_docs(const fs::path& root) {
  const int before = g_failures;
  const fs::path doc_path = root / "docs" / "fleet.md";
  const auto doc = read_file(doc_path);
  if (!doc) {
    diagnose("fleet-docs", "cannot read " + doc_path.string());
    return g_failures - before;
  }
  // The inventory comes from the supervisor itself, not a hand-kept
  // list: adding a CLI flag or exit code to the fleet layer without
  // mentioning it in docs/fleet.md fails this check.
  for (const auto& token : bce::fleet_doc_tokens()) {
    if (doc->find(token) == std::string::npos) {
      diagnose("fleet-docs", "fleet token \"" + token +
                                 "\" is missing from " + doc_path.string());
    }
  }
  return g_failures - before;
}

// ---- driver ---------------------------------------------------------------

struct Check {
  const char* name;
  int exit_code;
  int (*run)(const fs::path&);
};

constexpr int kUsageError = 1;

const Check kChecks[] = {
    {"trace-docs", 2, check_trace_docs},
    {"policy-docs", 3, check_policy_docs},
    {"logf", 4, check_logf},
    {"scenarios", 5, check_scenarios},
    {"iwyu", 6, check_iwyu},
    {"savestate-docs", 7, check_savestate_docs},
    {"fleet-docs", 8, check_fleet_docs},
};

int usage() {
  std::fprintf(stderr,
               "usage: bce_lint [--root DIR] [--check NAME]...\n"
               "checks:");
  for (const auto& c : kChecks) std::fprintf(stderr, " %s", c.name);
  std::fprintf(stderr, "\n");
  return kUsageError;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::vector<std::string> selected;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--check" && i + 1 < argc) {
      selected.emplace_back(argv[++i]);
    } else {
      return usage();
    }
  }
  for (const auto& s : selected) {
    if (std::none_of(std::begin(kChecks), std::end(kChecks),
                     [&](const Check& c) { return s == c.name; })) {
      std::fprintf(stderr, "bce_lint: unknown check \"%s\"\n", s.c_str());
      return usage();
    }
  }
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "bce_lint: not a directory: %s\n",
                 root.string().c_str());
    return kUsageError;
  }

  int exit_code = 0;
  for (const auto& c : kChecks) {
    if (!selected.empty() &&
        std::find(selected.begin(), selected.end(), c.name) ==
            selected.end()) {
      continue;
    }
    if (c.run(root) > 0 && exit_code == 0) exit_code = c.exit_code;
  }
  return exit_code;
}
