// bce_perf: the perf-regression gate (docs/performance.md).
//
//   bce_perf run [--out FILE] [--quick] [--kernel NAME]
//       Time the emulator's hot kernels and print one JSON object with an
//       items/sec entry per kernel (also written to FILE with --out).
//       --quick shrinks the measurement window for CI smoke runs; numbers
//       are noisier but the schema is identical.
//
//   bce_perf compare BASELINE CURRENT [--tolerance FRAC] [--warn-only]
//               [--force]
//       Compare two run outputs kernel by kernel. A kernel regresses when
//       its items/sec falls more than FRAC (default 0.10) below the
//       baseline. Exits 7 on any regression (0 with --warn-only), so CI
//       can gate on it against the committed BENCH_6.json baseline.
//       Reports record the host's core count; comparing reports taken on
//       different core counts is refused (exit 8) unless --force, since
//       threading kernels measured on different hardware are not
//       comparable (the ROADMAP's batch_small_8t caveat).
//
// Every kernel uses only public library API, so the same source measures
// any revision it is checked out against — that is how the before/after
// numbers in BENCH_6.json were produced.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/bce.hpp"
#include "core/exit_codes.hpp"
#include "fleet/shard.hpp"
#include "fleet/shard_worker.hpp"
#include "fleet/supervisor.hpp"
#include "lint/analyzer.hpp"
#include "sim/thread_pool.hpp"

namespace {

using namespace bce;
using Clock = std::chrono::steady_clock;

struct KernelResult {
  double items_per_sec = 0.0;
  double items = 0.0;
  double wall_seconds = 0.0;
};

/// Run \p body(reps) with growing rep counts until the wall time reaches
/// \p min_seconds, then report the final measurement. \p body returns the
/// number of items it processed.
KernelResult measure(double min_seconds,
                     const std::function<double(std::uint64_t)>& body) {
  std::uint64_t reps = 1;
  for (;;) {
    const auto t0 = Clock::now();
    const double items = body(reps);
    const double wall =
        std::chrono::duration<double>(Clock::now() - t0).count();
    if (wall >= min_seconds || reps >= (std::uint64_t{1} << 40)) {
      KernelResult r;
      r.items = items;
      r.wall_seconds = wall;
      r.items_per_sec = wall > 0.0 ? items / wall : 0.0;
      return r;
    }
    // Aim past min_seconds with headroom; at least double.
    const double scale =
        wall > 0.0 ? std::max(2.0, 1.5 * min_seconds / wall) : 2.0;
    reps = static_cast<std::uint64_t>(static_cast<double>(reps) * scale) + 1;
  }
}

std::vector<Result> make_jobs(int n, int n_proj) {
  std::vector<Result> jobs(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto& r = jobs[static_cast<std::size_t>(i)];
    r.id = i;
    r.project = i % n_proj;
    r.flops_est = r.flops_total = 1e12 + 1e10 * i;
    r.received = static_cast<double>(i);
    r.deadline = 86400.0 * (1 + i % 5);
    r.usage = ResourceUsage::cpu(1.0);
  }
  return jobs;
}

// ---- kernels --------------------------------------------------------------

/// Schedule-then-drain churn: the baseline event-queue cost.
double k_event_queue_churn(std::uint64_t reps) {
  constexpr std::size_t kEvents = 4096;
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    EventQueue q;
    for (std::size_t i = 0; i < kEvents; ++i) {
      q.schedule(static_cast<double>((i * 7919) % 100000), EventKind::kUser);
    }
    while (!q.empty()) {
      volatile auto at = q.pop().at;
      (void)at;
    }
  }
  return static_cast<double>(reps) * kEvents;
}

/// The emulator's dominant queue pattern: a working set of per-task timers
/// that are cancelled and re-armed on nearly every dispatch
/// (schedule_task_event / schedule_transfer_event), so most scheduled
/// events die by cancel(), not pop(). Items = schedule+cancel pairs.
double k_event_queue_cancel_heavy(std::uint64_t reps) {
  constexpr std::size_t kTimers = 64;
  EventQueue q;
  EventHandle timers[kTimers] = {};
  double now = 0.0;
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;  // xorshift pattern
  std::uint64_t ops = 0;
  for (std::size_t i = 0; i < kTimers; ++i) {
    timers[i] = q.schedule(now + static_cast<double>(i + 1), EventKind::kUser);
  }
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const std::size_t i = static_cast<std::size_t>(x % kTimers);
    q.cancel(timers[i]);
    now += 0.25;
    timers[i] =
        q.schedule(now + 1.0 + static_cast<double>(x % 1000), EventKind::kUser);
    ++ops;
    if ((rep & 7) == 0) {  // occasionally fire the front like the real loop
      if (!q.empty() && q.next_time() <= now) {
        const Event ev = q.pop();
        for (std::size_t j = 0; j < kTimers; ++j) {
          if (timers[j] == ev.handle) {
            timers[j] =
                q.schedule(now + 1.0 + static_cast<double>(j), EventKind::kUser);
          }
        }
      }
    }
  }
  return static_cast<double>(ops);
}

/// Full RR-sim at 100 jobs through the cached entry point with the version
/// bumped every pass (all misses) — the reschedule-pass cost.
double k_rr_sim_100(std::uint64_t reps) {
  const int n = 100;
  const int n_proj = 4;
  HostInfo host = HostInfo::cpu_only(4, 1e9);
  Preferences prefs;
  PerProc<double> avail;
  avail.fill(1.0);
  RrSim rr(host, prefs, avail);
  std::vector<double> shares(n_proj, 1.0 / n_proj);
  auto jobs = make_jobs(n, n_proj);
  std::vector<Result*> ptrs;
  for (auto& j : jobs) ptrs.push_back(&j);
  std::uint64_t version = 0;
  double sink = 0.0;
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    const RrSimOutput& out = rr.run_cached(++version, 0.0, ptrs, shares);
    sink += out.span;
  }
  volatile double keep = sink;
  (void)keep;
  return static_cast<double>(reps) * n;
}

/// One job-scheduler pass over 100 runnable jobs.
double k_scheduler_pass_100(std::uint64_t reps) {
  const int n = 100;
  const int n_proj = 4;
  HostInfo host = HostInfo::cpu_only(4, 1e9);
  Preferences prefs;
  PolicyConfig policy;
  JobScheduler sched(host, prefs, policy);
  Accounting acct(host, std::vector<double>(n_proj, 0.25), kSecondsPerDay);
  Trace log;
  auto jobs = make_jobs(n, n_proj);
  std::vector<Result*> ptrs;
  for (auto& j : jobs) ptrs.push_back(&j);
  std::size_t sink = 0;
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    sink += sched.schedule(0.0, ptrs, acct, true, true, log).to_run.size();
  }
  volatile std::size_t keep = sink;
  (void)keep;
  return static_cast<double>(reps) * n;
}

/// Disabled-path trace emit (every decision point pays this with tracing
/// off).
double k_trace_emit_disabled(std::uint64_t reps) {
  Trace trace;
  TraceEvent ev{
      .at = 0.0, .kind = TraceKind::kJobStarted, .project = 1, .job = 42};
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    ev.at += 1.0;
    trace.emit(ev);
  }
  volatile double keep = ev.at;
  (void)keep;
  return static_cast<double>(reps);
}

/// Enabled-path trace emit: full JSONL serialization.
double k_trace_emit_jsonl(std::uint64_t reps) {
  std::ostringstream os;
  Trace trace;
  JsonlSink sink(os);
  trace.add_sink(&sink);
  trace.enable_all();
  TraceEvent ev{.at = 0.0,
                .kind = TraceKind::kServerSent,
                .project = 1,
                .ptype = 0,
                .v0 = 3.0,
                .v1 = 86400.0,
                .v2 = 90000.0,
                .str = "einstein"};
  std::size_t emitted = 0;
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    ev.at += 1.0;
    trace.emit(ev);
    if (++emitted == 4096) {
      os.str(std::string());
      emitted = 0;
    }
  }
  return static_cast<double>(reps);
}

/// End-to-end emulation: items are simulated seconds, so items/sec is
/// simulated-seconds-per-wall-second.
double k_emulate_one_day(std::uint64_t reps) {
  Scenario sc = paper_scenario2();
  sc.duration = 1.0 * kSecondsPerDay;
  EmulationOptions opt;
  double sink = 0.0;
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    sink += emulate(sc, opt).metrics.idle_fraction();
  }
  volatile double keep = sink;
  (void)keep;
  return static_cast<double>(reps) * sc.duration;
}

/// Many small batches through run_batch: 8 specs of a hundredth-day run
/// per batch. Items are emulations; with short runs the per-batch thread
/// create/join overhead dominates — the pattern of sweep drivers and the
/// fleet controller.
double k_batch_small(std::uint64_t reps, unsigned n_threads) {
  std::vector<RunSpec> specs(8);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].label = "spec" + std::to_string(i);
    specs[i].scenario = paper_scenario1();
    specs[i].scenario.duration = 0.01 * kSecondsPerDay;
    specs[i].scenario.seed = i + 1;
  }
  double sink = 0.0;
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    const auto results = run_batch(specs, n_threads);
    sink += results.front().result.metrics.idle_fraction();
  }
  volatile double keep = sink;
  (void)keep;
  return static_cast<double>(reps) * static_cast<double>(specs.size());
}

/// Savestate capture + restore of a mid-run snapshot (docs/savestate.md).
/// Items are round trips; this bounds what `--save-state` adds to a run
/// and what each `determinism --bisect` probe pays per checkpoint.
double k_savestate_roundtrip(std::uint64_t reps) {
  Scenario sc = paper_scenario2();
  sc.duration = 0.25 * kSecondsPerDay;
  EmulationOptions opt;
  Emulator em(sc, opt);
  std::vector<std::uint8_t> frame;
  em.set_checkpoint_hook([&](Emulator& e) {
    if (frame.empty() && e.now() >= 0.5 * sc.duration) {
      frame = capture_savestate(e);
    }
  });
  (void)em.run();
  double sink = 0.0;
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    Emulator fresh(sc, opt);
    restore_savestate(fresh, frame);
    sink += static_cast<double>(capture_savestate(fresh).size());
  }
  volatile double keep = sink;
  (void)keep;
  return static_cast<double>(reps);
}

/// The server-side dispatch fill loop in isolation: one scheduler RPC per
/// iteration against the default SD_PAPER policy, reporting the previous
/// reply's jobs so the in-progress count stays in steady state. Items are
/// jobs dispatched — what every work-request RPC pays inside
/// ProjectServer::handle_rpc.
double k_server_dispatch(std::uint64_t reps) {
  const Scenario sc = paper_scenario2();
  ServerPolicy sp;
  ProjectServer server(0, sc.projects[0], sc.host, sp,
                       /*host_avail_fraction=*/1.0, Xoshiro256(42), 0.0);
  Trace trace;
  WorkRequest req;
  req.req_seconds[ProcType::kCpu] = 4.0 * 3600.0;
  req.req_instances[ProcType::kCpu] = 2.0;
  JobId next_id = 0;
  int to_report = 0;
  double now = 0.0;
  double dispatched = 0.0;
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    now += 60.0;
    const RpcReply reply =
        server.handle_rpc(now, req, to_report, next_id, trace);
    to_report = static_cast<int>(reply.jobs.size());
    dispatched += static_cast<double>(reply.jobs.size());
  }
  volatile double keep = dispatched;
  (void)keep;
  return dispatched;
}

const std::vector<Duration>& sweep_durations() {
  static const std::vector<Duration> durations = {
      0.25 * kSecondsPerDay, 0.5 * kSecondsPerDay, 0.75 * kSecondsPerDay,
      1.0 * kSecondsPerDay};
  return durations;
}

/// A duration sweep run cold: every horizon replays from t = 0. Items are
/// simulated seconds, directly comparable to sweep_warmstart below.
double k_sweep_coldstart(std::uint64_t reps) {
  Scenario sc = paper_scenario2();
  EmulationOptions opt;
  double sink = 0.0;
  double sim_seconds = 0.0;
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    for (const Duration d : sweep_durations()) {
      sc.duration = d;
      sink += emulate(sc, opt).metrics.idle_fraction();
      sim_seconds += d;
    }
  }
  volatile double keep = sink;
  (void)keep;
  return sim_seconds;
}

/// The same sweep forked from shared savestates: run_duration_chain
/// emulates the common prefix once and warm-starts each longer horizon
/// from the previous one's snapshot. Items are the same simulated seconds
/// as sweep_coldstart, so the items/sec gap between the two kernels is the
/// wall-clock win bench::run_grid banks for duration-varying grids.
double k_sweep_warmstart(std::uint64_t reps) {
  Scenario sc = paper_scenario2();
  EmulationOptions opt;
  double sink = 0.0;
  double sim_seconds = 0.0;
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    const auto results = run_duration_chain(sc, opt, sweep_durations());
    sink += results.front().metrics.idle_fraction();
    for (const Duration d : sweep_durations()) sim_seconds += d;
  }
  volatile double keep = sink;
  (void)keep;
  return sim_seconds;
}

/// A sharded population run through the supervisor's in-process path:
/// 8 hosts in 4 shards of 2, folded via Metrics::merge. Items are hosts;
/// the gap to batch_small_* is the sharding layer's bookkeeping cost.
double k_fleet_sharded(std::uint64_t reps) {
  PopulationParams pp;
  pp.duration = 0.01 * kSecondsPerDay;
  PolicyConfig policy;
  double sink = 0.0;
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    const ShardedResult res =
        run_sharded(make_population_shard_tasks(pp, 8, 1, policy, 2));
    sink += res.merged.idle_fraction();
  }
  volatile double keep = sink;
  (void)keep;
  return static_cast<double>(reps) * 8.0;
}

/// One shard checkpoint round trip: persist a partial fold carrying a
/// mid-run `.bcss` emulator frame, read it back, and restore the frame
/// into a fresh emulator — what every worker retry pays to resume
/// (docs/fleet.md). Items are round trips.
double k_shard_checkpoint_resume(std::uint64_t reps) {
  Scenario sc = paper_scenario2();
  sc.duration = 0.25 * kSecondsPerDay;
  EmulationOptions opt;
  Emulator em(sc, opt);
  std::vector<std::uint8_t> frame;
  em.set_checkpoint_hook([&](Emulator& e) {
    if (frame.empty() && e.now() >= 0.5 * sc.duration) {
      frame = capture_savestate(e);
    }
  });
  (void)em.run();

  ShardTask task;
  task.scenario_texts.push_back(serialize_scenario(sc));
  ShardCheckpoint cp;
  cp.hosts_done = 0;
  cp.seq = 1;
  cp.frame = frame;
  const std::string path = "bce_perf_shard_cp.bcsp";

  double sink = 0.0;
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    write_shard_checkpoint(path, task, cp);
    const ShardCheckpoint got = read_shard_checkpoint(path, task);
    Emulator fresh(sc, opt);
    restore_savestate(fresh, got.frame);
    sink += fresh.now();
  }
  std::remove(path.c_str());
  volatile double keep = sink;
  (void)keep;
  return static_cast<double>(reps);
}

/// One full static-analysis pass over the repo (every bce_lint check
/// in-process, src/lint/analyzer.hpp). Items are lint passes. The repo
/// root is found by walking up from the working directory to the first
/// ancestor that has both src/ and docs/static_analysis.md, so the
/// kernel works from the build dir as well as the checkout root.
double k_lint_full_repo(std::uint64_t reps) {
  namespace fs = std::filesystem;
  fs::path root = fs::current_path();
  while (!(fs::is_directory(root / "src") &&
           fs::exists(root / "docs" / "static_analysis.md"))) {
    if (!root.has_parent_path() || root.parent_path() == root) {
      root = fs::current_path();  // not in a checkout; lint cwd anyway
      break;
    }
    root = root.parent_path();
  }
  std::size_t sink = 0;
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    const bce::lint::LintResult r = bce::lint::run_lint(root, {});
    sink += r.diagnostics.size();
  }
  volatile std::size_t keep = sink;
  (void)keep;
  return static_cast<double>(reps);
}

struct Kernel {
  const char* name;
  std::function<double(std::uint64_t)> body;
};

std::vector<Kernel> kernels() {
  return {
      {"event_queue_churn", k_event_queue_churn},
      {"event_queue_cancel_heavy", k_event_queue_cancel_heavy},
      {"rr_sim_100", k_rr_sim_100},
      {"scheduler_pass_100", k_scheduler_pass_100},
      {"trace_emit_disabled", k_trace_emit_disabled},
      {"trace_emit_jsonl", k_trace_emit_jsonl},
      {"emulate_one_day", k_emulate_one_day},
      {"batch_small_1t", [](std::uint64_t r) { return k_batch_small(r, 1); }},
      {"batch_small_8t", [](std::uint64_t r) { return k_batch_small(r, 8); }},
      {"savestate_roundtrip", k_savestate_roundtrip},
      {"sweep_coldstart", k_sweep_coldstart},
      {"sweep_warmstart", k_sweep_warmstart},
      {"fleet_sharded", k_fleet_sharded},
      {"shard_checkpoint_resume", k_shard_checkpoint_resume},
      {"server_dispatch", k_server_dispatch},
      {"lint_full_repo", k_lint_full_repo},
  };
}

// ---- run ------------------------------------------------------------------

void write_json(std::ostream& os,
                const std::vector<std::pair<std::string, KernelResult>>& rows,
                bool quick) {
  os << "{\n";
  os << "  \"schema\": \"bce-perf-v1\",\n";
  os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  // Where the numbers were taken: threading kernels (batch_small_8t) are
  // only comparable between reports from the same core count, and compare
  // refuses mixed-host comparisons without --force.
  os << "  \"host\": {\"hardware_concurrency\": "
     << std::thread::hardware_concurrency()
     << ", \"resolved_threads\": " << resolve_thread_count(0) << "},\n";
  os << "  \"kernels\": {\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& [name, r] = rows[i];
    os << "    \"" << name << "\": {\"items_per_sec\": " << r.items_per_sec
       << ", \"items\": " << r.items << ", \"wall_seconds\": " << r.wall_seconds
       << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  }\n";
  os << "}\n";
}

int cmd_run(const std::vector<std::string>& args) {
  std::string out_path;
  std::string only;
  bool quick = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--out" && i + 1 < args.size()) {
      out_path = args[++i];
    } else if (args[i] == "--kernel" && i + 1 < args.size()) {
      only = args[++i];
    } else if (args[i] == "--quick") {
      quick = true;
    } else {
      std::cerr << "error: unknown run option " << args[i] << "\n";
      return 1;
    }
  }
  const double min_seconds = quick ? 0.05 : 0.5;

  std::vector<std::pair<std::string, KernelResult>> rows;
  bool matched = false;
  for (const auto& k : kernels()) {
    if (!only.empty() && only != k.name) continue;
    matched = true;
    const KernelResult r = measure(min_seconds, k.body);
    std::cerr << k.name << ": " << r.items_per_sec << " items/sec ("
              << r.items << " items in " << r.wall_seconds << " s)\n";
    rows.emplace_back(k.name, r);
  }
  if (!matched) {
    std::cerr << "error: unknown kernel " << only << "\n";
    return 1;
  }

  std::ostringstream json;
  json.precision(10);
  write_json(json, rows, quick);
  std::cout << json.str();
  if (!out_path.empty()) {
    std::ofstream os(out_path);
    if (!os) {
      std::cerr << "error: cannot write " << out_path << "\n";
      return 1;
    }
    os << json.str();
    std::cerr << "results written to " << out_path << "\n";
  }
  return 0;
}

// ---- compare --------------------------------------------------------------

/// Extract kernel -> items_per_sec from a bce-perf-v1 report, plus the
/// recorded host core count when present (-1 = report predates the host
/// stanza). The format is machine-written with one kernel per line, so a
/// line scanner is enough — no JSON library in the toolchain.
bool parse_report(const std::string& path,
                  std::map<std::string, double>& out, int& cores,
                  std::string& err) {
  std::ifstream is(path);
  if (!is) {
    err = "cannot open " + path;
    return false;
  }
  cores = -1;
  std::string line;
  while (std::getline(is, line)) {
    const auto hc = line.find("\"hardware_concurrency\":");
    if (hc != std::string::npos) {
      try {
        cores = std::stoi(line.substr(hc + 24));
      } catch (...) {
        cores = -1;
      }
      continue;
    }
    const auto ips = line.find("\"items_per_sec\":");
    if (ips == std::string::npos) continue;
    const auto q0 = line.find('"');
    const auto q1 = line.find('"', q0 + 1);
    if (q0 == std::string::npos || q1 == std::string::npos) continue;
    const std::string name = line.substr(q0 + 1, q1 - q0 - 1);
    const std::string val = line.substr(ips + 16);
    try {
      out[name] = std::stod(val);
    } catch (...) {
      err = "bad items_per_sec for " + name + " in " + path;
      return false;
    }
  }
  if (out.empty()) {
    err = "no kernels found in " + path + " (not a bce-perf report?)";
    return false;
  }
  return true;
}

int cmd_compare(const std::vector<std::string>& args) {
  std::vector<std::string> paths;
  double tolerance = 0.10;
  bool warn_only = false;
  bool force = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--tolerance" && i + 1 < args.size()) {
      tolerance = std::stod(args[++i]);
    } else if (args[i] == "--warn-only") {
      warn_only = true;
    } else if (args[i] == "--force") {
      force = true;
    } else if (!args[i].empty() && args[i][0] == '-') {
      std::cerr << "error: unknown compare option " << args[i] << "\n";
      return 1;
    } else {
      paths.push_back(args[i]);
    }
  }
  if (paths.size() != 2) {
    std::cerr << "error: compare needs BASELINE and CURRENT paths\n";
    return 1;
  }

  std::map<std::string, double> base;
  std::map<std::string, double> cur;
  int base_cores = -1;
  int cur_cores = -1;
  std::string err;
  if (!parse_report(paths[0], base, base_cores, err) ||
      !parse_report(paths[1], cur, cur_cores, err)) {
    std::cerr << "error: " << err << "\n";
    return 1;
  }

  if (base_cores > 0 && cur_cores > 0 && base_cores != cur_cores) {
    if (!force) {
      std::cerr << "error: baseline was taken on " << base_cores
                << " core(s), current on " << cur_cores
                << " — threading kernels are not comparable across core "
                   "counts (--force to compare anyway)\n";
      return kPerfExitCoreCountMismatch;
    }
    std::cout << "warning: comparing reports from different core counts ("
              << base_cores << " vs " << cur_cores
              << "); treat threading kernels with suspicion\n";
  } else if (base_cores <= 0 || cur_cores <= 0) {
    std::cout << "note: host core count missing from "
              << (base_cores <= 0 ? paths[0] : paths[1])
              << " (report predates the host stanza); core-count guard "
                 "skipped\n";
  }

  int regressions = 0;
  for (const auto& [name, base_ips] : base) {
    const auto it = cur.find(name);
    if (it == cur.end()) {
      std::cout << name << ": MISSING from current (skipped)\n";
      continue;
    }
    const double ratio = base_ips > 0.0 ? it->second / base_ips : 1.0;
    const bool regressed = ratio < 1.0 - tolerance;
    if (regressed) ++regressions;
    std::cout << name << ": " << (ratio >= 1.0 ? "+" : "")
              << (ratio - 1.0) * 100.0 << "% ("
              << base_ips << " -> " << it->second << ")"
              << (regressed ? "  REGRESSION" : "") << "\n";
  }
  if (regressions > 0) {
    std::cout << regressions << " kernel(s) regressed more than "
              << tolerance * 100.0 << "%\n";
    return warn_only ? 0 : kPerfExitRegression;
  }
  std::cout << "no regressions beyond " << tolerance * 100.0 << "%\n";
  return 0;
}

void usage() {
  std::cerr
      << "usage:\n"
      << "  bce_perf run [--out FILE] [--quick] [--kernel NAME]\n"
      << "  bce_perf compare BASELINE CURRENT [--tolerance FRAC]"
         " [--warn-only] [--force]\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    usage();
    return 1;
  }
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  if (args[0] == "run") return cmd_run(rest);
  if (args[0] == "compare") return cmd_compare(rest);
  usage();
  return 1;
}
