// Unit tests for the categorized message log (sim/logger).

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "sim/logger.hpp"

namespace bce {
namespace {

TEST(Logger, DisabledByDefault) {
  Logger log;
  log.set_retain(true);
  log.logf(1.0, LogCategory::kTask, "hello");
  EXPECT_TRUE(log.entries().empty());
}

TEST(Logger, EnabledCategoryRetains) {
  Logger log;
  log.set_retain(true);
  log.enable(LogCategory::kTask);
  log.logf(1.0, LogCategory::kTask, "job %d started", 7);
  log.logf(2.0, LogCategory::kRpc, "not retained");
  ASSERT_EQ(log.entries().size(), 1u);
  EXPECT_EQ(log.entries()[0].text, "job 7 started");
  EXPECT_DOUBLE_EQ(log.entries()[0].at, 1.0);
  EXPECT_EQ(log.entries()[0].category, LogCategory::kTask);
}

TEST(Logger, EnableAllAndDisable) {
  Logger log;
  log.set_retain(true);
  log.enable_all();
  log.enable(LogCategory::kRpc, false);
  log.logf(0.0, LogCategory::kRpc, "suppressed");
  log.logf(0.0, LogCategory::kServer, "kept");
  ASSERT_EQ(log.entries().size(), 1u);
  EXPECT_EQ(log.entries()[0].text, "kept");
}

TEST(Logger, StreamOutputFormat) {
  Logger log;
  log.enable(LogCategory::kWorkFetch);
  std::ostringstream os;
  log.set_stream(&os);
  log.logf(3600.0, LogCategory::kWorkFetch, "fetching");
  const std::string s = os.str();
  EXPECT_NE(s.find("3600.0"), std::string::npos);
  EXPECT_NE(s.find("[work_fetch]"), std::string::npos);
  EXPECT_NE(s.find("fetching"), std::string::npos);
}

TEST(Logger, ClearEmptiesRetained) {
  Logger log;
  log.set_retain(true);
  log.enable_all();
  log.logf(0.0, LogCategory::kAvail, "x");
  log.clear();
  EXPECT_TRUE(log.entries().empty());
}

TEST(Logger, CategoryNames) {
  EXPECT_STREQ(log_category_name(LogCategory::kTask), "task");
  EXPECT_STREQ(log_category_name(LogCategory::kCpuSched), "cpu_sched");
  EXPECT_STREQ(log_category_name(LogCategory::kRrSim), "rr_sim");
  EXPECT_STREQ(log_category_name(LogCategory::kWorkFetch), "work_fetch");
  EXPECT_STREQ(log_category_name(LogCategory::kRpc), "rpc");
  EXPECT_STREQ(log_category_name(LogCategory::kAvail), "avail");
  EXPECT_STREQ(log_category_name(LogCategory::kServer), "server");
}

TEST(Logger, CategoryNamesRoundTrip) {
  for (std::size_t i = 0; i < kNumLogCategories; ++i) {
    const auto c = static_cast<LogCategory>(i);
    LogCategory back = LogCategory::kTask;
    ASSERT_TRUE(log_category_from_name(log_category_name(c), &back));
    EXPECT_EQ(back, c);
  }
  LogCategory out;
  EXPECT_FALSE(log_category_from_name("nonsense", &out));
  EXPECT_FALSE(log_category_from_name("", &out));
}

// Regression: messages longer than the 512-byte stack buffer used to be
// silently truncated; logf now retries into a heap buffer.
TEST(Logger, LongMessagesAreNotTruncated) {
  Logger log;
  log.set_retain(true);
  log.enable_all();
  const std::string payload(2000, 'x');
  log.logf(0.0, LogCategory::kTask, "start %s end", payload.c_str());
  ASSERT_EQ(log.entries().size(), 1u);
  EXPECT_EQ(log.entries()[0].text, "start " + payload + " end");

  std::ostringstream os;
  log.set_stream(&os);
  log.logf(1.0, LogCategory::kTask, "%s", payload.c_str());
  EXPECT_NE(os.str().find(payload), std::string::npos);
}

TEST(Logger, UnconfiguredLoggerIsCheap) {
  Logger log;  // no stream, no retain, nothing enabled
  for (int i = 0; i < 1000; ++i) {
    log.logf(0.0, LogCategory::kTask, "noop %d", i);
  }
  EXPECT_TRUE(log.entries().empty());
}

}  // namespace
}  // namespace bce
