// End-to-end contract of `bce fleet` (tools/bce_cli.cpp, docs/fleet.md):
// exit codes (0 complete / 10 partial / 11 shard failed), coverage
// accounting, and the headline resilience invariant as a user sees it —
// the full-precision "merged raw" line of a run whose workers are killed
// and resumed from checkpoint is byte-identical to an undisturbed
// in-process run.
//
// The binary path arrives via BCE_BIN (tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

namespace {

struct CliRun {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

CliRun run_cli(const std::string& args) {
  const std::string cmd = std::string(BCE_BIN) + " " + args + " 2>&1";
  CliRun r;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[512];
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) r.output += buf;
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string scenario(const std::string& name) {
  return std::string(BCE_SOURCE_DIR) + "/scenarios/" + name;
}

std::string checkpoint_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::create_directories(dir);
  return dir;
}

/// The full-precision merged-figures line ("merged raw ..."), the byte-
/// identity witness.
std::string merged_raw_line(const std::string& output) {
  const auto pos = output.find("merged raw ");
  if (pos == std::string::npos) return {};
  return output.substr(pos, output.find('\n', pos) - pos);
}

TEST(CliFleet, CompleteRunExitsZeroWithFullCoverage) {
  const CliRun r = run_cli("fleet " + scenario("scenario1.txt") +
                           " --hosts 4 --shard-hosts 2 --workers 2"
                           " --days 0.2");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("coverage: 4/4 hosts done, 0 lost"),
            std::string::npos)
      << r.output;
  EXPECT_FALSE(merged_raw_line(r.output).empty()) << r.output;
}

TEST(CliFleet, KilledWorkersResumeByteIdentical) {
  const std::string args = "fleet " + scenario("scenario2.txt") +
                           " --hosts 4 --shard-hosts 2 --days 0.2";
  const CliRun undisturbed = run_cli(args + " --workers 0");
  ASSERT_EQ(undisturbed.exit_code, 0) << undisturbed.output;

  const std::string dir = checkpoint_dir("cli_fleet_kill_cp");
  const CliRun faulted =
      run_cli(args + " --workers 2 --checkpoint-dir " + dir +
              " --checkpoint-sim-days 0.05 --harness-faults kill:1@2"
              " --backoff 0.05");
  ASSERT_EQ(faulted.exit_code, 0) << faulted.output;
  EXPECT_EQ(merged_raw_line(faulted.output),
            merged_raw_line(undisturbed.output));
  EXPECT_FALSE(merged_raw_line(faulted.output).empty());
}

TEST(CliFleet, StalledWorkerTimesOutByteIdentical) {
  const std::string args = "fleet " + scenario("scenario2.txt") +
                           " --hosts 4 --shard-hosts 2 --days 0.2";
  const CliRun undisturbed = run_cli(args + " --workers 0");
  ASSERT_EQ(undisturbed.exit_code, 0) << undisturbed.output;

  const std::string dir = checkpoint_dir("cli_fleet_stall_cp");
  const CliRun faulted =
      run_cli(args + " --workers 2 --checkpoint-dir " + dir +
              " --harness-faults stall:0@1 --heartbeat-timeout 0.5"
              " --backoff 0.05");
  ASSERT_EQ(faulted.exit_code, 0) << faulted.output;
  EXPECT_EQ(merged_raw_line(faulted.output),
            merged_raw_line(undisturbed.output));
}

TEST(CliFleet, PartialOkExits10WithExactAccounting) {
  const std::string dir = checkpoint_dir("cli_fleet_partial_cp");
  const CliRun r = run_cli("fleet " + scenario("scenario2.txt") +
                           " --hosts 4 --shard-hosts 2 --workers 2"
                           " --days 0.1 --checkpoint-dir " + dir +
                           " --harness-faults kill:1@1 --retries 0"
                           " --partial-ok");
  EXPECT_EQ(r.exit_code, 10) << r.output;
  EXPECT_NE(r.output.find("hosts done, 2 lost"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("lost"), std::string::npos) << r.output;
}

TEST(CliFleet, ShardFailureWithoutPartialOkExits11) {
  const std::string dir = checkpoint_dir("cli_fleet_fail_cp");
  const CliRun r = run_cli("fleet " + scenario("scenario2.txt") +
                           " --hosts 4 --shard-hosts 2 --workers 2"
                           " --days 0.1 --checkpoint-dir " + dir +
                           " --harness-faults kill:0@1 --retries 0");
  EXPECT_EQ(r.exit_code, 11) << r.output;
  EXPECT_NE(r.output.find("error: shard"), std::string::npos) << r.output;
}

TEST(CliFleet, PopulationModeRunsWithoutScenario) {
  const CliRun r = run_cli(
      "fleet --hosts 4 --shard-hosts 2 --workers 2 --days 0.1 --seed 3");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("coverage: 4/4 hosts done, 0 lost"),
            std::string::npos)
      << r.output;
}

TEST(CliFleet, BadHarnessFaultSpecIsUsageError) {
  const CliRun r = run_cli("fleet --hosts 2 --harness-faults explode:1@1");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

}  // namespace
