// Unit tests for host availability processes (host/availability): the
// always-on, Markov on/off, and daily-window models, and the three-channel
// host aggregate.

#include <gtest/gtest.h>

#include <cmath>

#include "host/availability.hpp"

namespace bce {
namespace {

TEST(OnOffSpec, ExpectedFractionAlwaysOn) {
  EXPECT_DOUBLE_EQ(OnOffSpec::always_on().expected_on_fraction(), 1.0);
}

TEST(OnOffSpec, ExpectedFractionMarkov) {
  EXPECT_DOUBLE_EQ(OnOffSpec::markov(3.0, 1.0).expected_on_fraction(), 0.75);
}

TEST(OnOffSpec, ExpectedFractionWindow) {
  EXPECT_NEAR(OnOffSpec::daily_window(0, kSecondsPerDay / 4)
                  .expected_on_fraction(),
              0.25, 1e-12);
}

TEST(OnOffSpec, ExpectedFractionWrappedWindow) {
  // ON from 18:00 to 06:00 = half the day, wrapping midnight.
  EXPECT_NEAR(OnOffSpec::daily_window(18 * kSecondsPerHour,
                                      6 * kSecondsPerHour)
                  .expected_on_fraction(),
              0.5, 1e-12);
}

TEST(OnOffProcess, AlwaysOnNeverFlips) {
  OnOffProcess p(OnOffSpec::always_on(), Xoshiro256(1), 0.0);
  EXPECT_TRUE(p.on());
  EXPECT_EQ(p.next_transition(), kNever);
  p.advance_to(1e9);
  EXPECT_TRUE(p.on());
}

TEST(OnOffProcess, MarkovFlipsAlternate) {
  OnOffProcess p(OnOffSpec::markov(1000.0, 500.0), Xoshiro256(2), 0.0);
  bool state = p.on();
  for (int i = 0; i < 100; ++i) {
    const SimTime t = p.next_transition();
    ASSERT_LT(t, kNever);
    p.advance_to(t);
    EXPECT_NE(p.on(), state);
    state = p.on();
  }
}

TEST(OnOffProcess, MarkovLongRunFractionMatches) {
  OnOffProcess p(OnOffSpec::markov(3000.0, 1000.0), Xoshiro256(3), 0.0);
  double on_time = 0.0;
  SimTime t = 0.0;
  const SimTime horizon = 3000.0 * 2000;  // many periods
  while (t < horizon) {
    const SimTime next = std::min(p.next_transition(), horizon);
    if (p.on()) on_time += next - t;
    t = next;
    p.advance_to(t);
  }
  EXPECT_NEAR(on_time / horizon, 0.75, 0.02);
}

TEST(OnOffProcess, MarkovPeriodsAreExponential) {
  // Mean of the ON period lengths should match the spec.
  OnOffProcess p(OnOffSpec::markov(2000.0, 100.0), Xoshiro256(4), 0.0);
  double total_on = 0.0;
  int n_on = 0;
  SimTime t = 0.0;
  for (int i = 0; i < 4000; ++i) {
    const SimTime next = p.next_transition();
    if (p.on()) {
      total_on += next - t;
      ++n_on;
    }
    t = next;
    p.advance_to(t);
  }
  EXPECT_NEAR(total_on / n_on, 2000.0, 100.0);
}

TEST(OnOffProcess, MarkovZeroOffMeanIsAlwaysOn) {
  OnOffProcess p(OnOffSpec::markov(1000.0, 0.0), Xoshiro256(5), 0.0);
  EXPECT_TRUE(p.on());
  EXPECT_EQ(p.next_transition(), kNever);
}

TEST(OnOffProcess, DailyWindowStateAtConstruction) {
  const OnOffSpec spec = OnOffSpec::daily_window(3600.0, 7200.0);
  EXPECT_FALSE(OnOffProcess(spec, Xoshiro256(6), 0.0).on());
  EXPECT_TRUE(OnOffProcess(spec, Xoshiro256(6), 5000.0).on());
  EXPECT_FALSE(OnOffProcess(spec, Xoshiro256(6), 8000.0).on());
}

TEST(OnOffProcess, DailyWindowTransitionsAtBoundaries) {
  OnOffProcess p(OnOffSpec::daily_window(3600.0, 7200.0), Xoshiro256(7), 0.0);
  EXPECT_FALSE(p.on());
  EXPECT_DOUBLE_EQ(p.next_transition(), 3600.0);
  p.advance_to(3600.0);
  EXPECT_TRUE(p.on());
  EXPECT_DOUBLE_EQ(p.next_transition(), 7200.0);
  p.advance_to(7200.0);
  EXPECT_FALSE(p.on());
  // Next ON is tomorrow's window start.
  EXPECT_DOUBLE_EQ(p.next_transition(), kSecondsPerDay + 3600.0);
}

TEST(OnOffProcess, WrappedWindowStateAndBoundaries) {
  const OnOffSpec spec =
      OnOffSpec::daily_window(18 * kSecondsPerHour, 6 * kSecondsPerHour);
  OnOffProcess p(spec, Xoshiro256(8), 0.0);  // midnight: inside the window
  EXPECT_TRUE(p.on());
  EXPECT_DOUBLE_EQ(p.next_transition(), 6 * kSecondsPerHour);
  p.advance_to(6 * kSecondsPerHour);
  EXPECT_FALSE(p.on());
  EXPECT_DOUBLE_EQ(p.next_transition(), 18 * kSecondsPerHour);
}

TEST(OnOffProcess, AdvanceToIsIdempotentBetweenFlips) {
  OnOffProcess p(OnOffSpec::markov(1000.0, 500.0), Xoshiro256(9), 0.0);
  const SimTime next = p.next_transition();
  const bool s = p.on();
  p.advance_to(next - 1.0);
  p.advance_to(next - 0.5);
  EXPECT_EQ(p.on(), s);
  EXPECT_DOUBLE_EQ(p.next_transition(), next);
}

TEST(OnOffProcess, DeterministicGivenStream) {
  OnOffProcess a(OnOffSpec::markov(100.0, 50.0), Xoshiro256(42), 0.0);
  OnOffProcess b(OnOffSpec::markov(100.0, 50.0), Xoshiro256(42), 0.0);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.next_transition(), b.next_transition());
    a.advance_to(a.next_transition());
    b.advance_to(b.next_transition());
    EXPECT_EQ(a.on(), b.on());
  }
}

TEST(OnOffProcess, TraceReplaysSegments) {
  const OnOffSpec spec = OnOffSpec::from_trace(
      {{100.0, true}, {50.0, false}, {30.0, true}});
  OnOffProcess p(spec, Xoshiro256(10), 0.0);
  EXPECT_TRUE(p.on());
  EXPECT_DOUBLE_EQ(p.next_transition(), 100.0);
  p.advance_to(100.0);
  EXPECT_FALSE(p.on());
  EXPECT_DOUBLE_EQ(p.next_transition(), 150.0);
  p.advance_to(150.0);
  EXPECT_TRUE(p.on());
  // Trailing ON segment (30) merges with the cycled head ON segment (100).
  EXPECT_DOUBLE_EQ(p.next_transition(), 280.0);
}

TEST(OnOffProcess, TraceExpectedFraction) {
  const OnOffSpec spec = OnOffSpec::from_trace(
      {{300.0, true}, {100.0, false}});
  EXPECT_DOUBLE_EQ(spec.expected_on_fraction(), 0.75);
}

TEST(OnOffProcess, TraceAllOnNeverFlips) {
  const OnOffSpec spec = OnOffSpec::from_trace({{10.0, true}, {20.0, true}});
  OnOffProcess p(spec, Xoshiro256(11), 0.0);
  EXPECT_TRUE(p.on());
  EXPECT_EQ(p.next_transition(), kNever);
}

TEST(OnOffProcess, WeibullPeriodsMatchMean) {
  OnOffSpec spec = OnOffSpec::markov(2000.0, 100.0);
  spec.dist = PeriodDist::kWeibull;
  spec.shape = 2.0;
  OnOffProcess p(spec, Xoshiro256(12), 0.0);
  double total_on = 0.0;
  int n_on = 0;
  SimTime t = 0.0;
  for (int i = 0; i < 4000; ++i) {
    const SimTime next = p.next_transition();
    if (p.on()) {
      total_on += next - t;
      ++n_on;
    }
    t = next;
    p.advance_to(t);
  }
  EXPECT_NEAR(total_on / n_on, 2000.0, 100.0);
}

TEST(OnOffProcess, LognormalPeriodsMatchMean) {
  OnOffSpec spec = OnOffSpec::markov(2000.0, 100.0);
  spec.dist = PeriodDist::kLognormal;
  spec.shape = 0.8;
  OnOffProcess p(spec, Xoshiro256(13), 0.0);
  double total_on = 0.0;
  int n_on = 0;
  SimTime t = 0.0;
  for (int i = 0; i < 6000; ++i) {
    const SimTime next = p.next_transition();
    if (p.on()) {
      total_on += next - t;
      ++n_on;
    }
    t = next;
    p.advance_to(t);
  }
  EXPECT_NEAR(total_on / n_on, 2000.0, 150.0);
}

TEST(OnOffProcess, WeeklyScheduleHonorsDays) {
  // Active on days 0-4 ("weekdays"), 9:00-17:00.
  const OnOffSpec spec = OnOffSpec::weekly(
      9 * kSecondsPerHour, 17 * kSecondsPerHour,
      {true, true, true, true, true, false, false});
  EXPECT_NEAR(spec.expected_on_fraction(), 5.0 * 8.0 / (7.0 * 24.0), 1e-9);

  OnOffProcess p(spec, Xoshiro256(1), 0.0);  // day 0, midnight
  EXPECT_FALSE(p.on());
  EXPECT_DOUBLE_EQ(p.next_transition(), 9 * kSecondsPerHour);
  p.advance_to(9 * kSecondsPerHour);
  EXPECT_TRUE(p.on());
  p.advance_to(17 * kSecondsPerHour);
  EXPECT_FALSE(p.on());
  // Day 4 (Friday) 17:00 -> next ON is day 7 (the following "Monday").
  p.advance_to(4 * kSecondsPerDay + 17 * kSecondsPerHour);
  EXPECT_FALSE(p.on());
  EXPECT_DOUBLE_EQ(p.next_transition(),
                   7 * kSecondsPerDay + 9 * kSecondsPerHour);
}

TEST(OnOffProcess, WeeklyAllDaysOffIsPermanentlyOff) {
  const OnOffSpec spec = OnOffSpec::weekly(
      0.0, kSecondsPerDay, {false, false, false, false, false, false, false});
  OnOffProcess p(spec, Xoshiro256(2), 0.0);
  EXPECT_FALSE(p.on());
  EXPECT_EQ(p.next_transition(), kNever);
  EXPECT_DOUBLE_EQ(spec.expected_on_fraction(), 0.0);
}

TEST(OnOffProcess, WeeklyStateAtConstructionMidWindow) {
  const OnOffSpec spec = OnOffSpec::weekly(
      9 * kSecondsPerHour, 17 * kSecondsPerHour,
      {true, false, true, false, true, false, true});
  // Day 2 at noon: active day, inside window.
  OnOffProcess p(spec, Xoshiro256(3),
                 2 * kSecondsPerDay + 12 * kSecondsPerHour);
  EXPECT_TRUE(p.on());
  EXPECT_DOUBLE_EQ(p.next_transition(),
                   2 * kSecondsPerDay + 17 * kSecondsPerHour);
  // Day 1 at noon: inactive day.
  OnOffProcess q(spec, Xoshiro256(3),
                 1 * kSecondsPerDay + 12 * kSecondsPerHour);
  EXPECT_FALSE(q.on());
  EXPECT_DOUBLE_EQ(q.next_transition(),
                   2 * kSecondsPerDay + 9 * kSecondsPerHour);
}

TEST(HostAvailability, ChannelSemantics) {
  HostAvailabilitySpec spec;
  spec.host_on = OnOffSpec::daily_window(0.0, 3600.0);     // on first hour
  spec.gpu_allowed = OnOffSpec::daily_window(1800.0, 3600.0);
  Xoshiro256 rng(1);
  HostAvailability av(spec, rng, 0.0);
  EXPECT_TRUE(av.cpu_computing_allowed());
  EXPECT_FALSE(av.gpu_computing_allowed());  // gpu channel off until 1800
  EXPECT_TRUE(av.network_available());
  av.advance_to(1800.0);
  EXPECT_TRUE(av.gpu_computing_allowed());
  av.advance_to(3600.0);
  // Host off: nothing is allowed even though network channel is "on".
  EXPECT_FALSE(av.cpu_computing_allowed());
  EXPECT_FALSE(av.gpu_computing_allowed());
  EXPECT_FALSE(av.network_available());
}

TEST(HostAvailability, NextTransitionIsMinAcrossChannels) {
  HostAvailabilitySpec spec;
  spec.host_on = OnOffSpec::daily_window(0.0, 7200.0);
  spec.gpu_allowed = OnOffSpec::daily_window(0.0, 3600.0);
  Xoshiro256 rng(1);
  HostAvailability av(spec, rng, 0.0);
  EXPECT_DOUBLE_EQ(av.next_transition(), 3600.0);
}

}  // namespace
}  // namespace bce
