// Unit tests for resource-share accounting (client/accounting): short-term
// and long-term debts, REC decay, and the priority functions.

#include <gtest/gtest.h>

#include <cmath>

#include "client/accounting.hpp"
#include "sim/rng.hpp"

namespace bce {
namespace {

PerProc<double> used(double cpu, double nv = 0.0) {
  PerProc<double> u{};
  u[ProcType::kCpu] = cpu;
  u[ProcType::kNvidia] = nv;
  return u;
}

PerProc<bool> runnable_cpu(bool yes) {
  PerProc<bool> r{};
  r[ProcType::kCpu] = yes;
  return r;
}

TEST(Accounting, DebtAccruesToUnderservedProject) {
  const HostInfo h = HostInfo::cpu_only(1, 1e9);
  Accounting a(h, {0.5, 0.5}, kSecondsPerDay);
  // Project 0 used the whole CPU for 100 s; both had runnable jobs.
  a.charge(100.0, 100.0, {used(100.0), used(0.0)},
           {runnable_cpu(true), runnable_cpu(true)});
  EXPECT_LT(a.debt(0, ProcType::kCpu), 0.0);
  EXPECT_GT(a.debt(1, ProcType::kCpu), 0.0);
  // Zero-sum across eligible projects.
  EXPECT_NEAR(a.debt(0, ProcType::kCpu) + a.debt(1, ProcType::kCpu), 0.0,
              1e-9);
}

TEST(Accounting, BalancedUsageKeepsDebtsZero) {
  const HostInfo h = HostInfo::cpu_only(2, 1e9);
  Accounting a(h, {0.5, 0.5}, kSecondsPerDay);
  for (int i = 0; i < 10; ++i) {
    a.charge(i * 10.0, 10.0, {used(10.0), used(10.0)},
             {runnable_cpu(true), runnable_cpu(true)});
  }
  EXPECT_NEAR(a.debt(0, ProcType::kCpu), 0.0, 1e-9);
  EXPECT_NEAR(a.debt(1, ProcType::kCpu), 0.0, 1e-9);
}

TEST(Accounting, UnequalSharesAccrueProportionally) {
  const HostInfo h = HostInfo::cpu_only(1, 1e9);
  Accounting a(h, {0.75, 0.25}, kSecondsPerDay);
  // Nobody uses anything; both have runnable jobs: debts stay centered but
  // relative accrual is 3:1 before normalization, so after normalization
  // p0 gains (0.75-0.5)*dt etc.
  a.charge(100.0, 100.0, {used(0.0), used(0.0)},
           {runnable_cpu(true), runnable_cpu(true)});
  EXPECT_GT(a.debt(0, ProcType::kCpu), a.debt(1, ProcType::kCpu));
}

TEST(Accounting, ShortTermDebtFrozenWithoutRunnableJobs) {
  const HostInfo h = HostInfo::cpu_only(1, 1e9);
  Accounting a(h, {0.5, 0.5}, kSecondsPerDay);
  // Project 1 has no runnable jobs: its short-term debt must not grow.
  a.charge(100.0, 100.0, {used(100.0), used(0.0)},
           {runnable_cpu(true), runnable_cpu(false)});
  EXPECT_NEAR(a.debt(1, ProcType::kCpu), 0.0, 1e-9);
}

TEST(Accounting, LongTermDebtGrowsByCapabilityEvenWithEmptyQueue) {
  const HostInfo h = HostInfo::cpu_only(1, 1e9);
  std::vector<PerProc<bool>> cap(2);
  cap[0][ProcType::kCpu] = cap[1][ProcType::kCpu] = true;
  Accounting a(h, {0.5, 0.5}, kSecondsPerDay, cap);
  a.charge(100.0, 100.0, {used(100.0), used(0.0)},
           {runnable_cpu(true), runnable_cpu(false)});
  EXPECT_GT(a.long_term_debt(1, ProcType::kCpu), 0.0);
  EXPECT_GT(a.prio_fetch_local(1), a.prio_fetch_local(0));
}

TEST(Accounting, DebtIsCapped) {
  const HostInfo h = HostInfo::cpu_only(1, 1e9);
  Accounting a(h, {0.5, 0.5}, kSecondsPerDay);
  // Project 0 hogs the CPU for many days.
  for (int i = 0; i < 100; ++i) {
    a.charge(i * kSecondsPerDay, kSecondsPerDay, {used(kSecondsPerDay), used(0.0)},
             {runnable_cpu(true), runnable_cpu(true)});
  }
  EXPECT_LE(std::abs(a.debt(0, ProcType::kCpu)), kSecondsPerDay + 1.0);
  EXPECT_LE(std::abs(a.debt(1, ProcType::kCpu)), kSecondsPerDay + 1.0);
}

TEST(Accounting, RecAccumulatesPeakFlops) {
  const HostInfo h = HostInfo::cpu_gpu(4, 1e9, 1, 10e9);
  Accounting a(h, {0.5, 0.5}, kNever);
  // P0: 100 CPU-inst-sec; P1: 10 GPU-inst-sec (same FLOPs).
  a.charge(100.0, 100.0, {used(100.0), used(0.0, 10.0)},
           {runnable_cpu(true), runnable_cpu(true)});
  EXPECT_DOUBLE_EQ(a.rec(0), 100.0 * 1e9);
  EXPECT_DOUBLE_EQ(a.rec(1), 10.0 * 10e9);
}

TEST(Accounting, RecDecaysWithHalfLife) {
  const HostInfo h = HostInfo::cpu_only(1, 1e9);
  Accounting a(h, {1.0}, 1000.0);
  a.charge(0.0, 1.0, {used(1.0)}, {runnable_cpu(true)});
  const double before = a.rec(0);
  a.charge(1000.0, 1.0, {used(0.0)}, {runnable_cpu(true)});
  EXPECT_NEAR(a.rec(0), before / 2.0, before * 1e-6);
}

TEST(Accounting, PrioGlobalFavorsUnderservedProject) {
  const HostInfo h = HostInfo::cpu_only(1, 1e9);
  Accounting a(h, {0.5, 0.5}, kSecondsPerDay);
  a.charge(100.0, 100.0, {used(100.0), used(0.0)},
           {runnable_cpu(true), runnable_cpu(true)});
  EXPECT_LT(a.prio_global(0), a.prio_global(1));
  // P1 got nothing: rec_frac 0 -> prio = share.
  EXPECT_NEAR(a.prio_global(1), 0.5, 1e-12);
  EXPECT_NEAR(a.prio_global(0), -0.5, 1e-12);
}

TEST(Accounting, PrioGlobalZeroUsageEqualsShares) {
  const HostInfo h = HostInfo::cpu_only(1, 1e9);
  Accounting a(h, {0.7, 0.3}, kSecondsPerDay);
  EXPECT_DOUBLE_EQ(a.prio_global(0), 0.7);
  EXPECT_DOUBLE_EQ(a.prio_global(1), 0.3);
}

TEST(Accounting, PrioGlobalBalancedUsageIsZero) {
  const HostInfo h = HostInfo::cpu_only(2, 1e9);
  Accounting a(h, {0.5, 0.5}, kSecondsPerDay);
  a.charge(10.0, 10.0, {used(10.0), used(10.0)},
           {runnable_cpu(true), runnable_cpu(true)});
  EXPECT_NEAR(a.prio_global(0), 0.0, 1e-12);
  EXPECT_NEAR(a.prio_global(1), 0.0, 1e-12);
}

TEST(Accounting, FetchPrioWeightsGpuDebtByFlops) {
  const HostInfo h = HostInfo::cpu_gpu(4, 1e9, 1, 10e9);
  std::vector<PerProc<bool>> cap(2);
  for (auto& c : cap) {
    c[ProcType::kCpu] = true;
    c[ProcType::kNvidia] = true;
  }
  Accounting a(h, {0.5, 0.5}, kSecondsPerDay, cap);
  // P0 uses the GPU exclusively; GPU debt dominates the fetch priority
  // because the GPU is 10x the FLOPS of a CPU.
  a.charge(100.0, 100.0, {used(0.0, 100.0), used(0.0, 0.0)},
           {runnable_cpu(true), runnable_cpu(true)});
  EXPECT_GT(a.prio_fetch_local(1), a.prio_fetch_local(0));
}

/// Property sweep: after any usage pattern, eligible short-term debts stay
/// (approximately) zero-sum.
class DebtZeroSum : public ::testing::TestWithParam<int> {};

TEST_P(DebtZeroSum, EligibleDebtsSumToZero) {
  const HostInfo h = HostInfo::cpu_only(4, 1e9);
  const int n = 3;
  Accounting a(h, {0.5, 0.3, 0.2}, kSecondsPerDay);
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()));
  for (int step = 0; step < 50; ++step) {
    std::vector<PerProc<double>> use(n);
    std::vector<PerProc<bool>> run(n);
    for (int p = 0; p < n; ++p) {
      run[p][ProcType::kCpu] = true;  // all eligible
      use[p][ProcType::kCpu] = rng.uniform(0.0, 40.0);
    }
    a.charge(step * 10.0, 10.0, use, run);
  }
  double sum = 0.0;
  for (int p = 0; p < n; ++p) sum += a.debt(p, ProcType::kCpu);
  // Sum is re-centered on every charge; capping can leave a small residue.
  EXPECT_NEAR(sum, 0.0, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DebtZeroSum, ::testing::Range(1, 6));

}  // namespace
}  // namespace bce
