// Unit tests for the input-file transfer scheduler (client/transfer).

#include <gtest/gtest.h>

#include <algorithm>

#include "client/transfer.hpp"

namespace bce {
namespace {

TEST(Transfer, UnmodeledLinkCompletesInstantly) {
  TransferManager tm(0.0, TransferOrder::kFairShare);
  EXPECT_TRUE(tm.add(1, 1e9, 100.0, 0.0));
  EXPECT_EQ(tm.pending(), 0u);
  EXPECT_FALSE(tm.modeled());
}

TEST(Transfer, ZeroBytesCompletesInstantly) {
  TransferManager tm(1e6, TransferOrder::kFairShare);
  EXPECT_TRUE(tm.add(1, 0.0, 100.0, 0.0));
  EXPECT_EQ(tm.pending(), 0u);
}

TEST(Transfer, SingleTransferTiming) {
  TransferManager tm(1e6, TransferOrder::kFairShare);
  EXPECT_FALSE(tm.add(1, 5e6, 1e9, 0.0));  // 5 s at 1 MB/s
  EXPECT_DOUBLE_EQ(tm.next_completion(true), 5.0);
  tm.advance_to(5.0, true);
  const auto done = tm.take_completed();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 1);
  EXPECT_EQ(tm.pending(), 0u);
}

TEST(Transfer, FairShareSplitsBandwidth) {
  TransferManager tm(1e6, TransferOrder::kFairShare);
  tm.add(1, 4e6, 1e9, 0.0);
  tm.add(2, 4e6, 1e9, 0.0);
  // Each gets 0.5 MB/s: both finish at 8 s.
  EXPECT_DOUBLE_EQ(tm.next_completion(true), 8.0);
  tm.advance_to(8.0, true);
  EXPECT_EQ(tm.take_completed().size(), 2u);
}

TEST(Transfer, FairShareSpeedsUpAfterFirstCompletion) {
  TransferManager tm(1e6, TransferOrder::kFairShare);
  tm.add(1, 2e6, 1e9, 0.0);
  tm.add(2, 6e6, 1e9, 0.0);
  // Shared until job 1 finishes at 4 s (2e6 at 0.5 MB/s); job 2 then has
  // 4e6 left at full speed: total 8 s.
  tm.advance_to(4.0, true);
  EXPECT_EQ(tm.take_completed().size(), 1u);
  EXPECT_DOUBLE_EQ(tm.next_completion(true), 8.0);
  tm.advance_to(8.0, true);
  EXPECT_EQ(tm.take_completed().size(), 1u);
}

TEST(Transfer, FifoServesArrivalOrder) {
  TransferManager tm(1e6, TransferOrder::kFifo);
  tm.add(1, 3e6, 1e9, 0.0);
  tm.add(2, 1e6, 10.0, 0.0);  // tighter deadline, but FIFO ignores it
  tm.advance_to(3.0, true);
  auto done = tm.take_completed();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 1);
  tm.advance_to(4.0, true);
  done = tm.take_completed();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 2);
}

TEST(Transfer, EdfServesEarliestDeadlineFirst) {
  TransferManager tm(1e6, TransferOrder::kEdf);
  tm.add(1, 3e6, 1000.0, 0.0);
  tm.add(2, 1e6, 10.0, 0.0);  // later arrival, earlier deadline
  tm.advance_to(1.0, true);
  auto done = tm.take_completed();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 2);
  EXPECT_DOUBLE_EQ(tm.next_completion(true), 4.0);
}

TEST(Transfer, NetworkOutagePausesProgress) {
  TransferManager tm(1e6, TransferOrder::kFifo);
  tm.add(1, 4e6, 1e9, 0.0);
  tm.advance_to(2.0, true);            // 2e6 done
  tm.advance_to(10.0, false);          // outage: nothing happens
  EXPECT_EQ(tm.take_completed().size(), 0u);
  EXPECT_EQ(tm.pending(), 1u);
  EXPECT_EQ(tm.next_completion(false), kNever);
  // Back online: 2e6 left -> finishes 2 s later.
  EXPECT_DOUBLE_EQ(tm.next_completion(true), 12.0);
  tm.advance_to(12.0, true);
  EXPECT_EQ(tm.take_completed().size(), 1u);
}

TEST(Transfer, NextCompletionNeverWhenEmpty) {
  TransferManager tm(1e6, TransferOrder::kFairShare);
  EXPECT_EQ(tm.next_completion(true), kNever);
}

TEST(Transfer, ManyTransfersAllComplete) {
  TransferManager tm(1e6, TransferOrder::kFairShare);
  double total_bytes = 0.0;
  for (int i = 0; i < 10; ++i) {
    const double bytes = 1e5 * (i + 1);
    total_bytes += bytes;
    tm.add(i, bytes, 1e9, 0.0);
  }
  const double t_all = total_bytes / 1e6;  // work-conserving link
  tm.advance_to(t_all + 1e-6, true);
  EXPECT_EQ(tm.take_completed().size(), 10u);
  EXPECT_EQ(tm.pending(), 0u);
}

// --- Fault injection (FaultPlan::transfer_error_rate) ------------------

TEST(TransferFaults, CertainFailureRetriesAfterBackoff) {
  // error_rate 1: every attempt fails partway; the transfer only finishes
  // because the fail point is drawn per *attempt* and resumable attempts
  // keep their bytes.
  TransferManager tm(1e6, TransferOrder::kFairShare, 1.0, 10.0, 40.0,
                    Xoshiro256(3));
  tm.add(1, 2e6, 1e9, 0.0, /*resumable=*/true);
  SimTime t = 0.0;
  int steps = 0;
  while (tm.pending() > 0 && steps < 10000) {
    const SimTime next = tm.next_completion(true);
    ASSERT_LT(next, kNever);
    t = std::max(t + 1e-3, next);
    tm.advance_to(t, true);
    ++steps;
  }
  EXPECT_EQ(tm.pending(), 0u);
  EXPECT_EQ(tm.take_completed().size(), 1u);
  EXPECT_GT(tm.retries(), 0);
}

TEST(TransferFaults, BackoffWaitsOutRetryWindow) {
  TransferManager tm(1e6, TransferOrder::kFairShare, 1.0, 100.0, 3600.0,
                    Xoshiro256(3));
  tm.add(1, 2e6, 1e9, 0.0);
  // First attempt fails somewhere inside the first 2 s of link time.
  const SimTime fail_at = tm.next_completion(true);
  ASSERT_LT(fail_at, 2.0 + 1e-9);
  tm.advance_to(fail_at, true);
  EXPECT_EQ(tm.retries(), 1);
  // While backed off the transfer moves no bytes and the next event is the
  // retry expiry, at least retry_min away.
  const SimTime retry = tm.next_completion(true);
  EXPECT_GE(retry, fail_at + 100.0 - 1e-9);
  tm.advance_to(retry - 1.0, true);
  EXPECT_EQ(tm.take_completed().size(), 0u);
  EXPECT_EQ(tm.retries(), 1);
}

TEST(TransferFaults, NonResumableRestartsFromZero) {
  // With a certain per-attempt failure, a resumable transfer converges
  // (the remaining bytes shrink with every attempt) while a restart-from-
  // zero transfer faces the same full 2 MB every attempt and never does.
  TransferManager res(1e6, TransferOrder::kFairShare, 1.0, 10.0, 10.0,
                      Xoshiro256(9));
  TransferManager raw(1e6, TransferOrder::kFairShare, 1.0, 10.0, 10.0,
                      Xoshiro256(9));
  res.add(1, 2e6, 1e9, 0.0, /*resumable=*/true);
  raw.add(1, 2e6, 1e9, 0.0, /*resumable=*/false);
  for (SimTime t = 1.0; t < 2000.0; t += 1.0) {
    res.advance_to(t, true);
    raw.advance_to(t, true);
  }
  EXPECT_EQ(res.pending(), 0u);
  EXPECT_EQ(res.take_completed().size(), 1u);
  EXPECT_EQ(raw.pending(), 1u);
  EXPECT_GT(raw.retries(), 0);
}

TEST(TransferFaults, ZeroRateMatchesFaultFreeManager) {
  // A zero error rate must not consume RNG draws or perturb timing.
  TransferManager plain(1e6, TransferOrder::kFairShare);
  TransferManager faulted(1e6, TransferOrder::kFairShare, 0.0, 60.0, 3600.0,
                          Xoshiro256(5));
  plain.add(1, 4e6, 1e9, 0.0);
  faulted.add(1, 4e6, 1e9, 0.0);
  EXPECT_EQ(plain.next_completion(true), faulted.next_completion(true));
  plain.advance_to(4.0, true);
  faulted.advance_to(4.0, true);
  EXPECT_EQ(plain.take_completed(), faulted.take_completed());
  EXPECT_EQ(faulted.retries(), 0);
}

TEST(Transfer, CompletionOrderIsDeterministic) {
  for (const auto order :
       {TransferOrder::kFairShare, TransferOrder::kFifo, TransferOrder::kEdf}) {
    TransferManager a(1e6, order);
    TransferManager b(1e6, order);
    for (int i = 0; i < 5; ++i) {
      a.add(i, 1e6 * (5 - i), 100.0 * i + 10.0, 0.0);
      b.add(i, 1e6 * (5 - i), 100.0 * i + 10.0, 0.0);
    }
    a.advance_to(100.0, true);
    b.advance_to(100.0, true);
    EXPECT_EQ(a.take_completed(), b.take_completed());
  }
}

}  // namespace
}  // namespace bce
