// Unit and integration tests for the typed decision-trace pipeline
// (sim/trace): kind/category mappings, sink behavior, JSONL round-trips,
// and cross-thread byte-identity of emulator traces.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/bce.hpp"

namespace bce {
namespace {

TEST(Trace, KindNamesRoundTrip) {
  for (std::size_t i = 0; i < kNumTraceKinds; ++i) {
    const auto k = static_cast<TraceKind>(i);
    EXPECT_STRNE(trace_kind_name(k), "?") << i;
    TraceKind back = TraceKind::kCount_;
    ASSERT_TRUE(trace_kind_from_name(trace_kind_name(k), &back)) << i;
    EXPECT_EQ(back, k);
  }
  TraceKind out;
  EXPECT_FALSE(trace_kind_from_name("bogus", &out));
  EXPECT_FALSE(trace_kind_from_name("", &out));
}

TEST(Trace, KindCategories) {
  EXPECT_EQ(trace_kind_category(TraceKind::kJobStarted), LogCategory::kTask);
  EXPECT_EQ(trace_kind_category(TraceKind::kSchedulePass),
            LogCategory::kCpuSched);
  EXPECT_EQ(trace_kind_category(TraceKind::kRrSimType), LogCategory::kRrSim);
  EXPECT_EQ(trace_kind_category(TraceKind::kFetchRequest),
            LogCategory::kWorkFetch);
  EXPECT_EQ(trace_kind_category(TraceKind::kRpcRoundTrip), LogCategory::kRpc);
  EXPECT_EQ(trace_kind_category(TraceKind::kAvailability), LogCategory::kAvail);
  EXPECT_EQ(trace_kind_category(TraceKind::kServerSent), LogCategory::kServer);
  EXPECT_EQ(trace_kind_category(TraceKind::kHostCrash), LogCategory::kFault);
}

TEST(Trace, WantsRequiresSinkAndEnabledCategory) {
  Trace trace;
  EXPECT_FALSE(trace.wants(LogCategory::kTask));  // no sinks, nothing enabled
  trace.enable_all();
  EXPECT_FALSE(trace.wants(LogCategory::kTask));  // enabled but sink-less
  CounterSink counters;
  trace.add_sink(&counters);
  EXPECT_TRUE(trace.wants(LogCategory::kTask));
  trace.enable(LogCategory::kTask, false);
  EXPECT_FALSE(trace.wants(LogCategory::kTask));
  EXPECT_TRUE(trace.wants(LogCategory::kRpc));
}

TEST(Trace, EmitFiltersByCategory) {
  Trace trace;
  CounterSink counters;
  trace.add_sink(&counters);
  trace.enable(LogCategory::kTask);

  trace.emit({.at = 1.0, .kind = TraceKind::kJobStarted, .job = 1});
  trace.emit({.at = 2.0, .kind = TraceKind::kJobCompleted, .job = 1});
  trace.emit({.at = 3.0, .kind = TraceKind::kRpcRoundTrip, .project = 0});

  EXPECT_EQ(counters.counts()[static_cast<std::size_t>(LogCategory::kTask)], 2);
  EXPECT_EQ(counters.counts()[static_cast<std::size_t>(LogCategory::kRpc)], 0);
  counters.reset();
  EXPECT_EQ(counters.counts()[static_cast<std::size_t>(LogCategory::kTask)], 0);
}

TEST(Trace, TextSinkRendersClassicLogLine) {
  std::ostringstream os;
  Trace trace;
  TextSink sink(os);
  trace.add_sink(&sink);
  trace.enable_all();
  trace.emit({.at = 120.0, .kind = TraceKind::kJobStarted, .project = 2,
              .job = 7});
  EXPECT_EQ(os.str(), "[     120.0] [task] job 7 started (project 2)\n");
}

TEST(Trace, LoggerSinkHonorsLoggerCategoryFilter) {
  Logger log;
  log.set_retain(true);
  log.enable(LogCategory::kTask);  // logger narrower than the trace

  Trace trace;
  LoggerSink sink(log);
  trace.add_sink(&sink);
  trace.enable_all();
  trace.emit({.at = 1.0, .kind = TraceKind::kJobStarted, .project = 0,
              .job = 3});
  trace.emit({.at = 2.0, .kind = TraceKind::kRpcRoundTrip, .project = 0,
              .n = 1, .m = 2});

  ASSERT_EQ(log.entries().size(), 1u);
  EXPECT_EQ(log.entries()[0].text, "job 3 started (project 0)");
  EXPECT_EQ(log.entries()[0].category, LogCategory::kTask);
}

TEST(Trace, ForwarderAppliesTargetFilter) {
  Trace inner;
  CounterSink counters;
  inner.add_sink(&counters);
  inner.enable(LogCategory::kRpc);  // inner narrower than outer

  Trace outer;
  TraceForwarder forward(inner);
  outer.add_sink(&forward);
  outer.enable_all();
  outer.emit({.at = 1.0, .kind = TraceKind::kJobStarted, .job = 1});
  outer.emit({.at = 2.0, .kind = TraceKind::kRpcRoundTrip, .project = 1});

  EXPECT_EQ(counters.counts()[static_cast<std::size_t>(LogCategory::kTask)], 0);
  EXPECT_EQ(counters.counts()[static_cast<std::size_t>(LogCategory::kRpc)], 1);
}

TEST(Trace, JsonRoundTripsEveryKind) {
  for (std::size_t i = 0; i < kNumTraceKinds; ++i) {
    TraceEvent ev{.at = 86400.5,
                  .kind = static_cast<TraceKind>(i),
                  .project = 3,
                  .job = 41,
                  .ptype = 1,
                  .flag = (i % 2) == 0,
                  .n = 12,
                  .m = -7,
                  .v0 = 0.1,
                  .v1 = -1e9,
                  .v2 = 1.0 / 3.0,
                  .str = (i % 3) == 0 ? "project \"x\"\\y\n\tz" : nullptr};
    const std::string line = trace_event_to_json(ev);
    ParsedTraceEvent parsed;
    ASSERT_TRUE(trace_event_from_json(line, &parsed)) << line;
    EXPECT_EQ(parsed.ev.kind, ev.kind);
    EXPECT_EQ(parsed.ev.at, ev.at);
    EXPECT_EQ(parsed.ev.project, ev.project);
    EXPECT_EQ(parsed.ev.job, ev.job);
    EXPECT_EQ(parsed.ev.ptype, ev.ptype);
    EXPECT_EQ(parsed.ev.flag, ev.flag);
    EXPECT_EQ(parsed.ev.n, ev.n);
    EXPECT_EQ(parsed.ev.m, ev.m);
    EXPECT_EQ(parsed.ev.v0, ev.v0);
    EXPECT_EQ(parsed.ev.v1, ev.v1);
    EXPECT_EQ(parsed.ev.v2, ev.v2);
    EXPECT_EQ(parsed.has_str, ev.str != nullptr);
    if (ev.str != nullptr) {
      EXPECT_EQ(parsed.str, std::string(ev.str));
    }
    // %.17g doubles and exact escaping: re-serialization is byte-identical.
    EXPECT_EQ(trace_event_to_json(parsed.ev), line);
  }
}

TEST(Trace, MalformedJsonRejected) {
  ParsedTraceEvent parsed;
  EXPECT_FALSE(trace_event_from_json("", &parsed));
  EXPECT_FALSE(trace_event_from_json("{}", &parsed));
  EXPECT_FALSE(trace_event_from_json("{\"kind\":\"nope\"}", &parsed));
  EXPECT_FALSE(trace_event_from_json(
      "{\"kind\":\"job_started\",\"at\":1.0}", &parsed));  // missing fields
  EXPECT_FALSE(trace_event_from_json(
      "{\"kind\":\"job_started\",\"at\":1.0,\"project\":0,\"job\":0,"
      "\"ptype\":-1,\"flag\":maybe,\"n\":0,\"m\":0,\"v0\":0,\"v1\":0,"
      "\"v2\":0,\"str\":null}",
      &parsed));  // bad bool
}

// --- emulator integration ------------------------------------------------

/// JSONL trace of one emulation run, plus its Metrics.
struct TracedRun {
  std::string jsonl;
  Metrics metrics;
};

TracedRun traced_run(const Scenario& sc, PolicyConfig policy = {}) {
  std::ostringstream os;
  Trace trace;
  JsonlSink sink(os);
  trace.add_sink(&sink);
  trace.enable_all();
  EmulationOptions opt;
  opt.policy = policy;
  opt.trace = &trace;
  const EmulationResult res = emulate(sc, opt);
  return {os.str(), res.metrics};
}

TEST(TraceEmulator, EveryTraceLineParsesAndRoundTrips) {
  // A (shortened) scenario-3 trace: long low-slack jobs plus normal jobs
  // exercise task, cpu_sched, rr_sim, work_fetch, rpc, and server events.
  Scenario sc = paper_scenario3();
  sc.duration = 3.0 * kSecondsPerDay;
  const TracedRun run = traced_run(sc);

  std::istringstream is(run.jsonl);
  std::string line;
  std::int64_t n_lines = 0;
  while (std::getline(is, line)) {
    ParsedTraceEvent parsed;
    ASSERT_TRUE(trace_event_from_json(line, &parsed)) << line;
    EXPECT_EQ(trace_event_to_json(parsed.ev), line);
    ++n_lines;
  }
  EXPECT_GT(n_lines, 0);

  // The per-category counters folded into Metrics account for exactly the
  // events that reached the JSONL sink.
  std::int64_t counted = 0;
  for (const auto c : run.metrics.trace_events) counted += c;
  EXPECT_EQ(counted, n_lines);
}

TEST(TraceEmulator, UntracedRunReportsZeroTraceEvents) {
  Scenario sc = paper_scenario1(1500.0);
  sc.duration = 1.0 * kSecondsPerDay;
  const EmulationResult res = emulate(sc, EmulationOptions{});
  for (const auto c : res.metrics.trace_events) EXPECT_EQ(c, 0);
}

TEST(TraceEmulator, TraceBytesIdenticalAcrossThreadCounts) {
  // The same three runs traced under --threads 1 and --threads 8 must
  // produce byte-identical JSONL (traces depend only on (scenario, policy,
  // seed), never on batch scheduling).
  const PolicyConfig policies[3] = {
      {},
      {.sched = JobSchedPolicy::kGlobal, .fetch = FetchPolicy::kHysteresis},
      {.sched = JobSchedPolicy::kWrr, .fetch = FetchPolicy::kRoundRobin},
  };

  auto run_all = [&policies](unsigned n_threads) {
    struct Capture {
      std::ostringstream os;
      Trace trace;
      JsonlSink sink{os};
    };
    std::vector<std::unique_ptr<Capture>> caps;
    std::vector<RunSpec> specs;
    for (const auto& policy : policies) {
      auto cap = std::make_unique<Capture>();
      cap->trace.add_sink(&cap->sink);
      cap->trace.enable_all();
      RunSpec spec;
      spec.scenario = paper_scenario1(1500.0);
      spec.scenario.duration = 1.0 * kSecondsPerDay;
      spec.options.policy = policy;
      spec.options.trace = &cap->trace;
      specs.push_back(std::move(spec));
      caps.push_back(std::move(cap));
    }
    run_batch(specs, n_threads);
    std::vector<std::string> out;
    out.reserve(caps.size());
    for (const auto& cap : caps) out.push_back(cap->os.str());
    return out;
  };

  const std::vector<std::string> serial = run_all(1);
  const std::vector<std::string> parallel = run_all(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_FALSE(serial[i].empty()) << i;
    EXPECT_EQ(serial[i], parallel[i]) << "trace diverged for run " << i;
  }
}

}  // namespace
}  // namespace bce
