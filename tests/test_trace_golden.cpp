// Byte-identity of the refactored trace pipeline against the pre-refactor
// Logger output. The hashes below were captured from the seed code (printf
// call sites inside the emulator) immediately before the TraceEvent
// refactor: full "--log all" message logs of scenarios 1-4 plus a
// fault-heavy variant, under three policy pairs. The refactored pipeline
// (TraceEvent -> render_text -> LoggerSink/TextSink) must reproduce every
// stream byte-for-byte.

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <sstream>
#include <string>
#include <vector>

#include "core/bce.hpp"

namespace bce {
namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

struct GoldenRow {
  const char* scenario;
  const char* policy;
  std::size_t size;
  std::uint64_t hash;
};

// Captured from the pre-refactor seed (see file comment).
constexpr GoldenRow kGolden[] = {
    {"s1", "wrr_orig", 685217u, 0xe136ddb29b51d561ull},
    {"s1", "global_hyst", 540872u, 0xb576d0a0caf2c0b1ull},
    {"s1", "edf_rr", 532752u, 0x4e9a92b54d2d8923ull},
    {"s2", "wrr_orig", 1274744u, 0x1e8bebf1c905f8d0ull},
    {"s2", "global_hyst", 1869879u, 0x50399628a9bbf847ull},
    {"s2", "edf_rr", 1810616u, 0x59f9e65afb19a143ull},
    {"s3", "wrr_orig", 1270369u, 0xcdf386725be24e34ull},
    {"s3", "global_hyst", 1270377u, 0x7db575bda1292844ull},
    {"s3", "edf_rr", 1270369u, 0xa1a5632c64a6c26full},
    {"s4", "wrr_orig", 2722301u, 0x5732e0b907665ed1ull},
    {"s4", "global_hyst", 5779304u, 0x1be24d823dd4f04cull},
    {"s4", "edf_rr", 4587058u, 0x8f0a55f34e9430a9ull},
    {"s1_faulty", "wrr_orig", 664893u, 0x15e776bb0689c493ull},
    {"s1_faulty", "global_hyst", 552023u, 0x21fe42136472bb03ull},
    {"s1_faulty", "edf_rr", 543806u, 0xc6725c4992a8fc01ull},
};

struct NamedScenario {
  const char* name;
  Scenario sc;
};

std::vector<NamedScenario> golden_scenarios() {
  std::vector<NamedScenario> out;
  auto add = [&out](const char* name, Scenario sc, double days) {
    sc.duration = days * kSecondsPerDay;
    out.push_back({name, std::move(sc)});
  };
  add("s1", paper_scenario1(1500.0), 2.0);
  add("s2", paper_scenario2(), 2.0);
  add("s3", paper_scenario3(), 6.0);
  add("s4", paper_scenario4(), 2.0);
  Scenario f = paper_scenario1(1500.0);
  f.faults = FaultPlan::heavy();
  add("s1_faulty", f, 2.0);
  return out;
}

struct PolicyPair {
  const char* name;
  JobSchedPolicy sched;
  FetchPolicy fetch;
};

constexpr PolicyPair kPairs[] = {
    {"wrr_orig", JobSchedPolicy::kWrr, FetchPolicy::kOrig},
    {"global_hyst", JobSchedPolicy::kGlobal, FetchPolicy::kHysteresis},
    {"edf_rr", JobSchedPolicy::kEdfOnly, FetchPolicy::kRoundRobin},
};

TEST(TraceGolden, LoggerSinkMatchesSeedOutput) {
  const auto scenarios = golden_scenarios();

  // One (scenario, pair) run per golden row, batched across cores. The
  // Logger/stream objects live in deques so the pointers stored in the
  // specs stay valid while the batch runs.
  std::deque<Logger> logs;
  std::deque<std::ostringstream> streams;
  std::vector<RunSpec> specs;
  for (const auto& s : scenarios) {
    for (const auto& p : kPairs) {
      RunSpec spec;
      spec.label = std::string(s.name) + "/" + p.name;
      spec.scenario = s.sc;
      spec.options.policy.sched = p.sched;
      spec.options.policy.fetch = p.fetch;
      Logger& log = logs.emplace_back();
      log.enable_all();
      log.set_stream(&streams.emplace_back());
      spec.options.logger = &log;
      specs.push_back(std::move(spec));
    }
  }
  run_batch(specs);

  ASSERT_EQ(specs.size(), std::size(kGolden));
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const std::string text = streams[i].str();
    EXPECT_EQ(text.size(), kGolden[i].size)
        << specs[i].label << ": log size changed";
    EXPECT_EQ(fnv1a(text), kGolden[i].hash)
        << specs[i].label << ": log bytes changed";
  }
}

// The standalone TextSink renders the same "[time] [cat] body" lines as the
// Logger path; pin one golden row through it as well.
TEST(TraceGolden, TextSinkMatchesSeedOutput) {
  Scenario sc = paper_scenario1(1500.0);
  sc.duration = 2.0 * kSecondsPerDay;

  std::ostringstream os;
  Trace trace;
  TextSink sink(os);
  trace.add_sink(&sink);
  trace.enable_all();
  EmulationOptions opt;
  opt.trace = &trace;
  opt.policy.sched = JobSchedPolicy::kWrr;
  opt.policy.fetch = FetchPolicy::kOrig;
  emulate(sc, opt);

  const std::string text = os.str();
  EXPECT_EQ(text.size(), kGolden[0].size);
  EXPECT_EQ(fnv1a(text), kGolden[0].hash);
}

}  // namespace
}  // namespace bce
