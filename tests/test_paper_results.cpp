// Regression tests for the paper's headline results (§5, Figures 3-6),
// run on shortened horizons so ctest stays fast. These pin the *shape* of
// each result: who wins and roughly by how much.

#include <gtest/gtest.h>

#include "core/controller.hpp"
#include "core/emulator.hpp"
#include "core/paper_scenarios.hpp"
#include "core/report.hpp"

namespace bce {
namespace {

Metrics run(Scenario sc, PolicyConfig pol, double days) {
  sc.duration = days * kSecondsPerDay;
  EmulationOptions opt;
  opt.policy = pol;
  return emulate(sc, opt).metrics;
}

TEST(PaperScenarios, AllValidate) {
  std::string err;
  EXPECT_TRUE(paper_scenario1(1000.0).validate(&err)) << err;
  EXPECT_TRUE(paper_scenario1(2000.0).validate(&err)) << err;
  EXPECT_TRUE(paper_scenario2().validate(&err)) << err;
  EXPECT_TRUE(paper_scenario3().validate(&err)) << err;
  EXPECT_TRUE(paper_scenario4().validate(&err)) << err;
}

TEST(PaperScenarios, Scenario4HasTwentyVariedProjects) {
  const Scenario sc = paper_scenario4();
  EXPECT_EQ(sc.projects.size(), 20u);
  bool cpu_only = false;
  bool gpu_only = false;
  bool both = false;
  for (const auto& p : sc.projects) {
    const bool c = p.has_jobs_for(ProcType::kCpu);
    const bool g = p.has_jobs_for(ProcType::kNvidia);
    cpu_only |= c && !g;
    gpu_only |= g && !c;
    both |= c && g;
  }
  EXPECT_TRUE(cpu_only);
  EXPECT_TRUE(gpu_only);
  EXPECT_TRUE(both);
}

// --- Figure 3: EDF reduces waste ---------------------------------------

TEST(Figure3, ZeroSlackWastesHalfUnderWrr) {
  PolicyConfig wrr;
  wrr.sched = JobSchedPolicy::kWrr;
  wrr.fetch = FetchPolicy::kOrig;
  const Metrics m = run(paper_scenario1(1000.0), wrr, 3.0);
  EXPECT_NEAR(m.wasted_fraction(), 0.5, 0.12);
}

TEST(Figure3, DeadlineAwareBeatsWrrAtModerateSlack) {
  PolicyConfig wrr;
  wrr.sched = JobSchedPolicy::kWrr;
  wrr.fetch = FetchPolicy::kOrig;
  PolicyConfig edf;
  edf.sched = JobSchedPolicy::kGlobal;
  edf.fetch = FetchPolicy::kOrig;
  const Metrics mw = run(paper_scenario1(1400.0), wrr, 3.0);
  const Metrics me = run(paper_scenario1(1400.0), edf, 3.0);
  EXPECT_GT(mw.wasted_fraction(), 0.35);
  EXPECT_LT(me.wasted_fraction(), 0.2);
}

TEST(Figure3, WasteDecreasesWithSlackUnderEdf) {
  PolicyConfig edf;
  edf.sched = JobSchedPolicy::kGlobal;
  edf.fetch = FetchPolicy::kOrig;
  const double w0 = run(paper_scenario1(1000.0), edf, 2.0).wasted_fraction();
  const double w1 = run(paper_scenario1(1900.0), edf, 2.0).wasted_fraction();
  EXPECT_GT(w0, w1 + 0.1);
}

// --- Figure 4: global accounting reduces share violation ----------------

TEST(Figure4, GlobalAccountingReducesViolation) {
  PolicyConfig local;
  local.sched = JobSchedPolicy::kLocal;
  PolicyConfig global;
  global.sched = JobSchedPolicy::kGlobal;
  const Metrics ml = run(paper_scenario2(), local, 4.0);
  const Metrics mg = run(paper_scenario2(), global, 4.0);
  EXPECT_GT(ml.share_violation(), mg.share_violation() + 0.05);
}

TEST(Figure4, LocalSplitsCpuEvenly) {
  PolicyConfig local;
  local.sched = JobSchedPolicy::kLocal;
  const Metrics m = run(paper_scenario2(), local, 4.0);
  // Even CPU split: P1 gets 2 of 14 GFLOPS ~ 0.143.
  EXPECT_NEAR(m.usage_fraction[0], 2.0 / 14.0, 0.05);
}

TEST(Figure4, GlobalGivesCpuToCpuOnlyProject) {
  PolicyConfig global;
  global.sched = JobSchedPolicy::kGlobal;
  const Metrics m = run(paper_scenario2(), global, 4.0);
  // Constrained optimum: P1 gets the whole CPU pool, 4/14 ~ 0.286.
  EXPECT_NEAR(m.usage_fraction[0], 4.0 / 14.0, 0.06);
}

// --- Figure 5: hysteresis reduces RPCs ----------------------------------

TEST(Figure5, HysteresisCutsRpcsPerJob) {
  PolicyConfig orig;
  orig.sched = JobSchedPolicy::kGlobal;
  orig.fetch = FetchPolicy::kOrig;
  PolicyConfig hyst = orig;
  hyst.fetch = FetchPolicy::kHysteresis;
  const Metrics mo = run(paper_scenario4(), orig, 2.0);
  const Metrics mh = run(paper_scenario4(), hyst, 2.0);
  EXPECT_LT(mh.rpcs_per_job(), 0.5 * mo.rpcs_per_job());
}

TEST(Figure5, HysteresisIncreasesMonotony) {
  PolicyConfig orig;
  orig.sched = JobSchedPolicy::kGlobal;
  orig.fetch = FetchPolicy::kOrig;
  PolicyConfig hyst = orig;
  hyst.fetch = FetchPolicy::kHysteresis;
  const Metrics mo = run(paper_scenario4(), orig, 2.0);
  const Metrics mh = run(paper_scenario4(), hyst, 2.0);
  EXPECT_GT(mh.monotony, mo.monotony);
}

// --- Figure 6: REC half-life --------------------------------------------

TEST(Figure6, ShortHalfLifeViolatesShares) {
  PolicyConfig pol;
  pol.sched = JobSchedPolicy::kGlobal;
  pol.rec_half_life = 1e4;
  Scenario sc = paper_scenario3();
  const Metrics m = run(sc, pol, 60.0);
  EXPECT_GT(m.share_violation(), 0.3);
  EXPECT_GT(m.usage_fraction[0], 0.8);  // the long-job project hogs the CPU
}

TEST(Figure6, LongHalfLifeRestoresShares) {
  PolicyConfig shortA;
  shortA.sched = JobSchedPolicy::kGlobal;
  shortA.rec_half_life = 1e4;
  PolicyConfig longA = shortA;
  longA.rec_half_life = 5e6;
  const Metrics ms = run(paper_scenario3(), shortA, 60.0);
  const Metrics ml = run(paper_scenario3(), longA, 60.0);
  EXPECT_LT(ml.share_violation(), ms.share_violation() - 0.15);
}

// --- Controller ----------------------------------------------------------

TEST(Controller, BatchPreservesOrderAndLabels) {
  std::vector<RunSpec> specs;
  for (int i = 0; i < 4; ++i) {
    RunSpec s;
    s.label = "run" + std::to_string(i);
    s.scenario = paper_scenario1(1000.0 + 200.0 * i);
    s.scenario.duration = 0.05 * kSecondsPerDay;
    specs.push_back(std::move(s));
  }
  const auto results = run_batch(specs, 2);
  ASSERT_EQ(results.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)].label,
              "run" + std::to_string(i));
  }
}

TEST(Controller, ParallelMatchesSerial) {
  std::vector<RunSpec> specs;
  for (int i = 0; i < 3; ++i) {
    RunSpec s;
    s.label = std::to_string(i);
    s.scenario = paper_scenario1(1500.0);
    s.scenario.seed = static_cast<std::uint64_t>(i + 1);
    s.scenario.duration = 0.05 * kSecondsPerDay;
    specs.push_back(std::move(s));
  }
  const auto serial = run_batch(specs, 1);
  const auto parallel = run_batch(specs, 3);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].result.metrics.used_flops,
                     parallel[i].result.metrics.used_flops);
    EXPECT_EQ(serial[i].result.metrics.n_rpcs,
              parallel[i].result.metrics.n_rpcs);
  }
}

TEST(Controller, ExceptionPropagates) {
  std::vector<RunSpec> specs(1);
  specs[0].scenario = Scenario{};  // invalid: no projects
  // run_batch wraps worker exceptions with the failing item's index and
  // label so a fleet-sized batch names its bad element.
  try {
    (void)run_batch(specs);
    FAIL() << "invalid scenario did not throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("run_batch item 0"),
              std::string::npos)
        << e.what();
  }
}

TEST(Controller, SweepMapsParameters) {
  const auto results = run_sweep(
      {1000.0, 2000.0},
      [](double lat) {
        RunSpec s;
        s.label = fmt(lat, 0);
        s.scenario = paper_scenario1(lat);
        s.scenario.duration = 0.05 * kSecondsPerDay;
        return s;
      },
      2);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].label, "1000");
  EXPECT_EQ(results[1].label, "2000");
}

}  // namespace
}  // namespace bce
