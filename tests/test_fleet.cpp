// Tests for cross-host share enforcement (fleet/fleet) and the generic
// max-min allocator (core/maxmin).

#include <gtest/gtest.h>

#include <cmath>

#include "core/maxmin.hpp"
#include "fleet/fleet.hpp"
#include "sim/rng.hpp"

namespace bce {
namespace {

TEST(MaxMin, EmptyProblem) {
  EXPECT_TRUE(maxmin_allocate({}).total.empty());
}

TEST(MaxMin, SingleConsumerSingleBucket) {
  MaxMinProblem p;
  p.capacity = {10.0};
  p.consumers.push_back({2.0, {true}});
  const auto s = maxmin_allocate(p);
  EXPECT_NEAR(s.total[0], 10.0, 1e-3);
  EXPECT_NEAR(s.level, 5.0, 1e-3);
}

TEST(MaxMin, DisjointCapabilities) {
  MaxMinProblem p;
  p.capacity = {6.0, 4.0};
  p.consumers.push_back({1.0, {true, false}});
  p.consumers.push_back({1.0, {false, true}});
  const auto s = maxmin_allocate(p);
  EXPECT_NEAR(s.total[0], 6.0, 1e-3);
  EXPECT_NEAR(s.total[1], 4.0, 1e-3);
}

TEST(MaxMin, FlexibleConsumerYieldsToConstrained) {
  // Bucket A (10) usable by both; bucket B (10) only by consumer 1.
  // Fair outcome: consumer 0 gets all of A, consumer 1 all of B.
  MaxMinProblem p;
  p.capacity = {10.0, 10.0};
  p.consumers.push_back({1.0, {true, false}});
  p.consumers.push_back({1.0, {true, true}});
  const auto s = maxmin_allocate(p);
  EXPECT_NEAR(s.total[0], 10.0, 1e-2);
  EXPECT_NEAR(s.total[1], 10.0, 1e-2);
  EXPECT_NEAR(s.alloc[0][0], 10.0, 1e-2);
  EXPECT_NEAR(s.alloc[1][1], 10.0, 1e-2);
}

TEST(MaxMin, SharesScaleAllocations) {
  MaxMinProblem p;
  p.capacity = {12.0};
  p.consumers.push_back({2.0, {true}});
  p.consumers.push_back({1.0, {true}});
  const auto s = maxmin_allocate(p);
  EXPECT_NEAR(s.total[0], 8.0, 1e-3);
  EXPECT_NEAR(s.total[1], 4.0, 1e-3);
}

/// Generic property sweep over random allocation problems: feasibility and
/// the max-min blocking condition must hold for any instance.
class MaxMinProperties : public ::testing::TestWithParam<int> {};

TEST_P(MaxMinProperties, FeasibleAndBlocked) {
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 13ull);
  MaxMinProblem prob;
  const std::size_t m = 1 + rng.below(6);
  const std::size_t n = 1 + rng.below(8);
  for (std::size_t r = 0; r < m; ++r) {
    prob.capacity.push_back(rng.uniform(0.5, 20.0));
  }
  for (std::size_t c = 0; c < n; ++c) {
    MaxMinProblem::Consumer consumer;
    consumer.share = rng.uniform(0.5, 4.0);
    consumer.can_use.resize(m);
    bool any = false;
    for (std::size_t r = 0; r < m; ++r) {
      consumer.can_use[r] = rng.uniform01() < 0.5;
      any = any || consumer.can_use[r];
    }
    if (!any) consumer.can_use[rng.below(m)] = true;
    prob.consumers.push_back(std::move(consumer));
  }

  const MaxMinSolution sol = maxmin_allocate(prob);

  // Capacity respected per bucket; no allocation through missing edges.
  std::vector<double> used(m, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    double total = 0.0;
    for (std::size_t r = 0; r < m; ++r) {
      EXPECT_GE(sol.alloc[c][r], -1e-6);
      if (!prob.consumers[c].can_use[r]) {
        EXPECT_NEAR(sol.alloc[c][r], 0.0, 1e-9);
      }
      used[r] += sol.alloc[c][r];
      total += sol.alloc[c][r];
    }
    EXPECT_NEAR(total, sol.total[c], 1e-6);
  }
  for (std::size_t r = 0; r < m; ++r) {
    EXPECT_LE(used[r], prob.capacity[r] + 1e-4);
  }

  // Blocking: a consumer below the final level must have all its usable
  // buckets exhausted.
  for (std::size_t c = 0; c < n; ++c) {
    const double ratio = sol.total[c] / prob.consumers[c].share;
    if (ratio < sol.level - 1e-3 * (1.0 + sol.level)) {
      for (std::size_t r = 0; r < m; ++r) {
        if (prob.consumers[c].can_use[r]) {
          EXPECT_GE(used[r],
                    prob.capacity[r] - 1e-3 * (1.0 + prob.capacity[r]))
              << "consumer " << c << " blocked but bucket " << r
              << " has spare capacity";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxMinProperties, ::testing::Range(1, 26));

// ---------------------------------------------------------------------
// Fleet
// ---------------------------------------------------------------------

FleetConfig demo_fleet() {
  FleetConfig fc;
  fc.duration = 1.0 * kSecondsPerDay;

  FleetHostSpec cpu_box;
  cpu_box.name = "cpu_box";
  cpu_box.host = HostInfo::cpu_only(4, 1e9);
  cpu_box.seed = 1;
  FleetHostSpec gpu_box;
  gpu_box.name = "gpu_box";
  gpu_box.host = HostInfo::cpu_gpu(2, 1e9, 1, 10e9);
  gpu_box.seed = 2;
  fc.hosts = {cpu_box, gpu_box};

  ProjectConfig cpu_proj;
  cpu_proj.name = "cpu_proj";
  cpu_proj.resource_share = 100.0;
  JobClass cj;
  cj.flops_est = 1800e9;
  cj.latency_bound = kSecondsPerDay;
  cj.usage = ResourceUsage::cpu(1.0);
  cpu_proj.job_classes.push_back(cj);

  ProjectConfig gpu_proj;
  gpu_proj.name = "gpu_proj";
  gpu_proj.resource_share = 100.0;
  JobClass gj;
  gj.flops_est = 18000e9;
  gj.latency_bound = kSecondsPerDay;
  gj.usage = ResourceUsage::gpu(ProcType::kNvidia, 1.0, 0.05);
  gpu_proj.job_classes.push_back(gj);
  JobClass gj_cpu = cj;
  gpu_proj.job_classes.push_back(gj_cpu);  // GPU project also has CPU jobs

  fc.projects = {cpu_proj, gpu_proj};
  return fc;
}

TEST(Fleet, HostScenarioFiltersUnusableClasses) {
  const FleetConfig fc = demo_fleet();
  const Scenario cpu_sc = fleet_host_scenario(fc, 0, {100.0, 100.0});
  // Both projects attach to the CPU box, but the GPU class is dropped.
  ASSERT_EQ(cpu_sc.projects.size(), 2u);
  for (const auto& p : cpu_sc.projects) {
    for (const auto& jc : p.job_classes) {
      EXPECT_FALSE(jc.usage.uses_gpu());
    }
  }
  std::string err;
  EXPECT_TRUE(cpu_sc.validate(&err)) << err;
}

TEST(Fleet, HostScenarioDropsZeroShareProjects) {
  const FleetConfig fc = demo_fleet();
  const Scenario sc = fleet_host_scenario(fc, 0, {100.0, 0.0});
  ASSERT_EQ(sc.projects.size(), 1u);
  EXPECT_EQ(sc.projects[0].name, "cpu_proj");
}

TEST(Fleet, CrossHostSharesConcentrateProjects) {
  const FleetConfig fc = demo_fleet();
  const auto shares = cross_host_shares(fc);
  ASSERT_EQ(shares.size(), 2u);
  // Capacities: cpu_box 4 GF (cpu_proj or gpu_proj), gpu_box 2 GF CPU +
  // 10 GF GPU (gpu only usable by gpu_proj). Equal global shares want 8/8.
  // Max-min: gpu_proj gets the 10 GF GPU (capped at level); cpu_proj gets
  // the CPU capacity. The CPU box should belong mostly to cpu_proj.
  EXPECT_GT(shares[0][0], shares[0][1]);
  // And the GPU box's capacity should belong mostly to gpu_proj.
  EXPECT_GT(shares[1][1], shares[1][0]);
}

TEST(Fleet, RunPerHostProducesPerHostResults) {
  const FleetConfig fc = demo_fleet();
  PolicyConfig pol;
  const FleetResult r = run_fleet(fc, pol, FleetEnforcement::kPerHost, 2);
  ASSERT_EQ(r.per_host.size(), 2u);
  EXPECT_GT(r.total_used_flops, 0.0);
  EXPECT_GT(r.total_available_flops, 0.0);
  ASSERT_EQ(r.usage_fraction.size(), 2u);
  EXPECT_NEAR(r.usage_fraction[0] + r.usage_fraction[1], 1.0, 1e-6);
}

TEST(Fleet, CrossHostReducesViolation) {
  const FleetConfig fc = demo_fleet();
  PolicyConfig pol;
  const FleetResult per = run_fleet(fc, pol, FleetEnforcement::kPerHost, 2);
  const FleetResult cross = run_fleet(fc, pol, FleetEnforcement::kCrossHost, 2);
  // Cross-host enforcement should do at least as well on fleet-level
  // shares (§6.2's motivation).
  EXPECT_LE(cross.share_violation, per.share_violation + 0.02);
  // And it should not idle the fleet.
  EXPECT_LT(cross.idle_fraction(), 0.15);
}

TEST(Fleet, DeterministicAcrossThreadCounts) {
  const FleetConfig fc = demo_fleet();
  PolicyConfig pol;
  const FleetResult a = run_fleet(fc, pol, FleetEnforcement::kCrossHost, 1);
  const FleetResult b = run_fleet(fc, pol, FleetEnforcement::kCrossHost, 4);
  EXPECT_DOUBLE_EQ(a.total_used_flops, b.total_used_flops);
  EXPECT_DOUBLE_EQ(a.share_violation, b.share_violation);
}

}  // namespace
}  // namespace bce
