// Metrics::merge algebra (docs/metrics.md, docs/fleet.md). The sharded
// supervisor's byte-identity invariant rests on merge being an exactly
// commutative, identity-respecting weighted fold — these tests pin that
// algebra directly on real emulation metrics, for every registered
// (scheduling x fetch) policy pair on all four paper scenarios.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/bce.hpp"
#include "fleet/supervisor.hpp"

namespace {

using namespace bce;

/// Bitwise equality via the wire encoding: save_metrics serializes every
/// field (doubles as raw IEEE-754 bits), so equal payloads mean equal
/// metrics down to the last ulp and counter.
std::vector<std::uint8_t> wire_bytes(const Metrics& m) {
  StateWriter w;
  save_metrics(w, m);
  return w.payload();
}

Metrics run_host(const Scenario& base, std::uint64_t seed,
                 const PolicyConfig& pol) {
  Scenario sc = base;
  sc.seed = seed;
  EmulationOptions opt;
  opt.policy = pol;
  return emulate(sc, opt).metrics;
}

std::vector<Scenario> paper_scenarios() {
  return {paper_scenario1(), paper_scenario2(), paper_scenario3(),
          paper_scenario4()};
}

TEST(MetricsMerge, EmptyIsIdentityBitwise) {
  Scenario sc = paper_scenario2();
  sc.duration = 0.5 * kSecondsPerDay;
  const Metrics m = run_host(sc, 1, {});

  Metrics left = m;
  left.merge(Metrics{});
  EXPECT_EQ(wire_bytes(left), wire_bytes(m));

  Metrics right;
  right.merge(m);
  EXPECT_EQ(wire_bytes(right), wire_bytes(m));
}

TEST(MetricsMerge, CountersAndFlopsSumExactly) {
  Scenario sc = paper_scenario3();
  sc.duration = 0.5 * kSecondsPerDay;
  const Metrics a = run_host(sc, 1, {});
  const Metrics b = run_host(sc, 2, {});

  Metrics merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.n_rpcs, a.n_rpcs + b.n_rpcs);
  EXPECT_EQ(merged.n_jobs_fetched, a.n_jobs_fetched + b.n_jobs_fetched);
  EXPECT_EQ(merged.n_jobs_completed, a.n_jobs_completed + b.n_jobs_completed);
  EXPECT_EQ(merged.n_sched_passes, a.n_sched_passes + b.n_sched_passes);
  EXPECT_EQ(merged.available_flops, a.available_flops + b.available_flops);
  EXPECT_EQ(merged.used_flops, a.used_flops + b.used_flops);
  EXPECT_EQ(merged.wasted_flops, a.wasted_flops + b.wasted_flops);
  for (std::size_t k = 0; k < kNumLogCategories; ++k) {
    EXPECT_EQ(merged.trace_events[k], a.trace_events[k] + b.trace_events[k]);
  }
}

TEST(MetricsMerge, CommutativeBitwise) {
  // The weighted means are symmetric expressions (a*wa + b*wb is FP-
  // commutative), so merge order must not change a single bit.
  Scenario sc = paper_scenario1();
  sc.duration = 0.5 * kSecondsPerDay;
  const Metrics a = run_host(sc, 1, {});
  const Metrics b = run_host(sc, 7, {});

  Metrics ab = a;
  ab.merge(b);
  Metrics ba = b;
  ba.merge(a);
  EXPECT_EQ(wire_bytes(ab), wire_bytes(ba));
}

TEST(MetricsMerge, AssociativeUpToRounding) {
  Scenario sc = paper_scenario4();
  sc.duration = 0.5 * kSecondsPerDay;
  std::vector<Metrics> hosts;
  for (std::uint64_t s = 1; s <= 6; ++s) hosts.push_back(run_host(sc, s, {}));

  // Fold the same six hosts at every split point: ((0..i) . (i..6)) must
  // agree with the flat left-fold within FP rounding for every i.
  Metrics flat = hosts[0];
  for (std::size_t i = 1; i < hosts.size(); ++i) flat.merge(hosts[i]);

  for (std::size_t split = 1; split < hosts.size(); ++split) {
    Metrics left = hosts[0];
    for (std::size_t i = 1; i < split; ++i) left.merge(hosts[i]);
    Metrics right = hosts[split];
    for (std::size_t i = split + 1; i < hosts.size(); ++i) {
      right.merge(hosts[i]);
    }
    left.merge(right);

    EXPECT_EQ(left.n_jobs_completed, flat.n_jobs_completed) << split;
    // Sums associate differently across split points, so flops match only
    // up to rounding; counters are integers and must match exactly.
    EXPECT_NEAR(left.available_flops, flat.available_flops,
                1e-12 * flat.available_flops)
        << split;
    EXPECT_NEAR(left.share_violation_rms, flat.share_violation_rms,
                1e-12 * (1.0 + std::abs(flat.share_violation_rms)))
        << split;
    EXPECT_NEAR(left.monotony, flat.monotony,
                1e-12 * (1.0 + std::abs(flat.monotony)))
        << split;
    ASSERT_EQ(left.usage_fraction.size(), flat.usage_fraction.size());
    for (std::size_t p = 0; p < flat.usage_fraction.size(); ++p) {
      EXPECT_NEAR(left.usage_fraction[p], flat.usage_fraction[p],
                  1e-12 * (1.0 + std::abs(flat.usage_fraction[p])))
          << split << " project " << p;
    }
  }
}

TEST(MetricsMerge, ShardedFoldMatchesMonolithicAllPolicies) {
  // The supervisor's exact fold: hosts fold left within a shard, shards
  // fold left in index order. run_sharded (in-process, 2 hosts/shard) must
  // be bitwise identical to that manual fold for every registered policy
  // pair on all four paper scenarios — this is the library-level half of
  // the resilience byte-identity invariant.
  for (const Scenario& base : paper_scenarios()) {
    Scenario sc = base;
    sc.duration = 0.5 * kSecondsPerDay;
    for (const auto& spec : policy_matrix_specs(sc, {})) {
      constexpr std::uint64_t kHosts = 4;
      Metrics host_metrics[kHosts];
      for (std::uint64_t h = 0; h < kHosts; ++h) {
        host_metrics[h] = run_host(sc, sc.seed + h, spec.options.policy);
      }
      Metrics shard0 = host_metrics[0];
      shard0.merge(host_metrics[1]);
      Metrics shard1 = host_metrics[2];
      shard1.merge(host_metrics[3]);
      shard0.merge(shard1);

      const ShardedResult r = run_sharded(
          make_replicated_shard_tasks(sc, spec.options.policy, kHosts, 2));
      ASSERT_TRUE(r.complete()) << spec.label;
      EXPECT_EQ(wire_bytes(r.merged), wire_bytes(shard0)) << spec.label;
    }
  }
}

}  // namespace
