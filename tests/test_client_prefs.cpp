// Tests for the client-preference features: duration correction (DCF),
// leave-apps-in-memory, and per-project no-GPU / suspended controls.

#include <gtest/gtest.h>

#include "core/emulator.hpp"
#include "core/scenario_io.hpp"

namespace bce {
namespace {

Scenario base_scenario(double days = 0.5) {
  Scenario sc;
  sc.name = "prefs_test";
  sc.host = HostInfo::cpu_gpu(2, 1e9, 1, 10e9);
  sc.duration = days * kSecondsPerDay;
  sc.prefs.min_queue = 1800.0;
  sc.prefs.max_queue = 7200.0;
  for (int i = 0; i < 2; ++i) {
    ProjectConfig p;
    p.name = "p" + std::to_string(i);
    p.resource_share = 100.0;
    JobClass cj;
    cj.name = "cpu";
    cj.flops_est = 1800e9;
    cj.flops_cv = 0.1;
    cj.latency_bound = kSecondsPerDay;
    cj.usage = ResourceUsage::cpu(1.0);
    p.job_classes.push_back(cj);
    JobClass gj;
    gj.name = "gpu";
    gj.flops_est = 18000e9;
    gj.flops_cv = 0.1;
    gj.latency_bound = kSecondsPerDay;
    gj.usage = ResourceUsage::gpu(ProcType::kNvidia, 1.0, 0.05);
    p.job_classes.push_back(gj);
    sc.projects.push_back(p);
  }
  return sc;
}

// --- DCF -----------------------------------------------------------------

TEST(DurationCorrection, LearnsSystematicUnderestimates) {
  Scenario sc = base_scenario(1.0);
  for (auto& p : sc.projects) {
    for (auto& jc : p.job_classes) jc.est_error = 3.0;  // jobs 3x estimate
  }
  EmulationOptions opt;
  const EmulationResult res = emulate(sc, opt);
  // Later-dispatched jobs carry a learned correction close to the truth.
  const Result& last = res.jobs.back();
  EXPECT_GT(last.est_correction, 2.0);
  EXPECT_LT(last.est_correction, 4.0);
}

TEST(DurationCorrection, DisabledKeepsCorrectionAtOne) {
  Scenario sc = base_scenario(0.5);
  for (auto& p : sc.projects) {
    for (auto& jc : p.job_classes) jc.est_error = 3.0;
  }
  EmulationOptions opt;
  opt.policy.use_duration_correction = false;
  const EmulationResult res = emulate(sc, opt);
  for (const auto& j : res.jobs) {
    EXPECT_DOUBLE_EQ(j.est_correction, 1.0);
  }
}

TEST(DurationCorrection, AccurateEstimatesStayNearOne) {
  Scenario sc = base_scenario(0.5);
  const EmulationResult res = emulate(sc, {});
  const Result& last = res.jobs.back();
  EXPECT_NEAR(last.est_correction, 1.0, 0.35);  // cv=0.1 jitter only
}

TEST(DurationCorrection, ReducesFetchOvercommitment) {
  // With 3x underestimates and low slack, DCF should reduce the number of
  // doomed jobs the client accumulates.
  Scenario sc = base_scenario(2.0);
  for (auto& p : sc.projects) {
    p.job_classes.resize(1);  // CPU class only
    p.job_classes[0].est_error = 3.0;
    p.job_classes[0].latency_bound = 3.0 * 1800.0 * 1.4;  // ~40% slack
  }
  EmulationOptions with;
  with.policy.use_duration_correction = true;
  EmulationOptions without;
  without.policy.use_duration_correction = false;
  const Metrics mw = emulate(sc, with).metrics;
  const Metrics mo = emulate(sc, without).metrics;
  EXPECT_LE(mw.wasted_fraction(), mo.wasted_fraction() + 0.02);
}

// --- leave apps in memory --------------------------------------------------

TEST(LeaveInMemory, NoRollbackOnPreemption) {
  Scenario sc = base_scenario(0.5);
  sc.availability.host_on = OnOffSpec::markov(3600.0, 900.0);
  for (auto& p : sc.projects) {
    p.job_classes.resize(1);
    p.job_classes[0].checkpoint_period = kNever;  // worst case
  }
  Scenario keep = sc;
  keep.prefs.leave_apps_in_memory = true;

  const EmulationResult lose = emulate(sc);
  const EmulationResult hold = emulate(keep);

  // Without checkpoints, rolling back loses everything on each outage;
  // leave-in-memory must complete strictly more work.
  EXPECT_GT(hold.metrics.n_jobs_completed, lose.metrics.n_jobs_completed);
  // And no job in the leave-in-memory run ever spent more than it kept
  // (modulo completion snapping).
  for (const auto& j : hold.jobs) {
    EXPECT_NEAR(j.flops_spent, j.flops_done,
                1e-6 * std::max(1.0, j.flops_done));
  }
}

// --- per-project controls ---------------------------------------------------

TEST(ProjectControls, NoGpuProjectNeverRunsGpuJobs) {
  Scenario sc = base_scenario(0.5);
  sc.projects[0].no_gpu = true;
  const EmulationResult res = emulate(sc);
  for (const auto& j : res.jobs) {
    if (j.project == 0) EXPECT_FALSE(j.usage.uses_gpu());
  }
  // The GPU still gets used (by project 1).
  bool p1_gpu = false;
  for (const auto& j : res.jobs) {
    p1_gpu |= j.project == 1 && j.usage.uses_gpu();
  }
  EXPECT_TRUE(p1_gpu);
}

TEST(ProjectControls, SuspendedProjectGetsNothing) {
  Scenario sc = base_scenario(0.5);
  sc.projects[1].suspended = true;
  const EmulationResult res = emulate(sc);
  for (const auto& j : res.jobs) EXPECT_EQ(j.project, 0);
  EXPECT_GT(res.metrics.n_jobs_completed, 0);
  EXPECT_DOUBLE_EQ(res.metrics.usage_fraction[1], 0.0);
}

// --- result uploads ---------------------------------------------------------

TEST(Uploads, ReportWaitsForOutputUpload) {
  Scenario sc = base_scenario(0.5);
  sc.host.download_bandwidth_bps = 1e5;
  for (auto& p : sc.projects) {
    p.job_classes.resize(1);  // CPU only, keep it simple
    p.job_classes[0].output_bytes = 3e7;  // 300 s upload per result
  }
  const EmulationResult res = emulate(sc);
  EXPECT_GT(res.metrics.n_jobs_completed, 0);
  for (const auto& j : res.jobs) {
    if (j.reported) {
      EXPECT_TRUE(j.uploaded);
    }
  }
  // At least one completed job was reported despite the slow uplink.
  bool any_reported = false;
  for (const auto& j : res.jobs) any_reported |= j.reported;
  EXPECT_TRUE(any_reported);
}

TEST(Uploads, InstantWithoutModeledLink) {
  Scenario sc = base_scenario(0.3);
  for (auto& p : sc.projects) {
    for (auto& jc : p.job_classes) jc.output_bytes = 1e9;  // irrelevant
  }
  const EmulationResult res = emulate(sc);
  for (const auto& j : res.jobs) {
    if (j.is_complete()) EXPECT_TRUE(j.uploaded);
  }
}

TEST(Uploads, OutputBytesRoundTrip) {
  Scenario sc = base_scenario(0.3);
  sc.projects[0].job_classes[0].output_bytes = 42.0;
  const Scenario b = parse_scenario(serialize_scenario(sc));
  EXPECT_DOUBLE_EQ(b.projects[0].job_classes[0].output_bytes, 42.0);
}

TEST(ProjectControls, RoundTripThroughScenarioFile) {
  Scenario sc = base_scenario(0.5);
  sc.projects[0].no_gpu = true;
  sc.projects[1].suspended = true;
  sc.prefs.leave_apps_in_memory = true;
  const Scenario b = parse_scenario(serialize_scenario(sc));
  EXPECT_TRUE(b.projects[0].no_gpu);
  EXPECT_FALSE(b.projects[0].suspended);
  EXPECT_TRUE(b.projects[1].suspended);
  EXPECT_TRUE(b.prefs.leave_apps_in_memory);
}

}  // namespace
}  // namespace bce
