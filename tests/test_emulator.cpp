// Integration tests for the emulator (core/emulator): end-to-end behaviour
// of the full client/server/availability loop on small scenarios.

#include <gtest/gtest.h>

#include <cmath>

#include "core/emulator.hpp"
#include "core/paper_scenarios.hpp"

namespace bce {
namespace {

Scenario two_project_scenario(double days = 0.5) {
  Scenario sc;
  sc.name = "itest";
  sc.host = HostInfo::cpu_only(2, 1e9);
  sc.duration = days * kSecondsPerDay;
  sc.seed = 1;
  sc.prefs.min_queue = 1800.0;
  sc.prefs.max_queue = 7200.0;
  for (int i = 0; i < 2; ++i) {
    ProjectConfig p;
    p.name = "p" + std::to_string(i);
    p.resource_share = 100.0;
    JobClass jc;
    jc.flops_est = 1800e9;  // 30 min jobs
    jc.flops_cv = 0.1;
    jc.latency_bound = 1.0 * kSecondsPerDay;
    jc.usage = ResourceUsage::cpu(1.0);
    p.job_classes.push_back(jc);
    sc.projects.push_back(p);
  }
  return sc;
}

TEST(Emulator, CompletesJobsAndStaysBusy) {
  const EmulationResult res = emulate(two_project_scenario());
  EXPECT_GT(res.metrics.n_jobs_completed, 10);
  EXPECT_LT(res.metrics.idle_fraction(), 0.05);
  EXPECT_DOUBLE_EQ(res.metrics.wasted_fraction(), 0.0);
}

TEST(Emulator, DeterministicGivenSeed) {
  const EmulationResult a = emulate(two_project_scenario());
  const EmulationResult b = emulate(two_project_scenario());
  EXPECT_EQ(a.metrics.n_jobs_completed, b.metrics.n_jobs_completed);
  EXPECT_EQ(a.metrics.n_rpcs, b.metrics.n_rpcs);
  EXPECT_DOUBLE_EQ(a.metrics.used_flops, b.metrics.used_flops);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].flops_total, b.jobs[i].flops_total);
    EXPECT_DOUBLE_EQ(a.jobs[i].completed_at, b.jobs[i].completed_at);
  }
}

TEST(Emulator, DifferentSeedsDiffer) {
  Scenario sc = two_project_scenario();
  const EmulationResult a = emulate(sc);
  sc.seed = 2;
  const EmulationResult b = emulate(sc);
  // Runtimes are drawn with cv > 0, so the trajectories must diverge.
  EXPECT_NE(a.metrics.used_flops, b.metrics.used_flops);
}

TEST(Emulator, UsageNeverExceedsCapacity) {
  const EmulationResult res = emulate(two_project_scenario());
  // Allow the documented <= 1-CPU overcommit headroom.
  EXPECT_LE(res.metrics.used_flops,
            res.metrics.available_flops * 1.5 + 1e-6);
}

TEST(Emulator, SharesRespectedLongRun) {
  Scenario sc = two_project_scenario(2.0);
  sc.projects[0].resource_share = 300.0;
  sc.projects[1].resource_share = 100.0;
  const EmulationResult res = emulate(sc);
  EXPECT_NEAR(res.metrics.usage_fraction[0], 0.75, 0.08);
  EXPECT_NEAR(res.metrics.usage_fraction[1], 0.25, 0.08);
}

TEST(Emulator, SingleProjectUsesWholeHost) {
  Scenario sc = two_project_scenario();
  sc.projects.pop_back();
  const EmulationResult res = emulate(sc);
  EXPECT_LT(res.metrics.idle_fraction(), 0.05);
  EXPECT_DOUBLE_EQ(res.metrics.usage_fraction[0], 1.0);
  EXPECT_DOUBLE_EQ(res.metrics.monotony, 0.0);  // undefined for 1 project
}

TEST(Emulator, InvalidScenarioThrows) {
  Scenario sc = two_project_scenario();
  sc.projects.clear();
  EXPECT_THROW(emulate(sc), std::invalid_argument);
}

TEST(Emulator, HostUnavailabilityReducesAvailableCapacity) {
  Scenario always = two_project_scenario(3.0);
  Scenario flaky = always;
  flaky.availability.host_on = OnOffSpec::markov(3600.0, 3600.0);
  const EmulationResult a = emulate(always);
  const EmulationResult b = emulate(flaky);
  // Half the wall-clock is unavailable: available capacity drops ~50%.
  EXPECT_NEAR(b.metrics.available_flops / a.metrics.available_flops, 0.5,
              0.12);
  // The host still keeps busy while it is on.
  EXPECT_LT(b.metrics.idle_fraction(), 0.15);
}

TEST(Emulator, GpuHostRunsGpuJobs) {
  Scenario sc = paper_scenario2();
  sc.duration = 0.5 * kSecondsPerDay;
  EmulationOptions opt;
  opt.record_timeline = true;
  const EmulationResult res = emulate(sc, opt);
  bool gpu_span = false;
  for (const auto& s : res.timeline.spans()) {
    if (s.type == ProcType::kNvidia) gpu_span = true;
  }
  EXPECT_TRUE(gpu_span);
  EXPECT_LT(res.metrics.idle_fraction(), 0.1);
}

TEST(Emulator, TimelineOnlyWhenRequested) {
  Scenario sc = two_project_scenario(0.1);
  EXPECT_TRUE(emulate(sc).timeline.spans().empty());
  EmulationOptions opt;
  opt.record_timeline = true;
  EXPECT_FALSE(emulate(sc, opt).timeline.spans().empty());
}

TEST(Emulator, MessageLogCapturesDecisions) {
  Scenario sc = two_project_scenario(0.05);
  Logger log;
  log.enable_all();
  log.set_retain(true);
  EmulationOptions opt;
  opt.logger = &log;
  emulate(sc, opt);
  bool saw_task = false;
  bool saw_fetch = false;
  bool saw_rpc = false;
  for (const auto& e : log.entries()) {
    saw_task |= e.category == LogCategory::kTask;
    saw_fetch |= e.category == LogCategory::kWorkFetch;
    saw_rpc |= e.category == LogCategory::kRpc;
  }
  EXPECT_TRUE(saw_task);
  EXPECT_TRUE(saw_fetch);
  EXPECT_TRUE(saw_rpc);
}

TEST(Emulator, CompletedJobsAreReportedWithinDelay) {
  Scenario sc = two_project_scenario(1.0);
  const EmulationResult res = emulate(sc);
  for (const auto& j : res.jobs) {
    if (j.is_complete() &&
        j.completed_at + sc.prefs.max_report_delay + sc.prefs.poll_period <
            sc.duration) {
      EXPECT_TRUE(j.reported) << "job " << j.id << " completed at "
                              << j.completed_at << " but never reported";
    }
  }
}

TEST(Emulator, DownProjectGetsNoRpcsWhileDown) {
  Scenario sc = two_project_scenario(0.5);
  // Project 1's server is permanently down.
  sc.projects[1].up = OnOffSpec::markov(1.0, 1e12, /*begin_on=*/false);
  const EmulationResult res = emulate(sc);
  // All completed jobs came from project 0.
  for (const auto& j : res.jobs) EXPECT_EQ(j.project, 0);
  EXPECT_GT(res.metrics.n_jobs_completed, 0);
}

TEST(Emulator, TransferDelayPostponesFirstStart) {
  Scenario sc = two_project_scenario(0.2);
  for (auto& p : sc.projects) {
    for (auto& jc : p.job_classes) jc.transfer_delay = 900.0;
  }
  const EmulationResult res = emulate(sc);
  // No job can complete before transfer + runtime.
  for (const auto& j : res.jobs) {
    if (j.is_complete()) {
      EXPECT_GE(j.completed_at, j.received + 900.0);
    }
  }
}

TEST(Emulator, NonCheckpointingAppsLoseMoreWork) {
  Scenario with_cp = two_project_scenario(1.0);
  Scenario without = with_cp;
  // Force frequent availability interruptions so preemption losses show.
  with_cp.availability.host_on = OnOffSpec::markov(3600.0, 600.0);
  without.availability.host_on = OnOffSpec::markov(3600.0, 600.0);
  for (auto& p : without.projects) {
    for (auto& jc : p.job_classes) jc.checkpoint_period = kNever;
  }
  const EmulationResult a = emulate(with_cp);
  const EmulationResult b = emulate(without);
  // Same capacity, but the non-checkpointing client completes less work.
  EXPECT_LT(b.metrics.n_jobs_completed, a.metrics.n_jobs_completed);
}

TEST(Emulator, ModeledDownloadsDelayJobs) {
  Scenario sc = two_project_scenario(0.3);
  sc.host.download_bandwidth_bps = 1e6;  // 1 MB/s
  for (auto& p : sc.projects) {
    for (auto& jc : p.job_classes) jc.input_bytes = 6e8;  // 600 s download
  }
  const EmulationResult res = emulate(sc);
  EXPECT_GT(res.metrics.n_jobs_completed, 0);
  for (const auto& j : res.jobs) {
    if (j.is_complete()) {
      // runtime 1800 s + >= 600 s of download (more when sharing the link).
      EXPECT_GE(j.completed_at - j.received, 600.0 + 1000.0);
    }
  }
}

TEST(Emulator, TransferOrderingPolicyChangesBehaviour) {
  Scenario sc = two_project_scenario(0.3);
  sc.host.download_bandwidth_bps = 2e5;  // slow link: ordering matters
  for (auto& p : sc.projects) {
    for (auto& jc : p.job_classes) jc.input_bytes = 3e8;
  }
  EmulationOptions fair;
  fair.policy.transfer_order = TransferOrder::kFairShare;
  EmulationOptions fifo;
  fifo.policy.transfer_order = TransferOrder::kFifo;
  const EmulationResult a = emulate(sc, fair);
  const EmulationResult b = emulate(sc, fifo);
  // Both make progress; the schedules differ.
  EXPECT_GT(a.metrics.n_jobs_completed, 0);
  EXPECT_GT(b.metrics.n_jobs_completed, 0);
  EXPECT_NE(a.metrics.used_flops, b.metrics.used_flops);
}

TEST(Emulator, MaxInProgressThrottlesQueueDepth) {
  Scenario sc = two_project_scenario(0.5);
  sc.projects[0].max_jobs_in_progress = 1;
  const EmulationResult res = emulate(sc);
  // At no point can project 0 hold two unfinished unreported jobs; the
  // easiest observable: jobs of project 0 never overlap in execution.
  std::vector<std::pair<double, double>> runs;
  for (const auto& j : res.jobs) {
    if (j.project == 0 && j.is_complete()) {
      runs.emplace_back(j.received, j.completed_at);
    }
  }
  ASSERT_GE(runs.size(), 2u);
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_GE(runs[i].first + 1e-6, runs[i - 1].second)
        << "jobs " << i - 1 << " and " << i << " overlap";
  }
}

TEST(Emulator, FinalAccountingStateExposed) {
  const EmulationResult res = emulate(two_project_scenario(0.2));
  ASSERT_EQ(res.final_rec.size(), 2u);
  ASSERT_EQ(res.final_debt.size(), 2u);
  EXPECT_GT(res.final_rec[0] + res.final_rec[1], 0.0);
}

TEST(Emulator, PreemptionRollsBackToCheckpoint) {
  // One CPU, one long-running low-priority job that gets preempted by an
  // endangered job; its flops_spent must exceed flops_done afterwards.
  Scenario sc;
  sc.host = HostInfo::cpu_only(1, 1e9);
  sc.duration = 4.0 * 3600.0;
  sc.prefs.min_queue = 600.0;
  sc.prefs.max_queue = 1200.0;
  ProjectConfig big;
  big.name = "big";
  big.resource_share = 100.0;
  JobClass bj;
  bj.flops_est = 3.0 * 3600.0 * 1e9;
  bj.latency_bound = 10.0 * kSecondsPerDay;
  bj.usage = ResourceUsage::cpu(1.0);
  bj.checkpoint_period = 1800.0;  // coarse checkpoints: losses visible
  big.job_classes.push_back(bj);
  ProjectConfig urgent;
  urgent.name = "urgent";
  urgent.resource_share = 100.0;
  JobClass uj;
  uj.flops_est = 600.0 * 1e9;
  uj.latency_bound = 900.0;  // tight: immediately endangered
  uj.usage = ResourceUsage::cpu(1.0);
  urgent.job_classes.push_back(uj);
  sc.projects = {big, urgent};

  const EmulationResult res = emulate(sc);
  EXPECT_GT(res.metrics.n_preemptions, 0);
  double spent = 0.0;
  double done = 0.0;
  for (const auto& j : res.jobs) {
    spent += j.flops_spent;
    done += j.flops_done;
  }
  EXPECT_GT(spent, done);  // some progress was lost to rollbacks
}

}  // namespace
}  // namespace bce
