// Unit and property tests for the round-robin simulation (client/rr_sim):
// deadline predictions, SAT/SHORTFALL arithmetic, water-filling shares, and
// the k-earliest deadline-miss promotion.

#include <gtest/gtest.h>

#include <cmath>

#include "client/rr_sim.hpp"
#include "sim/rng.hpp"

namespace bce {
namespace {

Result make_job(JobId id, ProjectId p, double seconds, double deadline,
                const HostInfo& host,
                ResourceUsage usage = ResourceUsage::cpu(1.0)) {
  Result r;
  r.id = id;
  r.project = p;
  r.usage = usage;
  r.flops_est = r.flops_total = seconds * usage.flops_rate(host);
  r.received = static_cast<double>(id);
  r.deadline = deadline;
  return r;
}

struct Fixture {
  HostInfo host;
  Preferences prefs;
  PerProc<double> avail;
  std::vector<Result> jobs;

  Fixture(int ncpus = 1, int ngpus = 0) {
    host = ngpus > 0 ? HostInfo::cpu_gpu(ncpus, 1e9, ngpus, 10e9)
                     : HostInfo::cpu_only(ncpus, 1e9);
    prefs.min_queue = 1000.0;
    prefs.max_queue = 3000.0;
    avail.fill(1.0);
  }

  RrSimOutput run(const std::vector<double>& shares) {
    RrSim rr(host, prefs, avail);
    std::vector<Result*> ptrs;
    for (auto& j : jobs) ptrs.push_back(&j);
    return rr.run(0.0, ptrs, shares);
  }
};

TEST(RrSim, EmptyQueueFullShortfall) {
  Fixture f(2);
  const RrSimOutput out = f.run({1.0});
  EXPECT_DOUBLE_EQ(out.saturated[ProcType::kCpu], 0.0);
  EXPECT_DOUBLE_EQ(out.shortfall[ProcType::kCpu], 2.0 * 3000.0);
  EXPECT_DOUBLE_EQ(out.shortfall_min[ProcType::kCpu], 2.0 * 1000.0);
  EXPECT_DOUBLE_EQ(out.idle_instances_now[ProcType::kCpu], 2.0);
}

TEST(RrSim, SingleJobProjectedFinish) {
  Fixture f(1);
  f.jobs.push_back(make_job(0, 0, 500.0, 10000.0, f.host));
  const RrSimOutput out = f.run({1.0});
  EXPECT_NEAR(f.jobs[0].rr_projected_finish, 500.0, 1.0);
  EXPECT_FALSE(f.jobs[0].deadline_endangered);
  EXPECT_NEAR(out.saturated[ProcType::kCpu], 500.0, 1.0);
  EXPECT_NEAR(out.shortfall[ProcType::kCpu], 2500.0, 1.0);
  EXPECT_NEAR(out.shortfall_min[ProcType::kCpu], 500.0, 1.0);
}

TEST(RrSim, TightDeadlineFlagsEndangered) {
  Fixture f(1);
  f.jobs.push_back(make_job(0, 0, 500.0, 300.0, f.host));
  const RrSimOutput out = f.run({1.0});
  EXPECT_TRUE(f.jobs[0].deadline_endangered);
  EXPECT_EQ(out.n_endangered, 1);
}

TEST(RrSim, EqualSharesHalveRates) {
  Fixture f(1);
  f.jobs.push_back(make_job(0, 0, 500.0, 1e9, f.host));
  f.jobs.push_back(make_job(1, 1, 600.0, 1e9, f.host));
  f.run({0.5, 0.5});
  // Both run at half speed; when job 0 completes at 1000, job 1 has 100 s
  // of work left and speeds up to full rate: finish 1100.
  EXPECT_NEAR(f.jobs[0].rr_projected_finish, 1000.0, 2.0);
  EXPECT_NEAR(f.jobs[1].rr_projected_finish, 1100.0, 2.0);
}

TEST(RrSim, UnequalSharesSplitProportionally) {
  Fixture f(1);
  f.jobs.push_back(make_job(0, 0, 750.0, 1e9, f.host));
  f.jobs.push_back(make_job(1, 1, 250.0, 1e9, f.host));
  f.run({0.75, 0.25});
  // P0 at 75%: finishes 750/0.75 = 1000; P1 at 25%: 250/0.25 = 1000.
  EXPECT_NEAR(f.jobs[0].rr_projected_finish, 1000.0, 2.0);
  EXPECT_NEAR(f.jobs[1].rr_projected_finish, 1000.0, 2.0);
}

TEST(RrSim, FifoWithinProject) {
  Fixture f(1);
  f.jobs.push_back(make_job(0, 0, 300.0, 1e9, f.host));
  f.jobs.push_back(make_job(1, 0, 300.0, 1e9, f.host));
  f.run({1.0});
  EXPECT_NEAR(f.jobs[0].rr_projected_finish, 300.0, 1.0);
  EXPECT_NEAR(f.jobs[1].rr_projected_finish, 600.0, 1.0);
}

TEST(RrSim, LeftoverCapacityRedistributed) {
  // 4 CPUs, project 0 (share 0.5) has one job, project 1 (share 0.5) has
  // four: p0 can't use its 2-CPU quota, so p1's jobs absorb the leftover
  // and all four run at full speed.
  Fixture f(4);
  f.jobs.push_back(make_job(0, 0, 1000.0, 1e9, f.host));
  for (int i = 1; i <= 4; ++i) {
    f.jobs.push_back(make_job(i, 1, 1000.0, 1e9, f.host));
  }
  const RrSimOutput out = f.run({0.5, 0.5});
  EXPECT_NEAR(f.jobs[0].rr_projected_finish, 1000.0, 2.0);
  // P1's quota (2 CPUs) covers jobs 1-2 FIFO; the leftover CPU (p0 only
  // demands one of its two) goes to job 3. Job 4 waits for a free slot.
  for (int i = 1; i <= 3; ++i) {
    EXPECT_NEAR(f.jobs[static_cast<std::size_t>(i)].rr_projected_finish,
                1000.0, 5.0);
  }
  EXPECT_NEAR(f.jobs[4].rr_projected_finish, 2000.0, 5.0);
  EXPECT_NEAR(out.saturated[ProcType::kCpu], 1000.0, 5.0);
}

TEST(RrSim, GpuAndCpuIndependent) {
  Fixture f(2, 1);
  f.jobs.push_back(make_job(0, 0, 400.0, 1e9, f.host));
  f.jobs.push_back(make_job(1, 0, 700.0, 1e9, f.host,
                            ResourceUsage::gpu(ProcType::kNvidia, 1.0)));
  const RrSimOutput out = f.run({1.0});
  EXPECT_NEAR(f.jobs[0].rr_projected_finish, 400.0, 1.0);
  EXPECT_NEAR(f.jobs[1].rr_projected_finish, 700.0, 1.0);
  EXPECT_NEAR(out.saturated[ProcType::kNvidia], 700.0, 1.0);
  // One of two CPUs is always idle here.
  EXPECT_DOUBLE_EQ(out.idle_instances_now[ProcType::kCpu], 1.0);
}

TEST(RrSim, AvailabilityDeratesRates) {
  Fixture f(1);
  f.avail[ProcType::kCpu] = 0.5;
  f.jobs.push_back(make_job(0, 0, 500.0, 1e9, f.host));
  f.run({1.0});
  EXPECT_NEAR(f.jobs[0].rr_projected_finish, 1000.0, 2.0);
}

TEST(RrSim, KEarliestPromotion) {
  // Two jobs, same project; the later-queued one has the EARLIER deadline
  // and would be flagged... actually FIFO order runs job0 first; job1
  // misses. With equal flagged count k=1, the promotion must move the flag
  // to the earliest-deadline job (job1 here).
  Fixture f(1);
  f.jobs.push_back(make_job(0, 0, 600.0, 5000.0, f.host));
  f.jobs.push_back(make_job(1, 0, 600.0, 700.0, f.host));
  f.run({1.0});
  int flagged = (f.jobs[0].deadline_endangered ? 1 : 0) +
                (f.jobs[1].deadline_endangered ? 1 : 0);
  EXPECT_EQ(flagged, 1);
  EXPECT_TRUE(f.jobs[1].deadline_endangered);
  EXPECT_FALSE(f.jobs[0].deadline_endangered);
}

TEST(RrSim, PromotionPreservesCount) {
  Fixture f(1);
  // Four same-deadline jobs, only ~2 can finish in time at full speed.
  for (int i = 0; i < 4; ++i) {
    f.jobs.push_back(make_job(i, 0, 500.0, 1100.0, f.host));
  }
  const RrSimOutput out = f.run({1.0});
  int flagged = 0;
  for (const auto& j : f.jobs) flagged += j.deadline_endangered ? 1 : 0;
  EXPECT_EQ(flagged, out.n_endangered);
  EXPECT_EQ(flagged, 2);
  // Promotion moves the k flags to the project's k *earliest-deadline*
  // jobs (ties broken FIFO): EDF then rescues what is still rescuable.
  EXPECT_TRUE(f.jobs[0].deadline_endangered);
  EXPECT_TRUE(f.jobs[1].deadline_endangered);
  EXPECT_FALSE(f.jobs[2].deadline_endangered);
  EXPECT_FALSE(f.jobs[3].deadline_endangered);
}

TEST(RrSim, FractionalGpuJobsShareAnInstance) {
  Fixture f(4, 1);
  // Two half-GPU jobs of the same project: together they demand exactly
  // the one instance and run concurrently at full per-job speed.
  f.jobs.push_back(make_job(0, 0, 1000.0, 1e9, f.host,
                            ResourceUsage::gpu(ProcType::kNvidia, 0.5)));
  f.jobs.push_back(make_job(1, 0, 1000.0, 1e9, f.host,
                            ResourceUsage::gpu(ProcType::kNvidia, 0.5)));
  const RrSimOutput out = f.run({1.0});
  EXPECT_NEAR(f.jobs[0].rr_projected_finish, 1000.0, 2.0);
  EXPECT_NEAR(f.jobs[1].rr_projected_finish, 1000.0, 2.0);
  EXPECT_NEAR(out.saturated[ProcType::kNvidia], 1000.0, 2.0);
}

TEST(RrSim, FractionalGpuOverDemandSlowsJobs) {
  Fixture f(4, 1);
  // Three half-GPU jobs demand 1.5 instances of the single GPU: FIFO
  // water-filling grants the first two their full half and the third gets
  // nothing until a slot frees.
  for (int i = 0; i < 3; ++i) {
    f.jobs.push_back(make_job(i, 0, 1000.0, 1e9, f.host,
                              ResourceUsage::gpu(ProcType::kNvidia, 0.5)));
  }
  f.run({1.0});
  EXPECT_NEAR(f.jobs[0].rr_projected_finish, 1000.0, 2.0);
  EXPECT_NEAR(f.jobs[1].rr_projected_finish, 1000.0, 2.0);
  EXPECT_NEAR(f.jobs[2].rr_projected_finish, 2000.0, 2.0);
}

TEST(RrSim, DcfScalesUnstartedEstimates) {
  Fixture f(1);
  Result r = make_job(0, 0, 1000.0, 1e9, f.host);
  r.est_correction = 2.0;  // client learned jobs run 2x the estimate
  f.jobs.push_back(r);
  f.run({1.0});
  EXPECT_NEAR(f.jobs[0].rr_projected_finish, 2000.0, 2.0);
}

TEST(RrSim, CompleteJobsAreIgnored) {
  Fixture f(1);
  Result r = make_job(0, 0, 500.0, 1000.0, f.host);
  r.flops_done = r.flops_total;
  f.jobs.push_back(r);
  const RrSimOutput out = f.run({1.0});
  EXPECT_DOUBLE_EQ(out.saturated[ProcType::kCpu], 0.0);
  EXPECT_DOUBLE_EQ(out.shortfall[ProcType::kCpu], 3000.0);
}

TEST(RrSim, StartedJobUsesTrueRemaining) {
  Fixture f(1);
  Result r = make_job(0, 0, 1000.0, 1e9, f.host);
  r.flops_est = 1e15;  // wildly wrong server estimate
  r.flops_done = 400e9;  // running: fraction-done corrects it
  f.jobs.push_back(r);
  f.run({1.0});
  EXPECT_NEAR(f.jobs[0].rr_projected_finish, 600.0, 1.0);
}

TEST(RrSim, ProfileIsMonotoneAndBounded) {
  Fixture f(4, 1);
  Xoshiro256 rng(7);
  for (int i = 0; i < 30; ++i) {
    const bool gpu = i % 3 == 0;
    f.jobs.push_back(make_job(
        i, i % 4, rng.uniform(100.0, 2000.0), rng.uniform(500.0, 20000.0),
        f.host,
        gpu ? ResourceUsage::gpu(ProcType::kNvidia, 1.0)
            : ResourceUsage::cpu(1.0)));
  }
  const RrSimOutput out = f.run({0.4, 0.3, 0.2, 0.1});
  ASSERT_FALSE(out.profile.empty());
  SimTime prev = -1.0;
  for (const auto& pp : out.profile) {
    EXPECT_GT(pp.t, prev) << "profile times must be strictly increasing";
    prev = pp.t;
    for (const auto t : kAllProcTypes) {
      EXPECT_GE(pp.busy[t], -1e-9);
      EXPECT_LE(pp.busy[t], f.host.count[t] + 1e-9);
    }
  }
}

// -----------------------------------------------------------------------
// Property sweep over random workloads: invariants that must hold for any
// queue.
// -----------------------------------------------------------------------

class RrSimProperties : public ::testing::TestWithParam<int> {};

TEST_P(RrSimProperties, InvariantsHold) {
  Fixture f(4, 1);
  Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()));
  const int n = 1 + static_cast<int>(rng.below(40));
  const int n_proj = 1 + static_cast<int>(rng.below(5));
  for (int i = 0; i < n; ++i) {
    const bool gpu = rng.uniform01() < 0.3;
    f.jobs.push_back(make_job(
        i, static_cast<ProjectId>(rng.below(static_cast<std::uint64_t>(n_proj))),
        rng.uniform(10.0, 5000.0), rng.uniform(100.0, 50000.0), f.host,
        gpu ? ResourceUsage::gpu(ProcType::kNvidia, 1.0)
            : ResourceUsage::cpu(1.0)));
  }
  std::vector<double> shares(static_cast<std::size_t>(n_proj),
                             1.0 / n_proj);
  const RrSimOutput out = f.run(shares);

  for (const auto t : kAllProcTypes) {
    if (f.host.count[t] == 0) continue;
    // Shortfalls bounded by window * capacity and non-negative.
    EXPECT_GE(out.shortfall[t], -1e-6);
    EXPECT_LE(out.shortfall[t], f.prefs.max_queue * f.host.count[t] + 1e-6);
    EXPECT_GE(out.shortfall_min[t], -1e-6);
    EXPECT_LE(out.shortfall_min[t],
              f.prefs.min_queue * f.host.count[t] + 1e-6);
    EXPECT_LE(out.shortfall_min[t], out.shortfall[t] + 1e-6);
    // SAT non-negative and no longer than the simulated span.
    EXPECT_GE(out.saturated[t], 0.0);
    EXPECT_LE(out.saturated[t], out.span + 1e-6);
    // busy + idle = window capacity within the max window.
    EXPECT_NEAR(out.busy_inst_seconds[t] + out.shortfall[t],
                f.prefs.max_queue * f.host.count[t],
                1e-3 * f.prefs.max_queue * f.host.count[t]);
  }
  // Every job got a finite projection.
  for (const auto& j : f.jobs) {
    EXPECT_LT(j.rr_projected_finish, kNever);
    EXPECT_GT(j.rr_projected_finish, 0.0);
  }
  // Endangered count equals the number of flags.
  int flagged = 0;
  for (const auto& j : f.jobs) flagged += j.deadline_endangered ? 1 : 0;
  EXPECT_EQ(flagged, out.n_endangered);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RrSimProperties, ::testing::Range(1, 21));

}  // namespace
}  // namespace bce
