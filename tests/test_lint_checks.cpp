// In-process tests of the static-analysis engine (src/lint/): the
// include graph and layer map, the new determinism / layering /
// exit-codes checks against the fixtures under tests/lint_fixtures/,
// and the SARIF renderer's structure. The CLI surface (exit codes,
// byte-exact diagnostics) is pinned separately by test_bce_lint.cpp.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "core/exit_codes.hpp"
#include "lint/analyzer.hpp"
#include "lint/include_graph.hpp"

namespace {

namespace fs = std::filesystem;
using namespace bce::lint;

fs::path repo_root() { return fs::path(BCE_SOURCE_DIR); }

fs::path fixture(const std::string& name) {
  return repo_root() / "tests" / "lint_fixtures" / name;
}

// ---- registry -------------------------------------------------------------

TEST(LintRegistry, ChecksMatchExitCodeContract) {
  const auto checks = lint_checks();
  ASSERT_EQ(checks.size(), 10u);
  // Contract order: exit codes 2..11, in sequence.
  for (std::size_t i = 0; i < checks.size(); ++i) {
    EXPECT_EQ(checks[i].exit_code, static_cast<int>(i) + 2)
        << checks[i].name;
  }
  EXPECT_STREQ(checks.front().name, "trace-docs");
  EXPECT_STREQ(checks.back().name, "exit-codes");
  EXPECT_EQ(find_check("determinism")->exit_code, bce::kLintExitDeterminism);
  EXPECT_EQ(find_check("no-such-check"), nullptr);
}

// ---- include graph --------------------------------------------------------

TEST(IncludeGraph, LayerRanksFollowTheFrozenDag) {
  EXPECT_EQ(layer_rank("src/sim/event_queue.hpp"), 0);
  EXPECT_EQ(layer_rank("src/host/host_info.hpp"),
            layer_rank("src/model/project.hpp"));
  EXPECT_LT(layer_rank("src/client/accounting.hpp"),
            layer_rank("src/core/emulator.hpp"));
  EXPECT_LT(layer_rank("src/core/emulator.hpp"),
            layer_rank("src/fleet/supervisor.hpp"));
  EXPECT_LT(layer_rank("src/fleet/supervisor.hpp"),
            layer_rank("tools/bce_cli.cpp"));
  EXPECT_EQ(layer_rank("somewhere/else.hpp"), -1);
  EXPECT_EQ(layer_name("src/sim/rng.hpp"), "sim");
  EXPECT_EQ(layer_name("somewhere/else.hpp"), "?");
}

TEST(IncludeGraph, RealTreeEdgesResolveAndPointDownOrSideways) {
  const IncludeGraph g = build_include_graph(repo_root());
  // The graph must actually see the tree.
  EXPECT_GT(g.edges.size(), 50u);
  const auto it = g.edges.find("src/core/emulator.cpp");
  ASSERT_NE(it, g.edges.end());
  EXPECT_FALSE(it->second.empty());
  for (const auto& [node, edges] : g.edges) {
    const int from = layer_rank(node);
    EXPECT_GE(from, 0) << node << " is in no known layer";
    for (const auto& e : edges) {
      EXPECT_LE(layer_rank(e.target), from)
          << node << " -> " << e.target << " points upward";
      EXPECT_GT(e.line, 0);
    }
  }
}

TEST(IncludeGraph, RealTreeIsAcyclic) {
  const IncludeGraph g = build_include_graph(repo_root());
  const auto cycle = find_include_cycle(g);
  std::string chain;
  for (const auto& n : cycle) chain += n + " -> ";
  EXPECT_TRUE(cycle.empty()) << chain;
}

TEST(IncludeGraph, DetectsTheFixtureCycle) {
  const IncludeGraph g = build_include_graph(fixture("layering_cycle"));
  const auto cycle = find_include_cycle(g);
  ASSERT_GE(cycle.size(), 3u);
  // The chain closes on itself.
  EXPECT_EQ(cycle.front(), cycle.back());
  EXPECT_NE(std::find(cycle.begin(), cycle.end(), "src/sim/tick_a.hpp"),
            cycle.end());
}

// ---- new checks, in process ----------------------------------------------

TEST(DeterminismCheck, FlagsTheFixtureEntropySource) {
  const LintResult r =
      run_lint(fixture("nondeterministic_source"), {"determinism"});
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.exit_code, bce::kLintExitDeterminism);
  const Diagnostic& d = r.diagnostics[0];
  EXPECT_EQ(d.check, "determinism");
  EXPECT_EQ(d.file, "src/model/seed.hpp");
  EXPECT_EQ(d.line, 15);
  EXPECT_NE(d.message.find("std::random_device"), std::string::npos);
}

TEST(DeterminismCheck, RealTreeIsClean) {
  const LintResult r = run_lint(repo_root(), {"determinism"});
  std::string all;
  for (const auto& d : r.diagnostics) all += d.message + "\n";
  EXPECT_EQ(r.exit_code, 0) << all;
}

TEST(LayeringCheck, ReportsTheFixtureCycleChain) {
  const LintResult r = run_lint(fixture("layering_cycle"), {"layering"});
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.exit_code, bce::kLintExitLayering);
  EXPECT_NE(r.diagnostics[0].message.find(
                "include cycle: src/sim/tick_a.hpp -> src/sim/tick_b.hpp "
                "-> src/sim/tick_a.hpp"),
            std::string::npos)
      << r.diagnostics[0].message;
}

TEST(ExitCodesCheck, FlagsThePerToolCollision) {
  const LintResult r =
      run_lint(fixture("exit_code_collision"), {"exit-codes"});
  ASSERT_EQ(r.diagnostics.size(), 1u);
  EXPECT_EQ(r.exit_code, bce::kLintExitExitCodes);
  const Diagnostic& d = r.diagnostics[0];
  EXPECT_EQ(d.file, "src/core/exit_codes.hpp");
  EXPECT_GT(d.line, 0);
  EXPECT_NE(d.message.find("reuses exit code 3"), std::string::npos);
}

TEST(ExitCodesCheck, RealRegistryIsCleanAndDocumented) {
  const LintResult r = run_lint(repo_root(), {"exit-codes"});
  std::string all;
  for (const auto& d : r.diagnostics) all += d.message + "\n";
  EXPECT_EQ(r.exit_code, 0) << all;
}

// ---- renderers ------------------------------------------------------------

TEST(Renderers, TextFormatIsOneLinePerFinding) {
  const LintResult r =
      run_lint(fixture("nondeterministic_source"), {"determinism"});
  const std::string text = format_text(r.diagnostics);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1);
  EXPECT_EQ(text.rfind("bce_lint: determinism: ", 0), 0u);
}

TEST(Renderers, SarifCarriesRulesAndPhysicalLocations) {
  const LintResult r =
      run_lint(fixture("nondeterministic_source"), {"determinism"});
  const std::string sarif =
      format_sarif(r, fixture("nondeterministic_source"));
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"bce_lint\""), std::string::npos);
  // One rule per check, present even when that check reported nothing.
  for (const auto& c : lint_checks()) {
    EXPECT_NE(sarif.find("{\"id\": \"" + std::string(c.name) + "\""),
              std::string::npos)
        << c.name;
  }
  EXPECT_NE(sarif.find("\"ruleId\": \"determinism\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\": \"src/model/seed.hpp\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 15"), std::string::npos);
  EXPECT_NE(sarif.find("\"uriBaseId\": \"ROOTDIR\""), std::string::npos);
}

TEST(Renderers, SarifEscapesQuotesInMessages) {
  LintResult r;
  r.diagnostics.push_back(
      {"layering", "path with \"quotes\" and \\backslash", "", 0, 0});
  const std::string sarif = format_sarif(r, repo_root());
  EXPECT_NE(sarif.find("\\\"quotes\\\""), std::string::npos);
  EXPECT_NE(sarif.find("\\\\backslash"), std::string::npos);
}

}  // namespace
