// Unit tests for the simulated project server (server/project_server):
// request filling, estimate error, deadline checks, downtime, and sporadic
// per-class job availability.

#include <gtest/gtest.h>

#include <cmath>

#include "server/project_server.hpp"

namespace bce {
namespace {

struct Fixture {
  HostInfo host = HostInfo::cpu_only(4, 1e9);
  ProjectConfig cfg;
  ServerPolicy policy;
  Trace log;
  JobId next_id = 0;

  Fixture() {
    cfg.name = "p";
    JobClass jc;
    jc.name = "cpu";
    jc.flops_est = 1000e9;  // 1000 s
    jc.latency_bound = 86400.0;
    jc.usage = ResourceUsage::cpu(1.0);
    cfg.job_classes.push_back(jc);
  }

  ProjectServer make(std::uint64_t seed = 1, double avail = 1.0) {
    return ProjectServer(0, cfg, host, policy, avail, Xoshiro256(seed), 0.0);
  }

  static WorkRequest cpu_request(double secs, double instances = 0.0,
                                 double delay = 0.0) {
    WorkRequest req;
    req.req_seconds[ProcType::kCpu] = secs;
    req.req_instances[ProcType::kCpu] = instances;
    req.est_delay[ProcType::kCpu] = delay;
    return req;
  }
};

TEST(ProjectServer, FillsRequestedSeconds) {
  Fixture f;
  ProjectServer srv = f.make();
  const RpcReply r = srv.handle_rpc(0.0, Fixture::cpu_request(3500.0), 0,
                                    f.next_id, f.log);
  // Each job covers ~1000 inst-sec; four are needed to reach 3500.
  EXPECT_EQ(r.jobs.size(), 4u);
  EXPECT_FALSE(r.project_down);
}

TEST(ProjectServer, SendsAtLeastOnePerIdleInstance) {
  Fixture f;
  ProjectServer srv = f.make();
  const RpcReply r = srv.handle_rpc(0.0, Fixture::cpu_request(0.0, 3.0), 0,
                                    f.next_id, f.log);
  EXPECT_EQ(r.jobs.size(), 3u);
}

TEST(ProjectServer, EmptyRequestYieldsNothing) {
  Fixture f;
  ProjectServer srv = f.make();
  const RpcReply r = srv.handle_rpc(0.0, WorkRequest{}, 0, f.next_id, f.log);
  EXPECT_TRUE(r.jobs.empty());
}

TEST(ProjectServer, JobFieldsSetCorrectly) {
  Fixture f;
  ProjectServer srv = f.make();
  const RpcReply r =
      srv.handle_rpc(500.0, Fixture::cpu_request(100.0), 0, f.next_id, f.log);
  ASSERT_FALSE(r.jobs.empty());
  const Result& j = r.jobs[0];
  EXPECT_EQ(j.project, 0);
  EXPECT_DOUBLE_EQ(j.received, 500.0);
  EXPECT_DOUBLE_EQ(j.deadline, 500.0 + 86400.0);
  EXPECT_DOUBLE_EQ(j.flops_est, 1000e9);
  EXPECT_GT(j.flops_total, 0.0);
  EXPECT_DOUBLE_EQ(j.runnable_at, 500.0);
  EXPECT_FALSE(j.usage.uses_gpu());
}

TEST(ProjectServer, JobIdsUniqueAndSequential) {
  Fixture f;
  ProjectServer srv = f.make();
  const RpcReply r =
      srv.handle_rpc(0.0, Fixture::cpu_request(5000.0), 0, f.next_id, f.log);
  for (std::size_t i = 0; i < r.jobs.size(); ++i) {
    EXPECT_EQ(r.jobs[i].id, static_cast<JobId>(i));
  }
  EXPECT_EQ(f.next_id, static_cast<JobId>(r.jobs.size()));
}

TEST(ProjectServer, EstimateErrorBiasesActualSize) {
  Fixture f;
  f.cfg.job_classes[0].est_error = 2.0;
  ProjectServer srv = f.make();
  const RpcReply r =
      srv.handle_rpc(0.0, Fixture::cpu_request(100.0), 0, f.next_id, f.log);
  ASSERT_FALSE(r.jobs.empty());
  EXPECT_DOUBLE_EQ(r.jobs[0].flops_est, 1000e9);
  EXPECT_DOUBLE_EQ(r.jobs[0].flops_total, 2000e9);  // cv=0: deterministic
}

TEST(ProjectServer, RuntimeVarianceDrawsDiffer) {
  Fixture f;
  f.cfg.job_classes[0].flops_cv = 0.2;
  ProjectServer srv = f.make();
  const RpcReply r =
      srv.handle_rpc(0.0, Fixture::cpu_request(3000.0), 0, f.next_id, f.log);
  ASSERT_GE(r.jobs.size(), 2u);
  EXPECT_NE(r.jobs[0].flops_total, r.jobs[1].flops_total);
  for (const auto& j : r.jobs) EXPECT_GT(j.flops_total, 0.0);
}

TEST(ProjectServer, MaxJobsPerRpcCaps) {
  Fixture f;
  f.policy.max_jobs_per_rpc = 5;
  ProjectServer srv = f.make();
  const RpcReply r =
      srv.handle_rpc(0.0, Fixture::cpu_request(1e9), 0, f.next_id, f.log);
  EXPECT_EQ(r.jobs.size(), 5u);
}

TEST(ProjectServer, DownServerRejects) {
  Fixture f;
  f.cfg.up = OnOffSpec::markov(1000.0, 1000.0, /*begin_on=*/false);
  ProjectServer srv = f.make();
  const RpcReply r =
      srv.handle_rpc(0.0, Fixture::cpu_request(100.0), 0, f.next_id, f.log);
  EXPECT_TRUE(r.project_down);
  EXPECT_TRUE(r.jobs.empty());
}

TEST(ProjectServer, WrongTypeRequestedSignalsNothing) {
  Fixture f;  // CPU-only project
  ProjectServer srv = f.make();
  WorkRequest req;
  req.req_seconds[ProcType::kNvidia] = 1000.0;
  const RpcReply r = srv.handle_rpc(0.0, req, 0, f.next_id, f.log);
  EXPECT_TRUE(r.jobs.empty());
  // The project never had nvidia jobs, so no "no jobs right now" backoff
  // signal either.
  EXPECT_FALSE(r.no_jobs_for[ProcType::kNvidia]);
}

TEST(ProjectServer, SporadicClassUnavailabilitySignalsBackoff) {
  Fixture f;
  f.cfg.job_classes[0].avail = OnOffSpec::markov(1000.0, 1000.0, false);
  ProjectServer srv = f.make();
  const RpcReply r =
      srv.handle_rpc(0.0, Fixture::cpu_request(100.0), 0, f.next_id, f.log);
  EXPECT_TRUE(r.jobs.empty());
  EXPECT_TRUE(r.no_jobs_for[ProcType::kCpu]);
  EXPECT_FALSE(r.project_down);
}

TEST(ProjectServer, DeadlineCheckRefusesInfeasibleClass) {
  Fixture f;
  f.policy.deadline_check = true;
  f.cfg.job_classes[0].latency_bound = 500.0;  // runtime 1000 > latency
  ProjectServer srv = f.make();
  const RpcReply r =
      srv.handle_rpc(0.0, Fixture::cpu_request(2000.0), 0, f.next_id, f.log);
  EXPECT_TRUE(r.jobs.empty());
  EXPECT_TRUE(r.no_jobs_for[ProcType::kCpu]);
}

TEST(ProjectServer, DeadlineCheckAccountsForClientQueue) {
  Fixture f;
  f.policy.deadline_check = true;
  f.cfg.job_classes[0].latency_bound = 1500.0;
  ProjectServer srv = f.make();
  // With no queue: feasible (1000 <= 1500).
  RpcReply r = srv.handle_rpc(0.0, Fixture::cpu_request(500.0, 0.0, 0.0), 0,
                              f.next_id, f.log);
  EXPECT_FALSE(r.jobs.empty());
  // With a 1000 s reported queue delay: 1000+1000 > 1500 -> refused.
  r = srv.handle_rpc(100.0, Fixture::cpu_request(500.0, 0.0, 1000.0), 0,
                     f.next_id, f.log);
  EXPECT_TRUE(r.jobs.empty());
}

TEST(ProjectServer, DeadlineCheckLimitsBatchDepth) {
  Fixture f;
  f.policy.deadline_check = true;
  f.cfg.job_classes[0].latency_bound = 1500.0;
  f.host = HostInfo::cpu_only(1, 1e9);  // single instance: depth matters
  ProjectServer srv = f.make();
  // Request far more than one job's worth: the second job would start
  // after the first (delay 1000), 1000+1000 > 1500 -> only one sent.
  const RpcReply r =
      srv.handle_rpc(0.0, Fixture::cpu_request(10000.0), 0, f.next_id, f.log);
  EXPECT_EQ(r.jobs.size(), 1u);
}

TEST(ProjectServer, DeadlineCheckDeratesByHostAvailability) {
  Fixture f;
  f.policy.deadline_check = true;
  f.cfg.job_classes[0].latency_bound = 1500.0;
  // Host available 50% of the time: effective runtime 2000 > 1500.
  ProjectServer srv = f.make(1, /*avail=*/0.5);
  const RpcReply r =
      srv.handle_rpc(0.0, Fixture::cpu_request(500.0), 0, f.next_id, f.log);
  EXPECT_TRUE(r.jobs.empty());
}

TEST(ProjectServer, RotatesAmongClassesOfSameType) {
  Fixture f;
  JobClass second = f.cfg.job_classes[0];
  second.name = "cpu2";
  second.flops_est = 500e9;
  f.cfg.job_classes.push_back(second);
  ProjectServer srv = f.make();
  const RpcReply r =
      srv.handle_rpc(0.0, Fixture::cpu_request(2500.0), 0, f.next_id, f.log);
  ASSERT_GE(r.jobs.size(), 2u);
  EXPECT_NE(r.jobs[0].job_class, r.jobs[1].job_class);
}

TEST(ProjectServer, DeterministicGivenSeed) {
  Fixture f;
  f.cfg.job_classes[0].flops_cv = 0.3;
  ProjectServer a = f.make(7);
  JobId ida = 0;
  Fixture g;
  g.cfg.job_classes[0].flops_cv = 0.3;
  ProjectServer b = g.make(7);
  JobId idb = 0;
  const RpcReply ra = a.handle_rpc(0.0, Fixture::cpu_request(5000.0), 0, ida, f.log);
  const RpcReply rb = b.handle_rpc(0.0, Fixture::cpu_request(5000.0), 0, idb, g.log);
  ASSERT_EQ(ra.jobs.size(), rb.jobs.size());
  for (std::size_t i = 0; i < ra.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.jobs[i].flops_total, rb.jobs[i].flops_total);
  }
}

TEST(ProjectServer, MaxInProgressCapsDispatch) {
  Fixture f;
  f.cfg.max_jobs_in_progress = 2;
  ProjectServer srv = f.make();
  RpcReply r =
      srv.handle_rpc(0.0, Fixture::cpu_request(10000.0), 0, f.next_id, f.log);
  EXPECT_EQ(r.jobs.size(), 2u);
  EXPECT_EQ(srv.jobs_in_progress(), 2);
  // Further requests get nothing (and a backoff signal) until reports.
  r = srv.handle_rpc(100.0, Fixture::cpu_request(10000.0), 0, f.next_id, f.log);
  EXPECT_TRUE(r.jobs.empty());
  EXPECT_TRUE(r.no_jobs_for[ProcType::kCpu]);
  // Reporting one frees one slot.
  r = srv.handle_rpc(200.0, Fixture::cpu_request(10000.0), 1, f.next_id, f.log);
  EXPECT_EQ(r.jobs.size(), 1u);
  EXPECT_EQ(srv.jobs_in_progress(), 2);
}

TEST(ProjectServer, DurationCorrectionShrinksBatches) {
  Fixture f;
  ProjectServer srv = f.make();
  WorkRequest req = Fixture::cpu_request(4000.0);
  const RpcReply r1 = srv.handle_rpc(0.0, req, 0, f.next_id, f.log);
  EXPECT_EQ(r1.jobs.size(), 4u);  // 4 x 1000 s by the raw estimate
  req.duration_correction = 4.0;  // client learned jobs run 4x longer
  const RpcReply r2 = srv.handle_rpc(100.0, req, 0, f.next_id, f.log);
  EXPECT_EQ(r2.jobs.size(), 1u);  // one corrected job covers the request
}

TEST(ProjectServer, DurationCorrectionTightensDeadlineCheck) {
  Fixture f;
  f.policy.deadline_check = true;
  f.cfg.job_classes[0].latency_bound = 1500.0;
  ProjectServer srv = f.make();
  WorkRequest req = Fixture::cpu_request(500.0);
  req.duration_correction = 2.0;  // corrected runtime 2000 > 1500
  const RpcReply r = srv.handle_rpc(0.0, req, 0, f.next_id, f.log);
  EXPECT_TRUE(r.jobs.empty());
  EXPECT_TRUE(r.no_jobs_for[ProcType::kCpu]);
}

TEST(ProjectServer, InputBytesCopiedToJobs) {
  Fixture f;
  f.cfg.job_classes[0].input_bytes = 5e7;
  ProjectServer srv = f.make();
  const RpcReply r =
      srv.handle_rpc(0.0, Fixture::cpu_request(100.0), 0, f.next_id, f.log);
  ASSERT_FALSE(r.jobs.empty());
  EXPECT_DOUBLE_EQ(r.jobs[0].input_bytes, 5e7);
}

TEST(ProjectServer, GpuJobsForGpuRequest) {
  Fixture f;
  f.host = HostInfo::cpu_gpu(4, 1e9, 1, 10e9);
  JobClass g;
  g.name = "gpu";
  g.flops_est = 10000e9;  // 1000 s on the GPU
  g.latency_bound = 86400.0;
  g.usage = ResourceUsage::gpu(ProcType::kNvidia, 1.0, 0.05);
  f.cfg.job_classes.push_back(g);
  ProjectServer srv = f.make();
  WorkRequest req;
  req.req_seconds[ProcType::kNvidia] = 1500.0;
  const RpcReply r = srv.handle_rpc(0.0, req, 0, f.next_id, f.log);
  ASSERT_EQ(r.jobs.size(), 2u);
  for (const auto& j : r.jobs) {
    EXPECT_TRUE(j.usage.uses_gpu());
  }
}

}  // namespace
}  // namespace bce
