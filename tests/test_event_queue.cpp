// Unit tests for the discrete-event queue: ordering, FIFO tie-breaking,
// cancellation semantics, and stress behaviour.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace bce {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_time(), kNever);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.schedule(30.0, EventKind::kUser, 3);
  q.schedule(10.0, EventKind::kUser, 1);
  q.schedule(20.0, EventKind::kUser, 2);
  EXPECT_EQ(q.pop().payload, 1);
  EXPECT_EQ(q.pop().payload, 2);
  EXPECT_EQ(q.pop().payload, 3);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EqualTimesAreFifo) {
  EventQueue q;
  for (int i = 0; i < 10; ++i) q.schedule(5.0, EventKind::kUser, i);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(q.pop().payload, i);
}

TEST(EventQueue, NextTimeTracksFront) {
  EventQueue q;
  q.schedule(42.0, EventKind::kPoll);
  EXPECT_DOUBLE_EQ(q.next_time(), 42.0);
  q.schedule(7.0, EventKind::kPoll);
  EXPECT_DOUBLE_EQ(q.next_time(), 7.0);
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue q;
  const EventHandle h = q.schedule(10.0, EventKind::kUser, 1);
  q.schedule(20.0, EventKind::kUser, 2);
  EXPECT_TRUE(q.cancel(h));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.pop().payload, 2);
}

TEST(EventQueue, CancelFrontUpdatesNextTime) {
  EventQueue q;
  const EventHandle h = q.schedule(10.0, EventKind::kUser);
  q.schedule(20.0, EventKind::kUser);
  q.cancel(h);
  EXPECT_DOUBLE_EQ(q.next_time(), 20.0);
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue q;
  const EventHandle h = q.schedule(10.0, EventKind::kUser);
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.cancel(h));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelUnknownHandleIsNoop) {
  EventQueue q;
  q.schedule(10.0, EventKind::kUser);
  EXPECT_FALSE(q.cancel(kNoEvent));
  EXPECT_FALSE(q.cancel(9999));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelAfterPopIsNoop) {
  EventQueue q;
  const EventHandle h = q.schedule(10.0, EventKind::kUser);
  q.pop();
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueue, HandlesAreUnique) {
  EventQueue q;
  std::vector<EventHandle> hs;
  for (int i = 0; i < 100; ++i) hs.push_back(q.schedule(1.0, EventKind::kUser));
  std::sort(hs.begin(), hs.end());
  EXPECT_EQ(std::adjacent_find(hs.begin(), hs.end()), hs.end());
}

TEST(EventQueue, EventCarriesKindAndPayload) {
  EventQueue q;
  q.schedule(1.0, EventKind::kTaskCompletion, 1234);
  const Event ev = q.pop();
  EXPECT_EQ(ev.kind, EventKind::kTaskCompletion);
  EXPECT_EQ(ev.payload, 1234);
  EXPECT_DOUBLE_EQ(ev.at, 1.0);
}

TEST(EventQueue, ScheduledCountIsTotalEverScheduled) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule(1.0, EventKind::kUser);
  q.pop();
  q.pop();
  EXPECT_EQ(q.scheduled_count(), 5u);
}

TEST(EventQueue, ReserveDoesNotChangeBehavior) {
  EventQueue q;
  q.reserve(1024);
  for (int i = 0; i < 100; ++i) {
    q.schedule(static_cast<double>((i * 37) % 50), EventKind::kUser, i);
  }
  double last = -1.0;
  while (!q.empty()) {
    const Event ev = q.pop();
    EXPECT_GE(ev.at, last);
    last = ev.at;
  }
}

// Randomized differential test against a naive reference model: a plain
// vector searched linearly for the (time, handle) minimum. Any divergence
// in pop order, size, or next_time between the heap+bitmap implementation
// and the obviously-correct model is a bug.
TEST(EventQueue, StressMatchesNaiveReference) {
  EventQueue q;
  std::vector<Event> model;  // live events only
  Xoshiro256 rng(777);
  std::uint64_t popped = 0;
  for (int step = 0; step < 30000; ++step) {
    const auto r = rng.below(10);
    if (r < 5) {
      const double at = rng.uniform(0.0, 1000.0);
      const auto payload = static_cast<std::int64_t>(step);
      const EventHandle h = q.schedule(at, EventKind::kUser, payload);
      Event ev;
      ev.at = at;
      ev.kind = EventKind::kUser;
      ev.payload = payload;
      ev.handle = h;
      model.push_back(ev);
    } else if (r < 8 && !model.empty()) {
      const auto idx = rng.below(model.size());
      EXPECT_TRUE(q.cancel(model[idx].handle));
      model.erase(model.begin() + static_cast<std::ptrdiff_t>(idx));
    } else if (!model.empty()) {
      const auto it = std::min_element(
          model.begin(), model.end(), [](const Event& a, const Event& b) {
            if (a.at != b.at) return a.at < b.at;
            return a.handle < b.handle;
          });
      const Event expect = *it;
      model.erase(it);
      ASSERT_FALSE(q.empty());
      const Event got = q.pop();
      ASSERT_EQ(got.handle, expect.handle);
      EXPECT_EQ(got.at, expect.at);
      EXPECT_EQ(got.payload, expect.payload);
      ++popped;
    }
    ASSERT_EQ(q.size(), model.size());
    if (!model.empty()) {
      const double model_next =
          std::min_element(model.begin(), model.end(),
                           [](const Event& a, const Event& b) {
                             return a.at < b.at;
                           })
              ->at;
      ASSERT_EQ(q.next_time(), model_next);
    } else {
      ASSERT_TRUE(q.empty());
    }
  }
  EXPECT_GT(popped, 1000u);
}

TEST(EventQueue, StressRandomInterleaving) {
  EventQueue q;
  Xoshiro256 rng(321);
  std::vector<EventHandle> live;
  double last_popped = -1.0;
  int pops = 0;
  for (int step = 0; step < 20000; ++step) {
    const auto r = rng.below(10);
    if (r < 6) {
      // Schedule strictly ahead of the last popped time so order stays
      // verifiable.
      live.push_back(q.schedule(last_popped + 1.0 + rng.uniform(0.0, 100.0),
                                EventKind::kUser));
    } else if (r < 8 && !live.empty()) {
      const auto idx = rng.below(live.size());
      q.cancel(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else if (!q.empty()) {
      const Event ev = q.pop();
      EXPECT_GE(ev.at, last_popped);
      last_popped = ev.at;
      ++pops;
      live.erase(std::remove(live.begin(), live.end(), ev.handle), live.end());
    }
  }
  EXPECT_GT(pops, 1000);
  // Drain: everything left pops in order.
  while (!q.empty()) {
    const Event ev = q.pop();
    EXPECT_GE(ev.at, last_popped);
    last_popped = ev.at;
  }
}

}  // namespace
}  // namespace bce
