#pragma once

// Fixture: the other half of the cycle; see tick_a.hpp.

#include "sim/tick_a.hpp"

namespace bce_fixture {
inline int tick_b();
}  // namespace bce_fixture
