#pragma once

// Fixture: one half of a deliberate include cycle (tick_a -> tick_b ->
// tick_a). Both files sit in the same layer, so the only layering
// finding is the cycle itself.

#include "sim/tick_b.hpp"

namespace bce_fixture {
inline int tick_a() { return tick_b() + 1; }
}  // namespace bce_fixture
