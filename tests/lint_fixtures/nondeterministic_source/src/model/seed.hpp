#pragma once

// Fixture: bans entropy in emulation code. The only finding must be the
// real std::random_device below — the mentions in this comment and in
// the string literal are invisible to the token scan.

#include <random>
#include <string>

namespace bce_fixture {

inline const std::string kNote = "std::random_device in a literal";

inline unsigned fresh_seed() {
  std::random_device rd;
  return rd();
}

}  // namespace bce_fixture
