#pragma once

// Fixture: a registry whose "demo" tool assigns exit code 3 twice. Every
// row (including both colliding ones) is documented in this fixture's
// docs/static_analysis.md and the bce_lint roster is fully registered,
// so the duplicate code is the only exit-codes finding.

namespace bce {

struct ExitCodeInfo {
  const char* tool;
  int code;
  const char* name;
  const char* meaning;
};

// clang-format off
inline constexpr ExitCodeInfo kExitCodeRegistry[] = {
    {"demo", 3, "first-error", "the original owner of code 3"},
    {"demo", 3, "second-error", "collides with first-error"},

    {"bce_lint", 1, "lint-usage", "bad command line or unreadable --root"},
    {"bce_lint", 2, "lint-trace-docs", "undocumented or non-round-tripping TraceKind"},
    {"bce_lint", 3, "lint-policy-docs", "registered policy missing from docs/policies.md"},
    {"bce_lint", 4, "lint-logf", "raw Logger::logf call site outside the trace dispatcher"},
    {"bce_lint", 5, "lint-scenarios", "shipped scenario fails to parse or validate"},
    {"bce_lint", 6, "lint-iwyu", "header uses a std symbol without including its header"},
    {"bce_lint", 7, "lint-savestate-docs", "serialized savestate field missing from docs/savestate.md"},
    {"bce_lint", 8, "lint-fleet-docs", "fleet exit code or CLI flag missing from docs/fleet.md"},
    {"bce_lint", 9, "lint-determinism", "nondeterminism source in src/ without an allow comment"},
    {"bce_lint", 10, "lint-layering", "include cycle or upward include across the layer DAG"},
    {"bce_lint", 11, "lint-exit-codes", "exit-code registry collision or undocumented exit code"},
};
// clang-format on

}  // namespace bce
