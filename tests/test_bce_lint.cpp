// Tests for the bce_lint invariant linter (tools/bce_lint.cpp), run
// against the fixtures under tests/lint_fixtures/. Each fixture breaks
// exactly one contract and must produce that check's distinct exit code
// plus a one-line diagnostic; the real tree must be clean.
//
// The binary path arrives via BCE_LINT_BIN (tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;  // stdout + stderr
  int lines = 0;
};

LintRun run_lint(const std::string& args) {
  const std::string cmd = std::string(BCE_LINT_BIN) + " " + args + " 2>&1";
  LintRun r;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[512];
  while (std::fgets(buf, sizeof buf, pipe) != nullptr) {
    r.output += buf;
    ++r.lines;
  }
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string fixture(const std::string& name) {
  return std::string(BCE_SOURCE_DIR) + "/tests/lint_fixtures/" + name;
}

TEST(BceLint, RealTreeIsClean) {
  const LintRun r = run_lint("--root " + std::string(BCE_SOURCE_DIR));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.lines, 0) << r.output;
}

TEST(BceLint, UndocumentedTraceKindExits2) {
  const LintRun r = run_lint("--root " + fixture("unnamed_trace_kind") +
                             " --check trace-docs");
  EXPECT_EQ(r.exit_code, 2) << r.output;
  EXPECT_EQ(r.lines, 1) << r.output;
  EXPECT_NE(r.output.find("bce_lint: trace-docs: trace kind "
                          "\"rpc_reply_lost\" is missing"),
            std::string::npos)
      << r.output;
}

TEST(BceLint, UndocumentedPolicyExits3) {
  const LintRun r = run_lint("--root " + fixture("undocumented_policy") +
                             " --check policy-docs");
  EXPECT_EQ(r.exit_code, 3) << r.output;
  EXPECT_EQ(r.lines, 1) << r.output;
  EXPECT_NE(r.output.find(
                "bce_lint: policy-docs: registered policy \"JS_EDF\""),
            std::string::npos)
      << r.output;
}

TEST(BceLint, InvalidScenarioExits5) {
  const LintRun r =
      run_lint("--root " + fixture("bad_scenario") + " --check scenarios");
  EXPECT_EQ(r.exit_code, 5) << r.output;
  EXPECT_EQ(r.lines, 1) << r.output;
  EXPECT_NE(r.output.find("bce_lint: scenarios: inverted_queue.txt"),
            std::string::npos)
      << r.output;
}

TEST(BceLint, UndocumentedSavestateFieldExits7) {
  const LintRun r =
      run_lint("--root " + fixture("undocumented_savestate_field") +
               " --check savestate-docs");
  EXPECT_EQ(r.exit_code, 7) << r.output;
  EXPECT_EQ(r.lines, 1) << r.output;
  EXPECT_NE(r.output.find("bce_lint: savestate-docs: serialized field "
                          "\"rrsim.cache_hits\" is missing"),
            std::string::npos)
      << r.output;
}

TEST(BceLint, UndocumentedFleetFlagExits8) {
  const LintRun r = run_lint("--root " + fixture("undocumented_fleet_flag") +
                             " --check fleet-docs");
  EXPECT_EQ(r.exit_code, 8) << r.output;
  EXPECT_EQ(r.lines, 1) << r.output;
  EXPECT_NE(r.output.find("bce_lint: fleet-docs: fleet token "
                          "\"--partial-ok\" is missing"),
            std::string::npos)
      << r.output;
}

TEST(BceLint, SelectedCheckIgnoresOtherBreakage) {
  // Breakage outside the selected check must not leak into the exit
  // code: the trace-kind fixture also lacks docs/policies.md (3) and a
  // scenarios/ dir (5), but a logf-only run sees neither.
  const LintRun r = run_lint("--root " + fixture("unnamed_trace_kind") +
                             " --check policy-docs");
  EXPECT_EQ(r.exit_code, 3) << r.output;  // its policies.md is absent
  const LintRun logf_only =
      run_lint("--root " + fixture("unnamed_trace_kind") + " --check logf");
  EXPECT_EQ(logf_only.exit_code, 0) << logf_only.output;  // no src/ at all
}

TEST(BceLint, FirstFailingCheckDeterminesExitCode) {
  // The trace-kind fixture fails trace-docs (2), policy-docs (3, missing
  // file) and scenarios (5, missing dir); the full run reports the first.
  const LintRun r = run_lint("--root " + fixture("unnamed_trace_kind"));
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

TEST(BceLint, NondeterminismSourceExits9) {
  const LintRun r = run_lint("--root " + fixture("nondeterministic_source") +
                             " --check determinism");
  EXPECT_EQ(r.exit_code, 9) << r.output;
  EXPECT_EQ(r.lines, 1) << r.output;
  EXPECT_NE(r.output.find("bce_lint: determinism: src/model/seed.hpp:15: "
                          "nondeterminism source std::random_device"),
            std::string::npos)
      << r.output;
}

TEST(BceLint, IncludeCycleExits10) {
  const LintRun r = run_lint("--root " + fixture("layering_cycle") +
                             " --check layering");
  EXPECT_EQ(r.exit_code, 10) << r.output;
  EXPECT_EQ(r.lines, 1) << r.output;
  EXPECT_NE(r.output.find("bce_lint: layering: include cycle: "
                          "src/sim/tick_a.hpp -> src/sim/tick_b.hpp -> "
                          "src/sim/tick_a.hpp"),
            std::string::npos)
      << r.output;
}

TEST(BceLint, ExitCodeCollisionExits11) {
  const LintRun r = run_lint("--root " + fixture("exit_code_collision") +
                             " --check exit-codes");
  EXPECT_EQ(r.exit_code, 11) << r.output;
  EXPECT_EQ(r.lines, 1) << r.output;
  EXPECT_NE(r.output.find("bce_lint: exit-codes: "
                          "src/core/exit_codes.hpp:20: tool \"demo\" "
                          "reuses exit code 3"),
            std::string::npos)
      << r.output;
}

TEST(BceLint, ListChecksShowsNameExitAndDescription) {
  const LintRun r = run_lint("--list-checks");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.lines, 10) << r.output;
  EXPECT_NE(r.output.find("trace-docs"), std::string::npos);
  EXPECT_NE(r.output.find("exit 11"), std::string::npos);
  EXPECT_NE(r.output.find("determinism"), std::string::npos);
}

TEST(BceLint, SarifRendersFindingsWithLocations) {
  const LintRun r = run_lint("--root " + fixture("nondeterministic_source") +
                             " --check determinism --format sarif");
  EXPECT_EQ(r.exit_code, 9) << r.output;  // format never changes the code
  EXPECT_NE(r.output.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(r.output.find("\"ruleId\": \"determinism\""), std::string::npos);
  EXPECT_NE(r.output.find("\"uri\": \"src/model/seed.hpp\""),
            std::string::npos);
  EXPECT_NE(r.output.find("\"startLine\": 15"), std::string::npos);
}

TEST(BceLint, SarifOnCleanTreeHasEmptyResults) {
  const LintRun r = run_lint("--root " + std::string(BCE_SOURCE_DIR) +
                             " --check layering --format sarif");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("\"results\": ["), std::string::npos);
  EXPECT_EQ(r.output.find("\"ruleIndex\""), std::string::npos) << r.output;
}

TEST(BceLint, UnknownFormatIsAUsageError) {
  const LintRun r = run_lint("--format yaml");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("unknown format"), std::string::npos) << r.output;
}

TEST(BceLint, UnknownCheckIsAUsageError) {
  const LintRun r = run_lint("--check no_such_check");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("unknown check"), std::string::npos) << r.output;
}

TEST(BceLint, MissingRootIsAUsageError) {
  const LintRun r = run_lint("--root /nonexistent_dir_for_bce_lint");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("not a directory"), std::string::npos) << r.output;
}

}  // namespace
