// Whole-system property tests: invariants that must hold for ANY
// (scenario, policy, seed) combination. These sweep the full policy matrix
// over randomized scenarios and check conservation laws and cross-module
// consistency that no unit test can see.

#include <gtest/gtest.h>

#include <cmath>

#include "core/emulator.hpp"
#include "core/population.hpp"

namespace bce {
namespace {

struct Combo {
  JobSchedPolicy sched;
  FetchPolicy fetch;
  int seed;
};

class EmulatorInvariants : public ::testing::TestWithParam<Combo> {};

TEST_P(EmulatorInvariants, HoldOnSampledScenario) {
  const Combo combo = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(combo.seed) * 7919ull);
  PopulationParams pp;
  pp.duration = 0.5 * kSecondsPerDay;
  pp.max_projects = 6;
  Scenario sc = sample_scenario(rng, pp);

  EmulationOptions opt;
  opt.policy.sched = combo.sched;
  opt.policy.fetch = combo.fetch;
  const EmulationResult res = emulate(sc, opt);
  const Metrics& m = res.metrics;

  // --- conservation -----------------------------------------------------
  // Used FLOPs equal the sum of per-job spent FLOPs.
  double spent = 0.0;
  for (const auto& j : res.jobs) spent += j.flops_spent;
  EXPECT_NEAR(m.used_flops, spent, 1e-6 * std::max(1.0, spent));

  // Per-project stats add up to the global counters.
  std::int64_t fetched = 0;
  std::int64_t completed = 0;
  std::int64_t missed = 0;
  double ps_flops = 0.0;
  for (const auto& ps : res.project_stats) {
    fetched += ps.jobs_fetched;
    completed += ps.jobs_completed;
    missed += ps.jobs_missed;
    ps_flops += ps.flops_used;
    EXPECT_EQ(ps.turnaround.count(),
              static_cast<std::size_t>(ps.jobs_completed));
    EXPECT_LE(ps.jobs_missed, ps.jobs_completed);
  }
  EXPECT_EQ(fetched, m.n_jobs_fetched);
  EXPECT_EQ(completed, m.n_jobs_completed);
  EXPECT_EQ(missed, m.n_jobs_missed);
  EXPECT_NEAR(ps_flops, spent, 1e-6 * std::max(1.0, spent));

  // --- per-job sanity -----------------------------------------------------
  for (const auto& j : res.jobs) {
    EXPECT_GE(j.flops_spent,
              j.flops_done - 1e-9 * std::max(1.0, j.flops_done));
    EXPECT_GE(j.flops_done, 0.0);
    EXPECT_LE(j.flops_done, j.flops_total * (1.0 + 1e-9));
    if (j.is_complete()) {
      EXPECT_GE(j.completed_at, j.received);
      EXPECT_LE(j.completed_at, sc.duration + 1e-6);
      if (j.first_started < kNever) {
        EXPECT_LE(j.first_started, j.completed_at);
        EXPECT_GE(j.first_started, j.received - 1e-6);
      }
    }
    if (j.reported) EXPECT_TRUE(j.is_complete());
  }

  // --- metric ranges --------------------------------------------------
  for (const double v :
       {m.idle_fraction(), m.wasted_fraction(), m.share_violation(),
        m.monotony, m.rpcs_per_job_norm(), m.weighted_score()}) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  EXPECT_GE(m.n_rpcs, m.n_work_request_rpcs);
  EXPECT_GE(m.available_flops, 0.0);

  // Usage fractions sum to ~1 when anything ran.
  if (m.used_flops > 0.0) {
    double sum = 0.0;
    for (const double u : m.usage_fraction) sum += u;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }

  // Overcommit is bounded: at most one extra CPU's worth of the period.
  const double overcommit_allowance =
      sc.duration * sc.host.flops_per_instance[ProcType::kCpu];
  EXPECT_LE(m.used_flops, m.available_flops + overcommit_allowance + 1e-6);
}

std::vector<Combo> all_combos() {
  std::vector<Combo> out;
  for (const auto s :
       {JobSchedPolicy::kWrr, JobSchedPolicy::kLocal, JobSchedPolicy::kGlobal}) {
    for (const auto f : {FetchPolicy::kOrig, FetchPolicy::kHysteresis}) {
      for (int seed = 1; seed <= 3; ++seed) out.push_back({s, f, seed});
    }
  }
  return out;
}

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  std::string s;
  switch (info.param.sched) {
    case JobSchedPolicy::kWrr: s = "wrr"; break;
    case JobSchedPolicy::kLocal: s = "local"; break;
    case JobSchedPolicy::kGlobal: s = "global"; break;
  }
  s += info.param.fetch == FetchPolicy::kOrig ? "_orig" : "_hyst";
  s += "_s" + std::to_string(info.param.seed);
  return s;
}

INSTANTIATE_TEST_SUITE_P(PolicyMatrix, EmulatorInvariants,
                         ::testing::ValuesIn(all_combos()), combo_name);

// Extra-knob invariants: the same checks with every extension enabled at
// once (transfers, downtime, in-progress caps, estimate error, traces).
TEST(EmulatorInvariants, HoldWithAllExtensionsEnabled) {
  Scenario sc;
  sc.name = "kitchen_sink";
  sc.host = HostInfo::cpu_gpu(4, 1e9, 1, 10e9);
  sc.host.download_bandwidth_bps = 5e5;
  sc.duration = 1.0 * kSecondsPerDay;
  sc.prefs.min_queue = 1800.0;
  sc.prefs.max_queue = 7200.0;
  sc.availability.host_on =
      OnOffSpec::from_trace({{4.0 * 3600.0, true}, {1800.0, false}});
  OnOffSpec gpu_avail = OnOffSpec::markov(7200.0, 1800.0);
  gpu_avail.dist = PeriodDist::kWeibull;
  gpu_avail.shape = 1.5;
  sc.availability.gpu_allowed = gpu_avail;

  ProjectConfig p1;
  p1.name = "flaky";
  p1.resource_share = 100.0;
  p1.up = OnOffSpec::markov(10.0 * 3600.0, 3600.0);
  p1.max_jobs_in_progress = 4;
  JobClass j1;
  j1.flops_est = 1200e9;
  j1.flops_cv = 0.2;
  j1.est_error = 1.5;
  j1.latency_bound = 0.5 * kSecondsPerDay;
  j1.usage = ResourceUsage::cpu(1.0);
  j1.input_bytes = 2e7;
  p1.job_classes.push_back(j1);

  ProjectConfig p2;
  p2.name = "gpu";
  p2.resource_share = 50.0;
  JobClass j2;
  j2.flops_est = 9000e9;
  j2.flops_cv = 0.1;
  j2.latency_bound = 1.0 * kSecondsPerDay;
  j2.usage = ResourceUsage::gpu(ProcType::kNvidia, 1.0, 0.05);
  j2.input_bytes = 1e8;
  j2.checkpoint_period = kNever;
  p2.job_classes.push_back(j2);

  sc.projects = {p1, p2};
  std::string err;
  ASSERT_TRUE(sc.validate(&err)) << err;

  EmulationOptions opt;
  opt.policy.fetch_deadline_suppression = true;
  opt.policy.transfer_order = TransferOrder::kEdf;
  const EmulationResult res = emulate(sc, opt);

  double spent = 0.0;
  for (const auto& j : res.jobs) {
    spent += j.flops_spent;
    EXPECT_GE(j.flops_spent,
              j.flops_done - 1e-9 * std::max(1.0, j.flops_done));
    if (j.reported) EXPECT_TRUE(j.is_complete());
  }
  EXPECT_NEAR(res.metrics.used_flops, spent, 1e-6 * std::max(1.0, spent));
  EXPECT_GT(res.metrics.n_jobs_completed, 0);

  // Determinism still holds with everything on.
  const EmulationResult res2 = emulate(sc, opt);
  EXPECT_DOUBLE_EQ(res.metrics.used_flops, res2.metrics.used_flops);
  EXPECT_EQ(res.metrics.n_rpcs, res2.metrics.n_rpcs);
}

}  // namespace
}  // namespace bce
