// Tests for the SVG chart writer (core/svg_plot).

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "core/svg_plot.hpp"

namespace bce {
namespace {

TEST(NiceTicks, CoversRangeWithRoundSteps) {
  const auto t = nice_ticks(0.0, 1.0, 6);
  ASSERT_GE(t.size(), 4u);
  EXPECT_DOUBLE_EQ(t.front(), 0.0);
  EXPECT_NEAR(t.back(), 1.0, 1e-9);
  const double step = t[1] - t[0];
  for (std::size_t i = 2; i < t.size(); ++i) {
    EXPECT_NEAR(t[i] - t[i - 1], step, 1e-9);
  }
}

TEST(NiceTicks, StepsAre125) {
  for (const auto& [lo, hi] : std::vector<std::pair<double, double>>{
           {0.0, 1.0}, {0.0, 37.0}, {0.0, 0.003}, {100.0, 2000.0}}) {
    const auto t = nice_ticks(lo, hi);
    ASSERT_GE(t.size(), 2u) << lo << ".." << hi;
    const double step = t[1] - t[0];
    const double mant = step / std::pow(10.0, std::floor(std::log10(step)));
    const bool ok = std::abs(mant - 1.0) < 1e-6 ||
                    std::abs(mant - 2.0) < 1e-6 ||
                    std::abs(mant - 5.0) < 1e-6;
    EXPECT_TRUE(ok) << "step " << step << " for " << lo << ".." << hi;
  }
}

TEST(NiceTicks, DegenerateRange) {
  const auto t = nice_ticks(5.0, 5.0);
  EXPECT_GE(t.size(), 2u);
}

TEST(SvgPlot, RenderContainsStructure) {
  SvgPlot plot("My Title", "slack (s)", "wasted fraction");
  plot.add_series({"JS_WRR", {{0.0, 0.5}, {500.0, 0.4}, {1000.0, 0.2}}});
  plot.add_series({"JS_GLOBAL", {{0.0, 0.4}, {500.0, 0.1}, {1000.0, 0.05}}});
  const std::string svg = plot.render();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("My Title"), std::string::npos);
  EXPECT_NE(svg.find("slack (s)"), std::string::npos);
  EXPECT_NE(svg.find("wasted fraction"), std::string::npos);
  EXPECT_NE(svg.find("JS_WRR"), std::string::npos);
  EXPECT_NE(svg.find("JS_GLOBAL"), std::string::npos);
  // Two polylines + markers.
  std::size_t n = 0;
  for (std::size_t pos = svg.find("<polyline"); pos != std::string::npos;
       pos = svg.find("<polyline", pos + 1)) {
    ++n;
  }
  EXPECT_EQ(n, 2u);
}

TEST(SvgPlot, EscapesMarkup) {
  SvgPlot plot("a < b & c", "x", "y");
  plot.add_series({"s<1>", {{0.0, 0.0}, {1.0, 1.0}}});
  const std::string svg = plot.render();
  EXPECT_EQ(svg.find("a < b &"), std::string::npos);
  EXPECT_NE(svg.find("a &lt; b &amp; c"), std::string::npos);
  EXPECT_NE(svg.find("s&lt;1&gt;"), std::string::npos);
}

TEST(SvgPlot, EmptyPlotStillRenders) {
  SvgPlot plot("empty", "x", "y");
  const std::string svg = plot.render();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(SvgPlot, SaveWritesFile) {
  SvgPlot plot("t", "x", "y");
  plot.add_series({"s", {{0.0, 1.0}, {1.0, 2.0}}});
  const std::string path = ::testing::TempDir() + "/bce_plot_test.svg";
  EXPECT_TRUE(plot.save(path));
  std::ifstream f(path);
  EXPECT_TRUE(f.good());
}

TEST(SvgPlot, SaveToBadPathFailsQuietly) {
  SvgPlot plot("t", "x", "y");
  EXPECT_FALSE(plot.save("/nonexistent_dir_xyz/plot.svg"));
}

TEST(SvgPlot, FixedYRangeClampsPoints) {
  SvgPlot plot("t", "x", "y");
  plot.set_y_range(0.0, 1.0);
  plot.add_series({"s", {{0.0, 5.0}}});  // out of range: clamped, no NaNs
  const std::string svg = plot.render();
  EXPECT_EQ(svg.find("nan"), std::string::npos);
}

}  // namespace
}  // namespace bce
