// The named policy registry: lookup by canonical name and alias, error
// reporting for unknown names, PolicyConfig round-trips, and the headline
// extensibility property — a policy registered from *outside* the library
// is selectable end-to-end through emulate() without touching the engine.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "client/policy_registry.hpp"
#include "core/emulator.hpp"
#include "core/paper_scenarios.hpp"

namespace bce {
namespace {

TEST(PolicyRegistry, BuiltinsAreRegistered) {
  auto& reg = policy_registry();
  for (const char* name : {"JS_WRR", "JS_LOCAL", "JS_GLOBAL", "JS_EDF"}) {
    EXPECT_TRUE(reg.has_job_order(name)) << name;
  }
  for (const char* name : {"JF_ORIG", "JF_HYSTERESIS", "JF_RR"}) {
    EXPECT_TRUE(reg.has_fetch(name)) << name;
  }
}

TEST(PolicyRegistry, AliasesResolve) {
  auto& reg = policy_registry();
  const PolicyConfig cfg;
  EXPECT_STREQ(reg.make_job_order("wrr", cfg)->name(), "JS_WRR");
  EXPECT_STREQ(reg.make_job_order("local", cfg)->name(), "JS_LOCAL");
  EXPECT_STREQ(reg.make_job_order("global", cfg)->name(), "JS_GLOBAL");
  EXPECT_STREQ(reg.make_job_order("JS_REC", cfg)->name(), "JS_GLOBAL");
  EXPECT_STREQ(reg.make_job_order("edf", cfg)->name(), "JS_EDF");
  EXPECT_STREQ(reg.make_fetch("orig", cfg)->name(), "JF_ORIG");
  EXPECT_STREQ(reg.make_fetch("hyst", cfg)->name(), "JF_HYSTERESIS");
  EXPECT_STREQ(reg.make_fetch("rr", cfg)->name(), "JF_RR");
}

TEST(PolicyRegistry, UnknownNameThrowsListingKnown) {
  auto& reg = policy_registry();
  const PolicyConfig cfg;
  try {
    reg.make_job_order("JS_BOGUS", cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("JS_BOGUS"), std::string::npos) << msg;
    EXPECT_NE(msg.find("JS_GLOBAL"), std::string::npos) << msg;
  }
  EXPECT_THROW(reg.make_fetch("JF_BOGUS", cfg), std::invalid_argument);
  EXPECT_FALSE(reg.has_job_order("JS_BOGUS"));
  EXPECT_FALSE(reg.has_fetch("JF_BOGUS"));
}

TEST(PolicyRegistry, EntriesCarryDescriptionsAndAliases) {
  const auto orders = policy_registry().job_order_entries();
  ASSERT_GE(orders.size(), 4u);
  bool found_global = false;
  for (const auto& e : orders) {
    EXPECT_FALSE(e.description.empty()) << e.name;
    if (e.name == "JS_GLOBAL") {
      found_global = true;
      EXPECT_NE(std::find(e.aliases.begin(), e.aliases.end(), "JS_REC"),
                e.aliases.end());
    }
  }
  EXPECT_TRUE(found_global);
  EXPECT_GE(policy_registry().fetch_entries().size(), 3u);
}

// PolicyConfig round-trip: every enum value resolves through the registry
// to a strategy whose name() matches the enum's canonical name, with and
// without the by-name override.
TEST(PolicyRegistry, PolicyConfigRoundTrip) {
  for (const auto s :
       {JobSchedPolicy::kWrr, JobSchedPolicy::kLocal, JobSchedPolicy::kGlobal,
        JobSchedPolicy::kEdfOnly}) {
    PolicyConfig pc;
    pc.sched = s;
    EXPECT_STREQ(make_job_order_policy(pc)->name(), pc.sched_name());
    EXPECT_EQ(pc.selected_sched_name(), pc.sched_name());
  }
  for (const auto f : {FetchPolicy::kOrig, FetchPolicy::kHysteresis,
                       FetchPolicy::kRoundRobin}) {
    PolicyConfig pc;
    pc.fetch = f;
    EXPECT_STREQ(make_fetch_policy(pc)->name(), pc.fetch_name());
    EXPECT_EQ(pc.selected_fetch_name(), pc.fetch_name());
  }
  // The by-name override wins over the enum.
  PolicyConfig pc;
  pc.sched = JobSchedPolicy::kWrr;
  pc.sched_by_name = "JS_EDF";
  pc.fetch = FetchPolicy::kOrig;
  pc.fetch_by_name = "rr";
  EXPECT_STREQ(make_job_order_policy(pc)->name(), "JS_EDF");
  EXPECT_STREQ(make_fetch_policy(pc)->name(), "JF_RR");
  EXPECT_EQ(pc.selected_sched_name(), "JS_EDF");
  EXPECT_EQ(pc.selected_fetch_name(), "rr");
}

/// A policy defined entirely in this test: first-come first-served within
/// the PRIO tiers, shares ignored. Registering it makes it selectable
/// through emulate() with zero engine changes.
class JsFifo final : public JobOrderPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "JS_FIFO"; }
  [[nodiscard]] double priority(const JobOrderContext&,
                                const Result& r) const override {
    return -r.received;  // earliest arrival = highest priority
  }
  void charge(JobOrderContext&, const Result&) const override {}
  [[nodiscard]] double fetch_priority(const Accounting& acct,
                                      ProjectId p) const override {
    return acct.prio_fetch_local(p);
  }
};

TEST(PolicyRegistry, CustomPolicyRunsEndToEnd) {
  policy_registry().register_job_order(
      "JS_FIFO", "first-come first-served within tiers",
      [](const PolicyConfig&) { return std::make_shared<const JsFifo>(); },
      {"fifo"});
  ASSERT_TRUE(policy_registry().has_job_order("fifo"));

  Scenario sc = paper_scenario1(1500.0);
  sc.duration = 1.0 * kSecondsPerDay;
  EmulationOptions opt;
  opt.policy.sched_by_name = "fifo";
  Emulator em(sc, opt);
  // The runtime resolved the by-name selection to the test's policy object.
  EXPECT_STREQ(em.client().job_order_policy().name(), "JS_FIFO");
  const EmulationResult res = em.run();
  EXPECT_GT(res.metrics.n_jobs_completed, 0);
}

// The versioned RR-sim cache: the fetch pass that follows each reschedule
// at the same instant reuses the reschedule's simulation instead of
// re-running it, so a full emulation reports at least one avoided
// recompute per work-fetch pass.
TEST(PolicyRegistry, RrSimCacheAvoidsFetchRecompute) {
  Scenario sc = paper_scenario1(1500.0);
  sc.duration = 1.0 * kSecondsPerDay;
  const EmulationResult res = emulate(sc, {});
  EXPECT_GT(res.rr_cache.hits, 0u);
  EXPECT_GT(res.rr_cache.misses, 0u);
  // Every pass is either a hit or a recompute; with sched+fetch sharing
  // state each step, hits make up a substantial fraction of all passes.
  EXPECT_GE(res.rr_cache.hits + res.rr_cache.misses,
            2 * res.rr_cache.hits);
}

TEST(PolicyRegistry, ReRegistrationLatestWins) {
  auto& reg = policy_registry();
  reg.register_job_order(
      "JS_TEST_SHADOW", "v1",
      [](const PolicyConfig&) { return std::make_shared<const JsFifo>(); });
  reg.register_job_order(
      "JS_TEST_SHADOW", "v2",
      [](const PolicyConfig&) { return std::make_shared<const JsFifo>(); },
      {"shadow"});
  int n = 0;
  for (const auto& e : reg.job_order_entries()) {
    if (e.name == "JS_TEST_SHADOW") {
      ++n;
      EXPECT_EQ(e.description, "v2");
      ASSERT_EQ(e.aliases.size(), 1u);
      EXPECT_EQ(e.aliases[0], "shadow");
    }
  }
  EXPECT_EQ(n, 1);
}

}  // namespace
}  // namespace bce
