// Tests for availability presets (host/availability_presets) and the
// replicate-averaging helper (core/controller).

#include <gtest/gtest.h>

#include "core/controller.hpp"
#include "core/paper_scenarios.hpp"
#include "host/availability_presets.hpp"

namespace bce {
namespace {

TEST(AvailabilityPresets, DedicatedIsAlwaysOn) {
  const HostAvailabilitySpec s = avail_dedicated();
  EXPECT_DOUBLE_EQ(s.host_on.expected_on_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(s.gpu_allowed.expected_on_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(s.network.expected_on_fraction(), 1.0);
}

TEST(AvailabilityPresets, OfficeWorkstationWindows) {
  const HostAvailabilitySpec s = avail_office_workstation();
  // On 8:00-18:00 on 5 of 7 days.
  EXPECT_NEAR(s.host_on.expected_on_fraction(), 5.0 * 10.0 / (7.0 * 24.0),
              1e-9);
  // GPU window wraps overnight and must not coincide with working hours.
  Xoshiro256 rng(1);
  HostAvailability av(s, rng, 12.0 * kSecondsPerHour);  // noon
  EXPECT_TRUE(av.cpu_computing_allowed());
  EXPECT_FALSE(av.gpu_computing_allowed());
}

TEST(AvailabilityPresets, EveningPcFraction) {
  const HostAvailabilitySpec s = avail_evening_pc();
  EXPECT_NEAR(s.host_on.expected_on_fraction(), 7.0 / 24.0, 1e-9);
}

TEST(AvailabilityPresets, LaptopIsIntermittent) {
  const HostAvailabilitySpec s = avail_laptop();
  EXPECT_LT(s.host_on.expected_on_fraction(), 0.5);
  EXPECT_EQ(s.host_on.dist, PeriodDist::kWeibull);
  EXPECT_LT(s.network.expected_on_fraction(), 1.0);
}

TEST(AvailabilityPresets, GamerRigYieldsGpuInTheEvening) {
  const HostAvailabilitySpec s = avail_gamer_rig();
  EXPECT_DOUBLE_EQ(s.host_on.expected_on_fraction(), 1.0);
  Xoshiro256 rng(1);
  HostAvailability av(s, rng, 20.0 * kSecondsPerHour);  // 20:00: gaming
  EXPECT_TRUE(av.cpu_computing_allowed());
  EXPECT_FALSE(av.gpu_computing_allowed());
  av.advance_to(23.5 * kSecondsPerHour);
  EXPECT_TRUE(av.gpu_computing_allowed());
}

TEST(AvailabilityPresets, PresetScenarioEmulates) {
  Scenario sc = paper_scenario1(1500.0);
  sc.duration = 0.5 * kSecondsPerDay;
  sc.availability = avail_laptop();
  const EmulationResult res = emulate(sc);
  // An intermittent host has less available capacity than wall clock.
  EXPECT_LT(res.metrics.available_flops, sc.duration * 1e9);
}

TEST(Replicates, AggregatesAcrossSeeds) {
  Scenario sc = paper_scenario1(1500.0);
  sc.duration = 0.1 * kSecondsPerDay;
  const ReplicateSummary sum = run_replicates(sc, {}, 4, 2);
  EXPECT_EQ(sum.runs.size(), 4u);
  EXPECT_EQ(sum.wasted.count(), 4u);
  EXPECT_GE(sum.wasted.min(), 0.0);
  EXPECT_LE(sum.wasted.max(), 1.0);
  // Different seeds -> runtimes differ (cv > 0) -> stats have spread.
  EXPECT_GT(sum.score.max(), sum.score.min());
}

TEST(Replicates, SeedsAreOneToN) {
  Scenario sc = paper_scenario1(1500.0);
  sc.duration = 0.05 * kSecondsPerDay;
  sc.seed = 999;  // must be overridden per replicate
  const ReplicateSummary sum = run_replicates(sc, {}, 2, 1);
  Scenario s1 = sc;
  s1.seed = 1;
  const EmulationResult direct = emulate(s1);
  EXPECT_DOUBLE_EQ(sum.runs[0].metrics.used_flops, direct.metrics.used_flops);
}

}  // namespace
}  // namespace bce
