// Unit tests for the figures of merit (core/metrics).

#include <gtest/gtest.h>

#include <cmath>

#include "core/metrics.hpp"

namespace bce {
namespace {

const HostInfo kHost = HostInfo::cpu_only(2, 1e9);

TEST(Metrics, IdleFraction) {
  Metrics m;
  m.available_flops = 100.0;
  m.used_flops = 75.0;
  EXPECT_DOUBLE_EQ(m.idle_fraction(), 0.25);
}

TEST(Metrics, IdleFractionClamped) {
  Metrics m;
  m.available_flops = 100.0;
  m.used_flops = 150.0;  // overcommit can push usage past "available"
  EXPECT_DOUBLE_EQ(m.idle_fraction(), 0.0);
}

TEST(Metrics, NoCapacityMeansZeroIdle) {
  Metrics m;
  EXPECT_DOUBLE_EQ(m.idle_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(m.wasted_fraction(), 0.0);
}

TEST(Metrics, RpcsPerJobAndNorm) {
  Metrics m;
  m.n_rpcs = 30;
  m.n_jobs_completed = 10;
  EXPECT_DOUBLE_EQ(m.rpcs_per_job(), 3.0);
  EXPECT_DOUBLE_EQ(m.rpcs_per_job_norm(), 0.75);
}

TEST(Metrics, WeightedScoreEqualWeights) {
  Metrics m;
  m.available_flops = 100.0;
  m.used_flops = 50.0;   // idle 0.5
  m.wasted_flops = 25.0; // wasted 0.25
  m.share_violation_rms = 0.1;
  m.monotony = 0.2;
  m.n_rpcs = 10;
  m.n_jobs_completed = 10;  // rpcs/job 1 -> norm 0.5
  EXPECT_NEAR(m.weighted_score(), (0.5 + 0.25 + 0.1 + 0.2 + 0.5) / 5.0, 1e-12);
}

TEST(Metrics, WeightedScoreRespectsWeights) {
  Metrics m;
  m.available_flops = 100.0;
  m.used_flops = 0.0;  // idle = 1
  MetricWeights w;
  w.idle = 1.0;
  w.wasted = w.share_violation = w.monotony = w.rpcs_per_job = 0.0;
  EXPECT_DOUBLE_EQ(m.weighted_score(w), 1.0);
}

TEST(Metrics, SummaryMentionsKeyNumbers) {
  Metrics m;
  m.n_jobs_completed = 42;
  const std::string s = m.summary();
  EXPECT_NE(s.find("jobs=42"), std::string::npos);
  EXPECT_NE(s.find("idle="), std::string::npos);
}

TEST(MetricsCollector, UsageAndShareViolation) {
  MetricsCollector c(kHost, {0.5, 0.5});
  // Project 0 does all the work.
  c.note_interval(100.0, 2e9, {2e9 * 100.0, 0.0}, 0);
  const Metrics m = c.finalize({}, 100.0);
  EXPECT_DOUBLE_EQ(m.idle_fraction(), 0.0);
  ASSERT_EQ(m.usage_fraction.size(), 2u);
  EXPECT_DOUBLE_EQ(m.usage_fraction[0], 1.0);
  // RMS of (1-0.5, 0-0.5) = 0.5.
  EXPECT_NEAR(m.share_violation(), 0.5, 1e-12);
}

TEST(MetricsCollector, BalancedUsageZeroViolation) {
  MetricsCollector c(kHost, {0.5, 0.5});
  c.note_interval(100.0, 2e9, {1e9 * 100.0, 1e9 * 100.0}, kNoProject);
  const Metrics m = c.finalize({}, 100.0);
  EXPECT_NEAR(m.share_violation(), 0.0, 1e-12);
}

TEST(MetricsCollector, MonotonyZeroWhenInterleaved) {
  MetricsCollector c(kHost, {0.5, 0.5});
  for (int i = 0; i < 100; ++i) {
    c.note_interval(10.0, 2e9, {1.0, 1.0}, kNoProject);  // both running
  }
  const Metrics m = c.finalize({}, 1000.0);
  EXPECT_DOUBLE_EQ(m.monotony, 0.0);
}

TEST(MetricsCollector, MonotonyHighForLongExclusiveStreaks) {
  MetricsCollector c(kHost, {0.5, 0.5});
  // One project exclusively for 10 hours, then the other.
  c.note_interval(36000.0, 2e9, {1.0, 0.0}, 0);
  c.note_interval(36000.0, 2e9, {0.0, 1.0}, 1);
  const Metrics m = c.finalize({}, 72000.0);
  EXPECT_NEAR(m.mean_exclusive_streak, 36000.0, 1.0);
  EXPECT_NEAR(m.monotony, 36000.0 / (36000.0 + 3600.0), 1e-6);
}

TEST(MetricsCollector, AdjacentIntervalsSameProjectMerge) {
  MetricsCollector c(kHost, {0.5, 0.5});
  for (int i = 0; i < 10; ++i) c.note_interval(600.0, 2e9, {1.0, 0.0}, 0);
  const Metrics m = c.finalize({}, 6000.0);
  EXPECT_NEAR(m.mean_exclusive_streak, 6000.0, 1.0);
}

TEST(MetricsCollector, MonotonyNotDefinedForSingleProject) {
  MetricsCollector c(kHost, {1.0});
  c.note_interval(36000.0, 2e9, {1.0}, 0);
  const Metrics m = c.finalize({}, 36000.0);
  EXPECT_DOUBLE_EQ(m.monotony, 0.0);
}

TEST(MetricsCollector, WasteAttribution) {
  MetricsCollector c(kHost, {1.0});
  Result missed;
  missed.flops_total = missed.flops_done = 100.0;
  missed.flops_spent = 120.0;  // includes rollback losses
  missed.deadline = 50.0;
  missed.completed_at = 60.0;  // completed late

  Result ontime;
  ontime.flops_total = ontime.flops_done = 100.0;
  ontime.flops_spent = 100.0;
  ontime.deadline = 50.0;
  ontime.completed_at = 40.0;

  Result abandoned;  // unfinished, deadline already passed
  abandoned.flops_total = 100.0;
  abandoned.flops_done = 30.0;
  abandoned.flops_spent = 30.0;
  abandoned.deadline = 80.0;

  Result pending;  // unfinished but deadline still ahead
  pending.flops_total = 100.0;
  pending.flops_done = 30.0;
  pending.flops_spent = 30.0;
  pending.deadline = 500.0;

  c.note_interval(100.0, 2e9, {250.0}, 0);
  const Metrics m =
      c.finalize({&missed, &ontime, &abandoned, &pending}, 100.0);
  EXPECT_DOUBLE_EQ(m.wasted_flops, 120.0 + 30.0);
  EXPECT_EQ(m.n_jobs_abandoned, 1);
}

}  // namespace
}  // namespace bce
