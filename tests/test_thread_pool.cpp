// Unit tests for the persistent ThreadPool and the controller batch
// semantics built on it: completion, exception propagation (first error
// wins, fail fast), 1-vs-N determinism, reuse across batches, and the
// run_batch regression for partially-labelled results.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/bce.hpp"
#include "sim/thread_pool.hpp"

namespace bce {
namespace {

TEST(ResolveThreadCount, ExplicitRequestWins) {
  EXPECT_EQ(resolve_thread_count(3), 3u);
  EXPECT_EQ(resolve_thread_count(1), 1u);
}

TEST(ResolveThreadCount, ZeroFallsBackToEnvThenHardware) {
  ASSERT_EQ(setenv("BCE_THREADS", "5", 1), 0);
  EXPECT_EQ(resolve_thread_count(0), 5u);
  ASSERT_EQ(setenv("BCE_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(resolve_thread_count(0), 1u);  // ignored, hardware fallback
  ASSERT_EQ(unsetenv("BCE_THREADS"), 0);
  EXPECT_GE(resolve_thread_count(0), 1u);
}

TEST(ThreadPool, RunsEveryItemExactlyOnce) {
  ThreadPool pool;
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(hits.size(), 4,
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, InlineWhenSingleThreaded) {
  ThreadPool pool;
  std::vector<int> order;
  pool.parallel_for(5, 1, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));  // no lock: must be the caller
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(pool.helper_count(), 0u);  // inline path spawns nothing
}

TEST(ThreadPool, SingleThreadThrowStopsLaterItems) {
  ThreadPool pool;
  std::vector<int> ran;
  EXPECT_THROW(pool.parallel_for(10, 1,
                                 [&](std::size_t i) {
                                   if (i == 3) throw std::runtime_error("x");
                                   ran.push_back(static_cast<int>(i));
                                 }),
               std::runtime_error);
  EXPECT_EQ(ran, (std::vector<int>{0, 1, 2}));
}

TEST(ThreadPool, FirstExceptionPropagatesAndLaterItemsAreSkipped) {
  ThreadPool pool;
  std::atomic<int> executed{0};
  try {
    pool.parallel_for(1000, 4, [&](std::size_t i) {
      if (i == 0) throw std::runtime_error("item-0");
      executed.fetch_add(1);
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    // Item 0 is claimed first; its error must be the one that surfaces.
    EXPECT_STREQ(e.what(), "item-0");
  }
  // Fail fast: nowhere near all 999 other items may have started after
  // the failure was flagged.
  EXPECT_LT(executed.load(), 1000);
}

TEST(ThreadPool, ReusedAcrossBatchesWithoutRespawning) {
  ThreadPool pool;
  std::atomic<int> total{0};
  for (int batch = 0; batch < 50; ++batch) {
    pool.parallel_for(8, 4, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 400);
  // Helpers are created once and parked, not respawned per batch.
  EXPECT_LE(pool.helper_count(), 3u);
  EXPECT_GE(pool.helper_count(), 1u);
}

TEST(ThreadPool, BatchAfterFailedBatchWorks) {
  ThreadPool pool;
  EXPECT_THROW(pool.parallel_for(
                   4, 2, [](std::size_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);
  std::atomic<int> ok{0};
  pool.parallel_for(4, 2, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 4);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool;
  std::atomic<int> inner_total{0};
  pool.parallel_for(4, 4, [&](std::size_t) {
    // A worker re-entering the pool must not deadlock: nested calls run
    // inline on the worker.
    pool.parallel_for(3, 4, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 12);
}

// ---- run_batch on top of the pool -----------------------------------------

RunSpec quick_spec(const std::string& label, std::uint64_t seed) {
  RunSpec spec;
  spec.label = label;
  spec.scenario = paper_scenario1();
  spec.scenario.duration = 0.01 * kSecondsPerDay;
  spec.scenario.seed = seed;
  return spec;
}

/// A spec that makes emulate() throw: scenario validation rejects a host
/// with no CPUs.
RunSpec invalid_spec(const std::string& label) {
  RunSpec spec = quick_spec(label, 1);
  spec.scenario.host.count[ProcType::kCpu] = 0;
  return spec;
}

TEST(RunBatch, OneVsManyThreadsByteIdentical) {
  std::vector<RunSpec> specs;
  for (int i = 0; i < 8; ++i) {
    specs.push_back(quick_spec("s" + std::to_string(i),
                               static_cast<std::uint64_t>(i + 1)));
  }
  const auto seq = run_batch(specs, 1);
  const auto par = run_batch(specs, 8);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].label, par[i].label);
    // Full-precision figures of merit must match bit for bit.
    EXPECT_EQ(seq[i].result.metrics.idle_fraction(),
              par[i].result.metrics.idle_fraction());
    EXPECT_EQ(seq[i].result.metrics.wasted_fraction(),
              par[i].result.metrics.wasted_fraction());
    EXPECT_EQ(seq[i].result.metrics.weighted_score(),
              par[i].result.metrics.weighted_score());
  }
}

TEST(RunBatch, MidBatchThrowRethrowsFirstException) {
  // The invalid spec is claimed first (ascending order), so its error —
  // not a later one — must surface, single- and multi-threaded, wrapped
  // with the failing item's index and label ("item 31572 of 100000"
  // beats a bare what()).
  for (const unsigned threads : {1u, 4u}) {
    std::vector<RunSpec> specs;
    specs.push_back(invalid_spec("bad0"));
    for (int i = 1; i < 6; ++i) {
      specs.push_back(quick_spec("ok" + std::to_string(i),
                                 static_cast<std::uint64_t>(i)));
    }
    try {
      (void)run_batch(specs, threads);
      FAIL() << "threads=" << threads;
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("run_batch item 0 (bad0)"), std::string::npos)
          << "threads=" << threads << ": " << what;
    }
  }
}

TEST(RunBatch, ChainBatchErrorsCarryItemContext) {
  std::vector<ChainSpec> specs(1);
  specs[0].label = "bad_chain";
  specs[0].scenario = invalid_spec("x").scenario;
  specs[0].durations = {0.01 * kSecondsPerDay};
  try {
    (void)run_chain_batch(specs, 1);
    FAIL();
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("run_chain_batch item 0 (bad_chain)"),
              std::string::npos)
        << e.what();
  }
}

TEST(RunBatch, LabelAssignedOnlyAfterSuccess) {
  // Regression: run_batch used to write results[i].label before emulating,
  // so a throw elsewhere left half-written rows. The label must now be the
  // last thing written; a row is either complete or untouched. Observe the
  // ordering through the same claim/fill pattern run_batch uses.
  std::vector<RunSpec> specs;
  specs.push_back(quick_spec("ok", 1));
  specs.push_back(invalid_spec("bad"));
  std::vector<RunResult> results(specs.size());
  ThreadPool pool;
  EXPECT_THROW(
      pool.parallel_for(specs.size(), 1,
                        [&](std::size_t i) {
                          results[i].result =
                              emulate(specs[i].scenario, specs[i].options);
                          results[i].label = specs[i].label;
                        }),
      std::invalid_argument);
  EXPECT_EQ(results[0].label, "ok");      // completed before the failure
  EXPECT_EQ(results[1].label, "");        // failed row left untouched
  EXPECT_EQ(results[1].result.metrics.available_flops, 0.0);
}

TEST(RunBatch, EmptySpecsYieldEmptyResults) {
  EXPECT_TRUE(run_batch({}, 4).empty());
}

}  // namespace
}  // namespace bce
