// Unit tests for the server-side dispatch seam (server/dispatch_policy):
// the registry (names, aliases, unknown-name diagnostics, user
// registration), each built-in policy's decision logic against a bare
// ProjectServer, workunit/replica stamping, the device model, and the
// end-to-end replication/quorum accounting — including the contract that
// an unreplicated default run is indistinguishable from the pre-seam
// engine (replication_used() false, explicit SD_PAPER == default).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>

#include "core/emulator.hpp"
#include "core/paper_scenarios.hpp"
#include "host/device_status.hpp"
#include "server/dispatch_policy.hpp"
#include "server/project_server.hpp"

namespace bce {
namespace {

// Same substrate fixture as test_server.cpp: 4x1e9 CPU host, one CPU
// class of ~1000-second jobs, fresh server per test.
struct Fixture {
  HostInfo host = HostInfo::cpu_only(4, 1e9);
  ProjectConfig cfg;
  ServerPolicy policy;
  Trace log;
  JobId next_id = 0;

  Fixture() {
    cfg.name = "p";
    JobClass jc;
    jc.name = "cpu";
    jc.flops_est = 1000e9;  // 1000 s
    jc.latency_bound = 86400.0;
    jc.usage = ResourceUsage::cpu(1.0);
    cfg.job_classes.push_back(jc);
  }

  void use_dispatch(const std::string& name) {
    policy.dispatch =
        server_policy_registry().make_dispatch(name, PolicyConfig{});
  }

  ProjectServer make(std::uint64_t seed = 1, double avail = 1.0) {
    return ProjectServer(0, cfg, host, policy, avail, Xoshiro256(seed), 0.0);
  }

  static WorkRequest cpu_request(double secs, double instances = 0.0,
                                 double delay = 0.0) {
    WorkRequest req;
    req.req_seconds[ProcType::kCpu] = secs;
    req.req_instances[ProcType::kCpu] = instances;
    req.est_delay[ProcType::kCpu] = delay;
    return req;
  }
};

// --- registry ----------------------------------------------------------

TEST(DispatchRegistry, BuiltInsRegisteredInOrder) {
  const auto entries = server_policy_registry().dispatch_entries();
  ASSERT_GE(entries.size(), 4u);
  EXPECT_EQ(entries[0].name, "SD_PAPER");
  bool mobile = false, repl = false, budget = false;
  for (const auto& e : entries) {
    if (e.name == "SD_MOBILE") mobile = true;
    if (e.name == "SD_ADAPT_REPL") repl = true;
    if (e.name == "SD_DEADLINE_BUDGET") budget = true;
    EXPECT_FALSE(e.description.empty()) << e.name;
  }
  EXPECT_TRUE(mobile);
  EXPECT_TRUE(repl);
  EXPECT_TRUE(budget);
}

TEST(DispatchRegistry, AliasesResolve) {
  auto& reg = server_policy_registry();
  for (const char* name : {"SD_PAPER", "paper", "SD_MOBILE", "mobile",
                           "SD_ADAPT_REPL", "repl", "adaptive",
                           "SD_DEADLINE_BUDGET", "budget", "db"}) {
    EXPECT_TRUE(reg.has_dispatch(name)) << name;
  }
  EXPECT_EQ(reg.make_dispatch("repl", PolicyConfig{})->name(),
            std::string("SD_ADAPT_REPL"));
  EXPECT_EQ(reg.make_dispatch("db", PolicyConfig{})->name(),
            std::string("SD_DEADLINE_BUDGET"));
}

TEST(DispatchRegistry, UnknownNameThrowsWithKnownList) {
  EXPECT_FALSE(server_policy_registry().has_dispatch("SD_NOPE"));
  try {
    (void)server_policy_registry().make_dispatch("SD_NOPE", PolicyConfig{});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("SD_NOPE"), std::string::npos);
    EXPECT_NE(msg.find("SD_PAPER"), std::string::npos);
  }
}

TEST(DispatchRegistry, DefaultSelectionIsPaper) {
  PolicyConfig pc;
  EXPECT_EQ(make_dispatch_policy(pc)->name(), std::string("SD_PAPER"));
  pc.dispatch_by_name = "mobile";
  EXPECT_EQ(make_dispatch_policy(pc)->name(), std::string("SD_MOBILE"));
}

// A user policy registered through the public surface (the docs/policies.md
// authoring path) is constructible by name and drives the fill loop.
class FixedTwoReplicaDispatch final : public PaperDispatch {
 public:
  [[nodiscard]] const char* name() const override { return "SD_TEST_TWO"; }

 protected:
  [[nodiscard]] int replicas_for(const DispatchContext&,
                                 const WorkRequest&) const override {
    return 2;
  }
};

TEST(DispatchRegistry, UserRegisteredPolicyWorksEndToEnd) {
  server_policy_registry().register_dispatch(
      "SD_TEST_TWO", "test-only: always two replicas",
      [p = std::make_shared<const FixedTwoReplicaDispatch>()](
          const PolicyConfig&) { return p; },
      {"testtwo"});
  Fixture f;
  f.use_dispatch("testtwo");
  ProjectServer srv = f.make();
  const RpcReply r =
      srv.handle_rpc(0.0, Fixture::cpu_request(0.0, 1.0), 0, f.next_id, f.log);
  ASSERT_EQ(r.jobs.size(), 2u);
  EXPECT_EQ(r.jobs[1].workunit, r.jobs[0].id);
  EXPECT_EQ(r.jobs[1].replica, 1);
  EXPECT_EQ(r.jobs[1].flops_total, r.jobs[0].flops_total);
}

// --- workunit / replica stamping ---------------------------------------

TEST(DispatchReplication, UnreplicatedJobsAreTheirOwnWorkunit) {
  Fixture f;
  ProjectServer srv = f.make();
  const RpcReply r = srv.handle_rpc(0.0, Fixture::cpu_request(3500.0), 0,
                                    f.next_id, f.log);
  ASSERT_FALSE(r.jobs.empty());
  for (const Result& j : r.jobs) {
    EXPECT_EQ(j.workunit, j.id);
    EXPECT_EQ(j.replica, 0);
  }
}

TEST(DispatchReplication, PaperDispatchHonorsTargetReplicas) {
  Fixture f;
  f.cfg.target_replicas = 2;
  f.cfg.quorum = 2;
  ProjectServer srv = f.make();
  const RpcReply r = srv.handle_rpc(0.0, Fixture::cpu_request(3500.0), 0,
                                    f.next_id, f.log);
  // Every workunit ships as a pair; the fill target counts both copies.
  ASSERT_FALSE(r.jobs.empty());
  ASSERT_EQ(r.jobs.size() % 2, 0u);
  for (std::size_t i = 0; i < r.jobs.size(); i += 2) {
    EXPECT_EQ(r.jobs[i].workunit, r.jobs[i].id);
    EXPECT_EQ(r.jobs[i].replica, 0);
    EXPECT_EQ(r.jobs[i + 1].workunit, r.jobs[i].id);
    EXPECT_EQ(r.jobs[i + 1].replica, 1);
    EXPECT_EQ(r.jobs[i + 1].flops_total, r.jobs[i].flops_total);
  }
}

// --- SD_MOBILE ---------------------------------------------------------

TEST(MobileDispatch, RefusesOffWifiHost) {
  Fixture f;
  f.use_dispatch("SD_MOBILE");
  ProjectServer srv = f.make();
  WorkRequest req = Fixture::cpu_request(3500.0);
  req.device.on_wifi = false;
  const RpcReply r = srv.handle_rpc(0.0, req, 0, f.next_id, f.log);
  EXPECT_TRUE(r.jobs.empty());
  EXPECT_TRUE(r.no_jobs_for[ProcType::kCpu]);
}

TEST(MobileDispatch, RefusesLowBatteryOffAcHost) {
  Fixture f;
  f.use_dispatch("SD_MOBILE");
  ProjectServer srv = f.make();
  WorkRequest req = Fixture::cpu_request(3500.0);
  req.device.on_ac = false;
  req.device.battery_charge = 0.1;  // below the 25% floor
  const RpcReply r = srv.handle_rpc(0.0, req, 0, f.next_id, f.log);
  EXPECT_TRUE(r.jobs.empty());
  EXPECT_TRUE(r.no_jobs_for[ProcType::kCpu]);
}

TEST(MobileDispatch, AdmitsPluggedInHost) {
  Fixture f;
  f.use_dispatch("SD_MOBILE");
  ProjectServer srv = f.make();
  WorkRequest req = Fixture::cpu_request(3500.0);
  req.device.on_ac = true;
  req.device.on_wifi = true;
  const RpcReply r = srv.handle_rpc(0.0, req, 0, f.next_id, f.log);
  EXPECT_EQ(r.jobs.size(), 4u);  // same fill as SD_PAPER on a desktop
}

TEST(MobileDispatch, OnlySendsJobsTheBatteryCanFinish) {
  Fixture f;
  f.use_dispatch("SD_MOBILE");
  ProjectServer srv = f.make();
  WorkRequest req = Fixture::cpu_request(3500.0);
  req.device.on_ac = false;
  req.device.on_wifi = true;
  req.device.battery_charge = 0.5;      // above the admission floor...
  req.device.battery_discharge = 1.25;  // ...but only 1440 s of runtime left
  const RpcReply r = srv.handle_rpc(0.0, req, 0, f.next_id, f.log);
  // ~1000 s jobs: the first fits in 1440 s, a second (delayed behind the
  // first on one instance-rotation) would not; with 4 instances each job's
  // effective delay grows by sent/4, so exactly one job stays feasible
  // once the accumulated delay pushes past the battery horizon.
  ASSERT_FALSE(r.jobs.empty());
  EXPECT_LT(r.jobs.size(), 4u);
}

// --- SD_ADAPT_REPL -----------------------------------------------------

TEST(AdaptiveReplication, UnknownHostGetsFullReplication) {
  Fixture f;
  f.cfg.target_replicas = 3;
  f.cfg.quorum = 2;
  f.use_dispatch("SD_ADAPT_REPL");
  ProjectServer srv = f.make();
  // No report history: Laplace p_fail = 1/2 >= high mark -> target (3).
  const RpcReply r =
      srv.handle_rpc(0.0, Fixture::cpu_request(0.0, 1.0), 0, f.next_id, f.log);
  ASSERT_EQ(r.jobs.size(), 3u);
  EXPECT_EQ(r.jobs[0].replica, 0);
  EXPECT_EQ(r.jobs[1].replica, 1);
  EXPECT_EQ(r.jobs[2].replica, 2);
  for (const Result& j : r.jobs) EXPECT_EQ(j.workunit, r.jobs[0].id);
}

TEST(AdaptiveReplication, ReliableHostDropsToQuorum) {
  Fixture f;
  f.cfg.target_replicas = 3;
  f.cfg.quorum = 2;
  f.use_dispatch("SD_ADAPT_REPL");
  ProjectServer srv = f.make();
  // 20 clean reports: p_fail = 1/22 < low mark -> quorum replicas.
  (void)srv.handle_rpc(0.0, WorkRequest{}, 20, f.next_id, f.log, 0);
  EXPECT_EQ(srv.jobs_ok(), 20);
  EXPECT_EQ(srv.jobs_failed(), 0);
  const RpcReply r = srv.handle_rpc(60.0, Fixture::cpu_request(0.0, 1.0), 0,
                                    f.next_id, f.log);
  EXPECT_EQ(r.jobs.size(), 2u);
}

TEST(AdaptiveReplication, FailuresRampReplicationBackUp) {
  Fixture f;
  f.cfg.target_replicas = 3;
  f.cfg.quorum = 2;
  f.use_dispatch("SD_ADAPT_REPL");
  ProjectServer srv = f.make();
  // 10 reports, 8 failed: p_fail = 9/12 -> full replication again.
  (void)srv.handle_rpc(0.0, WorkRequest{}, 10, f.next_id, f.log, 8);
  EXPECT_EQ(srv.jobs_ok(), 2);
  EXPECT_EQ(srv.jobs_failed(), 8);
  const RpcReply r = srv.handle_rpc(60.0, Fixture::cpu_request(0.0, 1.0), 0,
                                    f.next_id, f.log);
  EXPECT_EQ(r.jobs.size(), 3u);
}

// --- SD_DEADLINE_BUDGET ------------------------------------------------

TEST(DeadlineBudget, NeverOvershootsTheRequestedSeconds) {
  Fixture f;
  ProjectServer paper = f.make();
  const RpcReply rp = paper.handle_rpc(0.0, Fixture::cpu_request(2500.0), 0,
                                       f.next_id, f.log);
  EXPECT_EQ(rp.jobs.size(), 3u);  // SD_PAPER fills past the target

  f.use_dispatch("SD_DEADLINE_BUDGET");
  ProjectServer budget = f.make();
  const RpcReply rb = budget.handle_rpc(0.0, Fixture::cpu_request(2500.0), 0,
                                        f.next_id, f.log);
  // ~1000 s jobs against a 2500 s budget: two fit, a third would overshoot.
  EXPECT_EQ(rb.jobs.size(), 2u);
}

TEST(DeadlineBudget, DeadlineCheckIsAlwaysOn) {
  Fixture f;
  f.cfg.job_classes[0].latency_bound = 500.0;  // < the ~1000 s runtime
  ASSERT_FALSE(f.policy.deadline_check);
  ProjectServer paper = f.make();
  const RpcReply rp = paper.handle_rpc(0.0, Fixture::cpu_request(1000.0), 0,
                                       f.next_id, f.log);
  EXPECT_FALSE(rp.jobs.empty());  // SD_PAPER without the knob doesn't check

  f.use_dispatch("SD_DEADLINE_BUDGET");
  ProjectServer budget = f.make();
  const RpcReply rb = budget.handle_rpc(0.0, Fixture::cpu_request(1000.0), 0,
                                        f.next_id, f.log);
  EXPECT_TRUE(rb.jobs.empty());
  EXPECT_TRUE(rb.no_jobs_for[ProcType::kCpu]);
}

// --- device model ------------------------------------------------------

TEST(DeviceModel, DesktopDefaultIsInert) {
  EXPECT_TRUE(DeviceSpec{}.is_default());
  DeviceModel m;
  m.advance_to(kSecondsPerDay);
  const DeviceStatus s = m.status();
  EXPECT_TRUE(s.on_ac);
  EXPECT_TRUE(s.on_wifi);
  EXPECT_EQ(s.battery_charge, 1.0);
  EXPECT_EQ(s.battery_discharge, 0.0);
}

TEST(DeviceModel, BatteryDischargesOffAcAndRechargesOnAc) {
  DeviceSpec spec;
  // AC for the first 2 h of each day, off for the rest (deterministic).
  spec.on_ac = OnOffSpec::daily_window(0.0, 2.0 * kSecondsPerHour);
  spec.battery_charge = 0.5;
  spec.battery_discharge = 0.1;  // per hour, off AC
  spec.battery_recharge = 0.2;   // per hour, on AC
  DeviceModel m(spec, Xoshiro256(7), 0.0);

  m.advance_to(1.0 * kSecondsPerHour);  // 1 h on AC
  EXPECT_NEAR(m.status().battery_charge, 0.7, 1e-12);
  EXPECT_TRUE(m.status().on_ac);

  m.advance_to(5.0 * kSecondsPerHour);  // +1 h on AC, then 3 h draining
  EXPECT_NEAR(m.status().battery_charge, 0.9 - 0.3, 1e-12);
  EXPECT_FALSE(m.status().on_ac);

  // Clamped at zero long before the window reopens, then recharges and
  // clamps at full after enough plugged-in days.
  m.advance_to(23.0 * kSecondsPerHour);
  EXPECT_EQ(m.status().battery_charge, 0.0);
  m.advance_to(10.0 * kSecondsPerDay);
  EXPECT_LE(m.status().battery_charge, 1.0);
}

TEST(DeviceModel, EmulatorThreadsDeviceIntoWorkRequests) {
  // A host that is never on wifi + SD_MOBILE: every RPC is refused, so
  // nothing is ever fetched. The same scenario under SD_PAPER fetches
  // normally — the request must therefore carry the device snapshot.
  Scenario sc = paper_scenario2();
  sc.duration = 2.0 * kSecondsPerDay;
  sc.host.device.on_wifi = OnOffSpec::markov(1e-6, 1e12, false);  // off ~always
  EmulationOptions opt;
  opt.policy.dispatch_by_name = "SD_MOBILE";
  const Metrics refused = emulate(sc, opt).metrics;
  EXPECT_EQ(refused.n_jobs_fetched, 0);

  opt.policy.dispatch_by_name = "SD_PAPER";
  const Metrics served = emulate(sc, opt).metrics;
  EXPECT_GT(served.n_jobs_fetched, 0);
}

// --- end-to-end replication accounting ---------------------------------

TEST(ReplicationAccounting, DefaultRunHasNoReplicationFootprint) {
  Scenario sc = paper_scenario2();
  sc.duration = 2.0 * kSecondsPerDay;
  const Metrics m = emulate(sc, EmulationOptions{}).metrics;
  EXPECT_FALSE(m.replication_used());
  EXPECT_EQ(m.n_workunits, m.n_jobs_fetched);
  EXPECT_EQ(m.replica_wasted_flops, 0.0);
  // Unreplicated quorum is 1: every completed job validates its workunit.
  EXPECT_EQ(m.n_quorum_met, m.n_jobs_completed);
  EXPECT_GT(m.granted_credit_flops, 0.0);
}

TEST(ReplicationAccounting, ReplicatedRunGroupsAndGrantsCredit) {
  Scenario sc = paper_scenario2();
  sc.duration = 2.0 * kSecondsPerDay;
  for (auto& p : sc.projects) {
    p.target_replicas = 2;
    p.quorum = 2;
  }
  const Metrics m = emulate(sc, EmulationOptions{}).metrics;
  EXPECT_TRUE(m.replication_used());
  EXPECT_GT(m.n_workunits, 0);
  EXPECT_LT(m.n_workunits, m.n_jobs_fetched);
  EXPECT_LE(m.n_quorum_met + m.n_quorum_failed, m.n_workunits);
  EXPECT_GT(m.n_quorum_met, 0);
  EXPECT_GT(m.granted_credit_flops, 0.0);
  EXPECT_GE(m.quorum_rate(), 0.0);
  EXPECT_LE(m.quorum_rate(), 1.0);
}

TEST(ReplicationAccounting, ExcessSuccessesCountAsReplicaWaste) {
  // quorum 1 with 2 replicas: the second successful copy of any pair is
  // pure redundancy and must show up as replica waste.
  Scenario sc = paper_scenario2();
  sc.duration = 2.0 * kSecondsPerDay;
  for (auto& p : sc.projects) {
    p.target_replicas = 2;
    p.quorum = 1;
  }
  const Metrics m = emulate(sc, EmulationOptions{}).metrics;
  EXPECT_TRUE(m.replication_used());
  EXPECT_GT(m.replica_wasted_flops, 0.0);
  EXPECT_GT(m.replica_wasted_fraction(), 0.0);
}

// --- default byte-identity through the seam ----------------------------

TEST(DispatchSeam, ExplicitPaperSelectionMatchesDefaultExactly) {
  Scenario sc = paper_scenario2();
  sc.duration = 2.0 * kSecondsPerDay;
  const Metrics def = emulate(sc, EmulationOptions{}).metrics;
  EmulationOptions opt;
  opt.policy.dispatch_by_name = "SD_PAPER";
  const Metrics named = emulate(sc, opt).metrics;
  EXPECT_EQ(named.summary(), def.summary());
  EXPECT_EQ(named.used_flops, def.used_flops);
  EXPECT_EQ(named.wasted_flops, def.wasted_flops);
  EXPECT_EQ(named.n_jobs_fetched, def.n_jobs_fetched);
  EXPECT_EQ(named.n_jobs_completed, def.n_jobs_completed);
  EXPECT_EQ(named.n_rpcs, def.n_rpcs);
}

}  // namespace
}  // namespace bce
