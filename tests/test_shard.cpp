// Wire-level contracts of the shard layer (fleet/shard.{hpp,cpp}):
// task/output round trips, checkpoint file validation (fingerprint,
// checksum, truncation), harness fault-plan parsing, frame reassembly
// from a nonblocking pipe, and in-process checkpoint-resume
// byte-identity via run_shard.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/bce.hpp"
#include "fleet/shard.hpp"
#include "fleet/shard_worker.hpp"

namespace {

using namespace bce;

ShardTask make_task(double days = 0.2, std::uint64_t n_hosts = 2) {
  ShardTask task;
  task.shard_index = 3;
  task.label = "hosts 0-1";
  task.policy.sched_by_name = "JS_GLOBAL";
  task.policy.fetch_by_name = "JF_HYSTERESIS";
  Scenario sc = paper_scenario2();
  sc.duration = days * kSecondsPerDay;
  for (std::uint64_t h = 0; h < n_hosts; ++h) {
    Scenario host = sc;
    host.seed = sc.seed + h;
    task.scenario_texts.push_back(serialize_scenario(host));
  }
  return task;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

TEST(ShardWire, TaskRoundTrip) {
  ShardTask task = make_task();
  task.project_map = {{2, 0}, {1}};
  task.n_merge_projects = 3;
  task.include_host_figures = true;
  task.checkpoint_path = "/tmp/x.bcsp";
  task.checkpoint_every_hosts = 5;
  task.checkpoint_sim_period = 123.5;
  task.resume = true;
  task.fault = HarnessFaultKind::kStall;
  task.fault_checkpoint = 7;

  const ShardTask back = deserialize_shard_task(serialize_shard_task(task));
  EXPECT_EQ(back.shard_index, task.shard_index);
  EXPECT_EQ(back.label, task.label);
  EXPECT_EQ(back.policy.sched_by_name, task.policy.sched_by_name);
  EXPECT_EQ(back.scenario_texts, task.scenario_texts);
  EXPECT_EQ(back.project_map, task.project_map);
  EXPECT_EQ(back.n_merge_projects, task.n_merge_projects);
  EXPECT_EQ(back.include_host_figures, task.include_host_figures);
  EXPECT_EQ(back.checkpoint_path, task.checkpoint_path);
  EXPECT_EQ(back.checkpoint_every_hosts, task.checkpoint_every_hosts);
  EXPECT_EQ(back.checkpoint_sim_period, task.checkpoint_sim_period);
  EXPECT_EQ(back.resume, task.resume);
  EXPECT_EQ(back.fault, task.fault);
  EXPECT_EQ(back.fault_checkpoint, task.fault_checkpoint);
  EXPECT_EQ(back.n_hosts(), 2u);
}

TEST(ShardWire, PopulationTaskRoundTrip) {
  ShardTask task;
  task.population.duration = 2.5 * kSecondsPerDay;
  task.population_seed = 42;
  task.first_host = 100;
  task.n_population_hosts = 25;
  const ShardTask back = deserialize_shard_task(serialize_shard_task(task));
  EXPECT_EQ(back.population.duration, task.population.duration);
  EXPECT_EQ(back.population_seed, 42u);
  EXPECT_EQ(back.first_host, 100u);
  EXPECT_EQ(back.n_hosts(), 25u);
}

TEST(ShardWire, FingerprintIgnoresRetryKnobs) {
  const ShardTask task = make_task();
  ShardTask retry = task;
  retry.resume = true;
  retry.checkpoint_path = "/somewhere/else.bcsp";
  retry.fault = HarnessFaultKind::kKill;
  retry.fault_checkpoint = 2;
  EXPECT_EQ(shard_task_fingerprint(task), shard_task_fingerprint(retry));

  ShardTask other = task;
  other.scenario_texts.pop_back();
  EXPECT_NE(shard_task_fingerprint(task), shard_task_fingerprint(other));
}

TEST(ShardWire, OutputRoundTrip) {
  ShardOutput out;
  out.hosts_done = 2;
  out.checkpoints_written = 5;
  out.merged.used_flops = 1.25e15;
  out.merged.n_jobs_completed = 321;
  out.host_figures.push_back({0.5, 0.1, 0.01, 0.2, 0.3, 1.5});
  const ShardOutput back =
      deserialize_shard_output(serialize_shard_output(out));
  EXPECT_EQ(back.hosts_done, 2u);
  EXPECT_EQ(back.checkpoints_written, 5u);
  EXPECT_EQ(back.merged.used_flops, out.merged.used_flops);
  EXPECT_EQ(back.merged.n_jobs_completed, 321);
  ASSERT_EQ(back.host_figures.size(), 1u);
  EXPECT_EQ(back.host_figures[0].score, 0.5);
  EXPECT_EQ(back.host_figures[0].rpcs_per_job, 1.5);
}

TEST(ShardCheckpointFile, RoundTripAndValidation) {
  const ShardTask task = make_task();
  const std::string path = temp_path("shard_cp.bcsp");
  ShardCheckpoint cp;
  cp.hosts_done = 1;
  cp.seq = 2;
  cp.merged.n_jobs_completed = 17;
  write_shard_checkpoint(path, task, cp);

  const ShardCheckpoint back = read_shard_checkpoint(path, task);
  EXPECT_EQ(back.hosts_done, 1u);
  EXPECT_EQ(back.seq, 2u);
  EXPECT_EQ(back.merged.n_jobs_completed, 17);
  EXPECT_TRUE(back.frame.empty());

  // A resumed retry (same work, different knobs) must accept the file...
  ShardTask retry = task;
  retry.resume = true;
  EXPECT_NO_THROW(read_shard_checkpoint(path, retry));
  // ...but a different task must be rejected as a fingerprint mismatch.
  ShardTask other = make_task(0.3);
  try {
    read_shard_checkpoint(path, other);
    FAIL() << "fingerprint mismatch not detected";
  } catch (const SavestateError& e) {
    EXPECT_EQ(e.code(), SavestateErrc::kScenarioMismatch);
  }
  std::remove(path.c_str());
}

TEST(ShardCheckpointFile, CorruptionAndTruncationRejected) {
  const ShardTask task = make_task();
  const std::string path = temp_path("shard_cp_corrupt.bcsp");
  ShardCheckpoint cp;
  cp.hosts_done = 1;
  cp.seq = 1;
  write_shard_checkpoint(path, task, cp);

  std::ifstream is(path, std::ios::binary);
  std::vector<char> bytes{std::istreambuf_iterator<char>(is),
                          std::istreambuf_iterator<char>()};
  is.close();

  {  // flip one payload byte -> checksum failure
    std::vector<char> bad = bytes;
    bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0x40);
    std::ofstream os(path, std::ios::binary);
    os.write(bad.data(), static_cast<std::streamsize>(bad.size()));
    os.close();
    try {
      read_shard_checkpoint(path, task);
      FAIL() << "corruption not detected";
    } catch (const SavestateError& e) {
      EXPECT_EQ(e.code(), SavestateErrc::kCorrupt);
    }
  }
  {  // drop the tail -> truncation
    std::ofstream os(path, std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 9));
    os.close();
    try {
      read_shard_checkpoint(path, task);
      FAIL() << "truncation not detected";
    } catch (const SavestateError& e) {
      EXPECT_EQ(e.code(), SavestateErrc::kTruncated);
    }
  }
  {  // wrong magic
    std::vector<char> bad = bytes;
    bad[0] = 'X';
    std::ofstream os(path, std::ios::binary);
    os.write(bad.data(), static_cast<std::streamsize>(bad.size()));
    os.close();
    try {
      read_shard_checkpoint(path, task);
      FAIL() << "bad magic not detected";
    } catch (const SavestateError& e) {
      EXPECT_EQ(e.code(), SavestateErrc::kBadMagic);
    }
  }
  std::remove(path.c_str());
}

TEST(HarnessFaults, ParseAndLookup) {
  const HarnessFaultPlan plan = parse_harness_faults("kill:1@2,stall:0@3");
  ASSERT_EQ(plan.faults.size(), 2u);
  EXPECT_EQ(fault_for(plan, 1).kind, HarnessFaultKind::kKill);
  EXPECT_EQ(fault_for(plan, 1).at_checkpoint, 2u);
  EXPECT_EQ(fault_for(plan, 0).kind, HarnessFaultKind::kStall);
  EXPECT_EQ(fault_for(plan, 7).kind, HarnessFaultKind::kNone);

  EXPECT_TRUE(parse_harness_faults("").empty());
  EXPECT_THROW(parse_harness_faults("explode:1@2"), std::invalid_argument);
  EXPECT_THROW(parse_harness_faults("kill:1"), std::invalid_argument);
  EXPECT_THROW(parse_harness_faults("kill:1@0"), std::invalid_argument);
}

TEST(FrameBufferTest, ReassemblesSplitFrames) {
  // Serialize two frames into one byte stream, then feed it to the buffer
  // a single byte at a time — exactly what a nonblocking pipe can do.
  const std::vector<std::uint8_t> p1 = {1, 2, 3};
  const std::vector<std::uint8_t> p2 = {};
  std::vector<std::uint8_t> stream;
  auto append_frame = [&](ShardMsg type, const std::vector<std::uint8_t>& p) {
    // The length prefix counts the payload only, not the type byte.
    const auto len = static_cast<std::uint32_t>(p.size());
    for (int i = 0; i < 4; ++i) {
      stream.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
    }
    stream.push_back(static_cast<std::uint8_t>(type));
    stream.insert(stream.end(), p.begin(), p.end());
  };
  append_frame(ShardMsg::kHeartbeat, p1);
  append_frame(ShardMsg::kResult, p2);

  FrameBuffer fb;
  std::vector<ShardFrame> got;
  ShardFrame f;
  for (const std::uint8_t byte : stream) {
    fb.append(&byte, 1);
    while (fb.next(f)) got.push_back(f);
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].type, ShardMsg::kHeartbeat);
  EXPECT_EQ(got[0].payload, p1);
  EXPECT_EQ(got[1].type, ShardMsg::kResult);
  EXPECT_TRUE(got[1].payload.empty());
}

TEST(RunShard, CheckpointResumeIsByteIdentical) {
  // Simulate a worker killed after checkpoint 1: run the task with hooks
  // that abandon the shard there, then run a resume task from the file.
  // Its output must match an undisturbed run bit for bit.
  ShardTask task = make_task(0.2, 3);
  const ShardOutput undisturbed = run_shard(task);

  task.checkpoint_path = temp_path("run_shard_resume.bcsp");
  task.checkpoint_every_hosts = 1;
  struct Abandon {};
  ShardHooks hooks;
  hooks.on_checkpoint = [](std::uint64_t seq, std::uint64_t) {
    if (seq == 1) throw Abandon{};
  };
  try {
    (void)run_shard(task, hooks);
    FAIL() << "hook did not fire";
  } catch (const Abandon&) {
  }

  ShardTask resumed_task = task;
  resumed_task.resume = true;
  const ShardOutput resumed = run_shard(resumed_task);
  EXPECT_LT(resumed.checkpoints_written, 3u);  // only the tail was redone

  StateWriter a;
  save_metrics(a, undisturbed.merged);
  StateWriter b;
  save_metrics(b, resumed.merged);
  EXPECT_EQ(a.payload(), b.payload());
  EXPECT_EQ(resumed.hosts_done, undisturbed.hosts_done);
  std::remove(task.checkpoint_path.c_str());
}

TEST(RunShard, ExceptionNamesShardAndHost) {
  ShardTask task = make_task();
  task.policy.sched_by_name = "JS_NOPE";
  try {
    (void)run_shard(task);
    FAIL() << "bad policy not diagnosed";
  } catch (const std::exception& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("shard 3"), std::string::npos) << what;
    EXPECT_NE(what.find("host 0"), std::string::npos) << what;
    EXPECT_NE(what.find("hosts 0-1"), std::string::npos) << what;
  }
}

}  // namespace
