// Unit tests for the client job scheduler (client/job_scheduler): the
// ordered job list's precedence tiers, EDF ordering, project interleaving,
// and the allocation scan (CPU admission, GPU packing, RAM limit).

#include <gtest/gtest.h>

#include <algorithm>

#include "client/job_scheduler.hpp"

namespace bce {
namespace {

struct Fixture {
  HostInfo host = HostInfo::cpu_only(4, 1e9);
  Preferences prefs;
  PolicyConfig policy;
  Trace log;
  std::vector<Result> jobs;
  JobId next_id = 0;

  Fixture() { jobs.reserve(64); }  // add() hands out stable references

  Result& add(ProjectId p, double seconds, double deadline,
              ResourceUsage usage = ResourceUsage::cpu(1.0)) {
    Result r;
    r.id = next_id++;
    r.project = p;
    r.usage = usage;
    r.flops_est = r.flops_total = seconds * usage.flops_rate(host);
    r.received = static_cast<double>(r.id);
    r.deadline = deadline;
    r.ram_bytes = 1e8;
    jobs.push_back(r);
    return jobs.back();
  }

  ScheduleOutcome schedule(const std::vector<double>& shares,
                           bool cpu_ok = true, bool gpu_ok = true) {
    JobScheduler sched(host, prefs, policy);
    Accounting acct(host, shares, kSecondsPerDay);
    std::vector<Result*> ptrs;
    for (auto& j : jobs) ptrs.push_back(&j);
    return sched.schedule(0.0, ptrs, acct, cpu_ok, gpu_ok, log);
  }
};

std::vector<JobId> ids(const std::vector<Result*>& v) {
  std::vector<JobId> out;
  for (const Result* r : v) out.push_back(r->id);
  return out;
}

TEST(JobScheduler, FillsAllCpus) {
  Fixture f;
  for (int i = 0; i < 6; ++i) f.add(0, 1000.0, 1e9);
  const auto out = f.schedule({1.0});
  EXPECT_EQ(out.to_run.size(), 4u);
}

TEST(JobScheduler, NothingRunsWhenCpuDisallowed) {
  Fixture f;
  f.add(0, 1000.0, 1e9);
  const auto out = f.schedule({1.0}, /*cpu_ok=*/false);
  EXPECT_TRUE(out.to_run.empty());
}

TEST(JobScheduler, GpuJobsSkippedWhenGpuDisallowed) {
  Fixture f;
  f.host = HostInfo::cpu_gpu(4, 1e9, 1, 10e9);
  f.add(0, 1000.0, 1e9);
  f.add(0, 1000.0, 1e9, ResourceUsage::gpu(ProcType::kNvidia, 1.0));
  const auto out = f.schedule({1.0}, true, /*gpu_ok=*/false);
  ASSERT_EQ(out.to_run.size(), 1u);
  EXPECT_FALSE(out.to_run[0]->usage.uses_gpu());
}

TEST(JobScheduler, EndangeredJobsPrecedeOthers) {
  Fixture f;
  f.host = HostInfo::cpu_only(1, 1e9);
  Result& normal = f.add(0, 1000.0, 1e9);
  Result& urgent = f.add(1, 1000.0, 2000.0);
  urgent.deadline_endangered = true;
  const auto out = f.schedule({0.5, 0.5});
  ASSERT_EQ(out.to_run.size(), 1u);
  EXPECT_EQ(out.to_run[0]->id, urgent.id);
  (void)normal;
}

TEST(JobScheduler, EndangeredOrderedByDeadline) {
  Fixture f;
  Result& late = f.add(0, 1000.0, 9000.0);
  Result& early = f.add(0, 1000.0, 3000.0);
  late.deadline_endangered = true;
  early.deadline_endangered = true;
  const auto out = f.schedule({1.0});
  const auto order = ids(out.ordered);
  EXPECT_LT(std::find(order.begin(), order.end(), early.id),
            std::find(order.begin(), order.end(), late.id));
}

TEST(JobScheduler, EqualDeadlinePrefersRunningJob) {
  Fixture f;
  f.host = HostInfo::cpu_only(1, 1e9);
  Result& a = f.add(0, 1000.0, 2000.0);
  Result& b = f.add(0, 1000.0, 2000.0);
  a.deadline_endangered = b.deadline_endangered = true;
  b.running = true;
  b.flops_done = 100e9;
  b.checkpointed_flops = 100e9;
  b.episode_checkpointed = true;
  const auto out = f.schedule({1.0});
  ASSERT_EQ(out.to_run.size(), 1u);
  EXPECT_EQ(out.to_run[0]->id, b.id);
  (void)a;
}

TEST(JobScheduler, UncheckpointedRunningJobKept) {
  Fixture f;
  f.host = HostInfo::cpu_only(1, 1e9);
  Result& running = f.add(0, 1000.0, 1e9);
  running.running = true;
  running.flops_done = 50e9;        // progress since start...
  running.checkpointed_flops = 0.0; // ...none of it checkpointed
  running.episode_checkpointed = false;
  Result& urgent = f.add(1, 100.0, 150.0);
  urgent.deadline_endangered = true;
  const auto out = f.schedule({0.5, 0.5});
  // The uncheckpointed running job outranks even the endangered one.
  ASSERT_EQ(out.to_run.size(), 1u);
  EXPECT_EQ(out.to_run[0]->id, running.id);
}

TEST(JobScheduler, WrrIgnoresDeadlines) {
  Fixture f;
  f.host = HostInfo::cpu_only(1, 1e9);
  f.policy.sched = JobSchedPolicy::kWrr;
  Result& normal = f.add(0, 1000.0, 1e9);
  Result& urgent = f.add(1, 1000.0, 1500.0);
  urgent.deadline_endangered = true;
  const auto out = f.schedule({1.0, 0.0001});
  // Under WRR the endangered flag confers nothing; project 0 has
  // (equal debt, FIFO tie on received) -> its job leads.
  ASSERT_EQ(out.to_run.size(), 1u);
  EXPECT_EQ(out.to_run[0]->id, normal.id);
}

TEST(JobScheduler, GpuJobsPrecedeCpuJobs) {
  Fixture f;
  f.host = HostInfo::cpu_gpu(4, 1e9, 1, 10e9);
  Result& cpu = f.add(0, 1000.0, 1e9);
  Result& gpu = f.add(0, 1000.0, 1e9, ResourceUsage::gpu(ProcType::kNvidia, 1.0));
  const auto out = f.schedule({1.0});
  const auto order = ids(out.ordered);
  EXPECT_LT(std::find(order.begin(), order.end(), gpu.id),
            std::find(order.begin(), order.end(), cpu.id));
  (void)cpu;
}

TEST(JobScheduler, PriorityChargingInterleavesProjects) {
  Fixture f;
  // Two equal-share projects, plenty of jobs each: the ordered list should
  // alternate projects rather than emitting all of project 0 first.
  for (int i = 0; i < 4; ++i) f.add(0, 1000.0, 1e9);
  for (int i = 0; i < 4; ++i) f.add(1, 1000.0, 1e9);
  f.policy.sched = JobSchedPolicy::kGlobal;
  const auto out = f.schedule({0.5, 0.5});
  ASSERT_GE(out.ordered.size(), 4u);
  // Among the first four, both projects appear.
  int p0 = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    if (out.ordered[i]->project == 0) ++p0;
  }
  EXPECT_EQ(p0, 2);
}

TEST(JobScheduler, LocalDebtOrdersProjects) {
  Fixture f;
  f.host = HostInfo::cpu_only(1, 1e9);
  f.policy.sched = JobSchedPolicy::kLocal;
  Result& a = f.add(0, 1000.0, 1e9);
  Result& b = f.add(1, 1000.0, 1e9);
  // Project 1 is owed CPU time (positive debt): its job must lead.
  JobScheduler sched(f.host, f.prefs, f.policy);
  Accounting acct(f.host, {0.5, 0.5}, kSecondsPerDay);
  PerProc<double> use0{};
  use0[ProcType::kCpu] = 500.0;
  PerProc<bool> run{};
  run[ProcType::kCpu] = true;
  acct.charge(500.0, 500.0, {use0, PerProc<double>{}}, {run, run});
  std::vector<Result*> ptrs = {&a, &b};
  const auto out = sched.schedule(500.0, ptrs, acct, true, true, f.log);
  ASSERT_EQ(out.to_run.size(), 1u);
  EXPECT_EQ(out.to_run[0]->id, b.id);
}

TEST(JobScheduler, LeaveInMemoryDisablesEpisodeProtection) {
  Fixture f;
  f.host = HostInfo::cpu_only(1, 1e9);
  f.prefs.leave_apps_in_memory = true;
  Result& running = f.add(0, 1000.0, 1e9);
  running.running = true;
  running.flops_done = 50e9;
  running.checkpointed_flops = 0.0;
  running.episode_checkpointed = false;
  Result& urgent = f.add(1, 100.0, 150.0);
  urgent.deadline_endangered = true;
  const auto out = f.schedule({0.5, 0.5});
  // Nothing is lost by preemption, so the endangered job wins.
  ASSERT_EQ(out.to_run.size(), 1u);
  EXPECT_EQ(out.to_run[0]->id, urgent.id);
  (void)running;
}

TEST(JobScheduler, RamLimitSkipsJobs) {
  Fixture f;
  f.host.ram_bytes = 4e9;
  f.prefs.ram_limit_fraction = 0.5;  // 2 GB budget
  for (int i = 0; i < 4; ++i) {
    Result& r = f.add(0, 1000.0, 1e9);
    r.ram_bytes = 1.5e9;
  }
  const auto out = f.schedule({1.0});
  EXPECT_EQ(out.to_run.size(), 1u);  // only one 1.5 GB job fits in 2 GB
}

TEST(JobScheduler, GpuSliverDoesNotStrandACpu) {
  Fixture f;
  f.host = HostInfo::cpu_gpu(4, 1e9, 1, 10e9);
  f.add(0, 1000.0, 1e9, ResourceUsage::gpu(ProcType::kNvidia, 1.0, 0.05));
  for (int i = 0; i < 4; ++i) f.add(0, 1000.0, 1e9);
  const auto out = f.schedule({1.0});
  // GPU job + all four CPU jobs run (0.05 CPU overcommit allowed).
  EXPECT_EQ(out.to_run.size(), 5u);
}

TEST(JobScheduler, FractionalGpuPacking) {
  Fixture f;
  f.host = HostInfo::cpu_gpu(4, 1e9, 2, 10e9);
  for (int i = 0; i < 5; ++i) {
    f.add(0, 1000.0, 1e9, ResourceUsage::gpu(ProcType::kNvidia, 0.5, 0.05));
  }
  const auto out = f.schedule({1.0});
  // 2 GPUs x 2 half-jobs each = 4 run; the fifth doesn't fit.
  EXPECT_EQ(out.to_run.size(), 4u);
}

TEST(JobScheduler, WholeGpuJobBlocksFractions) {
  Fixture f;
  f.host = HostInfo::cpu_gpu(4, 1e9, 1, 10e9);
  f.add(0, 1000.0, 1e9, ResourceUsage::gpu(ProcType::kNvidia, 1.0, 0.05));
  f.add(0, 1000.0, 1e9, ResourceUsage::gpu(ProcType::kNvidia, 0.5, 0.05));
  const auto out = f.schedule({1.0});
  EXPECT_EQ(out.to_run.size(), 1u);
}

TEST(JobScheduler, MultiGpuJobNeedsWholeInstances) {
  Fixture f;
  f.host = HostInfo::cpu_gpu(4, 1e9, 2, 10e9);
  f.add(0, 1000.0, 1e9, ResourceUsage::gpu(ProcType::kNvidia, 2.0, 0.1));
  f.add(0, 1000.0, 1e9, ResourceUsage::gpu(ProcType::kNvidia, 1.0, 0.1));
  const auto out = f.schedule({1.0});
  // The 2-GPU job takes both instances; the single-GPU job is skipped.
  ASSERT_EQ(out.to_run.size(), 1u);
  EXPECT_DOUBLE_EQ(out.to_run[0]->usage.coproc_usage, 2.0);
}

TEST(JobScheduler, NotYetRunnableJobsExcluded) {
  Fixture f;
  Result& r = f.add(0, 1000.0, 1e9);
  r.runnable_at = 500.0;  // transfer still in progress at t=0
  const auto out = f.schedule({1.0});
  EXPECT_TRUE(out.to_run.empty());
}

TEST(JobScheduler, MultiCpuJobAdmitted) {
  Fixture f;
  f.add(0, 1000.0, 1e9, ResourceUsage::cpu(3.0));
  f.add(0, 1000.0, 1e9, ResourceUsage::cpu(1.0));
  f.add(0, 1000.0, 1e9, ResourceUsage::cpu(1.0));
  const auto out = f.schedule({1.0});
  // 3-CPU job + one 1-CPU job fill the 4 CPUs; the second 1-CPU job would
  // need pool <= 0, so it is skipped.
  EXPECT_EQ(out.to_run.size(), 2u);
}

TEST(JobScheduler, LeastLaxityOrdering) {
  Fixture f;
  f.policy.endangered_order = EndangeredOrder::kLeastLaxity;
  // early deadline but tiny remaining work => large laxity;
  // later deadline but huge remaining work => smaller laxity.
  Result& relaxed = f.add(0, 10.0, 3000.0);
  Result& pressed = f.add(0, 3900.0, 4000.0);
  relaxed.deadline_endangered = true;
  pressed.deadline_endangered = true;
  const auto out = f.schedule({1.0});
  const auto order = ids(out.ordered);
  EXPECT_LT(std::find(order.begin(), order.end(), pressed.id),
            std::find(order.begin(), order.end(), relaxed.id));
}

}  // namespace
}  // namespace bce
