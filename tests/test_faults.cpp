// Tests for the deterministic fault-injection subsystem (sim/fault,
// docs/faults.md): plan validation, RNG stream independence, each fault
// channel's end-to-end effect on an emulation, and bit-reproducibility.

#include <gtest/gtest.h>

#include <cmath>

#include "core/bce.hpp"
#include "core/scenario_io.hpp"

namespace bce {
namespace {

Scenario base_scenario() {
  Scenario sc = paper_scenario2();
  sc.duration = 2.0 * kSecondsPerDay;
  return sc;
}

EmulationResult run(const Scenario& sc, const PolicyConfig& pol = {}) {
  EmulationOptions opt;
  opt.policy = pol;
  return emulate(sc, opt);
}

// --- FaultPlan validation ---------------------------------------------

TEST(FaultPlan, DefaultIsInertAndValid) {
  const FaultPlan p;
  EXPECT_FALSE(p.any());
  EXPECT_TRUE(p.validate().empty());
}

TEST(FaultPlan, PresetsAreValidAndActive) {
  for (const FaultPlan& p : {FaultPlan::light(), FaultPlan::heavy()}) {
    EXPECT_TRUE(p.any());
    EXPECT_TRUE(p.validate().empty()) << p.validate();
  }
}

TEST(FaultPlan, RejectsOutOfRangeAndNonFinite) {
  FaultPlan p;
  p.job_error_rate = 1.5;
  EXPECT_FALSE(p.validate().empty());
  p = FaultPlan{};
  p.job_error_rate = 0.7;
  p.job_abort_rate = 0.7;  // sum > 1
  EXPECT_FALSE(p.validate().empty());
  p = FaultPlan{};
  p.rpc_loss_rate = std::nan("");
  EXPECT_FALSE(p.validate().empty());
  p = FaultPlan{};
  p.crash_mtbf = -1.0;
  EXPECT_FALSE(p.validate().empty());
  p = FaultPlan{};
  p.rpc_timeout = 0.0;
  EXPECT_FALSE(p.validate().empty());
  p = FaultPlan{};
  p.transfer_retry_max = 10.0;  // < retry_min
  EXPECT_FALSE(p.validate().empty());
}

TEST(Scenario, ValidateFoldsInFaultPlan) {
  Scenario sc = base_scenario();
  sc.faults.rpc_loss_rate = 2.0;
  std::string err;
  EXPECT_FALSE(sc.validate(&err));
  EXPECT_NE(err.find("rpc_loss"), std::string::npos) << err;
}

// --- FaultInjector primitives -----------------------------------------

TEST(FaultInjector, ZeroRatesDrawNothing) {
  Xoshiro256 parent(7);
  FaultPlan plan;
  plan.job_error_rate = 0.5;  // channel exists, but calls pass zero rates
  FaultInjector fi(plan, parent);
  Xoshiro256 probe(7);
  // Zero-rate queries must not consume from any stream.
  const auto fate = fi.job_fate(0.0, 0.0);
  EXPECT_FALSE(fate.fails);
  EXPECT_FALSE(fi.rpc_reply_lost());
  EXPECT_EQ(fi.next_crash(0.0), kNever);
  // A certain failure: exactly one outcome draw + one fraction draw.
  const auto doomed = fi.job_fate(1.0, 0.0);
  EXPECT_TRUE(doomed.fails);
  EXPECT_FALSE(doomed.abort);
  EXPECT_GT(doomed.fail_fraction, 0.0);
  EXPECT_LT(doomed.fail_fraction, 1.0);
}

TEST(FaultInjector, CrashTimesFollowSeedDeterministically) {
  FaultPlan plan;
  plan.crash_mtbf = 3600.0;
  Xoshiro256 a(11);
  Xoshiro256 b(11);
  FaultInjector fa(plan, a);
  FaultInjector fb(plan, b);
  for (int i = 0; i < 8; ++i) {
    const SimTime ta = fa.next_crash(100.0 * i);
    EXPECT_EQ(ta, fb.next_crash(100.0 * i));
    EXPECT_GT(ta, 100.0 * i);
    EXPECT_TRUE(std::isfinite(ta));
  }
}

// --- Golden preservation and determinism ------------------------------

TEST(Faults, AllZeroPlanLeavesRunUntouched) {
  Scenario sc = base_scenario();
  const EmulationResult clean = run(sc);
  sc.faults = FaultPlan{};  // explicit all-zero plan
  const EmulationResult again = run(sc);
  const Metrics& a = clean.metrics;
  const Metrics& b = again.metrics;
  EXPECT_EQ(a.used_flops, b.used_flops);
  EXPECT_EQ(a.n_jobs_completed, b.n_jobs_completed);
  EXPECT_EQ(a.n_rpcs, b.n_rpcs);
  EXPECT_FALSE(b.faults_fired());
  EXPECT_EQ(b.n_job_failures, 0);
  EXPECT_EQ(b.n_host_crashes, 0);
  EXPECT_EQ(b.n_rpcs_lost, 0);
  EXPECT_EQ(b.n_transfer_retries, 0);
  EXPECT_EQ(b.failure_wasted_flops, 0.0);
}

TEST(Faults, FaultedRunIsBitReproducible) {
  Scenario sc = base_scenario();
  sc.faults = FaultPlan::heavy();
  const EmulationResult a = run(sc);
  const EmulationResult b = run(sc);
  EXPECT_TRUE(a.metrics.faults_fired());
  EXPECT_EQ(a.metrics.used_flops, b.metrics.used_flops);
  EXPECT_EQ(a.metrics.failure_wasted_flops, b.metrics.failure_wasted_flops);
  EXPECT_EQ(a.metrics.n_job_failures, b.metrics.n_job_failures);
  EXPECT_EQ(a.metrics.n_host_crashes, b.metrics.n_host_crashes);
  EXPECT_EQ(a.metrics.n_rpcs_lost, b.metrics.n_rpcs_lost);
  EXPECT_EQ(a.metrics.recovery_time_sum, b.metrics.recovery_time_sum);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].flops_done, b.jobs[i].flops_done);
    EXPECT_EQ(a.jobs[i].failed, b.jobs[i].failed);
    EXPECT_EQ(a.jobs[i].failed_at, b.jobs[i].failed_at);
  }
}

TEST(Faults, DifferentSeedsDifferentFaults) {
  Scenario sc = base_scenario();
  sc.faults = FaultPlan::heavy();
  const EmulationResult a = run(sc);
  sc.seed = 999;
  const EmulationResult b = run(sc);
  // Same rates, different draws: the realized fault pattern moves.
  EXPECT_NE(a.metrics.failure_wasted_flops, b.metrics.failure_wasted_flops);
}

// --- Job runtime failures ---------------------------------------------

TEST(Faults, JobErrorsWasteFlopsAndAreCounted) {
  Scenario sc = base_scenario();
  sc.faults.job_error_rate = 0.2;
  const EmulationResult res = run(sc);
  const Metrics& m = res.metrics;
  EXPECT_GT(m.n_job_failures, 0);
  EXPECT_GT(m.failure_wasted_flops, 0.0);
  EXPECT_LE(m.failure_wasted_flops, m.wasted_flops);
  std::int64_t failed_jobs = 0;
  for (const Result& r : res.jobs) {
    if (!r.failed) continue;
    ++failed_jobs;
    EXPECT_FALSE(r.is_complete());
    EXPECT_LT(r.flops_done, r.flops_total);
    EXPECT_LT(r.failed_at, kNever);
    // Failed jobs are reported back (frees the server slot).
    EXPECT_TRUE(r.uploaded);
  }
  EXPECT_EQ(failed_jobs, m.n_job_failures + m.n_job_aborts);
  // Per-project stats separate failures from completions.
  std::int64_t stats_failed = 0;
  for (const auto& ps : res.project_stats) stats_failed += ps.jobs_failed;
  EXPECT_EQ(stats_failed, failed_jobs);
}

TEST(Faults, AbortRateProducesAborts) {
  Scenario sc = base_scenario();
  sc.faults.job_abort_rate = 0.15;
  const Metrics m = run(sc).metrics;
  EXPECT_GT(m.n_job_aborts, 0);
  EXPECT_EQ(m.n_job_failures, 0);
}

TEST(Faults, PerClassRateOverridesPlan) {
  Scenario sc = base_scenario();
  sc.faults.job_error_rate = 0.5;
  // Every class pins its own rate to zero: the plan's rate must not apply.
  for (auto& p : sc.projects) {
    for (auto& jc : p.job_classes) jc.error_rate = 0.0;
  }
  const Metrics m = run(sc).metrics;
  EXPECT_EQ(m.n_job_failures, 0);
}

// --- Host crashes ------------------------------------------------------

TEST(Faults, CrashesRollBackToCheckpointAndRecover) {
  Scenario sc = base_scenario();
  sc.faults.crash_mtbf = 6.0 * kSecondsPerHour;
  sc.faults.crash_reboot_delay = 600.0;
  const Metrics m = run(sc).metrics;
  EXPECT_GT(m.n_host_crashes, 0);
  EXPECT_GT(m.n_crash_recoveries, 0);
  EXPECT_LE(m.n_crash_recoveries, m.n_host_crashes);
  // Work cannot resume before the reboot finishes.
  EXPECT_GE(m.mean_recovery_time(), sc.faults.crash_reboot_delay);
}

TEST(Faults, CrashWithoutCheckpointsLosesMoreWork) {
  Scenario frequent = base_scenario();
  frequent.faults.crash_mtbf = 2.0 * kSecondsPerHour;
  Scenario rare = frequent;
  for (auto& p : frequent.projects) {
    for (auto& jc : p.job_classes) jc.checkpoint_period = kNever;
  }
  for (auto& p : rare.projects) {
    for (auto& jc : p.job_classes) jc.checkpoint_period = 60.0;
  }
  const Metrics none = run(frequent).metrics;
  const Metrics often = run(rare).metrics;
  EXPECT_GT(none.n_host_crashes, 0);
  // Same crash draws (same seed/stream); frequent checkpoints keep more of
  // the computed FLOPs.
  EXPECT_EQ(none.n_host_crashes, often.n_host_crashes);
  EXPECT_GT(often.n_jobs_completed, 0);
  EXPECT_GE(none.used_flops - often.used_flops, -1e-6);
}

// --- Lost scheduler RPCs ----------------------------------------------

TEST(Faults, LostRepliesOrphanJobsAndServerReclaims) {
  Scenario sc = base_scenario();
  sc.faults.rpc_loss_rate = 0.3;
  sc.faults.rpc_timeout = 1800.0;
  const EmulationResult res = run(sc);
  const Metrics& m = res.metrics;
  EXPECT_GT(m.n_rpcs_lost, 0);
  EXPECT_GT(m.n_jobs_orphaned, 0);
  EXPECT_GT(m.retries_per_job(), 0.0);
  // Orphaned jobs never reach the client's job list: every job the client
  // holds arrived on a delivered reply.
  EXPECT_EQ(static_cast<std::int64_t>(res.jobs.size()), m.n_jobs_fetched);
  // The client keeps making progress despite the losses.
  EXPECT_GT(m.n_jobs_completed, 0);
}

TEST(Faults, LostReplyRunIsReproducible) {
  Scenario sc = base_scenario();
  sc.faults.rpc_loss_rate = 0.3;
  const Metrics a = run(sc).metrics;
  const Metrics b = run(sc).metrics;
  EXPECT_EQ(a.n_rpcs_lost, b.n_rpcs_lost);
  EXPECT_EQ(a.n_rpcs, b.n_rpcs);
  EXPECT_EQ(a.used_flops, b.used_flops);
}

// --- Transfer failures -------------------------------------------------

Scenario transfer_scenario() {
  Scenario sc = paper_scenario1(1800.0);
  sc.duration = 1.0 * kSecondsPerDay;
  sc.host.download_bandwidth_bps = 2e5;
  for (auto& p : sc.projects) {
    for (auto& jc : p.job_classes) jc.input_bytes = 1e7;
  }
  return sc;
}

TEST(Faults, TransferErrorsRetryWithBackoff) {
  Scenario sc = transfer_scenario();
  sc.faults.transfer_error_rate = 0.4;
  sc.faults.transfer_retry_min = 10.0;
  const Metrics m = run(sc).metrics;
  EXPECT_GT(m.n_transfer_retries, 0);
  EXPECT_GT(m.n_jobs_completed, 0);  // retries eventually succeed
}

TEST(Faults, NonResumableTransfersAreSlower) {
  Scenario resumable = transfer_scenario();
  resumable.faults.transfer_error_rate = 0.5;
  resumable.faults.transfer_retry_min = 10.0;
  Scenario restart = resumable;
  for (auto& p : restart.projects) p.transfers_resumable = false;
  const Metrics a = run(resumable).metrics;
  const Metrics b = run(restart).metrics;
  EXPECT_GT(a.n_transfer_retries, 0);
  // Restart-from-zero re-downloads everything after each error; with the
  // same failure draws it can never deliver more jobs.
  EXPECT_GE(a.n_jobs_completed, b.n_jobs_completed);
}

// --- Scenario-file round trip ------------------------------------------

TEST(Faults, PlanSurvivesSerializeParse) {
  Scenario sc = base_scenario();
  sc.faults.job_error_rate = 0.05;
  sc.faults.job_abort_rate = 0.01;
  sc.faults.crash_mtbf = 43200.0;
  sc.faults.crash_reboot_delay = 300.0;
  sc.faults.rpc_loss_rate = 0.2;
  sc.faults.rpc_timeout = 1800.0;
  sc.faults.transfer_error_rate = 0.15;
  sc.faults.transfer_retry_min = 30.0;
  sc.faults.transfer_retry_max = 600.0;
  sc.projects[0].transfers_resumable = false;
  sc.projects[0].job_classes[0].error_rate = 0.3;
  const Scenario back = parse_scenario(serialize_scenario(sc));
  EXPECT_DOUBLE_EQ(back.faults.job_error_rate, 0.05);
  EXPECT_DOUBLE_EQ(back.faults.job_abort_rate, 0.01);
  EXPECT_DOUBLE_EQ(back.faults.crash_mtbf, 43200.0);
  EXPECT_DOUBLE_EQ(back.faults.crash_reboot_delay, 300.0);
  EXPECT_DOUBLE_EQ(back.faults.rpc_loss_rate, 0.2);
  EXPECT_DOUBLE_EQ(back.faults.rpc_timeout, 1800.0);
  EXPECT_DOUBLE_EQ(back.faults.transfer_error_rate, 0.15);
  EXPECT_DOUBLE_EQ(back.faults.transfer_retry_min, 30.0);
  EXPECT_DOUBLE_EQ(back.faults.transfer_retry_max, 600.0);
  EXPECT_FALSE(back.projects[0].transfers_resumable);
  EXPECT_DOUBLE_EQ(back.projects[0].job_classes[0].error_rate, 0.3);
}

TEST(Faults, PresetKeysParse) {
  const Scenario sc = parse_scenario(
      "cpus: 1 @ 1e9\nfaults: heavy\nfault_rpc_loss: 0.05\n"
      "project: p\njob: cpu flops=1e12 latency=1e5\n");
  EXPECT_DOUBLE_EQ(sc.faults.job_error_rate, FaultPlan::heavy().job_error_rate);
  // Later keys refine the preset.
  EXPECT_DOUBLE_EQ(sc.faults.rpc_loss_rate, 0.05);
}

TEST(Faults, ShippedFaultyScenarioLoadsAndFires) {
  const Scenario sc =
      load_scenario_file(std::string(BCE_SOURCE_DIR) + "/scenarios/faulty.txt");
  EXPECT_TRUE(sc.faults.any());
  std::string err;
  EXPECT_TRUE(sc.validate(&err)) << err;
  Scenario shortened = sc;
  shortened.duration = 0.5 * kSecondsPerDay;
  const Metrics m = run(shortened).metrics;
  EXPECT_TRUE(m.faults_fired());
}

}  // namespace
}  // namespace bce
