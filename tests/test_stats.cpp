// Unit tests for sim/stats (RunningStats, Histogram) and
// sim/decaying_average (the REC primitive).

#include <gtest/gtest.h>

#include <cmath>

#include "sim/decaying_average.hpp"
#include "sim/stats.hpp"

namespace bce {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic dataset is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleSampleVarianceZero) {
  RunningStats s;
  s.add(3.14);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.14);
}

TEST(RunningStats, MergeEqualsCombined) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i * 0.37) * 10.0;
    (i < 40 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Histogram, BinsCorrectly) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(5.5);   // bin 5
  h.add(9.99);  // bin 9
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, OutOfRangeClampsToEndBins) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(100.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
}

TEST(Histogram, AsciiContainsBars) {
  Histogram h(0.0, 1.0, 4);
  for (int i = 0; i < 8; ++i) h.add(0.1);
  h.add(0.9);
  const std::string a = h.to_ascii(20);
  EXPECT_NE(a.find('#'), std::string::npos);
  EXPECT_EQ(std::count(a.begin(), a.end(), '\n'), 4);
}

TEST(DecayingAverage, HalvesAfterHalfLife) {
  DecayingAverage d(100.0);
  d.add(0.0, 8.0);
  d.decay_to(100.0);
  EXPECT_NEAR(d.value(), 4.0, 1e-12);
  d.decay_to(300.0);
  EXPECT_NEAR(d.value(), 1.0, 1e-12);
}

TEST(DecayingAverage, AddAccumulates) {
  DecayingAverage d(kNever);
  d.add(0.0, 1.0);
  d.add(10.0, 2.0);
  d.add(20.0, 3.0);
  EXPECT_DOUBLE_EQ(d.value(), 6.0);  // infinite half-life: plain sum
}

TEST(DecayingAverage, ValueAtDoesNotMutate) {
  DecayingAverage d(100.0);
  d.add(0.0, 8.0);
  EXPECT_NEAR(d.value_at(100.0), 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(d.value(), 8.0);  // unchanged
}

TEST(DecayingAverage, NonMonotonicTimeIsSafe) {
  DecayingAverage d(100.0);
  d.add(50.0, 4.0);
  d.decay_to(40.0);  // time going backwards: no decay, no crash
  EXPECT_DOUBLE_EQ(d.value(), 4.0);
}

TEST(DecayingAverage, AddAndDecayCompose) {
  DecayingAverage d(100.0);
  d.add(0.0, 4.0);
  d.add(100.0, 4.0);  // old 4 decayed to 2, plus 4 = 6
  EXPECT_NEAR(d.value(), 6.0, 1e-12);
}

TEST(DecayingAverage, Reset) {
  DecayingAverage d(100.0);
  d.add(0.0, 5.0);
  d.reset(200.0);
  EXPECT_DOUBLE_EQ(d.value(), 0.0);
  d.add(250.0, 2.0);
  EXPECT_DOUBLE_EQ(d.value(), 2.0);
}

/// Property: decay is multiplicative across arbitrary splits of the
/// interval.
class DecaySplit : public ::testing::TestWithParam<double> {};

TEST_P(DecaySplit, SplitEqualsWhole) {
  const double split = GetParam();
  DecayingAverage a(1000.0);
  DecayingAverage b(1000.0);
  a.add(0.0, 7.0);
  b.add(0.0, 7.0);
  a.decay_to(5000.0);
  b.decay_to(split);
  b.decay_to(5000.0);
  EXPECT_NEAR(a.value(), b.value(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Splits, DecaySplit,
                         ::testing::Values(1.0, 499.5, 2500.0, 4999.0));

}  // namespace
}  // namespace bce
