// Unit tests for the deterministic RNG (sim/rng).

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/rng.hpp"

namespace bce {
namespace {

TEST(Xoshiro256, DeterministicGivenSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Xoshiro256, Uniform01InRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, Uniform01MeanIsHalf) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, UniformRespectsBounds) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-5.0, 3.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Xoshiro256, BelowIsUnbiasedAndInRange) {
  Xoshiro256 rng(13);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const auto v = rng.below(10);
    ASSERT_LT(v, 10u);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(Xoshiro256, BelowZeroReturnsZero) {
  Xoshiro256 rng(1);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Xoshiro256, ForkProducesIndependentStreams) {
  Xoshiro256 root(99);
  Xoshiro256 a = root.fork("alpha");
  Xoshiro256 b = root.fork("beta");
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Xoshiro256, ForkIsLabelSensitive) {
  Xoshiro256 r1(5);
  Xoshiro256 r2(5);
  Xoshiro256 a = r1.fork("x");
  Xoshiro256 b = r2.fork("y");
  EXPECT_NE(a(), b());
}

TEST(Xoshiro256, ForkSameLabelSameStateMatches) {
  Xoshiro256 r1(5);
  Xoshiro256 r2(5);
  Xoshiro256 a = r1.fork("x");
  Xoshiro256 b = r2.fork("x");
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, KnownGolden) {
  // Reference values from the SplitMix64 reference implementation with
  // state 0: first three outputs.
  std::uint64_t s = 0;
  EXPECT_EQ(splitmix64(s), 0xe220a8397b1dcdafull);
  EXPECT_EQ(splitmix64(s), 0x6e789e6aa1b965f4ull);
  EXPECT_EQ(splitmix64(s), 0x06c45d188009454full);
}

TEST(HashLabel, DistinctLabelsDistinctHashes) {
  std::set<std::uint64_t> seen;
  for (const char* l : {"a", "b", "ab", "ba", "server.0", "server.1"}) {
    seen.insert(hash_label(l));
  }
  EXPECT_EQ(seen.size(), 6u);
}

}  // namespace
}  // namespace bce
