// Golden-metrics regression suite: pinned (scenario, policy, seed)
// configurations with bands around the currently-measured figures of
// merit. These guard the *reproduced paper results* against silent
// behavioural drift: a refactor that flips who wins an experiment fails
// here even if every unit test still passes.
//
// Bands are deliberately loose (these are shape guards, not bit-exactness
// — determinism per se is covered by Emulator.DeterministicGivenSeed).

#include <gtest/gtest.h>

#include "core/emulator.hpp"
#include "core/paper_scenarios.hpp"

namespace bce {
namespace {

struct Golden {
  const char* name;
  Scenario (*make)();
  JobSchedPolicy sched;
  FetchPolicy fetch;
  double rec_half_life;
  double days;
  // Expected bands [lo, hi].
  double wasted_lo, wasted_hi;
  double viol_lo, viol_hi;
  double rpj_lo, rpj_hi;
  std::int64_t jobs_lo, jobs_hi;
};

Scenario s1() { return paper_scenario1(1500.0); }
Scenario s2() { return paper_scenario2(); }
Scenario s3() { return paper_scenario3(); }
Scenario s4() { return paper_scenario4(); }

// Measured values (see git history of this file for the baseline run):
//  s1_global: wasted 0.080 viol 0.000 rpj 1.01 jobs 171
//  s1_wrr:    wasted 0.422 viol 0.001 rpj 1.01 jobs 171
//  s2_local:  wasted 0.000 viol 0.354 rpj 0.056 jobs 644
//  s2_global: wasted 0.001 viol 0.240 rpj 0.046 jobs 646
//  s3_shortA: viol 0.481 jobs 9        s3_longA: viol 0.079 jobs 147
//  s4_orig:   rpj 1.05 jobs 631        s4_hyst:  rpj 0.045 jobs 666
const Golden kGolden[] = {
    {"s1_global", &s1, JobSchedPolicy::kGlobal, FetchPolicy::kOrig, 0, 3.0,
     0.0, 0.20, 0.0, 0.05, 0.8, 1.3, 130, 210},
    {"s1_wrr", &s1, JobSchedPolicy::kWrr, FetchPolicy::kOrig, 0, 3.0,
     0.30, 0.55, 0.0, 0.05, 0.8, 1.3, 130, 210},
    {"s2_local", &s2, JobSchedPolicy::kLocal, FetchPolicy::kHysteresis, 0, 3.0,
     0.0, 0.05, 0.28, 0.42, 0.0, 0.2, 500, 800},
    {"s2_global", &s2, JobSchedPolicy::kGlobal, FetchPolicy::kHysteresis, 0,
     3.0, 0.0, 0.05, 0.18, 0.30, 0.0, 0.2, 500, 800},
    {"s3_shortA", &s3, JobSchedPolicy::kGlobal, FetchPolicy::kHysteresis, 1e4,
     40.0, 0.0, 0.05, 0.40, 0.50, 0.0, 3.0, 4, 30},
    {"s3_longA", &s3, JobSchedPolicy::kGlobal, FetchPolicy::kHysteresis, 5e6,
     40.0, 0.0, 0.05, 0.0, 0.20, 0.0, 3.0, 80, 250},
    {"s4_orig", &s4, JobSchedPolicy::kGlobal, FetchPolicy::kOrig, 0, 2.0,
     0.0, 0.05, 0.0, 0.10, 0.7, 1.4, 450, 850},
    {"s4_hyst", &s4, JobSchedPolicy::kGlobal, FetchPolicy::kHysteresis, 0, 2.0,
     0.0, 0.05, 0.0, 0.15, 0.0, 0.15, 450, 850},
};

class GoldenRegression : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenRegression, MetricsWithinBands) {
  const Golden& g = GetParam();
  Scenario sc = g.make();
  sc.duration = g.days * kSecondsPerDay;
  EmulationOptions opt;
  opt.policy.sched = g.sched;
  opt.policy.fetch = g.fetch;
  if (g.rec_half_life > 0) opt.policy.rec_half_life = g.rec_half_life;

  const Metrics m = emulate(sc, opt).metrics;
  EXPECT_GE(m.wasted_fraction(), g.wasted_lo) << m.summary();
  EXPECT_LE(m.wasted_fraction(), g.wasted_hi) << m.summary();
  EXPECT_GE(m.share_violation(), g.viol_lo) << m.summary();
  EXPECT_LE(m.share_violation(), g.viol_hi) << m.summary();
  EXPECT_GE(m.rpcs_per_job(), g.rpj_lo) << m.summary();
  EXPECT_LE(m.rpcs_per_job(), g.rpj_hi) << m.summary();
  EXPECT_GE(m.n_jobs_completed, g.jobs_lo) << m.summary();
  EXPECT_LE(m.n_jobs_completed, g.jobs_hi) << m.summary();
}

INSTANTIATE_TEST_SUITE_P(PaperConfigs, GoldenRegression,
                         ::testing::ValuesIn(kGolden),
                         [](const ::testing::TestParamInfo<Golden>& info) {
                           return std::string(info.param.name);
                         });

// The cross-policy *orderings* that constitute the paper's conclusions,
// asserted directly.
TEST(GoldenRegression, PaperConclusionsHold) {
  // 1. EDF scheduling reduces wasted processing (Fig 3).
  {
    Scenario sc = paper_scenario1(1500.0);
    sc.duration = 3.0 * kSecondsPerDay;
    EmulationOptions wrr;
    wrr.policy.sched = JobSchedPolicy::kWrr;
    wrr.policy.fetch = FetchPolicy::kOrig;
    EmulationOptions edf = wrr;
    edf.policy.sched = JobSchedPolicy::kGlobal;
    EXPECT_LT(emulate(sc, edf).metrics.wasted_fraction() * 2.0,
              emulate(sc, wrr).metrics.wasted_fraction());
  }
  // 2. Global accounting reduces share violation (Fig 4).
  {
    Scenario sc = paper_scenario2();
    sc.duration = 3.0 * kSecondsPerDay;
    EmulationOptions local;
    local.policy.sched = JobSchedPolicy::kLocal;
    EmulationOptions global;
    global.policy.sched = JobSchedPolicy::kGlobal;
    EXPECT_LT(emulate(sc, global).metrics.share_violation(),
              emulate(sc, local).metrics.share_violation());
  }
  // 3. Hysteresis reduces RPCs per job (Fig 5).
  {
    Scenario sc = paper_scenario4();
    sc.duration = 2.0 * kSecondsPerDay;
    EmulationOptions orig;
    orig.policy.fetch = FetchPolicy::kOrig;
    EmulationOptions hyst;
    hyst.policy.fetch = FetchPolicy::kHysteresis;
    EXPECT_LT(emulate(sc, hyst).metrics.rpcs_per_job() * 5.0,
              emulate(sc, orig).metrics.rpcs_per_job());
  }
  // 4. Longer REC half-life reduces violation with long jobs (Fig 6).
  {
    Scenario sc = paper_scenario3();
    sc.duration = 40.0 * kSecondsPerDay;
    EmulationOptions shortA;
    shortA.policy.rec_half_life = 1e4;
    EmulationOptions longA;
    longA.policy.rec_half_life = 5e6;
    EXPECT_LT(emulate(sc, longA).metrics.share_violation() * 2.0,
              emulate(sc, shortA).metrics.share_violation());
  }
}

}  // namespace
}  // namespace bce
