// Unit tests for the timeline recorder and its renderings (core/timeline),
// plus the report table helpers (core/report).

#include <gtest/gtest.h>

#include <sstream>

#include "core/report.hpp"
#include "core/timeline.hpp"

namespace bce {
namespace {

TEST(Timeline, RecordsSpans) {
  Timeline t(HostInfo::cpu_only(1, 1e9));
  t.record(ProcType::kCpu, 0, 0.0, 10.0, 0, 5);
  ASSERT_EQ(t.spans().size(), 1u);
  EXPECT_DOUBLE_EQ(t.spans()[0].t1, 10.0);
}

TEST(Timeline, MergesContiguousSameJob) {
  Timeline t(HostInfo::cpu_only(1, 1e9));
  t.record(ProcType::kCpu, 0, 0.0, 10.0, 0, 5);
  t.record(ProcType::kCpu, 0, 10.0, 20.0, 0, 5);
  ASSERT_EQ(t.spans().size(), 1u);
  EXPECT_DOUBLE_EQ(t.spans()[0].t0, 0.0);
  EXPECT_DOUBLE_EQ(t.spans()[0].t1, 20.0);
}

TEST(Timeline, DifferentJobsNotMerged) {
  Timeline t(HostInfo::cpu_only(1, 1e9));
  t.record(ProcType::kCpu, 0, 0.0, 10.0, 0, 5);
  t.record(ProcType::kCpu, 0, 10.0, 20.0, 0, 6);
  EXPECT_EQ(t.spans().size(), 2u);
}

TEST(Timeline, ZeroLengthSpanIgnored) {
  Timeline t(HostInfo::cpu_only(1, 1e9));
  t.record(ProcType::kCpu, 0, 5.0, 5.0, 0, 1);
  EXPECT_TRUE(t.spans().empty());
}

TEST(Timeline, AsciiHasOneRowPerInstance) {
  Timeline t(HostInfo::cpu_gpu(2, 1e9, 1, 1e10));
  t.record(ProcType::kCpu, 0, 0.0, 50.0, 0, 1);
  const std::string a = t.to_ascii(100.0, 40);
  // 2 CPU rows + 1 GPU row + footer line.
  EXPECT_EQ(std::count(a.begin(), a.end(), '\n'), 4);
  EXPECT_NE(a.find("cpu"), std::string::npos);
  EXPECT_NE(a.find("nvidia"), std::string::npos);
}

TEST(Timeline, AsciiLettersMatchProjects) {
  Timeline t(HostInfo::cpu_only(1, 1e9));
  t.record(ProcType::kCpu, 0, 0.0, 50.0, 0, 1);   // project 0 -> 'A'
  t.record(ProcType::kCpu, 0, 50.0, 100.0, 2, 2); // project 2 -> 'C'
  const std::string a = t.to_ascii(100.0, 10);
  EXPECT_NE(a.find('A'), std::string::npos);
  EXPECT_NE(a.find('C'), std::string::npos);
  EXPECT_EQ(a.find('B'), std::string::npos);
}

TEST(Timeline, CsvFormat) {
  Timeline t(HostInfo::cpu_only(1, 1e9));
  t.record(ProcType::kCpu, 0, 0.0, 10.0, 1, 7);
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "type,slot,t0,t1,project,job\ncpu,0,0,10,1,7\n");
}

TEST(Table, AlignedPrinting) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RowAccess) {
  Table t({"a"});
  t.add_row({"x"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.row(0)[0], "x");
}

TEST(Fmt, FormatsWithPrecision) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(1.0, 0), "1");
  EXPECT_EQ(fmt(0.5), "0.500");
}

}  // namespace
}  // namespace bce
